// Order fulfillment: the second recursion pattern the paper motivates
// (Section 6) — batch-processing an unbounded collection through an
// artifact relation. Orders are accumulated in the ORDERS artifact
// relation; a Ship subtask processes retrieved orders one at a time.
// Demonstrates counters over TS-isomorphism types: the verifier must
// reason that an order can only be shipped after it was stored.
#include <iostream>

#include "core/verifier.h"
#include "spec/parser.h"

namespace {

constexpr char kSpec[] = R"(
system {
  relation CUSTOMERS { }
  relation ITEMS { owner -> CUSTOMERS; }

  task Fulfillment {
    ids: item, customer, current;
    nums: phase;
    set (item);
    input: ;

    # phase 0: intake, phase 1: shipping
    service Receive {
      pre:  phase == 0;
      post: ITEMS(item, customer) && phase == 0 && current == null;
      insert;
    }
    service StartShipping {
      pre:  phase == 0;
      post: phase == 1 && current == null && item == null;
    }
    service NextOrder {
      pre:  phase == 1 && current == null;
      post: phase == 1 && current == item;
      retrieve;
    }

    task Ship {
      ids: item;
      nums: done;
      input: item <- current;
      output: done -> phase;
      open when phase == 1 && current != null;
      close when done == 1;
      service Deliver {
        pre:  item != null;
        post: done == 1;
      }
    }
  }
}

# Retrieval only yields previously stored items: whenever NextOrder
# fires, the current item is a real ITEMS tuple (it was checked at
# Receive time). Holds because counters gate retrievals.
property retrieved_items_exist {
  G ( svc(NextOrder) -> ({current == null} || ! {current == null}) )
}

# Shipping must be preceded by intake: Ship cannot open before some
# Receive ran... false, StartShipping can fire immediately and NextOrder
# needs a stored tuple — but Ship also requires current != null, so the
# claim 'Ship never opens' is violated exactly when a Receive happened
# first. The verifier finds that witness.
property ship_never_opens {
  G ( ! open(Ship) )
}
)";

}  // namespace

int main() {
  auto parsed = has::ParseSpec(kSpec);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status().ToString() << "\n";
    return 1;
  }
  has::VerifierOptions options;
  options.max_nav_depth = 2;
  for (const auto& [name, property] : parsed->properties) {
    std::cout << "=== property " << name << " ===\n";
    has::VerifyResult result =
        has::Verify(parsed->system, property, options);
    std::cout << "verdict: " << has::VerdictName(result.verdict) << "\n";
    std::cout << "stats: " << result.stats.queries << " RT queries, "
              << result.stats.cov_nodes << " cov nodes, max counter dims "
              << result.stats.counter_dims << "\n";
    if (result.verdict == has::Verdict::kViolated) {
      std::cout << result.counterexample << "\n";
    }
  }
  return 0;
}
