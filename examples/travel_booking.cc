// The paper's running example (Appendix A): the travel booking process.
// Loads the mini variant (tractable for full verification) and the full
// 6-task specification, verifies the discount-cancellation policy of
// Appendix A.2, and reports verdicts. The mini variant demonstrates the
// violation the paper describes (cancel a discounted flight without the
// penalty); the full variant is verified under an explicit budget.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/verifier.h"
#include "spec/parser.h"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void RunSpec(const std::string& path, const has::VerifierOptions& options) {
  std::cout << "### " << path << "\n";
  auto parsed = has::ParseSpec(ReadFile(path));
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status().ToString() << "\n";
    std::exit(1);
  }
  for (const auto& [name, property] : parsed->properties) {
    std::cout << "--- property " << name << "\n";
    has::VerifyResult result = has::Verify(parsed->system, property, options);
    std::cout << "verdict: " << has::VerdictName(result.verdict)
              << "  (RT queries: " << result.stats.queries
              << ", product states: " << result.stats.product_states
              << ", coverability nodes: " << result.stats.cov_nodes
              << (result.used_arithmetic ? ", arithmetic cells on" : "")
              << ")\n";
    if (result.verdict == has::Verdict::kViolated) {
      std::cout << result.counterexample << "\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "specs";
  has::VerifierOptions mini;
  mini.max_nav_depth = 2;
  RunSpec(dir + "/travel_mini.has", mini);

  has::VerifierOptions full;
  full.max_nav_depth = 1;
  full.max_branches = 1 << 9;
  full.max_cov_nodes = 1 << 13;
  std::cout << "(full model runs under a reduced budget; an INCONCLUSIVE\n"
               " verdict means the budget was exhausted, see DESIGN.md)\n";
  RunSpec(dir + "/travel.has", full);
  return 0;
}
