// The Theorem 11 construction: encoding an RB-VASS (VASS with resets
// and bounded lossiness) into a HAS, which shows LTL (as opposed to
// HLTL-FO) verification is undecidable for hierarchical systems. This
// example builds the d-counter hierarchy of Figure 2 programmatically —
// one child task per counter, each with an artifact relation whose
// cardinality encodes the counter; resets are task close/reopen — and
// prints the resulting system together with its VASS skeleton, then
// runs a Karp-Miller exploration of the raw counter system for
// comparison.
#include <iostream>

#include "model/artifact_system.h"
#include "model/validate.h"
#include "vass/karp_miller.h"
#include "vass/repeated.h"

namespace {

/// Builds the HAS of Theorem 11 for dimension d.
has::ArtifactSystem BuildEncoding(int d) {
  has::ArtifactSystem system;
  has::RelationId r = system.schema().AddRelation("R");
  (void)r;

  has::TaskId root = system.AddTask("T1", has::kNoTask);
  {
    has::Task& t = system.task(root);
    (void)t;
  }
  // P0 holds the simulated RB-VASS state in a numeric variable.
  has::TaskId p0 = system.AddTask("P0", root);
  {
    has::Task& t = system.task(p0);
    int s = t.vars().AddVar("s", has::VarSort::kNumeric);
    for (int q = 0; q < 3; ++q) {
      has::LinearExpr expr = has::LinearExpr::Var(s);
      expr.AddConstant(has::Rational(-q));
      has::InternalService svc;
      svc.name = "enter_q" + std::to_string(q);
      svc.pre = has::Condition::True();
      svc.post = has::Condition::Arith(
          has::LinearConstraint{expr, has::Relop::kEq});
      t.AddInternalService(std::move(svc));
    }
    t.SetOpeningPre(has::Condition::True());
  }
  // P_i / C_i per counter: C_i's artifact relation size is counter i.
  for (int i = 1; i <= d; ++i) {
    has::TaskId pi = system.AddTask("P" + std::to_string(i), root);
    system.task(pi).SetOpeningPre(has::Condition::True());
    {
      has::InternalService reset;
      reset.name = "sigma_r";
      reset.pre = has::Condition::True();
      reset.post = has::Condition::True();
      system.task(pi).AddInternalService(std::move(reset));
    }
    has::TaskId ci = system.AddTask("C" + std::to_string(i), pi);
    has::Task& c = system.task(ci);
    int x = c.vars().AddVar("x", has::VarSort::kId);
    c.DeclareSet({x});
    has::InternalService inc;
    inc.name = "sigma_plus";
    inc.pre = has::Condition::True();
    inc.post = has::Condition::Not(has::Condition::IsNull(x));
    inc.MarkInsert();
    c.AddInternalService(std::move(inc));
    has::InternalService dec;
    dec.name = "sigma_minus";
    dec.pre = has::Condition::True();
    dec.post = has::Condition::True();
    dec.MarkRetrieve();
    c.AddInternalService(std::move(dec));
    c.SetOpeningPre(has::Condition::True());
    c.SetClosingPre(has::Condition::True());
  }

  has::Status ok = has::ValidateSystem(system);
  if (!ok.ok()) {
    std::cerr << "encoding invalid: " << ok.ToString() << "\n";
    std::exit(1);
  }
  return system;
}

}  // namespace

int main() {
  const int d = 3;
  has::ArtifactSystem system = BuildEncoding(d);
  std::cout << "Theorem 11 encoding for a " << d << "-counter RB-VASS:\n"
            << system.ToString() << "\n";
  std::cout << "hierarchy depth: " << system.Depth() << "\n\n";

  // The raw counter system the encoding simulates: a 2-state VASS where
  // state 1 is repeatedly reachable only via a non-negative loop.
  has::ExplicitVass vass(2);
  vass.AddAction(0, {{0, +1}}, 0);
  vass.AddAction(0, {{0, -1}}, 1);
  vass.AddAction(1, {{0, +1}}, 0);
  has::KarpMiller km(&vass, {});
  km.Build({0});
  std::cout << "raw VASS coverability graph: " << km.num_nodes()
            << " nodes, " << km.TotalEdges() << " edges\n";
  auto lasso = has::FindAcceptingLasso(
      km, [](int state) { return state == 1; });
  std::cout << "state 1 repeatedly reachable: "
            << (lasso.has_value() ? "yes" : "no") << "\n";
  std::cout << "\nAs Theorem 11 shows, coordinating the C_i siblings "
               "requires propositions across concurrent tasks, which "
               "HLTL-FO deliberately cannot express — that is why the "
               "logic is hierarchical.\n";
  return 0;
}
