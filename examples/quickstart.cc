// Quickstart: define a two-task hierarchical artifact system with the
// spec language, verify one property that holds and one that is
// violated, and print the symbolic counterexample.
//
// The process: a root task repeatedly picks a product (an ID from the
// PRODUCTS relation) and calls an Approve subtask; approval succeeds
// only for products whose category matches the requested one. The bad
// property claims approval never happens twice.
#include <iostream>

#include "core/verifier.h"
#include "spec/parser.h"

namespace {

constexpr char kSpec[] = R"(
system {
  relation CATEGORIES { }
  relation PRODUCTS { category -> CATEGORIES; }

  task Purchase {
    ids: product, wanted_category;
    nums: approvals;
    input: wanted_category;

    service Pick {
      pre:  product == null;
      post: PRODUCTS(product, wanted_category) && approvals == 0;
    }

    task Approve {
      ids: product, category;
      nums: ok;
      input: product <- product;
      output: ok -> approvals;
      open when product != null;
      close when ok == 1;
      service Check {
        pre:  true;
        post: PRODUCTS(product, category) && ok == 1;
      }
    }

    service Reset {
      pre:  approvals == 1;
      post: product == null && approvals == 0;
    }
  }
}

property approval_reaches_ok {
  G ( open(Approve) -> [ F {ok == 1} ]@Approve )
}

property never_two_approvals {
  ! F ( svc(Reset) && X F svc(Reset) )
}
)";

}  // namespace

int main() {
  auto parsed = has::ParseSpec(kSpec);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status().ToString() << "\n";
    return 1;
  }
  const has::ArtifactSystem& system = parsed->system;
  std::cout << "Parsed system:\n" << system.ToString() << "\n";

  has::VerifierOptions options;
  options.max_nav_depth = 2;

  for (const auto& [name, property] : parsed->properties) {
    std::cout << "=== property " << name << " ===\n";
    has::VerifyResult result = has::Verify(system, property, options);
    std::cout << "verdict: " << has::VerdictName(result.verdict) << "\n";
    std::cout << "stats: " << result.stats.queries << " RT queries, "
              << result.stats.cov_nodes << " coverability nodes, "
              << result.stats.product_states << " product states\n";
    if (result.verdict == has::Verdict::kViolated) {
      std::cout << result.counterexample << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
