// The automaton family B(T, β) of Section 3: for each task T and truth
// assignment β to Φ_T (the [ψ]_T subformulas of the property over T),
// the Büchi automaton of   ∧_{β(ψ)=1} ψ ∧ ∧_{β(ψ)=0} ¬ψ
// over a unified proposition table for T. The verifier's per-task VASS
// product feeds letters (τ', σ', guessed child assignments) to these
// automata.
#ifndef HAS_HLTL_ASSIGNMENTS_H_
#define HAS_HLTL_ASSIGNMENTS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "hltl/hltl.h"
#include "ltl/buchi.h"

namespace has {

/// Truth assignment to Φ_T, one bit per element (bit i corresponds to
/// phi_nodes()[i]).
using Assignment = uint32_t;

class TaskAutomata {
 public:
  TaskAutomata(const ArtifactSystem* system, const HltlProperty* property,
               TaskId task);

  TaskId task() const { return task_; }

  /// Φ_T: property-node indices over this task, in node order.
  const std::vector<int>& phi_nodes() const { return phi_nodes_; }
  int num_assignments() const { return 1 << phi_nodes_.size(); }

  /// Position of property node `node` within phi_nodes(), or -1.
  int AssignmentBit(int node) const;

  /// The unified proposition table shared by all assignments of T.
  const std::vector<HltlProp>& props() const { return props_; }

  /// B(T, β); built on first use and cached. Thread-safe: concurrent
  /// RT queries construct their products from worker threads, and a
  /// returned reference stays valid for the automata's lifetime.
  const BuchiAutomaton& automaton(Assignment beta);

 private:
  int InternProp(const HltlProp& p);
  LtlPtr RemapSkeleton(const HltlNode& node);

  const ArtifactSystem* system_;
  const HltlProperty* property_;
  TaskId task_;
  std::vector<int> phi_nodes_;
  std::vector<HltlProp> props_;
  std::vector<LtlPtr> remapped_;  // parallel to phi_nodes_
  std::mutex cache_mutex_;
  std::map<Assignment, std::unique_ptr<BuchiAutomaton>> cache_;
};

/// All per-task automata of a property.
class PropertyAutomata {
 public:
  PropertyAutomata(const ArtifactSystem* system,
                   const HltlProperty* property);

  TaskAutomata& ForTask(TaskId t) { return *tasks_[t]; }
  const HltlProperty& property() const { return *property_; }

 private:
  const HltlProperty* property_;
  std::vector<std::unique_ptr<TaskAutomata>> tasks_;
};

}  // namespace has

#endif  // HAS_HLTL_ASSIGNMENTS_H_
