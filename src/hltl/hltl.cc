#include "hltl/hltl.h"

#include <functional>
#include <set>

#include "common/strings.h"

namespace has {

int HltlProperty::AddNode(HltlNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size() - 1);
}

std::vector<int> HltlProperty::NodesOfTask(TaskId t) const {
  std::vector<int> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].task == t) out.push_back(static_cast<int>(i));
  }
  return out;
}

HltlProperty HltlProperty::Negated() const {
  HltlProperty out = *this;
  out.nodes_[0].skeleton = LtlFormula::Not(out.nodes_[0].skeleton);
  return out;
}

Status HltlProperty::Validate(const ArtifactSystem& system) const {
  if (nodes_.empty()) {
    return Status::InvalidArgument("property has no nodes");
  }
  if (nodes_[0].task != system.root()) {
    return Status::InvalidArgument("node 0 must be over the root task");
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const HltlNode& n = nodes_[i];
    if (n.task < 0 || n.task >= system.num_tasks()) {
      return Status::InvalidArgument(StrCat("node ", i, ": bad task id"));
    }
    const Task& t = system.task(n.task);
    if (n.skeleton == nullptr) {
      return Status::InvalidArgument(StrCat("node ", i, ": null skeleton"));
    }
    int max_prop = n.skeleton->MaxProp();
    if (max_prop >= static_cast<int>(n.props.size())) {
      return Status::InvalidArgument(
          StrCat("node ", i, ": skeleton references prop ", max_prop,
                 " beyond prop table"));
    }
    for (size_t p = 0; p < n.props.size(); ++p) {
      const HltlProp& prop = n.props[p];
      switch (prop.kind) {
        case HltlProp::Kind::kCondition: {
          Status s = prop.condition->CheckWellFormed(t.vars(),
                                                     system.schema());
          if (!s.ok()) {
            return Status::InvalidArgument(
                StrCat("node ", i, " prop ", p, ": ", s.message()));
          }
          break;
        }
        case HltlProp::Kind::kService: {
          bool observable = false;
          for (const ServiceRef& s : system.ObservableServices(n.task)) {
            if (s == prop.service) {
              observable = true;
              break;
            }
          }
          if (!observable) {
            return Status::InvalidArgument(
                StrCat("node ", i, " prop ", p,
                       ": service not observable by task ", t.name()));
          }
          break;
        }
        case HltlProp::Kind::kChildFormula: {
          if (prop.child_node < 0 ||
              prop.child_node >= static_cast<int>(nodes_.size())) {
            return Status::InvalidArgument(
                StrCat("node ", i, " prop ", p, ": bad child node"));
          }
          TaskId child_task = nodes_[prop.child_node].task;
          bool is_child = false;
          for (TaskId c : t.children()) {
            if (c == child_task) {
              is_child = true;
              break;
            }
          }
          if (!is_child) {
            return Status::InvalidArgument(StrCat(
                "node ", i, " prop ", p, ": [ψ] refers to task ",
                system.task(child_task).name(), " which is not a child of ",
                t.name()));
          }
          break;
        }
      }
    }
  }
  return Status::Ok();
}

std::string HltlProperty::ToString(const ArtifactSystem& system) const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const HltlNode& n = nodes_[i];
    const Task& t = system.task(n.task);
    auto prop_name = [&](int p) -> std::string {
      if (p < 0 || p >= static_cast<int>(n.props.size())) {
        return StrCat("?p", p);
      }
      const HltlProp& prop = n.props[p];
      switch (prop.kind) {
        case HltlProp::Kind::kCondition:
          return StrCat("{", prop.condition->ToString(t.vars(),
                                                      &system.schema()),
                        "}");
        case HltlProp::Kind::kService:
          return system.ServiceName(prop.service);
        case HltlProp::Kind::kChildFormula:
          return StrCat("[node", prop.child_node, "]_",
                        system.task(nodes_[prop.child_node].task).name());
      }
      return "?";
    };
    out += StrCat("node ", i, " [.]_", t.name(), ": ",
                  n.skeleton->ToString(prop_name), "\n");
  }
  return out;
}

}  // namespace has
