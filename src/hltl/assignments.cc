#include "hltl/assignments.h"

#include "common/status.h"

namespace has {

TaskAutomata::TaskAutomata(const ArtifactSystem* system,
                           const HltlProperty* property, TaskId task)
    : system_(system), property_(property), task_(task) {
  phi_nodes_ = property->NodesOfTask(task);
  HAS_CHECK_MSG(phi_nodes_.size() <= 20, "too many subformulas per task");
  remapped_.reserve(phi_nodes_.size());
  for (int n : phi_nodes_) {
    remapped_.push_back(RemapSkeleton(property->node(n)));
  }
}

int TaskAutomata::AssignmentBit(int node) const {
  for (size_t i = 0; i < phi_nodes_.size(); ++i) {
    if (phi_nodes_[i] == node) return static_cast<int>(i);
  }
  return -1;
}

int TaskAutomata::InternProp(const HltlProp& p) {
  for (size_t i = 0; i < props_.size(); ++i) {
    const HltlProp& q = props_[i];
    if (q.kind != p.kind) continue;
    switch (p.kind) {
      case HltlProp::Kind::kCondition:
        if (q.condition->Equals(*p.condition)) return static_cast<int>(i);
        break;
      case HltlProp::Kind::kService:
        if (q.service == p.service) return static_cast<int>(i);
        break;
      case HltlProp::Kind::kChildFormula:
        if (q.child_node == p.child_node) return static_cast<int>(i);
        break;
    }
  }
  props_.push_back(p);
  return static_cast<int>(props_.size() - 1);
}

LtlPtr TaskAutomata::RemapSkeleton(const HltlNode& node) {
  std::vector<int> remap(node.props.size());
  for (size_t p = 0; p < node.props.size(); ++p) {
    remap[p] = InternProp(node.props[p]);
  }
  std::function<LtlPtr(const LtlPtr&)> walk =
      [&](const LtlPtr& f) -> LtlPtr {
    switch (f->kind()) {
      case LtlKind::kTrue:
        return LtlFormula::True();
      case LtlKind::kFalse:
        return LtlFormula::False();
      case LtlKind::kProp: {
        HAS_CHECK(f->prop() >= 0 &&
                  f->prop() < static_cast<int>(remap.size()));
        return LtlFormula::Prop(remap[f->prop()]);
      }
      case LtlKind::kNot:
        return LtlFormula::Not(walk(f->left()));
      case LtlKind::kAnd:
        return LtlFormula::And(walk(f->left()), walk(f->right()));
      case LtlKind::kOr:
        return LtlFormula::Or(walk(f->left()), walk(f->right()));
      case LtlKind::kNext:
        return LtlFormula::Next(walk(f->left()));
      case LtlKind::kUntil:
        return LtlFormula::Until(walk(f->left()), walk(f->right()));
    }
    return LtlFormula::True();
  };
  return walk(node.skeleton);
}

const BuchiAutomaton& TaskAutomata::automaton(Assignment beta) {
  // Serializes lazy construction; automata are heap-owned so returned
  // references survive later insertions.
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(beta);
  if (it != cache_.end()) return *it->second;
  LtlPtr combined = LtlFormula::True();
  bool first = true;
  for (size_t i = 0; i < phi_nodes_.size(); ++i) {
    LtlPtr piece = remapped_[i];
    if (((beta >> i) & 1) == 0) piece = LtlFormula::Not(piece);
    combined = first ? piece : LtlFormula::And(combined, piece);
    first = false;
  }
  auto automaton = std::make_unique<BuchiAutomaton>(
      BuildBuchi(combined, static_cast<int>(props_.size())));
  const BuchiAutomaton& ref = *automaton;
  cache_[beta] = std::move(automaton);
  return ref;
}

PropertyAutomata::PropertyAutomata(const ArtifactSystem* system,
                                   const HltlProperty* property)
    : property_(property) {
  tasks_.reserve(system->num_tasks());
  for (TaskId t = 0; t < system->num_tasks(); ++t) {
    tasks_.push_back(std::make_unique<TaskAutomata>(system, property, t));
  }
}

}  // namespace has
