// HLTL-FO (Section 3, Definition 12). A property is a tree of per-task
// formulas: each node is an LTL skeleton for one task whose
// propositions are (i) quantifier-free conditions over the task's
// variables, (ii) service propositions from Σ^obs_T, or (iii) child
// subformulas [ψ]_Tc referring to another node of the tree for a child
// task. The property itself is [ξ]_T1 where node 0 is ξ over the root.
//
// Global variables and set atoms are compiled away by the caller as in
// Lemma 30 (the spec language performs the x=y flag-pair encoding).
#ifndef HAS_HLTL_HLTL_H_
#define HAS_HLTL_HLTL_H_

#include <string>
#include <vector>

#include "ltl/formula.h"
#include "model/artifact_system.h"

namespace has {

/// A proposition of a per-task HLTL skeleton.
struct HltlProp {
  enum class Kind : uint8_t { kCondition, kService, kChildFormula };

  Kind kind = Kind::kCondition;
  CondPtr condition;          ///< kCondition: over the task's scope
  ServiceRef service;         ///< kService
  int child_node = -1;        ///< kChildFormula: index into the node table

  static HltlProp Cond(CondPtr c) {
    HltlProp p;
    p.kind = Kind::kCondition;
    p.condition = std::move(c);
    return p;
  }
  static HltlProp Service(ServiceRef s) {
    HltlProp p;
    p.kind = Kind::kService;
    p.service = s;
    return p;
  }
  static HltlProp Child(int node) {
    HltlProp p;
    p.kind = Kind::kChildFormula;
    p.child_node = node;
    return p;
  }
};

/// One [ψ]_T node.
struct HltlNode {
  TaskId task = kNoTask;
  LtlPtr skeleton;              ///< LTL over local prop ids
  std::vector<HltlProp> props;  ///< local prop table
};

/// A full HLTL-FO property over an artifact system.
class HltlProperty {
 public:
  /// Adds a node; node 0 must be the root formula (over the root task).
  int AddNode(HltlNode node);

  /// Mutable access (the parser reserves node 0 and patches it last).
  HltlNode& mutable_node(int i) { return nodes_[i]; }

  const HltlNode& node(int i) const { return nodes_[i]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int root_node() const { return 0; }

  /// Nodes whose task is `t` — the set Φ_T of the paper.
  std::vector<int> NodesOfTask(TaskId t) const;

  /// The property with the root skeleton negated ([¬ξ]_T1); used to
  /// search for counterexamples.
  HltlProperty Negated() const;

  /// Structural checks: node 0 over the root; child props reference
  /// nodes of child tasks; conditions well-formed; service props
  /// observable by the node's task.
  Status Validate(const ArtifactSystem& system) const;

  std::string ToString(const ArtifactSystem& system) const;

 private:
  std::vector<HltlNode> nodes_;
};

}  // namespace has

#endif  // HAS_HLTL_HLTL_H_
