#include "model/validate.h"

#include <set>

#include "common/strings.h"
#include "model/independence.h"

namespace has {

namespace {

void CheckTask(const ArtifactSystem& system, const Task& t,
               const SpecLocations* locs, std::vector<std::string>* errors) {
  // Every message is anchored at the most specific declaration whose
  // location is known: the relation or service at fault where there is
  // one, the task header otherwise. Without locations the wording is
  // byte-identical to the historical output.
  auto error_at = [&](SourceLoc loc, const std::string& msg) {
    std::string where = locs == nullptr ? std::string() : locs->Render(loc);
    errors->push_back(StrCat(where.empty() ? "" : StrCat(where, ": "),
                             "task ", t.name(), ": ", msg));
  };
  auto error = [&](const std::string& msg) {
    error_at(locs == nullptr ? SourceLoc{} : locs->Task(t.name()), msg);
  };
  auto rel_loc = [&](const std::string& rel) {
    return locs == nullptr ? SourceLoc{} : locs->Relation(t.name(), rel);
  };
  auto svc_loc = [&](const std::string& svc) {
    return locs == nullptr ? SourceLoc{} : locs->Service(t.name(), svc);
  };
  const DatabaseSchema& schema = system.schema();

  // Artifact relations S_T,1 … S_T,k: per relation, a distinct name,
  // arity ≥ 1, and a tuple of distinct ID variables of the task
  // (Definition 2 requires each s̄_T,i to consist of distinct ID vars;
  // the per-relation fixed tuple is restriction 7's analogue).
  {
    std::set<std::string> names;
    for (const SetRelation& rel : t.set_relations()) {
      if (!names.insert(rel.name).second) {
        error_at(rel_loc(rel.name),
                 StrCat("duplicate artifact relation name ", rel.name));
      }
      std::set<int> seen;
      for (int v : rel.vars) {
        if (v < 0 || v >= t.vars().size()) {
          error_at(rel_loc(rel.name),
                   StrCat("relation ", rel.name, ": set variable index ", v,
                          " out of scope"));
          continue;
        }
        if (!seen.insert(v).second) {
          error_at(rel_loc(rel.name),
                   StrCat("relation ", rel.name, ": duplicate set variable ",
                          t.vars().var(v).name));
        }
        if (t.vars().var(v).sort != VarSort::kId) {
          error_at(rel_loc(rel.name),
                   StrCat("relation ", rel.name, ": set variable ",
                          t.vars().var(v).name, " must be an ID variable"));
        }
      }
      if (rel.vars.empty()) {
        error_at(rel_loc(rel.name),
                 StrCat("artifact relation ", rel.name, " of arity 0"));
      }
    }
  }

  // Internal services: conditions over the task's scope; every set
  // update must target a declared relation (the generalized form of
  // restriction 5), at most once per relation. The δ-target checks run
  // inside the static independence analysis (model/independence.h),
  // which walks the same per-service data to build the footprints and
  // commutation matrix consumed by partial-order reduction.
  for (const InternalService& s : t.services()) {
    Status pre = s.pre->CheckWellFormed(t.vars(), schema);
    if (!pre.ok()) {
      error_at(svc_loc(s.name),
               StrCat("service ", s.name, " pre: ", pre.message()));
    }
    Status post = s.post->CheckWellFormed(t.vars(), schema);
    if (!post.ok()) {
      error_at(svc_loc(s.name),
               StrCat("service ", s.name, " post: ", post.message()));
    }
  }
  {
    std::vector<std::string> delta_errors;
    TaskIndependence::Analyze(t, &delta_errors);
    for (const std::string& msg : delta_errors) error(msg);
  }

  // Input mapping f_in: partial 1-1, sort-preserving.
  {
    std::set<int> own, parent_vars;
    for (const auto& [own_var, parent_var] : t.fin()) {
      if (own_var < 0 || own_var >= t.vars().size()) {
        error(StrCat("input variable index ", own_var, " out of scope"));
        continue;
      }
      if (!own.insert(own_var).second) {
        error(StrCat("variable ", t.vars().var(own_var).name,
                     " is an input target twice (f_in must be 1-1)"));
      }
      if (!t.is_root()) {
        const Task& p = system.task(t.parent());
        if (parent_var < 0 || parent_var >= p.vars().size()) {
          error(StrCat("input source index ", parent_var,
                       " out of parent scope"));
          continue;
        }
        if (!parent_vars.insert(parent_var).second) {
          error(StrCat("parent variable ", p.vars().var(parent_var).name,
                       " passed twice (f_in must be 1-1)"));
        }
        if (p.vars().var(parent_var).sort != t.vars().var(own_var).sort) {
          error(StrCat("input ", t.vars().var(own_var).name,
                       " has a different sort than its source"));
        }
      }
    }
  }

  // Output mapping f_out: partial 1-1, sort-preserving, and the parent
  // return targets must be disjoint from the task's input sources --
  // restriction 3 / Definition 6(ii): x̄^T_{Tc↑} ∩ x̄^T_in = ∅, where
  // x̄^T_in are the parent's own input variables.
  if (!t.is_root()) {
    const Task& p = system.task(t.parent());
    std::set<int> targets, own;
    std::set<int> parent_inputs;
    for (const auto& [pv_own, pv_parent] : p.fin()) {
      (void)pv_parent;
      parent_inputs.insert(pv_own);
    }
    for (const auto& [parent_var, own_var] : t.fout()) {
      if (parent_var < 0 || parent_var >= p.vars().size()) {
        error(StrCat("return target index ", parent_var,
                     " out of parent scope"));
        continue;
      }
      if (own_var < 0 || own_var >= t.vars().size()) {
        error(StrCat("return source index ", own_var, " out of scope"));
        continue;
      }
      if (!targets.insert(parent_var).second) {
        error(StrCat("parent variable ", p.vars().var(parent_var).name,
                     " is a return target twice (f_out must be 1-1)"));
      }
      if (!own.insert(own_var).second) {
        error(StrCat("variable ", t.vars().var(own_var).name,
                     " returned twice (f_out must be 1-1)"));
      }
      if (p.vars().var(parent_var).sort != t.vars().var(own_var).sort) {
        error(StrCat("return ", t.vars().var(own_var).name,
                     " has a different sort than its target"));
      }
      if (parent_inputs.count(parent_var) > 0) {
        error(StrCat("parent variable ", p.vars().var(parent_var).name,
                     " is both an input of the parent and a return target "
                     "(violates restriction 3)"));
      }
    }
    // Opening pre-condition lives in the parent's scope.
    Status open = t.opening_pre()->CheckWellFormed(p.vars(), schema);
    if (!open.ok()) error(StrCat("opening pre: ", open.message()));
  } else {
    if (!t.fout().empty()) error("root task cannot return variables");
    if (t.closing_pre()->kind() != CondKind::kFalse) {
      error("root task must have closing pre-condition false");
    }
  }

  Status close = t.closing_pre()->CheckWellFormed(t.vars(), schema);
  if (!close.ok()) error(StrCat("closing pre: ", close.message()));
}

}  // namespace

std::vector<std::string> ValidateSystemAll(const ArtifactSystem& system,
                                           const SpecLocations* locs) {
  std::vector<std::string> errors;
  Status schema = system.schema().Validate();
  if (!schema.ok()) errors.push_back(schema.message());
  if (system.num_tasks() == 0) {
    errors.push_back("artifact system has no tasks");
    return errors;
  }
  for (TaskId t = 0; t < system.num_tasks(); ++t) {
    CheckTask(system, system.task(t), locs, &errors);
  }
  // Global pre-condition Π over the root's variables (the paper scopes
  // it to the root's input variables; we check the variables mentioned
  // are indeed inputs).
  const Task& root = system.task(system.root());
  Status pre = system.global_pre()->CheckWellFormed(root.vars(),
                                                    system.schema());
  if (!pre.ok()) {
    errors.push_back(StrCat("global pre-condition: ", pre.message()));
  } else {
    std::set<int> inputs;
    for (const auto& [own, parent] : root.fin()) {
      (void)parent;
      inputs.insert(own);
    }
    std::vector<int> vars;
    system.global_pre()->CollectVars(&vars);
    for (int v : vars) {
      if (inputs.count(v) == 0) {
        errors.push_back(
            StrCat("global pre-condition mentions non-input variable ",
                   root.vars().var(v).name));
      }
    }
  }
  return errors;
}

Status ValidateSystem(const ArtifactSystem& system,
                      const SpecLocations* locs) {
  std::vector<std::string> errors = ValidateSystemAll(system, locs);
  if (errors.empty()) return Status::Ok();
  return Status::InvalidArgument(errors.front());
}

}  // namespace has
