// Task schemas (Definitions 2-3). A task owns a scope of artifact
// variables, an optional artifact relation S_T over a tuple s̄_T of
// distinct ID variables, declared input variables x̄_in, its services,
// and the opening/closing machinery connecting it to its parent.
#ifndef HAS_MODEL_TASK_H_
#define HAS_MODEL_TASK_H_

#include <string>
#include <utility>
#include <vector>

#include "expr/condition.h"

namespace has {

using TaskId = int;
inline constexpr TaskId kNoTask = -1;

/// An internal service σ = (π, ψ, δ) of a task (Definition 5). The
/// pre-condition is evaluated on the current artifact tuple, the
/// post-condition on the next one; δ inserts and/or retrieves the s̄_T
/// tuple from the artifact relation.
struct InternalService {
  std::string name;
  CondPtr pre;
  CondPtr post;
  bool inserts = false;   ///< +S_T(s̄_T) ∈ δ
  bool retrieves = false; ///< -S_T(s̄_T) ∈ δ
};

/// A task schema plus its interaction contract with the parent.
class Task {
 public:
  Task(std::string name, TaskId id, TaskId parent)
      : name_(std::move(name)),
        id_(id),
        parent_(parent),
        opening_pre_(Condition::True()),
        closing_pre_(Condition::False()) {}

  const std::string& name() const { return name_; }
  TaskId id() const { return id_; }
  TaskId parent() const { return parent_; }
  bool is_root() const { return parent_ == kNoTask; }

  const std::vector<TaskId>& children() const { return children_; }
  void AddChild(TaskId child) { children_.push_back(child); }

  VarScope& vars() { return vars_; }
  const VarScope& vars() const { return vars_; }

  // --- artifact relation -------------------------------------------------
  /// Declares the artifact relation with tuple s̄_T (distinct ID vars).
  void DeclareSet(std::vector<int> set_vars) {
    has_set_ = true;
    set_vars_ = std::move(set_vars);
  }
  bool has_set() const { return has_set_; }
  const std::vector<int>& set_vars() const { return set_vars_; }

  // --- input / return wiring ---------------------------------------------
  /// f_in pairs (child_var, parent_var); dom(f_in) = x̄_in of this task.
  /// For the root, parent_var is ignored and the pairs just declare the
  /// input variables receiving the initial external valuation.
  void AddInput(int own_var, int parent_var) {
    fin_.emplace_back(own_var, parent_var);
  }
  const std::vector<std::pair<int, int>>& fin() const { return fin_; }
  /// The input variables x̄_in (dom f_in), in declaration order.
  std::vector<int> InputVars() const;

  /// f_out pairs (parent_var, own_var): when this task closes, parent
  /// variable `parent_var` receives the value of this task's `own_var`.
  void AddOutput(int parent_var, int own_var) {
    fout_.emplace_back(parent_var, own_var);
  }
  const std::vector<std::pair<int, int>>& fout() const { return fout_; }
  /// The to-be-returned variables x̄_ret (range f_out) in this task.
  std::vector<int> ReturnVars() const;
  /// The parent's variables written on return (x̄^T_{Tc↑}).
  std::vector<int> ParentReturnTargets() const;

  // --- services ------------------------------------------------------------
  int AddInternalService(InternalService service) {
    services_.push_back(std::move(service));
    return static_cast<int>(services_.size() - 1);
  }
  const std::vector<InternalService>& services() const { return services_; }
  const InternalService& service(int i) const { return services_[i]; }

  /// Opening pre-condition π of σ^o_T, a condition over the PARENT's
  /// variable scope (Definition 6(i)). True for the root.
  void SetOpeningPre(CondPtr pre) { opening_pre_ = std::move(pre); }
  const CondPtr& opening_pre() const { return opening_pre_; }

  /// Closing pre-condition π of σ^c_T, over this task's scope
  /// (Definition 6(ii)). False for the root (the root never returns).
  void SetClosingPre(CondPtr pre) { closing_pre_ = std::move(pre); }
  const CondPtr& closing_pre() const { return closing_pre_; }

 private:
  std::string name_;
  TaskId id_;
  TaskId parent_;
  std::vector<TaskId> children_;
  VarScope vars_;
  bool has_set_ = false;
  std::vector<int> set_vars_;
  std::vector<std::pair<int, int>> fin_;
  std::vector<std::pair<int, int>> fout_;
  std::vector<InternalService> services_;
  CondPtr opening_pre_;
  CondPtr closing_pre_;
};

}  // namespace has

#endif  // HAS_MODEL_TASK_H_
