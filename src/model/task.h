// Task schemas (Definitions 2-3), generalized to a FAMILY of artifact
// relations per task. A task owns a scope of artifact variables, a list
// of named artifact relations S_T,1 … S_T,k — each over its own tuple
// s̄_T,i of distinct ID variables — declared input variables x̄_in, its
// services, and the opening/closing machinery connecting it to its
// parent. The paper's single S_T is the k = 1 special case (relation
// name "S", see DeclareSet).
#ifndef HAS_MODEL_TASK_H_
#define HAS_MODEL_TASK_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "expr/condition.h"

namespace has {

using TaskId = int;
inline constexpr TaskId kNoTask = -1;

/// One artifact relation S_T,i of a task: a (task-unique) name and the
/// tuple s̄_T,i of distinct ID variables whose values it stores.
struct SetRelation {
  std::string name;
  std::vector<int> vars;
};

/// Default name of the artifact relation declared through the
/// single-relation sugar (`set (x̄);` in specs, Task::DeclareSet in
/// code); the paper's S_T.
inline constexpr char kDefaultSetName[] = "S";

/// An internal service σ = (π, ψ, δ) of a task (Definition 5). The
/// pre-condition is evaluated on the current artifact tuple, the
/// post-condition on the next one; δ is a set of per-relation updates
/// {+S_T,i(s̄_T,i), -S_T,j(s̄_T,j), ...} identified by relation index.
struct InternalService {
  std::string name;
  CondPtr pre;
  CondPtr post;
  std::vector<int> insert_rels;   ///< relations i with +S_T,i(s̄_T,i) ∈ δ
  std::vector<int> retrieve_rels; ///< relations i with -S_T,i(s̄_T,i) ∈ δ

  bool InsertsInto(int rel) const {
    return std::find(insert_rels.begin(), insert_rels.end(), rel) !=
           insert_rels.end();
  }
  bool RetrievesFrom(int rel) const {
    return std::find(retrieve_rels.begin(), retrieve_rels.end(), rel) !=
           retrieve_rels.end();
  }
  bool HasSetOps() const {
    return !insert_rels.empty() || !retrieve_rels.empty();
  }
  /// Single-relation sugar: +S_T(s̄_T) / -S_T(s̄_T) on relation 0.
  void MarkInsert(int rel = 0) {
    if (!InsertsInto(rel)) insert_rels.push_back(rel);
  }
  void MarkRetrieve(int rel = 0) {
    if (!RetrievesFrom(rel)) retrieve_rels.push_back(rel);
  }
};

/// A task schema plus its interaction contract with the parent.
class Task {
 public:
  Task(std::string name, TaskId id, TaskId parent)
      : name_(std::move(name)),
        id_(id),
        parent_(parent),
        opening_pre_(Condition::True()),
        closing_pre_(Condition::False()) {}

  const std::string& name() const { return name_; }
  TaskId id() const { return id_; }
  TaskId parent() const { return parent_; }
  bool is_root() const { return parent_ == kNoTask; }

  const std::vector<TaskId>& children() const { return children_; }
  void AddChild(TaskId child) { children_.push_back(child); }

  VarScope& vars() { return vars_; }
  const VarScope& vars() const { return vars_; }

  // --- artifact relations -------------------------------------------------
  /// Declares artifact relation S_T,i = `name` over tuple `vars`
  /// (distinct ID vars); returns its index i. Re-declaring an existing
  /// name replaces that relation's tuple in place (the per-relation
  /// analogue of restriction 7's fixed tuple).
  int AddSetRelation(std::string name, std::vector<int> vars) {
    for (size_t i = 0; i < set_relations_.size(); ++i) {
      if (set_relations_[i].name == name) {
        set_relations_[i].vars = std::move(vars);
        return static_cast<int>(i);
      }
    }
    set_relations_.push_back(SetRelation{std::move(name), std::move(vars)});
    return static_cast<int>(set_relations_.size() - 1);
  }
  /// Single-relation sugar (the paper's one S_T): declares/replaces the
  /// relation named kDefaultSetName.
  void DeclareSet(std::vector<int> set_vars) {
    AddSetRelation(kDefaultSetName, std::move(set_vars));
  }
  const std::vector<SetRelation>& set_relations() const {
    return set_relations_;
  }
  int num_set_relations() const {
    return static_cast<int>(set_relations_.size());
  }
  /// Index of the relation named `name`; -1 if absent.
  int FindSetRelation(const std::string& name) const {
    for (size_t i = 0; i < set_relations_.size(); ++i) {
      if (set_relations_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
  bool has_set() const { return !set_relations_.empty(); }
  /// Tuple of the FIRST artifact relation (single-relation sugar; empty
  /// when the task has none).
  const std::vector<int>& set_vars() const {
    static const std::vector<int> kEmpty;
    return set_relations_.empty() ? kEmpty : set_relations_[0].vars;
  }

  // --- input / return wiring ---------------------------------------------
  /// f_in pairs (child_var, parent_var); dom(f_in) = x̄_in of this task.
  /// For the root, parent_var is ignored and the pairs just declare the
  /// input variables receiving the initial external valuation.
  void AddInput(int own_var, int parent_var) {
    fin_.emplace_back(own_var, parent_var);
  }
  const std::vector<std::pair<int, int>>& fin() const { return fin_; }
  /// The input variables x̄_in (dom f_in), in declaration order.
  std::vector<int> InputVars() const;

  /// f_out pairs (parent_var, own_var): when this task closes, parent
  /// variable `parent_var` receives the value of this task's `own_var`.
  void AddOutput(int parent_var, int own_var) {
    fout_.emplace_back(parent_var, own_var);
  }
  const std::vector<std::pair<int, int>>& fout() const { return fout_; }
  /// The to-be-returned variables x̄_ret (range f_out) in this task.
  std::vector<int> ReturnVars() const;
  /// The parent's variables written on return (x̄^T_{Tc↑}).
  std::vector<int> ParentReturnTargets() const;

  // --- services ------------------------------------------------------------
  int AddInternalService(InternalService service) {
    services_.push_back(std::move(service));
    return static_cast<int>(services_.size() - 1);
  }
  const std::vector<InternalService>& services() const { return services_; }
  const InternalService& service(int i) const { return services_[i]; }
  InternalService& mutable_service(int i) { return services_[i]; }

  /// Opening pre-condition π of σ^o_T, a condition over the PARENT's
  /// variable scope (Definition 6(i)). True for the root.
  void SetOpeningPre(CondPtr pre) { opening_pre_ = std::move(pre); }
  const CondPtr& opening_pre() const { return opening_pre_; }

  /// Closing pre-condition π of σ^c_T, over this task's scope
  /// (Definition 6(ii)). False for the root (the root never returns).
  void SetClosingPre(CondPtr pre) { closing_pre_ = std::move(pre); }
  const CondPtr& closing_pre() const { return closing_pre_; }

 private:
  std::string name_;
  TaskId id_;
  TaskId parent_;
  std::vector<TaskId> children_;
  VarScope vars_;
  std::vector<SetRelation> set_relations_;
  std::vector<std::pair<int, int>> fin_;
  std::vector<std::pair<int, int>> fout_;
  std::vector<InternalService> services_;
  CondPtr opening_pre_;
  CondPtr closing_pre_;
};

}  // namespace has

#endif  // HAS_MODEL_TASK_H_
