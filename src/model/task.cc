#include "model/task.h"

namespace has {

std::vector<int> Task::InputVars() const {
  std::vector<int> out;
  out.reserve(fin_.size());
  for (const auto& [own, parent] : fin_) out.push_back(own);
  return out;
}

std::vector<int> Task::ReturnVars() const {
  std::vector<int> out;
  out.reserve(fout_.size());
  for (const auto& [parent, own] : fout_) out.push_back(own);
  return out;
}

std::vector<int> Task::ParentReturnTargets() const {
  std::vector<int> out;
  out.reserve(fout_.size());
  for (const auto& [parent, own] : fout_) out.push_back(parent);
  return out;
}

}  // namespace has
