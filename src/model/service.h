// Global service references. A run of a task observes services in
// Σ^obs_T: its own internal services, its opening/closing service, and
// the opening/closing services of its children (Section 2). HLTL-FO
// formulas use these as propositions.
#ifndef HAS_MODEL_SERVICE_H_
#define HAS_MODEL_SERVICE_H_

#include <cstdint>
#include <string>

#include "common/hashing.h"
#include "model/task.h"

namespace has {

struct ServiceRef {
  enum class Kind : uint8_t { kInternal, kOpening, kClosing };

  Kind kind = Kind::kInternal;
  TaskId task = kNoTask;  ///< owning task (for open/close: the opened task)
  int index = -1;         ///< internal service index (kInternal only)

  static ServiceRef Internal(TaskId t, int i) {
    return ServiceRef{Kind::kInternal, t, i};
  }
  static ServiceRef Opening(TaskId t) {
    return ServiceRef{Kind::kOpening, t, -1};
  }
  static ServiceRef Closing(TaskId t) {
    return ServiceRef{Kind::kClosing, t, -1};
  }

  bool operator==(const ServiceRef& o) const {
    return kind == o.kind && task == o.task && index == o.index;
  }
  bool operator!=(const ServiceRef& o) const { return !(*this == o); }
  bool operator<(const ServiceRef& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (task != o.task) return task < o.task;
    return index < o.index;
  }

  size_t Hash() const {
    size_t seed = static_cast<size_t>(kind);
    HashMix(&seed, task);
    HashMix(&seed, index);
    return seed;
  }
};

struct ServiceRefHash {
  size_t operator()(const ServiceRef& s) const { return s.Hash(); }
};

}  // namespace has

#endif  // HAS_MODEL_SERVICE_H_
