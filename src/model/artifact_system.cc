#include "model/artifact_system.h"

#include <functional>

#include "common/status.h"
#include "common/strings.h"

namespace has {

TaskId ArtifactSystem::AddTask(std::string name, TaskId parent) {
  TaskId id = static_cast<TaskId>(tasks_.size());
  if (id == 0) {
    HAS_CHECK_MSG(parent == kNoTask, "first task must be the root");
  } else {
    HAS_CHECK_MSG(parent >= 0 && parent < id, "parent must precede child");
  }
  tasks_.emplace_back(std::move(name), id, parent);
  if (parent != kNoTask) tasks_[parent].AddChild(id);
  return id;
}

TaskId ArtifactSystem::FindTask(const std::string& name) const {
  for (const Task& t : tasks_) {
    if (t.name() == name) return t.id();
  }
  return kNoTask;
}

int ArtifactSystem::Depth() const {
  std::function<int(TaskId)> depth = [&](TaskId t) {
    int best = 1;
    for (TaskId c : tasks_[t].children()) best = std::max(best, 1 + depth(c));
    return best;
  };
  return tasks_.empty() ? 0 : depth(root());
}

std::vector<TaskId> ArtifactSystem::PreOrder() const {
  std::vector<TaskId> out;
  std::function<void(TaskId)> visit = [&](TaskId t) {
    out.push_back(t);
    for (TaskId c : tasks_[t].children()) visit(c);
  };
  if (!tasks_.empty()) visit(root());
  return out;
}

std::vector<TaskId> ArtifactSystem::PostOrder() const {
  std::vector<TaskId> out;
  std::function<void(TaskId)> visit = [&](TaskId t) {
    for (TaskId c : tasks_[t].children()) visit(c);
    out.push_back(t);
  };
  if (!tasks_.empty()) visit(root());
  return out;
}

std::vector<ServiceRef> ArtifactSystem::ObservableServices(TaskId t) const {
  std::vector<ServiceRef> out;
  const Task& task = tasks_[t];
  for (size_t i = 0; i < task.services().size(); ++i) {
    out.push_back(ServiceRef::Internal(t, static_cast<int>(i)));
  }
  out.push_back(ServiceRef::Opening(t));
  out.push_back(ServiceRef::Closing(t));
  for (TaskId c : task.children()) {
    out.push_back(ServiceRef::Opening(c));
    out.push_back(ServiceRef::Closing(c));
  }
  return out;
}

std::string ArtifactSystem::ServiceName(const ServiceRef& s) const {
  const Task& t = tasks_[s.task];
  switch (s.kind) {
    case ServiceRef::Kind::kInternal:
      return StrCat(t.name(), ".", t.service(s.index).name);
    case ServiceRef::Kind::kOpening:
      return StrCat("open(", t.name(), ")");
    case ServiceRef::Kind::kClosing:
      return StrCat("close(", t.name(), ")");
  }
  return "?";
}

int ArtifactSystem::SizeMeasure() const {
  int n = 0;
  for (const Task& t : tasks_) {
    n += t.vars().size();
    n += static_cast<int>(t.services().size());
    std::vector<const Condition*> atoms;
    for (const InternalService& s : t.services()) {
      s.pre->CollectAtoms(&atoms);
      s.post->CollectAtoms(&atoms);
    }
    t.opening_pre()->CollectAtoms(&atoms);
    t.closing_pre()->CollectAtoms(&atoms);
    n += static_cast<int>(atoms.size());
  }
  n += schema_.num_relations();
  return n;
}

std::string ArtifactSystem::ToString() const {
  std::string out = schema_.ToString();
  for (const Task& t : tasks_) {
    out += StrCat("task ", t.name(), t.is_root() ? " (root)" : "", "\n");
    std::vector<std::string> vars;
    for (int v = 0; v < t.vars().size(); ++v) {
      vars.push_back(StrCat(t.vars().var(v).name,
                            t.vars().var(v).sort == VarSort::kId ? ":id"
                                                                 : ":num"));
    }
    out += StrCat("  vars: ", StrJoin(vars, ", "), "\n");
    for (const SetRelation& rel : t.set_relations()) {
      std::vector<std::string> sv;
      for (int v : rel.vars) sv.push_back(t.vars().var(v).name);
      out += StrCat("  set ", rel.name, "(", StrJoin(sv, ", "), ")\n");
    }
    for (const InternalService& s : t.services()) {
      auto rel_name = [&t](int r) {
        return r >= 0 && r < t.num_set_relations()
                   ? t.set_relations()[r].name
                   : StrCat("?rel", r);
      };
      std::string updates;
      for (int r : s.insert_rels) updates += StrCat(" +", rel_name(r));
      for (int r : s.retrieve_rels) updates += StrCat(" -", rel_name(r));
      out += StrCat("  service ", s.name, ": pre ",
                    s.pre->ToString(t.vars(), &schema_), " post ",
                    s.post->ToString(t.vars(), &schema_), updates, "\n");
    }
  }
  return out;
}

}  // namespace has
