// Static independence analysis between internal services (the VERIFAS
// optimization, arXiv 1705.10007): per-service read/write footprints
// plus a per-task symmetric commutation matrix. The footprints are the
// raw material of partial-order reduction — validation computes them
// once per task (model/validate.cc), and the successor pipeline reads
// the derived eligibility bits (core/successor.cc) to pick ample
// services during expansion (core/task_vass.cc, vass/karp_miller.cc).
#ifndef HAS_MODEL_INDEPENDENCE_H_
#define HAS_MODEL_INDEPENDENCE_H_

#include <set>
#include <string>
#include <vector>

#include "model/task.h"

namespace has {

/// The static footprint of one internal service σ = (π, ψ, δ): which
/// variables its conditions read/write, split by input-boundness, which
/// database relations its atoms query, and which artifact relations its
/// δ inserts into / retrieves from. Artifact-relation tuple variables
/// count toward the variable footprint too (an insert reads s̄_T,i at
/// the pre-state, a retrieve writes it at the post-state).
struct ServiceFootprint {
  std::set<int> pre_vars;       ///< variables mentioned by π
  std::set<int> post_vars;      ///< variables mentioned by ψ
  std::set<int> input_reads;    ///< footprint ∩ x̄_in (stable under σ)
  std::set<int> noninput_vars;  ///< footprint \ x̄_in (re-decided by σ)
  std::set<RelationId> db_relations;  ///< DB relations in π/ψ atoms
  std::vector<int> insert_rels;       ///< validated +S_T,i targets
  std::vector<int> retrieve_rels;     ///< validated -S_T,i targets

  /// σ only grows artifact relations: its counter deltas are all
  /// non-negative, so it can never be marking-disabled. The key
  /// left-mover ingredient of the ample-set reduction.
  bool insert_only() const {
    return !insert_rels.empty() && retrieve_rels.empty();
  }
  /// σ touches artifact relation `rel` (insert or retrieve).
  bool TouchesRelation(int rel) const;
};

/// Per-task independence: footprints for every internal service and the
/// symmetric commutation matrix derived from them.
class TaskIndependence {
 public:
  /// Analyzes `task`. Malformed δ targets (out-of-range or duplicate
  /// relation indices) are skipped from the footprint and, when
  /// `errors` is non-null, reported with the exact validation-error
  /// wording (validate.cc routes its service δ checks through here so
  /// the matrix is computed where the checks already walk the data).
  static TaskIndependence Analyze(const Task& task,
                                  std::vector<std::string>* errors = nullptr);

  int num_services() const { return n_; }
  const ServiceFootprint& footprint(int i) const {
    return footprints_[static_cast<size_t>(i)];
  }

  /// Static commutation: services i and j touch disjoint artifact
  /// relations AND disjoint non-input variables. Input reads and
  /// read-only database relations are shared freely — neither is ever
  /// written by an internal service. Symmetric; the diagonal uses the
  /// same criterion (a service sharing state with itself does not
  /// self-commute) and is not consulted by the reduction.
  bool Commutes(int i, int j) const {
    return commutes_[static_cast<size_t>(i) * static_cast<size_t>(n_) +
                     static_cast<size_t>(j)] != 0;
  }

 private:
  std::vector<ServiceFootprint> footprints_;
  std::vector<char> commutes_;  ///< n_ x n_, row-major, symmetric
  int n_ = 0;
};

}  // namespace has

#endif  // HAS_MODEL_INDEPENDENCE_H_
