// Hierarchical Artifact Systems Γ = (A, Σ, Π) (Definition 7): a
// database schema, a rooted tree of tasks, their services, and a global
// pre-condition Π over the root's input variables.
#ifndef HAS_MODEL_ARTIFACT_SYSTEM_H_
#define HAS_MODEL_ARTIFACT_SYSTEM_H_

#include <string>
#include <vector>

#include "model/service.h"
#include "model/task.h"
#include "schema/fk_graph.h"
#include "schema/schema.h"

namespace has {

class ArtifactSystem {
 public:
  ArtifactSystem() : global_pre_(Condition::True()) {}

  DatabaseSchema& schema() { return schema_; }
  const DatabaseSchema& schema() const { return schema_; }

  /// Creates a task; the first task created becomes the root and must
  /// pass parent = kNoTask.
  TaskId AddTask(std::string name, TaskId parent);

  Task& task(TaskId t) { return tasks_[t]; }
  const Task& task(TaskId t) const { return tasks_[t]; }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  TaskId root() const { return 0; }

  TaskId FindTask(const std::string& name) const;

  /// Global pre-condition Π over the root's input variables.
  void SetGlobalPre(CondPtr pre) { global_pre_ = std::move(pre); }
  const CondPtr& global_pre() const { return global_pre_; }

  /// Depth of the hierarchy (root alone = 1).
  int Depth() const;
  /// Tasks in pre-order (parents before children).
  std::vector<TaskId> PreOrder() const;
  /// Tasks in post-order (children before parents).
  std::vector<TaskId> PostOrder() const;

  /// Observable services Σ^obs_T of a task.
  std::vector<ServiceRef> ObservableServices(TaskId t) const;

  /// Human-readable name of a service.
  std::string ServiceName(const ServiceRef& s) const;

  /// Size proxy N for the complexity tables: total variables, services,
  /// condition atoms across tasks.
  int SizeMeasure() const;

  std::string ToString() const;

 private:
  DatabaseSchema schema_;
  std::vector<Task> tasks_;
  CondPtr global_pre_;
};

}  // namespace has

#endif  // HAS_MODEL_ARTIFACT_SYSTEM_H_
