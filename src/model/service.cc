#include "model/service.h"

namespace has {

// ServiceRef is header-only; this translation unit anchors the target.

}  // namespace has
