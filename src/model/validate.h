// Static validation of artifact systems. Checks the syntactic
// well-formedness of Definitions 2-7 and the statically-checkable part
// of the eight decidability restrictions of Section 6. The remaining
// restrictions (1: only input parameters propagate across internal
// transitions; 4: internal transitions require all subtasks returned;
// 6: artifact relations reset on close; 8: each subtask called at most
// once per segment) are enforced operationally by the run semantics and
// by the symbolic successor relation — the validator documents them and
// they are exercised by tests/restrictions_test.cc.
#ifndef HAS_MODEL_VALIDATE_H_
#define HAS_MODEL_VALIDATE_H_

#include <string>
#include <vector>

#include "model/artifact_system.h"
#include "model/source_loc.h"

namespace has {

/// Validates the whole system; returns the first violation found.
/// With `locs` (parsed specs), messages carry `file:line:` prefixes
/// pointing at the offending declaration; without, they are unchanged.
Status ValidateSystem(const ArtifactSystem& system,
                      const SpecLocations* locs = nullptr);

/// Collects every violation (for linter-style reporting).
std::vector<std::string> ValidateSystemAll(const ArtifactSystem& system,
                                           const SpecLocations* locs = nullptr);

}  // namespace has

#endif  // HAS_MODEL_VALIDATE_H_
