#include "model/independence.h"

#include <algorithm>

#include "common/strings.h"

namespace has {

namespace {

void CollectDbRelations(const Condition& c, std::set<RelationId>* out) {
  std::vector<const Condition*> atoms;
  c.CollectAtoms(&atoms);
  for (const Condition* atom : atoms) {
    if (atom->kind() == CondKind::kRel) out->insert(atom->relation());
  }
}

bool DisjointRels(const ServiceFootprint& a, const ServiceFootprint& b) {
  for (int r : a.insert_rels) {
    if (b.TouchesRelation(r)) return false;
  }
  for (int r : a.retrieve_rels) {
    if (b.TouchesRelation(r)) return false;
  }
  return true;
}

bool DisjointVars(const std::set<int>& a, const std::set<int>& b) {
  auto it_a = a.begin();
  auto it_b = b.begin();
  while (it_a != a.end() && it_b != b.end()) {
    if (*it_a < *it_b) {
      ++it_a;
    } else if (*it_b < *it_a) {
      ++it_b;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

bool ServiceFootprint::TouchesRelation(int rel) const {
  return std::find(insert_rels.begin(), insert_rels.end(), rel) !=
             insert_rels.end() ||
         std::find(retrieve_rels.begin(), retrieve_rels.end(), rel) !=
             retrieve_rels.end();
}

TaskIndependence TaskIndependence::Analyze(const Task& task,
                                           std::vector<std::string>* errors) {
  TaskIndependence out;
  out.n_ = static_cast<int>(task.services().size());
  out.footprints_.reserve(task.services().size());

  std::set<int> inputs;
  for (int v : task.InputVars()) inputs.insert(v);

  for (const InternalService& svc : task.services()) {
    ServiceFootprint fp;
    {
      std::vector<int> vars;
      if (svc.pre) svc.pre->CollectVars(&vars);
      fp.pre_vars.insert(vars.begin(), vars.end());
      vars.clear();
      if (svc.post) svc.post->CollectVars(&vars);
      fp.post_vars.insert(vars.begin(), vars.end());
    }
    if (svc.pre) CollectDbRelations(*svc.pre, &fp.db_relations);
    if (svc.post) CollectDbRelations(*svc.post, &fp.db_relations);

    auto touch_var = [&](int v) {
      (inputs.count(v) != 0 ? fp.input_reads : fp.noninput_vars).insert(v);
    };
    for (int v : fp.pre_vars) touch_var(v);
    for (int v : fp.post_vars) touch_var(v);

    // δ targets, validated as they are harvested: an out-of-range or
    // repeated relation index is a spec error (the generalized form of
    // restriction 5) and contributes nothing to the footprint.
    auto add_targets = [&](const std::vector<int>& rels, bool is_insert,
                           const char* verb) {
      std::set<int> seen;
      for (int r : rels) {
        if (r < 0 || r >= task.num_set_relations()) {
          if (errors != nullptr) {
            errors->push_back(
                StrCat("service ", svc.name, " ", verb,
                       "s an artifact relation the task does not declare"));
          }
          continue;
        }
        if (!seen.insert(r).second) {
          if (errors != nullptr) {
            errors->push_back(StrCat("service ", svc.name, " ", verb,
                                     "s relation ",
                                     task.set_relations()[r].name, " twice"));
          }
          continue;
        }
        (is_insert ? fp.insert_rels : fp.retrieve_rels).push_back(r);
        for (int v : task.set_relations()[r].vars) touch_var(v);
      }
    };
    add_targets(svc.insert_rels, /*is_insert=*/true, "insert");
    add_targets(svc.retrieve_rels, /*is_insert=*/false, "retrieve");

    out.footprints_.push_back(std::move(fp));
  }

  const size_t n = static_cast<size_t>(out.n_);
  out.commutes_.assign(n * n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const ServiceFootprint& a = out.footprints_[i];
      const ServiceFootprint& b = out.footprints_[j];
      const bool commutes =
          DisjointRels(a, b) && DisjointVars(a.noninput_vars, b.noninput_vars);
      out.commutes_[i * n + j] = commutes ? 1 : 0;
      out.commutes_[j * n + i] = commutes ? 1 : 0;
    }
  }
  return out;
}

}  // namespace has
