// Source positions for spec-level diagnostics. The lexer already knows
// line/column for every token; the parser records where each named
// entity (task, service, relation, variable, property) was declared so
// the validator (model/validate.cc) and the static analyzer
// (analysis/analyzer.cc) can report `file:line:` uniformly instead of
// bare entity names. The model layer itself never requires locations —
// every consumer takes `const SpecLocations*` defaulting to nullptr, so
// programmatically-built systems keep their exact pre-location error
// strings.
#ifndef HAS_MODEL_SOURCE_LOC_H_
#define HAS_MODEL_SOURCE_LOC_H_

#include <string>
#include <unordered_map>
#include <utility>

namespace has {

/// A 1-based position in a spec source; line 0 means "unknown".
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
};

/// Declaration positions of a parsed spec's named entities, keyed by the
/// names that model-layer diagnostics already use (task names are
/// system-unique; services/relations/variables are task-unique). Filled
/// by spec/parser.cc; read through the lookup helpers, which return an
/// unknown location for entities that were never recorded (e.g. the
/// implicit default relation of programmatic builders).
class SpecLocations {
 public:
  /// Source file name rendered in front of `line:`; may stay empty
  /// (in-memory specs), in which case positions render as "<spec>".
  void set_file(std::string file) { file_ = std::move(file); }
  const std::string& file() const { return file_; }

  void SetTask(const std::string& task, SourceLoc loc) {
    map_["t/" + task] = loc;
  }
  void SetService(const std::string& task, const std::string& service,
                  SourceLoc loc) {
    map_["s/" + task + "/" + service] = loc;
  }
  void SetRelation(const std::string& task, const std::string& relation,
                   SourceLoc loc) {
    map_["r/" + task + "/" + relation] = loc;
  }
  void SetVar(const std::string& task, const std::string& var,
              SourceLoc loc) {
    map_["v/" + task + "/" + var] = loc;
  }
  void SetProperty(const std::string& property, SourceLoc loc) {
    map_["p/" + property] = loc;
  }

  SourceLoc Task(const std::string& task) const {
    return Get("t/" + task);
  }
  SourceLoc Service(const std::string& task,
                    const std::string& service) const {
    return Get("s/" + task + "/" + service);
  }
  SourceLoc Relation(const std::string& task,
                     const std::string& relation) const {
    return Get("r/" + task + "/" + relation);
  }
  SourceLoc Var(const std::string& task, const std::string& var) const {
    return Get("v/" + task + "/" + var);
  }
  SourceLoc Property(const std::string& property) const {
    return Get("p/" + property);
  }

  /// "file:line" (or "<spec>:line" when no file name is known); empty
  /// for unknown locations so callers can prefix-or-skip in one step.
  std::string Render(SourceLoc loc) const {
    if (!loc.known()) return "";
    return (file_.empty() ? "<spec>" : file_) + ":" +
           std::to_string(loc.line);
  }

 private:
  SourceLoc Get(const std::string& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? SourceLoc{} : it->second;
  }

  std::string file_;
  std::unordered_map<std::string, SourceLoc> map_;
};

}  // namespace has

#endif  // HAS_MODEL_SOURCE_LOC_H_
