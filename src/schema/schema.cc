#include "schema/schema.h"

#include <set>

#include "common/strings.h"

namespace has {

AttrId Relation::AddNumericAttribute(std::string name) {
  attrs_.push_back(Attribute{std::move(name), AttrKind::kNumeric, kNoRelation});
  return static_cast<AttrId>(attrs_.size() - 1);
}

AttrId Relation::AddForeignKey(std::string name, RelationId target) {
  attrs_.push_back(Attribute{std::move(name), AttrKind::kForeign, target});
  return static_cast<AttrId>(attrs_.size() - 1);
}

std::optional<AttrId> Relation::FindAttr(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<AttrId>(i);
  }
  return std::nullopt;
}

std::vector<AttrId> Relation::ForeignKeyAttrs() const {
  std::vector<AttrId> out;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].kind == AttrKind::kForeign) out.push_back(static_cast<AttrId>(i));
  }
  return out;
}

std::vector<AttrId> Relation::NumericAttrs() const {
  std::vector<AttrId> out;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].kind == AttrKind::kNumeric) out.push_back(static_cast<AttrId>(i));
  }
  return out;
}

const char* SchemaClassName(SchemaClass c) {
  switch (c) {
    case SchemaClass::kAcyclic:
      return "acyclic";
    case SchemaClass::kLinearlyCyclic:
      return "linearly-cyclic";
    case SchemaClass::kCyclic:
      return "cyclic";
  }
  return "unknown";
}

RelationId DatabaseSchema::AddRelation(std::string name) {
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.emplace_back(std::move(name), id);
  return id;
}

std::optional<RelationId> DatabaseSchema::FindRelation(
    const std::string& name) const {
  for (const Relation& r : relations_) {
    if (r.name() == name) return r.id();
  }
  return std::nullopt;
}

Status DatabaseSchema::Validate() const {
  std::set<std::string> names;
  for (const Relation& r : relations_) {
    if (!names.insert(r.name()).second) {
      return Status::InvalidArgument(
          StrCat("duplicate relation name: ", r.name()));
    }
    std::set<std::string> attr_names;
    for (const Attribute& a : r.attrs()) {
      if (!attr_names.insert(a.name).second) {
        return Status::InvalidArgument(StrCat("duplicate attribute ", a.name,
                                              " in relation ", r.name()));
      }
      if (a.kind == AttrKind::kForeign) {
        if (a.references < 0 || a.references >= num_relations()) {
          return Status::InvalidArgument(
              StrCat("foreign key ", r.name(), ".", a.name,
                     " references unknown relation id ", a.references));
        }
      }
    }
  }
  return Status::Ok();
}

std::string DatabaseSchema::ToString() const {
  std::string out;
  for (const Relation& r : relations_) {
    out += StrCat("relation ", r.name(), "(");
    std::vector<std::string> parts;
    for (const Attribute& a : r.attrs()) {
      switch (a.kind) {
        case AttrKind::kId:
          parts.push_back(StrCat(a.name, ": ID"));
          break;
        case AttrKind::kNumeric:
          parts.push_back(StrCat(a.name, ": numeric"));
          break;
        case AttrKind::kForeign:
          parts.push_back(
              StrCat(a.name, " -> ", relations_[a.references].name()));
          break;
      }
    }
    out += StrJoin(parts, ", ");
    out += ")\n";
  }
  return out;
}

}  // namespace has
