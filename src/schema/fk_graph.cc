#include "schema/fk_graph.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/status.h"

namespace has {

namespace {
uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a >= kSaturated || b >= kSaturated || a + b >= kSaturated) {
    return kSaturated;
  }
  return a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a >= kSaturated || b >= kSaturated || a > kSaturated / b) {
    return kSaturated;
  }
  return a * b;
}
}  // namespace

FkGraph::FkGraph(const DatabaseSchema& schema) {
  succ_.resize(schema.num_relations());
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    for (const Attribute& a : schema.relation(r).attrs()) {
      if (a.kind == AttrKind::kForeign) succ_[r].push_back(a.references);
    }
  }
}

bool FkGraph::HasCycle() const {
  enum { kWhite, kGray, kBlack };
  std::vector<int> color(succ_.size(), kWhite);
  std::function<bool(RelationId)> dfs = [&](RelationId u) {
    color[u] = kGray;
    for (RelationId v : succ_[u]) {
      if (color[v] == kGray) return true;
      if (color[v] == kWhite && dfs(v)) return true;
    }
    color[u] = kBlack;
    return false;
  };
  for (size_t r = 0; r < succ_.size(); ++r) {
    if (color[r] == kWhite && dfs(static_cast<RelationId>(r))) return true;
  }
  return false;
}

std::vector<int> FkGraph::SimpleCycleMembership() const {
  // Counts, for each relation, the number of distinct simple cycles it
  // lies on, capped at 2 (we only need to distinguish 0/1/≥2). Simple
  // cycles are enumerated via DFS from each start node, visiting only
  // nodes >= start to avoid duplicates (Johnson-style ordering), with an
  // overall cap to keep the analysis cheap on adversarial schemas.
  const int n = static_cast<int>(succ_.size());
  std::vector<int> count(n, 0);
  constexpr int kMaxCyclesTracked = 4096;
  int cycles_seen = 0;

  for (int start = 0; start < n && cycles_seen < kMaxCyclesTracked; ++start) {
    std::vector<int> path;
    std::vector<bool> on_path(n, false);
    std::set<std::vector<int>> seen_cycles;
    std::function<void(int)> dfs = [&](int u) {
      if (cycles_seen >= kMaxCyclesTracked) return;
      path.push_back(u);
      on_path[u] = true;
      for (RelationId v : succ_[u]) {
        if (v < start) continue;
        if (v == start) {
          // Found a simple cycle; canonicalize by node set (a simple
          // cycle is determined by its vertex sequence up to rotation;
          // starting point is fixed to `start`, so the path itself is
          // canonical). Self-loops and parallel FK edges between the
          // same pair count as distinct cycles only if attribute-level
          // distinct; at node granularity we count the path once.
          if (seen_cycles.insert(path).second) {
            ++cycles_seen;
            for (int w : path) count[w] = std::min(2, count[w] + 1);
          }
        } else if (!on_path[v]) {
          dfs(v);
        }
      }
      path.pop_back();
      on_path[u] = false;
    };
    dfs(start);
  }
  return count;
}

SchemaClass FkGraph::Classify() const {
  if (!HasCycle()) return SchemaClass::kAcyclic;
  // Multiplicity of FK edges matters for linear cyclicity: two parallel
  // FKs between the same relations already form two simple cycles at the
  // attribute level. Detect that case first.
  for (size_t u = 0; u < succ_.size(); ++u) {
    std::set<RelationId> seen;
    for (RelationId v : succ_[u]) {
      if (!seen.insert(v).second && Reachable(v, static_cast<RelationId>(u))) {
        return SchemaClass::kCyclic;  // parallel edges on a cycle
      }
    }
  }
  std::vector<int> membership = SimpleCycleMembership();
  for (int c : membership) {
    if (c >= 2) return SchemaClass::kCyclic;
  }
  return SchemaClass::kLinearlyCyclic;
}

uint64_t FkGraph::CountPaths(RelationId r, uint64_t n) const {
  // paths(r, k) = number of FK paths of length exactly k from r.
  // CountPaths = sum_{k<=n} paths(r, k), saturating.
  const int nr = num_relations();
  std::vector<uint64_t> cur(nr, 0);
  cur[r] = 1;  // one empty path, sitting at r
  uint64_t total = 1;
  for (uint64_t k = 1; k <= n; ++k) {
    std::vector<uint64_t> next(nr, 0);
    uint64_t level = 0;
    for (int u = 0; u < nr; ++u) {
      if (cur[u] == 0) continue;
      for (RelationId v : succ_[u]) {
        next[v] = SatAdd(next[v], cur[u]);
      }
    }
    for (int u = 0; u < nr; ++u) level = SatAdd(level, next[u]);
    total = SatAdd(total, level);
    if (total >= kSaturated) return kSaturated;
    if (level == 0) break;  // no longer paths exist
    cur = std::move(next);
  }
  return total;
}

uint64_t FkGraph::MaxPaths(uint64_t n) const {
  uint64_t best = 0;
  for (int r = 0; r < num_relations(); ++r) {
    best = std::max(best, CountPaths(r, n));
    if (best >= kSaturated) return kSaturated;
  }
  return best;
}

bool FkGraph::Reachable(RelationId from, RelationId to) const {
  std::vector<bool> visited(succ_.size(), false);
  std::vector<RelationId> stack = {from};
  visited[from] = true;
  while (!stack.empty()) {
    RelationId u = stack.back();
    stack.pop_back();
    if (u == to) return true;
    for (RelationId v : succ_[u]) {
      if (!visited[v]) {
        visited[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

uint64_t NavigationDepthBound(const FkGraph& fk, uint64_t num_vars,
                              const std::vector<uint64_t>& child_depths) {
  uint64_t delta = 1;
  for (uint64_t d : child_depths) delta = std::max(delta, d);
  uint64_t f = fk.MaxPaths(delta);
  return SatAdd(1, SatMul(num_vars, f));
}

}  // namespace has
