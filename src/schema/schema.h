// Database schemas (Definition 1). Every relation has an implicit key
// attribute ID, a set of foreign-key attributes (each referencing the ID
// of some relation of the schema), and a set of numeric non-key
// attributes. Instances must satisfy the key dependency and the
// inclusion dependencies R[Fi] ⊆ R_Fi[ID].
#ifndef HAS_SCHEMA_SCHEMA_H_
#define HAS_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace has {

/// Index of a relation within its DatabaseSchema.
using RelationId = int;
/// Index of an attribute within its relation (0 is always the ID).
using AttrId = int;

inline constexpr RelationId kNoRelation = -1;

enum class AttrKind {
  kId,       ///< the key attribute (position 0 of every relation)
  kNumeric,  ///< non-key attribute with domain R
  kForeign,  ///< foreign key referencing another relation's ID
};

struct Attribute {
  std::string name;
  AttrKind kind = AttrKind::kNumeric;
  /// Target relation for kForeign attributes; kNoRelation otherwise.
  RelationId references = kNoRelation;
};

/// A relation schema: attribute 0 is the ID; the rest are numeric or
/// foreign-key attributes in declaration order.
class Relation {
 public:
  Relation(std::string name, RelationId id) : name_(std::move(name)), id_(id) {
    attrs_.push_back(Attribute{"id", AttrKind::kId, kNoRelation});
  }

  const std::string& name() const { return name_; }
  RelationId id() const { return id_; }

  AttrId AddNumericAttribute(std::string name);
  AttrId AddForeignKey(std::string name, RelationId target);

  int arity() const { return static_cast<int>(attrs_.size()); }
  const Attribute& attr(AttrId a) const { return attrs_[a]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Attribute lookup by name; nullopt if absent.
  std::optional<AttrId> FindAttr(const std::string& name) const;

  /// Indices of foreign-key attributes, in declaration order.
  std::vector<AttrId> ForeignKeyAttrs() const;
  /// Indices of numeric attributes, in declaration order.
  std::vector<AttrId> NumericAttrs() const;

 private:
  std::string name_;
  RelationId id_;
  std::vector<Attribute> attrs_;
};

/// Shape of the foreign-key graph; drives the complexity of verification
/// (Tables 1 and 2 of the paper).
enum class SchemaClass {
  kAcyclic,        ///< no FK cycles (includes star/snowflake schemas)
  kLinearlyCyclic, ///< every relation on at most one simple FK cycle
  kCyclic,         ///< arbitrary FK cycles
};

const char* SchemaClassName(SchemaClass c);

/// A database schema: a set of relations plus FK wiring.
class DatabaseSchema {
 public:
  /// Creates a relation with the given name; returns its id.
  RelationId AddRelation(std::string name);

  Relation& relation(RelationId r) { return relations_[r]; }
  const Relation& relation(RelationId r) const { return relations_[r]; }
  int num_relations() const { return static_cast<int>(relations_.size()); }

  std::optional<RelationId> FindRelation(const std::string& name) const;

  /// Validates FK targets and name uniqueness.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<Relation> relations_;
};

}  // namespace has

#endif  // HAS_SCHEMA_SCHEMA_H_
