// Foreign-key graph analysis (Definition 1 and Appendix C.3): schema
// class detection (acyclic / linearly-cyclic / cyclic), counting of FK
// paths F(n), and the navigation-depth bound h(T) used by the symbolic
// representation (Section 4.1).
//
// All counts saturate at kSaturated: for cyclic schemas h(T) is a tower
// of exponentials, far beyond any value the verifier could instantiate;
// callers clamp through VerifierOptions::max_nav_depth.
#ifndef HAS_SCHEMA_FK_GRAPH_H_
#define HAS_SCHEMA_FK_GRAPH_H_

#include <cstdint>
#include <vector>

#include "schema/schema.h"

namespace has {

/// Saturation value for path/depth counts that exceed any practical
/// bound.
inline constexpr uint64_t kSaturated = UINT64_C(1) << 40;

/// Analysis of the labeled graph FK whose nodes are relations and whose
/// edges Ri -F-> Rj are foreign keys.
class FkGraph {
 public:
  explicit FkGraph(const DatabaseSchema& schema);

  /// The schema class per Definition 1 (acyclicity of FK; linear
  /// cyclicity: each relation on at most one simple cycle).
  SchemaClass Classify() const;

  /// Number of distinct FK paths of length at most n starting from
  /// relation r (the empty path counts). Saturates at kSaturated.
  uint64_t CountPaths(RelationId r, uint64_t n) const;

  /// F(n) of the paper: max over all relations of CountPaths(r, n).
  uint64_t MaxPaths(uint64_t n) const;

  /// True iff relation `to` is reachable from `from` via FK edges
  /// (including the trivial path).
  bool Reachable(RelationId from, RelationId to) const;

  /// Out-neighbours of r (FK targets, with multiplicity).
  const std::vector<RelationId>& Successors(RelationId r) const {
    return succ_[r];
  }

  int num_relations() const { return static_cast<int>(succ_.size()); }

 private:
  bool HasCycle() const;
  /// Number of simple cycles through each relation, capped at 2.
  std::vector<int> SimpleCycleMembership() const;

  std::vector<std::vector<RelationId>> succ_;
};

/// Computes the paper's navigation depth bound
///   h(T) = 1 + |x̄T| · F(δ),  δ = 1 for leaves, max child h(T) otherwise,
/// bottom-up over a task tree described by (num_vars, children) pairs.
/// Saturates at kSaturated.
uint64_t NavigationDepthBound(const FkGraph& fk, uint64_t num_vars,
                              const std::vector<uint64_t>& child_depths);

}  // namespace has

#endif  // HAS_SCHEMA_FK_GRAPH_H_
