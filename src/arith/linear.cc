#include "arith/linear.h"

#include <set>

#include "common/hashing.h"
#include "common/strings.h"

namespace has {

Rational LinearExpr::Coef(ArithVar v) const {
  auto it = coefs_.find(v);
  return it == coefs_.end() ? Rational(0) : it->second;
}

void LinearExpr::AddTerm(ArithVar v, const Rational& coef) {
  auto [it, inserted] = coefs_.try_emplace(v, coef);
  if (!inserted) {
    it->second += coef;
    if (it->second.is_zero()) coefs_.erase(it);
  } else if (it->second.is_zero()) {
    coefs_.erase(it);
  }
}

void LinearExpr::Prune() {
  for (auto it = coefs_.begin(); it != coefs_.end();) {
    if (it->second.is_zero()) {
      it = coefs_.erase(it);
    } else {
      ++it;
    }
  }
}

LinearExpr LinearExpr::operator+(const LinearExpr& o) const {
  LinearExpr out = *this;
  out.constant_ += o.constant_;
  for (const auto& [v, c] : o.coefs_) out.AddTerm(v, c);
  return out;
}

LinearExpr LinearExpr::operator-(const LinearExpr& o) const {
  return *this + (o * Rational(-1));
}

LinearExpr LinearExpr::operator*(const Rational& scalar) const {
  LinearExpr out;
  if (scalar.is_zero()) return out;
  out.constant_ = constant_ * scalar;
  for (const auto& [v, c] : coefs_) out.coefs_[v] = c * scalar;
  return out;
}

LinearExpr LinearExpr::Substitute(ArithVar v,
                                  const LinearExpr& replacement) const {
  auto it = coefs_.find(v);
  if (it == coefs_.end()) return *this;
  Rational coef = it->second;
  LinearExpr out = *this;
  out.coefs_.erase(v);
  return out + replacement * coef;
}

LinearExpr LinearExpr::Rename(const std::map<ArithVar, ArithVar>& map) const {
  LinearExpr out;
  out.constant_ = constant_;
  for (const auto& [v, c] : coefs_) {
    auto it = map.find(v);
    out.AddTerm(it == map.end() ? v : it->second, c);
  }
  return out;
}

Rational LinearExpr::Eval(
    const std::function<Rational(ArithVar)>& assignment) const {
  Rational out = constant_;
  for (const auto& [v, c] : coefs_) out += c * assignment(v);
  return out;
}

std::vector<ArithVar> LinearExpr::Vars() const {
  std::vector<ArithVar> out;
  out.reserve(coefs_.size());
  for (const auto& [v, c] : coefs_) out.push_back(v);
  return out;
}

LinearExpr LinearExpr::CanonicalizedDirection() const {
  if (coefs_.empty()) {
    // Pure constants canonicalize by sign only.
    LinearExpr out;
    out.constant_ = Rational(constant_.sign());
    return out;
  }
  // Scale so the leading (lowest-index) coefficient is exactly 1; the
  // caller (PolyBasis) treats e and -e as the same hyperplane and
  // tracks the orientation flip separately.
  Rational lead = coefs_.begin()->second;
  return *this * (Rational(1) / lead);
}

std::string LinearExpr::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [v, c] : coefs_) {
    parts.push_back(StrCat(c.ToString(), "*x", v));
  }
  if (!constant_.is_zero() || parts.empty()) {
    parts.push_back(constant_.ToString());
  }
  return StrJoin(parts, " + ");
}

size_t LinearExpr::Hash() const {
  size_t seed = constant_.Hash();
  for (const auto& [v, c] : coefs_) {
    HashMix(&seed, v);
    HashMix(&seed, c.Hash());
  }
  return seed;
}

const char* RelopName(Relop op) {
  switch (op) {
    case Relop::kLt:
      return "<";
    case Relop::kLe:
      return "<=";
    case Relop::kEq:
      return "=";
  }
  return "?";
}

std::string LinearConstraint::ToString() const {
  return StrCat(expr.ToString(), " ", RelopName(op), " 0");
}

void LinearSystem::Append(const LinearSystem& o) {
  constraints_.insert(constraints_.end(), o.constraints_.begin(),
                      o.constraints_.end());
}

LinearSystem LinearSystem::Rename(
    const std::map<ArithVar, ArithVar>& map) const {
  LinearSystem out;
  for (const LinearConstraint& c : constraints_) {
    out.Add(LinearConstraint{c.expr.Rename(map), c.op});
  }
  return out;
}

std::vector<ArithVar> LinearSystem::Vars() const {
  std::set<ArithVar> vars;
  for (const LinearConstraint& c : constraints_) {
    for (ArithVar v : c.expr.Vars()) vars.insert(v);
  }
  return std::vector<ArithVar>(vars.begin(), vars.end());
}

std::string LinearSystem::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(constraints_.size());
  for (const LinearConstraint& c : constraints_) parts.push_back(c.ToString());
  return StrJoin(parts, " && ");
}

}  // namespace has
