// Hierarchical Cell Decomposition (Section 5 / Appendix D.4). For every
// node of a task hierarchy, the HCD collects the polynomials of the
// node's own arithmetic constraints together with the projections of
// its children's polynomials onto the variables shared with the parent
// (input/return variable mappings). The projection step uses the
// Fourier–Motzkin combination closure — the linear-fragment analogue of
// the Tarski–Seidenberg projection in the paper.
//
// The HCD is what allows the verifier to replace retroactive cell
// intersection with local refinement checks: the parent's basis already
// contains every polynomial a child cell could impose on shared
// variables.
#ifndef HAS_ARITH_HCD_H_
#define HAS_ARITH_HCD_H_

#include <map>
#include <vector>

#include "arith/cell.h"
#include "arith/linear.h"

namespace has {

/// One node of the abstract hierarchy: the node's own polynomials over
/// its private variable numbering, its children (indices into the node
/// array) and, per child, the renaming of shared child variables into
/// the parent's numbering (child vars absent from the map are local to
/// the child and get projected away).
struct HcdNode {
  std::vector<LinearExpr> own_polys;
  std::vector<int> children;
  std::vector<std::map<ArithVar, ArithVar>> child_var_to_parent;
};

class Hcd {
 public:
  /// Builds the decomposition bottom-up from `root`.
  /// `projection_rounds` bounds the pairwise Fourier–Motzkin combination
  /// closure used when eliminating child-local variables (1 round
  /// eliminates each local variable once; this is exact for the linear
  /// fragment since elimination is per-variable complete).
  static Hcd Build(const std::vector<HcdNode>& nodes, int root);

  const PolyBasis& basis(int node) const { return basis_[node]; }
  int num_nodes() const { return static_cast<int>(basis_.size()); }

  /// Total number of basis polynomials across nodes (bench metric).
  int TotalPolys() const;

 private:
  std::vector<PolyBasis> basis_;
};

/// Projects an arrangement of polynomials: eliminates `var` from `polys`
/// by keeping var-free polynomials and adding all pairwise combinations
/// that cancel var. This is the arrangement-level analogue of one
/// Fourier–Motzkin round and covers the projection of every cell of the
/// arrangement.
std::vector<LinearExpr> ProjectArrangement(const std::vector<LinearExpr>& polys,
                                           ArithVar var);

}  // namespace has

#endif  // HAS_ARITH_HCD_H_
