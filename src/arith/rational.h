// Exact rational numbers (normalized BigInt fractions). The arithmetic
// variant of the verifier works over Q (linear constraints with integer
// coefficients), as sanctioned by Section 5 of the paper.
#ifndef HAS_ARITH_RATIONAL_H_
#define HAS_ARITH_RATIONAL_H_

#include <string>

#include "arith/bigint.h"

namespace has {

class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT: implicit
  Rational(BigInt num, BigInt den);

  static Rational FromDouble(double x);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  int sign() const { return num_.sign(); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return !(*this < o); }

  double ToDouble() const { return num_.ToDouble() / den_.ToDouble(); }
  std::string ToString() const;
  size_t Hash() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;  // always > 0
};

}  // namespace has

#endif  // HAS_ARITH_RATIONAL_H_
