#include "arith/hcd.h"

#include <functional>
#include <set>

#include "common/status.h"

namespace has {

std::vector<LinearExpr> ProjectArrangement(const std::vector<LinearExpr>& polys,
                                           ArithVar var) {
  std::vector<LinearExpr> with;
  std::vector<LinearExpr> out;
  for (const LinearExpr& p : polys) {
    if (p.Coef(var).is_zero()) {
      out.push_back(p);
    } else {
      with.push_back(p);
    }
  }
  // For any two polynomials p, q with nonzero coefficient on var, the
  // combination a_q·p − a_p·q cancels var. Every constraint a cell
  // projection can introduce (both the lower×upper combinations and the
  // equality substitutions of Fourier–Motzkin) is of this shape.
  for (size_t i = 0; i < with.size(); ++i) {
    for (size_t j = i + 1; j < with.size(); ++j) {
      Rational ai = with[i].Coef(var);
      Rational aj = with[j].Coef(var);
      LinearExpr combo = with[i] * aj - with[j] * ai;
      if (!combo.IsConstant()) out.push_back(std::move(combo));
    }
  }
  return out;
}

Hcd Hcd::Build(const std::vector<HcdNode>& nodes, int root) {
  Hcd hcd;
  hcd.basis_.resize(nodes.size());
  std::vector<bool> done(nodes.size(), false);

  std::function<void(int)> build = [&](int n) {
    const HcdNode& node = nodes[n];
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      if (!done[node.children[ci]]) build(node.children[ci]);
    }
    PolyBasis& basis = hcd.basis_[n];
    for (const LinearExpr& p : node.own_polys) {
      if (!p.IsConstant()) basis.Add(p);
    }
    // Fold in each child's basis: rename shared variables into the
    // parent's numbering, then eliminate child-local variables by the
    // arrangement projection.
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      const PolyBasis& child_basis = hcd.basis_[node.children[ci]];
      const std::map<ArithVar, ArithVar>& var_map =
          node.child_var_to_parent[ci];
      // Child-local variables get fresh negative indices so they cannot
      // collide with parent variables, then are projected away.
      std::map<ArithVar, ArithVar> rename = var_map;
      std::set<ArithVar> locals;
      ArithVar next_local = -1;
      for (const LinearExpr& p : child_basis.polys()) {
        for (ArithVar v : p.Vars()) {
          if (!rename.count(v)) {
            rename[v] = next_local;
            locals.insert(next_local);
            --next_local;
          }
        }
      }
      std::vector<LinearExpr> projected;
      projected.reserve(child_basis.size());
      for (const LinearExpr& p : child_basis.polys()) {
        projected.push_back(p.Rename(rename));
      }
      for (ArithVar local : locals) {
        projected = ProjectArrangement(projected, local);
      }
      for (const LinearExpr& p : projected) {
        if (!p.IsConstant()) basis.Add(p);
      }
    }
    done[n] = true;
  };
  build(root);
  // Nodes unreachable from root still get their own polynomials so
  // callers can query them uniformly.
  for (size_t n = 0; n < nodes.size(); ++n) {
    if (!done[n]) build(static_cast<int>(n));
  }
  return hcd;
}

int Hcd::TotalPolys() const {
  int total = 0;
  for (const PolyBasis& b : basis_) total += b.size();
  return total;
}

}  // namespace has
