// Arbitrary-precision signed integers (sign-magnitude, base 2^32).
// Fourier–Motzkin elimination multiplies constraint coefficients
// pairwise, so coefficient growth is exponential in the number of
// eliminated variables; exact big integers keep the quantifier
// elimination of Section 5 sound.
#ifndef HAS_ARITH_BIGINT_H_
#define HAS_ARITH_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace has {

class BigInt {
 public:
  BigInt() : negative_(false) {}
  BigInt(int64_t value);  // NOLINT: implicit by design (literals)

  static BigInt FromString(const std::string& text);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated division (C semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  bool operator==(const BigInt& o) const {
    return negative_ == o.negative_ && limbs_ == o.limbs_;
  }
  bool operator!=(const BigInt& o) const { return !(*this == o); }
  bool operator<(const BigInt& o) const;
  bool operator<=(const BigInt& o) const { return !(o < *this); }
  bool operator>(const BigInt& o) const { return o < *this; }
  bool operator>=(const BigInt& o) const { return !(*this < o); }

  static BigInt Gcd(BigInt a, BigInt b);
  BigInt Abs() const;

  /// Approximate double value (may overflow to +/-inf).
  double ToDouble() const;
  /// Exact value if it fits in int64, otherwise nullopt behaviour via
  /// ok=false.
  bool FitsInt64(int64_t* out) const;

  std::string ToString() const;
  size_t Hash() const;

 private:
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Schoolbook division of magnitudes: returns quotient, sets *rem.
  static std::vector<uint32_t> DivMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b,
                                            std::vector<uint32_t>* rem);
  static void Trim(std::vector<uint32_t>* limbs);

  void Normalize() {
    Trim(&limbs_);
    if (limbs_.empty()) negative_ = false;
  }

  bool negative_;
  std::vector<uint32_t> limbs_;  // little-endian, base 2^32, no leading 0
};

}  // namespace has

#endif  // HAS_ARITH_BIGINT_H_
