// Cells: sign conditions over a finite basis of linear polynomials
// (Appendix D.2/D.3). A cell assigns each basis polynomial a sign in
// {-1, 0, +1}, or leaves it unconstrained (kSignAny) when the
// polynomial's variables are out of scope. Non-empty cells are the
// symbolic arithmetic component of extended isomorphism types (§5).
#ifndef HAS_ARITH_CELL_H_
#define HAS_ARITH_CELL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arith/fourier_motzkin.h"
#include "arith/linear.h"

namespace has {

using Sign = int8_t;
inline constexpr Sign kSignNeg = -1;
inline constexpr Sign kSignZero = 0;
inline constexpr Sign kSignPos = 1;
/// "Unconstrained": the polynomial is out of scope for this cell.
inline constexpr Sign kSignAny = 2;

/// A deduplicated list of linear polynomials over which cells are
/// formed. Polynomials are canonicalized up to positive scaling.
class PolyBasis {
 public:
  /// Adds (deduplicating) and returns the index of the polynomial.
  /// Constant polynomials are rejected (they induce no cell boundary).
  int Add(const LinearExpr& poly);

  int size() const { return static_cast<int>(polys_.size()); }
  const LinearExpr& poly(int i) const { return polys_[i]; }
  const std::vector<LinearExpr>& polys() const { return polys_; }

  /// Index of the polynomial equal to `poly` up to positive scaling,
  /// or -1. A negative scaling factor is reported via *negated so the
  /// caller can flip the sign it wants to assert.
  int Find(const LinearExpr& poly, bool* negated) const;

  /// Indices of polynomials all of whose variables lie in `vars`.
  std::vector<int> PolysOverVars(const std::vector<ArithVar>& vars) const;

 private:
  std::vector<LinearExpr> polys_;  // canonical: leading coefficient +1
};

/// A (partial) sign vector over a PolyBasis.
class Cell {
 public:
  Cell() = default;
  explicit Cell(int basis_size) : signs_(basis_size, kSignAny) {}

  int size() const { return static_cast<int>(signs_.size()); }
  Sign sign(int poly) const { return signs_[poly]; }
  void set_sign(int poly, Sign s) { signs_[poly] = s; }

  bool operator==(const Cell& o) const { return signs_ == o.signs_; }

  /// The conjunction of constraints this cell denotes.
  LinearSystem ToSystem(const PolyBasis& basis) const;

  /// True iff some rational point satisfies the cell (and the extra
  /// system, if given).
  bool IsNonEmpty(const PolyBasis& basis) const;
  bool IsNonEmptyWith(const PolyBasis& basis,
                      const LinearSystem& extra) const;

  /// `this` refines `o` on the polynomial subset `polys`: wherever o is
  /// constrained, this carries the same sign.
  bool RefinesOn(const Cell& o, const std::vector<int>& polys) const;

  /// Copy with every polynomial outside `polys` reset to kSignAny.
  Cell RestrictTo(const std::vector<int>& polys) const;

  std::string ToString(const PolyBasis& basis) const;
  size_t Hash() const;

 private:
  std::vector<Sign> signs_;
};

struct CellHash {
  size_t operator()(const Cell& c) const { return c.Hash(); }
};

/// Enumerates every satisfiable completion of `partial` over the
/// polynomials `todo` (each receives a concrete sign in {-1,0,+1}),
/// subject to the extra linear system. Prunes with incremental
/// Fourier–Motzkin satisfiability checks; stops early if `callback`
/// returns false.
void EnumerateCells(const PolyBasis& basis, const Cell& partial,
                    const std::vector<int>& todo, const LinearSystem& extra,
                    const std::function<bool(const Cell&)>& callback);

/// Counts the satisfiable sign conditions over the whole basis; the
/// paper bounds this by (s·d)^O(k) (Theorem 62). Used by bench_cells.
int64_t CountNonEmptyCells(const PolyBasis& basis);

}  // namespace has

#endif  // HAS_ARITH_CELL_H_
