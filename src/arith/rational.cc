#include "arith/rational.h"

#include <cmath>

#include "common/hashing.h"
#include "common/status.h"
#include "common/strings.h"

namespace has {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  HAS_CHECK_MSG(!den_.is_zero(), "Rational with zero denominator");
  Normalize();
}

void Rational::Normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Rational Rational::FromDouble(double x) {
  HAS_CHECK_MSG(std::isfinite(x), "Rational from non-finite double");
  // Exact binary expansion: x = m * 2^e with integer m.
  int exp = 0;
  double mantissa = std::frexp(x, &exp);
  // Scale mantissa to an integer (53 bits of precision).
  int64_t m = static_cast<int64_t>(std::ldexp(mantissa, 53));
  exp -= 53;
  BigInt num(m);
  BigInt den(1);
  BigInt two(2);
  for (; exp > 0; --exp) num = num * two;
  for (; exp < 0; ++exp) den = den * two;
  return Rational(std::move(num), std::move(den));
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}

Rational Rational::operator/(const Rational& o) const {
  HAS_CHECK_MSG(!o.is_zero(), "Rational division by zero");
  return Rational(num_ * o.den_, den_ * o.num_);
}

bool Rational::operator<(const Rational& o) const {
  return num_ * o.den_ < o.num_ * den_;
}

std::string Rational::ToString() const {
  if (den_ == BigInt(1)) return num_.ToString();
  return StrCat(num_.ToString(), "/", den_.ToString());
}

size_t Rational::Hash() const {
  size_t seed = num_.Hash();
  HashMix(&seed, den_.Hash());
  return seed;
}

}  // namespace has
