#include "arith/cell.h"

#include <set>

#include "common/hashing.h"
#include "common/status.h"
#include "common/strings.h"

namespace has {

namespace {
/// Canonical form: scale so the leading (lowest-index) coefficient is 1.
/// Returns whether the scaling factor was negative (sign conditions must
/// then flip).
LinearExpr Canonicalize(const LinearExpr& poly, bool* negated) {
  HAS_CHECK_MSG(!poly.IsConstant(), "constant polynomial in basis");
  Rational lead = poly.coefs().begin()->second;
  *negated = lead.sign() < 0;
  return poly * (Rational(1) / lead);
}
}  // namespace

int PolyBasis::Add(const LinearExpr& poly) {
  bool negated = false;
  LinearExpr canon = Canonicalize(poly, &negated);
  for (size_t i = 0; i < polys_.size(); ++i) {
    if (polys_[i] == canon) return static_cast<int>(i);
  }
  polys_.push_back(std::move(canon));
  return static_cast<int>(polys_.size() - 1);
}

int PolyBasis::Find(const LinearExpr& poly, bool* negated) const {
  if (poly.IsConstant()) return -1;
  LinearExpr canon = Canonicalize(poly, negated);
  for (size_t i = 0; i < polys_.size(); ++i) {
    if (polys_[i] == canon) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> PolyBasis::PolysOverVars(
    const std::vector<ArithVar>& vars) const {
  std::set<ArithVar> var_set(vars.begin(), vars.end());
  std::vector<int> out;
  for (size_t i = 0; i < polys_.size(); ++i) {
    bool inside = true;
    for (ArithVar v : polys_[i].Vars()) {
      if (!var_set.count(v)) {
        inside = false;
        break;
      }
    }
    if (inside) out.push_back(static_cast<int>(i));
  }
  return out;
}

LinearSystem Cell::ToSystem(const PolyBasis& basis) const {
  LinearSystem out;
  for (int i = 0; i < size(); ++i) {
    switch (signs_[i]) {
      case kSignNeg:
        out.Add(basis.poly(i), Relop::kLt);
        break;
      case kSignZero:
        out.Add(basis.poly(i), Relop::kEq);
        break;
      case kSignPos:
        out.Add(-basis.poly(i), Relop::kLt);
        break;
      default:
        break;  // unconstrained
    }
  }
  return out;
}

bool Cell::IsNonEmpty(const PolyBasis& basis) const {
  return FourierMotzkin::IsSatisfiable(ToSystem(basis));
}

bool Cell::IsNonEmptyWith(const PolyBasis& basis,
                          const LinearSystem& extra) const {
  LinearSystem s = ToSystem(basis);
  s.Append(extra);
  return FourierMotzkin::IsSatisfiable(s);
}

bool Cell::RefinesOn(const Cell& o, const std::vector<int>& polys) const {
  for (int p : polys) {
    if (o.signs_[p] != kSignAny && signs_[p] != o.signs_[p]) return false;
  }
  return true;
}

Cell Cell::RestrictTo(const std::vector<int>& polys) const {
  Cell out(size());
  for (int p : polys) out.set_sign(p, signs_[p]);
  return out;
}

std::string Cell::ToString(const PolyBasis& basis) const {
  std::vector<std::string> parts;
  for (int i = 0; i < size(); ++i) {
    if (signs_[i] == kSignAny) continue;
    const char* rel = signs_[i] == kSignNeg   ? " < 0"
                      : signs_[i] == kSignZero ? " = 0"
                                               : " > 0";
    parts.push_back(StrCat(basis.poly(i).ToString(), rel));
  }
  if (parts.empty()) return "(top)";
  return StrJoin(parts, " && ");
}

size_t Cell::Hash() const {
  size_t seed = signs_.size();
  for (Sign s : signs_) HashMix(&seed, static_cast<int>(s));
  return seed;
}

void EnumerateCells(const PolyBasis& basis, const Cell& partial,
                    const std::vector<int>& todo, const LinearSystem& extra,
                    const std::function<bool(const Cell&)>& callback) {
  Cell cur = partial;
  std::function<bool(size_t)> rec = [&](size_t index) -> bool {
    if (index == todo.size()) return callback(cur);
    int poly = todo[index];
    if (cur.sign(poly) != kSignAny) return rec(index + 1);
    for (Sign s : {kSignNeg, kSignZero, kSignPos}) {
      cur.set_sign(poly, s);
      if (cur.IsNonEmptyWith(basis, extra)) {
        if (!rec(index + 1)) {
          cur.set_sign(poly, kSignAny);
          return false;
        }
      }
    }
    cur.set_sign(poly, kSignAny);
    return true;
  };
  rec(0);
}

int64_t CountNonEmptyCells(const PolyBasis& basis) {
  std::vector<int> all(basis.size());
  for (int i = 0; i < basis.size(); ++i) all[i] = i;
  int64_t count = 0;
  EnumerateCells(basis, Cell(basis.size()), all, LinearSystem(),
                 [&](const Cell&) {
                   ++count;
                   return true;
                 });
  return count;
}

}  // namespace has
