// Linear expressions and constraints over integer-indexed rational
// variables. This is the arithmetic fragment of Section 5 in its
// explicitly sanctioned linear variant: constraints are linear
// inequalities with integer (here: rational) coefficients over Q.
#ifndef HAS_ARITH_LINEAR_H_
#define HAS_ARITH_LINEAR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "arith/rational.h"

namespace has {

/// Index of an arithmetic variable. The owner of a LinearSystem decides
/// what the indices mean (the verifier maps task numeric variables and
/// numeric navigation expressions onto them).
using ArithVar = int;

/// A linear expression sum_i coef_i * x_i + constant.
class LinearExpr {
 public:
  LinearExpr() = default;
  explicit LinearExpr(Rational constant) : constant_(std::move(constant)) {}

  static LinearExpr Var(ArithVar v) {
    LinearExpr e;
    e.coefs_[v] = Rational(1);
    return e;
  }
  static LinearExpr Constant(Rational c) { return LinearExpr(std::move(c)); }

  const std::map<ArithVar, Rational>& coefs() const { return coefs_; }
  const Rational& constant() const { return constant_; }

  Rational Coef(ArithVar v) const;
  bool IsConstant() const { return coefs_.empty(); }

  void AddTerm(ArithVar v, const Rational& coef);
  void AddConstant(const Rational& c) { constant_ += c; }

  LinearExpr operator+(const LinearExpr& o) const;
  LinearExpr operator-(const LinearExpr& o) const;
  LinearExpr operator*(const Rational& scalar) const;
  LinearExpr operator-() const { return *this * Rational(-1); }

  bool operator==(const LinearExpr& o) const {
    return coefs_ == o.coefs_ && constant_ == o.constant_;
  }

  /// Replaces variable v by the expression `replacement`.
  LinearExpr Substitute(ArithVar v, const LinearExpr& replacement) const;

  /// Renames variables via `map` (variables absent from the map keep
  /// their index).
  LinearExpr Rename(const std::map<ArithVar, ArithVar>& map) const;

  /// Evaluates given a variable assignment.
  Rational Eval(const std::function<Rational(ArithVar)>& assignment) const;

  /// All variables with non-zero coefficient.
  std::vector<ArithVar> Vars() const;

  /// Scales so that coefficients are coprime integers with a canonical
  /// leading sign; used to deduplicate basis polynomials (a cell's sign
  /// condition is invariant under positive scaling).
  LinearExpr CanonicalizedDirection() const;

  std::string ToString() const;
  size_t Hash() const;

 private:
  void Prune();

  std::map<ArithVar, Rational> coefs_;
  Rational constant_;
};

/// Comparison operators for constraints `expr op 0`.
enum class Relop { kLt, kLe, kEq };

const char* RelopName(Relop op);

struct LinearConstraint {
  LinearExpr expr;
  Relop op = Relop::kLe;

  bool operator==(const LinearConstraint& o) const {
    return op == o.op && expr == o.expr;
  }
  std::string ToString() const;
};

/// A conjunction of linear constraints (a convex set, possibly not
/// closed). Sign conditions of the paper's cells are exactly such
/// systems in the linear fragment.
class LinearSystem {
 public:
  LinearSystem() = default;

  void Add(LinearConstraint c) { constraints_.push_back(std::move(c)); }
  void Add(LinearExpr expr, Relop op) {
    constraints_.push_back(LinearConstraint{std::move(expr), op});
  }
  void Append(const LinearSystem& o);

  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }
  bool empty() const { return constraints_.empty(); }
  size_t size() const { return constraints_.size(); }

  LinearSystem Rename(const std::map<ArithVar, ArithVar>& map) const;

  /// All variables mentioned.
  std::vector<ArithVar> Vars() const;

  std::string ToString() const;

 private:
  std::vector<LinearConstraint> constraints_;
};

}  // namespace has

#endif  // HAS_ARITH_LINEAR_H_
