// Fourier–Motzkin elimination: exact satisfiability over Q and
// projection (quantifier elimination) for conjunctions of linear
// constraints. This instantiates, for the linear fragment, the
// Tarski–Seidenberg projection step the paper uses to build the
// Hierarchical Cell Decomposition (Section 5, Appendix D).
#ifndef HAS_ARITH_FOURIER_MOTZKIN_H_
#define HAS_ARITH_FOURIER_MOTZKIN_H_

#include <vector>

#include "arith/linear.h"
#include "common/status.h"

namespace has {

class FourierMotzkin {
 public:
  /// True iff the conjunction has a solution over Q.
  static bool IsSatisfiable(const LinearSystem& system);

  /// Existentially quantifies `var` out of `system`. The result holds of
  /// exactly the assignments of the remaining variables that extend to a
  /// solution of `system`.
  static LinearSystem Eliminate(const LinearSystem& system, ArithVar var);

  /// Eliminates every variable not in `keep` (∃-projection onto keep).
  static LinearSystem Project(const LinearSystem& system,
                              const std::vector<ArithVar>& keep);

  /// True iff `system` entails `constraint` (every solution of the
  /// system satisfies it). Decided as UNSAT(system ∧ ¬constraint);
  /// the negation of an equality is handled by convexity (two strict
  /// branches).
  static bool Entails(const LinearSystem& system,
                      const LinearConstraint& constraint);

  /// Satisfiability of a convex system together with disequalities
  /// (expr != 0 for each element of `disequalities`). Uses the fact
  /// that a convex set is contained in a finite union of hyperplanes
  /// iff it is contained in one of them.
  static bool IsSatisfiableWithDisequalities(
      const LinearSystem& system,
      const std::vector<LinearExpr>& disequalities);

 private:
  /// One elimination round; detects trivially-false constraints.
  /// Returns false in *feasible if a variable-free contradiction
  /// appeared.
  static LinearSystem EliminateImpl(const LinearSystem& system, ArithVar var,
                                    bool* feasible);

  /// Drops variable-free constraints, reporting contradictions.
  static LinearSystem SimplifyGround(const LinearSystem& system,
                                     bool* feasible);
};

}  // namespace has

#endif  // HAS_ARITH_FOURIER_MOTZKIN_H_
