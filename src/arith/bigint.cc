#include "arith/bigint.h"

#include <algorithm>
#include <cmath>

#include "common/hashing.h"
#include "common/status.h"

namespace has {

BigInt::BigInt(int64_t value) : negative_(value < 0) {
  uint64_t mag =
      value < 0 ? ~static_cast<uint64_t>(value) + 1 : static_cast<uint64_t>(value);
  while (mag != 0) {
    limbs_.push_back(static_cast<uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
}

BigInt BigInt::FromString(const std::string& text) {
  BigInt out;
  size_t i = 0;
  bool neg = false;
  if (i < text.size() && (text[i] == '-' || text[i] == '+')) {
    neg = text[i] == '-';
    ++i;
  }
  BigInt ten(10);
  for (; i < text.size(); ++i) {
    HAS_CHECK_MSG(text[i] >= '0' && text[i] <= '9', "bad digit in BigInt");
    out = out * ten + BigInt(text[i] - '0');
  }
  if (neg && !out.is_zero()) out.negative_ = true;
  return out;
}

void BigInt::Trim(std::vector<uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += (INT64_C(1) << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::DivMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b,
                                           std::vector<uint32_t>* rem) {
  HAS_CHECK_MSG(!b.empty(), "BigInt division by zero");
  if (CompareMagnitude(a, b) < 0) {
    *rem = a;
    Trim(rem);
    return {};
  }
  // Bit-by-bit long division: simple and obviously correct; coefficient
  // sizes in this library stay small enough that O(bits * limbs) is
  // never a bottleneck.
  std::vector<uint32_t> quotient(a.size(), 0);
  std::vector<uint32_t> remainder;
  for (size_t bit_index = a.size() * 32; bit_index-- > 0;) {
    // remainder <<= 1 | bit
    uint32_t bit = (a[bit_index / 32] >> (bit_index % 32)) & 1u;
    uint32_t carry = bit;
    for (size_t i = 0; i < remainder.size(); ++i) {
      uint32_t next_carry = remainder[i] >> 31;
      remainder[i] = (remainder[i] << 1) | carry;
      carry = next_carry;
    }
    if (carry != 0) remainder.push_back(carry);
    Trim(&remainder);
    if (CompareMagnitude(remainder, b) >= 0) {
      remainder = SubMagnitude(remainder, b);
      quotient[bit_index / 32] |= (1u << (bit_index % 32));
    }
  }
  Trim(&quotient);
  *rem = std::move(remainder);
  return quotient;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  if (negative_ == o.negative_) {
    out.limbs_ = AddMagnitude(limbs_, o.limbs_);
    out.negative_ = negative_;
  } else {
    int cmp = CompareMagnitude(limbs_, o.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = SubMagnitude(limbs_, o.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = SubMagnitude(o.limbs_, limbs_);
      out.negative_ = o.negative_;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out;
  out.limbs_ = MulMagnitude(limbs_, o.limbs_);
  out.negative_ = !out.limbs_.empty() && (negative_ != o.negative_);
  return out;
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt out;
  std::vector<uint32_t> rem;
  out.limbs_ = DivMagnitude(limbs_, o.limbs_, &rem);
  out.negative_ = !out.limbs_.empty() && (negative_ != o.negative_);
  return out;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt out;
  std::vector<uint32_t> rem;
  DivMagnitude(limbs_, o.limbs_, &rem);
  out.limbs_ = std::move(rem);
  out.negative_ = !out.limbs_.empty() && negative_;
  return out;
}

bool BigInt::operator<(const BigInt& o) const {
  if (negative_ != o.negative_) return negative_;
  int cmp = CompareMagnitude(limbs_, o.limbs_);
  return negative_ ? cmp > 0 : cmp < 0;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a = a.Abs();
  b = b.Abs();
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

double BigInt::ToDouble() const {
  double out = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

bool BigInt::FitsInt64(int64_t* out) const {
  if (limbs_.size() > 2) return false;
  uint64_t mag = 0;
  if (limbs_.size() >= 1) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (mag > (UINT64_C(1) << 63)) return false;
    *out = -static_cast<int64_t>(mag);
  } else {
    if (mag >= (UINT64_C(1) << 63)) return false;
    *out = static_cast<int64_t>(mag);
  }
  return true;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  std::string digits;
  std::vector<uint32_t> mag = limbs_;
  const std::vector<uint32_t> ten = {10};
  while (!mag.empty()) {
    std::vector<uint32_t> rem;
    mag = DivMagnitude(mag, ten, &rem);
    digits.push_back(static_cast<char>('0' + (rem.empty() ? 0 : rem[0])));
  }
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

size_t BigInt::Hash() const {
  size_t seed = negative_ ? 1 : 0;
  for (uint32_t limb : limbs_) HashMix(&seed, limb);
  return seed;
}

}  // namespace has
