#include "arith/fourier_motzkin.h"

#include <algorithm>
#include <set>

#include "common/status.h"

namespace has {

namespace {

/// Evaluates a variable-free constraint.
bool GroundHolds(const LinearConstraint& c) {
  int s = c.expr.constant().sign();
  switch (c.op) {
    case Relop::kLt:
      return s < 0;
    case Relop::kLe:
      return s <= 0;
    case Relop::kEq:
      return s == 0;
  }
  return false;
}

}  // namespace

LinearSystem FourierMotzkin::SimplifyGround(const LinearSystem& system,
                                            bool* feasible) {
  *feasible = true;
  LinearSystem out;
  for (const LinearConstraint& c : system.constraints()) {
    if (c.expr.IsConstant()) {
      if (!GroundHolds(c)) {
        *feasible = false;
        return LinearSystem();
      }
    } else {
      out.Add(c);
    }
  }
  return out;
}

LinearSystem FourierMotzkin::EliminateImpl(const LinearSystem& system,
                                           ArithVar var, bool* feasible) {
  *feasible = true;

  // Prefer substitution through an equality containing var: exact and
  // avoids the quadratic blowup of the inequality combination step.
  for (const LinearConstraint& c : system.constraints()) {
    if (c.op != Relop::kEq) continue;
    Rational a = c.expr.Coef(var);
    if (a.is_zero()) continue;
    // c.expr = a*var + rest = 0  =>  var = -rest / a.
    LinearExpr rest = c.expr;
    rest.AddTerm(var, -a);
    LinearExpr replacement = (-rest) * (Rational(1) / a);
    LinearSystem substituted;
    for (const LinearConstraint& other : system.constraints()) {
      if (&other == &c) continue;
      substituted.Add(
          LinearConstraint{other.expr.Substitute(var, replacement), other.op});
    }
    return SimplifyGround(substituted, feasible);
  }

  // Partition into lower bounds (a<0: expr<=>0 gives var >= bound),
  // upper bounds (a>0), and var-free constraints.
  struct Bound {
    LinearExpr expr;  // the bound on var: var (op) expr
    bool strict;
  };
  std::vector<Bound> lowers, uppers;
  LinearSystem rest;
  for (const LinearConstraint& c : system.constraints()) {
    Rational a = c.expr.Coef(var);
    if (a.is_zero()) {
      rest.Add(c);
      continue;
    }
    // a*var + r (op) 0  =>  var (op') -r/a, flipping for a<0.
    LinearExpr r = c.expr;
    r.AddTerm(var, -a);
    LinearExpr bound = (-r) * (Rational(1) / a);
    bool strict = c.op == Relop::kLt;
    if (a.sign() > 0) {
      uppers.push_back(Bound{std::move(bound), strict});
    } else {
      lowers.push_back(Bound{std::move(bound), strict});
    }
  }
  // Combine all lower/upper pairs: L <= var <= U  =>  L <= U.
  for (const Bound& lo : lowers) {
    for (const Bound& up : uppers) {
      LinearExpr diff = lo.expr - up.expr;  // require diff (op) 0
      Relop op = (lo.strict || up.strict) ? Relop::kLt : Relop::kLe;
      rest.Add(LinearConstraint{std::move(diff), op});
    }
  }
  return SimplifyGround(rest, feasible);
}

LinearSystem FourierMotzkin::Eliminate(const LinearSystem& system,
                                       ArithVar var) {
  bool feasible = true;
  LinearSystem out = EliminateImpl(system, var, &feasible);
  if (!feasible) {
    // Represent "false" as the ground contradiction 1 <= 0.
    LinearSystem falsum;
    falsum.Add(LinearExpr::Constant(Rational(1)), Relop::kLe);
    return falsum;
  }
  return out;
}

LinearSystem FourierMotzkin::Project(const LinearSystem& system,
                                     const std::vector<ArithVar>& keep) {
  std::set<ArithVar> keep_set(keep.begin(), keep.end());
  LinearSystem cur = system;
  // Eliminate variables one at a time; order by (heuristic) fewest
  // occurrences first to curb intermediate blowup.
  while (true) {
    std::vector<ArithVar> vars = cur.Vars();
    ArithVar victim = -1;
    size_t best_count = SIZE_MAX;
    for (ArithVar v : vars) {
      if (keep_set.count(v)) continue;
      size_t count = 0;
      for (const LinearConstraint& c : cur.constraints()) {
        if (!c.expr.Coef(v).is_zero()) ++count;
      }
      if (count < best_count) {
        best_count = count;
        victim = v;
      }
    }
    if (victim == -1) break;
    cur = Eliminate(cur, victim);
  }
  return cur;
}

bool FourierMotzkin::IsSatisfiable(const LinearSystem& system) {
  bool feasible = true;
  LinearSystem cur = SimplifyGround(system, &feasible);
  if (!feasible) return false;
  while (!cur.empty()) {
    std::vector<ArithVar> vars = cur.Vars();
    if (vars.empty()) {
      // Only ground constraints remained; SimplifyGround already
      // validated them.
      return true;
    }
    cur = EliminateImpl(cur, vars.front(), &feasible);
    if (!feasible) return false;
  }
  return true;
}

bool FourierMotzkin::Entails(const LinearSystem& system,
                             const LinearConstraint& constraint) {
  // system |= c  iff  system ∧ ¬c is unsatisfiable.
  switch (constraint.op) {
    case Relop::kLt: {
      LinearSystem s = system;  // ¬(e<0) is e>=0, i.e. -e<=0
      s.Add(-constraint.expr, Relop::kLe);
      return !IsSatisfiable(s);
    }
    case Relop::kLe: {
      LinearSystem s = system;  // ¬(e<=0) is e>0, i.e. -e<0
      s.Add(-constraint.expr, Relop::kLt);
      return !IsSatisfiable(s);
    }
    case Relop::kEq: {
      // ¬(e=0) is e<0 ∨ e>0; by convexity system |= e=0 iff both
      // branches are unsatisfiable.
      LinearSystem lt = system;
      lt.Add(constraint.expr, Relop::kLt);
      LinearSystem gt = system;
      gt.Add(-constraint.expr, Relop::kLt);
      return !IsSatisfiable(lt) && !IsSatisfiable(gt);
    }
  }
  return false;
}

bool FourierMotzkin::IsSatisfiableWithDisequalities(
    const LinearSystem& system, const std::vector<LinearExpr>& disequalities) {
  if (!IsSatisfiable(system)) return false;
  // A convex set contained in a finite union of hyperplanes is contained
  // in one of them, so it suffices to check each disequality separately.
  for (const LinearExpr& e : disequalities) {
    LinearSystem lt = system;
    lt.Add(e, Relop::kLt);
    if (IsSatisfiable(lt)) continue;
    LinearSystem gt = system;
    gt.Add(-e, Relop::kLt);
    if (IsSatisfiable(gt)) continue;
    return false;  // system ⊆ {e = 0}
  }
  return true;
}

}  // namespace has
