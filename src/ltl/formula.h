// Propositional LTL (reviewed in Appendix B.2). Formulas are immutable
// trees over integer proposition ids; F and G are derived from U.
// The semantics used on finite words is the strong-next variant of
// [De Giacomo & Vardi 2013], matching the paper's treatment of finite
// local runs.
#ifndef HAS_LTL_FORMULA_H_
#define HAS_LTL_FORMULA_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace has {

enum class LtlKind : uint8_t {
  kTrue,
  kFalse,
  kProp,
  kNot,
  kAnd,
  kOr,
  kNext,
  kUntil,
};

class LtlFormula;
using LtlPtr = std::shared_ptr<const LtlFormula>;

class LtlFormula {
 public:
  static LtlPtr True();
  static LtlPtr False();
  static LtlPtr Prop(int id);
  static LtlPtr Not(LtlPtr a);
  static LtlPtr And(LtlPtr a, LtlPtr b);
  static LtlPtr Or(LtlPtr a, LtlPtr b);
  static LtlPtr Next(LtlPtr a);
  static LtlPtr Until(LtlPtr a, LtlPtr b);
  /// F a = true U a.
  static LtlPtr Eventually(LtlPtr a);
  /// G a = ¬F¬a.
  static LtlPtr Always(LtlPtr a);
  /// a -> b = ¬a ∨ b.
  static LtlPtr Implies(LtlPtr a, LtlPtr b);

  LtlKind kind() const { return kind_; }
  int prop() const { return prop_; }
  const LtlPtr& left() const { return left_; }
  const LtlPtr& right() const { return right_; }

  /// Evaluates the formula on an explicit finite word of proposition
  /// assignments (word[i][p] = truth of p at position i), using the
  /// finite-word semantics if `finite`, else treating the word as the
  /// prefix of an infinite word is NOT possible — infinite evaluation is
  /// done by the Büchi automaton; this helper is for finite runs and for
  /// tests.
  bool EvalFinite(const std::vector<std::vector<bool>>& word,
                  size_t position = 0) const;

  /// Evaluates on an ultimately-periodic infinite word
  /// prefix · loop^ω (loop must be non-empty). Used by tests to
  /// cross-check the Büchi construction.
  bool EvalLasso(const std::vector<std::vector<bool>>& prefix,
                 const std::vector<std::vector<bool>>& loop) const;

  /// Maximum proposition id used, or -1.
  int MaxProp() const;

  std::string ToString(
      const std::function<std::string(int)>& prop_name = nullptr) const;

 private:
  friend struct LtlFactory;

  LtlFormula() = default;

  LtlKind kind_ = LtlKind::kTrue;
  int prop_ = -1;
  LtlPtr left_, right_;
};

/// Internal factory (defined in formula.cc).
struct LtlFactory;

}  // namespace has

#endif  // HAS_LTL_FORMULA_H_
