#include "ltl/buchi.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/status.h"
#include "common/strings.h"

namespace has {

namespace {

/// The closure: all subformula nodes in post-order (children before
/// parents), deduplicated structurally by (kind, prop, child indices).
struct Closure {
  std::vector<const LtlFormula*> nodes;  // representative per entry
  std::vector<LtlKind> kinds;
  std::vector<int> props;
  std::vector<int> left;   // closure index or -1
  std::vector<int> right;  // closure index or -1
  int root = -1;
  std::vector<int> untils;  // closure indices of U-nodes
  std::vector<int> nexts;   // closure indices of X-nodes

  int Add(const LtlFormula* f) {
    int l = f->left() ? Add(f->left().get()) : -1;
    int r = f->right() ? Add(f->right().get()) : -1;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (kinds[i] == f->kind() && props[i] == f->prop() && left[i] == l &&
          right[i] == r) {
        return static_cast<int>(i);
      }
    }
    nodes.push_back(f);
    kinds.push_back(f->kind());
    props.push_back(f->prop());
    left.push_back(l);
    right.push_back(r);
    int idx = static_cast<int>(nodes.size() - 1);
    if (f->kind() == LtlKind::kUntil) untils.push_back(idx);
    if (f->kind() == LtlKind::kNext) nexts.push_back(idx);
    return idx;
  }
};

/// A tableau atom: membership bit per closure entry. Memberships of
/// boolean combinations are forced by the children; props, X and
/// (partially) U memberships are free.
using Atom = std::vector<bool>;

void EnumerateAtoms(const Closure& cl, std::vector<Atom>* out) {
  Atom cur(cl.nodes.size(), false);
  std::function<void(size_t)> rec = [&](size_t i) {
    if (i == cl.nodes.size()) {
      out->push_back(cur);
      return;
    }
    switch (cl.kinds[i]) {
      case LtlKind::kTrue:
        cur[i] = true;
        rec(i + 1);
        break;
      case LtlKind::kFalse:
        cur[i] = false;
        rec(i + 1);
        break;
      case LtlKind::kNot:
        cur[i] = !cur[cl.left[i]];
        rec(i + 1);
        break;
      case LtlKind::kAnd:
        cur[i] = cur[cl.left[i]] && cur[cl.right[i]];
        rec(i + 1);
        break;
      case LtlKind::kOr:
        cur[i] = cur[cl.left[i]] || cur[cl.right[i]];
        rec(i + 1);
        break;
      case LtlKind::kProp:
      case LtlKind::kNext:
        cur[i] = false;
        rec(i + 1);
        cur[i] = true;
        rec(i + 1);
        break;
      case LtlKind::kUntil: {
        bool l = cur[cl.left[i]];
        bool r = cur[cl.right[i]];
        if (r) {
          // ψ2 holds now, so the until holds.
          cur[i] = true;
          rec(i + 1);
        } else if (l) {
          // Depends on the future: both memberships are consistent.
          cur[i] = false;
          rec(i + 1);
          cur[i] = true;
          rec(i + 1);
        } else {
          cur[i] = false;
          rec(i + 1);
        }
        break;
      }
    }
  };
  rec(0);
}

/// One-step consistency: X-obligations and U-expansions.
bool CanFollow(const Closure& cl, const Atom& s, const Atom& t) {
  for (int x : cl.nexts) {
    if (s[x] != t[cl.left[x]]) return false;
  }
  for (int u : cl.untils) {
    bool now = s[u];
    bool expansion = s[cl.right[u]] || (s[cl.left[u]] && t[u]);
    if (now != expansion) return false;
  }
  return true;
}

/// Whether an atom may label the LAST position of a finite word:
/// strong-next formulas must be false and every pending until must be
/// discharged now.
bool CanEndWord(const Closure& cl, const Atom& s) {
  for (int x : cl.nexts) {
    if (s[x]) return false;
  }
  for (int u : cl.untils) {
    if (s[u] && !s[cl.right[u]]) return false;
  }
  return true;
}

}  // namespace

bool BuchiAutomaton::CompatibleWith(int q,
                                    const std::vector<bool>& letter) const {
  HAS_CHECK(static_cast<int>(letter.size()) >= num_props_);
  for (int p = 0; p < num_props_; ++p) {
    if (constrained_[p] && props_[q][p] != letter[p]) return false;
  }
  return true;
}

bool BuchiAutomaton::AcceptsFinite(
    const std::vector<std::vector<bool>>& word) const {
  if (word.empty()) return false;
  std::set<int> frontier;
  for (int q : initial_) {
    if (CompatibleWith(q, word[0])) frontier.insert(q);
  }
  for (size_t i = 1; i < word.size(); ++i) {
    std::set<int> next;
    for (int q : frontier) {
      for (int q2 : succ_[q]) {
        if (CompatibleWith(q2, word[i])) next.insert(q2);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) return false;
  }
  for (int q : frontier) {
    if (finite_accepting_[q]) return true;
  }
  return false;
}

bool BuchiAutomaton::AcceptsLasso(
    const std::vector<std::vector<bool>>& prefix,
    const std::vector<std::vector<bool>>& loop) const {
  HAS_CHECK(!loop.empty());
  // Product positions: prefix offsets then loop offsets; find a
  // reachable cycle through an accepting product node within the loop
  // region (the counter-free structure of the position graph makes
  // plain SCC-free cycle detection on (state, loop offset) sound).
  const size_t plen = prefix.size();
  const size_t llen = loop.size();
  auto letter = [&](size_t pos) -> const std::vector<bool>& {
    return pos < plen ? prefix[pos] : loop[(pos - plen) % llen];
  };
  // Reachable (state, canonical position) pairs; canonical positions in
  // [0, plen + llen).
  const size_t positions = plen + llen;
  std::vector<std::vector<bool>> reach(num_states(),
                                       std::vector<bool>(positions, false));
  std::vector<std::pair<int, size_t>> stack;
  for (int q : initial_) {
    if (CompatibleWith(q, letter(0))) {
      size_t c0 = positions == 0 ? 0 : (0 < plen ? 0 : plen);
      if (!reach[q][c0]) {
        reach[q][c0] = true;
        stack.emplace_back(q, c0);
      }
    }
  }
  auto canon = [&](size_t pos) -> size_t {
    return pos < positions ? pos : plen + ((pos - plen) % llen);
  };
  while (!stack.empty()) {
    auto [q, pos] = stack.back();
    stack.pop_back();
    size_t next_pos = canon(pos + 1);
    for (int q2 : succ_[q]) {
      if (!CompatibleWith(q2, letter(next_pos))) continue;
      if (!reach[q2][next_pos]) {
        reach[q2][next_pos] = true;
        stack.emplace_back(q2, next_pos);
      }
    }
  }
  // A lasso exists iff some accepting (q, pos) with pos in the loop
  // region lies on a cycle of the product restricted to loop positions.
  // Since the loop region of the position graph is a simple cycle of
  // length llen, a product node lies on a cycle iff it can reach itself
  // in k*llen steps; we detect this with a DFS bounded by
  // num_states()*llen steps via reachability in the product.
  for (int q = 0; q < num_states(); ++q) {
    for (size_t pos = plen; pos < positions; ++pos) {
      if (!reach[q][pos] || !accepting_[q]) continue;
      // BFS from (q,pos) looking for a return to (q,pos).
      std::vector<std::vector<bool>> seen(num_states(),
                                          std::vector<bool>(positions, false));
      std::vector<std::pair<int, size_t>> bfs = {{q, pos}};
      bool found = false;
      while (!bfs.empty() && !found) {
        auto [u, up] = bfs.back();
        bfs.pop_back();
        size_t next_pos = canon(up + 1);
        for (int v : succ_[u]) {
          if (!CompatibleWith(v, letter(next_pos))) continue;
          if (v == q && next_pos == pos) {
            found = true;
            break;
          }
          if (!seen[v][next_pos]) {
            seen[v][next_pos] = true;
            bfs.emplace_back(v, next_pos);
          }
        }
      }
      if (found) return true;
    }
  }
  return false;
}

std::string BuchiAutomaton::Stats() const {
  int acc = 0, fin = 0, edges = 0;
  for (int q = 0; q < num_states(); ++q) {
    if (accepting_[q]) ++acc;
    if (finite_accepting_[q]) ++fin;
    edges += static_cast<int>(succ_[q].size());
  }
  return StrCat(num_states(), " states, ", edges, " edges, ", acc,
                " accepting, ", fin, " finite-accepting, ", initial_.size(),
                " initial");
}

BuchiAutomaton BuildBuchi(const LtlPtr& formula, int num_props) {
  Closure cl;
  cl.root = cl.Add(formula.get());

  std::vector<Atom> atoms;
  EnumerateAtoms(cl, &atoms);

  const int k = static_cast<int>(cl.untils.size());
  // Degeneralized states (atom, counter), counter ∈ [0, k]: value c < k
  // means "waiting to discharge until #c"; value k is the flush marker
  // visited exactly when all k untils discharged in rotation, and is the
  // (only) accepting value. With k == 0 the single counter value 0 is
  // accepting.
  const int counters = k + 1;

  BuchiAutomaton b;
  b.num_props_ = num_props;
  const int n = static_cast<int>(atoms.size());
  auto state_id = [&](int atom, int counter) {
    return atom * counters + counter;
  };
  const int total = n * counters;
  b.succ_.assign(total, {});
  b.accepting_.assign(total, false);
  b.finite_accepting_.assign(total, false);
  b.props_.assign(total, std::vector<bool>(num_props, false));
  b.constrained_.assign(num_props, false);
  for (size_t i = 0; i < cl.nodes.size(); ++i) {
    if (cl.kinds[i] == LtlKind::kProp && cl.props[i] >= 0 &&
        cl.props[i] < num_props) {
      b.constrained_[cl.props[i]] = true;
    }
  }

  // Per-atom proposition signature.
  for (int a = 0; a < n; ++a) {
    std::vector<bool> sig(num_props, false);
    for (size_t i = 0; i < cl.nodes.size(); ++i) {
      if (cl.kinds[i] == LtlKind::kProp && cl.props[i] >= 0 &&
          cl.props[i] < num_props) {
        sig[cl.props[i]] = atoms[a][i];
      }
    }
    for (int c = 0; c < counters; ++c) b.props_[state_id(a, c)] = sig;
  }

  // Until #i is discharged at an atom when the until is not pending
  // there or its right-hand side holds there.
  auto discharged = [&](int atom, int u_index) {
    int u = cl.untils[u_index];
    return !atoms[atom][u] || atoms[atom][cl.right[u]];
  };
  // Target counter when leaving `atom` with counter `c`.
  auto next_counter = [&](int atom, int c) {
    if (k == 0) return 0;
    int eff = (c == k) ? 0 : c;  // the flush marker behaves like 0
    while (eff < k && discharged(atom, eff)) ++eff;
    return eff;  // == k when everything discharged in rotation: flush
  };

  for (int a = 0; a < n; ++a) {
    for (int a2 = 0; a2 < n; ++a2) {
      if (!CanFollow(cl, atoms[a], atoms[a2])) continue;
      for (int c = 0; c < counters; ++c) {
        b.succ_[state_id(a, c)].push_back(state_id(a2, next_counter(a, c)));
      }
    }
  }
  for (int a = 0; a < n; ++a) {
    for (int c = 0; c < counters; ++c) {
      if (k == 0 || c == k) b.accepting_[state_id(a, c)] = true;
    }
    if (CanEndWord(cl, atoms[a])) {
      for (int c = 0; c < counters; ++c) {
        b.finite_accepting_[state_id(a, c)] = true;
      }
    }
  }
  for (int a = 0; a < n; ++a) {
    if (atoms[a][cl.root]) b.initial_.push_back(state_id(a, 0));
  }
  return b;
}

}  // namespace has
