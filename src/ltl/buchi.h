// Büchi automaton construction from LTL (the standard declarative
// tableau of Vardi–Wolper / Sistla–Vardi–Wolper, as used in Section 3).
// States are maximal consistent subsets of the closure; generalized
// Büchi acceptance (one set per Until) is degeneralized with a counter.
// As noted in the paper, a subset Qfin of states makes the same
// automaton accept exactly the finite words satisfying the formula
// under the finite-word semantics.
#ifndef HAS_LTL_BUCHI_H_
#define HAS_LTL_BUCHI_H_

#include <string>
#include <vector>

#include "ltl/formula.h"

namespace has {

/// An explicit-state Büchi automaton over letters that are truth
/// assignments to propositions 0..num_props-1.
///
/// A state "reads" the letter of its own position: a run on word
/// a_0 a_1 ... is a sequence q_0 q_1 ... with q_i compatible with a_i
/// (CompatibleWith) and q_{i+1} ∈ successors(q_i); q_0 must be initial.
/// Infinite acceptance: some q_i ∈ accepting for infinitely many i.
/// Finite acceptance: the state reading the last letter is in
/// finite_accepting.
class BuchiAutomaton {
 public:
  int num_states() const { return static_cast<int>(succ_.size()); }
  int num_props() const { return num_props_; }

  const std::vector<int>& initial() const { return initial_; }
  const std::vector<int>& successors(int q) const { return succ_[q]; }
  bool accepting(int q) const { return accepting_[q]; }
  bool finite_accepting(int q) const { return finite_accepting_[q]; }

  /// True iff state q's required proposition literals match `letter`.
  bool CompatibleWith(int q, const std::vector<bool>& letter) const;

  /// The truth value state q requires of proposition p (meaningful only
  /// when the proposition occurs in the formula; see PropConstrained).
  bool PropHolds(int q, int p) const { return props_[q][p]; }
  /// Whether the formula constrains proposition p at all.
  bool PropConstrained(int p) const { return constrained_[p]; }

  /// Runs the automaton on an explicit finite word; true iff some run
  /// ends in a finite-accepting state (finite-word satisfaction).
  bool AcceptsFinite(const std::vector<std::vector<bool>>& word) const;

  /// Accepts the ultimately periodic word prefix · loop^ω.
  bool AcceptsLasso(const std::vector<std::vector<bool>>& prefix,
                    const std::vector<std::vector<bool>>& loop) const;

  std::string Stats() const;

 private:
  friend BuchiAutomaton BuildBuchi(const LtlPtr&, int);

  int num_props_ = 0;
  std::vector<int> initial_;
  std::vector<std::vector<int>> succ_;
  std::vector<bool> accepting_;
  std::vector<bool> finite_accepting_;
  /// props_[q][p]: truth of proposition p required by state q.
  std::vector<std::vector<bool>> props_;
  /// constrained_[p]: proposition p occurs in the formula; unmentioned
  /// propositions are don't-care for CompatibleWith.
  std::vector<bool> constrained_;
};

/// Builds the automaton for `formula` over propositions 0..num_props-1.
BuchiAutomaton BuildBuchi(const LtlPtr& formula, int num_props);

}  // namespace has

#endif  // HAS_LTL_BUCHI_H_
