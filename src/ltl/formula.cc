#include "ltl/formula.h"

#include <algorithm>

#include "common/status.h"
#include "common/strings.h"

namespace has {

// Factory helper with access to private members.
struct LtlFactory {
  static LtlPtr Make(LtlKind kind, int prop, LtlPtr left, LtlPtr right) {
    auto f = std::shared_ptr<LtlFormula>(new LtlFormula());
    f->kind_ = kind;
    f->prop_ = prop;
    f->left_ = std::move(left);
    f->right_ = std::move(right);
    return f;
  }
};

LtlPtr LtlFormula::True() {
  return LtlFactory::Make(LtlKind::kTrue, -1, nullptr, nullptr);
}
LtlPtr LtlFormula::False() {
  return LtlFactory::Make(LtlKind::kFalse, -1, nullptr, nullptr);
}
LtlPtr LtlFormula::Prop(int id) {
  return LtlFactory::Make(LtlKind::kProp, id, nullptr, nullptr);
}
LtlPtr LtlFormula::Not(LtlPtr a) {
  return LtlFactory::Make(LtlKind::kNot, -1, std::move(a), nullptr);
}
LtlPtr LtlFormula::And(LtlPtr a, LtlPtr b) {
  return LtlFactory::Make(LtlKind::kAnd, -1, std::move(a), std::move(b));
}
LtlPtr LtlFormula::Or(LtlPtr a, LtlPtr b) {
  return LtlFactory::Make(LtlKind::kOr, -1, std::move(a), std::move(b));
}
LtlPtr LtlFormula::Next(LtlPtr a) {
  return LtlFactory::Make(LtlKind::kNext, -1, std::move(a), nullptr);
}
LtlPtr LtlFormula::Until(LtlPtr a, LtlPtr b) {
  return LtlFactory::Make(LtlKind::kUntil, -1, std::move(a), std::move(b));
}
LtlPtr LtlFormula::Eventually(LtlPtr a) { return Until(True(), std::move(a)); }
LtlPtr LtlFormula::Always(LtlPtr a) {
  return Not(Eventually(Not(std::move(a))));
}
LtlPtr LtlFormula::Implies(LtlPtr a, LtlPtr b) {
  return Or(Not(std::move(a)), std::move(b));
}

bool LtlFormula::EvalFinite(const std::vector<std::vector<bool>>& word,
                            size_t position) const {
  const size_t n = word.size();
  HAS_CHECK_MSG(position <= n, "position beyond word");
  if (position >= n) {
    // Empty suffix: by convention only kTrue holds (local runs are never
    // empty; this branch is defensive).
    return kind_ == LtlKind::kTrue;
  }
  switch (kind_) {
    case LtlKind::kTrue:
      return true;
    case LtlKind::kFalse:
      return false;
    case LtlKind::kProp:
      return prop_ >= 0 && prop_ < static_cast<int>(word[position].size()) &&
             word[position][prop_];
    case LtlKind::kNot:
      return !left_->EvalFinite(word, position);
    case LtlKind::kAnd:
      return left_->EvalFinite(word, position) &&
             right_->EvalFinite(word, position);
    case LtlKind::kOr:
      return left_->EvalFinite(word, position) ||
             right_->EvalFinite(word, position);
    case LtlKind::kNext:
      // Strong next: requires a next position.
      return position + 1 < n && left_->EvalFinite(word, position + 1);
    case LtlKind::kUntil:
      for (size_t k = position; k < n; ++k) {
        if (right_->EvalFinite(word, k)) return true;
        if (!left_->EvalFinite(word, k)) return false;
      }
      return false;
  }
  return false;
}

bool LtlFormula::EvalLasso(const std::vector<std::vector<bool>>& prefix,
                           const std::vector<std::vector<bool>>& loop) const {
  HAS_CHECK_MSG(!loop.empty(), "lasso loop must be non-empty");
  // Positions 0..|prefix|-1 then the loop repeating. Truth values of
  // subformulas on an ultimately periodic word are themselves
  // ultimately periodic with the same shape, so we evaluate by fixpoint
  // on the unrolled word prefix+loop+loop (two unrollings suffice for
  // U-fixpoints over one loop period with the standard two-pass trick);
  // to stay simple and obviously correct we instead unroll the loop
  // |formula| + 2 times and evaluate U with an explicit fixpoint over
  // the periodic structure.
  //
  // Truth values of subformulas on an ultimately periodic word are
  // themselves ultimately periodic with the same prefix/period shape,
  // so it suffices to compute them at positions [0, |prefix|+|loop|)
  // with position arithmetic wrapping into the loop region.
  size_t plen = prefix.size();
  size_t llen = loop.size();
  auto letter = [&](size_t pos) -> const std::vector<bool>& {
    if (pos < plen) return prefix[pos];
    return loop[(pos - plen) % llen];
  };
  // Memoized evaluation over canonical positions: positions >= plen are
  // canonicalized to plen + ((pos - plen) mod llen) once all positions
  // beyond plen + llen behave identically... which only holds for
  // formulas evaluated AT canonical positions. We compute truth values
  // for all subformulas at positions [0, plen + llen) by fixpoint.
  std::vector<const LtlFormula*> subs;
  std::function<void(const LtlFormula*)> collect =
      [&](const LtlFormula* f) {
        subs.push_back(f);
        if (f->left_) collect(f->left_.get());
        if (f->right_) collect(f->right_.get());
      };
  collect(this);
  const size_t positions = plen + llen;
  auto canon = [&](size_t pos) -> size_t {
    return pos < positions ? pos : plen + ((pos - plen) % llen);
  };
  // truth[i][p] for subformula index i at canonical position p.
  std::vector<std::vector<bool>> truth(subs.size(),
                                       std::vector<bool>(positions, false));
  auto find_index = [&](const LtlFormula* f) -> size_t {
    for (size_t i = 0; i < subs.size(); ++i) {
      if (subs[i] == f) return i;
    }
    HAS_CHECK_MSG(false, "subformula not found");
    return 0;
  };
  // Iterate to fixpoint (monotone only for U; we simply iterate until
  // stable, bounded by subs*positions rounds).
  bool changed = true;
  int rounds = 0;
  while (changed && rounds < static_cast<int>(subs.size() * positions) + 2) {
    changed = false;
    ++rounds;
    for (size_t i = subs.size(); i-- > 0;) {  // children before parents
      const LtlFormula* f = subs[i];
      for (size_t p = 0; p < positions; ++p) {
        bool v = false;
        switch (f->kind_) {
          case LtlKind::kTrue:
            v = true;
            break;
          case LtlKind::kFalse:
            v = false;
            break;
          case LtlKind::kProp:
            v = f->prop_ >= 0 &&
                f->prop_ < static_cast<int>(letter(p).size()) &&
                letter(p)[f->prop_];
            break;
          case LtlKind::kNot:
            v = !truth[find_index(f->left_.get())][p];
            break;
          case LtlKind::kAnd:
            v = truth[find_index(f->left_.get())][p] &&
                truth[find_index(f->right_.get())][p];
            break;
          case LtlKind::kOr:
            v = truth[find_index(f->left_.get())][p] ||
                truth[find_index(f->right_.get())][p];
            break;
          case LtlKind::kNext:
            v = truth[find_index(f->left_.get())][canon(p + 1)];
            break;
          case LtlKind::kUntil: {
            // ψ1 U ψ2 at p: scan forward up to one full period past the
            // loop — beyond that the pattern repeats.
            size_t li = find_index(f->left_.get());
            size_t ri = find_index(f->right_.get());
            v = false;
            bool blocked = false;
            for (size_t k = p; k < p + positions + llen && !blocked; ++k) {
              size_t cp = canon(k);
              if (truth[ri][cp]) {
                v = true;
                break;
              }
              if (!truth[li][cp]) blocked = true;
            }
            break;
          }
        }
        if (truth[i][p] != v) {
          truth[i][p] = v;
          changed = true;
        }
      }
    }
  }
  return truth[0][0];
}

int LtlFormula::MaxProp() const {
  int best = kind_ == LtlKind::kProp ? prop_ : -1;
  if (left_) best = std::max(best, left_->MaxProp());
  if (right_) best = std::max(best, right_->MaxProp());
  return best;
}

std::string LtlFormula::ToString(
    const std::function<std::string(int)>& prop_name) const {
  auto name = [&](int p) {
    return prop_name ? prop_name(p) : StrCat("p", p);
  };
  switch (kind_) {
    case LtlKind::kTrue:
      return "true";
    case LtlKind::kFalse:
      return "false";
    case LtlKind::kProp:
      return name(prop_);
    case LtlKind::kNot:
      return StrCat("!", left_->ToString(prop_name));
    case LtlKind::kAnd:
      return StrCat("(", left_->ToString(prop_name), " && ",
                    right_->ToString(prop_name), ")");
    case LtlKind::kOr:
      return StrCat("(", left_->ToString(prop_name), " || ",
                    right_->ToString(prop_name), ")");
    case LtlKind::kNext:
      return StrCat("X", left_->ToString(prop_name));
    case LtlKind::kUntil:
      return StrCat("(", left_->ToString(prop_name), " U ",
                    right_->ToString(prop_name), ")");
  }
  return "?";
}

}  // namespace has
