#include "runs/run_tree.h"

#include <set>

#include "common/strings.h"

namespace has {

namespace {

/// Per-relation equality over the task's declared family, tolerating
/// short (padded-with-empty) vectors on either side.
bool SameSets(const Task& task, const TaskSets& a, const TaskSets& b) {
  for (int rel = 0; rel < task.num_set_relations(); ++rel) {
    if (RelationContents(a, rel) != RelationContents(b, rel)) return false;
  }
  return true;
}

Status CheckLocalRun(const ArtifactSystem& system, const DatabaseInstance& db,
                     const RunTree& tree, int run_index) {
  const LocalRun& run = tree.runs[run_index];
  const Task& task = system.task(run.task);
  if (run.steps.empty()) {
    return Status::FailedPrecondition("empty local run");
  }
  if (run.steps[0].service != ServiceRef::Opening(run.task)) {
    return Status::FailedPrecondition("run must start with σ^o_T");
  }
  Valuation expected0 = OpeningValuation(task, run.input);
  if (run.steps[0].nu != expected0) {
    return Status::FailedPrecondition("bad opening valuation");
  }
  for (const SetContents& rel : run.steps[0].sets) {
    if (!rel.empty()) {
      return Status::FailedPrecondition(
          "artifact relations must start empty");
    }
  }

  std::set<TaskId> opened_in_segment;
  std::set<TaskId> open_children;
  for (size_t i = 1; i < run.steps.size(); ++i) {
    const RunStep& prev = run.steps[i - 1];
    const RunStep& step = run.steps[i];
    const ServiceRef& s = step.service;
    switch (s.kind) {
      case ServiceRef::Kind::kInternal: {
        if (s.task != run.task) {
          return Status::FailedPrecondition("foreign internal service");
        }
        if (!open_children.empty()) {
          return Status::FailedPrecondition(
              "internal service with active subtasks (restriction 4)");
        }
        HAS_RETURN_IF_ERROR(CheckInternalTransition(
            db, task, task.service(s.index), prev.nu, prev.sets, step.nu,
            step.sets));
        opened_in_segment.clear();
        break;
      }
      case ServiceRef::Kind::kOpening: {
        // Opening a child: pre-condition over this task's valuation,
        // own state unchanged.
        bool is_child = false;
        for (TaskId c : task.children()) is_child = is_child || c == s.task;
        if (!is_child) {
          return Status::FailedPrecondition("opening a non-child");
        }
        if (opened_in_segment.count(s.task) > 0) {
          return Status::FailedPrecondition(
              "child opened twice in a segment (restriction 8)");
        }
        const Task& child = system.task(s.task);
        if (!EvalCondition(*child.opening_pre(), db, prev.nu)) {
          return Status::FailedPrecondition("child opening pre fails");
        }
        if (step.nu != prev.nu || !SameSets(task, prev.sets, step.sets)) {
          return Status::FailedPrecondition(
              "opening must not change local data");
        }
        if (step.child_run < 0 ||
            step.child_run >= static_cast<int>(tree.runs.size())) {
          return Status::FailedPrecondition("dangling child run");
        }
        // Input passing (Definition 10).
        const LocalRun& child_run = tree.runs[step.child_run];
        for (const auto& [own, parent] : child.fin()) {
          if (child_run.input[own] != prev.nu[parent]) {
            return Status::FailedPrecondition("input passing mismatch");
          }
        }
        opened_in_segment.insert(s.task);
        open_children.insert(s.task);
        break;
      }
      case ServiceRef::Kind::kClosing: {
        if (s.task == run.task) {
          // Own closing: must be the last step; conditions checked
          // below.
          if (i + 1 != run.steps.size()) {
            return Status::FailedPrecondition("σ^c_T not last");
          }
          if (!open_children.empty()) {
            return Status::FailedPrecondition(
                "closing with active subtasks");
          }
          if (!EvalCondition(*task.closing_pre(), db, prev.nu)) {
            return Status::FailedPrecondition("closing pre fails");
          }
          if (step.nu != prev.nu) {
            return Status::FailedPrecondition("closing changed valuation");
          }
          break;
        }
        if (open_children.count(s.task) == 0) {
          return Status::FailedPrecondition("closing a non-open child");
        }
        open_children.erase(s.task);
        // Find the child run via the opening step.
        int child_index = -1;
        for (size_t j = 1; j < i; ++j) {
          if (run.steps[j].service == ServiceRef::Opening(s.task)) {
            child_index = run.steps[j].child_run;
          }
        }
        if (child_index < 0) {
          return Status::FailedPrecondition("close without open");
        }
        const LocalRun& child_run = tree.runs[child_index];
        if (!child_run.returning) {
          return Status::FailedPrecondition(
              "closing a non-returning child run");
        }
        const Task& child = system.task(s.task);
        // Return passing: null ID targets take child values; non-null
        // ID targets keep theirs; numeric targets are overwritten;
        // everything else unchanged.
        Valuation expected = prev.nu;
        for (const auto& [parent_var, own_var] : child.fout()) {
          bool is_id = task.vars().var(parent_var).sort == VarSort::kId;
          if (!is_id || prev.nu[parent_var].is_null()) {
            expected[parent_var] = child_run.output[own_var];
          }
        }
        if (step.nu != expected) {
          return Status::FailedPrecondition("return passing mismatch");
        }
        if (!SameSets(task, prev.sets, step.sets)) {
          return Status::FailedPrecondition("closing changed the sets");
        }
        break;
      }
    }
  }
  if (run.returning) {
    if (run.steps.back().service != ServiceRef::Closing(run.task)) {
      return Status::FailedPrecondition("returning run must end with σ^c_T");
    }
  }
  return Status::Ok();
}

}  // namespace

Status CheckRunTree(const ArtifactSystem& system, const DatabaseInstance& db,
                    const RunTree& tree) {
  if (tree.runs.empty()) {
    return Status::FailedPrecondition("empty tree");
  }
  if (tree.runs[0].task != system.root()) {
    return Status::FailedPrecondition("node 0 must run the root task");
  }
  for (size_t i = 0; i < tree.runs.size(); ++i) {
    Status s = CheckLocalRun(system, db, tree, static_cast<int>(i));
    if (!s.ok()) {
      return Status::FailedPrecondition(
          StrCat("run ", i, " (task ", system.task(tree.runs[i].task).name(),
                 "): ", s.message()));
    }
  }
  return Status::Ok();
}

}  // namespace has
