// Explicit HLTL-FO evaluation on concrete trees of local runs, and a
// randomized bounded search for a concrete witness of a property. Used
// to cross-validate the symbolic verifier: when it reports VIOLATED on
// a safety-shaped property, the bounded search should be able to
// produce a concrete violating tree on some small database; when it
// reports HOLDS, no simulated tree may satisfy the negated property.
//
// Finite (budget-cut) local runs are evaluated with the finite-word
// LTL semantics — exact for returning/blocking runs, a test-harness
// approximation for runs cut by the step budget.
#ifndef HAS_RUNS_BOUNDED_CHECKER_H_
#define HAS_RUNS_BOUNDED_CHECKER_H_

#include "hltl/hltl.h"
#include "runs/simulator.h"

namespace has {

/// Evaluates property node `node` on local run `run_index` of the tree.
bool EvalHltlOnRun(const ArtifactSystem& system, const DatabaseInstance& db,
                   const HltlProperty& property, const RunTree& tree,
                   int node, int run_index);

/// Whether the tree satisfies the property ([node 0]_root).
bool EvalHltlOnTree(const ArtifactSystem& system, const DatabaseInstance& db,
                    const HltlProperty& property, const RunTree& tree);

/// Randomized search: simulates up to `attempts` trees (varying seeds)
/// and returns one satisfying the property, if found.
std::optional<RunTree> FindTreeSatisfying(const ArtifactSystem& system,
                                          const DatabaseInstance& db,
                                          const HltlProperty& property,
                                          int attempts,
                                          SimulatorOptions options = {});

}  // namespace has

#endif  // HAS_RUNS_BOUNDED_CHECKER_H_
