// Concrete operational semantics (Definitions 8-9): local runs of a
// task over a fixed database instance. A local run records, per step,
// the observed service, the artifact-variable valuation and the
// artifact-relation contents after the step.
#ifndef HAS_RUNS_LOCAL_RUN_H_
#define HAS_RUNS_LOCAL_RUN_H_

#include <optional>
#include <set>
#include <vector>

#include "data/instance.h"
#include "expr/eval.h"
#include "model/artifact_system.h"

namespace has {

/// Contents of an artifact relation: a set of ID tuples.
using SetContents = std::set<std::vector<Value>>;

struct RunStep {
  ServiceRef service;
  Valuation nu;         ///< valuation after the step
  SetContents set;      ///< artifact relation after the step
  /// For opening steps: index of the child's local run in the tree.
  int child_run = -1;
};

struct LocalRun {
  TaskId task = kNoTask;
  Valuation input;              ///< ν_in over x̄_in positions (full width)
  std::vector<RunStep> steps;   ///< step 0 is the opening service
  bool returning = false;       ///< ends with σ^c_T
  Valuation output;             ///< final valuation if returning
};

/// The initial valuation of a task at opening: inputs from `input`,
/// other ID variables null, numeric variables 0.
Valuation OpeningValuation(const Task& task, const Valuation& input);

/// Checks a single local transition I --σ--> I' (Definition 8) for an
/// internal service. Returns an explanatory error if invalid.
Status CheckInternalTransition(const DatabaseInstance& db, const Task& task,
                               const InternalService& svc,
                               const Valuation& nu_before,
                               const SetContents& set_before,
                               const Valuation& nu_after,
                               const SetContents& set_after);

}  // namespace has

#endif  // HAS_RUNS_LOCAL_RUN_H_
