// Concrete operational semantics (Definitions 8-9): local runs of a
// task over a fixed database instance. A local run records, per step,
// the observed service, the artifact-variable valuation and the
// contents of every artifact relation S_T,1 … S_T,k after the step.
#ifndef HAS_RUNS_LOCAL_RUN_H_
#define HAS_RUNS_LOCAL_RUN_H_

#include <optional>
#include <set>
#include <vector>

#include "data/instance.h"
#include "expr/eval.h"
#include "model/artifact_system.h"

namespace has {

/// Contents of one artifact relation: a set of ID tuples.
using SetContents = std::set<std::vector<Value>>;
/// Contents of every artifact relation of a task, indexed by relation.
/// Shorter-than-k vectors are treated as padded with empty relations
/// (so `{}` denotes "all relations empty" regardless of k).
using TaskSets = std::vector<SetContents>;

struct RunStep {
  ServiceRef service;
  Valuation nu;         ///< valuation after the step
  TaskSets sets;        ///< artifact relations after the step
  /// For opening steps: index of the child's local run in the tree.
  int child_run = -1;
};

struct LocalRun {
  TaskId task = kNoTask;
  Valuation input;              ///< ν_in over x̄_in positions (full width)
  std::vector<RunStep> steps;   ///< step 0 is the opening service
  bool returning = false;       ///< ends with σ^c_T
  Valuation output;             ///< final valuation if returning
};

/// The initial valuation of a task at opening: inputs from `input`,
/// other ID variables null, numeric variables 0.
Valuation OpeningValuation(const Task& task, const Valuation& input);

/// The tuple s̄_T,rel read off a valuation.
std::vector<Value> SetTupleOf(const Task& task, int rel,
                              const Valuation& nu);

/// One relation of a TaskSets, tolerating short vectors (absent
/// relations are empty).
const SetContents& RelationContents(const TaskSets& sets, int rel);

/// Checks a single local transition I --σ--> I' (Definition 8) for an
/// internal service, applying the per-relation insert/retrieve
/// semantics of δ to every declared artifact relation. Returns an
/// explanatory error if invalid.
Status CheckInternalTransition(const DatabaseInstance& db, const Task& task,
                               const InternalService& svc,
                               const Valuation& nu_before,
                               const TaskSets& sets_before,
                               const Valuation& nu_after,
                               const TaskSets& sets_after);

}  // namespace has

#endif  // HAS_RUNS_LOCAL_RUN_H_
