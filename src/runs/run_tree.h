// Trees of local runs (Definition 10): nodes are local runs, edges link
// a parent's opening step to the child's run, with the input/output
// variable-passing conditions checked.
#ifndef HAS_RUNS_RUN_TREE_H_
#define HAS_RUNS_RUN_TREE_H_

#include <vector>

#include "runs/local_run.h"

namespace has {

struct RunTree {
  /// Node 0 is the root local run.
  std::vector<LocalRun> runs;

  int AddRun(LocalRun run) {
    runs.push_back(std::move(run));
    return static_cast<int>(runs.size() - 1);
  }
};

/// Validates the whole tree against the system and database: every
/// local transition, the segment discipline (each child opened at most
/// once per segment and closed before the next internal service), and
/// the input/output passing of Definition 10.
Status CheckRunTree(const ArtifactSystem& system, const DatabaseInstance& db,
                    const RunTree& tree);

}  // namespace has

#endif  // HAS_RUNS_RUN_TREE_H_
