// Random simulation of trees of local runs over a concrete database
// (Appendix B.1 semantics). Children are simulated synchronously at
// their opening step — legitimate because trees of local runs factor
// out the interleavings. Used by property tests: every simulated tree
// must pass CheckRunTree, and its observable behaviour must be
// representable by the symbolic verifier.
#ifndef HAS_RUNS_SIMULATOR_H_
#define HAS_RUNS_SIMULATOR_H_

#include <random>

#include "runs/run_tree.h"

namespace has {

struct SimulatorOptions {
  uint64_t seed = 7;
  /// Per-task step budget (services applied).
  int max_steps_per_run = 12;
  /// Rejection-sampling attempts for post-condition valuations.
  int valuation_attempts = 200;
  /// Extra numeric constants to draw from (condition constants are
  /// added automatically).
  std::vector<double> numeric_pool = {0, 1, 2, 3, 5, 8};
};

/// Simulates one tree of local runs; returns nullopt when the root task
/// cannot take a single step (e.g. unsatisfiable Π on this database).
std::optional<RunTree> SimulateTree(const ArtifactSystem& system,
                                    const DatabaseInstance& db,
                                    const SimulatorOptions& options);

}  // namespace has

#endif  // HAS_RUNS_SIMULATOR_H_
