#include "runs/bounded_checker.h"

#include <unordered_map>
#include <utility>

#include "common/hashing.h"
#include "common/status.h"

namespace has {

namespace {

/// Verdict cache for one tree: (property node, run index) → result.
/// Child formulas re-evaluate the same (node, run) pair once per
/// opening step that references it; both components are already dense
/// integer ids, so the memo is a flat hash table.
using RunEvalMemo = std::unordered_map<std::pair<int, int>, bool,
                                       PairHash<int, int>>;

bool EvalHltlOnRunMemo(const ArtifactSystem& system,
                       const DatabaseInstance& db,
                       const HltlProperty& property, const RunTree& tree,
                       int node, int run_index, RunEvalMemo* memo) {
  auto it = memo->find({node, run_index});
  if (it != memo->end()) return it->second;
  const HltlNode& n = property.node(node);
  const LocalRun& run = tree.runs[run_index];
  HAS_CHECK_MSG(n.task == run.task, "node/run task mismatch");
  // Build the word of proposition assignments.
  std::vector<std::vector<bool>> word;
  word.reserve(run.steps.size());
  for (size_t s = 0; s < run.steps.size(); ++s) {
    const RunStep& step = run.steps[s];
    std::vector<bool> letter(n.props.size(), false);
    for (size_t p = 0; p < n.props.size(); ++p) {
      const HltlProp& prop = n.props[p];
      switch (prop.kind) {
        case HltlProp::Kind::kCondition:
          letter[p] = EvalCondition(*prop.condition, db, step.nu);
          break;
        case HltlProp::Kind::kService:
          letter[p] = prop.service == step.service;
          break;
        case HltlProp::Kind::kChildFormula: {
          TaskId child_task = property.node(prop.child_node).task;
          if (step.service == ServiceRef::Opening(child_task) &&
              step.child_run >= 0) {
            letter[p] = EvalHltlOnRunMemo(system, db, property, tree,
                                          prop.child_node, step.child_run,
                                          memo);
          }
          break;
        }
      }
    }
    word.push_back(std::move(letter));
  }
  bool result = n.skeleton->EvalFinite(word);
  memo->emplace(std::make_pair(node, run_index), result);
  return result;
}

}  // namespace

bool EvalHltlOnRun(const ArtifactSystem& system, const DatabaseInstance& db,
                   const HltlProperty& property, const RunTree& tree,
                   int node, int run_index) {
  RunEvalMemo memo;
  return EvalHltlOnRunMemo(system, db, property, tree, node, run_index,
                           &memo);
}

bool EvalHltlOnTree(const ArtifactSystem& system, const DatabaseInstance& db,
                    const HltlProperty& property, const RunTree& tree) {
  return EvalHltlOnRun(system, db, property, tree, property.root_node(), 0);
}

std::optional<RunTree> FindTreeSatisfying(const ArtifactSystem& system,
                                          const DatabaseInstance& db,
                                          const HltlProperty& property,
                                          int attempts,
                                          SimulatorOptions options) {
  for (int i = 0; i < attempts; ++i) {
    options.seed = options.seed * 6364136223846793005ULL + 1442695040888963407ULL;
    std::optional<RunTree> tree = SimulateTree(system, db, options);
    if (!tree.has_value()) continue;
    if (EvalHltlOnTree(system, db, property, *tree)) return tree;
  }
  return std::nullopt;
}

}  // namespace has
