#include "runs/local_run.h"

#include "common/strings.h"

namespace has {

Valuation OpeningValuation(const Task& task, const Valuation& input) {
  Valuation nu(task.vars().size());
  for (int v = 0; v < task.vars().size(); ++v) {
    nu[v] = task.vars().var(v).sort == VarSort::kId ? Value::Null()
                                                    : Value::Real(0);
  }
  for (const auto& [own, parent] : task.fin()) {
    (void)parent;
    if (own < static_cast<int>(input.size())) nu[own] = input[own];
  }
  return nu;
}

Status CheckInternalTransition(const DatabaseInstance& db, const Task& task,
                               const InternalService& svc,
                               const Valuation& nu_before,
                               const SetContents& set_before,
                               const Valuation& nu_after,
                               const SetContents& set_after) {
  if (!EvalCondition(*svc.pre, db, nu_before)) {
    return Status::FailedPrecondition(
        StrCat("pre-condition of ", svc.name, " does not hold"));
  }
  if (!EvalCondition(*svc.post, db, nu_after)) {
    return Status::FailedPrecondition(
        StrCat("post-condition of ", svc.name, " does not hold"));
  }
  for (const auto& [own, parent] : task.fin()) {
    (void)parent;
    if (nu_before[own] != nu_after[own]) {
      return Status::FailedPrecondition(
          StrCat("input variable ", task.vars().var(own).name,
                 " changed across an internal transition"));
    }
  }
  // Set-update semantics (Definition 8).
  auto tuple_of = [&](const Valuation& nu) {
    std::vector<Value> t;
    for (int v : task.set_vars()) t.push_back(nu[v]);
    return t;
  };
  SetContents expected = set_before;
  if (svc.inserts && svc.retrieves) {
    std::vector<Value> inserted = tuple_of(nu_before);
    std::vector<Value> retrieved = tuple_of(nu_after);
    expected.insert(inserted);
    if (expected.count(retrieved) == 0) {
      return Status::FailedPrecondition(
          "retrieved tuple not present in S ∪ {inserted}");
    }
    expected.erase(retrieved);
  } else if (svc.inserts) {
    expected.insert(tuple_of(nu_before));
  } else if (svc.retrieves) {
    std::vector<Value> retrieved = tuple_of(nu_after);
    if (expected.count(retrieved) == 0) {
      return Status::FailedPrecondition("retrieved tuple not present in S");
    }
    expected.erase(retrieved);
  }
  if (expected != set_after) {
    return Status::FailedPrecondition("artifact relation mismatch");
  }
  return Status::Ok();
}

}  // namespace has
