#include "runs/local_run.h"

#include "common/strings.h"

namespace has {

Valuation OpeningValuation(const Task& task, const Valuation& input) {
  Valuation nu(task.vars().size());
  for (int v = 0; v < task.vars().size(); ++v) {
    nu[v] = task.vars().var(v).sort == VarSort::kId ? Value::Null()
                                                    : Value::Real(0);
  }
  for (const auto& [own, parent] : task.fin()) {
    (void)parent;
    if (own < static_cast<int>(input.size())) nu[own] = input[own];
  }
  return nu;
}

std::vector<Value> SetTupleOf(const Task& task, int rel,
                              const Valuation& nu) {
  std::vector<Value> t;
  for (int v : task.set_relations()[rel].vars) t.push_back(nu[v]);
  return t;
}

const SetContents& RelationContents(const TaskSets& sets, int rel) {
  static const SetContents kEmpty;
  return rel >= 0 && rel < static_cast<int>(sets.size()) ? sets[rel]
                                                         : kEmpty;
}

Status CheckInternalTransition(const DatabaseInstance& db, const Task& task,
                               const InternalService& svc,
                               const Valuation& nu_before,
                               const TaskSets& sets_before,
                               const Valuation& nu_after,
                               const TaskSets& sets_after) {
  if (!EvalCondition(*svc.pre, db, nu_before)) {
    return Status::FailedPrecondition(
        StrCat("pre-condition of ", svc.name, " does not hold"));
  }
  if (!EvalCondition(*svc.post, db, nu_after)) {
    return Status::FailedPrecondition(
        StrCat("post-condition of ", svc.name, " does not hold"));
  }
  for (const auto& [own, parent] : task.fin()) {
    (void)parent;
    if (nu_before[own] != nu_after[own]) {
      return Status::FailedPrecondition(
          StrCat("input variable ", task.vars().var(own).name,
                 " changed across an internal transition"));
    }
  }
  // Per-relation set-update semantics (Definition 8, applied to each
  // S_T,rel independently): the inserted tuple is s̄_T,rel under the
  // PRE-valuation, the retrieved tuple is s̄_T,rel under the POST-
  // valuation and must come from S_rel ∪ {inserted}.
  for (int rel = 0; rel < task.num_set_relations(); ++rel) {
    const std::string& rel_name = task.set_relations()[rel].name;
    SetContents expected = RelationContents(sets_before, rel);
    const bool inserts = svc.InsertsInto(rel);
    const bool retrieves = svc.RetrievesFrom(rel);
    if (inserts) expected.insert(SetTupleOf(task, rel, nu_before));
    if (retrieves) {
      std::vector<Value> retrieved = SetTupleOf(task, rel, nu_after);
      if (expected.count(retrieved) == 0) {
        return Status::FailedPrecondition(
            StrCat("retrieved tuple not present in ", rel_name,
                   inserts ? " ∪ {inserted}" : ""));
      }
      expected.erase(retrieved);
    }
    if (expected != RelationContents(sets_after, rel)) {
      return Status::FailedPrecondition(
          StrCat("artifact relation ", rel_name, " mismatch"));
    }
  }
  for (size_t i = static_cast<size_t>(task.num_set_relations());
       i < sets_after.size(); ++i) {
    if (!sets_after[i].empty()) {
      return Status::FailedPrecondition(
          "artifact-relation contents beyond the task's declared family");
    }
  }
  return Status::Ok();
}

}  // namespace has
