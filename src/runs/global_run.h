// Global runs (Appendix B.1): legal interleavings of a tree of local
// runs. A linearization enumerates tree events respecting the local
// order of each run and the synchronization of opening/closing steps
// with the child run's first/last configurations. Used to validate the
// interleaving-invariance story of HLTL-FO (Section 3) in tests.
#ifndef HAS_RUNS_GLOBAL_RUN_H_
#define HAS_RUNS_GLOBAL_RUN_H_

#include <random>

#include "runs/run_tree.h"

namespace has {

/// One event of a global run: step `step` of local run `run`.
struct GlobalEvent {
  int run = -1;
  int step = -1;
};

/// A random legal linearization of the tree's events (uniform over the
/// antichain choices). Every opening event is immediately preceded by
/// nothing from the child and the child's events fall between the
/// parent's opening and closing events.
std::vector<GlobalEvent> RandomLinearization(const RunTree& tree,
                                             uint64_t seed);

/// Checks that a sequence of events is a legal linearization.
Status CheckLinearization(const RunTree& tree,
                          const std::vector<GlobalEvent>& events);

}  // namespace has

#endif  // HAS_RUNS_GLOBAL_RUN_H_
