#include "runs/simulator.h"

#include <algorithm>
#include <unordered_set>

#include "common/status.h"

namespace has {

namespace {

class Simulator {
 public:
  Simulator(const ArtifactSystem& system, const DatabaseInstance& db,
            const SimulatorOptions& options)
      : system_(system), db_(db), options_(options), rng_(options.seed) {
    // Candidate values: database IDs per relation, null, and a numeric
    // pool extended with every constant appearing in conditions. Both
    // pools are hash-deduplicated so repeated constants across services
    // neither bloat the pools nor skew the sampling.
    for (RelationId r = 0; r < db.schema().num_relations(); ++r) {
      for (const Tuple& t : db.tuples(r)) AddId(t[0]);
    }
    for (double x : options.numeric_pool) {
      AddNum(Value::Real(x));
    }
    for (TaskId t = 0; t < system.num_tasks(); ++t) {
      CollectConstants(system.task(t));
    }
  }

  /// Simulates the root; returns false if no opening step is possible.
  bool Run(RunTree* tree) {
    LocalRun root;
    root.task = system_.root();
    const Task& task = system_.task(system_.root());
    // Root inputs: sampled until Π holds.
    for (int attempt = 0; attempt < options_.valuation_attempts; ++attempt) {
      Valuation input(task.vars().size(), Value::Null());
      for (const auto& [own, parent] : task.fin()) {
        (void)parent;
        input[own] = SampleValue(task.vars().var(own).sort);
      }
      Valuation nu0 = OpeningValuation(task, input);
      if (EvalCondition(*system_.global_pre(), db_, nu0)) {
        tree->runs.emplace_back();  // reserve node 0
        SimulateRun(system_.root(), input, tree, 0);
        return true;
      }
    }
    return false;
  }

 private:
  void AddId(const Value& v) {
    if (seen_ids_.insert(v).second) id_pool_.push_back(v);
  }
  void AddNum(const Value& v) {
    if (seen_nums_.insert(v).second) num_pool_.push_back(v);
  }

  void CollectConstants(const Task& task) {
    std::vector<const Condition*> atoms;
    for (const InternalService& s : task.services()) {
      s.pre->CollectAtoms(&atoms);
      s.post->CollectAtoms(&atoms);
    }
    task.opening_pre()->CollectAtoms(&atoms);
    task.closing_pre()->CollectAtoms(&atoms);
    for (const Condition* a : atoms) {
      if (a->kind() == CondKind::kEq) {
        for (const Term* t : {&a->lhs(), &a->rhs()}) {
          if (t->kind == Term::Kind::kConst) {
            AddNum(Value::Real(t->value.ToDouble()));
          }
        }
      } else if (a->kind() == CondKind::kArith) {
        AddNum(Value::Real((Rational(0) - a->constraint().expr.constant())
                               .ToDouble()));
      }
    }
  }

  Value SampleValue(VarSort sort) {
    if (sort == VarSort::kId) {
      std::uniform_int_distribution<size_t> d(0, id_pool_.size());
      size_t i = d(rng_);
      return i == id_pool_.size() ? Value::Null() : id_pool_[i];
    }
    std::uniform_int_distribution<size_t> d(0, num_pool_.size() - 1);
    return num_pool_[d(rng_)];
  }

  /// Simulates one local run; fills tree->runs[node].
  void SimulateRun(TaskId task_id, const Valuation& input, RunTree* tree,
                   int node) {
    const Task& task = system_.task(task_id);
    LocalRun run;
    run.task = task_id;
    run.input = input;
    Valuation nu = OpeningValuation(task, input);
    TaskSets sets(static_cast<size_t>(task.num_set_relations()));
    run.steps.push_back(RunStep{ServiceRef::Opening(task_id), nu, sets, -1});

    std::set<TaskId> opened_in_segment;
    for (int step = 0; step < options_.max_steps_per_run; ++step) {
      // Candidate moves: internal services, child openings, closing.
      struct Move {
        enum class Kind { kInternal, kOpen, kClose } kind;
        int index = -1;       // internal service index or child position
      };
      std::vector<Move> moves;
      for (size_t i = 0; i < task.services().size(); ++i) {
        if (EvalCondition(*task.service(static_cast<int>(i)).pre, db_, nu)) {
          moves.push_back(
              Move{Move::Kind::kInternal, static_cast<int>(i)});
        }
      }
      for (size_t c = 0; c < task.children().size(); ++c) {
        TaskId child = task.children()[c];
        if (opened_in_segment.count(child) > 0) continue;
        if (EvalCondition(*system_.task(child).opening_pre(), db_, nu)) {
          moves.push_back(Move{Move::Kind::kOpen, static_cast<int>(c)});
        }
      }
      if (!task.is_root() && EvalCondition(*task.closing_pre(), db_, nu)) {
        moves.push_back(Move{Move::Kind::kClose, -1});
      }
      if (moves.empty()) break;
      std::uniform_int_distribution<size_t> pick(0, moves.size() - 1);
      const Move move = moves[pick(rng_)];
      switch (move.kind) {
        case Move::Kind::kInternal: {
          const InternalService& svc = task.service(move.index);
          std::optional<std::pair<Valuation, TaskSets>> next =
              SampleInternal(task, svc, nu, sets);
          if (!next.has_value()) continue;  // try another move next loop
          nu = next->first;
          sets = next->second;
          run.steps.push_back(RunStep{
              ServiceRef::Internal(task_id, move.index), nu, sets, -1});
          opened_in_segment.clear();
          break;
        }
        case Move::Kind::kOpen: {
          TaskId child_id = task.children()[move.index];
          const Task& child = system_.task(child_id);
          // Pass inputs, simulate the child synchronously.
          Valuation child_input(child.vars().size(), Value::Null());
          for (const auto& [own, parent] : child.fin()) {
            child_input[own] = nu[parent];
          }
          int child_node = tree->AddRun(LocalRun{});
          SimulateRun(child_id, child_input, tree, child_node);
          run.steps.push_back(RunStep{ServiceRef::Opening(child_id), nu,
                                      sets, child_node});
          opened_in_segment.insert(child_id);
          const LocalRun& child_run = tree->runs[child_node];
          if (child_run.returning) {
            Valuation next = nu;
            for (const auto& [parent_var, own_var] : child.fout()) {
              bool is_id =
                  task.vars().var(parent_var).sort == VarSort::kId;
              if (!is_id || nu[parent_var].is_null()) {
                next[parent_var] = child_run.output[own_var];
              }
            }
            nu = next;
            run.steps.push_back(
                RunStep{ServiceRef::Closing(child_id), nu, sets, -1});
          } else {
            // Child never returns: this run blocks here.
            run.returning = false;
            tree->runs[node] = std::move(run);
            return;
          }
          break;
        }
        case Move::Kind::kClose: {
          run.steps.push_back(
              RunStep{ServiceRef::Closing(task_id), nu, sets, -1});
          run.returning = true;
          run.output = nu;
          tree->runs[node] = std::move(run);
          return;
        }
      }
    }
    run.returning = false;
    tree->runs[node] = std::move(run);
  }

  /// Rejection-samples a successor valuation for an internal service,
  /// applying the per-relation insert/retrieve semantics of δ. Retrieved
  /// tuples are chosen relation by relation in ascending index order;
  /// when relations share variables a later choice can invalidate an
  /// earlier one, so membership is re-checked before accepting.
  std::optional<std::pair<Valuation, TaskSets>> SampleInternal(
      const Task& task, const InternalService& svc, const Valuation& nu,
      const TaskSets& sets) {
    std::set<int> inputs;
    for (const auto& [own, parent] : task.fin()) {
      (void)parent;
      inputs.insert(own);
    }
    for (int attempt = 0; attempt < options_.valuation_attempts; ++attempt) {
      Valuation next = nu;
      for (int v = 0; v < task.vars().size(); ++v) {
        if (inputs.count(v) > 0) continue;
        next[v] = SampleValue(task.vars().var(v).sort);
      }
      // Pick each retrieved tuple (ascending relation index) and write
      // it into the candidate valuation first ...
      for (int rel = 0; rel < task.num_set_relations(); ++rel) {
        if (!svc.RetrievesFrom(rel)) continue;
        // Choose the retrieved tuple: a member of S_rel (∪ inserted).
        SetContents candidates = RelationContents(sets, rel);
        if (svc.InsertsInto(rel)) {
          candidates.insert(SetTupleOf(task, rel, nu));
        }
        if (candidates.empty()) return std::nullopt;
        std::uniform_int_distribution<size_t> d(0, candidates.size() - 1);
        auto it = candidates.begin();
        std::advance(it, d(rng_));
        const std::vector<Value>& chosen = *it;
        const std::vector<int>& tuple = task.set_relations()[rel].vars;
        for (size_t k = 0; k < tuple.size(); ++k) {
          next[tuple[k]] = chosen[k];
        }
      }
      // ... then derive the successor sets from the FINAL valuation,
      // mirroring CheckInternalTransition: when relations share
      // variables a later choice can overwrite an earlier one, in which
      // case the earlier relation's retrieved tuple (re-read off the
      // final valuation) may be absent — reject the attempt.
      TaskSets next_sets = sets;
      next_sets.resize(static_cast<size_t>(task.num_set_relations()));
      bool ok = true;
      for (int rel = 0; rel < task.num_set_relations() && ok; ++rel) {
        if (svc.InsertsInto(rel)) {
          next_sets[rel].insert(SetTupleOf(task, rel, nu));
        }
        if (svc.RetrievesFrom(rel)) {
          std::vector<Value> retrieved = SetTupleOf(task, rel, next);
          if (next_sets[rel].count(retrieved) == 0) {
            ok = false;
            break;
          }
          next_sets[rel].erase(retrieved);
        }
      }
      if (ok && EvalCondition(*svc.post, db_, next)) {
        return std::make_pair(next, next_sets);
      }
    }
    return std::nullopt;
  }

  const ArtifactSystem& system_;
  const DatabaseInstance& db_;
  SimulatorOptions options_;
  std::mt19937_64 rng_;
  std::vector<Value> id_pool_;
  std::vector<Value> num_pool_;
  std::unordered_set<Value, ValueHash> seen_ids_;
  std::unordered_set<Value, ValueHash> seen_nums_;
};

}  // namespace

std::optional<RunTree> SimulateTree(const ArtifactSystem& system,
                                    const DatabaseInstance& db,
                                    const SimulatorOptions& options) {
  Simulator sim(system, db, options);
  RunTree tree;
  if (!sim.Run(&tree)) return std::nullopt;
  return tree;
}

}  // namespace has
