#include "runs/global_run.h"

#include <map>

#include "common/status.h"
#include "common/strings.h"

namespace has {

namespace {

/// Dependencies: event e must come after deps[e] events. We build the
/// partial order of Appendix B.1 as explicit edges.
struct EventGraph {
  std::vector<GlobalEvent> events;
  std::map<std::pair<int, int>, int> index;
  std::vector<std::vector<int>> preds;

  int IdOf(int run, int step) const { return index.at({run, step}); }
};

EventGraph BuildGraph(const RunTree& tree) {
  EventGraph g;
  for (size_t r = 0; r < tree.runs.size(); ++r) {
    for (size_t s = 0; s < tree.runs[r].steps.size(); ++s) {
      g.index[{static_cast<int>(r), static_cast<int>(s)}] =
          static_cast<int>(g.events.size());
      g.events.push_back(GlobalEvent{static_cast<int>(r),
                                     static_cast<int>(s)});
    }
  }
  g.preds.resize(g.events.size());
  for (size_t r = 0; r < tree.runs.size(); ++r) {
    const LocalRun& run = tree.runs[r];
    for (size_t s = 1; s < run.steps.size(); ++s) {
      // Local order.
      g.preds[g.IdOf(static_cast<int>(r), static_cast<int>(s))].push_back(
          g.IdOf(static_cast<int>(r), static_cast<int>(s) - 1));
    }
    for (size_t s = 0; s < run.steps.size(); ++s) {
      const RunStep& step = run.steps[s];
      if (step.service.kind == ServiceRef::Kind::kOpening &&
          step.child_run >= 0) {
        // The child's first event coincides with (follows) the opening;
        // the parent's matching closing follows the child's last event.
        int child = step.child_run;
        g.preds[g.IdOf(child, 0)].push_back(
            g.IdOf(static_cast<int>(r), static_cast<int>(s)));
        const LocalRun& child_run = tree.runs[child];
        if (child_run.returning) {
          // Find the parent's closing step for this child after s.
          for (size_t s2 = s + 1; s2 < run.steps.size(); ++s2) {
            if (run.steps[s2].service ==
                ServiceRef::Closing(child_run.task)) {
              g.preds[g.IdOf(static_cast<int>(r), static_cast<int>(s2))]
                  .push_back(g.IdOf(
                      child, static_cast<int>(child_run.steps.size()) - 1));
              break;
            }
          }
        }
      }
    }
  }
  return g;
}

}  // namespace

std::vector<GlobalEvent> RandomLinearization(const RunTree& tree,
                                             uint64_t seed) {
  EventGraph g = BuildGraph(tree);
  std::vector<int> missing(g.events.size(), 0);
  std::vector<std::vector<int>> succs(g.events.size());
  for (size_t e = 0; e < g.events.size(); ++e) {
    missing[e] = static_cast<int>(g.preds[e].size());
    for (int p : g.preds[e]) succs[p].push_back(static_cast<int>(e));
  }
  std::vector<int> ready;
  for (size_t e = 0; e < g.events.size(); ++e) {
    if (missing[e] == 0) ready.push_back(static_cast<int>(e));
  }
  std::mt19937_64 rng(seed);
  std::vector<GlobalEvent> out;
  while (!ready.empty()) {
    std::uniform_int_distribution<size_t> d(0, ready.size() - 1);
    size_t i = d(rng);
    int e = ready[i];
    ready[i] = ready.back();
    ready.pop_back();
    out.push_back(g.events[e]);
    for (int s : succs[e]) {
      if (--missing[s] == 0) ready.push_back(s);
    }
  }
  return out;
}

Status CheckLinearization(const RunTree& tree,
                          const std::vector<GlobalEvent>& events) {
  EventGraph g = BuildGraph(tree);
  if (events.size() != g.events.size()) {
    return Status::FailedPrecondition(
        StrCat("linearization has ", events.size(), " events, tree has ",
               g.events.size()));
  }
  std::vector<int> position(g.events.size(), -1);
  for (size_t i = 0; i < events.size(); ++i) {
    auto it = g.index.find({events[i].run, events[i].step});
    if (it == g.index.end()) {
      return Status::FailedPrecondition("unknown event");
    }
    if (position[it->second] != -1) {
      return Status::FailedPrecondition("duplicate event");
    }
    position[it->second] = static_cast<int>(i);
  }
  for (size_t e = 0; e < g.events.size(); ++e) {
    for (int p : g.preds[e]) {
      if (position[p] > position[e]) {
        return Status::FailedPrecondition("order violation");
      }
    }
  }
  return Status::Ok();
}

}  // namespace has
