#include "expr/eval.h"

#include "common/status.h"

namespace has {

namespace {

Value TermValue(const Term& t, const Valuation& nu) {
  switch (t.kind) {
    case Term::Kind::kVar:
      HAS_CHECK_MSG(t.var >= 0 && t.var < static_cast<int>(nu.size()),
                    "term variable out of valuation range");
      return nu[t.var];
    case Term::Kind::kNull:
      return Value::Null();
    case Term::Kind::kConst:
      return Value::Real(t.value.ToDouble());
  }
  return Value::Null();
}

}  // namespace

bool EvalCondition(const Condition& cond, const DatabaseInstance& db,
                   const Valuation& nu) {
  switch (cond.kind()) {
    case CondKind::kTrue:
      return true;
    case CondKind::kFalse:
      return false;
    case CondKind::kEq:
      return TermValue(cond.lhs(), nu) == TermValue(cond.rhs(), nu);
    case CondKind::kRel: {
      // R(x, a1, ..., ak): false if any argument is null; otherwise the
      // tuple identified by the first argument must exist and match the
      // remaining arguments attribute-wise.
      const std::vector<int>& args = cond.args();
      for (int a : args) {
        if (nu[a].is_null()) return false;
      }
      const Value& id = nu[args[0]];
      const Tuple* t = db.Find(cond.relation(), id);
      if (t == nullptr) return false;
      for (size_t i = 1; i < args.size(); ++i) {
        if ((*t)[i] != nu[args[i]]) return false;
      }
      return true;
    }
    case CondKind::kArith: {
      const LinearConstraint& c = cond.constraint();
      Rational value = c.expr.Eval([&nu](ArithVar v) {
        HAS_CHECK_MSG(v >= 0 && v < static_cast<int>(nu.size()),
                      "arith variable out of valuation range");
        HAS_CHECK_MSG(nu[v].is_real(), "arith variable bound to non-real");
        return Rational::FromDouble(nu[v].real());
      });
      switch (c.op) {
        case Relop::kLt:
          return value.sign() < 0;
        case Relop::kLe:
          return value.sign() <= 0;
        case Relop::kEq:
          return value.sign() == 0;
      }
      return false;
    }
    case CondKind::kNot:
      return !EvalCondition(*cond.child(0), db, nu);
    case CondKind::kAnd:
      return EvalCondition(*cond.child(0), db, nu) &&
             EvalCondition(*cond.child(1), db, nu);
    case CondKind::kOr:
      return EvalCondition(*cond.child(0), db, nu) ||
             EvalCondition(*cond.child(1), db, nu);
  }
  return false;
}

}  // namespace has
