// Concrete evaluation of conditions against a database instance and a
// valuation of artifact variables (the D ∪ C |= α(ν) judgment of
// Section 2). Relation atoms with any null argument are false, per the
// paper's semantics.
#ifndef HAS_EXPR_EVAL_H_
#define HAS_EXPR_EVAL_H_

#include <vector>

#include "data/instance.h"
#include "expr/condition.h"

namespace has {

/// A valuation ν: one Value per variable of the scope.
using Valuation = std::vector<Value>;

/// Evaluates `cond` under valuation `nu` over database `db`.
/// Numeric variables must hold real values (never null); the caller is
/// responsible for the initialization ν(x)=0 for numeric variables.
bool EvalCondition(const Condition& cond, const DatabaseInstance& db,
                   const Valuation& nu);

}  // namespace has

#endif  // HAS_EXPR_EVAL_H_
