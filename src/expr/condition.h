// Quantifier-free FO conditions over DB ∪ C ∪ {=} (Section 2). Atoms:
//   - equalities between artifact variables, null, and numeric constants;
//   - relation atoms R(x, a1, ..., ak) whose arguments follow the
//     relation's attribute order (ID variable first);
//   - arithmetic atoms: linear constraints over numeric variables.
// Conditions are immutable trees shared by shared_ptr; services and
// properties hold them by CondPtr.
#ifndef HAS_EXPR_CONDITION_H_
#define HAS_EXPR_CONDITION_H_

#include <memory>
#include <string>
#include <vector>

#include "arith/linear.h"
#include "common/status.h"
#include "schema/schema.h"

namespace has {

enum class VarSort : uint8_t { kId, kNumeric };

struct VarInfo {
  std::string name;
  VarSort sort = VarSort::kId;
};

/// A task's artifact-variable declarations; conditions refer to
/// variables by index into a VarScope.
class VarScope {
 public:
  int AddVar(std::string name, VarSort sort);
  int size() const { return static_cast<int>(vars_.size()); }
  const VarInfo& var(int v) const { return vars_[v]; }
  /// Index by name, or -1.
  int Find(const std::string& name) const;
  std::vector<int> IdVars() const;
  std::vector<int> NumericVars() const;

 private:
  std::vector<VarInfo> vars_;
};

/// A term of an equality atom.
struct Term {
  enum class Kind : uint8_t { kVar, kNull, kConst };
  Kind kind = Kind::kNull;
  int var = -1;        // for kVar
  Rational value;      // for kConst

  static Term Var(int v) { return Term{Kind::kVar, v, Rational(0)}; }
  static Term Null() { return Term{Kind::kNull, -1, Rational(0)}; }
  static Term Const(Rational r) { return Term{Kind::kConst, -1, std::move(r)}; }

  bool operator==(const Term& o) const {
    return kind == o.kind && var == o.var && value == o.value;
  }
};

enum class CondKind : uint8_t {
  kTrue,
  kFalse,
  kEq,     ///< term = term
  kRel,    ///< R(args...) with args indexing variables per attribute
  kArith,  ///< linear constraint over numeric variables
  kNot,
  kAnd,
  kOr,
};

class Condition;
using CondPtr = std::shared_ptr<const Condition>;

class Condition {
 public:
  static CondPtr True();
  static CondPtr False();
  static CondPtr Eq(Term lhs, Term rhs);
  /// Convenience: var == var.
  static CondPtr VarEq(int a, int b) { return Eq(Term::Var(a), Term::Var(b)); }
  /// Convenience: var == null.
  static CondPtr IsNull(int v) { return Eq(Term::Var(v), Term::Null()); }
  static CondPtr Rel(RelationId relation, std::vector<int> args);
  static CondPtr Arith(LinearConstraint constraint);
  static CondPtr Not(CondPtr c);
  static CondPtr And(CondPtr a, CondPtr b);
  static CondPtr Or(CondPtr a, CondPtr b);
  static CondPtr AndAll(const std::vector<CondPtr>& cs);
  static CondPtr OrAll(const std::vector<CondPtr>& cs);

  CondKind kind() const { return kind_; }

  // Accessors (valid for the matching kind only).
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }
  RelationId relation() const { return relation_; }
  const std::vector<int>& args() const { return args_; }
  const LinearConstraint& constraint() const { return constraint_; }
  const CondPtr& child(int i) const { return children_[i]; }
  int num_children() const { return static_cast<int>(children_.size()); }

  bool IsAtom() const {
    return kind_ == CondKind::kEq || kind_ == CondKind::kRel ||
           kind_ == CondKind::kArith;
  }

  /// Structural equality (used to deduplicate decided atoms).
  bool Equals(const Condition& o) const;
  size_t Hash() const;

  /// All distinct atoms of the condition, in first-occurrence order.
  void CollectAtoms(std::vector<const Condition*>* out) const;

  /// All variables mentioned.
  void CollectVars(std::vector<int>* out) const;

  /// Rebuilds the condition with variables renamed by `map` (identity
  /// where the function returns the same index).
  CondPtr MapVars(const std::vector<int>& map) const;

  /// Checks sorts and arities against scope/schema.
  Status CheckWellFormed(const VarScope& scope,
                         const DatabaseSchema& schema) const;

  /// True iff the condition contains an arithmetic atom that is more
  /// than a constant-equality (drives the with/without-arithmetic
  /// verifier mode).
  bool UsesArithmetic() const;

  std::string ToString(const VarScope& scope,
                       const DatabaseSchema* schema) const;

 private:
  Condition() = default;

  CondKind kind_ = CondKind::kTrue;
  Term lhs_, rhs_;
  RelationId relation_ = kNoRelation;
  std::vector<int> args_;
  LinearConstraint constraint_;
  std::vector<CondPtr> children_;
};

}  // namespace has

#endif  // HAS_EXPR_CONDITION_H_
