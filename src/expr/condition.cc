#include "expr/condition.h"

#include <set>

#include "common/hashing.h"
#include "common/strings.h"

namespace has {

int VarScope::AddVar(std::string name, VarSort sort) {
  vars_.push_back(VarInfo{std::move(name), sort});
  return static_cast<int>(vars_.size() - 1);
}

int VarScope::Find(const std::string& name) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> VarScope::IdVars() const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (vars_[i].sort == VarSort::kId) out.push_back(i);
  }
  return out;
}

std::vector<int> VarScope::NumericVars() const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (vars_[i].sort == VarSort::kNumeric) out.push_back(i);
  }
  return out;
}

CondPtr Condition::True() {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = CondKind::kTrue;
  return c;
}

CondPtr Condition::False() {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = CondKind::kFalse;
  return c;
}

CondPtr Condition::Eq(Term lhs, Term rhs) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = CondKind::kEq;
  c->lhs_ = std::move(lhs);
  c->rhs_ = std::move(rhs);
  return c;
}

CondPtr Condition::Rel(RelationId relation, std::vector<int> args) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = CondKind::kRel;
  c->relation_ = relation;
  c->args_ = std::move(args);
  return c;
}

CondPtr Condition::Arith(LinearConstraint constraint) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = CondKind::kArith;
  c->constraint_ = std::move(constraint);
  return c;
}

CondPtr Condition::Not(CondPtr inner) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = CondKind::kNot;
  c->children_.push_back(std::move(inner));
  return c;
}

CondPtr Condition::And(CondPtr a, CondPtr b) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = CondKind::kAnd;
  c->children_.push_back(std::move(a));
  c->children_.push_back(std::move(b));
  return c;
}

CondPtr Condition::Or(CondPtr a, CondPtr b) {
  auto c = std::shared_ptr<Condition>(new Condition());
  c->kind_ = CondKind::kOr;
  c->children_.push_back(std::move(a));
  c->children_.push_back(std::move(b));
  return c;
}

CondPtr Condition::AndAll(const std::vector<CondPtr>& cs) {
  if (cs.empty()) return True();
  CondPtr out = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) out = And(out, cs[i]);
  return out;
}

CondPtr Condition::OrAll(const std::vector<CondPtr>& cs) {
  if (cs.empty()) return False();
  CondPtr out = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) out = Or(out, cs[i]);
  return out;
}

bool Condition::Equals(const Condition& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case CondKind::kTrue:
    case CondKind::kFalse:
      return true;
    case CondKind::kEq:
      return lhs_ == o.lhs_ && rhs_ == o.rhs_;
    case CondKind::kRel:
      return relation_ == o.relation_ && args_ == o.args_;
    case CondKind::kArith:
      return constraint_ == o.constraint_;
    case CondKind::kNot:
    case CondKind::kAnd:
    case CondKind::kOr: {
      if (children_.size() != o.children_.size()) return false;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (!children_[i]->Equals(*o.children_[i])) return false;
      }
      return true;
    }
  }
  return false;
}

size_t Condition::Hash() const {
  size_t seed = static_cast<size_t>(kind_);
  switch (kind_) {
    case CondKind::kTrue:
    case CondKind::kFalse:
      break;
    case CondKind::kEq:
      HashMix(&seed, static_cast<int>(lhs_.kind));
      HashMix(&seed, lhs_.var);
      HashMix(&seed, lhs_.value.Hash());
      HashMix(&seed, static_cast<int>(rhs_.kind));
      HashMix(&seed, rhs_.var);
      HashMix(&seed, rhs_.value.Hash());
      break;
    case CondKind::kRel:
      HashMix(&seed, relation_);
      for (int a : args_) HashMix(&seed, a);
      break;
    case CondKind::kArith:
      HashMix(&seed, static_cast<int>(constraint_.op));
      HashMix(&seed, constraint_.expr.Hash());
      break;
    case CondKind::kNot:
    case CondKind::kAnd:
    case CondKind::kOr:
      for (const CondPtr& c : children_) HashMix(&seed, c->Hash());
      break;
  }
  return seed;
}

void Condition::CollectAtoms(std::vector<const Condition*>* out) const {
  if (IsAtom()) {
    for (const Condition* seen : *out) {
      if (seen->Equals(*this)) return;
    }
    out->push_back(this);
    return;
  }
  for (const CondPtr& c : children_) c->CollectAtoms(out);
}

void Condition::CollectVars(std::vector<int>* out) const {
  auto add = [out](int v) {
    for (int seen : *out) {
      if (seen == v) return;
    }
    out->push_back(v);
  };
  switch (kind_) {
    case CondKind::kEq:
      if (lhs_.kind == Term::Kind::kVar) add(lhs_.var);
      if (rhs_.kind == Term::Kind::kVar) add(rhs_.var);
      break;
    case CondKind::kRel:
      for (int a : args_) add(a);
      break;
    case CondKind::kArith:
      for (ArithVar v : constraint_.expr.Vars()) add(v);
      break;
    default:
      for (const CondPtr& c : children_) c->CollectVars(out);
      break;
  }
}

CondPtr Condition::MapVars(const std::vector<int>& map) const {
  auto remap = [&map](int v) { return v >= 0 && v < static_cast<int>(map.size()) ? map[v] : v; };
  switch (kind_) {
    case CondKind::kTrue:
      return True();
    case CondKind::kFalse:
      return False();
    case CondKind::kEq: {
      Term l = lhs_, r = rhs_;
      if (l.kind == Term::Kind::kVar) l.var = remap(l.var);
      if (r.kind == Term::Kind::kVar) r.var = remap(r.var);
      return Eq(std::move(l), std::move(r));
    }
    case CondKind::kRel: {
      std::vector<int> args = args_;
      for (int& a : args) a = remap(a);
      return Rel(relation_, std::move(args));
    }
    case CondKind::kArith: {
      std::map<ArithVar, ArithVar> arith_map;
      for (ArithVar v : constraint_.expr.Vars()) arith_map[v] = remap(v);
      return Arith(LinearConstraint{constraint_.expr.Rename(arith_map),
                                    constraint_.op});
    }
    case CondKind::kNot:
      return Not(children_[0]->MapVars(map));
    case CondKind::kAnd:
      return And(children_[0]->MapVars(map), children_[1]->MapVars(map));
    case CondKind::kOr:
      return Or(children_[0]->MapVars(map), children_[1]->MapVars(map));
  }
  return True();
}

Status Condition::CheckWellFormed(const VarScope& scope,
                                  const DatabaseSchema& schema) const {
  auto check_var = [&scope](int v, VarSort want) -> Status {
    if (v < 0 || v >= scope.size()) {
      return Status::InvalidArgument(StrCat("variable index ", v,
                                            " out of scope (size ",
                                            scope.size(), ")"));
    }
    if (scope.var(v).sort != want) {
      return Status::InvalidArgument(
          StrCat("variable ", scope.var(v).name, " has wrong sort"));
    }
    return Status::Ok();
  };
  switch (kind_) {
    case CondKind::kTrue:
    case CondKind::kFalse:
      return Status::Ok();
    case CondKind::kEq: {
      // Sorts must agree: id-with-id/null, numeric-with-numeric/const.
      auto term_sort = [&](const Term& t) -> int {
        switch (t.kind) {
          case Term::Kind::kNull:
            return 0;  // id-compatible
          case Term::Kind::kConst:
            return 1;  // numeric-compatible
          case Term::Kind::kVar:
            if (t.var < 0 || t.var >= scope.size()) return -1;
            return scope.var(t.var).sort == VarSort::kId ? 0 : 1;
        }
        return -1;
      };
      int ls = term_sort(lhs_), rs = term_sort(rhs_);
      if (ls < 0 || rs < 0) {
        return Status::InvalidArgument("equality with out-of-scope variable");
      }
      if (ls != rs) {
        return Status::InvalidArgument(
            "equality between ID and numeric terms");
      }
      return Status::Ok();
    }
    case CondKind::kRel: {
      if (relation_ < 0 || relation_ >= schema.num_relations()) {
        return Status::InvalidArgument(
            StrCat("unknown relation id ", relation_));
      }
      const Relation& rel = schema.relation(relation_);
      if (static_cast<int>(args_.size()) != rel.arity()) {
        return Status::InvalidArgument(
            StrCat("relation atom ", rel.name(), " expects ", rel.arity(),
                   " arguments, got ", args_.size()));
      }
      for (int i = 0; i < rel.arity(); ++i) {
        VarSort want = rel.attr(i).kind == AttrKind::kNumeric
                           ? VarSort::kNumeric
                           : VarSort::kId;
        HAS_RETURN_IF_ERROR(check_var(args_[i], want));
      }
      return Status::Ok();
    }
    case CondKind::kArith: {
      for (ArithVar v : constraint_.expr.Vars()) {
        HAS_RETURN_IF_ERROR(check_var(v, VarSort::kNumeric));
      }
      return Status::Ok();
    }
    case CondKind::kNot:
    case CondKind::kAnd:
    case CondKind::kOr:
      for (const CondPtr& c : children_) {
        HAS_RETURN_IF_ERROR(c->CheckWellFormed(scope, schema));
      }
      return Status::Ok();
  }
  return Status::Ok();
}

bool Condition::UsesArithmetic() const {
  switch (kind_) {
    case CondKind::kArith: {
      // x - c = 0 (a constant tag) does not require the cell machinery;
      // anything else does.
      if (constraint_.op == Relop::kEq &&
          constraint_.expr.coefs().size() == 1 &&
          constraint_.expr.coefs().begin()->second == Rational(1)) {
        return false;
      }
      return true;
    }
    case CondKind::kNot:
    case CondKind::kAnd:
    case CondKind::kOr:
      for (const CondPtr& c : children_) {
        if (c->UsesArithmetic()) return true;
      }
      return false;
    default:
      return false;
  }
}

std::string Condition::ToString(const VarScope& scope,
                                const DatabaseSchema* schema) const {
  auto var_name = [&scope](int v) {
    if (v >= 0 && v < scope.size()) return scope.var(v).name;
    return StrCat("?v", v);
  };
  auto term_str = [&](const Term& t) {
    switch (t.kind) {
      case Term::Kind::kVar:
        return var_name(t.var);
      case Term::Kind::kNull:
        return std::string("null");
      case Term::Kind::kConst:
        return t.value.ToString();
    }
    return std::string("?");
  };
  switch (kind_) {
    case CondKind::kTrue:
      return "true";
    case CondKind::kFalse:
      return "false";
    case CondKind::kEq:
      return StrCat(term_str(lhs_), " == ", term_str(rhs_));
    case CondKind::kRel: {
      std::vector<std::string> parts;
      for (int a : args_) parts.push_back(var_name(a));
      std::string rel_name = schema != nullptr && relation_ >= 0 &&
                                     relation_ < schema->num_relations()
                                 ? schema->relation(relation_).name()
                                 : StrCat("R", relation_);
      return StrCat(rel_name, "(", StrJoin(parts, ", "), ")");
    }
    case CondKind::kArith: {
      // Render with variable names where possible.
      std::vector<std::string> parts;
      for (const auto& [v, c] : constraint_.expr.coefs()) {
        if (c == Rational(1)) {
          parts.push_back(var_name(v));
        } else {
          parts.push_back(StrCat(c.ToString(), "*", var_name(v)));
        }
      }
      if (!constraint_.expr.constant().is_zero() || parts.empty()) {
        parts.push_back(constraint_.expr.constant().ToString());
      }
      return StrCat(StrJoin(parts, " + "), " ", RelopName(constraint_.op),
                    " 0");
    }
    case CondKind::kNot:
      return StrCat("!(", children_[0]->ToString(scope, schema), ")");
    case CondKind::kAnd:
      return StrCat("(", children_[0]->ToString(scope, schema), " && ",
                    children_[1]->ToString(scope, schema), ")");
    case CondKind::kOr:
      return StrCat("(", children_[0]->ToString(scope, schema), " || ",
                    children_[1]->ToString(scope, schema), ")");
  }
  return "?";
}

}  // namespace has
