#include "common/status.h"

namespace has {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void DieBecauseCheckFailed(const char* file, int line,
                           const std::string& what) {
  std::cerr << "CHECK failed at " << file << ":" << line << ": " << what
            << std::endl;
  std::abort();
}
}  // namespace internal

}  // namespace has
