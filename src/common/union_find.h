// Union-find (disjoint set) with path compression and union by rank.
// The symbolic core uses this as the backbone of partial isomorphism
// types (equality types over navigation expressions, Definition 15).
#ifndef HAS_COMMON_UNION_FIND_H_
#define HAS_COMMON_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace has {

class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(size_t n);

  /// Adds a fresh singleton element; returns its index.
  int AddElement();

  /// Representative of x's class (with path compression).
  int Find(int x) const;

  /// Merges the classes of a and b; returns the surviving representative.
  int Union(int a, int b);

  bool Same(int a, int b) const { return Find(a) == Find(b); }

  size_t size() const { return parent_.size(); }

  /// Number of distinct classes.
  int NumClasses() const;

  /// Canonical class labels: result[i] in [0, NumClasses) with classes
  /// numbered in order of first appearance. Stable across equal
  /// partitions, used to build canonical signatures of iso types.
  std::vector<int> CanonicalLabels() const;

 private:
  // parent_/rank_ are mutable so Find can compress paths from const
  // contexts (logical constness: the partition itself never changes).
  mutable std::vector<int> parent_;
  std::vector<int> rank_;
};

}  // namespace has

#endif  // HAS_COMMON_UNION_FIND_H_
