// Status / StatusOr: lightweight error propagation without exceptions,
// following the RocksDB/Arrow idiom. Library code returns Status (or
// StatusOr<T>) instead of throwing; CHECK-style macros guard invariants
// that indicate programming errors rather than bad input.
#ifndef HAS_COMMON_STATUS_H_
#define HAS_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace has {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieBecauseCheckFailed(const char* file, int line,
                                        const std::string& what);
}  // namespace internal

}  // namespace has

// Invariant checks: these indicate bugs, not recoverable conditions, so
// they abort (per Google style, used for internal consistency only).
#define HAS_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::has::internal::DieBecauseCheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                                      \
  } while (0)

#define HAS_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream oss_;                                             \
      oss_ << #cond << ": " << msg;                                        \
      ::has::internal::DieBecauseCheckFailed(__FILE__, __LINE__,           \
                                             oss_.str());                  \
    }                                                                      \
  } while (0)

// Propagate a non-OK Status to the caller.
#define HAS_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::has::Status status_ = (expr);           \
    if (!status_.ok()) return status_;        \
  } while (0)

// Assign the value of a StatusOr expression or propagate its error.
#define HAS_ASSIGN_OR_RETURN(lhs, expr)          \
  auto HAS_CONCAT_(sor_, __LINE__) = (expr);     \
  if (!HAS_CONCAT_(sor_, __LINE__).ok())         \
    return HAS_CONCAT_(sor_, __LINE__).status(); \
  lhs = std::move(HAS_CONCAT_(sor_, __LINE__)).value()

#define HAS_CONCAT_INNER_(a, b) a##b
#define HAS_CONCAT_(a, b) HAS_CONCAT_INNER_(a, b)

#endif  // HAS_COMMON_STATUS_H_
