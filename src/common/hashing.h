// Hash combination helpers (boost-style) for composite keys used by the
// interning pools of the symbolic core.
#ifndef HAS_COMMON_HASHING_H_
#define HAS_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace has {

inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

template <typename T>
void HashMix(size_t* seed, const T& value) {
  HashCombine(seed, std::hash<T>{}(value));
}

template <typename T>
size_t HashRange(const std::vector<T>& values, size_t seed = 0) {
  for (const T& v : values) HashMix(&seed, v);
  return seed;
}

/// Hash of a vector of hashable elements.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    for (const T& x : v) HashMix(&seed, x);
    return seed;
  }
};

/// Hash of a pair.
template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = 0;
    HashMix(&seed, p.first);
    HashMix(&seed, p.second);
    return seed;
  }
};

}  // namespace has

#endif  // HAS_COMMON_HASHING_H_
