// Hash combination helpers (boost-style) for composite keys used by the
// interning pools of the symbolic core.
#ifndef HAS_COMMON_HASHING_H_
#define HAS_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace has {

static_assert(sizeof(size_t) == 4 || sizeof(size_t) == 8,
              "HashCombine supports 32- and 64-bit size_t only");

/// Width-correct golden-ratio constant (floor(2^w / phi)) so the mixing
/// step keeps its avalanche properties on 32-bit targets instead of
/// silently truncating the 64-bit constant.
inline constexpr size_t kHashCombineMagic =
    sizeof(size_t) == 8 ? static_cast<size_t>(0x9e3779b97f4a7c15ULL)
                        : static_cast<size_t>(0x9e3779b9UL);

inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + kHashCombineMagic + (*seed << 6) + (*seed >> 2);
}

template <typename T>
void HashMix(size_t* seed, const T& value) {
  HashCombine(seed, std::hash<T>{}(value));
}

template <typename T>
size_t HashRange(const std::vector<T>& values, size_t seed = 0) {
  for (const T& v : values) HashMix(&seed, v);
  return seed;
}

/// Hash of a vector of hashable elements.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    size_t seed = v.size();
    for (const T& x : v) HashMix(&seed, x);
    return seed;
  }
};

/// Hash of a pair.
template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = 0;
    HashMix(&seed, p.first);
    HashMix(&seed, p.second);
    return seed;
  }
};

/// Hash of (dense id, int64 vector) keys — the shape of coverability
/// node identities (state, marking) and closed-walk search states
/// (node, ω-effect).
struct IdVectorHash {
  size_t operator()(const std::pair<int, std::vector<int64_t>>& k) const {
    size_t seed = static_cast<size_t>(k.first);
    for (int64_t v : k.second) HashMix(&seed, v);
    return seed;
  }
};

}  // namespace has

#endif  // HAS_COMMON_HASHING_H_
