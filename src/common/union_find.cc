#include "common/union_find.h"

#include <numeric>

namespace has {

UnionFind::UnionFind(size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::AddElement() {
  int id = static_cast<int>(parent_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  return id;
}

int UnionFind::Find(int x) const {
  int root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    int next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

int UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return ra;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  return ra;
}

int UnionFind::NumClasses() const {
  int count = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (Find(static_cast<int>(i)) == static_cast<int>(i)) ++count;
  }
  return count;
}

std::vector<int> UnionFind::CanonicalLabels() const {
  std::vector<int> label(parent_.size(), -1);
  int next = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    int root = Find(static_cast<int>(i));
    if (label[root] == -1) label[root] = next++;
    label[i] = label[root];
  }
  return label;
}

}  // namespace has
