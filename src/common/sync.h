// Small synchronization primitives for the sharded exploration engine
// (vass/karp_miller.cc): a reusable rendezvous barrier for the
// round-lockstep worker team, and a bounded MPSC queue used as the
// cross-shard successor channel. Both are mutex-based — the hot work
// (symbolic successor enumeration) dwarfs the synchronization cost, so
// simplicity and TSan-cleanliness win over lock-free cleverness.
#ifndef HAS_COMMON_SYNC_H_
#define HAS_COMMON_SYNC_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

namespace has {

/// Reusable rendezvous barrier: every party blocks in ArriveAndWait
/// until all `parties` have arrived, then all are released and the
/// barrier resets for the next phase (generation counter prevents a
/// fast thread from lapping a slow one).
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties), waiting_(0) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    size_t generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int waiting_;
  size_t generation_ = 0;
};

/// Bounded multi-producer queue with non-blocking push/pop plus
/// condition-variable waits for both directions. Producers that find
/// the queue full must make progress elsewhere (the sharded explorer
/// drains its own inbound queue when a push fails, which bounds memory
/// without risking producer/consumer deadlock) — and when there is no
/// elsewhere, they park in WaitNotFull instead of busy-spinning;
/// consumers waiting for traffic park in WaitNotEmpty. Nudge wakes
/// every parked waiter without an item (used to publish out-of-band
/// state changes like "all producers finished" that a waiter's exit
/// condition also depends on).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    ring_.resize(capacity);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// False iff the queue is full (the item is left untouched).
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (size_ == capacity_) return false;
      ring_[(head_ + size_) % capacity_] = std::move(item);
      ++size_;
      ++epoch_;
    }
    not_empty_.notify_all();
    return true;
  }

  /// False iff the queue is empty.
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (size_ == 0) return false;
      *out = std::move(ring_[head_]);
      head_ = (head_ + 1) % capacity_;
      --size_;
    }
    not_full_.notify_all();
    return true;
  }

  /// Blocks until the queue has free capacity (a subsequent TryPush may
  /// still lose the race to another producer — re-check in a loop) or
  /// until Nudge. Safe without an epoch: the not-full condition itself
  /// is mutated under this mutex (TryPop) and re-checked by the wait
  /// predicate, so a wakeup cannot be lost.
  void WaitNotFull() {
    std::unique_lock<std::mutex> lock(mutex_);
    size_t epoch = epoch_;
    not_full_.wait(lock, [&] {
      return size_ < capacity_ || epoch_ != epoch;
    });
  }

  /// The queue's event epoch: bumped by every successful push and every
  /// Nudge. A waiter whose exit condition ALSO depends on state outside
  /// the queue (e.g. "all producers finished") must read the epoch
  /// BEFORE checking that state, then pass it to WaitNotEmpty — the
  /// wait returns immediately if any push/Nudge landed in between, so
  /// the check→wait window cannot swallow the final wakeup.
  size_t Epoch() {
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
  }

  /// Blocks until the queue is non-empty (a subsequent TryPop may still
  /// lose the race to another consumer — re-check in a loop) or until
  /// the epoch has moved past `observed_epoch` (see Epoch()).
  void WaitNotEmpty(size_t observed_epoch) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] {
      return size_ > 0 || epoch_ != observed_epoch;
    });
  }

  /// Wakes every parked waiter (both directions) without an item.
  void Nudge() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++epoch_;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  size_t capacity_;
  size_t head_ = 0;
  size_t size_ = 0;
  size_t epoch_ = 0;
};

}  // namespace has

#endif  // HAS_COMMON_SYNC_H_
