// Small synchronization primitives for the sharded exploration engine
// (vass/karp_miller.cc): a reusable rendezvous barrier for the
// round-lockstep worker team, and a bounded MPSC queue used as the
// cross-shard successor channel. Both are mutex-based — the hot work
// (symbolic successor enumeration) dwarfs the synchronization cost, so
// simplicity and TSan-cleanliness win over lock-free cleverness.
#ifndef HAS_COMMON_SYNC_H_
#define HAS_COMMON_SYNC_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

namespace has {

/// Reusable rendezvous barrier: every party blocks in ArriveAndWait
/// until all `parties` have arrived, then all are released and the
/// barrier resets for the next phase (generation counter prevents a
/// fast thread from lapping a slow one).
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties), waiting_(0) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    size_t generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int parties_;
  int waiting_;
  size_t generation_ = 0;
};

/// Bounded multi-producer queue with non-blocking push/pop. Producers
/// that find the queue full must make progress elsewhere (the sharded
/// explorer drains its own inbound queue when a push fails, which
/// bounds memory without risking producer/consumer deadlock).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    ring_.resize(capacity);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// False iff the queue is full (the item is left untouched).
  bool TryPush(T&& item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (size_ == capacity_) return false;
    ring_[(head_ + size_) % capacity_] = std::move(item);
    ++size_;
    return true;
  }

  /// False iff the queue is empty.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (size_ == 0) return false;
    *out = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return true;
  }

 private:
  std::mutex mutex_;
  std::vector<T> ring_;
  size_t capacity_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace has

#endif  // HAS_COMMON_SYNC_H_
