// Small string helpers used across the library (join, split, printf-free
// concatenation). Kept deliberately minimal; no locale dependence.
#ifndef HAS_COMMON_STRINGS_H_
#define HAS_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace has {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on the single character `sep`; keeps empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

}  // namespace has

#endif  // HAS_COMMON_STRINGS_H_
