// Printing of parsed specifications. Two flavors:
//  - PrintSystem / PrintProperty: compact debug dumps (diagnostics and
//    golden tests; not guaranteed to round-trip);
//  - PrintSystemSource: parseable `.has` source for the system block.
//    ParseSpec(PrintSystemSource(s)) reconstructs an equivalent system
//    — tasks, variable scopes, named artifact relations (the
//    single-relation sugar `set (x̄);` is emitted for the default
//    relation "S"), per-relation service updates, input/output wiring
//    and conditions all survive the round trip. Properties are not
//    printed (conditions embedded in HLTL render through the same
//    parseable path, but skeleton reconstruction is not needed by any
//    consumer yet).
#ifndef HAS_SPEC_PRINTER_H_
#define HAS_SPEC_PRINTER_H_

#include <string>

#include "hltl/hltl.h"
#include "model/artifact_system.h"

namespace has {

std::string PrintSystem(const ArtifactSystem& system);
std::string PrintProperty(const ArtifactSystem& system,
                          const HltlProperty& property);

/// Parseable `.has` source of the system block (see header comment).
std::string PrintSystemSource(const ArtifactSystem& system);

/// A condition in the spec language's concrete syntax (parses back
/// through ParseCondition under the same scope/schema).
std::string PrintConditionSource(const Condition& cond,
                                 const VarScope& scope,
                                 const DatabaseSchema& schema);

}  // namespace has

#endif  // HAS_SPEC_PRINTER_H_
