// Debug printing of parsed specifications (not guaranteed to
// round-trip; intended for diagnostics and golden tests).
#ifndef HAS_SPEC_PRINTER_H_
#define HAS_SPEC_PRINTER_H_

#include <string>

#include "hltl/hltl.h"
#include "model/artifact_system.h"

namespace has {

std::string PrintSystem(const ArtifactSystem& system);
std::string PrintProperty(const ArtifactSystem& system,
                          const HltlProperty& property);

}  // namespace has

#endif  // HAS_SPEC_PRINTER_H_
