// Printing of parsed specifications. Two flavors:
//  - PrintSystem / PrintProperty: compact debug dumps (diagnostics and
//    golden tests; not guaranteed to round-trip);
//  - PrintSystemSource / PrintPropertySource / PrintSpecSource:
//    parseable `.has` source. ParseSpec(PrintSpecSource(...))
//    reconstructs an equivalent spec — tasks, variable scopes, named
//    artifact relations (the single-relation sugar `set (x̄);` is
//    emitted for the default relation "S"), per-relation service
//    updates, input/output wiring, conditions, and HLTL-FO property
//    skeletons all survive the round trip, and printing the re-parsed
//    spec reproduces the text exactly (the print ∘ parse fixpoint the
//    fuzzer and the corpus replay rely on).
#ifndef HAS_SPEC_PRINTER_H_
#define HAS_SPEC_PRINTER_H_

#include <string>
#include <utility>
#include <vector>

#include "hltl/hltl.h"
#include "model/artifact_system.h"

namespace has {

std::string PrintSystem(const ArtifactSystem& system);
std::string PrintProperty(const ArtifactSystem& system,
                          const HltlProperty& property);

/// Parseable `.has` source of the system block (see header comment).
std::string PrintSystemSource(const ArtifactSystem& system);

/// Parseable source of one property body (the text between the braces
/// of `property name { ... }`). Binary connectives are fully
/// parenthesized and the derived connectives (G, F, ->) print in their
/// desugared ¬/U/∨ form, which the parser rebuilds into the identical
/// skeleton; proposition occurrences print in the parser's collection
/// order, so re-parsing reproduces the prop tables one-for-one.
std::string PrintPropertySource(const ArtifactSystem& system,
                                const HltlProperty& property);

/// A full parseable spec: the system block followed by every property
/// as `property name { ... }` (the shape ParseSpec consumes).
std::string PrintSpecSource(
    const ArtifactSystem& system,
    const std::vector<std::pair<std::string, HltlProperty>>& properties);

/// A condition in the spec language's concrete syntax (parses back
/// through ParseCondition under the same scope/schema).
std::string PrintConditionSource(const Condition& cond,
                                 const VarScope& scope,
                                 const DatabaseSchema& schema);

}  // namespace has

#endif  // HAS_SPEC_PRINTER_H_
