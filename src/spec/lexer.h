// Lexer for the HAS specification language (see spec/parser.h for the
// grammar). Produces a token stream with positions for error messages.
#ifndef HAS_SPEC_LEXER_H_
#define HAS_SPEC_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace has {

enum class TokKind : uint8_t {
  kIdent,
  kNumber,
  kLBrace,    // {
  kRBrace,    // }
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,
  kSemi,
  kColon,
  kAt,        // @
  kArrow,     // ->
  kLArrow,    // <-
  kEq,        // ==
  kNe,        // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kAnd,       // &&
  kOr,        // ||
  kNot,       // !
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int line = 0;
  int column = 0;
};

/// Tokenizes `source`; '#' and '//' start line comments.
StatusOr<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace has

#endif  // HAS_SPEC_LEXER_H_
