#include "spec/parser.h"

#include "common/strings.h"
#include "spec/binder.h"
#include "spec/lexer.h"

namespace has {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedSpec> Parse() {
    ParsedSpec spec;
    locs_ = &spec.locations;
    HAS_RETURN_IF_ERROR(ExpectIdent("system"));
    HAS_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    // Pre-scan relation names for forward references.
    for (size_t i = pos_; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i].kind == TokKind::kIdent &&
          tokens_[i].text == "relation" &&
          tokens_[i + 1].kind == TokKind::kIdent) {
        spec.system.schema().AddRelation(tokens_[i + 1].text);
      }
    }
    while (PeekIdent("relation")) {
      HAS_RETURN_IF_ERROR(ParseRelation(&spec.system));
    }
    if (!PeekIdent("task")) {
      return Error("expected the root task");
    }
    HAS_RETURN_IF_ERROR(ParseTask(&spec.system, kNoTask));
    HAS_RETURN_IF_ERROR(Expect(TokKind::kRBrace));
    while (PeekIdent("property")) {
      HAS_RETURN_IF_ERROR(ParseProperty(&spec));
    }
    if (Peek().kind != TokKind::kEnd) {
      return Error("trailing input after properties");
    }
    return spec;
  }

  /// Condition-only entry point (testing aid).
  StatusOr<CondPtr> ParseLoneCondition(const VarScope& scope,
                                       const DatabaseSchema& schema) {
    scope_ = &scope;
    schema_ = &schema;
    HAS_ASSIGN_OR_RETURN(CondPtr cond, ParseCond());
    if (Peek().kind != TokKind::kEnd) return Error("trailing input");
    return cond;
  }

 private:
  // --- token plumbing -----------------------------------------------------
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool PeekIdent(const std::string& word, int ahead = 0) const {
    return Peek(ahead).kind == TokKind::kIdent && Peek(ahead).text == word;
  }
  bool ConsumeIdent(const std::string& word) {
    if (PeekIdent(word)) {
      Next();
      return true;
    }
    return false;
  }
  bool Consume(TokKind kind) {
    if (Peek().kind == kind) {
      Next();
      return true;
    }
    return false;
  }
  Status Expect(TokKind kind) {
    if (!Consume(kind)) {
      return Error(StrCat("unexpected token '", Peek().text, "'"));
    }
    return Status::Ok();
  }
  Status ExpectIdent(const std::string& word) {
    if (!ConsumeIdent(word)) {
      return Error(StrCat("expected '", word, "', got '", Peek().text, "'"));
    }
    return Status::Ok();
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrCat("line ", Peek().line, ": ", message));
  }

  // --- schema -------------------------------------------------------------
  Status ParseRelation(ArtifactSystem* system) {
    HAS_RETURN_IF_ERROR(ExpectIdent("relation"));
    if (Peek().kind != TokKind::kIdent) return Error("relation name");
    std::string name = Next().text;
    std::optional<RelationId> rid = system->schema().FindRelation(name);
    if (!rid.has_value()) return Error("relation pre-scan failure");
    Relation& rel = system->schema().relation(*rid);
    HAS_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    while (!Consume(TokKind::kRBrace)) {
      if (Peek().kind != TokKind::kIdent) return Error("attribute name");
      std::string attr = Next().text;
      if (Consume(TokKind::kColon)) {
        HAS_RETURN_IF_ERROR(ExpectIdent("num"));
        rel.AddNumericAttribute(attr);
      } else if (Consume(TokKind::kArrow)) {
        if (Peek().kind != TokKind::kIdent) return Error("target relation");
        std::string target = Next().text;
        std::optional<RelationId> tid =
            system->schema().FindRelation(target);
        if (!tid.has_value()) {
          return Error(StrCat("unknown relation ", target));
        }
        rel.AddForeignKey(attr, *tid);
      } else {
        return Error("expected ': num' or '-> Relation'");
      }
      HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
    }
    return Status::Ok();
  }

  // --- tasks ----------------------------------------------------------------
  /// A service set-update awaiting relation-name resolution: `set`
  /// blocks may appear anywhere in the task body, so `insert into X;`
  /// is resolved once the body is fully parsed.
  struct PendingSetOp {
    int service = -1;       ///< index into the task's services
    std::string relation;   ///< empty for the bare insert/retrieve sugar
    bool is_insert = false;
    int line = 0;
  };

  SourceLoc LocOf(const Token& tok) const {
    return SourceLoc{tok.line, tok.column};
  }

  Status ParseTask(ArtifactSystem* system, TaskId parent) {
    HAS_RETURN_IF_ERROR(ExpectIdent("task"));
    if (Peek().kind != TokKind::kIdent) return Error("task name");
    const Token name_tok = Next();
    std::string name = name_tok.text;
    TaskId id = system->AddTask(name, parent);
    locs_->SetTask(name, LocOf(name_tok));
    HAS_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    schema_ = &system->schema();
    std::vector<PendingSetOp> pending_set_ops;
    while (!Consume(TokKind::kRBrace)) {
      // Re-fetch on every iteration: nested AddTask calls may
      // reallocate the task vector and invalidate references.
      Task& task = system->task(id);
      if (PeekIdent("ids") || PeekIdent("nums")) {
        bool is_id = Next().text == "ids";
        HAS_RETURN_IF_ERROR(Expect(TokKind::kColon));
        while (Peek().kind == TokKind::kIdent) {
          const Token var_tok = Next();
          task.vars().AddVar(var_tok.text,
                             is_id ? VarSort::kId : VarSort::kNumeric);
          locs_->SetVar(name, var_tok.text, LocOf(var_tok));
          if (!Consume(TokKind::kComma)) break;
        }
        HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      } else if (PeekIdent("set")) {
        SourceLoc rel_loc = LocOf(Peek());
        Next();
        // Named form `set Name (x̄);` or the single-relation sugar
        // `set (x̄);` (relation name "S").
        std::string rel_name = kDefaultSetName;
        if (Peek().kind == TokKind::kIdent) {
          rel_loc = LocOf(Peek());
          rel_name = Next().text;
        }
        locs_->SetRelation(name, rel_name, rel_loc);
        if (task.FindSetRelation(rel_name) >= 0) {
          return Error(StrCat("artifact relation ", rel_name,
                              " declared twice"));
        }
        HAS_RETURN_IF_ERROR(Expect(TokKind::kLParen));
        std::vector<int> set_vars;
        while (Peek().kind == TokKind::kIdent) {
          int v = task.vars().Find(Next().text);
          if (v < 0) return Error("unknown set variable");
          set_vars.push_back(v);
          if (!Consume(TokKind::kComma)) break;
        }
        HAS_RETURN_IF_ERROR(Expect(TokKind::kRParen));
        HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
        task.AddSetRelation(std::move(rel_name), std::move(set_vars));
      } else if (PeekIdent("input")) {
        Next();
        HAS_RETURN_IF_ERROR(Expect(TokKind::kColon));
        while (Peek().kind == TokKind::kIdent) {
          int own = task.vars().Find(Next().text);
          if (own < 0) return Error("unknown input variable");
          int parent_var = -1;
          if (Consume(TokKind::kLArrow)) {
            if (parent == kNoTask) {
              return Error("root inputs take no source");
            }
            if (Peek().kind != TokKind::kIdent) {
              return Error("parent variable");
            }
            parent_var = system->task(parent).vars().Find(Next().text);
            if (parent_var < 0) return Error("unknown parent variable");
          } else if (parent != kNoTask) {
            // Default: same-named parent variable (the paper's example
            // convention).
            parent_var =
                system->task(parent).vars().Find(
                    task.vars().var(own).name);
            if (parent_var < 0) {
              return Error("no same-named parent variable for input");
            }
          }
          task.AddInput(own, parent_var);
          if (!Consume(TokKind::kComma)) break;
        }
        HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      } else if (PeekIdent("output")) {
        Next();
        HAS_RETURN_IF_ERROR(Expect(TokKind::kColon));
        if (parent == kNoTask) return Error("root task has no output");
        while (Peek().kind == TokKind::kIdent) {
          int own = task.vars().Find(Next().text);
          if (own < 0) return Error("unknown output variable");
          HAS_RETURN_IF_ERROR(Expect(TokKind::kArrow));
          if (Peek().kind != TokKind::kIdent) {
            return Error("parent variable");
          }
          int parent_var = system->task(parent).vars().Find(Next().text);
          if (parent_var < 0) return Error("unknown parent variable");
          task.AddOutput(parent_var, own);
          if (!Consume(TokKind::kComma)) break;
        }
        HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      } else if (PeekIdent("open")) {
        Next();
        HAS_RETURN_IF_ERROR(ExpectIdent("when"));
        if (parent == kNoTask) {
          return Error("the root task has no opening condition");
        }
        scope_ = &system->task(parent).vars();
        HAS_ASSIGN_OR_RETURN(CondPtr cond, ParseCond());
        task.SetOpeningPre(std::move(cond));
        HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      } else if (PeekIdent("close")) {
        Next();
        HAS_RETURN_IF_ERROR(ExpectIdent("when"));
        scope_ = &task.vars();
        HAS_ASSIGN_OR_RETURN(CondPtr cond, ParseCond());
        task.SetClosingPre(std::move(cond));
        HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      } else if (PeekIdent("init")) {
        // Global pre-condition Π (root only): init when <cond>;
        Next();
        HAS_RETURN_IF_ERROR(ExpectIdent("when"));
        if (parent != kNoTask) {
          return Error("Π can only appear on the root task");
        }
        scope_ = &task.vars();
        HAS_ASSIGN_OR_RETURN(CondPtr cond, ParseCond());
        system->SetGlobalPre(std::move(cond));
        HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      } else if (PeekIdent("service")) {
        Next();
        if (Peek().kind != TokKind::kIdent) return Error("service name");
        InternalService svc;
        locs_->SetService(name, Peek().text, LocOf(Peek()));
        svc.name = Next().text;
        svc.pre = Condition::True();
        svc.post = Condition::True();
        HAS_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
        scope_ = &task.vars();
        while (!Consume(TokKind::kRBrace)) {
          if (ConsumeIdent("pre")) {
            HAS_RETURN_IF_ERROR(Expect(TokKind::kColon));
            HAS_ASSIGN_OR_RETURN(svc.pre, ParseCond());
            HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
          } else if (ConsumeIdent("post")) {
            HAS_RETURN_IF_ERROR(Expect(TokKind::kColon));
            HAS_ASSIGN_OR_RETURN(svc.post, ParseCond());
            HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
          } else if (PeekIdent("insert") || PeekIdent("retrieve")) {
            PendingSetOp op;
            op.is_insert = Next().text == "insert";
            op.line = Peek().line;
            // `insert into X;` / `retrieve from X;`, or the bare
            // single-relation sugar `insert;` / `retrieve;`.
            if (ConsumeIdent(op.is_insert ? "into" : "from")) {
              if (Peek().kind != TokKind::kIdent) {
                return Error("artifact relation name");
              }
              op.relation = Next().text;
            }
            HAS_RETURN_IF_ERROR(Expect(TokKind::kSemi));
            op.service = static_cast<int>(task.services().size());
            pending_set_ops.push_back(std::move(op));
          } else {
            return Error("expected pre/post/insert/retrieve");
          }
        }
        task.AddInternalService(std::move(svc));
      } else if (PeekIdent("task")) {
        HAS_RETURN_IF_ERROR(ParseTask(system, id));
      } else {
        return Error(StrCat("unexpected '", Peek().text, "' in task body"));
      }
    }
    // Resolve the deferred set updates now that every `set` block of
    // the body has been seen.
    Task& task = system->task(id);
    for (const PendingSetOp& op : pending_set_ops) {
      int rel;
      if (op.relation.empty()) {
        if (task.num_set_relations() != 1) {
          return Status::InvalidArgument(StrCat(
              "line ", op.line, ": bare ", op.is_insert ? "insert" : "retrieve",
              task.num_set_relations() == 0
                  ? " in a task without an artifact relation"
                  : StrCat(" is ambiguous among ", task.num_set_relations(),
                           " relations; use '",
                           op.is_insert ? "insert into" : "retrieve from",
                           " <name>'")));
        }
        rel = 0;
      } else {
        rel = task.FindSetRelation(op.relation);
        if (rel < 0) {
          return Status::InvalidArgument(
              StrCat("line ", op.line, ": unknown artifact relation ",
                     op.relation, " in task ", task.name()));
        }
      }
      InternalService& svc = task.mutable_service(op.service);
      if (op.is_insert) {
        svc.MarkInsert(rel);
      } else {
        svc.MarkRetrieve(rel);
      }
    }
    return Status::Ok();
  }

  // --- conditions ----------------------------------------------------------
  StatusOr<CondPtr> ParseCond() { return ParseOr(); }

  StatusOr<CondPtr> ParseOr() {
    HAS_ASSIGN_OR_RETURN(CondPtr lhs, ParseAnd());
    while (Consume(TokKind::kOr)) {
      HAS_ASSIGN_OR_RETURN(CondPtr rhs, ParseAnd());
      lhs = Condition::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<CondPtr> ParseAnd() {
    HAS_ASSIGN_OR_RETURN(CondPtr lhs, ParseNot());
    while (Consume(TokKind::kAnd)) {
      HAS_ASSIGN_OR_RETURN(CondPtr rhs, ParseNot());
      lhs = Condition::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<CondPtr> ParseNot() {
    if (Consume(TokKind::kNot)) {
      HAS_ASSIGN_OR_RETURN(CondPtr inner, ParseNot());
      return Condition::Not(std::move(inner));
    }
    if (Peek().kind == TokKind::kLParen) {
      Next();
      HAS_ASSIGN_OR_RETURN(CondPtr inner, ParseCond());
      HAS_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      return inner;
    }
    return ParseAtom();
  }

  StatusOr<CondPtr> ParseAtom() {
    if (ConsumeIdent("true")) return Condition::True();
    if (ConsumeIdent("false")) return Condition::False();
    // Relation atom: IDENT '(' args ')'.
    if (Peek().kind == TokKind::kIdent &&
        Peek(1).kind == TokKind::kLParen &&
        schema_->FindRelation(Peek().text).has_value()) {
      RelationId rel = *schema_->FindRelation(Next().text);
      HAS_RETURN_IF_ERROR(Expect(TokKind::kLParen));
      std::vector<int> args;
      while (Peek().kind == TokKind::kIdent) {
        int v = scope_->Find(Next().text);
        if (v < 0) return Error("unknown variable in relation atom");
        args.push_back(v);
        if (!Consume(TokKind::kComma)) break;
      }
      HAS_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      return Condition::Rel(rel, std::move(args));
    }
    // Comparison.
    HAS_ASSIGN_OR_RETURN(BoundTerm lhs, ParseSum());
    TokKind op = Peek().kind;
    switch (op) {
      case TokKind::kEq:
      case TokKind::kNe:
      case TokKind::kLt:
      case TokKind::kLe:
      case TokKind::kGt:
      case TokKind::kGe:
        Next();
        break;
      default:
        return Error("expected comparison operator");
    }
    HAS_ASSIGN_OR_RETURN(BoundTerm rhs, ParseSum());
    return BuildComparisonImpl(lhs, rhs, static_cast<int>(op), *scope_);
  }

  StatusOr<BoundTerm> ParseSum() {
    HAS_ASSIGN_OR_RETURN(BoundTerm lhs, ParseProduct());
    while (Peek().kind == TokKind::kPlus || Peek().kind == TokKind::kMinus) {
      bool minus = Next().kind == TokKind::kMinus;
      HAS_ASSIGN_OR_RETURN(BoundTerm rhs, ParseProduct());
      lhs = CombineTerms(lhs, rhs, minus);
    }
    return lhs;
  }

  StatusOr<BoundTerm> ParseProduct() {
    if (Consume(TokKind::kMinus)) {
      HAS_ASSIGN_OR_RETURN(BoundTerm inner, ParseProduct());
      return NegateTerm(inner);
    }
    if (ConsumeIdent("null")) return BoundTerm::MakeNull();
    if (Peek().kind == TokKind::kNumber) {
      HAS_ASSIGN_OR_RETURN(Rational value, ParseRationalLiteral(Next().text));
      if (Consume(TokKind::kStar)) {
        if (Peek().kind != TokKind::kIdent) {
          return Error("expected variable after '*'");
        }
        int v = scope_->Find(Next().text);
        if (v < 0) return Error("unknown variable");
        return BoundTerm::MakeScaledVar(v, value);
      }
      return BoundTerm::MakeConst(value);
    }
    if (Peek().kind == TokKind::kIdent) {
      int v = scope_->Find(Next().text);
      if (v < 0) {
        return Error(StrCat("unknown variable '", tokens_[pos_ - 1].text,
                            "'"));
      }
      return BoundTerm::MakeVar(v);
    }
    return Error("expected a term");
  }

  // --- properties -----------------------------------------------------------
  Status ParseProperty(ParsedSpec* spec) {
    HAS_RETURN_IF_ERROR(ExpectIdent("property"));
    if (Peek().kind != TokKind::kIdent) return Error("property name");
    locs_->SetProperty(Peek().text, LocOf(Peek()));
    std::string name = Next().text;
    HAS_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    HltlProperty property;
    // Reserve node 0 for the root formula, then parse it.
    HltlNode placeholder;
    placeholder.task = spec->system.root();
    placeholder.skeleton = LtlFormula::True();
    property.AddNode(std::move(placeholder));
    system_for_property_ = &spec->system;
    property_ = &property;
    current_task_ = spec->system.root();
    current_props_ = {};
    HAS_ASSIGN_OR_RETURN(LtlPtr skeleton, ParseHltlImplies());
    property.mutable_node(0).skeleton = std::move(skeleton);
    property.mutable_node(0).props = std::move(current_props_);
    HAS_RETURN_IF_ERROR(Expect(TokKind::kRBrace));
    spec->properties.emplace_back(std::move(name), std::move(property));
    return Status::Ok();
  }

  StatusOr<LtlPtr> ParseHltlImplies() {
    HAS_ASSIGN_OR_RETURN(LtlPtr lhs, ParseHltlOr());
    if (Consume(TokKind::kArrow)) {
      HAS_ASSIGN_OR_RETURN(LtlPtr rhs, ParseHltlImplies());
      return LtlFormula::Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<LtlPtr> ParseHltlOr() {
    HAS_ASSIGN_OR_RETURN(LtlPtr lhs, ParseHltlAnd());
    while (Consume(TokKind::kOr)) {
      HAS_ASSIGN_OR_RETURN(LtlPtr rhs, ParseHltlAnd());
      lhs = LtlFormula::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<LtlPtr> ParseHltlAnd() {
    HAS_ASSIGN_OR_RETURN(LtlPtr lhs, ParseHltlUntil());
    while (Consume(TokKind::kAnd)) {
      HAS_ASSIGN_OR_RETURN(LtlPtr rhs, ParseHltlUntil());
      lhs = LtlFormula::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<LtlPtr> ParseHltlUntil() {
    HAS_ASSIGN_OR_RETURN(LtlPtr lhs, ParseHltlUnary());
    while (PeekIdent("U")) {
      Next();
      HAS_ASSIGN_OR_RETURN(LtlPtr rhs, ParseHltlUnary());
      lhs = LtlFormula::Until(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<LtlPtr> ParseHltlUnary() {
    if (Consume(TokKind::kNot)) {
      HAS_ASSIGN_OR_RETURN(LtlPtr inner, ParseHltlUnary());
      return LtlFormula::Not(std::move(inner));
    }
    if (PeekIdent("G")) {
      Next();
      HAS_ASSIGN_OR_RETURN(LtlPtr inner, ParseHltlUnary());
      return LtlFormula::Always(std::move(inner));
    }
    if (PeekIdent("F")) {
      Next();
      HAS_ASSIGN_OR_RETURN(LtlPtr inner, ParseHltlUnary());
      return LtlFormula::Eventually(std::move(inner));
    }
    if (PeekIdent("X")) {
      Next();
      HAS_ASSIGN_OR_RETURN(LtlPtr inner, ParseHltlUnary());
      return LtlFormula::Next(std::move(inner));
    }
    return ParseHltlPrimary();
  }

  StatusOr<LtlPtr> ParseHltlPrimary() {
    if (ConsumeIdent("true")) return LtlFormula::True();
    if (ConsumeIdent("false")) return LtlFormula::False();
    if (Consume(TokKind::kLParen)) {
      HAS_ASSIGN_OR_RETURN(LtlPtr inner, ParseHltlImplies());
      HAS_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      return inner;
    }
    if (Consume(TokKind::kLBrace)) {
      // Embedded condition over the current task's scope.
      scope_ = &system_for_property_->task(current_task_).vars();
      schema_ = &system_for_property_->schema();
      HAS_ASSIGN_OR_RETURN(CondPtr cond, ParseCond());
      HAS_RETURN_IF_ERROR(Expect(TokKind::kRBrace));
      current_props_.push_back(HltlProp::Cond(std::move(cond)));
      return LtlFormula::Prop(static_cast<int>(current_props_.size() - 1));
    }
    if (PeekIdent("open") || PeekIdent("close")) {
      bool opening = Next().text == "open";
      HAS_RETURN_IF_ERROR(Expect(TokKind::kLParen));
      if (Peek().kind != TokKind::kIdent) return Error("task name");
      TaskId t = system_for_property_->FindTask(Next().text);
      if (t == kNoTask) return Error("unknown task");
      HAS_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      current_props_.push_back(HltlProp::Service(
          opening ? ServiceRef::Opening(t) : ServiceRef::Closing(t)));
      return LtlFormula::Prop(static_cast<int>(current_props_.size() - 1));
    }
    if (PeekIdent("svc")) {
      Next();
      HAS_RETURN_IF_ERROR(Expect(TokKind::kLParen));
      if (Peek().kind != TokKind::kIdent) return Error("service name");
      std::string svc_name = Next().text;
      HAS_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      // Resolve within the current task's internal services.
      const Task& task = system_for_property_->task(current_task_);
      int index = -1;
      for (size_t i = 0; i < task.services().size(); ++i) {
        if (task.services()[i].name == svc_name) {
          index = static_cast<int>(i);
        }
      }
      if (index < 0) {
        return Error(StrCat("unknown service ", svc_name, " in task ",
                            task.name()));
      }
      current_props_.push_back(
          HltlProp::Service(ServiceRef::Internal(current_task_, index)));
      return LtlFormula::Prop(static_cast<int>(current_props_.size() - 1));
    }
    if (Consume(TokKind::kLBracket)) {
      // Child formula [φ]@Task.
      std::vector<HltlProp> saved_props = std::move(current_props_);
      TaskId saved_task = current_task_;
      // Find the task name after the matching bracket... the name
      // follows ']@'; parse the body first with the child scope, so we
      // must locate the task name by scanning ahead for the matching
      // bracket.
      int depth = 1;
      size_t scan = pos_;
      while (scan < tokens_.size() && depth > 0) {
        if (tokens_[scan].kind == TokKind::kLBracket) ++depth;
        if (tokens_[scan].kind == TokKind::kRBracket) --depth;
        ++scan;
      }
      if (depth != 0 || scan >= tokens_.size() ||
          tokens_[scan].kind != TokKind::kAt ||
          tokens_[scan + 1].kind != TokKind::kIdent) {
        return Error("expected [φ]@Task");
      }
      TaskId child = system_for_property_->FindTask(tokens_[scan + 1].text);
      if (child == kNoTask) return Error("unknown task in [φ]@Task");
      current_task_ = child;
      current_props_ = {};
      HAS_ASSIGN_OR_RETURN(LtlPtr body, ParseHltlImplies());
      HAS_RETURN_IF_ERROR(Expect(TokKind::kRBracket));
      HAS_RETURN_IF_ERROR(Expect(TokKind::kAt));
      HAS_RETURN_IF_ERROR(Expect(TokKind::kIdent));  // the task name
      HltlNode node;
      node.task = child;
      node.skeleton = std::move(body);
      node.props = std::move(current_props_);
      int node_index = property_->AddNode(std::move(node));
      current_props_ = std::move(saved_props);
      current_task_ = saved_task;
      current_props_.push_back(HltlProp::Child(node_index));
      return LtlFormula::Prop(static_cast<int>(current_props_.size() - 1));
    }
    return Error(StrCat("unexpected '", Peek().text, "' in property"));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SpecLocations* locs_ = nullptr;
  const VarScope* scope_ = nullptr;
  const DatabaseSchema* schema_ = nullptr;
  // Property-parsing state.
  ArtifactSystem* system_for_property_ = nullptr;
  HltlProperty* property_ = nullptr;
  TaskId current_task_ = kNoTask;
  std::vector<HltlProp> current_props_;
};

}  // namespace

StatusOr<ParsedSpec> ParseSpec(const std::string& source) {
  HAS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

StatusOr<ParsedSpec> ParseSpec(const std::string& source,
                               const std::string& filename) {
  HAS_ASSIGN_OR_RETURN(ParsedSpec spec, ParseSpec(source));
  spec.locations.set_file(filename);
  return spec;
}

StatusOr<CondPtr> ParseCondition(const std::string& source,
                                 const VarScope& scope,
                                 const DatabaseSchema& schema) {
  HAS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseLoneCondition(scope, schema);
}

}  // namespace has
