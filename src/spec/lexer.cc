#include "spec/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace has {

StatusOr<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> out;
  int line = 1, column = 1;
  size_t i = 0;
  auto push = [&](TokKind kind, std::string text) {
    out.push_back(Token{kind, std::move(text), line, column});
  };
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++column;
      ++i;
      continue;
    }
    if (c == '#' || (c == '/' && i + 1 < source.size() &&
                     source[i + 1] == '/')) {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      push(TokKind::kIdent, source.substr(start, i - start));
      column += static_cast<int>(i - start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              source[i] == '.')) {
        ++i;
      }
      push(TokKind::kNumber, source.substr(start, i - start));
      column += static_cast<int>(i - start);
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < source.size() && source[i + 1] == b;
    };
    if (two('-', '>')) {
      push(TokKind::kArrow, "->");
      i += 2;
      column += 2;
      continue;
    }
    if (two('<', '-')) {
      push(TokKind::kLArrow, "<-");
      i += 2;
      column += 2;
      continue;
    }
    if (two('=', '=')) {
      push(TokKind::kEq, "==");
      i += 2;
      column += 2;
      continue;
    }
    if (two('!', '=')) {
      push(TokKind::kNe, "!=");
      i += 2;
      column += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokKind::kLe, "<=");
      i += 2;
      column += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokKind::kGe, ">=");
      i += 2;
      column += 2;
      continue;
    }
    if (two('&', '&')) {
      push(TokKind::kAnd, "&&");
      i += 2;
      column += 2;
      continue;
    }
    if (two('|', '|')) {
      push(TokKind::kOr, "||");
      i += 2;
      column += 2;
      continue;
    }
    TokKind kind;
    switch (c) {
      case '{':
        kind = TokKind::kLBrace;
        break;
      case '}':
        kind = TokKind::kRBrace;
        break;
      case '(':
        kind = TokKind::kLParen;
        break;
      case ')':
        kind = TokKind::kRParen;
        break;
      case '[':
        kind = TokKind::kLBracket;
        break;
      case ']':
        kind = TokKind::kRBracket;
        break;
      case ',':
        kind = TokKind::kComma;
        break;
      case ';':
        kind = TokKind::kSemi;
        break;
      case ':':
        kind = TokKind::kColon;
        break;
      case '@':
        kind = TokKind::kAt;
        break;
      case '<':
        kind = TokKind::kLt;
        break;
      case '>':
        kind = TokKind::kGt;
        break;
      case '+':
        kind = TokKind::kPlus;
        break;
      case '-':
        kind = TokKind::kMinus;
        break;
      case '*':
        kind = TokKind::kStar;
        break;
      case '!':
        kind = TokKind::kNot;
        break;
      default:
        return Status::InvalidArgument(
            StrCat("line ", line, ": unexpected character '", c, "'"));
    }
    push(kind, std::string(1, c));
    ++i;
    ++column;
  }
  push(TokKind::kEnd, "");
  return out;
}

}  // namespace has
