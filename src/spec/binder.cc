#include "spec/binder.h"

#include "common/strings.h"
#include "spec/lexer.h"

namespace has {

BoundTerm BoundTerm::MakeScaledVar(int v, const Rational& scale) {
  BoundTerm t;
  t.kind = Kind::kLinear;
  t.linear.AddTerm(v, scale);
  return t;
}

LinearExpr BoundTerm::ToLinear() const {
  switch (kind) {
    case Kind::kNull:
      return LinearExpr();
    case Kind::kVar:
      return LinearExpr::Var(var);
    case Kind::kConst:
      return LinearExpr::Constant(value);
    case Kind::kLinear:
      return linear;
  }
  return LinearExpr();
}

BoundTerm CombineTerms(const BoundTerm& lhs, const BoundTerm& rhs,
                       bool minus) {
  BoundTerm out;
  out.kind = BoundTerm::Kind::kLinear;
  out.linear = minus ? lhs.ToLinear() - rhs.ToLinear()
                     : lhs.ToLinear() + rhs.ToLinear();
  return out;
}

BoundTerm NegateTerm(const BoundTerm& t) {
  if (t.kind == BoundTerm::Kind::kConst) {
    return BoundTerm::MakeConst(Rational(0) - t.value);
  }
  BoundTerm out;
  out.kind = BoundTerm::Kind::kLinear;
  out.linear = -t.ToLinear();
  return out;
}

StatusOr<Rational> ParseRationalLiteral(const std::string& text) {
  size_t dot = text.find('.');
  if (dot == std::string::npos) {
    return Rational(BigInt::FromString(text), BigInt(1));
  }
  std::string digits = text.substr(0, dot) + text.substr(dot + 1);
  size_t frac_len = text.size() - dot - 1;
  BigInt den(1);
  BigInt ten(10);
  for (size_t i = 0; i < frac_len; ++i) den = den * ten;
  return Rational(BigInt::FromString(digits), den);
}

StatusOr<CondPtr> BuildComparisonImpl(const BoundTerm& lhs,
                                      const BoundTerm& rhs, int op,
                                      const VarScope& scope) {
  TokKind kind = static_cast<TokKind>(op);
  auto simple = [](const BoundTerm& t) {
    return t.kind != BoundTerm::Kind::kLinear;
  };
  auto to_term = [](const BoundTerm& t) -> Term {
    switch (t.kind) {
      case BoundTerm::Kind::kNull:
        return Term::Null();
      case BoundTerm::Kind::kVar:
        return Term::Var(t.var);
      case BoundTerm::Kind::kConst:
        return Term::Const(t.value);
      case BoundTerm::Kind::kLinear:
        break;
    }
    return Term::Null();
  };
  auto is_id_side = [&scope](const BoundTerm& t) {
    return t.kind == BoundTerm::Kind::kNull ||
           (t.kind == BoundTerm::Kind::kVar &&
            scope.var(t.var).sort == VarSort::kId);
  };

  if ((kind == TokKind::kEq || kind == TokKind::kNe) && simple(lhs) &&
      simple(rhs)) {
    // Sort discipline: an ID-side may only meet another ID-side.
    bool lhs_id = is_id_side(lhs), rhs_id = is_id_side(rhs);
    if (lhs_id != rhs_id) {
      return Status::InvalidArgument(
          "ID terms support only ==/!= against ID variables or null");
    }
    CondPtr eq = Condition::Eq(to_term(lhs), to_term(rhs));
    return kind == TokKind::kEq ? eq : Condition::Not(std::move(eq));
  }
  if (is_id_side(lhs) || is_id_side(rhs)) {
    return Status::InvalidArgument(
        "ID terms support only ==/!= against variables or null");
  }
  LinearExpr diff = lhs.ToLinear() - rhs.ToLinear();
  switch (kind) {
    case TokKind::kEq:
      return Condition::Arith(LinearConstraint{std::move(diff), Relop::kEq});
    case TokKind::kNe:
      return Condition::Not(
          Condition::Arith(LinearConstraint{std::move(diff), Relop::kEq}));
    case TokKind::kLt:
      return Condition::Arith(LinearConstraint{std::move(diff), Relop::kLt});
    case TokKind::kLe:
      return Condition::Arith(LinearConstraint{std::move(diff), Relop::kLe});
    case TokKind::kGt:
      return Condition::Arith(LinearConstraint{-diff, Relop::kLt});
    case TokKind::kGe:
      return Condition::Arith(LinearConstraint{-diff, Relop::kLe});
    default:
      return Status::InvalidArgument("bad comparison operator");
  }
}

}  // namespace has
