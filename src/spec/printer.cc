#include "spec/printer.h"

#include "common/strings.h"

namespace has {

std::string PrintSystem(const ArtifactSystem& system) {
  return system.ToString();
}

std::string PrintProperty(const ArtifactSystem& system,
                          const HltlProperty& property) {
  return property.ToString(system);
}

}  // namespace has
