#include "spec/printer.h"

#include "common/strings.h"

namespace has {

namespace {

/// Renders a rational as a literal the spec lexer accepts: integers
/// as-is, non-integers as an exact decimal. Rational::ToString prints
/// "num/den", which the lexer rejects ('/' is not a token). An exact
/// decimal exists iff the denominator is 2^a·5^b — always true for
/// rationals the parser itself produced (spec literals are decimal);
/// anything else (e.g. a programmatic 1/3) falls back to the
/// non-parseable debug form.
std::string RationalLiteral(const Rational& r) {
  if (r.den() == BigInt(1)) return r.num().ToString();
  BigInt rest = r.den();
  int twos = 0, fives = 0;
  while ((rest % BigInt(2)).is_zero()) {
    rest = rest / BigInt(2);
    ++twos;
  }
  while ((rest % BigInt(5)).is_zero()) {
    rest = rest / BigInt(5);
    ++fives;
  }
  if (rest != BigInt(1)) return r.ToString();
  int k = twos > fives ? twos : fives;
  BigInt num = r.num().Abs();
  for (int i = twos; i < k; ++i) num *= BigInt(2);
  for (int i = fives; i < k; ++i) num *= BigInt(5);
  BigInt pow10(1);
  for (int i = 0; i < k; ++i) pow10 *= BigInt(10);
  std::string frac = (num % pow10).ToString();
  frac.insert(0, static_cast<size_t>(k) - frac.size(), '0');
  return StrCat(r.num().is_negative() ? "-" : "", (num / pow10).ToString(),
                ".", frac);
}

std::string TermSource(const Term& t, const VarScope& scope) {
  switch (t.kind) {
    case Term::Kind::kVar:
      return scope.var(t.var).name;
    case Term::Kind::kNull:
      return "null";
    case Term::Kind::kConst:
      return RationalLiteral(t.value);
  }
  return "?";
}

/// Parseable operator for a linear constraint (the debug RelopName
/// prints "=" for kEq, which the parser does not accept).
const char* RelopSource(Relop op) {
  switch (op) {
    case Relop::kLt:
      return "<";
    case Relop::kLe:
      return "<=";
    case Relop::kEq:
      return "==";
  }
  return "?";
}

std::string LinearSource(const LinearExpr& expr, const VarScope& scope) {
  std::vector<std::string> parts;
  for (const auto& [v, c] : expr.coefs()) {
    if (c == Rational(1)) {
      parts.push_back(scope.var(v).name);
    } else {
      parts.push_back(StrCat(RationalLiteral(c), "*", scope.var(v).name));
    }
  }
  if (!expr.constant().is_zero() || parts.empty()) {
    parts.push_back(RationalLiteral(expr.constant()));
  }
  return StrJoin(parts, " + ");
}

void Indent(std::string* out, int depth) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

void PrintTaskSource(const ArtifactSystem& system, TaskId id,
                     std::string* out, int depth) {
  const Task& t = system.task(id);
  const DatabaseSchema& schema = system.schema();
  Indent(out, depth);
  *out += StrCat("task ", t.name(), " {\n");
  std::vector<std::string> ids, nums;
  for (int v = 0; v < t.vars().size(); ++v) {
    (t.vars().var(v).sort == VarSort::kId ? ids : nums)
        .push_back(t.vars().var(v).name);
  }
  if (!ids.empty()) {
    Indent(out, depth + 1);
    *out += StrCat("ids: ", StrJoin(ids, ", "), ";\n");
  }
  if (!nums.empty()) {
    Indent(out, depth + 1);
    *out += StrCat("nums: ", StrJoin(nums, ", "), ";\n");
  }
  for (const SetRelation& rel : t.set_relations()) {
    std::vector<std::string> sv;
    for (int v : rel.vars) sv.push_back(t.vars().var(v).name);
    Indent(out, depth + 1);
    // The default name prints through the single-relation sugar, which
    // re-parses to the same name.
    if (rel.name == kDefaultSetName) {
      *out += StrCat("set (", StrJoin(sv, ", "), ");\n");
    } else {
      *out += StrCat("set ", rel.name, " (", StrJoin(sv, ", "), ");\n");
    }
  }
  if (!t.fin().empty()) {
    std::vector<std::string> parts;
    for (const auto& [own, parent] : t.fin()) {
      if (t.is_root()) {
        parts.push_back(t.vars().var(own).name);
      } else {
        parts.push_back(StrCat(t.vars().var(own).name, " <- ",
                               system.task(t.parent()).vars().var(parent)
                                   .name));
      }
    }
    Indent(out, depth + 1);
    *out += StrCat("input: ", StrJoin(parts, ", "), ";\n");
  }
  if (!t.fout().empty()) {
    std::vector<std::string> parts;
    for (const auto& [parent, own] : t.fout()) {
      parts.push_back(StrCat(t.vars().var(own).name, " -> ",
                             system.task(t.parent()).vars().var(parent)
                                 .name));
    }
    Indent(out, depth + 1);
    *out += StrCat("output: ", StrJoin(parts, ", "), ";\n");
  }
  if (!t.is_root()) {
    Indent(out, depth + 1);
    *out += StrCat("open when ",
                   PrintConditionSource(*t.opening_pre(),
                                        system.task(t.parent()).vars(),
                                        schema),
                   ";\n");
    Indent(out, depth + 1);
    *out += StrCat("close when ",
                   PrintConditionSource(*t.closing_pre(), t.vars(), schema),
                   ";\n");
  } else if (system.global_pre() != nullptr &&
             system.global_pre()->kind() != CondKind::kTrue) {
    Indent(out, depth + 1);
    *out += StrCat("init when ",
                   PrintConditionSource(*system.global_pre(), t.vars(),
                                        schema),
                   ";\n");
  }
  for (const InternalService& s : t.services()) {
    Indent(out, depth + 1);
    *out += StrCat("service ", s.name, " {\n");
    Indent(out, depth + 2);
    *out += StrCat("pre: ", PrintConditionSource(*s.pre, t.vars(), schema),
                   ";\n");
    Indent(out, depth + 2);
    *out += StrCat("post: ", PrintConditionSource(*s.post, t.vars(), schema),
                   ";\n");
    for (int r : s.insert_rels) {
      Indent(out, depth + 2);
      *out += StrCat("insert into ", t.set_relations()[r].name, ";\n");
    }
    for (int r : s.retrieve_rels) {
      Indent(out, depth + 2);
      *out += StrCat("retrieve from ", t.set_relations()[r].name, ";\n");
    }
    Indent(out, depth + 1);
    *out += "}\n";
  }
  for (TaskId c : t.children()) PrintTaskSource(system, c, out, depth + 1);
  Indent(out, depth);
  *out += "}\n";
}

/// Renders one HLTL node's skeleton. Every binary connective is
/// parenthesized, so the operands of `U` are always parseable at the
/// unary level and associativity never shifts on re-parse; `!`/`X`
/// chains stay bare (the parser's unary level consumes them greedily).
class PropertySourcePrinter {
 public:
  PropertySourcePrinter(const ArtifactSystem& system,
                        const HltlProperty& property)
      : system_(system), property_(property) {}

  std::string Node(int index) {
    const HltlNode& node = property_.node(index);
    return Formula(*node.skeleton, node);
  }

 private:
  std::string Formula(const LtlFormula& f, const HltlNode& node) {
    switch (f.kind()) {
      case LtlKind::kTrue:
        return "true";
      case LtlKind::kFalse:
        return "false";
      case LtlKind::kProp:
        return Prop(node.props[static_cast<size_t>(f.prop())], node);
      case LtlKind::kNot:
        return StrCat("! ", Formula(*f.left(), node));
      case LtlKind::kNext:
        return StrCat("X ", Formula(*f.left(), node));
      case LtlKind::kAnd:
        return StrCat("(", Formula(*f.left(), node), " && ",
                      Formula(*f.right(), node), ")");
      case LtlKind::kOr:
        return StrCat("(", Formula(*f.left(), node), " || ",
                      Formula(*f.right(), node), ")");
      case LtlKind::kUntil:
        return StrCat("(", Formula(*f.left(), node), " U ",
                      Formula(*f.right(), node), ")");
    }
    return "?";
  }

  std::string Prop(const HltlProp& p, const HltlNode& node) {
    switch (p.kind) {
      case HltlProp::Kind::kCondition:
        return StrCat("{",
                      PrintConditionSource(*p.condition,
                                           system_.task(node.task).vars(),
                                           system_.schema()),
                      "}");
      case HltlProp::Kind::kService:
        switch (p.service.kind) {
          case ServiceRef::Kind::kInternal:
            return StrCat(
                "svc(", system_.task(p.service.task).service(p.service.index)
                            .name,
                ")");
          case ServiceRef::Kind::kOpening:
            return StrCat("open(", system_.task(p.service.task).name(), ")");
          case ServiceRef::Kind::kClosing:
            return StrCat("close(", system_.task(p.service.task).name(), ")");
        }
        return "?";
      case HltlProp::Kind::kChildFormula:
        return StrCat("[ ", Node(p.child_node), " ]@",
                      system_.task(property_.node(p.child_node).task).name());
    }
    return "?";
  }

  const ArtifactSystem& system_;
  const HltlProperty& property_;
};

}  // namespace

std::string PrintSystem(const ArtifactSystem& system) {
  return system.ToString();
}

std::string PrintProperty(const ArtifactSystem& system,
                          const HltlProperty& property) {
  return property.ToString(system);
}

std::string PrintConditionSource(const Condition& cond,
                                 const VarScope& scope,
                                 const DatabaseSchema& schema) {
  switch (cond.kind()) {
    case CondKind::kTrue:
      return "true";
    case CondKind::kFalse:
      return "false";
    case CondKind::kEq:
      return StrCat(TermSource(cond.lhs(), scope), " == ",
                    TermSource(cond.rhs(), scope));
    case CondKind::kRel: {
      std::vector<std::string> parts;
      for (int a : cond.args()) parts.push_back(scope.var(a).name);
      return StrCat(schema.relation(cond.relation()).name(), "(",
                    StrJoin(parts, ", "), ")");
    }
    case CondKind::kArith:
      return StrCat(LinearSource(cond.constraint().expr, scope), " ",
                    RelopSource(cond.constraint().op), " 0");
    case CondKind::kNot:
      return StrCat("!(",
                    PrintConditionSource(*cond.child(0), scope, schema),
                    ")");
    case CondKind::kAnd:
      return StrCat("(", PrintConditionSource(*cond.child(0), scope, schema),
                    " && ",
                    PrintConditionSource(*cond.child(1), scope, schema),
                    ")");
    case CondKind::kOr:
      return StrCat("(", PrintConditionSource(*cond.child(0), scope, schema),
                    " || ",
                    PrintConditionSource(*cond.child(1), scope, schema),
                    ")");
  }
  return "?";
}

std::string PrintSystemSource(const ArtifactSystem& system) {
  std::string out = "system {\n";
  const DatabaseSchema& schema = system.schema();
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const Relation& rel = schema.relation(r);
    out += StrCat("  relation ", rel.name(), " {");
    std::string attrs;
    for (int a = 1; a < rel.arity(); ++a) {
      if (rel.attr(a).kind == AttrKind::kNumeric) {
        attrs += StrCat(" ", rel.attr(a).name, ": num;");
      } else {
        attrs += StrCat(" ", rel.attr(a).name, " -> ",
                        schema.relation(rel.attr(a).references).name(), ";");
      }
    }
    out += attrs.empty() ? " }\n" : StrCat(attrs, " }\n");
  }
  if (system.num_tasks() > 0) {
    PrintTaskSource(system, system.root(), &out, 1);
  }
  out += "}\n";
  return out;
}

std::string PrintPropertySource(const ArtifactSystem& system,
                                const HltlProperty& property) {
  PropertySourcePrinter printer(system, property);
  return printer.Node(property.root_node());
}

std::string PrintSpecSource(
    const ArtifactSystem& system,
    const std::vector<std::pair<std::string, HltlProperty>>& properties) {
  std::string out = PrintSystemSource(system);
  for (const auto& [name, property] : properties) {
    out += StrCat("property ", name, " {\n  ",
                  PrintPropertySource(system, property), "\n}\n");
  }
  return out;
}

}  // namespace has
