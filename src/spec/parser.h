// Parser for the HAS specification language. Grammar sketch:
//
//   system {
//     relation FLIGHTS { price: num; comp_hotel_id -> HOTELS; }
//     task Root {
//       ids: x, y;  nums: amount;
//       set (x, y);                       # artifact relation tuple s̄_T
//       input: x;                         # root: external inputs
//       service Store {
//         pre:  x != null;
//         post: x == null && amount == 0;
//         insert;                          # +S_T(s̄); also: retrieve;
//       }
//       task Child {
//         ids: cx;  nums: camount;
//         input: cx <- x;                 # f_in: child_var <- parent_var
//         output: cx -> y;                # f_out: child_var -> parent_var
//         open when x != null;            # over the PARENT's variables
//         close when cx != null;          # over the child's variables
//       }
//     }
//   }
//   property safe {
//     G({x == null} || ! [ F {cx != null} ]@Child)
//   }
//
// Conditions: ==, !=, <, <=, >, >=, &&, ||, !, relation atoms R(args),
// linear arithmetic over numeric variables, `null`, numeric literals.
// HLTL connectives: G F X U ! && || ->, child formulas [φ]@Task,
// conditions in braces, service propositions open(T), close(T),
// svc(Task.Service).
#ifndef HAS_SPEC_PARSER_H_
#define HAS_SPEC_PARSER_H_

#include <string>
#include <utility>
#include <vector>

#include "hltl/hltl.h"
#include "model/artifact_system.h"

namespace has {

struct ParsedSpec {
  ArtifactSystem system;
  std::vector<std::pair<std::string, HltlProperty>> properties;

  /// Property lookup by name; nullptr if absent.
  const HltlProperty* FindProperty(const std::string& name) const {
    for (const auto& [n, p] : properties) {
      if (n == name) return &p;
    }
    return nullptr;
  }
};

/// Parses a full specification (one system, any number of properties).
StatusOr<ParsedSpec> ParseSpec(const std::string& source);

/// Parses a condition in isolation against a scope/schema (test aid).
StatusOr<CondPtr> ParseCondition(const std::string& source,
                                 const VarScope& scope,
                                 const DatabaseSchema& schema);

}  // namespace has

#endif  // HAS_SPEC_PARSER_H_
