// Parser for the HAS specification language. The complete grammar —
// lexical rules, the system/relation/task/service blocks, condition
// and HLTL syntax with precedence, well-formedness rules, and the
// printer's canonical form — is documented in docs/SPEC_FORMAT.md;
// examples/specs/ holds worked examples.
#ifndef HAS_SPEC_PARSER_H_
#define HAS_SPEC_PARSER_H_

#include <string>
#include <utility>
#include <vector>

#include "hltl/hltl.h"
#include "model/artifact_system.h"
#include "model/source_loc.h"

namespace has {

struct ParsedSpec {
  ArtifactSystem system;
  std::vector<std::pair<std::string, HltlProperty>> properties;
  /// Declaration positions of every named entity, for `file:line`
  /// rendering in validator and analyzer diagnostics.
  SpecLocations locations;

  /// Property lookup by name; nullptr if absent.
  const HltlProperty* FindProperty(const std::string& name) const {
    for (const auto& [n, p] : properties) {
      if (n == name) return &p;
    }
    return nullptr;
  }
};

/// Parses a full specification (one system, any number of properties).
StatusOr<ParsedSpec> ParseSpec(const std::string& source);

/// Same, recording `filename` as the source name of the returned
/// locations (diagnostics then render "filename:line" instead of
/// "<spec>:line").
StatusOr<ParsedSpec> ParseSpec(const std::string& source,
                               const std::string& filename);

/// Parses a condition in isolation against a scope/schema (test aid).
StatusOr<CondPtr> ParseCondition(const std::string& source,
                                 const VarScope& scope,
                                 const DatabaseSchema& schema);

}  // namespace has

#endif  // HAS_SPEC_PARSER_H_
