// Parser for the HAS specification language. Grammar sketch:
//
//   system {
//     relation FLIGHTS { price: num; comp_hotel_id -> HOTELS; }
//     task Root {
//       ids: x, y;  nums: amount;
//       set (x, y);                  # artifact relation sugar: S(x, y)
//       set Pending (x);             # named relation S_T,i over s̄_T,i
//       set Done (y);                # any number of `set` blocks
//       input: x;                    # root: external inputs
//       service Store {
//         pre:  x != null;
//         post: x == null && amount == 0;
//         insert;                    # +S(s̄): sugar, requires EXACTLY
//                                    # one declared relation
//         insert into Pending;       # +Pending(s̄_Pending)
//         retrieve from Done;        # -Done(s̄_Done); a service may
//                                    # update any subset of relations
//       }
//       task Child {
//         ids: cx;  nums: camount;
//         input: cx <- x;            # f_in: child_var <- parent_var
//         output: cx -> y;           # f_out: child_var -> parent_var
//         open when x != null;       # over the PARENT's variables
//         close when cx != null;     # over the child's variables
//       }
//     }
//   }
//   property safe {
//     G({x == null} || ! [ F {cx != null} ]@Child)
//   }
//
// Artifact relations: a task declares a family S_T,1 … S_T,k through
// `set` blocks — the unnamed form declares the relation named "S" (the
// paper's single S_T; re-parse-stable through PrintSystemSource). Each
// relation has its own tuple s̄_T,i of distinct ID variables and its
// own insert/retrieve deltas; `set` blocks may appear anywhere in the
// task body (service updates are resolved after the body is parsed).
// Bare `insert;` / `retrieve;` target the task's sole relation and are
// rejected as ambiguous when k > 1.
//
// Conditions: ==, !=, <, <=, >, >=, &&, ||, !, relation atoms R(args),
// linear arithmetic over numeric variables, `null`, numeric literals.
// HLTL connectives: G F X U ! && || ->, child formulas [φ]@Task,
// conditions in braces, service propositions open(T), close(T),
// svc(Task.Service).
#ifndef HAS_SPEC_PARSER_H_
#define HAS_SPEC_PARSER_H_

#include <string>
#include <utility>
#include <vector>

#include "hltl/hltl.h"
#include "model/artifact_system.h"
#include "model/source_loc.h"

namespace has {

struct ParsedSpec {
  ArtifactSystem system;
  std::vector<std::pair<std::string, HltlProperty>> properties;
  /// Declaration positions of every named entity, for `file:line`
  /// rendering in validator and analyzer diagnostics.
  SpecLocations locations;

  /// Property lookup by name; nullptr if absent.
  const HltlProperty* FindProperty(const std::string& name) const {
    for (const auto& [n, p] : properties) {
      if (n == name) return &p;
    }
    return nullptr;
  }
};

/// Parses a full specification (one system, any number of properties).
StatusOr<ParsedSpec> ParseSpec(const std::string& source);

/// Same, recording `filename` as the source name of the returned
/// locations (diagnostics then render "filename:line" instead of
/// "<spec>:line").
StatusOr<ParsedSpec> ParseSpec(const std::string& source,
                               const std::string& filename);

/// Parses a condition in isolation against a scope/schema (test aid).
StatusOr<CondPtr> ParseCondition(const std::string& source,
                                 const VarScope& scope,
                                 const DatabaseSchema& schema);

}  // namespace has

#endif  // HAS_SPEC_PARSER_H_
