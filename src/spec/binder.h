// Term binding for the spec parser: accumulates linear expressions and
// builds comparison atoms, choosing between the equality component
// (ID/null/simple terms) and arithmetic constraints (Section 5's linear
// fragment) based on the operands.
#ifndef HAS_SPEC_BINDER_H_
#define HAS_SPEC_BINDER_H_

#include <string>

#include "expr/condition.h"

namespace has {

/// A parsed arithmetic-or-simple term.
struct BoundTerm {
  enum class Kind : uint8_t { kNull, kVar, kConst, kLinear };
  Kind kind = Kind::kNull;
  int var = -1;
  Rational value;
  LinearExpr linear;

  static BoundTerm MakeNull() { return BoundTerm{}; }
  static BoundTerm MakeVar(int v) {
    BoundTerm t;
    t.kind = Kind::kVar;
    t.var = v;
    return t;
  }
  static BoundTerm MakeConst(Rational c) {
    BoundTerm t;
    t.kind = Kind::kConst;
    t.value = std::move(c);
    return t;
  }
  static BoundTerm MakeScaledVar(int v, const Rational& scale);

  /// View as a linear expression (only for numeric contexts).
  LinearExpr ToLinear() const;
};

/// lhs ± rhs; promotes to kLinear.
BoundTerm CombineTerms(const BoundTerm& lhs, const BoundTerm& rhs,
                       bool minus);
BoundTerm NegateTerm(const BoundTerm& t);

/// Builds the comparison atom lhs OP rhs. kEq/kNe between simple terms
/// become equality atoms; ordering comparisons and linear operands
/// become arithmetic constraints. The token kinds mirror spec/lexer.h:
/// op ∈ {kEq,kNe,kLt,kLe,kGt,kGe} passed as an int to avoid the
/// dependency.
StatusOr<CondPtr> BuildComparisonImpl(const BoundTerm& lhs,
                                      const BoundTerm& rhs, int op,
                                      const VarScope& scope);

/// Parses a decimal literal into an exact rational.
StatusOr<Rational> ParseRationalLiteral(const std::string& text);

}  // namespace has

#endif  // HAS_SPEC_BINDER_H_
