// Packed marking representation for the coverability engine.
//
// A marking is a vector of non-negative int64 counters with the
// sentinel kOmega (= INT64_MAX) as the accelerated "arbitrarily large"
// top element of Karp–Miller trees. The CANONICAL form strips trailing
// zeros, so a marking's stored width is exactly one past its last
// nonzero dimension and two equal markings are structurally identical.
// Canonical form is what makes the packed kernels below branch-free on
// length:
//   - DominanceLeq(a, b) — the antichain inner loop — reduces to
//     a.size() <= b.size() plus a component-wise signed a[i] <= b[i]
//     over a's width. ω needs no special lanes: with ω = INT64_MAX,
//     "b is ω" accepts any a and "a is ω against finite b" fails the
//     numeric compare, exactly the classical ω-aware order.
//   - Equal is size-equality plus memcmp.
//
// Storage is struct-of-arrays: node metadata lives in the explorer's
// node array while the marking payloads are packed back to back in a
// MarkingArena (stable chunked storage, appended in node-creation
// order), and each node holds a MarkingView — a non-owning
// (pointer, width) span. Antichain probes therefore walk contiguous
// memory instead of chasing per-node std::vector headers.
//
// Wide mostly-zero markings (multi-relation products at k >= 2 are
// ~75% zeros) can instead be stored as ascending (dimension, value)
// pairs — see MarkingView's class comment and MarkingArena::AddAuto
// for the per-marking selection rule. The representation is
// transparent behind the logical accessors and the DominanceLeq entry
// point (sparse operands dispatch to a pair-merge kernel).
//
// The dominance kernel is selected at compile time behind the single
// DominanceLeq entry point: an AVX2 (4-lane) or SSE4.2 (2-lane) path
// when the target ISA provides 64-bit vector compares, otherwise a
// portable 4-lane-unrolled scalar loop; both early-exit on the first
// failing lane group. Defining HAS_FORCE_SCALAR_DOMINANCE (CMake
// option of the same name) forces the portable path so CI can keep
// both code paths green.
#ifndef HAS_VASS_MARKING_H_
#define HAS_VASS_MARKING_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#if !defined(HAS_FORCE_SCALAR_DOMINANCE) && \
    (defined(__AVX2__) || defined(__SSE4_2__))
#include <immintrin.h>
#endif

namespace has {

inline constexpr int64_t kOmega = INT64_MAX;

/// A sparse delta: list of (dimension, change) pairs, applied in order.
using Delta = std::vector<std::pair<int, int64_t>>;

class MarkingView;

/// Structural equality across a dense/sparse representation pair
/// (marking.cc). Both views must be canonical.
bool MarkingViewEqualMixed(const MarkingView& a, const MarkingView& b);
/// Dominance compare with at least one sparse operand (marking.cc).
bool DominanceLeqSparse(const MarkingView& a, const MarkingView& b);

/// Non-owning view of a packed, canonical (trailing-zero-stripped)
/// marking. Dimensions at or beyond size() read as 0 by convention;
/// the hot kernels never take that branch — canonicality turns the
/// padded comparison semantics into plain bounded loops.
///
/// Two payload representations live behind the same view type, tagged
/// in the top bit of the 32-bit size word:
///   - DENSE: data() points at size() packed counter values (the PR 6
///     layout, and the only layout the SIMD kernel ever touches).
///   - SPARSE: data() points at num_pairs() ascending
///     (dimension, value) int64 pairs holding exactly the nonzero
///     dimensions. Canonical form makes the logical width derivable in
///     O(1): the last pair IS the last nonzero dimension, so
///     size() = last pair's dimension + 1.
/// The representation is chosen per marking at arena-append time
/// (MarkingArena::AddAuto) and is invisible through the logical
/// accessors (size / operator[] / iteration / == / DominanceLeq).
class MarkingView {
 public:
  MarkingView() = default;
  /// Dense view over `size` packed values.
  MarkingView(const int64_t* data, size_t size)
      : data_(data), tag_(static_cast<uint32_t>(size)) {}
  /// Dense view of a canonical vector (no trailing zeros). The vector
  /// must outlive the view.
  explicit MarkingView(const std::vector<int64_t>& m)
      : MarkingView(m.data(), m.size()) {}
  /// Sparse view over `num_pairs` ascending (dimension, value) pairs;
  /// every stored value must be nonzero and num_pairs must be > 0
  /// (the empty marking is always dense).
  static MarkingView Sparse(const int64_t* pairs, size_t num_pairs) {
    MarkingView v;
    v.data_ = pairs;
    v.tag_ = static_cast<uint32_t>(num_pairs) | kSparseBit;
    return v;
  }

  bool sparse() const { return (tag_ & kSparseBit) != 0; }
  /// Number of stored (dimension, value) pairs; meaningful only for
  /// sparse views.
  size_t num_pairs() const { return tag_ & ~kSparseBit; }
  /// Logical width (one past the last nonzero dimension).
  size_t size() const {
    if (!sparse()) return tag_;
    return static_cast<size_t>(data_[2 * (num_pairs() - 1)]) + 1;
  }
  bool empty() const { return tag_ == 0; }
  /// Raw payload pointer: packed values (dense) or packed pairs
  /// (sparse). Kernels that touch it must branch on sparse().
  const int64_t* data() const { return data_; }
  /// Logical value of dimension d (requires d < size()); sparse views
  /// binary-search their pair list, off-support dimensions read 0.
  int64_t operator[](size_t d) const {
    if (!sparse()) return data_[d];
    size_t lo = 0, hi = num_pairs();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      const int64_t dim = data_[2 * mid];
      if (dim < static_cast<int64_t>(d)) {
        lo = mid + 1;
      } else if (dim > static_cast<int64_t>(d)) {
        hi = mid;
      } else {
        return data_[2 * mid + 1];
      }
    }
    return 0;
  }

  /// Logical-dimension iterator: yields size() values in dimension
  /// order for either representation (sparse iteration advances a pair
  /// cursor instead of binary-searching per dimension).
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = int64_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const int64_t*;
    using reference = int64_t;

    const_iterator(const MarkingView* v, size_t dim) : v_(v), dim_(dim) {}
    int64_t operator*() const {
      if (!v_->sparse()) return v_->data_[dim_];
      const size_t n = v_->num_pairs();
      while (pair_ < n &&
             v_->data_[2 * pair_] < static_cast<int64_t>(dim_)) {
        ++pair_;
      }
      return pair_ < n && v_->data_[2 * pair_] == static_cast<int64_t>(dim_)
                 ? v_->data_[2 * pair_ + 1]
                 : 0;
    }
    const_iterator& operator++() {
      ++dim_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return dim_ == o.dim_; }
    bool operator!=(const const_iterator& o) const { return dim_ != o.dim_; }

   private:
    const MarkingView* v_;
    size_t dim_;
    mutable size_t pair_ = 0;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, empty() ? 0 : size()}; }

  /// Structural equality — equivalent to the 0-padded marking equality
  /// for canonical views, across representations.
  bool operator==(const MarkingView& o) const {
    if (tag_ == o.tag_) {
      // Same representation and same payload length: bytewise compare
      // (a canonical marking has exactly one image per representation).
      const size_t values = sparse() ? 2 * num_pairs() : size();
      return values == 0 ||
             std::memcmp(data_, o.data_, values * sizeof(int64_t)) == 0;
    }
    // Same representation but different width/pair count: canonical
    // forms differ. Mixed representations need the logical walk.
    if (sparse() == o.sparse()) return false;
    return MarkingViewEqualMixed(*this, o);
  }
  bool operator!=(const MarkingView& o) const { return !(*this == o); }

 private:
  static constexpr uint32_t kSparseBit = uint32_t{1} << 31;

  const int64_t* data_ = nullptr;
  uint32_t tag_ = 0;
};

/// Append-only arena for marking payloads. Markings are packed back to
/// back inside fixed chunks in insertion order (the explorer inserts in
/// node-creation order, so a node's marking sits next to its antichain
/// neighbours of the same exploration phase); chunk storage is stable,
/// so handed-out views never dangle.
class MarkingArena {
 public:
  /// Copies `size` values in; returns a stable view. Debug builds
  /// assert the canonical-form invariant every kernel relies on.
  MarkingView Add(const int64_t* data, size_t size) {
    assert(size == 0 || data[size - 1] != 0);
    if (size == 0) return MarkingView();
    int64_t* dst = Allocate(size);
    std::memcpy(dst, data, size * sizeof(int64_t));
    total_values_ += size;
    return MarkingView(dst, size);
  }
  MarkingView Add(const std::vector<int64_t>& m) {
    return Add(m.data(), m.size());
  }

  /// Copies `m` in under whichever representation is smaller, per the
  /// selection rule: a marking of width >= kSparseMinWidth whose
  /// (dimension, value) pair payload is strictly smaller than its
  /// dense payload (2 * nnz < width, i.e. density below 50%) is stored
  /// sparse; everything else stays dense. The rule is entry-local and
  /// a pure function of the marking, so the stored representation is
  /// deterministic across build paths and shard counts.
  MarkingView AddAuto(const int64_t* data, size_t size) {
    assert(size == 0 || data[size - 1] != 0);
    size_t nnz = 0;
    for (size_t i = 0; i < size; ++i) nnz += data[i] != 0;
    if (size < kSparseMinWidth || 2 * nnz >= size) return Add(data, size);
    int64_t* dst = Allocate(2 * nnz);
    size_t j = 0;
    for (size_t d = 0; d < size; ++d) {
      if (data[d] == 0) continue;
      dst[2 * j] = static_cast<int64_t>(d);
      dst[2 * j + 1] = data[d];
      ++j;
    }
    total_values_ += 2 * nnz;
    ++sparse_markings_;
    return MarkingView::Sparse(dst, nnz);
  }
  MarkingView AddAuto(const std::vector<int64_t>& m) {
    return AddAuto(m.data(), m.size());
  }

  /// Total packed counter values stored (bench/introspection).
  size_t total_values() const { return total_values_; }
  /// Markings stored under the sparse pair representation.
  size_t sparse_markings() const { return sparse_markings_; }

  /// Minimum logical width for AddAuto to consider the sparse
  /// representation — below it the pair payload can't meaningfully
  /// undercut the dense one and the SIMD kernel is at its best.
  static constexpr size_t kSparseMinWidth = 8;

 private:
  static constexpr size_t kChunkValues = size_t{1} << 13;  // 64 KiB

  int64_t* Allocate(size_t size) {
    if (size > kChunkValues) {
      // Oversized marking: dedicated chunk, spliced below the current
      // one so the running chunk keeps filling.
      chunks_.push_back(std::make_unique<int64_t[]>(size));
      int64_t* p = chunks_.back().get();
      if (chunks_.size() >= 2) {
        std::swap(chunks_[chunks_.size() - 2], chunks_.back());
      } else {
        used_ = kChunkValues;  // no running chunk yet
      }
      return p;
    }
    if (used_ + size > kChunkValues || chunks_.empty()) {
      chunks_.push_back(std::make_unique<int64_t[]>(kChunkValues));
      used_ = 0;
    }
    int64_t* p = chunks_.back().get() + used_;
    used_ += size;
    return p;
  }

  std::vector<std::unique_ptr<int64_t[]>> chunks_;
  size_t used_ = 0;
  size_t total_values_ = 0;
  size_t sparse_markings_ = 0;
};

/// Component-wise a ≤ b with ω as top, over the 0-padded semantics —
/// THE antichain inner loop. Requires canonical views (see file
/// comment): the length test plus a plain signed lane-compare is then
/// exactly the ω-aware order, with no per-lane ω branches.
inline bool DominanceLeq(const MarkingView& a, const MarkingView& b) {
  // Sparse operands take the pair-merge kernel in marking.cc; the SIMD
  // body below only ever sees two dense payloads.
  if (a.sparse() || b.sparse()) return DominanceLeqSparse(a, b);
  // a wider than b: a's last dimension is nonzero (canonical) against
  // b's implicit 0 there — never ≤.
  if (a.size() > b.size()) return false;
  const int64_t* pa = a.data();
  const int64_t* pb = b.data();
  const size_t n = a.size();
  size_t i = 0;
#if !defined(HAS_FORCE_SCALAR_DOMINANCE) && defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + i));
    __m256i gt = _mm256_cmpgt_epi64(va, vb);
    if (!_mm256_testz_si256(gt, gt)) return false;
  }
#elif !defined(HAS_FORCE_SCALAR_DOMINANCE) && defined(__SSE4_2__)
  for (; i + 2 <= n; i += 2) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + i));
    if (_mm_movemask_epi8(_mm_cmpgt_epi64(va, vb)) != 0) return false;
  }
#else
  // Portable path: 4-lane unrolled with a single branch per group.
  for (; i + 4 <= n; i += 4) {
    bool fail = (pa[i] > pb[i]) | (pa[i + 1] > pb[i + 1]) |
                (pa[i + 2] > pb[i + 2]) | (pa[i + 3] > pb[i + 3]);
    if (fail) return false;
  }
#endif
  for (; i < n; ++i) {
    if (pa[i] > pb[i]) return false;
  }
  return true;
}

/// 64-bit per-dimension-group support summary: bit (d & 31) of the low
/// word is set when dimension d is nonzero, bit (d & 31) of the high
/// word when it is ω. Counter dimensions are grouped
/// (relation, TS-type) upstream and allocated in discovery order, so
/// for the typical narrow products (≤ 32 dims) the low word is the
/// exact nonzero support.
///
/// Filter soundness (summary miss ⇒ dominance impossible): a ≤ b needs
/// b[d] > 0 wherever a[d] > 0 and b[d] = ω wherever a[d] = ω. If
/// `SupportSummary(a) & ~SupportSummary(b)` has a low-word bit, some
/// group holds a nonzero a-dimension while ALL of b's dimensions in
/// that group are 0 — so some a[d] > 0 = b[d]; a high-word bit means
/// some group holds an ω of a but no ω of b — so some a[d] = ω > b[d].
/// Either way a ≤ b is impossible; skipping the entry never changes
/// the dominance decision, only avoids the vector compare.
inline uint64_t SupportSummary(const MarkingView& m) {
  uint64_t summary = 0;
  if (m.sparse()) {
    const int64_t* p = m.data();
    for (size_t i = 0, n = m.num_pairs(); i < n; ++i) {
      const size_t d = static_cast<size_t>(p[2 * i]);
      summary |= uint64_t{1} << (d & 31);
      if (p[2 * i + 1] == kOmega) summary |= uint64_t{1} << (32 + (d & 31));
    }
    return summary;
  }
  for (size_t d = 0; d < m.size(); ++d) {
    const int64_t v = m[d];
    if (v == 0) continue;
    summary |= uint64_t{1} << (d & 31);
    if (v == kOmega) summary |= uint64_t{1} << (32 + (d & 31));
  }
  return summary;
}

/// Whether a summary-`a` marking can possibly be ≤ some summary-`b`
/// marking (necessary condition; see SupportSummary).
inline bool SummaryMayDominate(uint64_t a, uint64_t b) {
  return (a & ~b) == 0;
}

/// Extended two-word summary used by the bucketed dominance index
/// (vass/dominance_index.h). `support` is SupportSummary above;
/// `magnitude` adds per-group value-threshold bits: bit (d & 31) of
/// the low word when some dimension of the group holds a value >= 2,
/// of the high word when >= 4 (ω = INT64_MAX sets both).
///
/// Soundness mirrors the support argument per threshold t ∈ {2, 4}:
/// a ≤ b and a[d] >= t imply b[d] >= t, and that survives the group-OR
/// collapse — so (a.magnitude & ~b.magnitude) != 0 exhibits a group
/// where a holds a >=t value but b tops out below t, refuting a ≤ b.
struct MarkingSummary {
  uint64_t support = 0;
  uint64_t magnitude = 0;

  bool operator==(const MarkingSummary& o) const {
    return support == o.support && magnitude == o.magnitude;
  }
  bool operator!=(const MarkingSummary& o) const { return !(*this == o); }
};

inline MarkingSummary ExtendedSummary(const MarkingView& m) {
  MarkingSummary s;
  auto add = [&s](size_t d, int64_t v) {
    const uint64_t group = uint64_t{1} << (d & 31);
    s.support |= group;
    if (v >= 2) s.magnitude |= group;
    if (v >= 4) s.magnitude |= group << 32;
    if (v == kOmega) s.support |= group << 32;
  };
  if (m.sparse()) {
    const int64_t* p = m.data();
    for (size_t i = 0, n = m.num_pairs(); i < n; ++i) {
      add(static_cast<size_t>(p[2 * i]), p[2 * i + 1]);
    }
  } else {
    for (size_t d = 0; d < m.size(); ++d) {
      if (m[d] != 0) add(d, m[d]);
    }
  }
  return s;
}

/// Necessary condition for "some marking with summary `a` is ≤ some
/// marking with summary `b`" — the support filter strengthened by the
/// magnitude thresholds.
inline bool SummaryMayDominate(const MarkingSummary& a,
                               const MarkingSummary& b) {
  return (a.support & ~b.support) == 0 &&
         (a.magnitude & ~b.magnitude) == 0;
}

/// Markings with ω: 0-padded comparison and addition helpers. The
/// std::vector overloads are the SCALAR REFERENCE semantics (and the
/// mutation API for owned markings); the MarkingView overloads are the
/// packed kernels, differentially tested against the reference in
/// tests/marking_kernel_test.cc.
namespace marking {

/// m[d], treating out-of-range as 0.
int64_t Get(const std::vector<int64_t>& m, int d);
inline int64_t Get(const MarkingView& m, int d) {
  return static_cast<size_t>(d) < m.size() ? m[static_cast<size_t>(d)] : 0;
}
void Set(std::vector<int64_t>* m, int d, int64_t v);

/// m + delta; returns false if any non-ω coordinate would go negative
/// at any point of the in-order application. Scalar reference.
bool Apply(const std::vector<int64_t>& m, const Delta& delta,
           std::vector<int64_t>* out);
/// Packed equivalent of Apply for a canonical view: checks enabledness
/// by touching ONLY the delta'd dimensions first (a disabled
/// transition is rejected without materializing the next vector), then
/// copies once at the final width and patches the touched dimensions.
/// `*out` is assigned in canonical form; reusing one scratch vector
/// across calls amortizes its allocation.
bool ApplyView(const MarkingView& m, const Delta& delta,
               std::vector<int64_t>* out);

/// Component-wise a ≤ b (ω is the top element). Scalar reference.
bool LessEq(const std::vector<int64_t>& a, const std::vector<int64_t>& b);
inline bool LessEq(const MarkingView& a, const MarkingView& b) {
  return DominanceLeq(a, b);
}
bool Equal(const std::vector<int64_t>& a, const std::vector<int64_t>& b);
inline bool Equal(const MarkingView& a, const MarkingView& b) {
  return a == b;
}
std::string ToString(const std::vector<int64_t>& m);
std::string ToString(const MarkingView& m);

}  // namespace marking

}  // namespace has

#endif  // HAS_VASS_MARKING_H_
