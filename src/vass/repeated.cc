#include "vass/repeated.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/hashing.h"
#include "common/status.h"

namespace has {

namespace {

/// Tarjan SCCs over the coverability graph (iterative to avoid deep
/// recursion on long chains).
std::vector<int> ComputeSccs(const KarpMiller& g, int* num_sccs) {
  const int n = g.num_nodes();
  std::vector<int> scc(n, -1), low(n, 0), disc(n, -1), stack;
  std::vector<bool> on_stack(n, false);
  int time = 0, count = 0;

  struct Frame {
    int node;
    size_t edge_index;
  };
  for (int start = 0; start < n; ++start) {
    if (disc[start] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    disc[start] = low[start] = time++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = g.edges(f.node);
      if (f.edge_index < edges.size()) {
        int next = edges[f.edge_index++].target;
        if (disc[next] == -1) {
          disc[next] = low[next] = time++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back(Frame{next, 0});
        } else if (on_stack[next]) {
          low[f.node] = std::min(low[f.node], disc[next]);
        }
      } else {
        if (low[f.node] == disc[f.node]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = count;
            if (w == f.node) break;
          }
          ++count;
        }
        int done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[done]);
        }
      }
    }
  }
  *num_sccs = count;
  return scc;
}

std::vector<int> OmegaDims(const std::vector<int64_t>& marking) {
  std::vector<int> out;
  for (size_t d = 0; d < marking.size(); ++d) {
    if (marking[d] == kOmega) out.push_back(static_cast<int>(d));
  }
  return out;
}

/// BFS within one SCC for any closed walk start → start; returns its
/// label sequence.
std::optional<std::vector<int64_t>> FindAnyLoop(const KarpMiller& g,
                                                const std::vector<int>& scc,
                                                int target, int start) {
  std::vector<int> parent_node(g.num_nodes(), -1);
  std::vector<int64_t> parent_label(g.num_nodes(), -1);
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<int> queue{start};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    int u = queue[qi];
    for (const KarpMiller::Edge& e : g.edges(u)) {
      if (scc[e.target] != target) continue;
      if (e.target == start) {
        std::vector<int64_t> labels{e.label};
        for (int w = u; w != start; w = parent_node[w]) {
          labels.push_back(parent_label[w]);
        }
        std::reverse(labels.begin(), labels.end());
        return labels;
      }
      if (!seen[e.target]) {
        seen[e.target] = true;
        parent_node[e.target] = u;
        parent_label[e.target] = e.label;
        queue.push_back(e.target);
      }
    }
  }
  return std::nullopt;
}

/// DFS within one SCC for a closed walk start → start whose net effect
/// on the ω-dimensions is ≥ 0 componentwise (exact dimensions return to
/// the same value around any closed walk of the coverability graph by
/// construction). Effects are clamped to ±effect_bound; the search is
/// exhaustive within the clamp and step budget.
std::optional<std::vector<int64_t>> FindNonNegLoop(
    const KarpMiller& g, const std::vector<int>& scc, int target, int start,
    const std::vector<int>& omega_dims,
    const RepeatedReachabilityOptions& options) {
  using Key = std::pair<int, std::vector<int64_t>>;  // (node, effect)
  auto clamp = [&](int64_t v) {
    return std::min(std::max(v, -options.effect_bound), options.effect_bound);
  };
  // key -> (prev key, label)
  std::unordered_map<Key, std::pair<Key, int64_t>, IdVectorHash> parent;
  std::unordered_set<Key, IdVectorHash> seen;
  std::vector<Key> stack;
  Key init{start, std::vector<int64_t>(omega_dims.size(), 0)};
  stack.push_back(init);
  seen.insert(init);
  size_t steps = 0;
  while (!stack.empty()) {
    if (++steps > options.max_steps) break;
    Key cur = stack.back();
    stack.pop_back();
    for (const KarpMiller::Edge& e : g.edges(cur.first)) {
      if (scc[e.target] != target) continue;
      std::vector<int64_t> eff = cur.second;
      for (const auto& [dim, change] : e.delta) {
        for (size_t k = 0; k < omega_dims.size(); ++k) {
          if (omega_dims[k] == dim) eff[k] = clamp(eff[k] + change);
        }
      }
      if (e.target == start &&
          std::all_of(eff.begin(), eff.end(),
                      [](int64_t v) { return v >= 0; })) {
        // Reconstruct the label sequence.
        std::vector<int64_t> labels{e.label};
        Key key = cur;
        while (key != init) {
          auto it = parent.find(key);
          HAS_CHECK(it != parent.end());
          labels.push_back(it->second.second);
          key = it->second.first;
        }
        std::reverse(labels.begin(), labels.end());
        return labels;
      }
      Key key{e.target, std::move(eff)};
      if (seen.insert(key).second) {
        parent[key] = {cur, e.label};
        stack.push_back(std::move(key));
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<LassoWitness> FindAcceptingLasso(
    const KarpMiller& graph, const std::function<bool(int)>& accepting,
    const RepeatedReachabilityOptions& options) {
  int num_sccs = 0;
  std::vector<int> scc = ComputeSccs(graph, &num_sccs);

  // Group nodes per SCC and detect which SCCs contain a cycle.
  std::vector<std::vector<int>> members(num_sccs);
  for (int n = 0; n < graph.num_nodes(); ++n) members[scc[n]].push_back(n);

  for (int target = 0; target < num_sccs; ++target) {
    // Cheapest filter first: an SCC without an accepting node can be
    // skipped before any cycle test touches its edge lists (on sharded
    // task-VASS graphs most SCCs are accepting-free singletons).
    bool has_accepting = false;
    for (int n : members[target]) {
      if (accepting(graph.node_state(n))) {
        has_accepting = true;
        break;
      }
    }
    if (!has_accepting) continue;

    bool has_cycle = members[target].size() > 1;
    if (!has_cycle) {
      int only = members[target][0];
      for (const KarpMiller::Edge& e : graph.edges(only)) {
        if (e.target == only) {
          has_cycle = true;
          break;
        }
      }
    }
    if (!has_cycle) continue;

    for (int n : members[target]) {
      if (!accepting(graph.node_state(n))) continue;
      std::vector<int> omega = OmegaDims(graph.node_marking(n));
      std::optional<std::vector<int64_t>> loop;
      if (omega.empty()) {
        loop = FindAnyLoop(graph, scc, target, n);
      } else {
        // Iterative deepening on the effect clamp: short loops (the
        // common case) are found without saturating the full effect
        // lattice; the final round is exhaustive up to the configured
        // bound.
        for (int64_t bound = 2; !loop.has_value();) {
          RepeatedReachabilityOptions round = options;
          round.effect_bound = bound;
          loop = FindNonNegLoop(graph, scc, target, n, omega, round);
          if (bound >= options.effect_bound) break;
          bound = std::min(bound * 4, options.effect_bound);
        }
      }
      if (loop.has_value()) {
        return LassoWitness{n, graph.PathLabels(n), std::move(*loop)};
      }
    }
  }
  return std::nullopt;
}

}  // namespace has
