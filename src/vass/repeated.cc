#include "vass/repeated.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/hashing.h"
#include "common/status.h"

namespace has {

namespace {

/// Tarjan SCCs over the coverability graph (iterative to avoid deep
/// recursion on long chains).
std::vector<int> ComputeSccs(const KarpMiller& g, int* num_sccs) {
  const int n = g.num_nodes();
  std::vector<int> scc(n, -1), low(n, 0), disc(n, -1), stack;
  std::vector<bool> on_stack(n, false);
  int time = 0, count = 0;

  struct Frame {
    int node;
    size_t edge_index;
  };
  for (int start = 0; start < n; ++start) {
    if (disc[start] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    disc[start] = low[start] = time++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& edges = g.edges(f.node);
      if (f.edge_index < edges.size()) {
        int next = edges[f.edge_index++].target;
        if (disc[next] == -1) {
          disc[next] = low[next] = time++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back(Frame{next, 0});
        } else if (on_stack[next]) {
          low[f.node] = std::min(low[f.node], disc[next]);
        }
      } else {
        if (low[f.node] == disc[f.node]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc[w] = count;
            if (w == f.node) break;
          }
          ++count;
        }
        int done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[done]);
        }
      }
    }
  }
  *num_sccs = count;
  return scc;
}

std::vector<int> OmegaDims(const MarkingView& marking) {
  std::vector<int> out;
  for (size_t d = 0; d < marking.size(); ++d) {
    if (marking[d] == kOmega) out.push_back(static_cast<int>(d));
  }
  return out;
}

/// Dimensions the closed-walk search must track through an SCC with
/// cover-edges: every dimension touched by an intra-SCC edge delta.
/// ω-dimensions of the start node come first (pumpable: dips are
/// covered by pumping the stem, only the net matters); the rest are
/// exact everywhere in the SCC (cover-edges and real edges only ever
/// ADD ω-coordinates, so the ω-set is constant around any cycle) and
/// carry a feasibility floor: the start node's counter value, below
/// which a prefix of the walk is simply not enabled.
struct TrackedDims {
  std::vector<int> dims;
  size_t num_omega = 0;            // dims[0..num_omega) are ω at start
  std::vector<int64_t> floors;     // parallel; ω dims hold kOmega
};

/// Partitions the SCC's precollected `touched` dimensions around the
/// start node `start`: ω-dims first (no floor), exact dims with their
/// feasibility floor from the start marking. The touched set itself is
/// SCC-invariant and collected once, alongside the cover-edge scan.
TrackedDims PartitionTrackedDims(const KarpMiller& g,
                                 const std::vector<int>& touched,
                                 int start) {
  const MarkingView m = g.node_marking(start);
  TrackedDims out;
  for (int d : touched) {
    if (marking::Get(m, d) == kOmega) {
      out.dims.push_back(d);
      out.floors.push_back(kOmega);
    }
  }
  out.num_omega = out.dims.size();
  for (int d : touched) {
    int64_t v = marking::Get(m, d);
    if (v != kOmega) {
      out.dims.push_back(d);
      out.floors.push_back(v);
    }
  }
  return out;
}

/// BFS within one SCC for any closed walk start → start; returns its
/// label sequence. Only valid for cover-free SCCs (full graphs), where
/// a cycle's mere existence already certifies marking return.
std::optional<std::vector<int64_t>> FindAnyLoop(const KarpMiller& g,
                                                const std::vector<int>& scc,
                                                int target, int start) {
  std::vector<int> parent_node(g.num_nodes(), -1);
  std::vector<int64_t> parent_label(g.num_nodes(), -1);
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<int> queue{start};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    int u = queue[qi];
    for (const KarpMiller::Edge& e : g.edges(u)) {
      if (scc[e.target] != target) continue;
      if (e.target == start) {
        // Label-less cover hops (label -1) are walk steps but not
        // transitions; they can appear here only in the delta-free
        // cover-SCC case.
        std::vector<int64_t> labels;
        if (e.label >= 0) labels.push_back(e.label);
        for (int w = u; w != start; w = parent_node[w]) {
          if (parent_label[w] >= 0) labels.push_back(parent_label[w]);
        }
        std::reverse(labels.begin(), labels.end());
        return labels;
      }
      if (!seen[e.target]) {
        seen[e.target] = true;
        parent_node[e.target] = u;
        parent_label[e.target] = e.label;
        queue.push_back(e.target);
      }
    }
  }
  return std::nullopt;
}

/// DFS within one SCC for a closed walk start → start whose net delta
/// effect is ≥ 0 on every tracked dimension. For cover-free SCCs only
/// the ω-dimensions are tracked (exact coordinates return to the same
/// value around any closed walk of a full coverability graph by
/// construction); SCCs with cover-edges track every touched dimension,
/// with feasibility floors on the exact ones (see TrackedDims).
/// Effects saturate at +effect_bound and KILL below -effect_bound; the
/// search is exhaustive within the clamp and step budget. Stored
/// values are therefore always lower bounds of the true effect (top
/// saturation under-reports, downward excursions past the bound end
/// the path instead of saturating), so an accepted walk's net really
/// is ≥ 0 on every tracked dimension — the clamp costs completeness
/// within a deepening round, never soundness.
std::optional<std::vector<int64_t>> FindNonNegLoop(
    const KarpMiller& g, const std::vector<int>& scc, int target, int start,
    const TrackedDims& td, const RepeatedReachabilityOptions& options,
    bool* out_of_steps, bool* clamp_cut) {
  using Key = std::pair<int, std::vector<int64_t>>;  // (node, effect)
  const int64_t bound = options.effect_bound;
  // key -> (prev key, label)
  std::unordered_map<Key, std::pair<Key, int64_t>, IdVectorHash> parent;
  std::unordered_set<Key, IdVectorHash> seen;
  std::vector<Key> stack;
  Key init{start, std::vector<int64_t>(td.dims.size(), 0)};
  stack.push_back(init);
  seen.insert(init);
  size_t steps = 0;
  while (!stack.empty()) {
    if (++steps > options.max_steps) {
      *out_of_steps = true;
      break;
    }
    Key cur = stack.back();
    stack.pop_back();
    for (const KarpMiller::Edge& e : g.edges(cur.first)) {
      if (scc[e.target] != target) continue;
      std::vector<int64_t> eff = cur.second;
      bool feasible = true;
      for (const auto& [dim, change] : e.delta) {
        for (size_t k = 0; feasible && k < td.dims.size(); ++k) {
          if (td.dims[k] != dim) continue;
          int64_t v = eff[k] + change;
          if (k < td.num_omega) {
            // Pumpable dimension: dips are covered by pumping the
            // stem, only the net matters — but a dip beyond -bound
            // kills the path rather than saturating. Bottom-saturation
            // would turn the stored value into an OVERestimate of the
            // true effect and let a negative-net loop slip through the
            // ≥ 0 acceptance (false VIOLATED); killing only costs
            // completeness within the round, and the cut is reported
            // so a verdict-deciding caller can degrade rather than
            // silently hold.
            if (v < -bound) {
              feasible = false;
              *clamp_cut = true;
            }
            v = std::min(v, bound);
          } else {
            // Exact dimension: a prefix below the start node's counter
            // value is not enabled (a genuine infeasibility, nothing
            // to report); below -bound it merely cannot be tracked
            // this round, which is a clamp artifact like the ω case.
            if (v < -td.floors[k]) {
              feasible = false;
            } else if (v < -bound) {
              feasible = false;
              *clamp_cut = true;
            }
            v = std::min(v, bound);
          }
          eff[k] = v;
        }
        if (!feasible) break;
      }
      if (!feasible) continue;
      if (e.target == start &&
          std::all_of(eff.begin(), eff.end(),
                      [](int64_t v) { return v >= 0; })) {
        // Reconstruct the label sequence; label-less cover hops are
        // walk steps but contribute no transition.
        std::vector<int64_t> labels;
        if (e.label >= 0) labels.push_back(e.label);
        Key key = cur;
        while (key != init) {
          auto it = parent.find(key);
          HAS_CHECK(it != parent.end());
          if (it->second.second >= 0) labels.push_back(it->second.second);
          key = it->second.first;
        }
        std::reverse(labels.begin(), labels.end());
        return labels;
      }
      Key key{e.target, std::move(eff)};
      if (seen.insert(key).second) {
        parent[key] = {cur, e.label};
        stack.push_back(std::move(key));
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<LassoWitness> FindAcceptingLasso(
    const KarpMiller& graph, const std::function<bool(int)>& accepting,
    const RepeatedReachabilityOptions& options, bool* budget_exhausted) {
  if (budget_exhausted != nullptr) *budget_exhausted = false;
  bool any_search_cut = false;
  int num_sccs = 0;
  std::vector<int> scc = ComputeSccs(graph, &num_sccs);

  // Group nodes per SCC and detect which SCCs contain a cycle.
  std::vector<std::vector<int>> members(num_sccs);
  for (int n = 0; n < graph.num_nodes(); ++n) members[scc[n]].push_back(n);

  for (int target = 0; target < num_sccs; ++target) {
    // Cheapest filter first: an SCC without an accepting node can be
    // skipped before any cycle test touches its edge lists (on sharded
    // task-VASS graphs most SCCs are accepting-free singletons).
    bool has_accepting = false;
    for (int n : members[target]) {
      if (accepting(graph.node_state(n))) {
        has_accepting = true;
        break;
      }
    }
    if (!has_accepting) continue;

    bool has_cycle = members[target].size() > 1;
    if (!has_cycle) {
      int only = members[target][0];
      for (const KarpMiller::Edge& e : graph.edges(only)) {
        if (e.target == only) {
          has_cycle = true;
          break;
        }
      }
    }
    if (!has_cycle) continue;

    // Does the SCC's cycle structure cross cover-edges? On a full
    // graph never (the whole sweep is skipped — graphs without any
    // cover-edge can't have one in an SCC); on a pruned graph always
    // (real pruned edges run parent → freshly interned child, strictly
    // id-increasing, so every pruned cycle closes through a
    // cover-edge). The same sweep collects the touched-dimension set
    // the cover criterion tracks — SCC-invariant, so gathered once,
    // not per accepting node.
    bool has_cover = false;
    std::vector<int> touched;
    if (graph.cover_edges() > 0) {
      for (int u : members[target]) {
        for (const KarpMiller::Edge& e : graph.edges(u)) {
          if (scc[e.target] != target) continue;
          if (e.cover) has_cover = true;
          for (const auto& [dim, change] : e.delta) {
            (void)change;
            if (std::find(touched.begin(), touched.end(), dim) ==
                touched.end()) {
              touched.push_back(dim);
            }
          }
        }
      }
    }

    for (int n : members[target]) {
      if (!accepting(graph.node_state(n))) continue;
      TrackedDims td;
      if (has_cover) {
        td = PartitionTrackedDims(graph, touched, n);
      } else {
        td.dims = OmegaDims(graph.node_marking(n));
        td.num_omega = td.dims.size();
        td.floors.assign(td.dims.size(), kOmega);
      }
      std::optional<std::vector<int64_t>> loop;
      if (td.dims.empty()) {
        // Nothing to track: cover-free with no ω-dimensions (any cycle
        // returns the marking exactly), or a cover SCC none of whose
        // edges touches a counter (every walk has zero net effect).
        loop = FindAnyLoop(graph, scc, target, n);
      } else {
        // Iterative deepening on the effect clamp: short loops (the
        // common case) are found without saturating the full effect
        // lattice; the final round is exhaustive up to the configured
        // bound. Start no wider than the configured bound, so a
        // bound < 2 never runs a round with a LARGER clamp than asked.
        bool final_steps_cut = false;
        bool final_clamp_cut = false;
        for (int64_t bound = std::min<int64_t>(2, options.effect_bound);
             !loop.has_value();) {
          RepeatedReachabilityOptions round = options;
          round.effect_bound = bound;
          final_steps_cut = false;
          final_clamp_cut = false;
          loop = FindNonNegLoop(graph, scc, target, n, td, round,
                                &final_steps_cut, &final_clamp_cut);
          if (bound >= options.effect_bound) break;
          bound = std::min(bound * 4, options.effect_bound);
        }
        // Only the last (widest) round's verdict is authoritative: if
        // IT ran out of steps, or killed a path purely because the
        // effect clamp could not track it, without finding a loop,
        // then "no lasso here" is unproven.
        if (!loop.has_value() && (final_steps_cut || final_clamp_cut)) {
          any_search_cut = true;
        }
      }
      if (loop.has_value()) {
        return LassoWitness{n, graph.PathLabels(n), std::move(*loop)};
      }
    }
  }
  if (budget_exhausted != nullptr) *budget_exhausted = any_search_cut;
  return std::nullopt;
}

}  // namespace has
