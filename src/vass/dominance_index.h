// Summary-bucketed dominance index over one per-state antichain.
//
// PR 6's flat antichain already carried a 64-bit support summary per
// entry so a probe could skip payload compares, but every probe still
// walked the whole chain. This index groups entries into buckets keyed
// by their EXTENDED summary (support word + magnitude-threshold word,
// see MarkingSummary in vass/marking.h), so one summary test per
// BUCKET replaces one per entry: DominatorOf enumerates only buckets
// whose key a candidate could be ≤ of, AntichainAbsorb only buckets
// whose key could be ≤ the new entry. Entries whose summary is
// ω-saturated (every supported group holds an ω) go to a single "wild"
// bucket with per-entry filtering instead — ω-heavy antichains would
// otherwise shatter into near-singleton buckets and the bucket loop
// would degenerate back into the per-entry scan.
//
// Bucketing is a pure refinement of the SummaryMayDominate filter:
// entries sharing a bucket share their exact summary, so skipping a
// bucket is exactly skipping each member by the (strengthened) summary
// test — no dominance decision can change, only how many payloads are
// touched.
//
// The summaries also resolve most SUCCESSFUL probes without a payload
// compare (the ω-cover fast accept). For markings of width <= 32 the
// summary words are EXACT per-dimension bit sets (one group per
// dimension, no wrap), so "every nonzero dimension of the candidate is
// an ω dimension of the entry" — a pure word test — PROVES m ≤ entry:
// nonzero candidate dimensions meet ω, zero ones meet anything. This
// is what makes the antichain cheap on ω-saturated frontiers, where
// nearly every probe succeeds and no negative filter can fire at all.
//
// Determinism contract: DominatorOf returns the MINIMUM node id among
// all dominators of the candidate ("resolve ties by node rank"), which
// is a pure function of the antichain CONTENT — independent of bucket
// enumeration order, insertion history, or removal order. The
// sequential build, the sharded rank-order merge replay, and the POR
// ample-progress path therefore pick the identical node. (Bucket order
// itself is insertion-ordered and replayed identically anyway, which
// keeps the probe counters shard-invariant too.)
#ifndef HAS_VASS_DOMINANCE_INDEX_H_
#define HAS_VASS_DOMINANCE_INDEX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hashing.h"
#include "vass/marking.h"

namespace has {

class DominanceIndex {
 public:
  /// Probe-cost accounting for one DominatorOf / RemoveCoveredBy call.
  /// `payload_probes` counts DominanceLeq invocations (the payload
  /// touches the bucketing exists to avoid), `bucket_probes` counts
  /// buckets examined, `skipped` counts entries resolved by a summary
  /// test alone — negatively (bucket-level key miss, or per-entry miss
  /// in the wild bucket) or positively (the ω-cover fast accept) —
  /// without touching their payload. Entries behind a node-rank cutoff
  /// are not counted anywhere: once a dominator with a smaller id is
  /// in hand they cost nothing, not even a summary test.
  struct Stats {
    size_t bucket_probes = 0;
    size_t payload_probes = 0;
    size_t skipped = 0;
  };

  /// Adds an antichain entry. Node ids must be inserted in ascending
  /// order (the explorer inserts in node-creation order), which keeps
  /// every bucket sorted by id for free.
  void Insert(int node, MarkingView marking);

  /// Minimum node id whose marking dominates (is ≥) `m`, or -1.
  int DominatorOf(const MarkingView& m, Stats* stats) const;

  /// Removes every entry whose marking is ≤ `m` (strictly or equal),
  /// invoking `victim(node)` for each in UNSPECIFIED order — callers
  /// needing determinism must not depend on callback order (the
  /// explorer's absorb path only flags victims, which is order-
  /// independent).
  template <typename Fn>
  void RemoveCoveredBy(const MarkingView& m, Stats* stats, Fn&& victim) {
    const MarkingSummary ms = ExtendedSummary(m);
    const bool m_exact = m.size() <= 32;
    const uint32_t m_omega = static_cast<uint32_t>(ms.support >> 32);
    for (size_t bi = 0; bi < buckets_.size();) {
      Bucket& bucket = buckets_[bi];
      ++stats->bucket_probes;
      if (!SummaryMayDominate(bucket.key, ms)) {
        stats->skipped += bucket.entries.size();
        ++bi;
        continue;
      }
      // ω-cover fast accept, covering direction: every nonzero
      // dimension of the bucket's (shared, exact) support meets an ω
      // of m, proving entry ≤ m for every exact entry without a
      // payload compare.
      const bool omega_accept =
          m_exact &&
          (static_cast<uint32_t>(bucket.key.support) & ~m_omega) == 0;
      FilterBucket(bucket, m, omega_accept, stats, victim);
      if (bucket.entries.empty()) {
        EraseBucket(bi);  // replaces bi with the last bucket
      } else {
        ++bi;
      }
    }
    if (!wild_.entries.empty()) {
      ++stats->bucket_probes;
      size_t kept = 0;
      for (Entry& e : wild_.entries) {
        if (!SummaryMayDominate(e.summary, ms)) {
          ++stats->skipped;
          wild_.entries[kept++] = e;
          continue;
        }
        if (m_exact && e.exact &&
            (static_cast<uint32_t>(e.summary.support) & ~m_omega) == 0) {
          ++stats->skipped;
          victim(e.node);
          continue;
        }
        ++stats->payload_probes;
        if (DominanceLeq(e.marking, m)) {
          victim(e.node);
        } else {
          wild_.entries[kept++] = e;
        }
      }
      size_ -= wild_.entries.size() - kept;
      wild_.entries.resize(kept);
    }
  }

  /// Live entries across all buckets.
  size_t size() const { return size_; }
  /// Live buckets (the wild bucket counts as one when non-empty).
  size_t num_buckets() const {
    return buckets_.size() + (wild_.entries.empty() ? 0 : 1);
  }

 private:
  struct Entry {
    int node;
    MarkingView marking;
    MarkingSummary summary;  // exact per-entry summary (wild filtering)
    /// Width <= 32: each summary bit is one dimension (no group wrap),
    /// so the ω-cover fast accept may trust the words as exact sets.
    bool exact;
  };
  struct Bucket {
    MarkingSummary key;
    std::vector<Entry> entries;  // ascending node id
  };
  struct SummaryHash {
    size_t operator()(const MarkingSummary& s) const {
      size_t seed = 0;
      HashMix(&seed, s.support);
      HashMix(&seed, s.magnitude);
      return seed;
    }
  };

  /// ω-saturated summaries (every supported group holds an ω) route to
  /// the wild bucket: such entries absorb whole magnitude classes and
  /// would otherwise spread across many tiny exact-key buckets.
  static bool IsWild(const MarkingSummary& s) {
    const uint32_t nonzero = static_cast<uint32_t>(s.support);
    const uint32_t omega = static_cast<uint32_t>(s.support >> 32);
    return nonzero != 0 && omega == nonzero;
  }

  template <typename Fn>
  void FilterBucket(Bucket& bucket, const MarkingView& m, bool omega_accept,
                    Stats* stats, Fn&& victim) {
    size_t kept = 0;
    for (Entry& e : bucket.entries) {
      if (omega_accept && e.exact) {
        ++stats->skipped;
        victim(e.node);
        continue;
      }
      ++stats->payload_probes;
      if (DominanceLeq(e.marking, m)) {
        victim(e.node);
      } else {
        bucket.entries[kept++] = e;  // stable: keeps ascending id order
      }
    }
    size_ -= bucket.entries.size() - kept;
    bucket.entries.resize(kept);
  }

  void EraseBucket(size_t bi);

  std::vector<Bucket> buckets_;
  Bucket wild_;
  std::unordered_map<MarkingSummary, size_t, SummaryHash> bucket_of_;
  size_t size_ = 0;
};

}  // namespace has

#endif  // HAS_VASS_DOMINANCE_INDEX_H_
