// Vector Addition Systems with States (Section 4.2). The verifier's
// per-task products generate their transition relations on the fly, so
// the analyses work against the VassSystem callback interface; an
// explicit adjacency-list implementation is provided for tests and for
// the undecidability-encoding example.
//
// Markings are packed vectors of int64 counters (vass/marking.h: the
// canonical trailing-zero-stripped representation, the arena, and the
// vectorized dominance kernel); the sentinel kOmega denotes the
// accelerated "arbitrarily large" value of Karp–Miller trees.
// Dimensions are allowed to grow during exploration (the verifier
// allocates a counter per newly discovered (relation, TS-type) pair);
// missing trailing coordinates read as 0.
#ifndef HAS_VASS_VASS_H_
#define HAS_VASS_VASS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "vass/marking.h"

namespace has {

/// An outgoing edge of a VASS state. `label` is an opaque tag the
/// caller uses to reconstruct what the transition meant (the verifier
/// stores an index into its transition table).
struct VassEdge {
  int target = -1;
  Delta delta;
  int64_t label = -1;
};

/// Callback interface: a (possibly implicit) VASS.
///
/// Sharded exploration protocol: a system that sets
/// SupportsConcurrentPrepare() splits its successor computation into
///   - PrepareSuccessors: the expensive part (symbolic enumeration,
///     oracle queries). May be called CONCURRENTLY from many worker
///     threads, and must therefore not mutate system state except
///     through thread-safe components (the interning pool, memoized
///     oracles).
///   - CommitSuccessors: the mutating part (state/dimension/record
///     interning). Calls are SERIALIZED by the explorer in a
///     deterministic order — the same order the sequential explorer
///     would have used — so the system's internal numbering is
///     schedule-independent.
/// Successors(state, out) must stay equivalent to
/// CommitSuccessors(state, PrepareSuccessors(state), out); the default
/// implementations make a plain Successors-only system work unsharded.
class VassSystem {
 public:
  virtual ~VassSystem() = default;
  /// Appends the outgoing edges of `state` to `out`.
  virtual void Successors(int state, std::vector<VassEdge>* out) = 0;

  /// Opaque token carrying the prepared (pure) part of one successor
  /// computation from the concurrent phase into the ordered commit.
  class Prepared {
   public:
    virtual ~Prepared() = default;
  };

  /// Whether PrepareSuccessors may be invoked concurrently (and the
  /// sharded explorer may be used at all).
  virtual bool SupportsConcurrentPrepare() const { return false; }
  virtual std::unique_ptr<Prepared> PrepareSuccessors(int state) {
    (void)state;
    return nullptr;
  }
  virtual void CommitSuccessors(int state, std::unique_ptr<Prepared> prepared,
                                std::vector<VassEdge>* out) {
    (void)prepared;
    Successors(state, out);
  }

  /// Partial-order reduction hook: the number of LEADING edges of
  /// `state`'s successor list that form a valid ample prefix — the
  /// explorer may expand only those edges as long as at least one of
  /// them makes progress (see KarpMillerOptions::por). 0 means no
  /// reduction. Contract: the value is a pure function of `state`
  /// (never of markings, shard or arrival order) and idempotent across
  /// successor recomputations, and every prefix edge has a non-negative
  /// delta (it can never be marking-disabled) and targets a real
  /// successor — the reduced graph is a subgraph of the full one's
  /// closure under the prefix transitions.
  virtual int AmplePrefix(int state) const {
    (void)state;
    return 0;
  }
};

/// Explicit VASS for tests and examples.
class ExplicitVass : public VassSystem {
 public:
  explicit ExplicitVass(int num_states) : adj_(num_states) {}

  int AddState() {
    adj_.emplace_back();
    return static_cast<int>(adj_.size() - 1);
  }
  int num_states() const { return static_cast<int>(adj_.size()); }

  /// Adds an action (from, delta, to); returns its label.
  int64_t AddAction(int from, Delta delta, int to);

  void Successors(int state, std::vector<VassEdge>* out) override;

  /// Successors only reads the adjacency list, so the default
  /// Prepare/Commit split (everything in the serialized commit) is
  /// already thread-safe.
  bool SupportsConcurrentPrepare() const override { return true; }

 private:
  std::vector<std::vector<VassEdge>> adj_;
};

}  // namespace has

#endif  // HAS_VASS_VASS_H_
