#include "vass/karp_miller.h"

#include <deque>

#include "common/status.h"

namespace has {

KarpMiller::KarpMiller(VassSystem* system, KarpMillerOptions options)
    : system_(system), options_(options) {}

int KarpMiller::InternNode(int state, std::vector<int64_t> marking,
                           int parent, int64_t parent_label, bool* created) {
  auto key = std::make_pair(state, marking);
  auto it = index_.find(key);
  if (it != index_.end()) {
    *created = false;
    return it->second;
  }
  Node node;
  node.state = state;
  node.marking = std::move(marking);
  node.parent = parent;
  node.parent_label = parent_label;
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  index_[key] = id;
  *created = true;
  return id;
}

void KarpMiller::Build(const std::vector<int>& initial_states) {
  std::deque<int> worklist;
  for (int s : initial_states) {
    bool created = false;
    int id = InternNode(s, {}, -1, -1, &created);
    if (created) worklist.push_back(id);
  }
  std::vector<VassEdge> edges;
  while (!worklist.empty()) {
    if (nodes_.size() > options_.max_nodes) {
      truncated_ = true;
      return;
    }
    int n = worklist.front();
    worklist.pop_front();
    const int state = nodes_[n].state;
    auto cache_it = succ_cache_.find(state);
    if (cache_it == succ_cache_.end()) {
      edges.clear();
      system_->Successors(state, &edges);
      cache_it = succ_cache_.emplace(state, edges).first;
    }
    // Copy: interning may invalidate references into nodes_.
    const std::vector<VassEdge> out = cache_it->second;
    for (const VassEdge& e : out) {
      std::vector<int64_t> next;
      if (!marking::Apply(nodes_[n].marking, e.delta, &next)) continue;
      // ω-acceleration along the spanning-tree ancestry: if an ancestor
      // with the same VASS state is strictly covered by `next`, the
      // strictly increased coordinates can be pumped arbitrarily.
      bool accelerated = true;
      while (accelerated) {
        accelerated = false;
        for (int a = n; a != -1; a = nodes_[a].parent) {
          if (nodes_[a].state != e.target) continue;
          const std::vector<int64_t>& am = nodes_[a].marking;
          if (!marking::LessEq(am, next) || marking::Equal(am, next)) {
            continue;
          }
          size_t dims = std::max(am.size(), next.size());
          for (size_t d = 0; d < dims; ++d) {
            int64_t av = marking::Get(am, static_cast<int>(d));
            int64_t nv = marking::Get(next, static_cast<int>(d));
            if (av < nv && nv != kOmega) {
              marking::Set(&next, static_cast<int>(d), kOmega);
              accelerated = true;
            }
          }
        }
      }
      while (!next.empty() && next.back() == 0) next.pop_back();
      bool created = false;
      int child = InternNode(e.target, std::move(next), n, e.label, &created);
      nodes_[n].edges.push_back(Edge{child, e.label, e.delta});
      if (created) worklist.push_back(child);
    }
  }
}

int KarpMiller::FindNode(const std::function<bool(int)>& pred) const {
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (pred(nodes_[n].state)) return static_cast<int>(n);
  }
  return -1;
}

std::vector<int64_t> KarpMiller::PathLabels(int n) const {
  std::vector<int64_t> labels;
  for (int cur = n; cur != -1 && nodes_[cur].parent != -1;
       cur = nodes_[cur].parent) {
    labels.push_back(nodes_[cur].parent_label);
  }
  std::reverse(labels.begin(), labels.end());
  return labels;
}

size_t KarpMiller::TotalEdges() const {
  size_t total = 0;
  for (const Node& n : nodes_) total += n.edges.size();
  return total;
}

}  // namespace has
