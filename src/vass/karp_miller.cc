#include "vass/karp_miller.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/status.h"
#include "common/sync.h"
#include "core/shard_map.h"

namespace has {

namespace {

/// A successor produced during the expansion phase of one sharded
/// round, routed to the shard owning its (state, marking) key. The
/// rank (parent, ordinal) totally orders the round's candidates in
/// exactly the order the sequential explorer would have visited them.
struct Candidate {
  int parent = -1;
  int ordinal = -1;  ///< edge position within the parent's successors
  int target_state = -1;
  std::vector<int64_t> marking;  ///< accelerated, canonical
  int64_t label = -1;
  Delta delta;
  /// Dedup result: a final node id (>= 0) or a pending-node reference
  /// encoded as -(pending_index + 2) within the owning shard.
  int resolved = 1;
};

bool CandidateRankLess(const Candidate& a, const Candidate& b) {
  if (a.parent != b.parent) return a.parent < b.parent;
  return a.ordinal < b.ordinal;
}

}  // namespace

KarpMiller::KarpMiller(VassSystem* system, KarpMillerOptions options)
    : system_(system), options_(options) {}

int KarpMiller::InternNode(int state, const std::vector<int64_t>& marking,
                           int parent, int64_t parent_label, bool* created) {
  auto key = std::make_pair(state, marking);
  auto it = index_.find(key);
  if (it != index_.end()) {
    *created = false;
    return it->second;
  }
  Node node;
  node.state = state;
  node.marking = marking_arena_.AddAuto(marking);
  node.parent = parent;
  node.parent_label = parent_label;
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  index_[std::move(key)] = id;
  *created = true;
  return id;
}

bool KarpMiller::SuccessorMarking(int parent_node, int target,
                                  const Delta& delta,
                                  std::vector<int64_t>* out) const {
  // Sparse apply: enabledness is decided from the delta'd dimensions
  // alone (a disabled transition never materializes a next-vector),
  // then one copy at the final width. `*out` leaves in canonical form.
  if (!marking::ApplyView(nodes_[parent_node].marking, delta, out)) {
    return false;
  }
  // ω-acceleration along the spanning-tree ancestry: if an ancestor
  // with the same VASS state is strictly covered by `next`, the
  // strictly increased coordinates can be pumped arbitrarily. The
  // ancestry consists of finalized nodes only (a node's ancestors are
  // strictly older), so concurrent workers may run this freely.
  std::vector<int64_t>& next = *out;
  bool accelerated = true;
  while (accelerated) {
    accelerated = false;
    for (int a = parent_node; a != -1; a = nodes_[a].parent) {
      if (nodes_[a].state != target) continue;
      const MarkingView am = nodes_[a].marking;
      const MarkingView nv(next.data(), next.size());
      if (!DominanceLeq(am, nv) || am == nv) continue;
      // Writing ω hits dimensions where am < next, hence next > 0 —
      // always within next's canonical width, never a trailing zero:
      // `next` stays canonical through the acceleration.
      for (size_t d = 0; d < next.size(); ++d) {
        const int64_t av = d < am.size() ? am[d] : 0;
        if (av < next[d] && next[d] != kOmega) {
          next[d] = kOmega;
          accelerated = true;
        }
      }
    }
  }
  assert(next.empty() || next.back() != 0);
  return true;
}

int KarpMiller::DominatorOf(int state, const MarkingView& marking) {
  auto it = antichain_.find(state);
  if (it == antichain_.end()) return -1;
  DominanceIndex::Stats stats;
  const int dom = it->second.DominatorOf(marking, &stats);
  antichain_bucket_probes_ += stats.bucket_probes;
  antichain_probes_ += stats.payload_probes;
  antichain_skipped_by_summary_ += stats.skipped;
  return dom;
}

void KarpMiller::AntichainAbsorb(int node) {
  DominanceIndex& index = antichain_[nodes_[node].state];
  const MarkingView m = nodes_[node].marking;
  // Entries ≤ m are strictly covered (an entry equal to m would have
  // dominated the candidate before it was interned). The victim-flag
  // work below is order-independent, which is all the index's
  // unspecified callback order requires.
  DominanceIndex::Stats stats;
  index.RemoveCoveredBy(m, &stats, [&](int victim) {
    if (static_cast<size_t>(victim) >= round_first_new_id_) {
      // A same-round newcomer: unexpanded, so deactivation cuts its
      // entire would-be subtree. Older covered entries are either
      // already expanded or sit in the round's frontier (their
      // expansion proceeds — round-granular deactivation keeps the
      // sharded build's speculative expansion equivalent to the
      // sequential one); they only leave the antichain.
      deactivated_[static_cast<size_t>(victim)] = 1;
      ++deactivated_count_;
      // The retired node never expands, so walks entering it would
      // dead-end; a label-less cover-edge to the (strictly larger)
      // coverer keeps the closed-walk structure: anything the victim
      // could do, the coverer's subtree over-approximates.
      nodes_[static_cast<size_t>(victim)].edges.push_back(
          Edge{node, -1, {}, /*cover=*/true});
      ++cover_edges_;
    }
  });
  antichain_bucket_probes_ += stats.bucket_probes;
  antichain_probes_ += stats.payload_probes;
  antichain_skipped_by_summary_ += stats.skipped;
  index.Insert(node, m);
  antichain_peak_ = std::max(antichain_peak_, index.size());
  antichain_buckets_peak_ =
      std::max(antichain_buckets_peak_, index.num_buckets());
}

KarpMiller::CacheEntry* KarpMiller::PinCached(int state, size_t round) {
  auto it = succ_cache_.find(state);
  if (it == succ_cache_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  if (round != pin_round_) {
    pin_round_ = round;
    pinned_count_ = 0;
  }
  if (it->second.pinned_round != round) {
    it->second.pinned_round = round;
    ++pinned_count_;
  }
  return &it->second;
}

const std::vector<VassEdge>& KarpMiller::CacheSuccessors(
    int state, size_t round,
    const std::function<void(std::vector<VassEdge>*)>& commit) {
  if (CacheEntry* hit = PinCached(state, round)) {
    ++cache_hits_;
    return hit->edges;
  }
  ++cache_misses_;
  CacheEntry entry;
  commit(&entry.edges);
  lru_.push_front(state);
  entry.lru_pos = lru_.begin();
  entry.pinned_round = round;
  if (round != pin_round_) {
    pin_round_ = round;
    pinned_count_ = 0;
  }
  ++pinned_count_;
  auto it = succ_cache_.emplace(state, std::move(entry)).first;
  // Evict least-recently-used entries beyond the cap. Pinned entries
  // (their edge lists may still be read this round) cluster at the LRU
  // front, so tail pops are O(1); the pinned count bounds the scan when
  // a round holds more states than the cap.
  while (succ_cache_.size() > options_.succ_cache_capacity &&
         succ_cache_.size() > pinned_count_) {
    auto victim = succ_cache_.find(lru_.back());
    if (victim->second.pinned_round == round) break;  // only pins remain
    lru_.pop_back();
    succ_cache_.erase(victim);
  }
  return it->second.edges;
}

void KarpMiller::Build(const std::vector<int>& initial_states) {
  if (options_.num_shards > 1 && system_->SupportsConcurrentPrepare()) {
    BuildSharded(initial_states);
  } else {
    BuildSequential(initial_states);
  }
}

void KarpMiller::BuildSequential(const std::vector<int>& initial_states) {
  const bool prune = options_.prune_coverability;
  std::deque<int> worklist;
  // Per-node BFS round (pruning only): newcomers of the round being
  // processed may still be deactivated; everything older expands.
  std::vector<int> round;
  // The pruned path creates nodes directly: an exact duplicate is
  // always dominated and dropped before a node is made, so the
  // exact-match index_ could never hit — maintaining it would be a
  // dead marking-vector copy per node (the sharded merge skips its
  // shard indexes for the same reason).
  auto make_node = [&](int state, const std::vector<int64_t>& marking,
                       int parent, int64_t parent_label) {
    int id = static_cast<int>(nodes_.size());
    Node node;
    node.state = state;
    node.marking = marking_arena_.AddAuto(marking);
    node.parent = parent;
    node.parent_label = parent_label;
    nodes_.push_back(std::move(node));
    deactivated_.resize(nodes_.size(), 0);
    AntichainAbsorb(id);
    return id;
  };
  for (int s : initial_states) {
    int id;
    if (prune) {
      if (DominatorOf(s, MarkingView()) >= 0) continue;  // duplicate root
      id = make_node(s, {}, -1, -1);
      round.resize(nodes_.size(), 0);
    } else {
      bool created = false;
      id = InternNode(s, {}, -1, -1, &created);
      if (!created) continue;
    }
    worklist.push_back(id);
  }
  size_t step = 0;
  int cur_round = -1;
  // Successor-marking scratch, reused across all candidates: the
  // surviving value is copied into the arena, so nothing here needs an
  // owning vector per candidate.
  std::vector<int64_t> next;
  while (!worklist.empty()) {
    if (nodes_.size() > options_.max_nodes) {
      truncated_ = true;
      return;
    }
    int n = worklist.front();
    worklist.pop_front();
    if (prune) {
      if (round[static_cast<size_t>(n)] != cur_round) {
        // First node of a new round: everything interned from here on
        // is a next-round newcomer, eligible for deactivation.
        cur_round = round[static_cast<size_t>(n)];
        round_first_new_id_ = nodes_.size();
      }
      if (deactivated_[static_cast<size_t>(n)]) continue;
    }
    const int state = nodes_[n].state;
    // Copy: interning may invalidate references into nodes_, and a
    // later insertion may evict this cache entry.
    const std::vector<VassEdge> out = CacheSuccessors(
        state, ++step,
        [&](std::vector<VassEdge>* edges) { system_->Successors(state, edges); });
    // Ample-prefix partial-order reduction (options_.por): expand only
    // the leading `ample` edges, and only if at least one of them lands
    // on a FRESH node — a folded stutter is covered by its dominator,
    // but a prefix with NO fresh target makes no progress, so skipping
    // the rest could defer the remaining transitions forever (the C3
    // discharge — see KarpMillerOptions::por). Keeping EVERY fresh
    // stutter (rather than just the first) matters empirically: the
    // parallel diagonals saturate each other's counters to ω sooner,
    // and the ω-rich full expansions then dominate what a serialized
    // staircase would re-explore at partially-saturated markings. A
    // prefix that already spans every edge reduces nothing, so it is
    // treated as 0.
    size_t ample = 0;
    if (options_.por) {
      int a = system_->AmplePrefix(state);
      if (a > 0 && static_cast<size_t>(a) < out.size()) {
        ample = static_cast<size_t>(a);
      }
    }
    bool ample_active = ample > 0;
    bool ample_fresh = false;
    for (size_t i = 0; i < out.size(); ++i) {
      if (ample_active && i == ample) {
        if (ample_fresh) {
          // Some prefix edge made progress: skip the remaining
          // successors — the ample set stands in for them.
          ample_reduced_successors_ += out.size() - ample;
          break;
        }
        // Every stutter folded or was disabled: expand fully.
        ample_active = false;
        ++ample_full_expansions_;
      }
      const VassEdge& e = out[i];
      if (!SuccessorMarking(n, e.target, e.delta, &next)) {
        // A disabled prefix edge (impossible for insert-only stutters
        // by the AmplePrefix contract) simply contributes no fresh
        // node; the sharded replay sees the same ordinal gap.
        continue;
      }
      if (prune) {
        int dom = DominatorOf(e.target, MarkingView(next));
        if (dom >= 0) {
          if (ample_active &&
              !marking::Equal(MarkingView(next), nodes_[dom].marking)) {
            // A STRICTLY dominated stutter is progress too: deferring
            // to the strictly larger node ascends the marking order,
            // so no deferral cycle can form (only equal folds — the
            // saturation points — can close one and force the full
            // expansion below).
            ample_fresh = true;
          }
          // Dropped successor: keep the transition as a cover-edge to
          // the dominating node — the action is real, only its target
          // marking was folded into the (larger) antichain entry. A
          // folded PREFIX edge stays covered the same way: the
          // dominator's expansion stands in for the stutter target's.
          nodes_[n].edges.push_back(Edge{dom, e.label, e.delta,
                                         /*cover=*/true});
          ++cover_edges_;
          ++pruned_successors_;
          continue;
        }
        int child = make_node(e.target, next, n, e.label);
        if (ample_active) ample_fresh = true;
        round.resize(nodes_.size(), cur_round + 1);
        nodes_[n].edges.push_back(Edge{child, e.label, e.delta});
        worklist.push_back(child);
        continue;
      }
      bool created = false;
      int child = InternNode(e.target, next, n, e.label, &created);
      nodes_[n].edges.push_back(Edge{child, e.label, e.delta});
      if (created) {
        if (ample_active) ample_fresh = true;
        worklist.push_back(child);
      }
    }
  }
}

// Sharded exploration proceeds in BFS rounds over the global frontier;
// each round runs four phases, PIPELINED across two team barriers:
//   P  PrepareSuccessors for the round's distinct uncached states —
//      concurrent, work shared through an atomic cursor; each finished
//      token raises a per-state ready flag;
//   C  CommitSuccessors serially in frontier (node id) order — the
//      exact first-encounter order of the sequential explorer, so the
//      system's internal numbering is schedule-independent. The
//      coordinator runs C CONCURRENTLY WITH P: a commit of a DISTINCT
//      state starts as soon as that state's prepare completes (commit
//      order itself never changes — the loop still walks the frontier
//      in order), and a commit blocked on an unready token first
//      steals prepare work before parking on the ready flag. Because
//      commits mutate system state that in-flight prepares read (see
//      prep_commit_rw), each PrepareSuccessors call holds a shared
//      lock and each CommitSuccessors call an exclusive one — taken
//      only AFTER the token is ready, never while stealing prepares,
//      so the writer cannot deadlock against the readers it waits on;
//   E  expansion: workers expand frontier nodes (own shard first, then
//      stealing), apply + ω-accelerate markings against the finalized
//      ancestry, and route each candidate to the shard owning its
//      (state, marking) key through a bounded queue — a worker whose
//      push finds a full queue drains its own inbound queue, which
//      bounds memory without deadlock; each shard then sorts its
//      received candidates by (parent, ordinal) and dedups them
//      against its locally-owned slice of the node index;
//   M  merge: the coordinator materializes the round's new nodes and
//      edges in global (parent, ordinal) order — the sequential
//      creation order — so node numbering, markings, edges and labels
//      are identical to the single-shard graph, node for node.
void KarpMiller::BuildSharded(const std::vector<int>& initial_states) {
  const int num_shards = options_.num_shards;
  const bool prune = options_.prune_coverability;
  ShardMap shard_map(num_shards);

  // Candidates cross shards in batches: per-candidate queue traffic
  // (one mutex round-trip each) dominated the exchange on wide rounds.
  using CandidateBatch = std::vector<Candidate>;
  constexpr size_t kBatch = 128;
  struct Shard {
    std::unordered_map<NodeKey, int, IdVectorHash> index;
    std::vector<int> frontier;           // owned node ids, ascending
    std::vector<Candidate> received;     // this round's candidates
    std::vector<NodeKey> pending_keys;   // this round's new keys
    std::vector<int> pending_final;      // pending index -> node id
    std::unique_ptr<BoundedQueue<CandidateBatch>> queue;
  };
  std::vector<Shard> shards(static_cast<size_t>(num_shards));
  for (Shard& s : shards) {
    s.queue = std::make_unique<BoundedQueue<CandidateBatch>>(256);
  }
  // Producer-side outboxes, one row per producer (workers + the
  // coordinator at row num_shards), one slot per destination shard.
  std::vector<std::vector<CandidateBatch>> outboxes(
      static_cast<size_t>(num_shards) + 1,
      std::vector<CandidateBatch>(static_cast<size_t>(num_shards)));

  // Seed roots exactly like the sequential explorer; equal keys always
  // land in one shard, so per-shard dedup is global dedup. Pruned
  // builds dedup through the antichain (same call the sequential
  // explorer makes, keeping the probe counters shard-count-invariant);
  // the per-shard indexes are unused under pruning.
  for (int st : initial_states) {
    NodeKey key{st, {}};
    Shard& owner = shards[shard_map.ShardOf(st, key.second)];
    if (prune) {
      if (DominatorOf(st, MarkingView()) >= 0) continue;  // duplicate root
    } else if (owner.index.find(key) != owner.index.end()) {
      continue;
    }
    int id = static_cast<int>(nodes_.size());
    Node node;
    node.state = st;
    nodes_.push_back(std::move(node));
    owner.frontier.push_back(id);
    if (prune) {
      deactivated_.resize(nodes_.size(), 0);
      AntichainAbsorb(id);
    } else {
      owner.index.emplace(std::move(key), id);
    }
  }

  // Round context shared with the worker team (rebuilt per round by
  // the coordinator between barriers).
  std::vector<int> prep_states;
  std::unordered_map<int, size_t> prep_index;
  std::vector<std::unique_ptr<VassSystem::Prepared>> prep_tokens;
  std::atomic<size_t> prep_cursor{0};
  // Per-prepare completion flags (allocated per round before barrier
  // A; a vector of atomics cannot be resized). The release-store on a
  // flag publishes its token to the coordinator's acquire-load, and
  // the store happens under prep_mutex so the coordinator's condition-
  // variable wait cannot miss the final wakeup.
  std::unique_ptr<std::atomic<char>[]> prep_ready;
  std::mutex prep_mutex;
  std::condition_variable prep_cv;
  // Prepares overlap the pipelined commits, but the system's commit
  // path mutates structures concurrent prepares read (e.g. TaskVass
  // interns successor STATES at commit while prepares snapshot their
  // own state row). Prepares hold this shared, commits exclusive:
  // each commit interleaves between in-flight prepares instead of
  // waiting for the whole phase — the old barrier's fence shrunk to a
  // per-call lock. Child builds nested inside a prepare lock only
  // their own (descendant) explorers, so lock order is acyclic.
  std::shared_mutex prep_commit_rw;
  std::vector<std::atomic<size_t>> frontier_cursors(
      static_cast<size_t>(num_shards));
  std::atomic<int> producers_done{0};
  bool done = false;
  Barrier barrier(num_shards + 1);

  // Worker ids: 0..num_shards-1 are team workers (own the same-numbered
  // shard's inbound queue), kCoordinator produces without an own queue,
  // kInline marks single-threaded rounds where direct pushes are safe.
  constexpr int kCoordinator = -1;
  constexpr int kInline = -2;
  auto drain_own = [&](int w) {
    bool progress = false;
    CandidateBatch batch;
    while (shards[w].queue->TryPop(&batch)) {
      progress = true;
      for (Candidate& c : batch) {
        shards[w].received.push_back(std::move(c));
      }
    }
    return progress;
  };
  auto flush_outbox = [&](int w, int dest) {
    CandidateBatch& box = outboxes[w >= 0 ? w : num_shards][dest];
    if (box.empty()) return;
    while (!shards[dest].queue->TryPush(std::move(box))) {
      // Make progress on the own inbound queue when possible; when
      // there is nothing useful to do, park on the destination's
      // not-full condition instead of busy-spinning (the destination's
      // owner never parks while its own queue is full, so the wait
      // chain is acyclic and every TryPop wakes us).
      if (w < 0 || !drain_own(w)) {
        shards[dest].queue->WaitNotFull();
      }
    }
    box = CandidateBatch();
    box.reserve(kBatch);
  };
  auto emit = [&](int w, Candidate c) {
    // Pruned builds used to pre-filter dominated candidates here
    // against the round-frozen antichain. With cover-edge recording
    // every dominated candidate must instead reach the coordinator's
    // merge: its cover-edge target is whatever the LIVE antichain holds
    // at the candidate's global rank (the sequential explorer's exact
    // decision point), which only the rank-order replay can know.
    int dest = shard_map.ShardOf(c.target_state, c.marking);
    if (dest == w || w == kInline) {
      shards[dest].received.push_back(std::move(c));
      return;
    }
    CandidateBatch& box = outboxes[w >= 0 ? w : num_shards][dest];
    box.push_back(std::move(c));
    if (box.size() >= kBatch) flush_outbox(w, dest);
  };
  auto expand_node = [&](int w, int n) {
    const int state = nodes_[n].state;
    // Present and pinned by the commit phase; the map is read-only
    // during expansion.
    const std::vector<VassEdge>& edges =
        succ_cache_.find(state)->second.edges;
    for (size_t i = 0; i < edges.size(); ++i) {
      const VassEdge& e = edges[i];
      Candidate c;
      if (!SuccessorMarking(n, e.target, e.delta, &c.marking)) continue;
      c.parent = n;
      c.ordinal = static_cast<int>(i);
      c.target_state = e.target;
      c.label = e.label;
      c.delta = e.delta;
      emit(w, std::move(c));
    }
  };
  auto run_prepare = [&](size_t i) {
    {
      std::shared_lock<std::shared_mutex> read_lock(prep_commit_rw);
      prep_tokens[i] = system_->PrepareSuccessors(prep_states[i]);
    }
    {
      // Prepares are the round's expensive units, so the per-unit lock
      // is noise; holding it across the store is what closes the
      // check-then-wait race with WaitPrepared below.
      std::lock_guard<std::mutex> lock(prep_mutex);
      prep_ready[i].store(1, std::memory_order_release);
    }
    prep_cv.notify_all();
  };
  auto phase_prepare = [&]() {
    size_t i;
    while ((i = prep_cursor.fetch_add(1)) < prep_states.size()) {
      run_prepare(i);
    }
  };
  // Coordinator-only: returns once prep_tokens[idx] is ready,
  // preferring to steal an unclaimed prepare over parking — the
  // commit pipeline keeps the coordinator productive while workers
  // chew on the state it needs next. Once the cursor is exhausted
  // every unit is claimed by SOME thread, so the awaited flag is
  // guaranteed to be raised and the wait terminates.
  auto wait_prepared = [&](size_t idx) {
    while (!prep_ready[idx].load(std::memory_order_acquire)) {
      const size_t j = prep_cursor.fetch_add(1);
      if (j < prep_states.size()) {
        run_prepare(j);
        continue;
      }
      std::unique_lock<std::mutex> lock(prep_mutex);
      prep_cv.wait(lock, [&] {
        return prep_ready[idx].load(std::memory_order_acquire) != 0;
      });
    }
  };
  // Deterministic rank-order dedup of one shard's received candidates
  // against its locally-owned slice of the node index.
  auto dedup_shard = [&](Shard& shard) {
    std::sort(shard.received.begin(), shard.received.end(),
              CandidateRankLess);
    // Pruned builds resolve candidates in the merge's exact antichain
    // walk instead: a candidate can never alias an existing node there
    // (an exact duplicate is dominated and becomes a cover-edge), so
    // the per-shard index has nothing to contribute beyond the sort.
    if (prune) return;
    for (Candidate& c : shard.received) {
      NodeKey key{c.target_state, c.marking};
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        c.resolved = it->second;
        continue;
      }
      int p = static_cast<int>(shard.pending_keys.size());
      shard.pending_keys.push_back(key);
      shard.index.emplace(std::move(key), -(p + 2));
      c.resolved = -(p + 2);
    }
  };
  auto phase_expand = [&](int w) {
    // Own frontier first, then steal expansion work from other shards
    // (expansion is pure; routing keeps ownership intact).
    for (int offset = 0; offset < num_shards; ++offset) {
      int t = ((w < 0 ? 0 : w) + offset) % num_shards;
      size_t i;
      while ((i = frontier_cursors[t].fetch_add(1)) <
             shards[t].frontier.size()) {
        expand_node(w, shards[t].frontier[i]);
      }
    }
    for (int dest = 0; dest < num_shards; ++dest) flush_outbox(w, dest);
    producers_done.fetch_add(1);
    // The producers_done transition is part of every drainer's exit
    // condition, so wake all parked drainers to re-check it.
    for (Shard& s : shards) s.queue->Nudge();
    if (w < 0) return;
    // Drain until every producer (workers + coordinator) finished and
    // the own queue is empty, then dedup in deterministic rank order.
    // Idle drainers park on their queue's not-empty condition; TryPush
    // and the Nudge above provide the wakeups. The epoch is read BEFORE
    // the producers_done check: the final producer's increment
    // happens-before its Nudge, so if the check missed the increment,
    // the Nudge's epoch bump postdates our read and WaitNotEmpty
    // returns immediately — the check→wait window cannot lose the last
    // wakeup.
    for (;;) {
      size_t epoch = shards[w].queue->Epoch();
      if (producers_done.load() >= num_shards + 1) break;
      if (!drain_own(w)) {
        shards[w].queue->WaitNotEmpty(epoch);
      }
    }
    drain_own(w);
    dedup_shard(shards[w]);
  };
  auto worker_main = [&](int w) {
    for (;;) {
      barrier.ArriveAndWait();  // A: round published
      if (done) return;
      phase_prepare();
      // B doubles as the commit fence: the coordinator arrives only
      // after the last commit (commits pipeline against the prepares
      // above), so its release implies the cache and system state are
      // frozen for expansion.
      barrier.ArriveAndWait();  // B: prepares AND commits done
      phase_expand(w);
      barrier.ArriveAndWait();  // D: candidates dedup'd
    }
  };

  // The worker team is spawned lazily: narrow rounds (most child-query
  // graphs never leave this regime) run inline with zero barrier
  // traffic, and the team only exists once a round is wide enough to
  // pay for coordination. Inline rounds execute the identical
  // algorithm single-threaded, so the produced graph is unchanged.
  std::vector<std::thread> team;
  auto spawn_team = [&]() {
    if (!team.empty()) return;
    team.reserve(static_cast<size_t>(num_shards));
    for (int w = 0; w < num_shards; ++w) team.emplace_back(worker_main, w);
  };

  std::vector<int> frontier_all;
  size_t round = 0;
  for (;;) {
    frontier_all.clear();
    for (const Shard& s : shards) {
      frontier_all.insert(frontier_all.end(), s.frontier.begin(),
                          s.frontier.end());
    }
    std::sort(frontier_all.begin(), frontier_all.end());
    if (frontier_all.empty() || nodes_.size() > options_.max_nodes) {
      truncated_ = truncated_ || !frontier_all.empty();
      if (!team.empty()) {
        done = true;
        barrier.ArriveAndWait();  // release workers into exit
      }
      break;
    }
    ++round;
    // Distinct uncached frontier states in first-node order; existing
    // entries are pinned so commits cannot evict edge lists this round
    // still needs.
    prep_states.clear();
    prep_index.clear();
    for (int n : frontier_all) {
      int state = nodes_[n].state;
      if (PinCached(state, round) != nullptr) continue;
      if (prep_index.find(state) != prep_index.end()) continue;
      prep_index.emplace(state, prep_states.size());
      prep_states.push_back(state);
    }
    // Narrow rounds run inline: a round pays 4 barrier cycles across
    // num_shards+1 threads, so it must bring at least a worker's worth
    // of preparable states (the expensive phase) or a frontier wide
    // enough for expansion parallelism to matter.
    const bool parallel_round =
        prep_states.size() >= static_cast<size_t>(std::max(2, num_shards)) ||
        frontier_all.size() >= 256;
    if (parallel_round) {
      spawn_team();
      prep_tokens.clear();
      prep_tokens.resize(prep_states.size());
      prep_ready.reset(new std::atomic<char>[prep_states.size()]());
      prep_cursor.store(0);
      for (auto& c : frontier_cursors) c.store(0);
      producers_done.store(0);

      barrier.ArriveAndWait();  // A

      // Pipelined commit phase: commits stay serial and in frontier
      // order (the sequential explorer's first-encounter order), but
      // each one starts as soon as ITS state's prepare lands instead
      // of after the whole prepare phase — full-team barrier between
      // P and C is gone. Blocked commits steal prepare work first.
      for (int n : frontier_all) {
        const int state = nodes_[n].state;
        CacheSuccessors(state, round, [&](std::vector<VassEdge>* edges) {
          const size_t idx = prep_index.at(state);
          wait_prepared(idx);  // may steal prepares; takes shared locks
          std::unique_lock<std::shared_mutex> write_lock(prep_commit_rw);
          system_->CommitSuccessors(state, std::move(prep_tokens[idx]),
                                    edges);
        });
      }
      barrier.ArriveAndWait();          // B (commits done — see worker_main)
      phase_expand(kCoordinator);       // coordinator helps expanding
      barrier.ArriveAndWait();          // D
    } else {
      for (int n : frontier_all) {
        const int state = nodes_[n].state;
        CacheSuccessors(state, round, [&](std::vector<VassEdge>* edges) {
          system_->Successors(state, edges);
        });
      }
      for (const Shard& s : shards) {
        for (int n : s.frontier) expand_node(kInline, n);
      }
      for (Shard& s : shards) dedup_shard(s);
    }

    // Merge: walk all shards' (sorted) candidates in global rank order.
    // Pre-size per-parent edge lists first: parents receive their edges
    // interleaved across shards during the k-way walk, and the repeated
    // push_back reallocations were a measurable slice of this
    // coordinator-only phase. Every candidate appends exactly one edge
    // to its parent: a real edge, or (pruned builds) a cover-edge when
    // the exact filter below folds it into a dominator.
    {
      std::unordered_map<int, size_t> per_parent;
      for (const Shard& s : shards) {
        for (const Candidate& c : s.received) ++per_parent[c.parent];
      }
      for (const auto& [parent, count] : per_parent) {
        nodes_[parent].edges.reserve(count);
      }
    }
    for (Shard& s : shards) {
      s.pending_final.assign(s.pending_keys.size(), -1);
    }
    std::vector<size_t> pos(static_cast<size_t>(num_shards), 0);
    std::vector<std::vector<int>> next_frontier(
        static_cast<size_t>(num_shards));
    if (prune) round_first_new_id_ = nodes_.size();
    std::vector<int> round_new_nodes;
    // Ample-prefix replay (options_.por), mirroring the sequential
    // explorer edge for edge. Workers emit EVERY enabled candidate, so
    // the rank-order walk below sees the same per-parent edge sequence
    // the sequential loop iterates, and replays the identical decision:
    // expand only the leading AmplePrefix(parent) edges, and only if
    // at least one of them lands on a fresh node; otherwise revert to
    // full expansion. A candidate past a committed prefix is simply
    // dropped (the sequential loop `break`s there).
    int por_parent = -1;
    size_t por_ample = 0;      // clamped prefix length of por_parent
    bool por_active = false;   // prefix decision still pending
    bool por_fresh = false;    // some prefix candidate created a node
    bool por_skipping = false; // prefix committed: dropping the rest
    auto por_edge_count = [&](int parent) -> size_t {
      // Pinned for the whole round by the commit phase.
      return succ_cache_.find(nodes_[parent].state)->second.edges.size();
    };
    auto por_finish_parent = [&]() {
      if (por_parent < 0) return;
      if (por_active && !por_skipping) {
        // No candidate past the prefix arrived (every remaining edge
        // was disabled): the sequential loop still reaches its
        // boundary at i == ample and decides there.
        if (por_fresh) {
          ample_reduced_successors_ +=
              por_edge_count(por_parent) - por_ample;
        } else {
          ++ample_full_expansions_;
        }
      }
      por_parent = -1;
      por_active = false;
      por_fresh = false;
      por_skipping = false;
    };
    for (;;) {
      int best = -1;
      for (int s = 0; s < num_shards; ++s) {
        if (pos[s] >= shards[s].received.size()) continue;
        if (best == -1 ||
            CandidateRankLess(shards[s].received[pos[s]],
                              shards[best].received[pos[best]])) {
          best = s;
        }
      }
      if (best == -1) break;
      Candidate& c = shards[best].received[pos[best]++];
      if (options_.por) {
        if (c.parent != por_parent) {
          por_finish_parent();
          por_parent = c.parent;
          por_fresh = false;
          por_skipping = false;
          int a = system_->AmplePrefix(nodes_[c.parent].state);
          const size_t edge_count = por_edge_count(c.parent);
          por_ample = (a > 0 && static_cast<size_t>(a) < edge_count)
                          ? static_cast<size_t>(a)
                          : 0;
          por_active = por_ample > 0;
        }
        if (por_skipping) continue;
        if (por_active && static_cast<size_t>(c.ordinal) >= por_ample) {
          // Prefix boundary: the same decision the sequential loop
          // takes at i == ample. Disabled prefix edges (ordinal gaps)
          // need no special handling — they just never contributed a
          // fresh node.
          if (por_fresh) {
            ample_reduced_successors_ +=
                por_edge_count(c.parent) - por_ample;
            por_skipping = true;
            continue;
          }
          por_active = false;
          ++ample_full_expansions_;
        }
      }
      if (prune) {
        // Exact filter, replayed in the sequential explorer's order:
        // a dominated candidate becomes a cover-edge to the live
        // antichain's dominator at this exact rank — the same target
        // the single-shard build records — and survivors intern +
        // absorb exactly as the single-shard build would.
        int dom = DominatorOf(c.target_state, MarkingView(c.marking));
        if (dom >= 0) {
          if (por_active &&
              !marking::Equal(MarkingView(c.marking),
                              nodes_[dom].marking)) {
            // Strictly dominated stutter: progress, exactly as the
            // sequential loop records at this rank.
            por_fresh = true;
          }
          // A folded prefix edge stays a cover-edge like any other:
          // the dominator's expansion stands in for the stutter
          // target's, so no revert is needed (the fresh-progress check
          // at the boundary is the C3 discharge).
          nodes_[c.parent].edges.push_back(Edge{dom, c.label,
                                                std::move(c.delta),
                                                /*cover=*/true});
          ++cover_edges_;
          ++pruned_successors_;
          continue;
        }
        if (por_active) por_fresh = true;
        int id = static_cast<int>(nodes_.size());
        Node node;
        node.state = c.target_state;
        node.marking = marking_arena_.AddAuto(c.marking);
        node.parent = c.parent;
        node.parent_label = c.label;
        nodes_.push_back(std::move(node));
        deactivated_.resize(nodes_.size(), 0);
        nodes_[c.parent].edges.push_back(Edge{id, c.label,
                                              std::move(c.delta)});
        AntichainAbsorb(id);
        round_new_nodes.push_back(id);
        continue;
      }
      int target;
      if (c.resolved >= 0) {
        target = c.resolved;
      } else {
        int p = -c.resolved - 2;
        int& final_id = shards[best].pending_final[p];
        if (final_id == -1) {
          // The sequential InternNode would report created=true here —
          // a fresh prefix node is the progress the boundary check
          // requires. Duplicates (this round's or older) just fail to
          // contribute.
          if (por_active) por_fresh = true;
          final_id = static_cast<int>(nodes_.size());
          Node node;
          node.state = c.target_state;
          node.marking = marking_arena_.AddAuto(c.marking);
          node.parent = c.parent;
          node.parent_label = c.label;
          nodes_.push_back(std::move(node));
          next_frontier[best].push_back(final_id);
        }
        target = final_id;
      }
      nodes_[c.parent].edges.push_back(Edge{target, c.label,
                                            std::move(c.delta)});
    }
    por_finish_parent();
    if (prune) {
      // Newcomers deactivated later in the same walk never reach a
      // frontier — their subtree is cut before it exists.
      for (int id : round_new_nodes) {
        if (deactivated_[static_cast<size_t>(id)]) continue;
        int owner = shard_map.ShardOf(nodes_[id].state, nodes_[id].marking);
        next_frontier[static_cast<size_t>(owner)].push_back(id);
      }
    }
    for (int s = 0; s < num_shards; ++s) {
      Shard& shard = shards[s];
      for (size_t p = 0; p < shard.pending_keys.size(); ++p) {
        if (shard.pending_final[p] == -1) {
          // Every candidate referencing this key was dropped by the
          // ample-prefix replay: no node exists, so the key must leave
          // the index (a -1 entry would poison later-round dedup).
          shard.index.erase(shard.pending_keys[p]);
        } else {
          shard.index[shard.pending_keys[p]] = shard.pending_final[p];
        }
      }
      shard.pending_keys.clear();
      shard.received.clear();
      shard.frontier = std::move(next_frontier[s]);
    }
  }
  for (std::thread& t : team) t.join();
}

int KarpMiller::FindNode(const std::function<bool(int)>& pred) const {
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (pred(nodes_[n].state)) return static_cast<int>(n);
  }
  return -1;
}

std::vector<int64_t> KarpMiller::PathLabels(int n) const {
  std::vector<int64_t> labels;
  for (int cur = n; cur != -1 && nodes_[cur].parent != -1;
       cur = nodes_[cur].parent) {
    labels.push_back(nodes_[cur].parent_label);
  }
  std::reverse(labels.begin(), labels.end());
  return labels;
}

size_t KarpMiller::TotalEdges() const {
  size_t total = 0;
  for (const Node& n : nodes_) total += n.edges.size();
  return total;
}

}  // namespace has
