#include "vass/dominance_index.h"

namespace has {

void DominanceIndex::Insert(int node, MarkingView marking) {
  Entry e{node, marking, ExtendedSummary(marking), marking.size() <= 32};
  Bucket* bucket;
  if (IsWild(e.summary)) {
    bucket = &wild_;
  } else {
    auto [it, inserted] = bucket_of_.try_emplace(e.summary, buckets_.size());
    if (inserted) {
      buckets_.emplace_back();
      buckets_.back().key = e.summary;
    }
    bucket = &buckets_[it->second];
  }
  assert(bucket->entries.empty() || bucket->entries.back().node < node);
  bucket->entries.push_back(e);
  ++size_;
}

int DominanceIndex::DominatorOf(const MarkingView& m, Stats* stats) const {
  const MarkingSummary ms = ExtendedSummary(m);
  const bool m_exact = m.size() <= 32;
  const uint32_t m_nonzero = static_cast<uint32_t>(ms.support);
  int best = -1;
  for (const Bucket& bucket : buckets_) {
    // Rank cutoff: entries are ascending by id, so a bucket whose
    // first id already exceeds the best dominator in hand cannot
    // improve the minimum — skip it before even the summary test.
    if (best >= 0 && bucket.entries.front().node > best) continue;
    ++stats->bucket_probes;
    if (!SummaryMayDominate(ms, bucket.key)) {
      stats->skipped += bucket.entries.size();
      continue;
    }
    // ω-cover fast accept: every nonzero dimension of m meets an ω of
    // the bucket's (shared, exact) summary — m ≤ entry is proven for
    // every exact entry without a payload compare.
    const bool omega_accept =
        m_exact &&
        (m_nonzero & ~static_cast<uint32_t>(bucket.key.support >> 32)) == 0;
    for (const Entry& e : bucket.entries) {
      if (best >= 0 && e.node > best) break;
      if (omega_accept && e.exact) {
        ++stats->skipped;
        best = e.node;
        break;  // ascending ids: first hit is this bucket's minimum
      }
      ++stats->payload_probes;
      if (DominanceLeq(m, e.marking)) {
        best = e.node;
        break;
      }
    }
  }
  if (!wild_.entries.empty() &&
      !(best >= 0 && wild_.entries.front().node > best)) {
    ++stats->bucket_probes;
    for (const Entry& e : wild_.entries) {
      if (best >= 0 && e.node > best) break;
      if (!SummaryMayDominate(ms, e.summary)) {
        ++stats->skipped;
        continue;
      }
      if (m_exact && e.exact &&
          (m_nonzero & ~static_cast<uint32_t>(e.summary.support >> 32)) ==
              0) {
        ++stats->skipped;
        best = e.node;
        break;
      }
      ++stats->payload_probes;
      if (DominanceLeq(m, e.marking)) {
        best = e.node;
        break;
      }
    }
  }
  return best;
}

void DominanceIndex::EraseBucket(size_t bi) {
  bucket_of_.erase(buckets_[bi].key);
  if (bi + 1 != buckets_.size()) {
    buckets_[bi] = std::move(buckets_.back());
    bucket_of_[buckets_[bi].key] = bi;
  }
  buckets_.pop_back();
}

}  // namespace has
