#include "vass/vass.h"

#include <algorithm>

#include "common/status.h"
#include "common/strings.h"

namespace has {

int64_t ExplicitVass::AddAction(int from, Delta delta, int to) {
  HAS_CHECK(from >= 0 && from < num_states());
  HAS_CHECK(to >= 0 && to < num_states());
  static_assert(sizeof(int64_t) >= sizeof(size_t) ||
                    sizeof(int64_t) == 8,
                "label packing");
  int64_t label =
      (static_cast<int64_t>(from) << 32) |
      static_cast<int64_t>(adj_[from].size());
  adj_[from].push_back(VassEdge{to, std::move(delta), label});
  return label;
}

void ExplicitVass::Successors(int state, std::vector<VassEdge>* out) {
  out->insert(out->end(), adj_[state].begin(), adj_[state].end());
}

namespace marking {

int64_t Get(const std::vector<int64_t>& m, int d) {
  return d < static_cast<int>(m.size()) ? m[d] : 0;
}

void Set(std::vector<int64_t>* m, int d, int64_t v) {
  if (d >= static_cast<int>(m->size())) m->resize(d + 1, 0);
  (*m)[d] = v;
}

bool Apply(const std::vector<int64_t>& m, const Delta& delta,
           std::vector<int64_t>* out) {
  *out = m;
  for (const auto& [d, change] : delta) {
    int64_t cur = Get(*out, d);
    if (cur == kOmega) continue;
    int64_t next = cur + change;
    if (next < 0) return false;
    Set(out, d, next);
  }
  // Trim trailing zeros so equal markings compare equal structurally.
  while (!out->empty() && out->back() == 0) out->pop_back();
  return true;
}

bool LessEq(const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
  size_t n = std::max(a.size(), b.size());
  for (size_t d = 0; d < n; ++d) {
    int64_t av = Get(a, static_cast<int>(d));
    int64_t bv = Get(b, static_cast<int>(d));
    if (bv == kOmega) continue;
    if (av == kOmega) return false;
    if (av > bv) return false;
  }
  return true;
}

bool Equal(const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
  size_t n = std::max(a.size(), b.size());
  for (size_t d = 0; d < n; ++d) {
    if (Get(a, static_cast<int>(d)) != Get(b, static_cast<int>(d))) {
      return false;
    }
  }
  return true;
}

std::string ToString(const std::vector<int64_t>& m) {
  std::vector<std::string> parts;
  for (int64_t v : m) parts.push_back(v == kOmega ? "w" : StrCat(v));
  return StrCat("(", StrJoin(parts, ","), ")");
}

}  // namespace marking

}  // namespace has
