#include "vass/vass.h"

#include "common/status.h"

namespace has {

int64_t ExplicitVass::AddAction(int from, Delta delta, int to) {
  HAS_CHECK(from >= 0 && from < num_states());
  HAS_CHECK(to >= 0 && to < num_states());
  static_assert(sizeof(int64_t) >= sizeof(size_t) ||
                    sizeof(int64_t) == 8,
                "label packing");
  int64_t label =
      (static_cast<int64_t>(from) << 32) |
      static_cast<int64_t>(adj_[from].size());
  adj_[from].push_back(VassEdge{to, std::move(delta), label});
  return label;
}

void ExplicitVass::Successors(int state, std::vector<VassEdge>* out) {
  out->insert(out->end(), adj_[state].begin(), adj_[state].end());
}

}  // namespace has
