// Repeated state reachability (lasso detection) on a Karp–Miller
// coverability graph. A VASS state q is repeatedly reachable iff the
// graph has a reachable node n carrying q that lies on a closed walk
// whose net effect is ≥ 0 on every ω-coordinate (exact coordinates
// return to the same value around any closed walk by construction).
// Soundness and completeness of the criterion follow from the pumping
// property of Karp–Miller trees and Dickson's lemma (cf. Habermehl's
// coverability-graph model checking, the paper's reference [33]).
//
// The closed-walk search is exhaustive up to the configured effect
// bound and step budget — exact for every system in this repository
// and a documented knob for adversarial ones (DESIGN.md §2.3).
#ifndef HAS_VASS_REPEATED_H_
#define HAS_VASS_REPEATED_H_

#include <functional>
#include <optional>
#include <vector>

#include "vass/karp_miller.h"

namespace has {

struct LassoWitness {
  int node = -1;                    ///< accepting coverability node
  std::vector<int64_t> stem_labels; ///< tree path from a root to `node`
  std::vector<int64_t> loop_labels; ///< closed walk through `node`
};

struct RepeatedReachabilityOptions {
  /// Per-ω-dimension clamp on the tracked net effect during the closed
  /// walk search (values saturate; larger = more complete).
  int64_t effect_bound = 256;
  /// Budget on search steps per SCC.
  size_t max_steps = 1 << 22;
};

/// Finds a lasso through a node whose VASS state satisfies
/// `accepting`; nullopt if none exists (within the search bounds).
std::optional<LassoWitness> FindAcceptingLasso(
    const KarpMiller& graph, const std::function<bool(int)>& accepting,
    const RepeatedReachabilityOptions& options = {});

}  // namespace has

#endif  // HAS_VASS_REPEATED_H_
