// Repeated state reachability (lasso detection) on a Karp–Miller
// coverability graph — full or antichain-pruned. On a FULL graph a
// VASS state q is repeatedly reachable iff the graph has a reachable
// node n carrying q that lies on a closed walk whose net effect is
// ≥ 0 on every ω-coordinate (exact coordinates return to the same
// value around any closed walk by construction). Soundness and
// completeness of the criterion follow from the pumping property of
// Karp–Miller trees and Dickson's lemma (cf. Habermehl's
// coverability-graph model checking, the paper's reference [33]).
//
// On a PRUNED graph the real edges form a forest; closed-walk
// structure lives in the recorded cover-edges (KarpMiller::Edge::
// cover), which jump to a node whose marking is ≥ the one the unpruned
// graph would have carried. The jump widens the recorded marking,
// so exact coordinates no longer return to the same value for free:
// within an SCC containing cover-edges the search therefore tracks
// the net delta effect on EVERY dimension the SCC's edges touch and
// demands
//   - net ≥ 0 on all of them (so laps never drain a counter), and
//   - prefix sums ≥ -marking[d] on the exact dimensions (so one lap is
//     actually enabled from the start node's exact counter values).
// Sound: such a walk replays forever from the start node's marking
// (exact coordinates only grow lap over lap; ω-coordinates are pumped
// high enough by the stem). Complete: the image of a full-graph lasso
// under the dominator mapping is such a walk — real deltas are kept
// verbatim by drop cover-edges and retire cover-edges add zero-delta
// label-less hops, so its net is 0 on exact and ≥ 0 on ω dimensions.
// Cover-free SCCs (every SCC of a full graph) keep the cheaper
// classical criterion.
//
// The closed-walk search is exhaustive up to the configured effect
// bound and step budget — exact for every system in this repository
// and a documented knob for adversarial ones (DESIGN.md §2.3).
#ifndef HAS_VASS_REPEATED_H_
#define HAS_VASS_REPEATED_H_

#include <functional>
#include <optional>
#include <vector>

#include "vass/karp_miller.h"

namespace has {

struct LassoWitness {
  int node = -1;                    ///< accepting coverability node
  std::vector<int64_t> stem_labels; ///< tree path from a root to `node`
  /// Closed walk through `node`. Every entry is a real transition
  /// label: a drop cover-edge contributes the dropped transition's
  /// label (the replay then continues from the coverer — same VASS
  /// state, larger marking), and label-less retire cover-edges
  /// contribute nothing.
  std::vector<int64_t> loop_labels;
};

struct RepeatedReachabilityOptions {
  /// Per-ω-dimension clamp on the tracked net effect during the closed
  /// walk search (values saturate; larger = more complete).
  int64_t effect_bound = 256;
  /// Budget on search steps per SCC.
  size_t max_steps = 1 << 22;
};

/// Finds a lasso through a node whose VASS state satisfies
/// `accepting`; nullopt if none exists (within the search bounds).
/// If no lasso was found AND some closed-walk search was cut on its
/// final deepening round — it ran out of its step budget, or a path
/// was killed purely because the effect clamp could not track a dip
/// past ±effect_bound — `*budget_exhausted` is set: the nullopt is
/// then "not found within budget", not "none exists", and callers
/// deciding a verdict must degrade it (the verifier folds this into
/// RtStats::truncated → INCONCLUSIVE rather than silently reporting
/// HOLDS).
std::optional<LassoWitness> FindAcceptingLasso(
    const KarpMiller& graph, const std::function<bool(int)>& accepting,
    const RepeatedReachabilityOptions& options = {},
    bool* budget_exhausted = nullptr);

}  // namespace has

#endif  // HAS_VASS_REPEATED_H_
