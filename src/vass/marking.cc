#include "vass/marking.h"

#include <algorithm>

#include "common/strings.h"

namespace has {

bool MarkingViewEqualMixed(const MarkingView& a, const MarkingView& b) {
  const MarkingView& sp = a.sparse() ? a : b;
  const MarkingView& de = a.sparse() ? b : a;
  if (de.size() != sp.size()) return false;
  const int64_t* pairs = sp.data();
  const size_t n = sp.num_pairs();
  size_t pair = 0;
  for (size_t d = 0; d < de.size(); ++d) {
    const int64_t dv = de.data()[d];
    if (pair < n && pairs[2 * pair] == static_cast<int64_t>(d)) {
      if (dv != pairs[2 * pair + 1]) return false;
      ++pair;
    } else if (dv != 0) {
      return false;
    }
  }
  return pair == n;
}

bool DominanceLeqSparse(const MarkingView& a, const MarkingView& b) {
  // Canonical widths: a wider than b fails immediately (a's last
  // dimension is nonzero against b's implicit 0).
  if (a.size() > b.size()) return false;
  if (a.sparse() && b.sparse()) {
    // Values are non-negative, so only a's support matters: merge-walk
    // b's pairs past each a pair; a nonzero a-dimension missing from
    // b's support compares against 0 and fails.
    const int64_t* pa = a.data();
    const int64_t* pb = b.data();
    const size_t na = a.num_pairs();
    const size_t nb = b.num_pairs();
    size_t j = 0;
    for (size_t i = 0; i < na; ++i) {
      const int64_t d = pa[2 * i];
      while (j < nb && pb[2 * j] < d) ++j;
      if (j == nb || pb[2 * j] != d) return false;  // b[d] == 0 < a[d]
      if (pa[2 * i + 1] > pb[2 * j + 1]) return false;
    }
    return true;
  }
  if (a.sparse()) {
    // Dense b: direct-index each of a's pairs.
    const int64_t* pa = a.data();
    const int64_t* db = b.data();
    for (size_t i = 0, n = a.num_pairs(); i < n; ++i) {
      const size_t d = static_cast<size_t>(pa[2 * i]);
      if (pa[2 * i + 1] > db[d]) return false;  // d < b.size() by width
    }
    return true;
  }
  // Dense a, sparse b: every dense dimension off b's support must be 0.
  const int64_t* da = a.data();
  const int64_t* pb = b.data();
  const size_t nb = b.num_pairs();
  size_t j = 0;
  for (size_t d = 0; d < a.size(); ++d) {
    if (j < nb && pb[2 * j] == static_cast<int64_t>(d)) {
      if (da[d] > pb[2 * j + 1]) return false;
      ++j;
    } else if (da[d] != 0) {
      return false;
    }
  }
  return true;
}

namespace marking {

int64_t Get(const std::vector<int64_t>& m, int d) {
  return d < static_cast<int>(m.size()) ? m[d] : 0;
}

void Set(std::vector<int64_t>* m, int d, int64_t v) {
  if (d >= static_cast<int>(m->size())) m->resize(d + 1, 0);
  (*m)[d] = v;
}

bool Apply(const std::vector<int64_t>& m, const Delta& delta,
           std::vector<int64_t>* out) {
  *out = m;
  for (const auto& [d, change] : delta) {
    int64_t cur = Get(*out, d);
    if (cur == kOmega) continue;
    int64_t next = cur + change;
    if (next < 0) return false;
    Set(out, d, next);
  }
  // Trim trailing zeros so equal markings compare equal structurally.
  while (!out->empty() && out->back() == 0) out->pop_back();
  return true;
}

bool ApplyView(const MarkingView& m, const Delta& delta,
               std::vector<int64_t>* out) {
  // Enabledness first, touching only the delta'd dimensions: the
  // running value of a dimension under the in-order application is its
  // base plus the changes of earlier delta entries on the same
  // dimension (deltas are tiny — a couple of entries — so the nested
  // scan is cheaper than any indexing structure). ω absorbs changes.
  const size_t k = delta.size();
  for (size_t i = 0; i < k; ++i) {
    const auto& [d, change] = delta[i];
    int64_t v = Get(m, d);
    if (v == kOmega) continue;
    for (size_t j = 0; j < i; ++j) {
      if (delta[j].first == d) v += delta[j].second;
    }
    if (v + change < 0) return false;
  }
  // One sizing decision, one copy, sparse patches, one canonical trim.
  size_t width = m.size();
  for (const auto& [d, change] : delta) {
    (void)change;
    width = std::max(width, static_cast<size_t>(d) + 1);
  }
  out->assign(width, 0);
  if (m.sparse()) {
    const int64_t* pairs = m.data();
    for (size_t i = 0, n = m.num_pairs(); i < n; ++i) {
      (*out)[static_cast<size_t>(pairs[2 * i])] = pairs[2 * i + 1];
    }
  } else {
    std::copy(m.data(), m.data() + m.size(), out->begin());
  }
  for (const auto& [d, change] : delta) {
    int64_t& v = (*out)[static_cast<size_t>(d)];
    if (v != kOmega) v += change;
  }
  while (!out->empty() && out->back() == 0) out->pop_back();
  return true;
}

bool LessEq(const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
  size_t n = std::max(a.size(), b.size());
  for (size_t d = 0; d < n; ++d) {
    int64_t av = Get(a, static_cast<int>(d));
    int64_t bv = Get(b, static_cast<int>(d));
    if (bv == kOmega) continue;
    if (av == kOmega) return false;
    if (av > bv) return false;
  }
  return true;
}

bool Equal(const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
  size_t n = std::max(a.size(), b.size());
  for (size_t d = 0; d < n; ++d) {
    if (Get(a, static_cast<int>(d)) != Get(b, static_cast<int>(d))) {
      return false;
    }
  }
  return true;
}

std::string ToString(const std::vector<int64_t>& m) {
  return ToString(MarkingView(m));
}

std::string ToString(const MarkingView& m) {
  std::vector<std::string> parts;
  for (int64_t v : m) parts.push_back(v == kOmega ? "w" : StrCat(v));
  return StrCat("(", StrJoin(parts, ","), ")");
}

}  // namespace marking
}  // namespace has
