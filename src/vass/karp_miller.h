// Karp–Miller coverability graph with ω-acceleration. Provides exact
// state (repeated) reachability for VASS per Section 4.2:
//   - a task VASS state q is reachable iff some coverability-graph node
//     carries q (state reachability / returning & blocking paths of
//     Lemma 21);
//   - repeated reachability (lasso paths) reduces to finding a
//     reachable accepting node lying on a closed walk of the graph
//     whose net effect is ≥ 0 on ω-coordinates (see repeated.h).
//
// The pumping property of Karp–Miller trees makes both directions
// sound: node markings are exact on non-ω coordinates and arbitrarily
// pumpable on ω ones.
#ifndef HAS_VASS_KARP_MILLER_H_
#define HAS_VASS_KARP_MILLER_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hashing.h"
#include "vass/vass.h"

namespace has {

struct KarpMillerOptions {
  /// Hard cap on coverability-graph nodes; exceeded => truncated().
  size_t max_nodes = 1 << 18;
};

class KarpMiller {
 public:
  explicit KarpMiller(VassSystem* system, KarpMillerOptions options = {});

  /// Explores the coverability graph from (s, 0̄) for each initial
  /// state s.
  void Build(const std::vector<int>& initial_states);

  bool truncated() const { return truncated_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int node_state(int n) const { return nodes_[n].state; }
  const std::vector<int64_t>& node_marking(int n) const {
    return nodes_[n].marking;
  }

  /// A coverability-graph edge. Keeps the raw action delta: closed-walk
  /// effects on ω-coordinates are not recoverable from the markings.
  struct Edge {
    int target = -1;
    int64_t label = -1;
    Delta delta;
  };

  /// Graph edges out of node n.
  const std::vector<Edge>& edges(int n) const { return nodes_[n].edges; }

  /// First node (in creation order) whose VASS state satisfies `pred`;
  /// -1 if none.
  int FindNode(const std::function<bool(int)>& pred) const;

  /// Action labels along the spanning-tree path from a root to node n.
  std::vector<int64_t> PathLabels(int n) const;

  /// Statistics for the benchmark harness.
  size_t TotalEdges() const;

 private:
  struct Node {
    int state = -1;
    std::vector<int64_t> marking;
    int parent = -1;          // spanning-tree parent
    int64_t parent_label = -1;
    std::vector<Edge> edges;
  };

  /// (VASS state, marking) — the interned identity of a node. States
  /// are already pool-interned ids upstream, so hashing the pair is a
  /// flat integer mix with no serialization.
  using NodeKey = std::pair<int, std::vector<int64_t>>;

  int InternNode(int state, std::vector<int64_t> marking, int parent,
                 int64_t parent_label, bool* created);

  VassSystem* system_;
  KarpMillerOptions options_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, int, IdVectorHash> index_;
  std::unordered_map<int, std::vector<VassEdge>> succ_cache_;
  bool truncated_ = false;
};

}  // namespace has

#endif  // HAS_VASS_KARP_MILLER_H_
