// Karp–Miller coverability graph with ω-acceleration. Provides exact
// state (repeated) reachability for VASS per Section 4.2:
//   - a task VASS state q is reachable iff some coverability-graph node
//     carries q (state reachability / returning & blocking paths of
//     Lemma 21);
//   - repeated reachability (lasso paths) reduces to finding a
//     reachable accepting node lying on a closed walk of the graph
//     whose net effect is ≥ 0 on ω-coordinates (see repeated.h).
//
// The pumping property of Karp–Miller trees makes both directions
// sound: node markings are exact on non-ω coordinates and arbitrarily
// pumpable on ω ones.
//
// Exploration is either sequential (num_shards == 1, the historical
// BFS) or sharded across worker threads (num_shards > 1, requires the
// system to support concurrent preparation — see VassSystem). The
// sharded build is DETERMINISTIC: it proceeds in BFS rounds, prepares
// successor computations concurrently, commits them in frontier order,
// partitions node ownership by hashed (state, marking) key, exchanges
// cross-shard successors through bounded queues, and materializes each
// round's new nodes in the exact global order the sequential explorer
// would have used — so the produced graph (node numbering, markings,
// edges, labels) is identical to the single-shard graph node for node,
// independent of the thread schedule.
//
// With KarpMillerOptions::prune_coverability both explorers apply
// antichain subsumption (minimal-coverability-set pruning): dominated
// successors are discarded and strictly-covered active nodes retired.
// The pruned graph preserves exactly the reachable VASS states (state
// reachability is unaffected), and it records a COVER-EDGE at each of
// the two prune points — a dropped successor becomes an edge from its
// parent to the antichain node that dominated it (keeping the dropped
// transition's label and delta), and a retired node gets a label-less
// edge to its coverer — so the pruned forest plus cover-edges carries
// the closed-walk structure repeated-reachability (lasso) consumers
// need: see vass/repeated.h for the criterion and why traversing
// cover-edges is sound. Pruned builds keep the shard-count determinism
// guarantee: same graph (cover-edges included) at 1, 2, ... shards.
#ifndef HAS_VASS_KARP_MILLER_H_
#define HAS_VASS_KARP_MILLER_H_

#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hashing.h"
#include "vass/dominance_index.h"
#include "vass/vass.h"

namespace has {

struct KarpMillerOptions {
  /// Hard cap on coverability-graph nodes; exceeded => truncated().
  /// (The sharded build checks the cap at round boundaries, so a
  /// truncated sharded graph may cut at a slightly different point
  /// than a truncated sequential one; non-truncated graphs are always
  /// identical.)
  size_t max_nodes = 1 << 18;
  /// Worker shards for Build. 1 = the sequential explorer; > 1 shards
  /// the frontier across that many worker threads (falls back to
  /// sequential when the system does not support concurrent prepare).
  int num_shards = 1;
  /// Bound on the successor cache (distinct VASS states kept); least-
  /// recently-used entries beyond the cap are evicted. States needed by
  /// the current sharded round are pinned and never evicted mid-round.
  /// Eviction never changes the produced graph — systems must make
  /// successor recomputation idempotent (TaskVass interns its
  /// transition records, so re-commits reproduce the original labels) —
  /// but hit/miss counts may differ across shard counts once the cap
  /// binds.
  size_t succ_cache_capacity = 1 << 14;
  /// Antichain subsumption pruning (minimal-coverability-set style, à
  /// la Reynier–Servais): a successor whose marking is ≤ an active
  /// node's marking (same VASS state, ω-aware compare) is dropped
  /// before interning, and an active node strictly covered by a
  /// newcomer is deactivated — retired from the antichain and, if it
  /// has not been expanded yet, excluded from the frontier, cutting its
  /// entire would-be subtree. The pruned graph carries exactly the
  /// REACHABLE VASS STATES of the full graph (coverability-preserving),
  /// so state-reachability consumers (returning/blocking detection,
  /// FindNode) are unaffected. Both prune points additionally record a
  /// cover-edge (Edge::cover) so closed-walk (lasso) analysis runs
  /// directly on the pruned graph — see the file comment and
  /// vass/repeated.h. Deactivation is round-granular: a node already
  /// in the round's frontier when it is covered still expands, which
  /// is what keeps the sharded build node-identical to the sequential
  /// one under pruning.
  bool prune_coverability = false;
  /// Ample-prefix partial-order reduction: when the system reports a
  /// positive AmplePrefix(state) (see VassSystem::AmplePrefix), expand
  /// only those leading edges of the state — PROVIDED at least one
  /// prefix edge makes PROGRESS: it lands on a fresh node, or folds
  /// into an antichain entry whose marking is STRICTLY larger than the
  /// edge's target. If every prefix edge folds into an EQUAL marking
  /// (an already-interned duplicate, or a dominator that adds nothing)
  /// the node reverts to full expansion, which discharges the
  /// ample-set ignoring condition (C3): deferred transitions ride a
  /// chain of progress witnesses that either creates fresh nodes
  /// (acyclic by creation order, finite — ω-acceleration saturates
  /// strictly growing markings) or strictly ascends the marking order
  /// (acyclic by strictness), and every chain therefore ends at a
  /// fully-expanded node whose configuration and marking cover the
  /// deferring state's. Reduction decisions replay in the sequential
  /// rank order during sharded merges, so the reduced graph keeps the
  /// node-identity guarantee at every shard count. Default OFF here so
  /// direct KarpMiller consumers (unit tests, explicit VASSes) are
  /// unaffected; the verifier sets it from VerifierOptions::por.
  bool por = false;
};

class KarpMiller {
 public:
  explicit KarpMiller(VassSystem* system, KarpMillerOptions options = {});

  /// Explores the coverability graph from (s, 0̄) for each initial
  /// state s.
  void Build(const std::vector<int>& initial_states);

  bool truncated() const { return truncated_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int node_state(int n) const { return nodes_[n].state; }
  /// Packed view of node n's marking. Payloads live in the graph's
  /// arena (struct-of-arrays, appended in node-creation order — see
  /// vass/marking.h); the view is valid for the graph's lifetime.
  MarkingView node_marking(int n) const { return nodes_[n].marking; }

  /// A coverability-graph edge. Keeps the raw action delta: closed-walk
  /// effects on ω-coordinates are not recoverable from the markings.
  ///
  /// With pruning, `cover` marks a subsumption edge recorded at a prune
  /// point instead of a materialized successor:
  ///   - a DROPPED successor (marking dominated by an antichain node)
  ///     becomes a cover-edge from its parent to the dominator, keeping
  ///     the dropped transition's label and delta — the transition is
  ///     real, only its target was folded into a larger node;
  ///   - a RETIRED (deactivated) node gets a label-less (-1, empty
  ///     delta) cover-edge to the newcomer that strictly covers it, so
  ///     walks entering the retired node continue through the coverer's
  ///     subtree.
  /// Both jumps land on a marking ≥ the one the unpruned graph would
  /// have carried (effect-widening), which is what makes them sound for
  /// the lasso criterion in vass/repeated.cc.
  struct Edge {
    int target = -1;
    int64_t label = -1;
    Delta delta;
    bool cover = false;
  };

  /// Graph edges out of node n.
  const std::vector<Edge>& edges(int n) const { return nodes_[n].edges; }

  /// Spanning-tree parent of node n (-1 for roots).
  int node_parent(int n) const { return nodes_[n].parent; }

  /// First node (in creation order) whose VASS state satisfies `pred`;
  /// -1 if none.
  int FindNode(const std::function<bool(int)>& pred) const;

  /// Action labels along the spanning-tree path from a root to node n.
  std::vector<int64_t> PathLabels(int n) const;

  /// Statistics for the benchmark harness.
  size_t TotalEdges() const;
  /// Successor-cache accounting: one hit or miss per processed node.
  size_t succ_cache_hits() const { return cache_hits_; }
  size_t succ_cache_misses() const { return cache_misses_; }

  /// Pruning accounting (all 0 unless prune_coverability). The counts
  /// are deterministic: identical across shard counts for one system.
  /// Successor candidates dropped by the antichain domination check.
  size_t pruned_successors() const { return pruned_successors_; }
  /// Nodes retired before expansion (their subtrees were never built).
  size_t deactivated_nodes() const { return deactivated_count_; }
  /// Largest per-state antichain observed.
  size_t antichain_peak() const { return antichain_peak_; }
  /// Cover-edges recorded at the prune points (one per dropped
  /// successor plus one per retired node; included in TotalEdges).
  size_t cover_edges() const { return cover_edges_; }
  /// Marking payloads touched across all domination probes
  /// (DominanceLeq calls made by the bucketed index; deterministic —
  /// probes happen only in serial code replaying the sequential
  /// decision order, so the count is identical at every shard count).
  /// NOTE: before the bucketed index this counted entries EXAMINED
  /// (payload compares + summary skips); the narrowing to payload
  /// touches was an explicit baseline re-record.
  size_t antichain_probes() const { return antichain_probes_; }
  /// Summary buckets examined across all probes (one strengthened
  /// summary test per bucket stands in for one per entry —
  /// vass/dominance_index.h). Deterministic like antichain_probes.
  size_t antichain_bucket_probes() const { return antichain_bucket_probes_; }
  /// Antichain entries resolved by a summary test alone — bucket-key
  /// misses count every member of the bucket, the ω-saturated wild
  /// bucket filters per entry. The summary filter is a sound necessary
  /// condition (miss ⇒ dominance impossible; vass/marking.h), so
  /// skipping never changes the dominator decision and the graph stays
  /// node-identical.
  size_t antichain_skipped_by_summary() const {
    return antichain_skipped_by_summary_;
  }
  /// Largest per-state bucket count observed (wild bucket included).
  size_t antichain_buckets_peak() const { return antichain_buckets_peak_; }
  /// Node markings stored under the sparse (dimension, value)-pair
  /// representation (MarkingArena::AddAuto). Deterministic: the node
  /// set and the per-marking selection rule are both shard-invariant.
  size_t sparse_markings() const { return marking_arena_.sparse_markings(); }
  /// Partial-order-reduction accounting (both 0 unless options.por and
  /// the system reports ample prefixes). Deterministic: decisions
  /// replay the sequential rank order, so the counts are identical at
  /// every shard count.
  /// Successors skipped because an ample prefix expanded in their
  /// place.
  size_t ample_reduced_successors() const {
    return ample_reduced_successors_;
  }
  /// Nodes whose ample prefix was abandoned because a prefix edge
  /// folded into an existing node (the C3 full-expansion rule).
  size_t ample_full_expansions() const { return ample_full_expansions_; }
  /// Whether node n was deactivated (always false without pruning).
  bool node_deactivated(int n) const {
    return static_cast<size_t>(n) < deactivated_.size() &&
           deactivated_[static_cast<size_t>(n)] != 0;
  }

 private:
  struct Node {
    int state = -1;
    /// Packed payload in marking_arena_ (canonical form).
    MarkingView marking;
    int parent = -1;          // spanning-tree parent
    int64_t parent_label = -1;
    std::vector<Edge> edges;
  };

  /// (VASS state, marking) — the interned identity of a node. States
  /// are already pool-interned ids upstream, so hashing the pair is a
  /// flat integer mix with no serialization.
  using NodeKey = std::pair<int, std::vector<int64_t>>;

  /// Bounded LRU successor cache. Entries pinned to the current round
  /// (sharded build) survive eviction until the round completes.
  struct CacheEntry {
    std::vector<VassEdge> edges;
    std::list<int>::iterator lru_pos;
    size_t pinned_round = 0;
  };

  int InternNode(int state, const std::vector<int64_t>& marking, int parent,
                 int64_t parent_label, bool* created);

  void BuildSequential(const std::vector<int>& initial_states);
  void BuildSharded(const std::vector<int>& initial_states);

  /// Accelerated successor marking of `parent_node` under `delta` into
  /// state `target`: marking apply, ω-acceleration against the
  /// spanning-tree ancestry, canonical trailing-zero strip. Reads only
  /// finalized nodes, so it is safe from concurrent workers. False if
  /// the delta is not enabled.
  bool SuccessorMarking(int parent_node, int target, const Delta& delta,
                        std::vector<int64_t>* out) const;

  /// Looks up / inserts `state` in the successor cache. `commit` is
  /// invoked on a miss to produce the edges; entries touched this
  /// round are pinned against eviction.
  const std::vector<VassEdge>& CacheSuccessors(
      int state, size_t round,
      const std::function<void(std::vector<VassEdge>*)>& commit);

  /// Pins `state`'s cache entry (if present) to `round`, moving it to
  /// the LRU front; returns the entry or nullptr. Keeping the pinned
  /// set clustered at the front makes eviction tail-pops O(1).
  CacheEntry* PinCached(int state, size_t round);

  /// MINIMUM-id active antichain node of `state` whose marking
  /// dominates `marking` (ω-aware, 0-padded compare); -1 if none. The
  /// minimum over all dominators is a pure function of the antichain
  /// CONTENT — independent of bucket or scan order — so the cover-edge
  /// target it yields is identical at every shard count by
  /// construction (see vass/dominance_index.h for the rank-cutoff walk
  /// that keeps it sublinear). The probe counters are deterministic
  /// too: the antichain is mutated only by serial code replaying the
  /// sequential decision order, so the bucketed index replays
  /// identically. Non-const for the probe accounting.
  int DominatorOf(int state, const MarkingView& marking);

  /// Inserts freshly interned `node` into its state's antichain and
  /// retires every entry its marking strictly covers. Retired entries
  /// with id >= round_first_new_id_ (same-round newcomers, hence not
  /// yet expanded) are deactivated: flagged so they never reach a
  /// frontier, and given a cover-edge to `node` so walks entering them
  /// continue through the coverer's subtree. Serial phases only.
  void AntichainAbsorb(int node);

  VassSystem* system_;
  KarpMillerOptions options_;
  std::vector<Node> nodes_;
  /// Packed marking payloads, appended in node-creation order (a
  /// node's marking is adjacent to its round neighbours — the entries
  /// antichain probes walk together).
  MarkingArena marking_arena_;
  std::unordered_map<NodeKey, int, IdVectorHash> index_;
  std::unordered_map<int, CacheEntry> succ_cache_;
  std::list<int> lru_;  // front = most recently used state
  /// Entries pinned to pin_round_ (they cluster at the LRU front and
  /// are never evicted; the count caps the eviction scan).
  size_t pin_round_ = 0;
  size_t pinned_count_ = 0;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  bool truncated_ = false;

  // --- antichain pruning state (prune_coverability only) ---------------
  /// VASS state -> the state's maximal active markings (pairwise
  /// incomparable), bucketed by extended summary so probes enumerate
  /// only summary-compatible buckets (vass/dominance_index.h). Frozen
  /// during concurrent phases; mutated only by serial code.
  std::unordered_map<int, DominanceIndex> antichain_;
  /// Per node: retired before expansion (parallel to nodes_).
  std::vector<char> deactivated_;
  /// First node id of the current round's newcomers: entries at or
  /// beyond it are unexpanded and may still be deactivated; older
  /// covered entries only leave the antichain (round-granular
  /// deactivation — see KarpMillerOptions::prune_coverability).
  size_t round_first_new_id_ = 0;
  /// Counted by the serial exact filter only (each dominated candidate
  /// exactly once, in the sequential decision order). No longer
  /// atomic: recording a deterministic cover-edge per drop requires
  /// every candidate to reach the serial walk, so the sharded build's
  /// old emit-time pre-filter — the one concurrent writer — is gone.
  size_t pruned_successors_ = 0;
  size_t deactivated_count_ = 0;
  size_t antichain_peak_ = 0;
  size_t cover_edges_ = 0;
  size_t antichain_probes_ = 0;
  size_t antichain_bucket_probes_ = 0;
  size_t antichain_skipped_by_summary_ = 0;
  size_t antichain_buckets_peak_ = 0;

  // --- partial-order reduction accounting (options.por only) -----------
  size_t ample_reduced_successors_ = 0;
  size_t ample_full_expansions_ = 0;
};

}  // namespace has

#endif  // HAS_VASS_KARP_MILLER_H_
