#include "core/counterexample.h"

#include "common/strings.h"

namespace has {

namespace {

constexpr int kMaxExpansionDepth = 4;

void RenderPath(const RtEngine& engine, const RtEngine::Entry& entry,
                const std::vector<int64_t>& labels,
                const ArtifactSystem& system, int indent, std::string* out);

/// Expands a child call: renders the child's witnessing local run.
void RenderChildCall(const RtEngine& engine, const TransitionRecord& rec,
                     const ArtifactSystem& system, int indent,
                     std::string* out) {
  const RtEngine::Entry* child = engine.FindEntry(rec.child_key);
  if (child == nullptr || indent > kMaxExpansionDepth) return;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (rec.child_result_index >= 0 &&
      rec.child_result_index <
          static_cast<int>(child->returning_nodes.size())) {
    int node = child->returning_nodes[rec.child_result_index];
    *out += StrCat(pad, "  └─ child run (returns):\n");
    RenderPath(engine, *child, child->graph->PathLabels(node), system,
               indent + 2, out);
  } else if (child->lasso.has_value()) {
    *out += StrCat(pad, "  └─ child run (never returns; loops):\n");
    RenderPath(engine, *child, child->lasso->stem_labels, system, indent + 2,
               out);
    *out += StrCat(pad, "     child loop:\n");
    RenderPath(engine, *child, child->lasso->loop_labels, system, indent + 2,
               out);
  } else if (child->blocking_node >= 0) {
    *out += StrCat(pad, "  └─ child run (blocks):\n");
    RenderPath(engine, *child, child->graph->PathLabels(child->blocking_node),
               system, indent + 2, out);
  }
}

void RenderPath(const RtEngine& engine, const RtEngine::Entry& entry,
                const std::vector<int64_t>& labels,
                const ArtifactSystem& system, int indent, std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  for (int64_t label : labels) {
    const TransitionRecord& rec = entry.vass->record(label);
    *out += StrCat(pad, system.ServiceName(rec.service));
    if (!rec.note.empty()) *out += StrCat("  [", rec.note, "]");
    *out += "\n";
    if (rec.child_key.valid()) {
      RenderChildCall(engine, rec, system, indent, out);
    }
  }
}

}  // namespace

std::string FormatCounterexample(const RtEngine& engine,
                                 const RtEngine::RootWitness& witness,
                                 const ArtifactSystem& system) {
  const RtEngine::Entry* entry = engine.FindEntry(witness.entry_key);
  if (entry == nullptr) return "(no witness entry)";
  std::string out;
  out += witness.blocking
             ? "blocking counterexample run (a child never returns):\n"
             : "lasso counterexample run:\n";
  out += "--- stem ---\n";
  RenderPath(engine, *entry, witness.stem_labels, system, 1, &out);
  if (!witness.blocking) {
    out += "--- loop (repeats forever) ---\n";
    RenderPath(engine, *entry, witness.loop_labels, system, 1, &out);
  }
  return out;
}

}  // namespace has
