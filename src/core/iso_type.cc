#include "core/iso_type.h"

#include <algorithm>
#include <numeric>

#include "common/hashing.h"
#include "common/status.h"
#include "common/strings.h"

namespace has {

Truth TruthAnd(Truth a, Truth b) {
  if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
  if (a == Truth::kTrue && b == Truth::kTrue) return Truth::kTrue;
  return Truth::kUnknown;
}

Truth TruthOr(Truth a, Truth b) {
  if (a == Truth::kTrue || b == Truth::kTrue) return Truth::kTrue;
  if (a == Truth::kFalse && b == Truth::kFalse) return Truth::kFalse;
  return Truth::kUnknown;
}

Truth TruthNot(Truth a) {
  if (a == Truth::kTrue) return Truth::kFalse;
  if (a == Truth::kFalse) return Truth::kTrue;
  return Truth::kUnknown;
}

bool IsoElement::operator<(const IsoElement& o) const {
  if (kind != o.kind) return kind < o.kind;
  if (var != o.var) return var < o.var;
  if (relation != o.relation) return relation < o.relation;
  if (path != o.path) return path < o.path;
  if (value != o.value) return value < o.value;
  return false;
}

std::string IsoElement::ToString(const VarScope* scope) const {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kConst:
      return value.ToString();
    case Kind::kVar:
      return scope != nullptr && var >= 0 && var < scope->size()
                 ? scope->var(var).name
                 : StrCat("v", var);
    case Kind::kNav: {
      std::string base = scope != nullptr && var >= 0 && var < scope->size()
                             ? scope->var(var).name
                             : StrCat("v", var);
      std::string out = StrCat(base, "@R", relation);
      for (AttrId a : path) out += StrCat(".", a);
      return out;
    }
  }
  return "?";
}

PartialIsoType::PartialIsoType(const DatabaseSchema* schema,
                               const VarScope* scope, int max_depth)
    : schema_(schema), scope_(scope), max_depth_(max_depth) {}

int PartialIsoType::Find(int e) const {
  int root = e;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[e] != root) {
    int next = parent_[e];
    parent_[e] = root;
    e = next;
  }
  return root;
}

int PartialIsoType::AddElement(const IsoElement& e) {
  for (size_t i = 0; i < elements_.size(); ++i) {
    if (elements_[i] == e) return static_cast<int>(i);
  }
  elements_.push_back(e);
  parent_.push_back(static_cast<int>(elements_.size() - 1));
  return static_cast<int>(elements_.size() - 1);
}

int PartialIsoType::NullElement() {
  IsoElement e;
  e.kind = IsoElement::Kind::kNull;
  int idx = AddElement(e);
  null_tag_.insert(Find(idx));
  return idx;
}

int PartialIsoType::ConstElement(const Rational& value) {
  IsoElement e;
  e.kind = IsoElement::Kind::kConst;
  e.value = value;
  int idx = AddElement(e);
  const_tag_.emplace(Find(idx), value);
  return idx;
}

int PartialIsoType::VarElement(int var) {
  IsoElement e;
  e.kind = IsoElement::Kind::kVar;
  e.var = var;
  return AddElement(e);
}

int PartialIsoType::NavChild(int parent, AttrId attr) {
  const IsoElement& p = elements_[parent];
  IsoElement child;
  child.kind = IsoElement::Kind::kNav;
  if (p.kind == IsoElement::Kind::kVar) {
    std::optional<RelationId> anchor = AnchorOf(parent);
    HAS_CHECK_MSG(anchor.has_value(), "NavChild of unanchored variable");
    child.var = p.var;
    child.relation = *anchor;
    child.path = {attr};
  } else {
    HAS_CHECK_MSG(p.kind == IsoElement::Kind::kNav, "NavChild of non-nav");
    child.var = p.var;
    child.relation = p.relation;
    child.path = p.path;
    child.path.push_back(attr);
  }
  if (static_cast<int>(child.path.size()) > max_depth_) return -1;
  int idx = AddElement(child);
  // New navigation element: congruence may immediately relate it to the
  // same attribute child of other members of the parent's class.
  Close();
  return idx;
}

IsoSort PartialIsoType::SortOf(int e) const {
  // Combine intrinsic sorts over the class plus the anchor tag.
  IsoSort sort;
  sort.kind = IsoSort::Kind::kUnknownId;
  bool have = false;
  auto combine = [&](IsoSort::Kind k, RelationId r) {
    if (!have) {
      sort.kind = k;
      sort.relation = r;
      have = true;
      return;
    }
    if (sort.kind == IsoSort::Kind::kUnknownId &&
        (k == IsoSort::Kind::kId || k == IsoSort::Kind::kNull)) {
      sort.kind = k;
      sort.relation = r;
    }
    // Remaining combinations either agree or were rejected by Union.
  };
  int rep = Find(e);
  for (int m : ClassMembers(rep)) {
    const IsoElement& el = elements_[m];
    switch (el.kind) {
      case IsoElement::Kind::kNull:
        combine(IsoSort::Kind::kNull, kNoRelation);
        break;
      case IsoElement::Kind::kConst:
        combine(IsoSort::Kind::kNumeric, kNoRelation);
        break;
      case IsoElement::Kind::kVar:
        if (scope_->var(el.var).sort == VarSort::kNumeric) {
          combine(IsoSort::Kind::kNumeric, kNoRelation);
        } else {
          combine(IsoSort::Kind::kUnknownId, kNoRelation);
        }
        break;
      case IsoElement::Kind::kNav: {
        // Terminal sort along the navigation path.
        RelationId r = el.relation;
        bool numeric = false;
        for (size_t i = 0; i < el.path.size(); ++i) {
          const Attribute& a = schema_->relation(r).attr(el.path[i]);
          if (a.kind == AttrKind::kForeign) {
            r = a.references;
          } else {
            numeric = true;
          }
        }
        if (numeric) {
          combine(IsoSort::Kind::kNumeric, kNoRelation);
        } else {
          combine(IsoSort::Kind::kId, r);
        }
        break;
      }
    }
  }
  auto it = anchor_.find(rep);
  if (it != anchor_.end()) combine(IsoSort::Kind::kId, it->second);
  if (null_tag_.count(rep) > 0) sort.kind = IsoSort::Kind::kNull;
  return sort;
}

bool PartialIsoType::IsNullTagged(int e) const {
  return null_tag_.count(Find(e)) > 0;
}

std::optional<RelationId> PartialIsoType::AnchorOf(int e) const {
  int rep = Find(e);
  auto it = anchor_.find(rep);
  if (it != anchor_.end()) return it->second;
  // Intrinsic anchors from navigation members.
  for (int m : ClassMembers(rep)) {
    const IsoElement& el = elements_[m];
    if (el.kind != IsoElement::Kind::kNav) continue;
    RelationId r = el.relation;
    bool numeric = false;
    for (AttrId a : el.path) {
      const Attribute& attr = schema_->relation(r).attr(a);
      if (attr.kind == AttrKind::kForeign) {
        r = attr.references;
      } else {
        numeric = true;
      }
    }
    if (!numeric) return r;
  }
  return std::nullopt;
}

std::optional<Rational> PartialIsoType::ConstOf(int e) const {
  auto it = const_tag_.find(Find(e));
  if (it == const_tag_.end()) return std::nullopt;
  return it->second;
}

bool PartialIsoType::ClassTouchesVars(int e, const std::set<int>& vars) const {
  for (int m : ClassMembers(Find(e))) {
    const IsoElement& el = elements_[m];
    if ((el.kind == IsoElement::Kind::kVar ||
         el.kind == IsoElement::Kind::kNav) &&
        vars.count(el.var) > 0) {
      return true;
    }
  }
  return false;
}

int PartialIsoType::LookupVar(int var) const {
  for (int i = 0; i < num_elements(); ++i) {
    if (elements_[i].kind == IsoElement::Kind::kVar &&
        elements_[i].var == var) {
      return i;
    }
  }
  return -1;
}

bool PartialIsoType::VarIsNull(int var) const {
  int e = LookupVar(var);
  return e != -1 && IsNullTagged(e);
}

std::vector<int> PartialIsoType::ClassMembers(int rep) const {
  std::vector<int> out;
  rep = Find(rep);
  for (int i = 0; i < num_elements(); ++i) {
    if (Find(i) == rep) out.push_back(i);
  }
  return out;
}

bool PartialIsoType::Union(int a, int b) {
  int ra = Find(a), rb = Find(b);
  if (ra == rb) return true;

  // Sort compatibility.
  IsoSort sa = SortOf(ra), sb = SortOf(rb);
  auto numeric = [](const IsoSort& s) {
    return s.kind == IsoSort::Kind::kNumeric;
  };
  auto idlike = [](const IsoSort& s) {
    return s.kind == IsoSort::Kind::kId || s.kind == IsoSort::Kind::kUnknownId;
  };
  bool compatible =
      (numeric(sa) && numeric(sb)) ||
      (idlike(sa) && idlike(sb) &&
       (sa.kind != IsoSort::Kind::kId || sb.kind != IsoSort::Kind::kId ||
        sa.relation == sb.relation)) ||
      (sa.kind == IsoSort::Kind::kNull && sb.kind == IsoSort::Kind::kNull) ||
      // null merges with un-anchored id classes (the variable IS null).
      (sa.kind == IsoSort::Kind::kNull && sb.kind == IsoSort::Kind::kUnknownId) ||
      (sb.kind == IsoSort::Kind::kNull && sa.kind == IsoSort::Kind::kUnknownId);
  if (!compatible) return false;
  // A null class must not contain navigation elements or consts (their
  // values are never null).
  if (sa.kind == IsoSort::Kind::kNull || sb.kind == IsoSort::Kind::kNull) {
    int other = sa.kind == IsoSort::Kind::kNull ? rb : ra;
    for (int m : ClassMembers(other)) {
      if (elements_[m].kind == IsoElement::Kind::kNav ||
          elements_[m].kind == IsoElement::Kind::kConst) {
        return false;
      }
    }
    if (anchor_.count(Find(other)) > 0) return false;
  }

  // Const tags.
  auto ca = const_tag_.find(ra), cb = const_tag_.find(rb);
  if (ca != const_tag_.end() && cb != const_tag_.end() &&
      !(ca->second == cb->second)) {
    return false;
  }
  // Anchor tags.
  auto aa = anchor_.find(ra), ab = anchor_.find(rb);
  if (aa != anchor_.end() && ab != anchor_.end() &&
      aa->second != ab->second) {
    return false;
  }

  // Merge rb into ra.
  std::optional<Rational> merged_const;
  if (ca != const_tag_.end()) merged_const = ca->second;
  if (cb != const_tag_.end()) merged_const = cb->second;
  std::optional<RelationId> merged_anchor;
  if (aa != anchor_.end()) merged_anchor = aa->second;
  if (ab != anchor_.end()) merged_anchor = ab->second;
  bool merged_null = null_tag_.count(ra) + null_tag_.count(rb) > 0;

  const_tag_.erase(ra);
  const_tag_.erase(rb);
  anchor_.erase(ra);
  anchor_.erase(rb);
  null_tag_.erase(ra);
  null_tag_.erase(rb);
  parent_[rb] = ra;
  if (merged_const.has_value()) const_tag_.emplace(ra, *merged_const);
  if (merged_anchor.has_value()) anchor_.emplace(ra, *merged_anchor);
  if (merged_null) null_tag_.insert(ra);
  // Null excludes anchors and consts.
  if (merged_null && (merged_anchor.has_value() || merged_const.has_value())) {
    return false;
  }
  return true;
}

bool PartialIsoType::Close() {
  bool changed = true;
  while (changed) {
    changed = false;
    // Downward congruence: same class + same attribute => same child.
    for (int e1 = 0; e1 < num_elements(); ++e1) {
      const IsoElement& a = elements_[e1];
      if (a.kind != IsoElement::Kind::kNav &&
          a.kind != IsoElement::Kind::kVar) {
        continue;
      }
      for (int e2 = e1 + 1; e2 < num_elements(); ++e2) {
        if (Find(e1) != Find(e2)) continue;
        const IsoElement& b = elements_[e2];
        if (b.kind != IsoElement::Kind::kNav &&
            b.kind != IsoElement::Kind::kVar) {
          continue;
        }
        // Children of e1/e2 are the existing elements extending their
        // paths by a single attribute.
        for (int c1 = 0; c1 < num_elements(); ++c1) {
          const IsoElement& ch1 = elements_[c1];
          if (ch1.kind != IsoElement::Kind::kNav || ch1.var != a.var) {
            continue;
          }
          // ch1 extends e1 by one attribute?
          size_t alen = a.kind == IsoElement::Kind::kVar ? 0 : a.path.size();
          if (ch1.path.size() != alen + 1) continue;
          if (a.kind == IsoElement::Kind::kNav &&
              (ch1.relation != a.relation ||
               !std::equal(a.path.begin(), a.path.end(), ch1.path.begin()))) {
            continue;
          }
          if (a.kind == IsoElement::Kind::kVar) {
            // Root child: anchor relations must match the class anchor.
            std::optional<RelationId> anchor = AnchorOf(e1);
            if (!anchor.has_value() || ch1.relation != *anchor) continue;
          }
          AttrId attr = ch1.path.back();
          for (int c2 = 0; c2 < num_elements(); ++c2) {
            if (c2 == c1) continue;
            const IsoElement& ch2 = elements_[c2];
            if (ch2.kind != IsoElement::Kind::kNav || ch2.var != b.var) {
              continue;
            }
            size_t blen = b.kind == IsoElement::Kind::kVar ? 0 : b.path.size();
            if (ch2.path.size() != blen + 1 || ch2.path.back() != attr) {
              continue;
            }
            if (b.kind == IsoElement::Kind::kNav &&
                (ch2.relation != b.relation ||
                 !std::equal(b.path.begin(), b.path.end(),
                             ch2.path.begin()))) {
              continue;
            }
            if (b.kind == IsoElement::Kind::kVar) {
              std::optional<RelationId> anchor = AnchorOf(e2);
              if (!anchor.has_value() || ch2.relation != *anchor) continue;
            }
            if (Find(c1) != Find(c2)) {
              if (!Union(c1, c2)) return false;
              changed = true;
            }
          }
        }
      }
    }
  }
  return true;
}

bool PartialIsoType::CheckConstraints() const {
  for (const auto& [a, b] : disequalities_) {
    if (Find(a) == Find(b)) return false;
    std::optional<Rational> ca = ConstOf(a), cb = ConstOf(b);
    if (ca.has_value() && cb.has_value() && *ca == *cb) return false;
    if (IsNullTagged(a) && IsNullTagged(b)) return false;
  }
  for (const NegAtom& n : neg_atoms_) {
    if (NegAtomViolated(n)) return false;
  }
  return true;
}

Truth PartialIsoType::EvalRelAtom(RelationId r,
                                  const std::vector<int>& arg_elems) const {
  // Any null argument makes the atom false.
  for (int a : arg_elems) {
    if (IsNullTagged(a)) return Truth::kFalse;
  }
  std::optional<RelationId> anchor = AnchorOf(arg_elems[0]);
  if (anchor.has_value() && *anchor != r) return Truth::kFalse;
  const Relation& rel = schema_->relation(r);
  Truth result = anchor.has_value() ? Truth::kTrue : Truth::kUnknown;
  // For each attribute, look for an existing child element of the
  // class of arg 0.
  for (int i = 1; i < rel.arity(); ++i) {
    int child = -1;
    for (int m : ClassMembers(Find(arg_elems[0]))) {
      const IsoElement& el = elements_[m];
      // Candidate child: extends member m by attribute i.
      for (int c = 0; c < num_elements(); ++c) {
        const IsoElement& ch = elements_[c];
        if (ch.kind != IsoElement::Kind::kNav || ch.var != el.var) continue;
        size_t mlen = el.kind == IsoElement::Kind::kVar
                          ? 0
                          : (el.kind == IsoElement::Kind::kNav
                                 ? el.path.size()
                                 : SIZE_MAX);
        if (mlen == SIZE_MAX) continue;
        if (ch.path.size() != mlen + 1 || ch.path.back() != i) continue;
        if (el.kind == IsoElement::Kind::kNav &&
            (ch.relation != el.relation ||
             !std::equal(el.path.begin(), el.path.end(), ch.path.begin()))) {
          continue;
        }
        if (el.kind == IsoElement::Kind::kVar && ch.relation != r) continue;
        child = c;
        break;
      }
      if (child != -1) break;
    }
    if (child == -1) {
      result = TruthAnd(result, Truth::kUnknown);
      continue;
    }
    // Compare child with arg i.
    if (Find(child) == Find(arg_elems[i])) {
      result = TruthAnd(result, Truth::kTrue);
    } else {
      // Definitely different?
      bool definitely_neq = false;
      for (const auto& [x, y] : disequalities_) {
        if ((Find(x) == Find(child) && Find(y) == Find(arg_elems[i])) ||
            (Find(y) == Find(child) && Find(x) == Find(arg_elems[i]))) {
          definitely_neq = true;
        }
      }
      std::optional<Rational> cc = ConstOf(child), ca = ConstOf(arg_elems[i]);
      if (cc.has_value() && ca.has_value() && !(*cc == *ca)) {
        definitely_neq = true;
      }
      std::optional<RelationId> rc = AnchorOf(child),
                                ra = AnchorOf(arg_elems[i]);
      if (rc.has_value() && ra.has_value() && *rc != *ra) {
        definitely_neq = true;
      }
      if (definitely_neq) return Truth::kFalse;
      result = TruthAnd(result, Truth::kUnknown);
    }
  }
  return result;
}

bool PartialIsoType::NegAtomViolated(const NegAtom& n) const {
  return EvalRelAtom(n.relation, n.args) == Truth::kTrue;
}

bool PartialIsoType::AssertEq(int a, int b) {
  if (!Union(a, b)) return false;
  if (!Close()) return false;
  return CheckConstraints();
}

bool PartialIsoType::AssertNeq(int a, int b) {
  if (Find(a) == Find(b)) return false;
  disequalities_.emplace_back(a, b);
  return CheckConstraints();
}

bool PartialIsoType::AssertAnchor(int e, RelationId r) {
  int rep = Find(e);
  if (null_tag_.count(rep) > 0) return false;
  IsoSort sort = SortOf(rep);
  if (sort.kind == IsoSort::Kind::kNumeric) return false;
  if (sort.kind == IsoSort::Kind::kId && sort.relation != r) return false;
  auto it = anchor_.find(rep);
  if (it != anchor_.end()) return it->second == r;
  anchor_.emplace(rep, r);
  if (!Close()) return false;
  return CheckConstraints();
}

bool PartialIsoType::Same(int a, int b) const { return Find(a) == Find(b); }

bool PartialIsoType::DecideAtom(const Condition& atom, bool value) {
  switch (atom.kind()) {
    case CondKind::kEq: {
      auto element_of = [&](const Term& t) -> int {
        switch (t.kind) {
          case Term::Kind::kVar:
            return VarElement(t.var);
          case Term::Kind::kNull:
            return NullElement();
          case Term::Kind::kConst:
            return ConstElement(t.value);
        }
        return -1;
      };
      int a = element_of(atom.lhs());
      int b = element_of(atom.rhs());
      return value ? AssertEq(a, b) : AssertNeq(a, b);
    }
    case CondKind::kRel: {
      const Relation& rel = schema_->relation(atom.relation());
      std::vector<int> args;
      args.reserve(atom.args().size());
      for (int v : atom.args()) args.push_back(VarElement(v));
      if (!value) {
        neg_atoms_.push_back(NegAtom{atom.relation(), std::move(args)});
        return CheckConstraints();
      }
      if (!AssertAnchor(args[0], atom.relation())) return false;
      for (int i = 1; i < rel.arity(); ++i) {
        int child = NavChild(args[0], i);
        if (child == -1) continue;  // beyond depth bound: unconstrained
        if (!AssertEq(child, args[i])) return false;
      }
      return true;
    }
    case CondKind::kArith: {
      // Constant-tag equalities only: x + k = 0.
      const LinearConstraint& c = atom.constraint();
      HAS_CHECK_MSG(c.op == Relop::kEq && c.expr.coefs().size() == 1 &&
                        c.expr.coefs().begin()->second == Rational(1),
                    "non-constant arithmetic atom reached the equality "
                    "component");
      int var = c.expr.coefs().begin()->first;
      Rational k = Rational(0) - c.expr.constant();
      int a = VarElement(var);
      int b = ConstElement(k);
      return value ? AssertEq(a, b) : AssertNeq(a, b);
    }
    default:
      HAS_CHECK_MSG(false, "DecideAtom on non-atom");
  }
  return false;
}

Truth PartialIsoType::EvalAtom(const Condition& atom) const {
  auto lookup = [&](const IsoElement& key) -> int {
    for (int i = 0; i < num_elements(); ++i) {
      if (elements_[i] == key) return i;
    }
    return -1;
  };
  auto lookup_term = [&](const Term& t) -> int {
    IsoElement key;
    switch (t.kind) {
      case Term::Kind::kVar:
        key.kind = IsoElement::Kind::kVar;
        key.var = t.var;
        break;
      case Term::Kind::kNull:
        key.kind = IsoElement::Kind::kNull;
        break;
      case Term::Kind::kConst:
        key.kind = IsoElement::Kind::kConst;
        key.value = t.value;
        break;
    }
    return lookup(key);
  };
  switch (atom.kind()) {
    case CondKind::kEq: {
      int a = lookup_term(atom.lhs());
      int b = lookup_term(atom.rhs());
      // Null/const terms carry their own semantics even when the
      // element is absent: use tags of the present side.
      if (a == -1 || b == -1) {
        // One side missing: check tag-level knowledge.
        const Term& missing = a == -1 ? atom.lhs() : atom.rhs();
        int present = a == -1 ? b : a;
        if (present == -1) return Truth::kUnknown;
        if (missing.kind == Term::Kind::kNull) {
          if (IsNullTagged(present)) return Truth::kTrue;
          IsoSort s = SortOf(present);
          if (s.kind == IsoSort::Kind::kId ||
              s.kind == IsoSort::Kind::kNumeric) {
            return Truth::kFalse;
          }
          return Truth::kUnknown;
        }
        if (missing.kind == Term::Kind::kConst) {
          std::optional<Rational> c = ConstOf(present);
          if (c.has_value()) {
            return *c == missing.value ? Truth::kTrue : Truth::kFalse;
          }
          return Truth::kUnknown;
        }
        return Truth::kUnknown;
      }
      if (Find(a) == Find(b)) return Truth::kTrue;
      for (const auto& [x, y] : disequalities_) {
        if ((Find(x) == Find(a) && Find(y) == Find(b)) ||
            (Find(y) == Find(a) && Find(x) == Find(b))) {
          return Truth::kFalse;
        }
      }
      std::optional<Rational> ca = ConstOf(a), cb = ConstOf(b);
      if (ca.has_value() && cb.has_value()) {
        return *ca == *cb ? Truth::kTrue : Truth::kFalse;
      }
      std::optional<RelationId> ra = AnchorOf(a), rb = AnchorOf(b);
      if (ra.has_value() && rb.has_value() && *ra != *rb) return Truth::kFalse;
      if ((IsNullTagged(a) &&
           (rb.has_value() || SortOf(b).kind == IsoSort::Kind::kNumeric)) ||
          (IsNullTagged(b) &&
           (ra.has_value() || SortOf(a).kind == IsoSort::Kind::kNumeric))) {
        return Truth::kFalse;
      }
      return Truth::kUnknown;
    }
    case CondKind::kRel: {
      std::vector<int> args;
      for (int v : atom.args()) {
        IsoElement key;
        key.kind = IsoElement::Kind::kVar;
        key.var = v;
        int e = lookup(key);
        if (e == -1) return Truth::kUnknown;
        args.push_back(e);
      }
      Truth t = EvalRelAtom(atom.relation(), args);
      if (t != Truth::kUnknown) return t;
      // A recorded matching negative atom decides false.
      for (const NegAtom& n : neg_atoms_) {
        if (n.relation != atom.relation()) continue;
        if (n.args.size() != args.size()) continue;
        bool all_same = true;
        for (size_t i = 0; i < args.size(); ++i) {
          if (Find(n.args[i]) != Find(args[i])) {
            all_same = false;
            break;
          }
        }
        if (all_same) return Truth::kFalse;
      }
      return Truth::kUnknown;
    }
    case CondKind::kArith: {
      const LinearConstraint& c = atom.constraint();
      if (c.op == Relop::kEq && c.expr.coefs().size() == 1 &&
          c.expr.coefs().begin()->second == Rational(1)) {
        int var = c.expr.coefs().begin()->first;
        Rational k = Rational(0) - c.expr.constant();
        IsoElement key;
        key.kind = IsoElement::Kind::kVar;
        key.var = var;
        int a = lookup(key);
        if (a == -1) return Truth::kUnknown;
        std::optional<Rational> tag = ConstOf(a);
        if (tag.has_value()) {
          return *tag == k ? Truth::kTrue : Truth::kFalse;
        }
        // Disequality against the constant element?
        IsoElement ckey;
        ckey.kind = IsoElement::Kind::kConst;
        ckey.value = k;
        int b = lookup(ckey);
        if (b != -1) {
          for (const auto& [x, y] : disequalities_) {
            if ((Find(x) == Find(a) && Find(y) == Find(b)) ||
                (Find(y) == Find(a) && Find(x) == Find(b))) {
              return Truth::kFalse;
            }
          }
        }
        return Truth::kUnknown;
      }
      return Truth::kUnknown;  // cell component's business
    }
    default:
      HAS_CHECK_MSG(false, "EvalAtom on non-atom");
  }
  return Truth::kUnknown;
}

Truth PartialIsoType::Eval(const Condition& cond) const {
  switch (cond.kind()) {
    case CondKind::kTrue:
      return Truth::kTrue;
    case CondKind::kFalse:
      return Truth::kFalse;
    case CondKind::kEq:
    case CondKind::kRel:
    case CondKind::kArith:
      return EvalAtom(cond);
    case CondKind::kNot:
      return TruthNot(Eval(*cond.child(0)));
    case CondKind::kAnd:
      return TruthAnd(Eval(*cond.child(0)), Eval(*cond.child(1)));
    case CondKind::kOr:
      return TruthOr(Eval(*cond.child(0)), Eval(*cond.child(1)));
  }
  return Truth::kUnknown;
}

void PartialIsoType::CompressPaths() {
  for (int e = 0; e < num_elements(); ++e) Find(e);
}

void PartialIsoType::Normalize() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (int e = 0; e < num_elements(); ++e) {
      const IsoElement& el = elements_[e];
      if (el.kind == IsoElement::Kind::kVar) continue;
      // Referenced by disequalities or negative atoms?
      bool referenced = false;
      for (const auto& [a, b] : disequalities_) {
        if (a == e || b == e) referenced = true;
      }
      for (const NegAtom& n : neg_atoms_) {
        for (int a : n.args) {
          if (a == e) referenced = true;
        }
      }
      if (referenced) continue;
      // Has navigation children?
      bool has_children = false;
      if (el.kind == IsoElement::Kind::kNav) {
        for (int c = 0; c < num_elements(); ++c) {
          const IsoElement& ch = elements_[c];
          if (ch.kind == IsoElement::Kind::kNav && ch.var == el.var &&
              ch.relation == el.relation &&
              ch.path.size() == el.path.size() + 1 &&
              std::equal(el.path.begin(), el.path.end(), ch.path.begin())) {
            has_children = true;
            break;
          }
        }
      }
      if (has_children) continue;
      // Singleton class?
      if (ClassMembers(Find(e)).size() != 1) continue;
      // Unconstrained: remove by rebuilding without e.
      std::vector<bool> keep(num_elements(), true);
      keep[e] = false;
      *this = Rebuild(keep);
      changed = true;
      break;
    }
  }
}

PartialIsoType PartialIsoType::Rebuild(const std::vector<bool>& keep) const {
  PartialIsoType out(schema_, scope_, max_depth_);
  std::vector<int> remap(num_elements(), -1);
  for (int e = 0; e < num_elements(); ++e) {
    if (keep[e]) remap[e] = out.AddElement(elements_[e]);
  }
  // Equalities: within each old class, chain the kept members.
  for (int e = 0; e < num_elements(); ++e) {
    if (!keep[e]) continue;
    int rep = Find(e);
    for (int f = e + 1; f < num_elements(); ++f) {
      if (keep[f] && Find(f) == rep) {
        out.Union(remap[e], remap[f]);
      }
    }
  }
  // Tags (attach to any kept member of the class).
  for (int e = 0; e < num_elements(); ++e) {
    if (!keep[e]) continue;
    int rep = Find(e);
    auto a = anchor_.find(rep);
    if (a != anchor_.end()) out.anchor_.emplace(out.Find(remap[e]), a->second);
    if (null_tag_.count(rep) > 0) out.null_tag_.insert(out.Find(remap[e]));
    auto c = const_tag_.find(rep);
    if (c != const_tag_.end()) {
      out.const_tag_.emplace(out.Find(remap[e]), c->second);
    }
  }
  for (const auto& [a, b] : disequalities_) {
    if (keep[a] && keep[b]) out.disequalities_.emplace_back(remap[a], remap[b]);
  }
  for (const NegAtom& n : neg_atoms_) {
    bool all = true;
    for (int a : n.args) {
      if (!keep[a]) all = false;
    }
    if (all) {
      NegAtom copy;
      copy.relation = n.relation;
      for (int a : n.args) copy.args.push_back(remap[a]);
      out.neg_atoms_.push_back(std::move(copy));
    }
  }
  out.Close();
  return out;
}

PartialIsoType PartialIsoType::Project(const std::set<int>& vars,
                                       int depth) const {
  std::vector<bool> keep(num_elements(), false);
  for (int e = 0; e < num_elements(); ++e) {
    const IsoElement& el = elements_[e];
    switch (el.kind) {
      case IsoElement::Kind::kNull:
      case IsoElement::Kind::kConst:
        keep[e] = true;
        break;
      case IsoElement::Kind::kVar:
        keep[e] = vars.count(el.var) > 0;
        break;
      case IsoElement::Kind::kNav:
        keep[e] = vars.count(el.var) > 0 &&
                  static_cast<int>(el.path.size()) <= depth;
        break;
    }
  }
  PartialIsoType out = Rebuild(keep);
  out.Normalize();
  return out;
}

PartialIsoType PartialIsoType::Rename(const std::map<int, int>& map,
                                      const VarScope* new_scope) const {
  std::vector<bool> keep(num_elements(), false);
  for (int e = 0; e < num_elements(); ++e) {
    const IsoElement& el = elements_[e];
    if (el.kind == IsoElement::Kind::kNull ||
        el.kind == IsoElement::Kind::kConst) {
      keep[e] = true;
    } else {
      keep[e] = map.count(el.var) > 0;
    }
  }
  PartialIsoType projected = Rebuild(keep);
  // Rename in place.
  PartialIsoType out(schema_, new_scope, max_depth_);
  std::vector<int> remap(projected.num_elements(), -1);
  for (int e = 0; e < projected.num_elements(); ++e) {
    IsoElement el = projected.elements_[e];
    if (el.kind == IsoElement::Kind::kVar ||
        el.kind == IsoElement::Kind::kNav) {
      el.var = map.at(el.var);
    }
    remap[e] = out.AddElement(el);
  }
  for (int e = 0; e < projected.num_elements(); ++e) {
    int rep = projected.Find(e);
    for (int f = e + 1; f < projected.num_elements(); ++f) {
      if (projected.Find(f) == rep) out.Union(remap[e], remap[f]);
    }
  }
  for (int e = 0; e < projected.num_elements(); ++e) {
    int rep = projected.Find(e);
    auto a = projected.anchor_.find(rep);
    if (a != projected.anchor_.end()) {
      out.anchor_.emplace(out.Find(remap[e]), a->second);
    }
    if (projected.null_tag_.count(rep) > 0) {
      out.null_tag_.insert(out.Find(remap[e]));
    }
    auto c = projected.const_tag_.find(rep);
    if (c != projected.const_tag_.end()) {
      out.const_tag_.emplace(out.Find(remap[e]), c->second);
    }
  }
  for (const auto& [a, b] : projected.disequalities_) {
    out.disequalities_.emplace_back(remap[a], remap[b]);
  }
  for (const NegAtom& n : projected.neg_atoms_) {
    NegAtom copy;
    copy.relation = n.relation;
    for (int a : n.args) copy.args.push_back(remap[a]);
    out.neg_atoms_.push_back(std::move(copy));
  }
  out.Close();
  out.Normalize();
  return out;
}

bool PartialIsoType::MergeFrom(const PartialIsoType& other) {
  std::vector<int> remap(other.num_elements(), -1);
  for (int e = 0; e < other.num_elements(); ++e) {
    remap[e] = AddElement(other.elements_[e]);
  }
  for (int e = 0; e < other.num_elements(); ++e) {
    int rep = other.Find(e);
    for (int f = e + 1; f < other.num_elements(); ++f) {
      if (other.Find(f) == rep) {
        if (!AssertEq(remap[e], remap[f])) return false;
      }
    }
  }
  for (int e = 0; e < other.num_elements(); ++e) {
    int rep = other.Find(e);
    auto a = other.anchor_.find(rep);
    if (a != other.anchor_.end()) {
      if (!AssertAnchor(remap[e], a->second)) return false;
    }
    if (other.null_tag_.count(rep) > 0) {
      if (!AssertEq(remap[e], NullElement())) return false;
    }
    auto c = other.const_tag_.find(rep);
    if (c != other.const_tag_.end()) {
      if (!AssertEq(remap[e], ConstElement(c->second))) return false;
    }
  }
  for (const auto& [a, b] : other.disequalities_) {
    if (!AssertNeq(remap[a], remap[b])) return false;
  }
  for (const NegAtom& n : other.neg_atoms_) {
    NegAtom copy;
    copy.relation = n.relation;
    for (int a : n.args) copy.args.push_back(remap[a]);
    neg_atoms_.push_back(std::move(copy));
    if (!CheckConstraints()) return false;
  }
  return true;
}

void PartialIsoType::ForgetVar(int v) {
  std::vector<bool> keep(num_elements(), true);
  for (int e = 0; e < num_elements(); ++e) {
    const IsoElement& el = elements_[e];
    if ((el.kind == IsoElement::Kind::kVar ||
         el.kind == IsoElement::Kind::kNav) &&
        el.var == v) {
      keep[e] = false;
    }
  }
  *this = Rebuild(keep);
}

std::string PartialIsoType::Signature() const {
  // Order elements canonically, then emit class structure and tags.
  std::vector<int> order(num_elements());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return elements_[a] < elements_[b];
  });
  std::map<int, int> label;  // rep -> canonical class label
  std::string out;
  for (int e : order) {
    int rep = Find(e);
    auto [it, inserted] = label.emplace(rep, static_cast<int>(label.size()));
    const IsoElement& el = elements_[e];
    out += StrCat(static_cast<int>(el.kind), ":", el.var, ":", el.relation,
                  ":");
    for (AttrId a : el.path) out += StrCat(a, ".");
    if (el.kind == IsoElement::Kind::kConst) out += el.value.ToString();
    out += StrCat("=c", it->second);
    // Tags (emitted per element so they key on canonical labels).
    if (inserted) {
      auto anchor = anchor_.find(rep);
      if (anchor != anchor_.end()) out += StrCat("@", anchor->second);
      if (null_tag_.count(rep) > 0) out += "@null";
      auto c = const_tag_.find(rep);
      if (c != const_tag_.end()) out += StrCat("@k", c->second.ToString());
    }
    out += ";";
  }
  // Disequalities on canonical labels, sorted.
  std::vector<std::pair<int, int>> dis;
  for (const auto& [a, b] : disequalities_) {
    int la = label.count(Find(a)) ? label[Find(a)] : -1;
    int lb = label.count(Find(b)) ? label[Find(b)] : -1;
    dis.emplace_back(std::min(la, lb), std::max(la, lb));
  }
  std::sort(dis.begin(), dis.end());
  dis.erase(std::unique(dis.begin(), dis.end()), dis.end());
  for (const auto& [a, b] : dis) out += StrCat("!", a, ",", b, ";");
  // Negative atoms on canonical labels, sorted.
  std::vector<std::string> negs;
  for (const NegAtom& n : neg_atoms_) {
    std::string s = StrCat("~R", n.relation, "(");
    for (int a : n.args) s += StrCat(label[Find(a)], ",");
    s += ")";
    negs.push_back(std::move(s));
  }
  std::sort(negs.begin(), negs.end());
  negs.erase(std::unique(negs.begin(), negs.end()), negs.end());
  for (const std::string& s : negs) out += s;
  return out;
}

void PartialIsoType::CanonicalEncode(std::vector<int64_t>* tokens,
                                     std::vector<Rational>* consts) const {
  // Mirrors Signature(): canonical element order, dense class labels in
  // first-seen order, then tags, sorted disequalities and negative
  // atoms — emitted as int64 tokens instead of string fragments.
  constexpr int64_t kSection = INT64_MIN;  // never a valid field value
  std::vector<int> order(num_elements());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return elements_[a] < elements_[b];
  });
  std::map<int, int> label;  // rep -> canonical class label
  for (int e : order) {
    int rep = Find(e);
    auto [it, inserted] = label.emplace(rep, static_cast<int>(label.size()));
    const IsoElement& el = elements_[e];
    tokens->push_back(static_cast<int64_t>(el.kind));
    tokens->push_back(el.var);
    tokens->push_back(el.relation);
    tokens->push_back(static_cast<int64_t>(el.path.size()));
    for (AttrId a : el.path) tokens->push_back(a);
    if (el.kind == IsoElement::Kind::kConst) consts->push_back(el.value);
    tokens->push_back(it->second);
    if (inserted) {
      auto anchor = anchor_.find(rep);
      tokens->push_back(anchor != anchor_.end() ? anchor->second
                                                : kNoRelation - 1);
      tokens->push_back(null_tag_.count(rep) > 0 ? 1 : 0);
      auto c = const_tag_.find(rep);
      tokens->push_back(c != const_tag_.end() ? 1 : 0);
      if (c != const_tag_.end()) consts->push_back(c->second);
    }
  }
  tokens->push_back(kSection);
  // Disequalities on canonical labels, sorted and deduplicated.
  std::vector<std::pair<int, int>> dis;
  for (const auto& [a, b] : disequalities_) {
    auto la = label.find(Find(a));
    auto lb = label.find(Find(b));
    int va = la == label.end() ? -1 : la->second;
    int vb = lb == label.end() ? -1 : lb->second;
    dis.emplace_back(std::min(va, vb), std::max(va, vb));
  }
  std::sort(dis.begin(), dis.end());
  dis.erase(std::unique(dis.begin(), dis.end()), dis.end());
  for (const auto& [a, b] : dis) {
    tokens->push_back(a);
    tokens->push_back(b);
  }
  tokens->push_back(kSection);
  // Negative atoms on canonical labels, sorted and deduplicated. The
  // sort key differs from Signature()'s (vectors, not strings), but
  // both canonicalize the same *set*, so equality coincides.
  std::vector<std::vector<int64_t>> negs;
  for (const NegAtom& n : neg_atoms_) {
    std::vector<int64_t> enc{n.relation};
    for (int a : n.args) enc.push_back(label[Find(a)]);
    negs.push_back(std::move(enc));
  }
  std::sort(negs.begin(), negs.end());
  negs.erase(std::unique(negs.begin(), negs.end()), negs.end());
  for (const std::vector<int64_t>& n : negs) {
    tokens->push_back(static_cast<int64_t>(n.size()));
    tokens->insert(tokens->end(), n.begin(), n.end());
  }
}

size_t HashCanonicalEncoding(const std::vector<int64_t>& tokens,
                             const std::vector<Rational>& consts) {
  size_t seed = tokens.size();
  for (int64_t t : tokens) HashMix(&seed, t);
  for (const Rational& r : consts) HashCombine(&seed, r.Hash());
  return seed;
}

size_t PartialIsoType::CanonicalHash() const {
  std::vector<int64_t> tokens;
  std::vector<Rational> consts;
  CanonicalEncode(&tokens, &consts);
  return HashCanonicalEncoding(tokens, consts);
}

bool PartialIsoType::CanonicalEquals(const PartialIsoType& other) const {
  std::vector<int64_t> a_tokens, b_tokens;
  std::vector<Rational> a_consts, b_consts;
  CanonicalEncode(&a_tokens, &a_consts);
  other.CanonicalEncode(&b_tokens, &b_consts);
  return a_tokens == b_tokens && a_consts == b_consts;
}

std::string PartialIsoType::ToString() const {
  std::string out;
  std::map<int, std::vector<int>> classes;
  for (int e = 0; e < num_elements(); ++e) classes[Find(e)].push_back(e);
  for (const auto& [rep, members] : classes) {
    std::vector<std::string> names;
    for (int m : members) names.push_back(elements_[m].ToString(scope_));
    out += StrCat("{", StrJoin(names, " = "), "}");
    auto a = anchor_.find(rep);
    if (a != anchor_.end()) out += StrCat("@", schema_->relation(a->second).name());
    if (null_tag_.count(rep) > 0) out += "@null";
    auto c = const_tag_.find(rep);
    if (c != const_tag_.end()) out += StrCat("=", c->second.ToString());
    out += " ";
  }
  if (!disequalities_.empty()) {
    out += StrCat("(", disequalities_.size(), " diseq)");
  }
  if (!neg_atoms_.empty()) out += StrCat("(", neg_atoms_.size(), " negatom)");
  return out;
}

}  // namespace has
