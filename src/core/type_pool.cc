#include "core/type_pool.h"

#include <cassert>

namespace has {

TypeId TypePool::Intern(PartialIsoType iso) {
  iso.Normalize();
  return InternImpl(iso, &iso);
}

TypeId TypePool::InternNormalized(const PartialIsoType& iso) {
  return InternImpl(iso, nullptr);
}

TypeId TypePool::InternNormalized(PartialIsoType&& iso) {
  return InternImpl(iso, &iso);
}

TypeId TypePool::InternImpl(const PartialIsoType& iso,
                            PartialIsoType* owned) {
  ++stats_.iso_queries;
  std::vector<int64_t> tokens;
  std::vector<Rational> consts;
  iso.CanonicalEncode(&tokens, &consts);
  size_t hash = HashCanonicalEncoding(tokens, consts);

  std::vector<TypeId>& bucket = type_buckets_[hash];
  for (TypeId id : bucket) {
    if (type_tokens_[static_cast<size_t>(id)] == tokens &&
        type_consts_[static_cast<size_t>(id)] == consts) {
      ++stats_.iso_hits;
      // Id equality must coincide with signature equality (the
      // canonical encoding is a faithful re-coding of Signature()).
      assert(types_[static_cast<size_t>(id)].Signature() == iso.Signature());
      return id;
    }
  }
  TypeId id = static_cast<TypeId>(types_.size());
  if (owned != nullptr) {
    types_.push_back(std::move(*owned));
  } else {
    types_.push_back(iso);
  }
  type_tokens_.push_back(std::move(tokens));
  type_consts_.push_back(std::move(consts));
  bucket.push_back(id);
  return id;
}

CellId TypePool::InternCell(Cell cell) {
  ++stats_.cell_queries;
  size_t hash = cell.Hash();
  std::vector<CellId>& bucket = cell_buckets_[hash];
  for (CellId id : bucket) {
    if (cells_[static_cast<size_t>(id)] == cell) {
      ++stats_.cell_hits;
      return id;
    }
  }
  CellId id = static_cast<CellId>(cells_.size());
  cells_.push_back(std::move(cell));
  bucket.push_back(id);
  return id;
}

}  // namespace has
