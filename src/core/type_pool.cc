#include "core/type_pool.h"

#include <cassert>
#include <utility>

namespace has {

TypeId TypePool::Intern(PartialIsoType iso) {
  iso.Normalize();
  return InternImpl(iso, &iso);
}

TypeId TypePool::InternNormalized(const PartialIsoType& iso) {
  return InternImpl(iso, nullptr);
}

TypeId TypePool::InternNormalized(PartialIsoType&& iso) {
  return InternImpl(iso, &iso);
}

TypeId TypePool::InternImpl(const PartialIsoType& iso,
                            PartialIsoType* owned) {
  std::vector<int64_t> tokens;
  std::vector<Rational> consts;
  iso.CanonicalEncode(&tokens, &consts);
  size_t hash = HashCanonicalEncoding(tokens, consts);

  TypeStripe& stripe = type_stripes_[StripeOf(hash)];
  std::lock_guard<std::mutex> stripe_lock(stripe.mutex);
  std::vector<TypeEntry>& bucket = stripe.buckets[hash];
  for (const TypeEntry& entry : bucket) {
    if (entry.tokens == tokens && entry.consts == consts) {
      iso_hits_.fetch_add(1, std::memory_order_relaxed);
      // Id equality must coincide with signature equality (the
      // canonical encoding is a faithful re-coding of Signature()).
      assert(types_[static_cast<size_t>(entry.id)].Signature() ==
             iso.Signature());
      return entry.id;
    }
  }
  TypeId id;
  {
    // Stripe mutex is held, so no other thread can insert this key; the
    // arena mutex (always acquired after a stripe mutex, never before)
    // serializes appends across stripes.
    std::lock_guard<std::mutex> arena_lock(types_arena_mutex_);
    if (owned != nullptr) {
      owned->CompressPaths();
      id = static_cast<TypeId>(types_.Append(std::move(*owned)));
    } else {
      PartialIsoType copy = iso;
      copy.CompressPaths();
      id = static_cast<TypeId>(types_.Append(std::move(copy)));
    }
  }
  bucket.push_back(TypeEntry{id, std::move(tokens), std::move(consts)});
  return id;
}

CellId TypePool::InternCell(Cell cell) {
  size_t hash = cell.Hash();
  CellStripe& stripe = cell_stripes_[StripeOf(hash)];
  std::lock_guard<std::mutex> stripe_lock(stripe.mutex);
  std::vector<CellId>& bucket = stripe.buckets[hash];
  for (CellId id : bucket) {
    if (cells_[static_cast<size_t>(id)] == cell) {
      cell_hits_.fetch_add(1, std::memory_order_relaxed);
      return id;
    }
  }
  CellId id;
  {
    std::lock_guard<std::mutex> arena_lock(cells_arena_mutex_);
    id = static_cast<CellId>(cells_.Append(std::move(cell)));
  }
  bucket.push_back(id);
  return id;
}

void TypePool::MergeFrom(const TypePool& other,
                         std::vector<TypeId>* type_remap,
                         std::vector<CellId>* cell_remap) {
  size_t n_types = other.num_types();
  type_remap->resize(n_types);
  for (size_t i = 0; i < n_types; ++i) {
    // Pooled instances are canonical (normalized at interning time), so
    // the cheap path applies.
    (*type_remap)[i] =
        InternNormalized(other.type(static_cast<TypeId>(i)));
  }
  size_t n_cells = other.num_cells();
  cell_remap->resize(n_cells);
  for (size_t i = 0; i < n_cells; ++i) {
    (*cell_remap)[i] = InternCell(other.cell(static_cast<CellId>(i)));
  }
}

}  // namespace has
