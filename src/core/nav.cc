#include "core/nav.h"

#include <functional>

#include "schema/fk_graph.h"

namespace has {

std::vector<uint64_t> PaperNavigationDepths(const ArtifactSystem& system) {
  FkGraph fk(system.schema());
  std::vector<uint64_t> depths(system.num_tasks(), 0);
  std::function<uint64_t(TaskId)> h = [&](TaskId t) -> uint64_t {
    if (depths[t] != 0) return depths[t];
    std::vector<uint64_t> child_depths;
    for (TaskId c : system.task(t).children()) child_depths.push_back(h(c));
    depths[t] = NavigationDepthBound(
        fk, static_cast<uint64_t>(system.task(t).vars().size()),
        child_depths);
    return depths[t];
  };
  for (TaskId t = 0; t < system.num_tasks(); ++t) h(t);
  return depths;
}

}  // namespace has
