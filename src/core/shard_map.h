// Shard assignment for partitioned coverability exploration: a node of
// the Karp–Miller graph is identified by its (VASS state, marking) key,
// and the ShardMap hashes that key to the worker shard that owns it —
// i.e. that dedups, interns and expands it. Ownership by hashed key
// makes the partition deterministic for a fixed input (states are
// pool-interned ids assigned in deterministic commit order) and
// balanced without coordination: two shards never race on the same key
// because equal keys always map to the same shard.
#ifndef HAS_CORE_SHARD_MAP_H_
#define HAS_CORE_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "common/hashing.h"

namespace has {

class ShardMap {
 public:
  explicit ShardMap(int num_shards) : num_shards_(num_shards) {}

  int num_shards() const { return num_shards_; }

  /// Owner shard of the node key (state, marking). Markings arrive in
  /// canonical form (trailing zeros stripped), so equal nodes hash
  /// identically. Accepts any int64 range — an owning std::vector or a
  /// packed MarkingView — and hashes content-identically for both, so
  /// routing a candidate's owned marking and re-routing its interned
  /// arena view agree on the owner.
  template <typename Marking>
  int ShardOf(int state, const Marking& marking) const {
    size_t seed = static_cast<size_t>(state);
    for (int64_t v : marking) HashMix(&seed, v);
    // Fold the high bits in: the bucket maps downstream consume the low
    // bits, and reusing them verbatim would correlate shard and bucket.
    // (Half-width shift: defined on 32-bit size_t too.)
    HashCombine(&seed, seed >> (sizeof(size_t) * 4));
    return static_cast<int>(seed % static_cast<size_t>(num_shards_));
  }

 private:
  int num_shards_;
};

}  // namespace has

#endif  // HAS_CORE_SHARD_MAP_H_
