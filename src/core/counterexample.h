// Rendering of symbolic counterexamples: the witnessing path through
// the root task's product (stem + loop for lassos, stem for blocking
// runs), with child calls annotated by their guessed outcomes and
// expanded one level through the memoized child explorations.
#ifndef HAS_CORE_COUNTEREXAMPLE_H_
#define HAS_CORE_COUNTEREXAMPLE_H_

#include <string>

#include "core/rt_relation.h"

namespace has {

std::string FormatCounterexample(const RtEngine& engine,
                                 const RtEngine::RootWitness& witness,
                                 const ArtifactSystem& system);

}  // namespace has

#endif  // HAS_CORE_COUNTEREXAMPLE_H_
