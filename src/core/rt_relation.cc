#include "core/rt_relation.h"

#include <unordered_set>

#include "common/hashing.h"
#include "common/status.h"
#include "common/strings.h"

namespace has {

RtEngine::RtEngine(const ArtifactSystem* system, const HltlProperty* property,
                   const VerifierOptions& options, const Hcd* hcd)
    : system_(system), property_(property), options_(options), hcd_(hcd) {
  automata_ = std::make_unique<PropertyAutomata>(system, property);
  for (TaskId t = 0; t < system->num_tasks(); ++t) {
    contexts_[t] =
        std::make_unique<TaskContext>(system, property, t, options_, hcd);
    context_ptrs_[t] = contexts_[t].get();
  }
}

RtEngine::~RtEngine() = default;

RtQueryKey RtEngine::EntryKey(TaskId task, const PartialIsoType& input_iso,
                              const Cell& input_cell, Assignment beta) {
  RtQueryKey key;
  key.task = task;
  key.iso = pool_.Intern(input_iso);
  key.cell = pool_.InternCell(input_cell);
  key.beta = beta;
  return key;
}

const RtEngine::Entry* RtEngine::FindEntry(const RtQueryKey& key) const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  auto it = memo_.find(key);
  return it == memo_.end() ? nullptr : it->second.get();
}

const ChildResult& RtEngine::Query(TaskId task,
                                   const PartialIsoType& input_iso,
                                   const Cell& input_cell, Assignment beta) {
  RtQueryKey key = EntryKey(task, input_iso, input_cell, beta);
  return QueryByKey(key, input_iso, input_cell);
}

RtOracle::BatchedChildResult RtEngine::QueryAll(
    TaskId task, const PartialIsoType& input_iso, const Cell& input_cell,
    Assignment num_assignments) {
  // One input interning serves every assignment's key and lookup.
  RtQueryKey key = EntryKey(task, input_iso, input_cell, 0);
  BatchedChildResult batch;
  batch.results.reserve(num_assignments);
  batch.keys.reserve(num_assignments);
  for (Assignment beta = 0; beta < num_assignments; ++beta) {
    key.beta = beta;
    batch.keys.push_back(key);
    batch.results.push_back(&QueryByKey(key, input_iso, input_cell));
  }
  return batch;
}

const ChildResult& RtEngine::QueryByKey(const RtQueryKey& key,
                                        const PartialIsoType& input_iso,
                                        const Cell& input_cell) {
  Entry* entry;
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    std::unique_ptr<Entry>& slot = memo_[key];
    if (slot == nullptr) slot = std::make_unique<Entry>();
    entry = slot.get();
  }
  if (entry->ready.load(std::memory_order_acquire)) return entry->result;
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (entry->ready.load(std::memory_order_relaxed)) return entry->result;
  ComputeEntry(key, input_iso, input_cell, entry);
  entry->ready.store(true, std::memory_order_release);
  return entry->result;
}

void RtEngine::ComputeEntry(const RtQueryKey& key,
                            const PartialIsoType& input_iso,
                            const Cell& input_cell, Entry* entry) {
  entry->task = key.task;
  const Condition* filter =
      key.task == system_->root() ? system_->global_pre().get() : nullptr;
  entry->vass = std::make_unique<TaskVass>(
      context_ptrs_.at(key.task), &context_ptrs_, automata_.get(), &pool_,
      key.beta, input_iso, input_cell, this, filter);
  KarpMillerOptions km_options;
  km_options.max_nodes = options_.max_cov_nodes;
  km_options.succ_cache_capacity = options_.succ_cache_capacity;
  km_options.prune_coverability = options_.prune_coverability;
  // Take the shard token if free: the outermost in-flight exploration
  // gets the worker team; nested child builds (reached from its
  // workers) run sequential instead of multiplying threads per level.
  // The token is held across BOTH builds of a pruned query (pruned
  // reachability graph + possible full lasso graph).
  int expected = 0;
  const bool shard_this =
      options_.num_shards > 1 &&
      sharded_builds_.compare_exchange_strong(expected, 1);
  km_options.num_shards = shard_this ? options_.num_shards : 1;
  entry->graph = std::make_unique<KarpMiller>(entry->vass.get(), km_options);
  entry->graph->Build(entry->vass->InitialStates());

  // Returning outputs: deduplicate by interned (type, cell) outcome id.
  // Sound on the pruned graph: antichain pruning preserves exactly the
  // reachable VASS states (every dropped marking is covered by an
  // expanded node of the same state), and returning/blocking/accepting
  // are per-state predicates.
  std::unordered_set<std::pair<TypeId, CellId>, PairHash<TypeId, CellId>>
      seen_outputs;
  for (int n = 0; n < entry->graph->num_nodes(); ++n) {
    int state = entry->graph->node_state(n);
    if (!entry->vass->IsReturning(state)) continue;
    ChildOutcome out = entry->vass->OutputOf(state);
    std::pair<TypeId, CellId> out_key{pool_.Intern(out.iso),
                                      pool_.InternCell(out.cell)};
    if (!seen_outputs.insert(out_key).second) continue;
    out.iso = pool_.type(out_key.first);  // canonical representative
    entry->result.returning.push_back(std::move(out));
    entry->returning_nodes.push_back(n);
  }
  // Blocking runs.
  for (int n = 0; n < entry->graph->num_nodes(); ++n) {
    if (entry->vass->IsBlocking(entry->graph->node_state(n))) {
      entry->blocking_node = n;
      entry->result.has_bottom = true;
      break;
    }
  }
  // Lasso runs. The closed-walk SCC analysis needs the full coverage
  // graph: pruning drops subsumed successors without leaving edges, so
  // a pruned graph is a spanning forest with no cycles to find. With
  // pruning off, `graph` IS the full graph and doubles as the lasso
  // graph (computed even when a blocking witness already settled ⊥ —
  // the lasso witness is nicer for counterexamples — unless the graph
  // is large). With pruning on, a full graph is built only when the
  // ⊥-bit is still open AND some Büchi-accepting state is reachable —
  // pruned and full graphs carry the same state set, so scanning the
  // pruned graph for accepting states is a sound (and cheap) gate.
  const bool pruned = options_.prune_coverability;
  const auto accepting = [&](int state) {
    return entry->vass->IsBuchiAccepting(state);
  };
  // Scoped to ComputeEntry: the witness keeps only label sequences
  // (graph-independent transition-record ids), so the 12–22x-larger
  // unpruned graph is reclaimed before the entry is memoized.
  std::unique_ptr<KarpMiller> full_graph;
  bool need_lasso;
  if (pruned) {
    need_lasso =
        !entry->result.has_bottom && entry->graph->FindNode(accepting) >= 0;
    if (need_lasso) {
      KarpMillerOptions full_options = km_options;
      full_options.prune_coverability = false;
      full_graph = std::make_unique<KarpMiller>(entry->vass.get(),
                                                full_options);
      full_graph->Build(entry->vass->InitialStates());
    }
  } else {
    need_lasso =
        !entry->result.has_bottom || entry->graph->num_nodes() < 20000;
  }
  if (need_lasso) {
    const KarpMiller& lasso_graph =
        full_graph != nullptr ? *full_graph : *entry->graph;
    RepeatedReachabilityOptions rr;
    rr.effect_bound = options_.lasso_effect_bound;
    rr.max_steps = options_.lasso_max_steps;
    entry->lasso = FindAcceptingLasso(lasso_graph, accepting, rr);
    if (entry->lasso.has_value()) entry->result.has_bottom = true;
  }
  if (shard_this) sharded_builds_.store(0);

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    stats_.cov_nodes += entry->graph->num_nodes();
    stats_.cov_edges += entry->graph->TotalEdges();
    stats_.product_states += entry->vass->num_states();
    stats_.counter_dims =
        std::max(stats_.counter_dims,
                 static_cast<size_t>(entry->vass->num_dimensions()));
    stats_.pooled_types = pool_.num_types();
    stats_.pooled_cells = pool_.num_cells();
    stats_.succ_cache_hits += entry->graph->succ_cache_hits();
    stats_.succ_cache_misses += entry->graph->succ_cache_misses();
    stats_.pruned_successors += entry->graph->pruned_successors();
    stats_.deactivated_nodes += entry->graph->deactivated_nodes();
    stats_.antichain_peak =
        std::max(stats_.antichain_peak, entry->graph->antichain_peak());
    stats_.truncated = stats_.truncated || entry->graph->truncated() ||
                       entry->vass->truncated();
    if (full_graph != nullptr) {
      // The fallback's work is real: count its nodes/edges so pruned
      // cov_nodes honestly reflect TOTAL exploration effort.
      ++stats_.full_graph_builds;
      stats_.cov_nodes += full_graph->num_nodes();
      stats_.cov_edges += full_graph->TotalEdges();
      stats_.succ_cache_hits += full_graph->succ_cache_hits();
      stats_.succ_cache_misses += full_graph->succ_cache_misses();
      stats_.truncated = stats_.truncated || full_graph->truncated();
    }
  }
}

RtEngine::RootWitness RtEngine::CheckRoot() {
  RootWitness witness;
  TaskId root = system_->root();
  TaskAutomata& root_automata = automata_->ForTask(root);
  int root_bit = root_automata.AssignmentBit(property_->root_node());
  HAS_CHECK_MSG(root_bit >= 0, "root node not in the root task's Φ");

  const Task& root_task = system_->task(root);
  PartialIsoType empty_input(&system_->schema(), &root_task.vars(),
                             contexts_.at(root)->nav_depth());
  Cell empty_cell;

  for (Assignment beta = 0;
       beta < static_cast<Assignment>(root_automata.num_assignments());
       ++beta) {
    if (((beta >> root_bit) & 1) == 0) continue;
    const ChildResult& result = Query(root, empty_input, empty_cell, beta);
    if (!result.has_bottom) continue;
    witness.satisfiable = true;
    witness.entry_key = EntryKey(root, empty_input, empty_cell, beta);
    const Entry* entry = FindEntry(witness.entry_key);
    if (entry->lasso.has_value()) {
      witness.stem_labels = entry->lasso->stem_labels;
      witness.loop_labels = entry->lasso->loop_labels;
      witness.final_node = entry->lasso->node;
      witness.blocking = false;
    } else {
      witness.stem_labels = entry->graph->PathLabels(entry->blocking_node);
      witness.final_node = entry->blocking_node;
      witness.blocking = true;
    }
    return witness;
  }
  return witness;
}

}  // namespace has
