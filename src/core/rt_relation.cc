#include "core/rt_relation.h"

#include <unordered_set>

#include "common/hashing.h"
#include "common/status.h"
#include "common/strings.h"

namespace has {

RtEngine::RtEngine(const ArtifactSystem* system, const HltlProperty* property,
                   const VerifierOptions& options, const Hcd* hcd)
    : system_(system), property_(property), options_(options), hcd_(hcd) {
  automata_ = std::make_unique<PropertyAutomata>(system, property);
  for (TaskId t = 0; t < system->num_tasks(); ++t) {
    contexts_[t] =
        std::make_unique<TaskContext>(system, property, t, options_, hcd);
    context_ptrs_[t] = contexts_[t].get();
  }
}

RtEngine::~RtEngine() = default;

RtQueryKey RtEngine::EntryKey(TaskId task, const PartialIsoType& input_iso,
                              const Cell& input_cell, Assignment beta) {
  RtQueryKey key;
  key.task = task;
  key.iso = pool_.Intern(input_iso);
  key.cell = pool_.InternCell(input_cell);
  key.beta = beta;
  return key;
}

const RtEngine::Entry* RtEngine::FindEntry(const RtQueryKey& key) const {
  auto it = memo_.find(key);
  return it == memo_.end() ? nullptr : it->second.get();
}

const ChildResult& RtEngine::Query(TaskId task,
                                   const PartialIsoType& input_iso,
                                   const Cell& input_cell, Assignment beta) {
  RtQueryKey key = EntryKey(task, input_iso, input_cell, beta);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second->result;

  ++stats_.queries;
  auto entry = std::make_unique<Entry>();
  entry->task = task;
  const Condition* filter =
      task == system_->root() ? system_->global_pre().get() : nullptr;
  entry->vass = std::make_unique<TaskVass>(
      context_ptrs_.at(task), &context_ptrs_, automata_.get(), &pool_, beta,
      input_iso, input_cell, this, filter);
  KarpMillerOptions km_options;
  km_options.max_nodes = options_.max_cov_nodes;
  entry->graph = std::make_unique<KarpMiller>(entry->vass.get(), km_options);
  // NOTE: the memo entry must be registered BEFORE Build so that
  // re-entrant queries of the same key cannot occur (the hierarchy is a
  // tree, so recursion only descends to children — this is belt and
  // braces for stats accounting).
  Entry* raw = entry.get();
  memo_.emplace(key, std::move(entry));
  raw->graph->Build(raw->vass->InitialStates());

  stats_.cov_nodes += raw->graph->num_nodes();
  stats_.cov_edges += raw->graph->TotalEdges();
  stats_.product_states += raw->vass->num_states();
  stats_.counter_dims =
      std::max(stats_.counter_dims,
               static_cast<size_t>(raw->vass->num_dimensions()));
  stats_.pooled_types = pool_.num_types();
  stats_.pooled_cells = pool_.num_cells();
  stats_.truncated =
      stats_.truncated || raw->graph->truncated() || raw->vass->truncated();

  // Returning outputs: deduplicate by interned (type, cell) outcome id.
  std::unordered_set<std::pair<TypeId, CellId>, PairHash<TypeId, CellId>>
      seen_outputs;
  for (int n = 0; n < raw->graph->num_nodes(); ++n) {
    int state = raw->graph->node_state(n);
    if (!raw->vass->IsReturning(state)) continue;
    ChildOutcome out = raw->vass->OutputOf(state);
    std::pair<TypeId, CellId> out_key{pool_.Intern(out.iso),
                                      pool_.InternCell(out.cell)};
    if (!seen_outputs.insert(out_key).second) continue;
    out.iso = pool_.type(out_key.first);  // canonical representative
    raw->result.returning.push_back(std::move(out));
    raw->returning_nodes.push_back(n);
  }
  // Blocking runs.
  for (int n = 0; n < raw->graph->num_nodes(); ++n) {
    if (raw->vass->IsBlocking(raw->graph->node_state(n))) {
      raw->blocking_node = n;
      raw->result.has_bottom = true;
      break;
    }
  }
  // Lasso runs (only needed if no blocking witness was found, but the
  // lasso witness is nicer for counterexamples, so compute it anyway
  // unless the graph is large).
  if (!raw->result.has_bottom || raw->graph->num_nodes() < 20000) {
    RepeatedReachabilityOptions rr;
    rr.effect_bound = options_.lasso_effect_bound;
    rr.max_steps = options_.lasso_max_steps;
    raw->lasso = FindAcceptingLasso(
        *raw->graph,
        [&](int state) { return raw->vass->IsBuchiAccepting(state); }, rr);
    if (raw->lasso.has_value()) raw->result.has_bottom = true;
  }
  return raw->result;
}

RtEngine::RootWitness RtEngine::CheckRoot() {
  RootWitness witness;
  TaskId root = system_->root();
  TaskAutomata& root_automata = automata_->ForTask(root);
  int root_bit = root_automata.AssignmentBit(property_->root_node());
  HAS_CHECK_MSG(root_bit >= 0, "root node not in the root task's Φ");

  const Task& root_task = system_->task(root);
  PartialIsoType empty_input(&system_->schema(), &root_task.vars(),
                             contexts_.at(root)->nav_depth());
  Cell empty_cell;

  for (Assignment beta = 0;
       beta < static_cast<Assignment>(root_automata.num_assignments());
       ++beta) {
    if (((beta >> root_bit) & 1) == 0) continue;
    const ChildResult& result = Query(root, empty_input, empty_cell, beta);
    if (!result.has_bottom) continue;
    witness.satisfiable = true;
    witness.entry_key = EntryKey(root, empty_input, empty_cell, beta);
    const Entry* entry = FindEntry(witness.entry_key);
    if (entry->lasso.has_value()) {
      witness.stem_labels = entry->lasso->stem_labels;
      witness.loop_labels = entry->lasso->loop_labels;
      witness.final_node = entry->lasso->node;
      witness.blocking = false;
    } else {
      witness.stem_labels = entry->graph->PathLabels(entry->blocking_node);
      witness.final_node = entry->blocking_node;
      witness.blocking = true;
    }
    return witness;
  }
  return witness;
}

}  // namespace has
