#include "core/rt_relation.h"

#include <unordered_set>

#include "common/hashing.h"
#include "common/status.h"
#include "common/strings.h"

namespace has {

namespace {

/// Releases the engine-wide shard token on every exit path. The token
/// used to be released by a plain store at the end of ComputeEntry, so
/// any exception between acquire and release (e.g. a HAS_CHECK inside
/// a build) leaked it and silently degraded every later query to
/// sequential exploration.
class ShardTokenGuard {
 public:
  ShardTokenGuard(std::atomic<int>* token, bool held)
      : token_(token), held_(held) {}
  ~ShardTokenGuard() {
    if (held_) token_->store(0);
  }
  ShardTokenGuard(const ShardTokenGuard&) = delete;
  ShardTokenGuard& operator=(const ShardTokenGuard&) = delete;
  bool held() const { return held_; }

 private:
  std::atomic<int>* token_;
  bool held_;
};

}  // namespace

RtEngine::RtEngine(const ArtifactSystem* system, const HltlProperty* property,
                   const VerifierOptions& options, const Hcd* hcd)
    : system_(system), property_(property), options_(options), hcd_(hcd) {
  automata_ = std::make_unique<PropertyAutomata>(system, property);
  for (TaskId t = 0; t < system->num_tasks(); ++t) {
    contexts_[t] =
        std::make_unique<TaskContext>(system, property, t, options_, hcd);
    context_ptrs_[t] = contexts_[t].get();
  }
}

RtEngine::~RtEngine() = default;

RtQueryKey RtEngine::EntryKey(TaskId task, const PartialIsoType& input_iso,
                              const Cell& input_cell, Assignment beta) {
  RtQueryKey key;
  key.task = task;
  key.iso = pool_.Intern(input_iso);
  key.cell = pool_.InternCell(input_cell);
  key.beta = beta;
  return key;
}

const RtEngine::Entry* RtEngine::FindEntry(const RtQueryKey& key) const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  auto it = memo_.find(key);
  return it == memo_.end() ? nullptr : it->second.get();
}

const ChildResult& RtEngine::Query(TaskId task,
                                   const PartialIsoType& input_iso,
                                   const Cell& input_cell, Assignment beta) {
  RtQueryKey key = EntryKey(task, input_iso, input_cell, beta);
  return QueryByKey(key, input_iso, input_cell);
}

RtOracle::BatchedChildResult RtEngine::QueryAll(
    TaskId task, const PartialIsoType& input_iso, const Cell& input_cell,
    Assignment num_assignments) {
  // One input interning serves every assignment's key and lookup.
  RtQueryKey key = EntryKey(task, input_iso, input_cell, 0);
  BatchedChildResult batch;
  batch.results.reserve(num_assignments);
  batch.keys.reserve(num_assignments);
  for (Assignment beta = 0; beta < num_assignments; ++beta) {
    key.beta = beta;
    batch.keys.push_back(key);
    batch.results.push_back(&QueryByKey(key, input_iso, input_cell));
  }
  return batch;
}

const ChildResult& RtEngine::QueryByKey(const RtQueryKey& key,
                                        const PartialIsoType& input_iso,
                                        const Cell& input_cell) {
  Entry* entry;
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    std::unique_ptr<Entry>& slot = memo_[key];
    if (slot == nullptr) slot = std::make_unique<Entry>();
    entry = slot.get();
  }
  if (entry->ready.load(std::memory_order_acquire)) return entry->result;
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (entry->ready.load(std::memory_order_relaxed)) return entry->result;
  ComputeEntry(key, input_iso, input_cell, entry);
  entry->ready.store(true, std::memory_order_release);
  return entry->result;
}

void RtEngine::ComputeEntry(const RtQueryKey& key,
                            const PartialIsoType& input_iso,
                            const Cell& input_cell, Entry* entry) {
  entry->task = key.task;
  const Condition* filter =
      key.task == system_->root() ? system_->global_pre().get() : nullptr;
  entry->vass = std::make_unique<TaskVass>(
      context_ptrs_.at(key.task), &context_ptrs_, automata_.get(), &pool_,
      key.beta, input_iso, input_cell, this, filter);
  KarpMillerOptions km_options;
  km_options.max_nodes = options_.max_cov_nodes;
  km_options.succ_cache_capacity = options_.succ_cache_capacity;
  km_options.prune_coverability = options_.prune_coverability;
  km_options.por = options_.por;
  // Take the shard token if free: the outermost in-flight exploration
  // gets the worker team; nested child builds (reached from its
  // workers) run sequential instead of multiplying threads per level.
  int expected = 0;
  ShardTokenGuard shard_token(
      &sharded_builds_,
      options_.num_shards > 1 &&
          sharded_builds_.compare_exchange_strong(expected, 1));
  km_options.num_shards = shard_token.held() ? options_.num_shards : 1;
  entry->graph = std::make_unique<KarpMiller>(entry->vass.get(), km_options);
  entry->graph->Build(entry->vass->InitialStates());

  // Returning outputs: deduplicate by interned (type, cell) outcome id.
  // Sound on the pruned graph: antichain pruning preserves exactly the
  // reachable VASS states (every dropped marking is covered by an
  // expanded node of the same state), and returning/blocking/accepting
  // are per-state predicates.
  std::unordered_set<std::pair<TypeId, CellId>, PairHash<TypeId, CellId>>
      seen_outputs;
  for (int n = 0; n < entry->graph->num_nodes(); ++n) {
    int state = entry->graph->node_state(n);
    if (!entry->vass->IsReturning(state)) continue;
    ChildOutcome out = entry->vass->OutputOf(state);
    std::pair<TypeId, CellId> out_key{pool_.Intern(out.iso),
                                      pool_.InternCell(out.cell)};
    if (!seen_outputs.insert(out_key).second) continue;
    out.iso = pool_.type(out_key.first);  // canonical representative
    entry->result.returning.push_back(std::move(out));
    entry->returning_nodes.push_back(n);
  }
  // Blocking runs.
  for (int n = 0; n < entry->graph->num_nodes(); ++n) {
    if (entry->vass->IsBlocking(entry->graph->node_state(n))) {
      entry->blocking_node = n;
      entry->result.has_bottom = true;
      break;
    }
  }
  // Lasso runs, directly on `entry->graph`: with pruning on, the
  // closed-walk structure lives in the recorded cover-edges and
  // FindAcceptingLasso knows how to traverse them (vass/repeated.h);
  // with pruning off, the graph is the classical full coverability
  // graph. Either way no second exploration is ever built — the old
  // full-graph fallback (and its 12–22x node blow-up on lasso-heavy
  // families) is gone, which is what keeps stats_.full_graph_builds
  // pinned at zero. The lasso search runs when the ⊥-bit is still
  // open and some Büchi-accepting state is reachable (a per-state
  // scan, exact under pruning), and also — for a nicer witness than
  // the blocking one — when ⊥ is already settled but the graph is
  // small enough (VerifierOptions::lasso_witness_max_nodes).
  const auto accepting = [&](int state) {
    return entry->vass->IsBuchiAccepting(state);
  };
  const bool need_lasso =
      entry->result.has_bottom
          ? static_cast<size_t>(entry->graph->num_nodes()) <
                options_.lasso_witness_max_nodes
          : entry->graph->FindNode(accepting) >= 0;
  bool lasso_budget_exhausted = false;
  if (need_lasso) {
    RepeatedReachabilityOptions rr;
    rr.effect_bound = options_.lasso_effect_bound;
    rr.max_steps = options_.lasso_max_steps;
    entry->lasso = FindAcceptingLasso(*entry->graph, accepting, rr,
                                      &lasso_budget_exhausted);
    if (entry->lasso.has_value()) entry->result.has_bottom = true;
  }
  // A budget-cut lasso search that found nothing leaves the ⊥-bit
  // genuinely unknown when nothing else settled it: fold that into
  // `truncated` so the verdict degrades to INCONCLUSIVE instead of a
  // silent HOLDS. (When blocking already set ⊥, the search was pure
  // witness polish and the cut is harmless.)
  const bool lasso_unresolved =
      lasso_budget_exhausted && !entry->result.has_bottom;

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    stats_.cov_nodes += entry->graph->num_nodes();
    stats_.cov_edges += entry->graph->TotalEdges();
    stats_.product_states += entry->vass->num_states();
    stats_.counter_dims =
        std::max(stats_.counter_dims,
                 static_cast<size_t>(entry->vass->num_dimensions()));
    stats_.pooled_types = pool_.num_types();
    stats_.pooled_cells = pool_.num_cells();
    stats_.succ_cache_hits += entry->graph->succ_cache_hits();
    stats_.succ_cache_misses += entry->graph->succ_cache_misses();
    stats_.pruned_successors += entry->graph->pruned_successors();
    stats_.deactivated_nodes += entry->graph->deactivated_nodes();
    stats_.antichain_peak =
        std::max(stats_.antichain_peak, entry->graph->antichain_peak());
    stats_.cover_edges += entry->graph->cover_edges();
    stats_.antichain_probes += entry->graph->antichain_probes();
    stats_.antichain_bucket_probes += entry->graph->antichain_bucket_probes();
    stats_.antichain_skipped_by_summary +=
        entry->graph->antichain_skipped_by_summary();
    stats_.antichain_buckets_peak = std::max(
        stats_.antichain_buckets_peak, entry->graph->antichain_buckets_peak());
    stats_.sparse_markings += entry->graph->sparse_markings();
    stats_.ample_reduced_successors +=
        entry->graph->ample_reduced_successors();
    stats_.ample_full_expansions += entry->graph->ample_full_expansions();
    stats_.truncated = stats_.truncated || entry->graph->truncated() ||
                       entry->vass->truncated() || lasso_unresolved;
  }
}

RtEngine::RootWitness RtEngine::CheckRoot() {
  RootWitness witness;
  TaskId root = system_->root();
  TaskAutomata& root_automata = automata_->ForTask(root);
  int root_bit = root_automata.AssignmentBit(property_->root_node());
  HAS_CHECK_MSG(root_bit >= 0, "root node not in the root task's Φ");

  const Task& root_task = system_->task(root);
  PartialIsoType empty_input(&system_->schema(), &root_task.vars(),
                             contexts_.at(root)->nav_depth());
  Cell empty_cell;

  for (Assignment beta = 0;
       beta < static_cast<Assignment>(root_automata.num_assignments());
       ++beta) {
    if (((beta >> root_bit) & 1) == 0) continue;
    const ChildResult& result = Query(root, empty_input, empty_cell, beta);
    if (!result.has_bottom) continue;
    witness.satisfiable = true;
    witness.entry_key = EntryKey(root, empty_input, empty_cell, beta);
    const Entry* entry = FindEntry(witness.entry_key);
    if (entry->lasso.has_value()) {
      witness.stem_labels = entry->lasso->stem_labels;
      witness.loop_labels = entry->lasso->loop_labels;
      witness.final_node = entry->lasso->node;
      witness.blocking = false;
    } else {
      witness.stem_labels = entry->graph->PathLabels(entry->blocking_node);
      witness.final_node = entry->blocking_node;
      witness.blocking = true;
    }
    return witness;
  }
  return witness;
}

}  // namespace has
