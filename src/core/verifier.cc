#include "core/verifier.h"

#include <optional>

#include "analysis/analyzer.h"
#include "analysis/slice.h"
#include "core/counterexample.h"

#include "common/strings.h"

namespace has {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kHolds:
      return "HOLDS";
    case Verdict::kViolated:
      return "VIOLATED";
    case Verdict::kInconclusive:
      return "INCONCLUSIVE";
  }
  return "?";
}

namespace {

/// Collects the genuinely arithmetic constraints of a condition.
void CollectArithPolys(const CondPtr& cond, std::vector<LinearExpr>* out) {
  if (cond == nullptr) return;
  std::vector<const Condition*> atoms;
  cond->CollectAtoms(&atoms);
  for (const Condition* a : atoms) {
    if (a->kind() == CondKind::kArith && a->UsesArithmetic()) {
      out->push_back(a->constraint().expr);
    }
  }
}

}  // namespace

bool SystemUsesArithmetic(const ArtifactSystem& system,
                          const HltlProperty& property) {
  for (TaskId t = 0; t < system.num_tasks(); ++t) {
    const Task& task = system.task(t);
    for (const InternalService& s : task.services()) {
      if (s.pre->UsesArithmetic() || s.post->UsesArithmetic()) return true;
    }
    if (task.closing_pre()->UsesArithmetic()) return true;
    if (task.opening_pre()->UsesArithmetic()) return true;
  }
  if (system.global_pre()->UsesArithmetic()) return true;
  for (int n = 0; n < property.num_nodes(); ++n) {
    for (const HltlProp& p : property.node(n).props) {
      if (p.kind == HltlProp::Kind::kCondition &&
          p.condition->UsesArithmetic()) {
        return true;
      }
    }
  }
  return false;
}

Hcd BuildSystemHcd(const ArtifactSystem& system,
                   const HltlProperty& property) {
  std::vector<HcdNode> nodes(system.num_tasks());
  for (TaskId t = 0; t < system.num_tasks(); ++t) {
    const Task& task = system.task(t);
    HcdNode& node = nodes[t];
    for (const InternalService& s : task.services()) {
      CollectArithPolys(s.pre, &node.own_polys);
      CollectArithPolys(s.post, &node.own_polys);
    }
    CollectArithPolys(task.closing_pre(), &node.own_polys);
    for (TaskId c : task.children()) {
      // A child's opening pre-condition is over the parent's scope.
      CollectArithPolys(system.task(c).opening_pre(), &node.own_polys);
    }
    for (int n = 0; n < property.num_nodes(); ++n) {
      if (property.node(n).task != t) continue;
      for (const HltlProp& p : property.node(n).props) {
        if (p.kind == HltlProp::Kind::kCondition) {
          CollectArithPolys(p.condition, &node.own_polys);
        }
      }
    }
    if (t == system.root()) {
      CollectArithPolys(system.global_pre(), &node.own_polys);
    }
    for (TaskId c : task.children()) {
      const Task& child = system.task(c);
      node.children.push_back(c);
      std::map<ArithVar, ArithVar> map;
      for (const auto& [child_var, parent_var] : child.fin()) {
        if (child.vars().var(child_var).sort == VarSort::kNumeric) {
          map[child_var] = parent_var;
        }
      }
      for (const auto& [parent_var, child_var] : child.fout()) {
        if (child.vars().var(child_var).sort == VarSort::kNumeric) {
          map[child_var] = parent_var;
        }
      }
      node.child_var_to_parent.push_back(std::move(map));
    }
  }
  return Hcd::Build(nodes, system.root());
}

VerifyResult Verify(const ArtifactSystem& system,
                    const HltlProperty& property,
                    const VerifierOptions& options) {
  VerifyResult result;
  {
    Status s = ValidateSystem(system);
    HAS_CHECK_MSG(s.ok(), StrCat("invalid system: ", s.ToString()));
    s = property.Validate(system);
    HAS_CHECK_MSG(s.ok(), StrCat("invalid property: ", s.ToString()));
  }

  // Static analysis (diagnostics always; slicing behind options.slice).
  AnalysisResult analysis = AnalyzeSystem(system, {{"property", &property}});
  result.diagnostics = analysis.diagnostics;
  if (options.strict_analysis) {
    HAS_CHECK_MSG(result.diagnostics.empty(),
                  StrCat("strict_analysis: ",
                         RenderDiagnostics(result.diagnostics, nullptr)));
  }

  // The engine runs on the sliced copies when the plan drops anything;
  // the verdict is identical either way (differential-gated like POR).
  std::optional<SlicedSpec> sliced;
  if (options.slice) {
    SlicePlan plan = BuildSlicePlan(system, property, analysis);
    if (!plan.IsNoOp()) {
      sliced = ApplySlice(system, property, plan);
      Status s = ValidateSystem(sliced->system);
      HAS_CHECK_MSG(s.ok(), StrCat("invalid sliced system: ", s.ToString()));
      s = sliced->property.Validate(sliced->system);
      HAS_CHECK_MSG(s.ok(), StrCat("invalid sliced property: ", s.ToString()));
      result.stats.sliced_services =
          static_cast<size_t>(plan.dropped_services);
      result.stats.sliced_dims = static_cast<size_t>(plan.dropped_relations +
                                                     plan.dropped_vars);
    }
  }
  const ArtifactSystem& sys = sliced.has_value() ? sliced->system : system;
  const HltlProperty& prop = sliced.has_value() ? sliced->property : property;

  HltlProperty negated = prop.Negated();
  result.used_arithmetic = SystemUsesArithmetic(sys, prop);
  std::optional<Hcd> hcd;
  if (result.used_arithmetic) {
    hcd = BuildSystemHcd(sys, negated);
    result.hcd_polys = hcd->TotalPolys();
  }

  RtEngine engine(&sys, &negated, options,
                  hcd.has_value() ? &*hcd : nullptr);
  RtEngine::RootWitness witness = engine.CheckRoot();
  const size_t sliced_services = result.stats.sliced_services;
  const size_t sliced_dims = result.stats.sliced_dims;
  result.stats = engine.stats();
  result.stats.sliced_services = sliced_services;
  result.stats.sliced_dims = sliced_dims;
  result.stats.diagnostics_emitted = result.diagnostics.size();
  if (witness.satisfiable) {
    result.verdict = Verdict::kViolated;
    result.counterexample = FormatCounterexample(engine, witness, sys);
  } else if (engine.stats().truncated) {
    result.verdict = Verdict::kInconclusive;
  } else {
    result.verdict = Verdict::kHolds;
  }
  return result;
}

}  // namespace has
