#include "core/task_vass.h"

#include <algorithm>

#include "common/status.h"
#include "common/strings.h"

namespace has {

TaskVass::TaskVass(const TaskContext* ctx,
                   const std::map<TaskId, const TaskContext*>* child_ctxs,
                   PropertyAutomata* automata, TypePool* pool,
                   Assignment beta, PartialIsoType input_iso, Cell input_cell,
                   RtOracle* oracle, const Condition* opening_filter)
    : ctx_(ctx),
      child_ctxs_(child_ctxs),
      all_automata_(automata),
      automata_(&automata->ForTask(ctx->task_id())),
      pool_(pool),
      beta_(beta),
      input_iso_(std::move(input_iso)),
      input_cell_(input_cell),
      oracle_(oracle),
      opening_filter_(opening_filter),
      state_index_(0, StateIndexHash{&states_}, StateIndexEq{&states_}) {
  buchi_ = &automata_->automaton(beta);
}

TypeId TaskVass::InternIso(const PartialIsoType& iso) {
  return pool_->InternNormalized(iso);
}

CellId TaskVass::InternCell(const Cell& cell) {
  return pool_->InternCell(cell);
}

int TaskVass::InternState(State s) {
  // Push the candidate first so the by-id index can hash/compare it;
  // on a hit the candidate is popped again.
  int candidate = static_cast<int>(states_.size());
  states_.push_back(std::move(s));
  auto [it, inserted] = state_index_.insert(candidate);
  if (!inserted) {
    states_.pop_back();
    return *it;
  }
  return candidate;
}

int64_t TaskVass::InternRecord(TransitionRecord rec) {
  RecordKey key;
  key.service = rec.service;
  key.target = rec.target_state;
  key.child_beta = rec.child_beta;
  key.child_key = rec.child_key;
  key.child_result_index = rec.child_result_index;
  auto it = record_index_.find(key);
  if (it != record_index_.end()) return it->second;
  int64_t label = static_cast<int64_t>(records_.size());
  records_.push_back(std::move(rec));
  record_index_.emplace(key, label);
  return label;
}

int TaskVass::DimOf(int relation, TypeId ts) {
  uint64_t key = RelTypeKey(relation, ts);
  auto it = dim_index_.find(key);
  if (it != dim_index_.end()) return it->second;
  int id = static_cast<int>(dim_types_.size());
  dim_types_.emplace_back(relation, ts);
  dim_index_.emplace(key, id);
  return id;
}

int TaskVass::IbIdOf(int relation, TypeId ts) {
  uint64_t key = RelTypeKey(relation, ts);
  auto it = ib_index_.find(key);
  if (it != ib_index_.end()) return it->second;
  int id = static_cast<int>(ib_types_.size());
  ib_types_.emplace_back(relation, ts);
  ib_index_.emplace(key, id);
  return id;
}

int TaskVass::InternOutcome(ChildOutcome outcome) {
  OutcomeKey key;
  key.bottom = outcome.bottom;
  // Child outcomes arrive as canonical pool representatives (the
  // engine normalizes them when deduplicating returning outputs).
  key.iso = pool_->InternNormalized(outcome.iso);
  key.cell = pool_->InternCell(outcome.cell);
  auto it = outcome_index_.find(key);
  if (it != outcome_index_.end()) return it->second;
  int id = static_cast<int>(outcomes_.size());
  // Store the canonical (normalized) instance from the pool so every
  // consumer sees the interned representative.
  outcome.iso = pool_->type(key.iso);
  outcomes_.push_back(std::move(outcome));
  outcome_index_.emplace(key, id);
  return id;
}

std::vector<bool> TaskVass::MakeLetter(const SymbolicConfig& config,
                                       const ServiceRef& service,
                                       TaskId opened_child,
                                       Assignment child_beta) const {
  const std::vector<HltlProp>& props = automata_->props();
  std::vector<bool> letter(props.size(), false);
  for (size_t p = 0; p < props.size(); ++p) {
    const HltlProp& prop = props[p];
    switch (prop.kind) {
      case HltlProp::Kind::kCondition: {
        Truth t = ctx_->EvalSym(*prop.condition, config);
        HAS_CHECK_MSG(t != Truth::kUnknown,
                      "property condition undecided in symbolic state");
        letter[p] = t == Truth::kTrue;
        break;
      }
      case HltlProp::Kind::kService:
        letter[p] = prop.service == service;
        break;
      case HltlProp::Kind::kChildFormula: {
        // [ψ]_Tc holds iff this step opens Tc and the guessed child
        // assignment sets ψ's bit.
        if (opened_child == kNoTask) break;
        const HltlNode& node =
            all_automata_->property().node(prop.child_node);
        if (node.task != opened_child) break;
        int bit =
            all_automata_->ForTask(opened_child).AssignmentBit(prop.child_node);
        if (bit >= 0) letter[p] = ((child_beta >> bit) & 1) != 0;
        break;
      }
    }
  }
  return letter;
}

std::vector<int> TaskVass::InitialStates() {
  std::vector<int> out;
  bool truncated = false;
  std::vector<SymbolicConfig> openings =
      EnumerateOpening(*ctx_, input_iso_, input_cell_, &truncated);
  truncated_ = truncated_ || truncated;
  ServiceRef open_self = ServiceRef::Opening(ctx_->task_id());
  for (const SymbolicConfig& config : openings) {
    if (opening_filter_ != nullptr &&
        ctx_->EvalSym(*opening_filter_, config) != Truth::kTrue) {
      continue;
    }
    std::vector<bool> letter = MakeLetter(config, open_self, kNoTask, 0);
    for (int q : buchi_->initial()) {
      if (!buchi_->CompatibleWith(q, letter)) continue;
      State s;
      s.iso = InternIso(config.iso);
      s.cell = InternCell(config.cell);
      s.service = open_self;
      s.q = q;
      s.stages.assign(ctx_->task().children().size(), ChildStage{});
      int id = InternState(std::move(s));
      if (std::find(out.begin(), out.end(), id) == out.end()) {
        out.push_back(id);
      }
    }
  }
  return out;
}

TaskVass::PendingEdge* TaskVass::EmitPending(const State& from,
                                             const SymbolicConfig& next,
                                             const ServiceRef& service,
                                             TaskId opened_child,
                                             Assignment child_beta,
                                             const std::string& note,
                                             PendingSuccessors* pending) {
  std::vector<bool> letter = MakeLetter(next, service, opened_child,
                                        child_beta);
  PendingEdge pe;
  pe.next_iso = InternIso(next.iso);
  pe.next_cell = InternCell(next.cell);
  pe.service = service;
  pe.child_beta = child_beta;
  pe.note = note;
  for (int q2 : buchi_->successors(from.q)) {
    if (buchi_->CompatibleWith(q2, letter)) pe.q2s.push_back(q2);
  }
  pending->edges.push_back(std::move(pe));
  return &pending->edges.back();
}

std::unique_ptr<VassSystem::Prepared> TaskVass::PrepareSuccessors(
    int state) {
  auto pending = std::make_unique<PendingSuccessors>();
  const State snapshot = states_[state];
  const Task& task = ctx_->task();
  // Returned states are absorbing.
  if (snapshot.service.kind == ServiceRef::Kind::kClosing &&
      snapshot.service.task == ctx_->task_id()) {
    return pending;
  }
  SymbolicConfig cur{pool_->type(snapshot.iso), pool_->cell(snapshot.cell)};

  bool any_active = false;
  for (const ChildStage& st : snapshot.stages) {
    if (st.kind == ChildStage::Kind::kActive ||
        st.kind == ChildStage::Kind::kActiveBottom) {
      any_active = true;
    }
  }

  // (A) Internal services: all subtasks must have returned
  // (restriction 4).
  if (!any_active) {
    // Partial-order reduction: the ample set collects every statically
    // eligible service (insert-only, unobserved, X-free skeletons —
    // TaskContext::PorServiceEligible) that is enabled AND whose
    // post-condition already holds, so its successor set contains the
    // IDENTITY STUTTER step: same iso/cell, marking bumped by the
    // insert deltas only. That step is the whole soundness argument —
    // from its target (same configuration, at least as many tokens)
    // every skipped transition remains enabled with a covering outcome,
    // because internal services resample all non-input variables from
    // the same input projection and inserts only ever ADD counters. So
    // the ample prefix is ONE stutter edge per eligible service
    // (ascending service index), each constructed directly
    // (EnumerateInternal would bury it in the service's full cell
    // fan-out); the committed prefix length is what AmplePrefix(state)
    // reports, and the explorer expands only that prefix while at least
    // one prefix edge makes progress — reaches a FRESH node
    // (vass/karp_miller.cc). Keeping all eligible stutters matters:
    // once one service's counters saturate to ω its stutter stops
    // being fresh, and the remaining services' diagonals must keep the
    // reduction alive. The full service list follows in natural order —
    // ample services included — so a revert expands the state exactly
    // as a POR-off build would (plus duplicate stutter edges that fold
    // into their own nodes). States entered by an observed service
    // expand fully — the stutter must not sit on a letter the property
    // can see. Everything read here is part of the state's
    // configuration, so the choice is a pure function of the state.
    std::vector<int> ample;
    if (ctx_->options().por && !ctx_->PorServiceIsProp(snapshot.service)) {
      for (size_t i = 0; i < task.services().size(); ++i) {
        if (!ctx_->PorServiceEligible(static_cast<int>(i))) continue;
        const InternalService& svc = task.service(static_cast<int>(i));
        if (ctx_->EvalSym(*svc.pre, cur) != Truth::kTrue) continue;
        if (ctx_->EvalSym(*svc.post, cur) != Truth::kTrue) continue;
        ample.push_back(static_cast<int>(i));
      }
    }
    // Emits every successor of service `i`; returns whether THIS
    // service's enumeration was budget-truncated.
    auto emit_service = [&](size_t i) -> bool {
      const InternalService& svc = task.service(static_cast<int>(i));
      if (ctx_->EvalSym(*svc.pre, cur) != Truth::kTrue) return false;
      bool truncated = false;
      std::vector<InternalSuccessor> succs =
          EnumerateInternal(*ctx_, cur, svc, &truncated);
      pending->truncated = pending->truncated || truncated;
      // Each inserted TS-type is the per-relation projection of the
      // CURRENT state, so it is identical across every successor of
      // this service: intern once per relation (the retrieved types
      // vary per successor).
      std::map<int, TypeId> insert_ts;
      if (!succs.empty()) {
        for (int rel : svc.insert_rels) {
          insert_ts[rel] =
              pool_->InternNormalized(ctx_->TsType(cur.iso, rel));
        }
      }
      for (InternalSuccessor& s : succs) {
        std::vector<PendingEdge::PendingSetOp> ops;
        ops.reserve(s.set_ops.size());
        bool feasible = true;
        for (SetOpEffect& eff : s.set_ops) {
          PendingEdge::PendingSetOp op;
          op.relation = eff.relation;
          op.inserts = eff.inserts;
          op.insert_input_bound = eff.insert_input_bound;
          if (eff.inserts) op.insert_ts = insert_ts[eff.relation];
          if (eff.retrieves) {
            op.retrieves = true;
            op.retrieve_input_bound = eff.retrieve_input_bound;
            op.retrieve_ts =
                pool_->InternNormalized(std::move(eff.retrieve_ts));
            if (eff.retrieve_input_bound) {
              // Read-only feasibility precheck (ib-bit ALLOCATION stays
              // in the commit): the retrieve can only succeed when the
              // (relation, type) bit is already in the state's set, or
              // when this same transition inserts the identical TS type
              // into the same relation. Skipping here saves the
              // letter/interning/Büchi work for successors the commit
              // would drop anyway. ib_index_ is only mutated by
              // commits, which never overlap prepares.
              auto it =
                  ib_index_.find(RelTypeKey(eff.relation, op.retrieve_ts));
              bool in_set =
                  it != ib_index_.end() &&
                  std::find(snapshot.ib_bits.begin(),
                            snapshot.ib_bits.end(),
                            it->second) != snapshot.ib_bits.end();
              bool inserted_same = eff.inserts && eff.insert_input_bound &&
                                   op.insert_ts == op.retrieve_ts;
              if (!in_set && !inserted_same) {
                feasible = false;
                break;
              }
            }
          }
          ops.push_back(std::move(op));
        }
        if (!feasible) continue;
        PendingEdge* pe = EmitPending(
            snapshot, s.next,
            ServiceRef::Internal(ctx_->task_id(), static_cast<int>(i)),
            kNoTask, 0, svc.name, pending.get());
        pe->fresh_stages = true;
        pe->set_ops = std::move(ops);
      }
      return truncated;
    };
    for (int a : ample) {
      const InternalService& svc = task.service(a);
      std::vector<PendingEdge::PendingSetOp> ops;
      for (int rel = 0; rel < ctx_->num_set_relations(); ++rel) {
        if (!svc.InsertsInto(rel)) continue;
        PendingEdge::PendingSetOp op;
        op.relation = rel;
        op.inserts = true;
        op.insert_input_bound = ctx_->TsInputBound(cur.iso, rel);
        op.insert_ts = pool_->InternNormalized(ctx_->TsType(cur.iso, rel));
        ops.push_back(std::move(op));
      }
      PendingEdge* pe = EmitPending(
          snapshot, cur, ServiceRef::Internal(ctx_->task_id(), a), kNoTask,
          0, svc.name, pending.get());
      pe->fresh_stages = true;
      pe->set_ops = std::move(ops);
    }
    // If no Büchi successor is compatible with the stutter letter the
    // prefix commits zero edges and AmplePrefix stays 0 — the state
    // expands fully.
    pending->ample_pending = static_cast<int>(pending->edges.size());
    for (size_t i = 0; i < task.services().size(); ++i) {
      emit_service(i);
    }
  }

  // (B) Open a child (at most once per segment). The oracle round-trip
  // is batched per child: one input interning covers every β_c.
  for (size_t c = 0; c < task.children().size(); ++c) {
    if (snapshot.stages[c].kind != ChildStage::Kind::kInit) continue;
    TaskId child_id = task.children()[c];
    const Task& child = ctx_->system().task(child_id);
    if (ctx_->EvalSym(*child.opening_pre(), cur) != Truth::kTrue) continue;
    const TaskContext* child_ctx = child_ctxs_->at(child_id);
    PartialIsoType child_in = ChildInputIso(*ctx_, *child_ctx, cur);
    Cell child_in_cell = ChildInputCell(*ctx_, *child_ctx, cur);
    int num_assignments = all_automata_->ForTask(child_id).num_assignments();
    RtOracle::BatchedChildResult batch = oracle_->QueryAll(
        child_id, child_in, child_in_cell,
        static_cast<Assignment>(num_assignments));
    for (Assignment bc = 0;
         bc < static_cast<Assignment>(num_assignments); ++bc) {
      const ChildResult& result = *batch.results[bc];
      for (size_t oi = 0; oi < result.returning.size(); ++oi) {
        PendingEdge* pe = EmitPending(snapshot, cur,
                                      ServiceRef::Opening(child_id),
                                      child_id, bc,
                                      StrCat("open ", child.name()),
                                      pending.get());
        pe->stage_child = static_cast<int>(c);
        pe->stage_kind = ChildStage::Kind::kActive;
        pe->outcome_src = &result.returning[oi];
        pe->child_key = batch.keys[bc];
        pe->child_result_index = static_cast<int>(oi);
      }
      if (result.has_bottom) {
        PendingEdge* pe = EmitPending(
            snapshot, cur, ServiceRef::Opening(child_id), child_id, bc,
            StrCat("open ", child.name(), " (non-returning)"),
            pending.get());
        pe->stage_child = static_cast<int>(c);
        pe->stage_kind = ChildStage::Kind::kActiveBottom;
        pe->child_key = batch.keys[bc];
        pe->child_result_index = -1;
      }
    }
  }

  // (C) Close an active (returning) child.
  for (size_t c = 0; c < task.children().size(); ++c) {
    if (snapshot.stages[c].kind != ChildStage::Kind::kActive) continue;
    TaskId child_id = task.children()[c];
    const TaskContext* child_ctx = child_ctxs_->at(child_id);
    const ChildOutcome& o = outcomes_[snapshot.stages[c].outcome];
    bool truncated = false;
    std::vector<SymbolicConfig> nexts = ApplyChildReturn(
        *ctx_, *child_ctx, cur, o.iso, o.cell, &truncated);
    pending->truncated = pending->truncated || truncated;
    for (SymbolicConfig& next : nexts) {
      PendingEdge* pe = EmitPending(
          snapshot, next, ServiceRef::Closing(child_id), kNoTask, 0,
          StrCat("close ", ctx_->system().task(child_id).name()),
          pending.get());
      pe->stage_child = static_cast<int>(c);
      pe->stage_kind = ChildStage::Kind::kClosed;
    }
  }

  // (D) Close this task (terminal returning segment: every opened child
  // has returned).
  if (!any_active && !ctx_->task().is_root() &&
      ctx_->EvalSym(*task.closing_pre(), cur) == Truth::kTrue) {
    EmitPending(snapshot, cur, ServiceRef::Closing(ctx_->task_id()), kNoTask,
                0, "close self", pending.get());
  }
  return pending;
}

void TaskVass::CommitSuccessors(int state, std::unique_ptr<Prepared> prepared,
                                std::vector<VassEdge>* out) {
  auto* pending = static_cast<PendingSuccessors*>(prepared.get());
  if (pending == nullptr) return;
  truncated_ = truncated_ || pending->truncated;
  const State snapshot = states_[state];
  const Task& task = ctx_->task();
  int ample_committed = 0;
  for (size_t pi = 0; pi < pending->edges.size(); ++pi) {
    PendingEdge& pe = pending->edges[pi];
    // Resolve artifact-relation bookkeeping to counter dimensions / ib
    // bits. Allocation order (ascending relation index per edge,
    // inserts before retrieves within a relation, pending-edge order
    // across successors) matches the sequential enumeration, so
    // dimension numbering is reproducible.
    Delta delta;
    std::vector<int> ib = snapshot.ib_bits;
    bool feasible = true;
    for (const PendingEdge::PendingSetOp& op : pe.set_ops) {
      if (op.inserts) {
        if (op.insert_input_bound) {
          int id = IbIdOf(op.relation, op.insert_ts);
          if (std::find(ib.begin(), ib.end(), id) == ib.end()) {
            ib.push_back(id);
          }
        } else {
          delta.emplace_back(DimOf(op.relation, op.insert_ts), 1);
        }
      }
      if (op.retrieves) {
        if (op.retrieve_input_bound) {
          int id = IbIdOf(op.relation, op.retrieve_ts);
          auto it = std::find(ib.begin(), ib.end(), id);
          if (it == ib.end()) {
            feasible = false;  // nothing of this type in the relation
            break;
          }
          ib.erase(it);
        } else {
          delta.emplace_back(DimOf(op.relation, op.retrieve_ts), -1);
        }
      }
    }
    if (!feasible) continue;
    std::vector<ChildStage> stages =
        pe.fresh_stages ? std::vector<ChildStage>(task.children().size())
                        : snapshot.stages;
    if (!pe.fresh_stages && pe.stage_child >= 0) {
      int outcome = -1;
      Assignment beta = pe.child_beta;
      if (pe.stage_kind == ChildStage::Kind::kActive) {
        outcome = InternOutcome(*pe.outcome_src);
      } else if (pe.stage_kind == ChildStage::Kind::kClosed) {
        beta = snapshot.stages[pe.stage_child].beta;
      }
      stages[pe.stage_child] = ChildStage{pe.stage_kind, outcome, beta};
    }
    std::sort(ib.begin(), ib.end());
    for (int q2 : pe.q2s) {
      State s;
      s.iso = pe.next_iso;
      s.cell = pe.next_cell;
      s.service = pe.service;
      s.q = q2;
      s.stages = stages;
      s.ib_bits = ib;
      int target = InternState(std::move(s));
      TransitionRecord rec;
      rec.service = pe.service;
      rec.target_state = target;
      rec.child_beta = pe.child_beta;
      rec.child_key = pe.child_key;
      rec.child_result_index = pe.child_result_index;
      rec.note = pe.note;
      out->push_back(VassEdge{target, delta, InternRecord(std::move(rec))});
      if (pi < static_cast<size_t>(pending->ample_pending)) {
        ++ample_committed;
      }
    }
  }
  // Record the ample-prefix length for AmplePrefix. The ample choice
  // and its successor set are pure functions of the configuration, so a
  // recommit after cache eviction reproduces the same count.
  if (ample_prefix_.size() < states_.size()) {
    ample_prefix_.resize(states_.size(), 0);
  }
  ample_prefix_[static_cast<size_t>(state)] = ample_committed;
}

void TaskVass::Successors(int state, std::vector<VassEdge>* out) {
  CommitSuccessors(state, PrepareSuccessors(state), out);
}

int TaskVass::AmplePrefix(int state) const {
  return static_cast<size_t>(state) < ample_prefix_.size()
             ? ample_prefix_[static_cast<size_t>(state)]
             : 0;
}

bool TaskVass::IsReturning(int state) const {
  const State& s = states_[state];
  return s.service.kind == ServiceRef::Kind::kClosing &&
         s.service.task == ctx_->task_id() && buchi_->finite_accepting(s.q);
}

bool TaskVass::IsBlocking(int state) const {
  const State& s = states_[state];
  if (!buchi_->finite_accepting(s.q)) return false;
  for (const ChildStage& st : s.stages) {
    if (st.kind == ChildStage::Kind::kActiveBottom) return true;
  }
  return false;
}

bool TaskVass::IsBuchiAccepting(int state) const {
  return buchi_->accepting(states_[state].q);
}

ChildOutcome TaskVass::OutputOf(int state) const {
  const State& s = states_[state];
  const Task& task = ctx_->task();
  std::set<int> keep(ctx_->input_vars().begin(), ctx_->input_vars().end());
  std::vector<ArithVar> numeric_keep;
  for (int v : task.ReturnVars()) keep.insert(v);
  for (int v : keep) {
    if (task.vars().var(v).sort == VarSort::kNumeric) {
      numeric_keep.push_back(v);
    }
  }
  ChildOutcome out;
  out.bottom = false;
  out.iso = pool_->type(s.iso).Project(keep, ctx_->nav_depth());
  if (ctx_->basis() != nullptr) {
    out.cell = pool_->cell(s.cell).RestrictTo(
        ctx_->basis()->PolysOverVars(numeric_keep));
  }
  return out;
}

const PartialIsoType& TaskVass::state_iso(int state) const {
  return pool_->type(states_[state].iso);
}

}  // namespace has
