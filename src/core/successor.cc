#include "core/successor.h"

#include <algorithm>
#include <functional>

#include "common/status.h"
#include "model/independence.h"
#include "schema/fk_graph.h"

namespace has {

namespace {

/// Paper navigation depth h(T), clamped to the configured cap.
int ComputeNavDepth(const ArtifactSystem& system, TaskId task,
                    const VerifierOptions& options) {
  if (!options.use_paper_depth) return options.max_nav_depth;
  FkGraph fk(system.schema());
  std::function<uint64_t(TaskId)> h = [&](TaskId t) -> uint64_t {
    std::vector<uint64_t> child_depths;
    for (TaskId c : system.task(t).children()) child_depths.push_back(h(c));
    return NavigationDepthBound(
        fk, static_cast<uint64_t>(system.task(t).vars().size()),
        child_depths);
  };
  uint64_t depth = h(task);
  if (depth > static_cast<uint64_t>(options.max_nav_depth)) {
    return options.max_nav_depth;
  }
  return static_cast<int>(depth);
}

/// Whether an atom belongs to the equality component (everything except
/// genuine arithmetic).
bool IsEqualityAtom(const Condition& atom) {
  return !(atom.kind() == CondKind::kArith && atom.UsesArithmetic());
}

/// Whether an LTL skeleton contains a Next operator anywhere. Ample
/// stutter steps repeat the current letter, which only X can observe —
/// F/G/U are derived without X (ltl/formula.h), so typical properties
/// pass.
bool ContainsNext(const LtlFormula* f) {
  if (f == nullptr) return false;
  if (f->kind() == LtlKind::kNext) return true;
  return ContainsNext(f->left().get()) || ContainsNext(f->right().get());
}

}  // namespace

TaskContext::TaskContext(const ArtifactSystem* system,
                         const HltlProperty* property, TaskId task,
                         const VerifierOptions& options, const Hcd* hcd)
    : system_(system),
      property_(property),
      task_(task),
      options_(&options),
      basis_(hcd != nullptr ? &hcd->basis(task) : nullptr) {
  nav_depth_ = ComputeNavDepth(*system, task, options);
  const Task& t = system->task(task);
  for (int v : t.InputVars()) input_vars_.insert(v);
  for (const SetRelation& rel : t.set_relations()) {
    rel_vars_.emplace_back(rel.vars.begin(), rel.vars.end());
    set_vars_.insert(rel.vars.begin(), rel.vars.end());
  }
  CollectAtoms();
  ComputePor();
  if (basis_ != nullptr) {
    // Preserved polynomials: all of whose variables are numeric inputs.
    std::vector<ArithVar> numeric_inputs;
    for (int v : input_vars_) {
      if (t.vars().var(v).sort == VarSort::kNumeric) {
        numeric_inputs.push_back(v);
      }
    }
    preserved_polys_ = basis_->PolysOverVars(numeric_inputs);
  }
}

void TaskContext::CollectAtoms() {
  const Task& t = system_->task(task_);
  std::vector<const Condition*> raw;
  auto harvest = [&raw](const CondPtr& c) {
    if (c != nullptr) c->CollectAtoms(&raw);
  };
  for (const InternalService& s : t.services()) {
    harvest(s.pre);
    harvest(s.post);
  }
  harvest(t.closing_pre());
  for (TaskId c : t.children()) {
    harvest(system_->task(c).opening_pre());
  }
  if (property_ != nullptr) {
    for (int node : property_->NodesOfTask(task_)) {
      for (const HltlProp& p : property_->node(node).props) {
        if (p.kind == HltlProp::Kind::kCondition) harvest(p.condition);
      }
    }
  }
  if (task_ == system_->root()) {
    harvest(system_->global_pre());
  }

  std::vector<CondPtr> null_checks;
  auto add_null_check = [&](int var) {
    if (t.vars().var(var).sort == VarSort::kId) {
      null_checks.push_back(Condition::IsNull(var));
    }
  };
  for (const auto& [own, parent] : t.fin()) {
    (void)parent;
    add_null_check(own);
  }
  for (const auto& [parent, own] : t.fout()) {
    (void)parent;
    add_null_check(own);
  }
  for (int v : set_vars_) add_null_check(v);
  for (TaskId c : t.children()) {
    const Task& child = system_->task(c);
    for (const auto& [child_var, parent_var] : child.fin()) {
      (void)child_var;
      add_null_check(parent_var);
    }
    for (const auto& [parent_var, child_var] : child.fout()) {
      (void)child_var;
      add_null_check(parent_var);
    }
  }
  for (const CondPtr& c : null_checks) raw.push_back(c.get());

  // Deduplicate and keep equality-component atoms. Raw pointers from
  // CollectAtoms stay alive through the owning conditions; we rebuild
  // shared ownership for the null checks by retaining them.
  for (const Condition* atom : raw) {
    if (!IsEqualityAtom(*atom)) continue;
    bool seen = false;
    for (const CondPtr& kept : eq_atoms_) {
      if (kept->Equals(*atom)) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    // Clone the atom into owned form (atoms are leaves, cheap to
    // rebuild via MapVars identity).
    std::vector<int> identity(t.vars().size());
    for (size_t i = 0; i < identity.size(); ++i) {
      identity[i] = static_cast<int>(i);
    }
    eq_atoms_.push_back(atom->MapVars(identity));
  }
}

void TaskContext::ComputePor() {
  const Task& t = system_->task(task_);
  bool x_free = true;
  if (property_ != nullptr) {
    for (int node : property_->NodesOfTask(task_)) {
      const HltlNode& n = property_->node(node);
      if (ContainsNext(n.skeleton.get())) x_free = false;
      for (const HltlProp& p : n.props) {
        if (p.kind == HltlProp::Kind::kService) {
          por_service_props_.push_back(p.service);
        }
      }
    }
  }
  por_service_ok_.assign(t.services().size(), 0);
  if (!x_free) return;
  const TaskIndependence independence = TaskIndependence::Analyze(t);
  for (size_t i = 0; i < t.services().size(); ++i) {
    // Insert-only footprints are the profitable ample candidates:
    // their identity stutter strictly grows the marking, so the
    // diagonal makes progress until ω-acceleration saturates it.
    // (Zero-delta retrieve-free services would be equally SOUND as
    // stutters, but measurably hurt: they flip the state's service
    // component without advancing any counter, adding nodes instead of
    // collapsing interleavings.)
    if (!independence.footprint(static_cast<int>(i)).insert_only()) continue;
    if (PorServiceIsProp(
            ServiceRef::Internal(task_, static_cast<int>(i)))) {
      continue;
    }
    por_service_ok_[i] = 1;
  }
}

bool TaskContext::PorServiceIsProp(const ServiceRef& s) const {
  return std::find(por_service_props_.begin(), por_service_props_.end(), s) !=
         por_service_props_.end();
}

LinearSystem TaskContext::NumericEqualities(const PartialIsoType& iso) const {
  LinearSystem out;
  const VarScope& scope = system_->task(task_).vars();
  // Pairwise equalities of numeric variables within a class.
  std::vector<int> numeric_elems;
  for (int e = 0; e < iso.num_elements(); ++e) {
    const IsoElement& el = iso.element(e);
    if (el.kind == IsoElement::Kind::kVar &&
        scope.var(el.var).sort == VarSort::kNumeric) {
      numeric_elems.push_back(e);
    }
  }
  for (size_t i = 0; i < numeric_elems.size(); ++i) {
    std::optional<Rational> tag = iso.ConstOf(numeric_elems[i]);
    if (tag.has_value()) {
      LinearExpr expr = LinearExpr::Var(iso.element(numeric_elems[i]).var);
      expr.AddConstant(Rational(0) - *tag);
      out.Add(std::move(expr), Relop::kEq);
    }
    for (size_t j = i + 1; j < numeric_elems.size(); ++j) {
      if (iso.Same(numeric_elems[i], numeric_elems[j])) {
        LinearExpr expr = LinearExpr::Var(iso.element(numeric_elems[i]).var);
        expr.AddTerm(iso.element(numeric_elems[j]).var, Rational(-1));
        out.Add(std::move(expr), Relop::kEq);
      }
    }
  }
  return out;
}

Truth TaskContext::EvalSym(const Condition& cond,
                           const SymbolicConfig& s) const {
  switch (cond.kind()) {
    case CondKind::kTrue:
      return Truth::kTrue;
    case CondKind::kFalse:
      return Truth::kFalse;
    case CondKind::kEq:
    case CondKind::kRel:
      return s.iso.EvalAtom(cond);
    case CondKind::kArith: {
      if (!cond.UsesArithmetic()) return s.iso.EvalAtom(cond);
      if (basis_ == nullptr) return Truth::kUnknown;
      bool negated = false;
      int poly = basis_->Find(cond.constraint().expr, &negated);
      if (poly == -1 || s.cell.size() <= poly) return Truth::kUnknown;
      Sign sign = s.cell.sign(poly);
      if (sign == kSignAny) return Truth::kUnknown;
      int value = negated ? -sign : sign;
      switch (cond.constraint().op) {
        case Relop::kLt:
          return value < 0 ? Truth::kTrue : Truth::kFalse;
        case Relop::kLe:
          return value <= 0 ? Truth::kTrue : Truth::kFalse;
        case Relop::kEq:
          return value == 0 ? Truth::kTrue : Truth::kFalse;
      }
      return Truth::kUnknown;
    }
    case CondKind::kNot:
      return TruthNot(EvalSym(*cond.child(0), s));
    case CondKind::kAnd:
      return TruthAnd(EvalSym(*cond.child(0), s),
                      EvalSym(*cond.child(1), s));
    case CondKind::kOr:
      return TruthOr(EvalSym(*cond.child(0), s), EvalSym(*cond.child(1), s));
  }
  return Truth::kUnknown;
}

PartialIsoType TaskContext::TsType(const PartialIsoType& iso, int rel) const {
  const std::set<int>& tuple = rel_vars_[static_cast<size_t>(rel)];
  std::set<int> keep = input_vars_;
  keep.insert(tuple.begin(), tuple.end());
  PartialIsoType proj = iso.Project(keep, nav_depth_);
  proj.Normalize();
  return proj;
}

std::string TaskContext::TsSignature(const PartialIsoType& iso,
                                     int rel) const {
  return TsType(iso, rel).Signature();
}

bool TaskContext::TsInputBound(const PartialIsoType& iso, int rel) const {
  const std::set<int>& tuple = rel_vars_[static_cast<size_t>(rel)];
  std::set<int> keep = input_vars_;
  keep.insert(tuple.begin(), tuple.end());
  PartialIsoType proj = iso.Project(keep, nav_depth_);
  for (int v : tuple) {
    // Locate the variable element in the projection.
    int elem = -1;
    for (int e = 0; e < proj.num_elements(); ++e) {
      const IsoElement& el = proj.element(e);
      if (el.kind == IsoElement::Kind::kVar && el.var == v) {
        elem = e;
        break;
      }
    }
    if (elem == -1) return false;  // unconstrained: not bound
    if (proj.IsNullTagged(elem)) continue;
    if (!proj.ClassTouchesVars(elem, input_vars_)) return false;
  }
  return true;
}

PartialIsoType TaskContext::OpeningIso(const PartialIsoType& input) const {
  PartialIsoType iso = input;
  const VarScope& scope = system_->task(task_).vars();
  for (int v = 0; v < scope.size(); ++v) {
    if (input_vars_.count(v) > 0) continue;
    int elem = iso.VarElement(v);
    bool ok = scope.var(v).sort == VarSort::kId
                  ? iso.AssertEq(elem, iso.NullElement())
                  : iso.AssertEq(elem, iso.ConstElement(Rational(0)));
    HAS_CHECK_MSG(ok, "opening initialization contradiction");
  }
  return iso;
}

namespace {

/// Shared decision DFS: refines `seed` until every equality atom of the
/// context is decided, then (in arithmetic mode) completes the cell
/// over the given todo polynomials, requiring `must_hold` (if any) to
/// be definitely true at the leaves.
void CompleteDecisions(const TaskContext& ctx, const SymbolicConfig& seed,
                       const CondPtr& must_hold, size_t max_branches,
                       bool* truncated,
                       const std::function<void(SymbolicConfig&&)>& emit) {
  size_t branches = 0;
  std::function<void(SymbolicConfig&)> rec = [&](SymbolicConfig& cur) {
    if (++branches > max_branches) {
      *truncated = true;
      return;
    }
    if (must_hold != nullptr &&
        ctx.EvalSym(*must_hold, cur) == Truth::kFalse) {
      return;
    }
    // Next undecided equality atom.
    for (const CondPtr& atom : ctx.eq_atoms()) {
      Truth t = cur.iso.EvalAtom(*atom);
      if (t != Truth::kUnknown) continue;
      for (bool value : {true, false}) {
        SymbolicConfig branch = cur;
        if (!branch.iso.DecideAtom(*atom, value)) continue;
        rec(branch);
      }
      return;
    }
    // All equality atoms decided. Complete the cell (if arithmetic).
    if (ctx.basis() == nullptr) {
      if (must_hold != nullptr &&
          ctx.EvalSym(*must_hold, cur) != Truth::kTrue) {
        return;
      }
      SymbolicConfig out = cur;
      out.iso.Normalize();
      emit(std::move(out));
      return;
    }
    std::vector<int> todo;
    if (cur.cell.size() != ctx.basis()->size()) {
      Cell fresh(ctx.basis()->size());
      for (int p = 0; p < cur.cell.size() && p < fresh.size(); ++p) {
        fresh.set_sign(p, cur.cell.sign(p));
      }
      cur.cell = fresh;
    }
    for (int p = 0; p < ctx.basis()->size(); ++p) {
      if (cur.cell.sign(p) == kSignAny) todo.push_back(p);
    }
    LinearSystem extra = ctx.NumericEqualities(cur.iso);
    EnumerateCells(*ctx.basis(), cur.cell, todo, extra,
                   [&](const Cell& cell) {
                     if (++branches > max_branches) {
                       *truncated = true;
                       return false;
                     }
                     SymbolicConfig out = cur;
                     out.cell = cell;
                     if (must_hold != nullptr &&
                         ctx.EvalSym(*must_hold, out) != Truth::kTrue) {
                       return true;
                     }
                     out.iso.Normalize();
                     emit(std::move(out));
                     return true;
                   });
  };
  SymbolicConfig start = seed;
  rec(start);
}

}  // namespace

std::vector<InternalSuccessor> EnumerateInternal(const TaskContext& ctx,
                                                 const SymbolicConfig& cur,
                                                 const InternalService& svc,
                                                 bool* truncated) {
  std::vector<InternalSuccessor> out;
  // Base: input projection preserved exactly, everything else fresh.
  SymbolicConfig base{
      cur.iso.Project(ctx.input_vars(), ctx.nav_depth()),
      Cell(ctx.basis() != nullptr ? ctx.basis()->size() : 0)};
  if (ctx.basis() != nullptr) {
    for (int p : ctx.preserved_polys()) {
      base.cell.set_sign(p, cur.cell.sign(p));
    }
  }
  // Per-relation op skeleton (ascending relation index): the insert's
  // input-bound bit depends only on the shared PRE-state, so it is
  // computed once here; the retrieve's TS-type varies per successor.
  std::vector<SetOpEffect> skeleton;
  for (int rel = 0; rel < ctx.num_set_relations(); ++rel) {
    const bool ins = svc.InsertsInto(rel);
    const bool ret = svc.RetrievesFrom(rel);
    if (!ins && !ret) continue;
    SetOpEffect op;
    op.relation = rel;
    op.inserts = ins;
    op.insert_input_bound = ins && ctx.TsInputBound(cur.iso, rel);
    op.retrieves = ret;
    skeleton.push_back(std::move(op));
  }
  CompleteDecisions(
      ctx, base, svc.post, ctx.max_branches(), truncated,
      [&](SymbolicConfig&& next) {
        InternalSuccessor s;
        s.set_ops = skeleton;
        for (SetOpEffect& op : s.set_ops) {
          if (!op.retrieves) continue;
          op.retrieve_ts = ctx.TsType(next.iso, op.relation);
          op.retrieve_input_bound = ctx.TsInputBound(next.iso, op.relation);
        }
        s.next = std::move(next);
        out.push_back(std::move(s));
      });
  return out;
}

std::vector<SymbolicConfig> EnumerateOpening(const TaskContext& ctx,
                                             const PartialIsoType& input_iso,
                                             const Cell& input_cell,
                                             bool* truncated) {
  std::vector<SymbolicConfig> out;
  SymbolicConfig base{ctx.OpeningIso(input_iso),
                      Cell(ctx.basis() != nullptr ? ctx.basis()->size() : 0)};
  if (ctx.basis() != nullptr) {
    for (int p = 0; p < input_cell.size() && p < base.cell.size(); ++p) {
      base.cell.set_sign(p, input_cell.sign(p));
    }
  }
  CompleteDecisions(ctx, base, nullptr, ctx.max_branches(), truncated,
                    [&](SymbolicConfig&& next) {
                      out.push_back(std::move(next));
                    });
  return out;
}

PartialIsoType ChildInputIso(const TaskContext& parent_ctx,
                             const TaskContext& child_ctx,
                             const SymbolicConfig& parent_state) {
  (void)parent_ctx;  // symmetry with ChildInputCell
  const Task& child = child_ctx.task();
  std::set<int> passed;
  std::map<int, int> parent_to_child;
  for (const auto& [child_var, parent_var] : child.fin()) {
    passed.insert(parent_var);
    parent_to_child[parent_var] = child_var;
  }
  PartialIsoType proj =
      parent_state.iso.Project(passed, child_ctx.nav_depth());
  return proj.Rename(parent_to_child, &child.vars());
}

Cell ChildInputCell(const TaskContext& parent_ctx,
                    const TaskContext& child_ctx,
                    const SymbolicConfig& parent_state) {
  if (child_ctx.basis() == nullptr || parent_ctx.basis() == nullptr) {
    return Cell();
  }
  const Task& child = child_ctx.task();
  std::map<ArithVar, ArithVar> child_to_parent;
  std::vector<ArithVar> child_inputs;
  for (const auto& [child_var, parent_var] : child.fin()) {
    if (child.vars().var(child_var).sort == VarSort::kNumeric) {
      child_to_parent[child_var] = parent_var;
      child_inputs.push_back(child_var);
    }
  }
  Cell out(child_ctx.basis()->size());
  for (int p : child_ctx.basis()->PolysOverVars(child_inputs)) {
    LinearExpr renamed = child_ctx.basis()->poly(p).Rename(child_to_parent);
    bool negated = false;
    int parent_poly = parent_ctx.basis()->Find(renamed, &negated);
    if (parent_poly == -1 || parent_state.cell.size() <= parent_poly) {
      continue;
    }
    Sign sign = parent_state.cell.sign(parent_poly);
    if (sign == kSignAny) continue;
    out.set_sign(p, negated ? static_cast<Sign>(-sign) : sign);
  }
  return out;
}

std::vector<SymbolicConfig> ApplyChildReturn(
    const TaskContext& parent_ctx, const TaskContext& child_ctx,
    const SymbolicConfig& parent_state, const PartialIsoType& child_out_iso,
    const Cell& child_out_cell, bool* truncated) {
  const Task& child = child_ctx.task();
  const Task& parent = parent_ctx.task();

  // Child→parent variable map for inputs and (accepted) returns.
  std::map<int, int> child_to_parent;
  for (const auto& [child_var, parent_var] : child.fin()) {
    child_to_parent[child_var] = parent_var;
  }
  std::vector<int> overwritten;  // parent vars receiving child values
  for (const auto& [parent_var, child_var] : child.fout()) {
    bool is_id = parent.vars().var(parent_var).sort == VarSort::kId;
    // Only null parent ID variables accept returned IDs (Definition 8);
    // numeric targets are always overwritten.
    if (is_id && !parent_state.iso.VarIsNull(parent_var)) continue;
    // If the same parent variable also fed a child input, that input
    // mapping now refers to a dead (overwritten) value: drop it so two
    // child variables are never forced onto one parent variable.
    for (auto it = child_to_parent.begin(); it != child_to_parent.end();) {
      if (it->second == parent_var) {
        it = child_to_parent.erase(it);
      } else {
        ++it;
      }
    }
    child_to_parent[child_var] = parent_var;
    overwritten.push_back(parent_var);
  }

  SymbolicConfig base = parent_state;
  for (int v : overwritten) base.iso.ForgetVar(v);
  PartialIsoType renamed =
      child_out_iso.Rename(child_to_parent, &parent.vars());
  if (!base.iso.MergeFrom(renamed)) return {};

  if (parent_ctx.basis() != nullptr) {
    // Reset signs of polynomials touching overwritten numerics, then
    // force the child's output constraints through the renaming.
    std::set<int> touched(overwritten.begin(), overwritten.end());
    for (int p = 0; p < parent_ctx.basis()->size(); ++p) {
      for (ArithVar v : parent_ctx.basis()->poly(p).Vars()) {
        if (touched.count(v) > 0) {
          base.cell.set_sign(p, kSignAny);
          break;
        }
      }
    }
    if (child_ctx.basis() != nullptr && child_out_cell.size() > 0) {
      std::map<ArithVar, ArithVar> numeric_map;
      for (const auto& [cv, pv] : child_to_parent) {
        if (child.vars().var(cv).sort == VarSort::kNumeric) {
          numeric_map[cv] = pv;
        }
      }
      for (int p = 0; p < child_ctx.basis()->size(); ++p) {
        Sign sign = child_out_cell.sign(p);
        if (sign == kSignAny) continue;
        // Only polynomials entirely over mapped variables transfer.
        bool mapped = true;
        for (ArithVar v : child_ctx.basis()->poly(p).Vars()) {
          if (numeric_map.count(v) == 0) mapped = false;
        }
        if (!mapped) continue;
        LinearExpr renamed_poly =
            child_ctx.basis()->poly(p).Rename(numeric_map);
        bool negated = false;
        int parent_poly = parent_ctx.basis()->Find(renamed_poly, &negated);
        if (parent_poly == -1) continue;
        base.cell.set_sign(parent_poly,
                           negated ? static_cast<Sign>(-sign) : sign);
      }
    }
  }

  std::vector<SymbolicConfig> out;
  CompleteDecisions(parent_ctx, base, nullptr, parent_ctx.max_branches(),
                    truncated, [&](SymbolicConfig&& next) {
                      out.push_back(std::move(next));
                    });
  return out;
}

}  // namespace has
