// Top-level model checker: does every tree of local runs of the HAS
// satisfy the HLTL-FO property? Implements the roadmap of Section 4:
// negate the property, build the automaton family B(T,β), compute the
// R_T relations bottom-up via (repeated) reachability on the per-task
// VASS products, and report HOLDS, or VIOLATED with a symbolic
// counterexample, or INCONCLUSIVE when a search budget was exhausted.
#ifndef HAS_CORE_VERIFIER_H_
#define HAS_CORE_VERIFIER_H_

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "core/rt_relation.h"
#include "model/validate.h"

namespace has {

enum class Verdict {
  kHolds,
  kViolated,
  /// A budget knob (coverability nodes, branches, lasso search) was
  /// exhausted before a definite answer; the result is not trusted.
  kInconclusive,
};

const char* VerdictName(Verdict v);

struct VerifyResult {
  Verdict verdict = Verdict::kInconclusive;
  /// Human-readable symbolic counterexample (kViolated only).
  std::string counterexample;
  RtStats stats;
  /// True iff the arithmetic (cell) machinery was engaged.
  bool used_arithmetic = false;
  int hcd_polys = 0;
  /// Static-analyzer findings for the verified spec (analysis/). Never
  /// affects the verdict unless VerifierOptions::strict_analysis, which
  /// aborts on any finding.
  std::vector<Diagnostic> diagnostics;
};

/// Model-checks `property` against `system`. With
/// VerifierOptions::num_shards > 1 the coverability explorations run
/// sharded across worker threads; the verdict, counterexample and
/// exploration statistics are identical to the sequential run (the
/// sharded Karp–Miller graph is deterministic and node-identical to
/// the single-shard one).
VerifyResult Verify(const ArtifactSystem& system,
                    const HltlProperty& property,
                    const VerifierOptions& options = {});

/// Builds the Hierarchical Cell Decomposition for a system+property
/// (exposed for benchmarking the cell machinery).
Hcd BuildSystemHcd(const ArtifactSystem& system,
                   const HltlProperty& property);

/// True iff any condition of the system or property uses genuine
/// arithmetic (beyond constant tags).
bool SystemUsesArithmetic(const ArtifactSystem& system,
                          const HltlProperty& property);

}  // namespace has

#endif  // HAS_CORE_VERIFIER_H_
