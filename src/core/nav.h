// Navigation-depth analysis: the paper's h(T) bound (Section 4.1) per
// task, unclamped, used by bench_navigation to reproduce the growth of
// navigation sets per schema class (Appendix C.3).
#ifndef HAS_CORE_NAV_H_
#define HAS_CORE_NAV_H_

#include <cstdint>
#include <vector>

#include "model/artifact_system.h"

namespace has {

/// h(T) for every task (indexed by TaskId), saturating at kSaturated.
std::vector<uint64_t> PaperNavigationDepths(const ArtifactSystem& system);

}  // namespace has

#endif  // HAS_CORE_NAV_H_
