// Demand-driven computation of the relations R_T (Section 4.2,
// Lemma 21): for a task T, input type τ_in (plus input cell) and truth
// assignment β to Φ_T, the set of possible outputs — returning output
// types, and whether a non-returning run (lasso through a Büchi-
// accepting state, or a blocking run with a ⊥ child) exists. Queries
// recurse down the hierarchy through the RtOracle interface and are
// memoized per (task, τ_in, cell, β) — the key holds pool-interned ids,
// so the memo is a flat hash table over integer tuples instead of a
// tree of serialized signatures.
#ifndef HAS_CORE_RT_RELATION_H_
#define HAS_CORE_RT_RELATION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/task_vass.h"
#include "core/type_pool.h"
#include "vass/karp_miller.h"
#include "vass/repeated.h"

namespace has {

/// Cumulative statistics across all RT queries.
struct RtStats {
  size_t queries = 0;
  size_t cov_nodes = 0;
  size_t cov_edges = 0;
  size_t product_states = 0;
  size_t counter_dims = 0;
  /// Canonical types / cells hash-consed in the engine's shared pool.
  size_t pooled_types = 0;
  size_t pooled_cells = 0;
  /// Successor-cache accounting across all coverability explorations
  /// (one hit or miss per processed coverability node).
  size_t succ_cache_hits = 0;
  size_t succ_cache_misses = 0;
  /// Antichain-pruning accounting (0 unless prune_coverability):
  /// successor candidates dropped by domination, nodes retired before
  /// expansion, largest per-state antichain seen, and cover-edges
  /// recorded at the prune points (one per drop, one per retirement).
  size_t pruned_successors = 0;
  size_t deactivated_nodes = 0;
  size_t antichain_peak = 0;
  size_t cover_edges = 0;
  /// Antichain probe accounting (deterministic, shard-count-
  /// invariant): marking payloads touched by domination probes
  /// (DominanceLeq calls), summary buckets examined by the bucketed
  /// dominance index (vass/dominance_index.h), entries a summary test
  /// resolved without touching their payload, and the largest
  /// per-state bucket count seen.
  size_t antichain_probes = 0;
  size_t antichain_bucket_probes = 0;
  size_t antichain_skipped_by_summary = 0;
  size_t antichain_buckets_peak = 0;
  /// Coverability-node markings stored under the sparse
  /// (dimension, value)-pair representation (MarkingArena::AddAuto;
  /// deterministic — the node set and the per-marking selection rule
  /// are shard-invariant).
  size_t sparse_markings = 0;
  /// Partial-order reduction accounting (0 unless VerifierOptions::por):
  /// successors never generated because an ample prefix covered the
  /// state (deterministic, shard-count-invariant), and ample attempts
  /// that reverted to full expansion because NO prefix edge made
  /// progress — every stutter folded into an antichain entry with an
  /// EQUAL marking, i.e. the diagonal is saturated (informational: the
  /// revert itself is deterministic but the count depends on fold
  /// timing).
  size_t ample_reduced_successors = 0;
  size_t ample_full_expansions = 0;
  /// Queries that fell back to rebuilding a full (unpruned) graph for
  /// lasso analysis. Lasso search runs on the pruned graph itself via
  /// its cover-edges, so this is ALWAYS 0 now; the counter is kept as
  /// a regression tripwire (tests and the CI bench gate assert zero).
  size_t full_graph_builds = 0;
  /// Static analysis / slicing accounting (filled by Verify, not the
  /// engine; deterministic functions of the spec+property, invariant
  /// under shard count, POR, and pruning): internal services dropped by
  /// the cone-of-influence slice, dimensions removed (dropped artifact
  /// relations + dropped variables), and diagnostics the analyzer
  /// emitted. The slice counters are 0 with VerifierOptions::slice off;
  /// diagnostics_emitted counts whenever the analyzer runs (always).
  size_t sliced_services = 0;
  size_t sliced_dims = 0;
  size_t diagnostics_emitted = 0;
  bool truncated = false;
};

class RtEngine : public RtOracle {
 public:
  /// `property` must already be the negated property ([¬ξ]_T1).
  /// `hcd` is null in no-arithmetic mode.
  RtEngine(const ArtifactSystem* system, const HltlProperty* property,
           const VerifierOptions& options, const Hcd* hcd);
  ~RtEngine() override;

  const ChildResult& Query(TaskId task, const PartialIsoType& input_iso,
                           const Cell& input_cell,
                           Assignment beta) override;
  RtQueryKey KeyOf(TaskId task, const PartialIsoType& input_iso,
                   const Cell& input_cell, Assignment beta) override {
    return EntryKey(task, input_iso, input_cell, beta);
  }
  /// Batched per-child query: interns the input ONCE and reuses the
  /// interned ids for every β's key and memo lookup (the per-β loop
  /// previously interned the input twice per assignment).
  BatchedChildResult QueryAll(TaskId task, const PartialIsoType& input_iso,
                              const Cell& input_cell,
                              Assignment num_assignments) override;

  struct RootWitness {
    bool satisfiable = false;
    /// The memo entry holding the witnessing root exploration.
    RtQueryKey entry_key;
    /// Lasso witness (empty loop = blocking witness).
    std::vector<int64_t> stem_labels;
    std::vector<int64_t> loop_labels;
    int final_node = -1;
    bool blocking = false;
  };

  /// Satisfiability of the (negated) property: does some symbolic tree
  /// of runs of the system satisfy it? (Lemma 21 at the root.)
  RootWitness CheckRoot();

  const RtStats& stats() const { return stats_; }
  const TaskContext& context(TaskId t) const { return *contexts_.at(t); }
  /// The engine-wide interning pool (shared by every per-task product).
  const TypePool& pool() const { return pool_; }

  /// Access to a memo entry's exploration artifacts (counterexample
  /// rendering).
  struct Entry {
    ChildResult result;
    std::unique_ptr<TaskVass> vass;
    /// Reachability graph: pruned when VerifierOptions::
    /// prune_coverability is set, the one (full) graph otherwise.
    /// returning_nodes / blocking_node index into THIS graph.
    std::unique_ptr<KarpMiller> graph;
    /// Per returning outcome: a coverability node realizing it.
    std::vector<int> returning_nodes;
    /// Blocking witness node (-1 if none) and lasso witness. The lasso
    /// analysis runs on `graph` itself — pruned graphs carry the
    /// closed-walk structure in their cover-edges — so `lasso->node`
    /// always indexes into `graph`; the witness LABEL sequences are
    /// transition-record ids valid independent of any graph.
    int blocking_node = -1;
    std::optional<LassoWitness> lasso;
    TaskId task = kNoTask;
    /// Build latch: concurrent queriers of an uncomputed entry block on
    /// `build_mutex` while the first one explores; `ready` flips (with
    /// release semantics) once `result` is safe to read without the
    /// lock. The hierarchy is a tree, so entry locks only nest downward
    /// and cannot deadlock.
    std::mutex build_mutex;
    std::atomic<bool> ready{false};
  };
  const Entry* FindEntry(const RtQueryKey& key) const;
  /// Interns the query input into the pool and returns the memo key.
  RtQueryKey EntryKey(TaskId task, const PartialIsoType& input_iso,
                      const Cell& input_cell, Assignment beta);

 private:
  /// Memoized lookup by precomputed key; computes the entry on first
  /// demand (blocking concurrent queriers of the same key).
  const ChildResult& QueryByKey(const RtQueryKey& key,
                                const PartialIsoType& input_iso,
                                const Cell& input_cell);
  /// Runs the exploration for `key` and fills `entry` (caller holds the
  /// entry's build mutex).
  void ComputeEntry(const RtQueryKey& key, const PartialIsoType& input_iso,
                    const Cell& input_cell, Entry* entry);

  const ArtifactSystem* system_;
  const HltlProperty* property_;
  VerifierOptions options_;
  const Hcd* hcd_;
  TypePool pool_;
  std::unique_ptr<PropertyAutomata> automata_;
  std::map<TaskId, std::unique_ptr<TaskContext>> contexts_;
  std::map<TaskId, const TaskContext*> context_ptrs_;
  /// Guards the memo map itself; entries are heap-owned, so references
  /// survive concurrent insertions.
  mutable std::mutex memo_mutex_;
  std::unordered_map<RtQueryKey, std::unique_ptr<Entry>, RtQueryKeyHash>
      memo_;
  std::mutex stats_mutex_;
  RtStats stats_;
  /// Thread-budget token: only one exploration shards at a time.
  /// Child queries triggered from inside a sharded build (its workers'
  /// prepare phase) run sequential — otherwise every nesting level
  /// would multiply the worker count (num_shards^depth threads). The
  /// sharded and sequential builds produce identical graphs, so this
  /// is purely a scheduling decision.
  std::atomic<int> sharded_builds_{0};
};

}  // namespace has

#endif  // HAS_CORE_RT_RELATION_H_
