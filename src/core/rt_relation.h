// Demand-driven computation of the relations R_T (Section 4.2,
// Lemma 21): for a task T, input type τ_in (plus input cell) and truth
// assignment β to Φ_T, the set of possible outputs — returning output
// types, and whether a non-returning run (lasso through a Büchi-
// accepting state, or a blocking run with a ⊥ child) exists. Queries
// recurse down the hierarchy through the RtOracle interface and are
// memoized per (task, τ_in, cell, β) — the key holds pool-interned ids,
// so the memo is a flat hash table over integer tuples instead of a
// tree of serialized signatures.
#ifndef HAS_CORE_RT_RELATION_H_
#define HAS_CORE_RT_RELATION_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/task_vass.h"
#include "core/type_pool.h"
#include "vass/karp_miller.h"
#include "vass/repeated.h"

namespace has {

/// Cumulative statistics across all RT queries.
struct RtStats {
  size_t queries = 0;
  size_t cov_nodes = 0;
  size_t cov_edges = 0;
  size_t product_states = 0;
  size_t counter_dims = 0;
  /// Canonical types / cells hash-consed in the engine's shared pool.
  size_t pooled_types = 0;
  size_t pooled_cells = 0;
  bool truncated = false;
};

class RtEngine : public RtOracle {
 public:
  /// `property` must already be the negated property ([¬ξ]_T1).
  /// `hcd` is null in no-arithmetic mode.
  RtEngine(const ArtifactSystem* system, const HltlProperty* property,
           const VerifierOptions& options, const Hcd* hcd);
  ~RtEngine() override;

  const ChildResult& Query(TaskId task, const PartialIsoType& input_iso,
                           const Cell& input_cell,
                           Assignment beta) override;
  RtQueryKey KeyOf(TaskId task, const PartialIsoType& input_iso,
                   const Cell& input_cell, Assignment beta) override {
    return EntryKey(task, input_iso, input_cell, beta);
  }

  struct RootWitness {
    bool satisfiable = false;
    /// The memo entry holding the witnessing root exploration.
    RtQueryKey entry_key;
    /// Lasso witness (empty loop = blocking witness).
    std::vector<int64_t> stem_labels;
    std::vector<int64_t> loop_labels;
    int final_node = -1;
    bool blocking = false;
  };

  /// Satisfiability of the (negated) property: does some symbolic tree
  /// of runs of the system satisfy it? (Lemma 21 at the root.)
  RootWitness CheckRoot();

  const RtStats& stats() const { return stats_; }
  const TaskContext& context(TaskId t) const { return *contexts_.at(t); }
  /// The engine-wide interning pool (shared by every per-task product).
  const TypePool& pool() const { return pool_; }

  /// Access to a memo entry's exploration artifacts (counterexample
  /// rendering).
  struct Entry {
    ChildResult result;
    std::unique_ptr<TaskVass> vass;
    std::unique_ptr<KarpMiller> graph;
    /// Per returning outcome: a coverability node realizing it.
    std::vector<int> returning_nodes;
    /// Blocking witness node (-1 if none) and lasso witness.
    int blocking_node = -1;
    std::optional<LassoWitness> lasso;
    TaskId task = kNoTask;
  };
  const Entry* FindEntry(const RtQueryKey& key) const;
  /// Interns the query input into the pool and returns the memo key.
  RtQueryKey EntryKey(TaskId task, const PartialIsoType& input_iso,
                      const Cell& input_cell, Assignment beta);

 private:
  const ArtifactSystem* system_;
  const HltlProperty* property_;
  VerifierOptions options_;
  const Hcd* hcd_;
  TypePool pool_;
  std::unique_ptr<PropertyAutomata> automata_;
  std::map<TaskId, std::unique_ptr<TaskContext>> contexts_;
  std::map<TaskId, const TaskContext*> context_ptrs_;
  std::unordered_map<RtQueryKey, std::unique_ptr<Entry>, RtQueryKeyHash>
      memo_;
  RtStats stats_;
};

}  // namespace has

#endif  // HAS_CORE_RT_RELATION_H_
