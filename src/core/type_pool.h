// Hash-consed interning of canonical symbolic state: a TypePool owns
// the canonical PartialIsoType (and Cell) instances in arena storage
// and hands out dense integer handles. Interning normalizes first, so
// two semantically equal types always map to the SAME TypeId — equality
// on the hot paths (RT memoization, product-state interning, counter
// dimensions, coverability keys) degenerates to an integer compare, and
// the per-type canonical hash is computed exactly once. The pool is
// shared across all per-task products of one RtEngine, deduplicating
// types globally across RT queries; it is also the anchor point for the
// sharded exploration the roadmap plans (one pool per shard + merge).
#ifndef HAS_CORE_TYPE_POOL_H_
#define HAS_CORE_TYPE_POOL_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "arith/cell.h"
#include "core/iso_type.h"

namespace has {

/// Dense handle of an interned PartialIsoType. Ids are only comparable
/// within the pool that issued them.
using TypeId = int32_t;
/// Dense handle of an interned Cell.
using CellId = int32_t;

inline constexpr TypeId kNoTypeId = -1;
inline constexpr CellId kNoCellId = -1;

class TypePool {
 public:
  TypePool() = default;
  TypePool(const TypePool&) = delete;
  TypePool& operator=(const TypePool&) = delete;

  /// Normalizes `iso` and interns the canonical form. Equal constraint
  /// sets (equal Signature()s) receive equal ids.
  TypeId Intern(PartialIsoType iso);

  /// Interns a type the caller guarantees is already normalized (the
  /// common case on the successor hot path, where Normalize() already
  /// ran during enumeration). Copies into the arena only on a miss —
  /// a hit costs one canonical encoding and a hash probe. Debug builds
  /// assert that a hit really has an identical Signature(), i.e. id
  /// equality coincides with signature equality.
  TypeId InternNormalized(const PartialIsoType& iso);
  /// Rvalue variant: a miss moves the type into the arena instead of
  /// copying it.
  TypeId InternNormalized(PartialIsoType&& iso);

  const PartialIsoType& type(TypeId id) const {
    return types_[static_cast<size_t>(id)];
  }
  size_t num_types() const { return types_.size(); }

  CellId InternCell(Cell cell);
  const Cell& cell(CellId id) const { return cells_[static_cast<size_t>(id)]; }
  size_t num_cells() const { return cells_.size(); }

  struct Stats {
    size_t iso_queries = 0;
    size_t iso_hits = 0;
    size_t cell_queries = 0;
    size_t cell_hits = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Shared lookup/insert; `owned` (nullable) is moved into the arena
  /// on a miss, otherwise `iso` is copied.
  TypeId InternImpl(const PartialIsoType& iso, PartialIsoType* owned);

  // Arena storage: deques keep element addresses stable across growth,
  // so `type(id)` references stay valid while interning continues.
  std::deque<PartialIsoType> types_;
  // Canonical encodings of the pooled types, parallel to types_; probe
  // comparisons run on these flat vectors instead of re-encoding the
  // pooled side on every collision.
  std::deque<std::vector<int64_t>> type_tokens_;
  std::deque<std::vector<Rational>> type_consts_;
  std::unordered_map<size_t, std::vector<TypeId>> type_buckets_;

  std::deque<Cell> cells_;
  std::unordered_map<size_t, std::vector<CellId>> cell_buckets_;

  Stats stats_;
};

}  // namespace has

#endif  // HAS_CORE_TYPE_POOL_H_
