// Hash-consed interning of canonical symbolic state: a TypePool owns
// the canonical PartialIsoType (and Cell) instances in arena storage
// and hands out dense integer handles. Interning normalizes first, so
// two semantically equal types always map to the SAME TypeId — equality
// on the hot paths (RT memoization, product-state interning, counter
// dimensions, coverability keys) degenerates to an integer compare, and
// the per-type canonical hash is computed exactly once.
//
// The pool is shared across all per-task products of one RtEngine and
// is SAFE FOR CONCURRENT INTERNING: lookups/inserts go through striped
// mutexes (one bucket map per stripe, selected by canonical hash), and
// the arenas are chunked so readers dereference ids lock-free while
// other threads append. Canonical instances are path-compressed before
// publication, so const queries on a shared pooled type never write.
// For shard-local pools, MergeFrom folds another pool into this one and
// reports the id remapping.
#ifndef HAS_CORE_TYPE_POOL_H_
#define HAS_CORE_TYPE_POOL_H_

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "arith/cell.h"
#include "common/status.h"
#include "core/iso_type.h"

namespace has {

/// Dense handle of an interned PartialIsoType. Ids are only comparable
/// within the pool that issued them.
using TypeId = int32_t;
/// Dense handle of an interned Cell.
using CellId = int32_t;

inline constexpr TypeId kNoTypeId = -1;
inline constexpr CellId kNoCellId = -1;

/// Append-only chunked arena with lock-free reads: elements never move
/// (fixed-size chunks), the chunk directory is a fixed array of atomic
/// pointers, so operator[] needs no lock while another thread appends.
/// Appends themselves must be externally serialized (the TypePool holds
/// its arena mutex across them). An id handed to a reader is always
/// published through a synchronizing channel (bucket probe under the
/// stripe mutex, or a cross-thread queue), which orders the element's
/// construction before the read.
template <typename T>
class ChunkedArena {
 public:
  static constexpr size_t kChunkShift = 10;  // 1024 elements per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  // 16M elements — two orders of magnitude above the default
  // coverability budget; the directory is 128KB of inline atomics.
  static constexpr size_t kMaxChunks = size_t{1} << 14;

  ChunkedArena() {
    for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
  }
  ~ChunkedArena() {
    for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
  }
  ChunkedArena(const ChunkedArena&) = delete;
  ChunkedArena& operator=(const ChunkedArena&) = delete;

  /// Caller must serialize appends (TypePool's arena mutex).
  size_t Append(T value) {
    size_t index = size_.load(std::memory_order_relaxed);
    size_t chunk = index >> kChunkShift;
    // Hard capacity check (always on): overrunning the fixed chunk
    // directory would be silent out-of-bounds writes in release builds.
    HAS_CHECK(chunk < kMaxChunks);
    T* storage = chunks_[chunk].load(std::memory_order_acquire);
    if (storage == nullptr) {
      storage = new T[kChunkSize];
      chunks_[chunk].store(storage, std::memory_order_release);
    }
    storage[index & (kChunkSize - 1)] = std::move(value);
    size_.store(index + 1, std::memory_order_release);
    return index;
  }

  const T& operator[](size_t index) const {
    T* storage =
        chunks_[index >> kChunkShift].load(std::memory_order_acquire);
    return storage[index & (kChunkSize - 1)];
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  std::array<std::atomic<T*>, kMaxChunks> chunks_;
  std::atomic<size_t> size_{0};
};

class TypePool {
 public:
  TypePool() = default;
  TypePool(const TypePool&) = delete;
  TypePool& operator=(const TypePool&) = delete;

  /// Normalizes `iso` and interns the canonical form. Equal constraint
  /// sets (equal Signature()s) receive equal ids. Safe to call from
  /// multiple threads concurrently.
  TypeId Intern(PartialIsoType iso);

  /// Interns a type the caller guarantees is already normalized (the
  /// common case on the successor hot path, where Normalize() already
  /// ran during enumeration). Copies into the arena only on a miss —
  /// a hit costs one canonical encoding and a hash probe. Debug builds
  /// assert that a hit really has an identical Signature(), i.e. id
  /// equality coincides with signature equality. Thread-safe.
  TypeId InternNormalized(const PartialIsoType& iso);
  /// Rvalue variant: a miss moves the type into the arena instead of
  /// copying it.
  TypeId InternNormalized(PartialIsoType&& iso);

  /// Lock-free: ids never move, and an id obtained through interning or
  /// a synchronized exchange is always safe to dereference.
  const PartialIsoType& type(TypeId id) const {
    return types_[static_cast<size_t>(id)];
  }
  size_t num_types() const { return types_.size(); }

  CellId InternCell(Cell cell);
  const Cell& cell(CellId id) const { return cells_[static_cast<size_t>(id)]; }
  size_t num_cells() const { return cells_.size(); }

  /// Folds every type and cell of `other` into this pool (the merge
  /// step of per-shard pool exploration): `type_remap`/`cell_remap`
  /// map `other`'s dense ids to ids of this pool. Requires `other` to
  /// be quiescent; this pool may be interning concurrently.
  void MergeFrom(const TypePool& other, std::vector<TypeId>* type_remap,
                 std::vector<CellId>* cell_remap);

  struct Stats {
    size_t iso_queries = 0;
    size_t iso_hits = 0;
    size_t cell_queries = 0;
    size_t cell_hits = 0;
  };
  /// Snapshot of the (atomic) counters. Queries are derived — every
  /// intern is either a hit or populates the arena — so the hot path
  /// pays exactly one relaxed increment.
  Stats stats() const {
    Stats s;
    s.iso_hits = iso_hits_.load(std::memory_order_relaxed);
    s.iso_queries = s.iso_hits + types_.size();
    s.cell_hits = cell_hits_.load(std::memory_order_relaxed);
    s.cell_queries = s.cell_hits + cells_.size();
    return s;
  }

 private:
  static constexpr size_t kNumStripes = 64;  // power of two

  static size_t StripeOf(size_t hash) {
    // The low bits select the bucket within the stripe map; fold the
    // high bits into the stripe selector so both stay well-mixed. The
    // shifts are expressed in fractions of the word width, so they
    // stay defined on 32-bit size_t.
    constexpr unsigned kHalf = sizeof(size_t) * 4;
    return (hash >> kHalf ^ hash >> (kHalf / 2 + 3) ^ hash) &
           (kNumStripes - 1);
  }

  /// One hash bucket entry: the issued id plus the canonical encoding
  /// probe comparisons run against (kept beside the id so collisions
  /// resolve without re-encoding the pooled instance).
  struct TypeEntry {
    TypeId id;
    std::vector<int64_t> tokens;
    std::vector<Rational> consts;
  };
  struct TypeStripe {
    std::mutex mutex;
    std::unordered_map<size_t, std::vector<TypeEntry>> buckets;
  };
  struct CellStripe {
    std::mutex mutex;
    std::unordered_map<size_t, std::vector<CellId>> buckets;
  };

  /// Shared lookup/insert; `owned` (nullable) is moved into the arena
  /// on a miss, otherwise `iso` is copied.
  TypeId InternImpl(const PartialIsoType& iso, PartialIsoType* owned);

  // Arena storage: chunked so element addresses are stable and reads
  // stay lock-free while interning continues on other threads.
  ChunkedArena<PartialIsoType> types_;
  ChunkedArena<Cell> cells_;
  /// Serializes arena appends (misses only; hits never take it).
  std::mutex types_arena_mutex_;
  std::mutex cells_arena_mutex_;

  std::array<TypeStripe, kNumStripes> type_stripes_;
  std::array<CellStripe, kNumStripes> cell_stripes_;

  std::atomic<size_t> iso_hits_{0};
  std::atomic<size_t> cell_hits_{0};
};

}  // namespace has

#endif  // HAS_CORE_TYPE_POOL_H_
