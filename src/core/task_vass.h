// The per-task product VASS V(T, β) of Section 4.2. States are tuples
//   (iso type τ, cell, current service σ, Büchi state q of B(T,β),
//    child stages ō, input-bound bits c̄_ib)
// and the counter dimensions are the (non-input-bound) TS-isomorphism
// types discovered during exploration. Transitions implement the
// symbolic successor relation; opening a child guesses an entry
// (τ_in, τ_out, β_c) of the child's R_Tc relation through the RtOracle.
//
// All symbolic state is hash-consed through a TypePool shared across
// every product of one engine: states, counter dimensions and child
// outcomes are keyed by interned TypeId/CellId handles, never by
// serialized signatures.
#ifndef HAS_CORE_TASK_VASS_H_
#define HAS_CORE_TASK_VASS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hashing.h"
#include "core/successor.h"
#include "core/type_pool.h"
#include "hltl/assignments.h"
#include "vass/vass.h"

namespace has {

/// A child output option: either a returning output (iso/cell) or ⊥.
struct ChildOutcome {
  bool bottom = false;  ///< the child call never returns
  PartialIsoType iso;   ///< over the child scope, projected to in ∪ ret
  Cell cell;
};

/// Results of a child R_Tc query for one (input, β_c).
struct ChildResult {
  std::vector<ChildOutcome> returning;  ///< distinct outputs
  bool has_bottom = false;              ///< lasso or blocking run exists
};

/// Memo key of one R_T query: all components are pool-interned ids, so
/// key equality is a handful of integer compares.
struct RtQueryKey {
  TaskId task = kNoTask;
  TypeId iso = kNoTypeId;
  CellId cell = kNoCellId;
  Assignment beta = 0;

  bool valid() const { return task != kNoTask; }
  bool operator==(const RtQueryKey& o) const {
    return task == o.task && iso == o.iso && cell == o.cell && beta == o.beta;
  }
  bool operator!=(const RtQueryKey& o) const { return !(*this == o); }
};

struct RtQueryKeyHash {
  size_t operator()(const RtQueryKey& k) const {
    size_t seed = static_cast<size_t>(k.task);
    HashMix(&seed, k.iso);
    HashMix(&seed, k.cell);
    HashMix(&seed, k.beta);
    return seed;
  }
};

/// Interface the product uses to query children (implemented by the
/// RtEngine with memoization; Lemma 21's recursion). Implementations
/// must be safe to call from concurrent product workers.
class RtOracle {
 public:
  virtual ~RtOracle() = default;
  virtual const ChildResult& Query(TaskId child,
                                   const PartialIsoType& input_iso,
                                   const Cell& input_cell,
                                   Assignment beta) = 0;
  /// Memo key of the query (for counterexample expansion). Interns the
  /// input into the oracle's pool, hence non-const.
  virtual RtQueryKey KeyOf(TaskId child, const PartialIsoType& input_iso,
                           const Cell& input_cell, Assignment beta) = 0;

  /// One child's queries for EVERY assignment in [0, num_assignments),
  /// batched: result pointers and memo keys are parallel, indexed by β.
  /// Result references stay valid for the oracle's lifetime. The
  /// batched form lets the engine intern the input once instead of
  /// twice per β (Query + KeyOf), which is what the product's opening
  /// loop previously paid. Engines override this with a sharper
  /// implementation; the default delegates per β.
  struct BatchedChildResult {
    std::vector<const ChildResult*> results;  ///< indexed by β
    std::vector<RtQueryKey> keys;             ///< indexed by β
  };
  virtual BatchedChildResult QueryAll(TaskId child,
                                      const PartialIsoType& input_iso,
                                      const Cell& input_cell,
                                      Assignment num_assignments) {
    BatchedChildResult batch;
    batch.results.reserve(num_assignments);
    batch.keys.reserve(num_assignments);
    for (Assignment beta = 0; beta < num_assignments; ++beta) {
      batch.results.push_back(&Query(child, input_iso, input_cell, beta));
      batch.keys.push_back(KeyOf(child, input_iso, input_cell, beta));
    }
    return batch;
  }
};

/// Child stage within the current segment.
struct ChildStage {
  enum class Kind : uint8_t { kInit, kActive, kActiveBottom, kClosed };
  Kind kind = Kind::kInit;
  int outcome = -1;         ///< index into TaskVass outcome registry
  Assignment beta = 0;      ///< β_c guessed at the opening

  bool operator==(const ChildStage& o) const {
    return kind == o.kind && outcome == o.outcome && beta == o.beta;
  }
  bool operator<(const ChildStage& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (outcome != o.outcome) return outcome < o.outcome;
    return beta < o.beta;
  }
};

/// What a transition did — used to decode counterexample paths.
struct TransitionRecord {
  ServiceRef service;
  int target_state = -1;
  /// For child openings: the guessed β_c and outcome index (-1 = ⊥).
  Assignment child_beta = 0;
  int child_outcome = -1;
  /// Memo key of the child query (invalid when the transition opened no
  /// child) and the index into its returning set (-1 for ⊥ outcomes);
  /// used to expand the child's witness run.
  RtQueryKey child_key;
  int child_result_index = -1;
  std::string note;
};

class TaskVass : public VassSystem {
 public:
  /// `opening_filter` (nullable) must hold at opening configurations —
  /// the verifier passes Π for the root task. `pool` is the engine's
  /// shared interning pool and must outlive the product.
  TaskVass(const TaskContext* ctx,
           const std::map<TaskId, const TaskContext*>* child_ctxs,
           PropertyAutomata* automata, TypePool* pool, Assignment beta,
           PartialIsoType input_iso, Cell input_cell, RtOracle* oracle,
           const Condition* opening_filter);

  /// Builds and interns the initial states; returns their ids.
  std::vector<int> InitialStates();

  /// Equivalent to CommitSuccessors(state, PrepareSuccessors(state)).
  void Successors(int state, std::vector<VassEdge>* out) override;

  // --- sharded-exploration protocol ------------------------------------
  // Prepare runs the expensive symbolic work (successor enumeration,
  // condition evaluation, child-oracle queries, pool interning) and is
  // safe to call concurrently: it only reads product state and goes
  // through thread-safe components (TypePool, RtOracle). Commit applies
  // the cheap mutations (state/dimension/ib-bit/outcome/record
  // interning); the explorer serializes commits in the sequential
  // explorer's order, which keeps all product-internal numbering
  // deterministic and schedule-independent.
  bool SupportsConcurrentPrepare() const override { return true; }
  std::unique_ptr<Prepared> PrepareSuccessors(int state) override;
  void CommitSuccessors(int state, std::unique_ptr<Prepared> prepared,
                        std::vector<VassEdge>* out) override;
  /// Committed length of `state`'s ample prefix (0 = no reduction): the
  /// leading edges produced by the ample service selected in
  /// PrepareSuccessors. Written only inside the serialized commit and a
  /// pure function of the state's configuration, so recomputation after
  /// cache eviction reproduces the same value.
  int AmplePrefix(int state) const override;

  // --- state inspection (used by the RT computation) -------------------
  int num_states() const { return static_cast<int>(states_.size()); }
  bool IsReturning(int state) const;   ///< σ = σ^c_T and q ∈ Qfin
  bool IsBlocking(int state) const;    ///< q ∈ Qfin and some child ⊥
  bool IsBuchiAccepting(int state) const;
  /// Output type of a returning state: projection onto x̄_in ∪ x̄_ret.
  ChildOutcome OutputOf(int state) const;

  const TransitionRecord& record(int64_t label) const {
    return records_[static_cast<size_t>(label)];
  }
  const PartialIsoType& state_iso(int state) const;
  ServiceRef state_service(int state) const {
    return states_[state].service;
  }
  int state_buchi(int state) const { return states_[state].q; }
  const std::vector<ChildStage>& state_stages(int state) const {
    return states_[state].stages;
  }

  /// Whether any successor enumeration hit the branch budget.
  bool truncated() const { return truncated_; }
  /// Counter dimensions allocated so far: one per discovered
  /// (artifact relation, TS-type) pair — each relation owns its own
  /// dimension group, interleaved by discovery order.
  int num_dimensions() const { return static_cast<int>(dim_types_.size()); }
  size_t num_outcomes() const { return outcomes_.size(); }
  const ChildOutcome& outcome(int i) const { return outcomes_[i]; }

 private:
  struct State {
    TypeId iso = kNoTypeId;
    CellId cell = kNoCellId;
    ServiceRef service;
    int q = -1;
    std::vector<ChildStage> stages;       // parallel to task children
    std::vector<int> ib_bits;             // sorted ib-type ids set to 1

    bool operator==(const State& o) const {
      return iso == o.iso && cell == o.cell && service == o.service &&
             q == o.q && stages == o.stages && ib_bits == o.ib_bits;
    }
  };

  struct StateHash {
    size_t operator()(const State& s) const {
      size_t seed = static_cast<size_t>(s.iso);
      HashMix(&seed, s.cell);
      HashCombine(&seed, s.service.Hash());
      HashMix(&seed, s.q);
      for (const ChildStage& st : s.stages) {
        HashMix(&seed, static_cast<int>(st.kind));
        HashMix(&seed, st.outcome);
        HashMix(&seed, st.beta);
      }
      for (int b : s.ib_bits) HashMix(&seed, b);
      return seed;
    }
  };

  /// Key of an interned child outcome (all components pool ids).
  struct OutcomeKey {
    bool bottom = false;
    TypeId iso = kNoTypeId;
    CellId cell = kNoCellId;

    bool operator==(const OutcomeKey& o) const {
      return bottom == o.bottom && iso == o.iso && cell == o.cell;
    }
  };
  struct OutcomeKeyHash {
    size_t operator()(const OutcomeKey& k) const {
      size_t seed = k.bottom ? 1 : 0;
      HashMix(&seed, k.iso);
      HashMix(&seed, k.cell);
      return seed;
    }
  };

  /// Identity of a TransitionRecord: everything decoding needs. The
  /// note string is derived from the service identity, so it is not
  /// part of the key. Records are interned so that a successor
  /// recomputation (after the explorer's bounded cache evicted a
  /// state's edge list) reproduces the ORIGINAL labels — Successors is
  /// idempotent and the graph stays schedule- and eviction-independent.
  struct RecordKey {
    ServiceRef service;
    int target = -1;
    Assignment child_beta = 0;
    RtQueryKey child_key;
    int child_result_index = -1;

    bool operator==(const RecordKey& o) const {
      return service == o.service && target == o.target &&
             child_beta == o.child_beta && child_key == o.child_key &&
             child_result_index == o.child_result_index;
    }
  };
  struct RecordKeyHash {
    size_t operator()(const RecordKey& k) const {
      size_t seed = k.service.Hash();
      HashMix(&seed, k.target);
      HashMix(&seed, k.child_beta);
      HashCombine(&seed, RtQueryKeyHash{}(k.child_key));
      HashMix(&seed, k.child_result_index);
      return seed;
    }
  };

  /// Interns an already-normalized iso type (the enumeration emits
  /// normalized configurations); a pool hit is copy-free.
  TypeId InternIso(const PartialIsoType& iso);
  CellId InternCell(const Cell& cell);
  int InternState(State s);
  /// Label of the transition record (allocating on first sight).
  int64_t InternRecord(TransitionRecord rec);
  /// A (relation, TS-type) key: the SAME normalized projection arising
  /// for two different relations must map to two different counter
  /// dimensions / ib bits — tuples of S_T,i and S_T,j are never
  /// interchangeable.
  static uint64_t RelTypeKey(int relation, TypeId ts) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(relation)) << 32) |
           static_cast<uint32_t>(ts);
  }
  /// Counter dimension of a (relation, TS-type) (allocating on first
  /// sight).
  int DimOf(int relation, TypeId ts);
  /// Input-bound bit id of a (relation, TS-type) (allocating on first
  /// sight).
  int IbIdOf(int relation, TypeId ts);
  int InternOutcome(ChildOutcome outcome);

  /// Letter of a configuration for the Büchi product.
  std::vector<bool> MakeLetter(const SymbolicConfig& config,
                               const ServiceRef& service, TaskId opened_child,
                               Assignment child_beta) const;

  /// One prepared (not yet committed) product transition: the target
  /// configuration is already pool-interned and the Büchi-compatible
  /// successor states are precomputed; everything that allocates
  /// product-local ids (counter dimensions, ib bits, outcomes, states,
  /// records) is deferred to the commit.
  struct PendingEdge {
    TypeId next_iso = kNoTypeId;
    CellId next_cell = kNoCellId;
    ServiceRef service;
    Assignment child_beta = 0;
    std::vector<int> q2s;  ///< compatible Büchi successors of from.q
    /// Artifact-relation bookkeeping ((A) transitions), one entry per
    /// relation the service updates (ascending relation index),
    /// resolved to counter dimensions / ib bits at commit time.
    struct PendingSetOp {
      int relation = 0;
      bool inserts = false;
      bool insert_input_bound = false;
      TypeId insert_ts = kNoTypeId;
      bool retrieves = false;
      bool retrieve_input_bound = false;
      TypeId retrieve_ts = kNoTypeId;
    };
    std::vector<PendingSetOp> set_ops;
    /// Child-stage rewrite: (A) resets all stages, (B)/(C) rewrite one
    /// child's stage; a kActive outcome is interned at commit from
    /// `outcome_src` (a pointer into the oracle's immutable result).
    bool fresh_stages = false;
    int stage_child = -1;
    ChildStage::Kind stage_kind = ChildStage::Kind::kInit;
    const ChildOutcome* outcome_src = nullptr;
    RtQueryKey child_key;
    int child_result_index = -1;
    std::string note;
  };
  struct PendingSuccessors : Prepared {
    std::vector<PendingEdge> edges;
    bool truncated = false;
    /// Count of LEADING edges that are ample identity stutters, one
    /// per eligible service (0 = no ample set selected — the state
    /// expands fully).
    int ample_pending = 0;
  };

  /// Appends a PendingEdge for the transition into `next` (computing
  /// the letter and the compatible Büchi successors); the caller fills
  /// in the transition-specific bookkeeping on the returned edge.
  PendingEdge* EmitPending(const State& from, const SymbolicConfig& next,
                           const ServiceRef& service, TaskId opened_child,
                           Assignment child_beta, const std::string& note,
                           PendingSuccessors* pending);

  const TaskContext* ctx_;
  const std::map<TaskId, const TaskContext*>* child_ctxs_;
  PropertyAutomata* all_automata_;
  TaskAutomata* automata_;
  TypePool* pool_;
  Assignment beta_;
  PartialIsoType input_iso_;
  Cell input_cell_;
  RtOracle* oracle_;
  const Condition* opening_filter_;
  const BuchiAutomaton* buchi_ = nullptr;

  /// The state index keys by id and hashes/compares through states_,
  /// so each State (with its stages/ib_bits vectors) is stored once.
  struct StateIndexHash {
    const std::vector<State>* states;
    size_t operator()(int id) const {
      return StateHash{}((*states)[static_cast<size_t>(id)]);
    }
  };
  struct StateIndexEq {
    const std::vector<State>* states;
    bool operator()(int a, int b) const {
      return (*states)[static_cast<size_t>(a)] ==
             (*states)[static_cast<size_t>(b)];
    }
  };

  std::vector<State> states_;
  std::unordered_set<int, StateIndexHash, StateIndexEq> state_index_;
  /// Dimension / ib-bit registries, keyed by RelTypeKey(relation, ts).
  std::vector<std::pair<int, TypeId>> dim_types_;
  std::unordered_map<uint64_t, int> dim_index_;
  std::vector<std::pair<int, TypeId>> ib_types_;
  std::unordered_map<uint64_t, int> ib_index_;
  std::vector<ChildOutcome> outcomes_;
  std::unordered_map<OutcomeKey, int, OutcomeKeyHash> outcome_index_;
  std::vector<TransitionRecord> records_;
  std::unordered_map<RecordKey, int64_t, RecordKeyHash> record_index_;
  /// Per-state committed ample-prefix length (AmplePrefix); indexed by
  /// state id, lazily grown in CommitSuccessors.
  std::vector<int> ample_prefix_;
  bool truncated_ = false;
};

}  // namespace has

#endif  // HAS_CORE_TASK_VASS_H_
