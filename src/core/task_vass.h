// The per-task product VASS V(T, β) of Section 4.2. States are tuples
//   (iso type τ, cell, current service σ, Büchi state q of B(T,β),
//    child stages ō, input-bound bits c̄_ib)
// and the counter dimensions are the (non-input-bound) TS-isomorphism
// types discovered during exploration. Transitions implement the
// symbolic successor relation; opening a child guesses an entry
// (τ_in, τ_out, β_c) of the child's R_Tc relation through the RtOracle.
#ifndef HAS_CORE_TASK_VASS_H_
#define HAS_CORE_TASK_VASS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/successor.h"
#include "hltl/assignments.h"
#include "vass/vass.h"

namespace has {

/// A child output option: either a returning output (iso/cell) or ⊥.
struct ChildOutcome {
  bool bottom = false;  ///< the child call never returns
  PartialIsoType iso;   ///< over the child scope, projected to in ∪ ret
  Cell cell;
};

/// Results of a child R_Tc query for one (input, β_c).
struct ChildResult {
  std::vector<ChildOutcome> returning;  ///< distinct outputs
  bool has_bottom = false;              ///< lasso or blocking run exists
};

/// Interface the product uses to query children (implemented by the
/// RtEngine with memoization; Lemma 21's recursion).
class RtOracle {
 public:
  virtual ~RtOracle() = default;
  virtual const ChildResult& Query(TaskId child,
                                   const PartialIsoType& input_iso,
                                   const Cell& input_cell,
                                   Assignment beta) = 0;
  /// Memo key of the query (for counterexample expansion).
  virtual std::string KeyOf(TaskId child, const PartialIsoType& input_iso,
                            const Cell& input_cell,
                            Assignment beta) const = 0;
};

/// Child stage within the current segment.
struct ChildStage {
  enum class Kind : uint8_t { kInit, kActive, kActiveBottom, kClosed };
  Kind kind = Kind::kInit;
  int outcome = -1;         ///< index into TaskVass outcome registry
  Assignment beta = 0;      ///< β_c guessed at the opening

  bool operator==(const ChildStage& o) const {
    return kind == o.kind && outcome == o.outcome && beta == o.beta;
  }
  bool operator<(const ChildStage& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (outcome != o.outcome) return outcome < o.outcome;
    return beta < o.beta;
  }
};

/// What a transition did — used to decode counterexample paths.
struct TransitionRecord {
  ServiceRef service;
  int target_state = -1;
  /// For child openings: the guessed β_c and outcome index (-1 = ⊥).
  Assignment child_beta = 0;
  int child_outcome = -1;
  /// Memo key of the child query and the index into its returning set
  /// (-1 for ⊥ outcomes); used to expand the child's witness run.
  std::string child_entry_key;
  int child_result_index = -1;
  std::string note;
};

class TaskVass : public VassSystem {
 public:
  /// `opening_filter` (nullable) must hold at opening configurations —
  /// the verifier passes Π for the root task.
  TaskVass(const TaskContext* ctx,
           const std::map<TaskId, const TaskContext*>* child_ctxs,
           PropertyAutomata* automata, Assignment beta,
           PartialIsoType input_iso, Cell input_cell, RtOracle* oracle,
           const Condition* opening_filter);

  /// Builds and interns the initial states; returns their ids.
  std::vector<int> InitialStates();

  void Successors(int state, std::vector<VassEdge>* out) override;

  // --- state inspection (used by the RT computation) -------------------
  int num_states() const { return static_cast<int>(states_.size()); }
  bool IsReturning(int state) const;   ///< σ = σ^c_T and q ∈ Qfin
  bool IsBlocking(int state) const;    ///< q ∈ Qfin and some child ⊥
  bool IsBuchiAccepting(int state) const;
  /// Output type of a returning state: projection onto x̄_in ∪ x̄_ret.
  ChildOutcome OutputOf(int state) const;

  const TransitionRecord& record(int64_t label) const {
    return records_[static_cast<size_t>(label)];
  }
  const PartialIsoType& state_iso(int state) const;
  ServiceRef state_service(int state) const {
    return states_[state].service;
  }
  int state_buchi(int state) const { return states_[state].q; }
  const std::vector<ChildStage>& state_stages(int state) const {
    return states_[state].stages;
  }

  /// Whether any successor enumeration hit the branch budget.
  bool truncated() const { return truncated_; }
  /// Counter dimensions allocated so far (TS types).
  int num_dimensions() const { return static_cast<int>(dim_sigs_.size()); }
  size_t num_outcomes() const { return outcomes_.size(); }
  const ChildOutcome& outcome(int i) const { return outcomes_[i]; }

 private:
  struct State {
    int iso = -1;   // index into iso_pool_
    int cell = -1;  // index into cell_pool_
    ServiceRef service;
    int q = -1;
    std::vector<ChildStage> stages;       // parallel to task children
    std::vector<int> ib_bits;             // sorted ib-signature ids set to 1
  };

  int InternIso(PartialIsoType iso);
  int InternCell(const Cell& cell);
  int InternState(State s);
  int DimOf(const std::string& sig);
  int IbIdOf(const std::string& sig);
  int InternOutcome(ChildOutcome outcome);

  /// Letter of a configuration for the Büchi product.
  std::vector<bool> MakeLetter(const SymbolicConfig& config,
                               const ServiceRef& service, TaskId opened_child,
                               Assignment child_beta) const;

  /// Pushes edges for all Büchi-compatible q successors.
  void EmitEdges(const State& from_template, const SymbolicConfig& next,
                 const ServiceRef& service, TaskId opened_child,
                 Assignment child_beta, const Delta& delta,
                 std::vector<ChildStage> stages, std::vector<int> ib_bits,
                 const std::string& note, std::vector<VassEdge>* out,
                 bool from_initial);

  const TaskContext* ctx_;
  const std::map<TaskId, const TaskContext*>* child_ctxs_;
  PropertyAutomata* all_automata_;
  TaskAutomata* automata_;
  Assignment beta_;
  PartialIsoType input_iso_;
  Cell input_cell_;
  RtOracle* oracle_;
  const Condition* opening_filter_;
  const BuchiAutomaton* buchi_ = nullptr;

  std::vector<PartialIsoType> iso_pool_;
  std::map<std::string, int> iso_index_;
  std::vector<Cell> cell_pool_;
  std::vector<State> states_;
  std::map<std::string, int> state_index_;
  std::vector<std::string> dim_sigs_;
  std::map<std::string, int> dim_index_;
  std::vector<std::string> ib_sigs_;
  std::map<std::string, int> ib_index_;
  std::vector<ChildOutcome> outcomes_;
  std::vector<TransitionRecord> records_;
  bool truncated_ = false;
};

}  // namespace has

#endif  // HAS_CORE_TASK_VASS_H_
