// The per-task product VASS V(T, β) of Section 4.2. States are tuples
//   (iso type τ, cell, current service σ, Büchi state q of B(T,β),
//    child stages ō, input-bound bits c̄_ib)
// and the counter dimensions are the (non-input-bound) TS-isomorphism
// types discovered during exploration. Transitions implement the
// symbolic successor relation; opening a child guesses an entry
// (τ_in, τ_out, β_c) of the child's R_Tc relation through the RtOracle.
//
// All symbolic state is hash-consed through a TypePool shared across
// every product of one engine: states, counter dimensions and child
// outcomes are keyed by interned TypeId/CellId handles, never by
// serialized signatures.
#ifndef HAS_CORE_TASK_VASS_H_
#define HAS_CORE_TASK_VASS_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hashing.h"
#include "core/successor.h"
#include "core/type_pool.h"
#include "hltl/assignments.h"
#include "vass/vass.h"

namespace has {

/// A child output option: either a returning output (iso/cell) or ⊥.
struct ChildOutcome {
  bool bottom = false;  ///< the child call never returns
  PartialIsoType iso;   ///< over the child scope, projected to in ∪ ret
  Cell cell;
};

/// Results of a child R_Tc query for one (input, β_c).
struct ChildResult {
  std::vector<ChildOutcome> returning;  ///< distinct outputs
  bool has_bottom = false;              ///< lasso or blocking run exists
};

/// Memo key of one R_T query: all components are pool-interned ids, so
/// key equality is a handful of integer compares.
struct RtQueryKey {
  TaskId task = kNoTask;
  TypeId iso = kNoTypeId;
  CellId cell = kNoCellId;
  Assignment beta = 0;

  bool valid() const { return task != kNoTask; }
  bool operator==(const RtQueryKey& o) const {
    return task == o.task && iso == o.iso && cell == o.cell && beta == o.beta;
  }
  bool operator!=(const RtQueryKey& o) const { return !(*this == o); }
};

struct RtQueryKeyHash {
  size_t operator()(const RtQueryKey& k) const {
    size_t seed = static_cast<size_t>(k.task);
    HashMix(&seed, k.iso);
    HashMix(&seed, k.cell);
    HashMix(&seed, k.beta);
    return seed;
  }
};

/// Interface the product uses to query children (implemented by the
/// RtEngine with memoization; Lemma 21's recursion).
class RtOracle {
 public:
  virtual ~RtOracle() = default;
  virtual const ChildResult& Query(TaskId child,
                                   const PartialIsoType& input_iso,
                                   const Cell& input_cell,
                                   Assignment beta) = 0;
  /// Memo key of the query (for counterexample expansion). Interns the
  /// input into the oracle's pool, hence non-const.
  virtual RtQueryKey KeyOf(TaskId child, const PartialIsoType& input_iso,
                           const Cell& input_cell, Assignment beta) = 0;
};

/// Child stage within the current segment.
struct ChildStage {
  enum class Kind : uint8_t { kInit, kActive, kActiveBottom, kClosed };
  Kind kind = Kind::kInit;
  int outcome = -1;         ///< index into TaskVass outcome registry
  Assignment beta = 0;      ///< β_c guessed at the opening

  bool operator==(const ChildStage& o) const {
    return kind == o.kind && outcome == o.outcome && beta == o.beta;
  }
  bool operator<(const ChildStage& o) const {
    if (kind != o.kind) return kind < o.kind;
    if (outcome != o.outcome) return outcome < o.outcome;
    return beta < o.beta;
  }
};

/// What a transition did — used to decode counterexample paths.
struct TransitionRecord {
  ServiceRef service;
  int target_state = -1;
  /// For child openings: the guessed β_c and outcome index (-1 = ⊥).
  Assignment child_beta = 0;
  int child_outcome = -1;
  /// Memo key of the child query (invalid when the transition opened no
  /// child) and the index into its returning set (-1 for ⊥ outcomes);
  /// used to expand the child's witness run.
  RtQueryKey child_key;
  int child_result_index = -1;
  std::string note;
};

class TaskVass : public VassSystem {
 public:
  /// `opening_filter` (nullable) must hold at opening configurations —
  /// the verifier passes Π for the root task. `pool` is the engine's
  /// shared interning pool and must outlive the product.
  TaskVass(const TaskContext* ctx,
           const std::map<TaskId, const TaskContext*>* child_ctxs,
           PropertyAutomata* automata, TypePool* pool, Assignment beta,
           PartialIsoType input_iso, Cell input_cell, RtOracle* oracle,
           const Condition* opening_filter);

  /// Builds and interns the initial states; returns their ids.
  std::vector<int> InitialStates();

  void Successors(int state, std::vector<VassEdge>* out) override;

  // --- state inspection (used by the RT computation) -------------------
  int num_states() const { return static_cast<int>(states_.size()); }
  bool IsReturning(int state) const;   ///< σ = σ^c_T and q ∈ Qfin
  bool IsBlocking(int state) const;    ///< q ∈ Qfin and some child ⊥
  bool IsBuchiAccepting(int state) const;
  /// Output type of a returning state: projection onto x̄_in ∪ x̄_ret.
  ChildOutcome OutputOf(int state) const;

  const TransitionRecord& record(int64_t label) const {
    return records_[static_cast<size_t>(label)];
  }
  const PartialIsoType& state_iso(int state) const;
  ServiceRef state_service(int state) const {
    return states_[state].service;
  }
  int state_buchi(int state) const { return states_[state].q; }
  const std::vector<ChildStage>& state_stages(int state) const {
    return states_[state].stages;
  }

  /// Whether any successor enumeration hit the branch budget.
  bool truncated() const { return truncated_; }
  /// Counter dimensions allocated so far (TS types).
  int num_dimensions() const { return static_cast<int>(dim_types_.size()); }
  size_t num_outcomes() const { return outcomes_.size(); }
  const ChildOutcome& outcome(int i) const { return outcomes_[i]; }

 private:
  struct State {
    TypeId iso = kNoTypeId;
    CellId cell = kNoCellId;
    ServiceRef service;
    int q = -1;
    std::vector<ChildStage> stages;       // parallel to task children
    std::vector<int> ib_bits;             // sorted ib-type ids set to 1

    bool operator==(const State& o) const {
      return iso == o.iso && cell == o.cell && service == o.service &&
             q == o.q && stages == o.stages && ib_bits == o.ib_bits;
    }
  };

  struct StateHash {
    size_t operator()(const State& s) const {
      size_t seed = static_cast<size_t>(s.iso);
      HashMix(&seed, s.cell);
      HashCombine(&seed, s.service.Hash());
      HashMix(&seed, s.q);
      for (const ChildStage& st : s.stages) {
        HashMix(&seed, static_cast<int>(st.kind));
        HashMix(&seed, st.outcome);
        HashMix(&seed, st.beta);
      }
      for (int b : s.ib_bits) HashMix(&seed, b);
      return seed;
    }
  };

  /// Key of an interned child outcome (all components pool ids).
  struct OutcomeKey {
    bool bottom = false;
    TypeId iso = kNoTypeId;
    CellId cell = kNoCellId;

    bool operator==(const OutcomeKey& o) const {
      return bottom == o.bottom && iso == o.iso && cell == o.cell;
    }
  };
  struct OutcomeKeyHash {
    size_t operator()(const OutcomeKey& k) const {
      size_t seed = k.bottom ? 1 : 0;
      HashMix(&seed, k.iso);
      HashMix(&seed, k.cell);
      return seed;
    }
  };

  /// Interns an already-normalized iso type (the enumeration emits
  /// normalized configurations); a pool hit is copy-free.
  TypeId InternIso(const PartialIsoType& iso);
  CellId InternCell(const Cell& cell);
  int InternState(State s);
  /// Counter dimension of a TS-type (allocating on first sight).
  int DimOf(TypeId ts);
  /// Input-bound bit id of a TS-type (allocating on first sight).
  int IbIdOf(TypeId ts);
  int InternOutcome(ChildOutcome outcome);

  /// Letter of a configuration for the Büchi product.
  std::vector<bool> MakeLetter(const SymbolicConfig& config,
                               const ServiceRef& service, TaskId opened_child,
                               Assignment child_beta) const;

  /// Pushes edges for all Büchi-compatible q successors.
  void EmitEdges(const State& from_template, const SymbolicConfig& next,
                 const ServiceRef& service, TaskId opened_child,
                 Assignment child_beta, const Delta& delta,
                 std::vector<ChildStage> stages, std::vector<int> ib_bits,
                 const std::string& note, std::vector<VassEdge>* out,
                 bool from_initial);

  const TaskContext* ctx_;
  const std::map<TaskId, const TaskContext*>* child_ctxs_;
  PropertyAutomata* all_automata_;
  TaskAutomata* automata_;
  TypePool* pool_;
  Assignment beta_;
  PartialIsoType input_iso_;
  Cell input_cell_;
  RtOracle* oracle_;
  const Condition* opening_filter_;
  const BuchiAutomaton* buchi_ = nullptr;

  /// The state index keys by id and hashes/compares through states_,
  /// so each State (with its stages/ib_bits vectors) is stored once.
  struct StateIndexHash {
    const std::vector<State>* states;
    size_t operator()(int id) const {
      return StateHash{}((*states)[static_cast<size_t>(id)]);
    }
  };
  struct StateIndexEq {
    const std::vector<State>* states;
    bool operator()(int a, int b) const {
      return (*states)[static_cast<size_t>(a)] ==
             (*states)[static_cast<size_t>(b)];
    }
  };

  std::vector<State> states_;
  std::unordered_set<int, StateIndexHash, StateIndexEq> state_index_;
  std::vector<TypeId> dim_types_;
  std::unordered_map<TypeId, int> dim_index_;
  std::vector<TypeId> ib_types_;
  std::unordered_map<TypeId, int> ib_index_;
  std::vector<ChildOutcome> outcomes_;
  std::unordered_map<OutcomeKey, int, OutcomeKeyHash> outcome_index_;
  std::vector<TransitionRecord> records_;
  bool truncated_ = false;
};

}  // namespace has

#endif  // HAS_CORE_TASK_VASS_H_
