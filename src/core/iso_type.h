// Partial T-isomorphism types — the symbolic representation of Section
// 4.1 in the constraint-based (partial) form pioneered by the authors'
// VERIFAS prototype. A type tracks, over a dynamically created universe
// of elements (variables, navigation expressions x_R.w, the constants
// null and numeric literals):
//   - an equivalence relation (union-find) with downward congruence
//     closure: e ~ f implies e.A ~ f.A (the key dependency of Def. 15);
//   - explicit disequalities;
//   - per-class tags: null, relation anchor (the class holds IDs of a
//     specific relation), numeric constant;
//   - recorded NEGATIVE relation atoms (¬R(x, ȳ)), checked against the
//     positive facts on every refinement.
// Atoms of the task's services and of the property are decided eagerly
// by the successor relation (core/successor.cc); canonicalization keys
// types for interning, counters and memoization.
#ifndef HAS_CORE_ISO_TYPE_H_
#define HAS_CORE_ISO_TYPE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "expr/condition.h"
#include "schema/schema.h"

namespace has {

/// Three-valued truth for symbolic condition evaluation.
enum class Truth : uint8_t { kFalse, kTrue, kUnknown };

Truth TruthAnd(Truth a, Truth b);
Truth TruthOr(Truth a, Truth b);
Truth TruthNot(Truth a);

/// An element of the type's universe.
struct IsoElement {
  enum class Kind : uint8_t { kNull, kConst, kVar, kNav };

  Kind kind = Kind::kNull;
  int var = -1;               ///< base variable (kVar/kNav)
  RelationId relation = kNoRelation;  ///< anchor relation of kNav roots
  std::vector<AttrId> path;   ///< navigation path (kNav, non-empty)
  Rational value;             ///< kConst

  bool operator==(const IsoElement& o) const {
    return kind == o.kind && var == o.var && relation == o.relation &&
           path == o.path && value == o.value;
  }
  bool operator<(const IsoElement& o) const;
  std::string ToString(const VarScope* scope) const;
};

/// Sort of an element or class.
struct IsoSort {
  enum class Kind : uint8_t { kUnknownId, kId, kNumeric, kNull };
  Kind kind = Kind::kUnknownId;
  RelationId relation = kNoRelation;  ///< for kId
};

/// Hash of a canonical encoding (the CanonicalEncode output pair);
/// shared by PartialIsoType::CanonicalHash and the TypePool so the two
/// can never drift apart.
size_t HashCanonicalEncoding(const std::vector<int64_t>& tokens,
                             const std::vector<Rational>& consts);

class PartialIsoType {
 public:
  /// Empty shell (no scope); only useful as a placeholder to assign
  /// into.
  PartialIsoType() = default;

  /// An empty type over a task scope. The schema pointer is retained
  /// for navigation sorts.
  PartialIsoType(const DatabaseSchema* schema, const VarScope* scope,
                 int max_depth);

  // --- element management ---------------------------------------------
  /// Interns an element; returns its index.
  int AddElement(const IsoElement& e);
  int NullElement();
  int ConstElement(const Rational& value);
  int VarElement(int var);
  /// Navigation child of element `parent` by attribute `attr`; requires
  /// the parent class to be anchored. Returns -1 if the resulting path
  /// would exceed the depth bound.
  int NavChild(int parent, AttrId attr);

  int num_elements() const { return static_cast<int>(elements_.size()); }
  const IsoElement& element(int e) const { return elements_[e]; }

  // --- assertions (refinements); false = contradiction -----------------
  bool AssertEq(int a, int b);
  bool AssertNeq(int a, int b);
  /// Anchors the class of element e at relation r (the class holds IDs
  /// of r).
  bool AssertAnchor(int e, RelationId r);

  /// Decides an atomic condition (kEq / kRel / kArith-constant) to the
  /// given truth value. Non-constant arithmetic atoms are the cell
  /// component's business and are rejected here.
  bool DecideAtom(const Condition& atom, bool value);

  // --- queries ----------------------------------------------------------
  bool Same(int a, int b) const;
  Truth EvalAtom(const Condition& atom) const;
  /// Three-valued evaluation of an arbitrary condition, using only the
  /// equality component (arith atoms beyond constant tags evaluate to
  /// kUnknown and must be handled by the cell component).
  Truth Eval(const Condition& cond) const;

  /// The class sort of element e.
  IsoSort SortOf(int e) const;
  bool IsNullTagged(int e) const;
  std::optional<RelationId> AnchorOf(int e) const;
  std::optional<Rational> ConstOf(int e) const;

  /// True iff the class of `e` contains an element whose base variable
  /// is in `vars` (used for the input-bound test of Section 4.1).
  bool ClassTouchesVars(int e, const std::set<int>& vars) const;

  /// Const lookup of the variable's element; -1 if never constrained.
  int LookupVar(int var) const;
  /// True iff the variable is constrained to be null (false when the
  /// variable has no element yet).
  bool VarIsNull(int var) const;

  // --- structural operations -------------------------------------------
  /// Drops unconstrained navigation elements so that semantically equal
  /// types canonicalize identically.
  void Normalize();

  /// Flattens the union-find so every element points directly at its
  /// class representative. The TypePool flattens canonical instances
  /// before publishing them: on a flattened type, Find()'s path
  /// compression never writes, so const queries on a shared pooled
  /// instance are data-race-free under concurrent readers.
  void CompressPaths();

  /// Canonical signature (after Normalize); equal signatures iff equal
  /// constraint sets. Retained for printing and debug assertions — the
  /// hot paths key on TypePool ids built from CanonicalEncode below.
  std::string Signature() const;

  /// Canonical integer encoding (same canonical element order and class
  /// labelling as Signature, without materializing a string): equal
  /// (tokens, consts) pairs iff equal Signature()s. Exact rational
  /// values are appended to `consts` in canonical order because they do
  /// not embed into int64.
  void CanonicalEncode(std::vector<int64_t>* tokens,
                       std::vector<Rational>* consts) const;
  /// Hash of the canonical encoding (HashCanonicalEncoding of the
  /// CanonicalEncode output); collisions are resolved by
  /// CanonicalEquals.
  size_t CanonicalHash() const;
  /// Structural equality of canonical encodings; coincides with
  /// Signature() equality.
  bool CanonicalEquals(const PartialIsoType& other) const;

  /// Projection onto `vars` (keeping navigation up to `depth`):
  /// existentially forgets everything else.
  PartialIsoType Project(const std::set<int>& vars, int depth) const;

  /// Rebuilds with base variables renamed through `map` (elements whose
  /// base variable is not in the map are dropped); the result lives in
  /// scope `new_scope`.
  PartialIsoType Rename(const std::map<int, int>& map,
                        const VarScope* new_scope) const;

  /// Conjoins all constraints of `other` (same scope) into this type;
  /// false on contradiction.
  bool MergeFrom(const PartialIsoType& other);

  /// Forgets everything about variable v (used when a service
  /// overwrites a non-input variable): v's elements and their
  /// navigation children are dropped.
  void ForgetVar(int v);

  std::string ToString() const;

  const VarScope* scope() const { return scope_; }
  int max_depth() const { return max_depth_; }

 private:
  friend class IsoTypeTestPeer;

  struct NegAtom {
    RelationId relation = kNoRelation;
    std::vector<int> args;  ///< element indices, relation attr order
  };

  int Find(int e) const;
  bool Union(int a, int b);
  /// Copies the sub-structure selected by `keep` into a fresh type.
  PartialIsoType Rebuild(const std::vector<bool>& keep) const;
  /// Congruence + tag closure; false on contradiction.
  bool Close();
  /// Checks recorded disequalities and negative atoms; false if any is
  /// violated.
  bool CheckConstraints() const;
  /// True iff a recorded negative atom is violated by the positives.
  bool NegAtomViolated(const NegAtom& n) const;
  std::vector<int> ClassMembers(int rep) const;
  /// Truth of R(args) from the positive facts only.
  Truth EvalRelAtom(RelationId r, const std::vector<int>& arg_elems) const;

  const DatabaseSchema* schema_ = nullptr;
  const VarScope* scope_ = nullptr;
  int max_depth_ = 0;
  std::vector<IsoElement> elements_;
  mutable std::vector<int> parent_;  // union-find (path compression)
  // Per-representative tags (moved on union).
  std::map<int, RelationId> anchor_;
  std::set<int> null_tag_;
  std::map<int, Rational> const_tag_;
  std::vector<std::pair<int, int>> disequalities_;  // element pairs
  std::vector<NegAtom> neg_atoms_;
};

}  // namespace has

#endif  // HAS_CORE_ISO_TYPE_H_
