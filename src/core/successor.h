// The symbolic successor relation (Section 4.1's transition relation on
// symbolic instances, in partial-isomorphism-type form), together with
// the arithmetic cell component of Section 5.
//
// Invariant maintained by the enumeration: every symbolic state decides
// every atom of the task's atom family A_T (all atoms of the task's
// services, its children's opening pre-conditions, its own closing
// pre-condition, the property conditions over the task, plus null-check
// atoms for every variable taking part in child input/output passing
// and in the artifact relation). In arithmetic mode every basis
// polynomial of the task's Hierarchical Cell Decomposition carries a
// definite sign. Pre/post-conditions therefore evaluate two-valued.
#ifndef HAS_CORE_SUCCESSOR_H_
#define HAS_CORE_SUCCESSOR_H_

#include <set>
#include <string>
#include <vector>

#include "arith/cell.h"
#include "arith/hcd.h"
#include "core/iso_type.h"
#include "hltl/hltl.h"
#include "model/artifact_system.h"

namespace has {

struct VerifierOptions {
  /// Navigation depth cap for partial isomorphism types. When
  /// use_paper_depth is set, the paper's h(T) is computed per task and
  /// clamped to this value; otherwise this value is used directly.
  int max_nav_depth = 2;
  bool use_paper_depth = false;
  /// Coverability graph node budget per (task, β, input) query.
  size_t max_cov_nodes = 1 << 17;
  /// Budget for successor enumeration branches per transition.
  size_t max_branches = 1 << 12;
  /// Repeated-reachability search knobs (see vass/repeated.h).
  int64_t lasso_effect_bound = 128;
  size_t lasso_max_steps = 1 << 20;
  /// When a blocking witness has already settled a query's ⊥-bit, the
  /// lasso search is pure counterexample polish — a lasso reads nicer
  /// than a blocking run — so it only runs if the coverability graph
  /// has fewer nodes than this. (Previously a buried `< 20000` literal
  /// on the unpruned path only; now honored with pruning on or off.)
  size_t lasso_witness_max_nodes = 20000;
  /// Worker shards per coverability exploration: 1 = the sequential
  /// explorer; > 1 shards Karp–Miller frontiers across that many
  /// threads. The sharded build is deterministic and produces a graph
  /// identical to the single-shard one, node for node.
  int num_shards = 1;
  /// Bound on each exploration's successor cache (distinct product
  /// states kept; least-recently-used entries beyond are evicted).
  size_t succ_cache_capacity = 1 << 14;
  /// Antichain subsumption pruning for the coverability explorations
  /// (minimal-coverability-set style; VERIFAS' biggest practical win
  /// over the naive Karp–Miller construction). Every consumer reads
  /// the pruned graph: returning outputs and blocking detection are
  /// per-state predicates (pruning preserves exactly the reachable
  /// states), and repeated reachability (lasso search) traverses the
  /// cover-edges the pruned build records at its prune points — no
  /// unpruned graph is ever rebuilt (see RtEngine::ComputeEntry and
  /// vass/repeated.h). Default ON since the cover-edge lasso path
  /// landed; verdicts are identical with the knob on or off, at every
  /// shard count, but counterexample TEXT may differ (the graphs find
  /// different — equally valid — witnesses).
  bool prune_coverability = true;
  /// Ample-set partial-order reduction over internal services (the
  /// OTHER structural VERIFAS optimization; multiplies with, not
  /// against, the antichain pruning above). At a symbolic state with no
  /// active child, a statically eligible service — insert-only
  /// footprint (model/independence.h), never observed by the property,
  /// X-free task skeletons — whose pre- AND post-condition hold at the
  /// current configuration (so the identity stutter step is among its
  /// successors) becomes the ample set, and the explorer expands only
  /// its successors as long as every one of them lands on a fresh node
  /// (the C3 discharge; see docs/ARCHITECTURE.md "Partial-order
  /// reduction"). Verdicts are identical with the knob on or off, on
  /// every family and at every shard count — the sharded build keeps
  /// node identity because the ample choice is a pure function of the
  /// state — but counter counts (cov_nodes, cov_edges, ...) shrink.
  bool por = true;
  /// Property-directed cone-of-influence slicing (analysis/slice.h):
  /// after validation and static analysis, drop services that can never
  /// fire, artifact relations no kept service retrieves from, and
  /// variables outside the property's cone before the product VASS is
  /// built. Verdicts are identical with the knob on or off, on every
  /// family and at every shard count (differential-gated like POR), but
  /// counter dimensions and node counts shrink on sliceable specs.
  /// Counterexample TEXT may omit sliced variables.
  bool slice = true;
  /// Werror-style escalation for the static analyzer: any diagnostic
  /// (dead service, unreachable service, write-never-read variable,
  /// unread relation, vacuous property atom) aborts verification
  /// instead of being reported in VerifyResult::diagnostics.
  bool strict_analysis = false;
};

/// A symbolic configuration of one task: equality component + cell.
/// The cell is empty (size 0) in no-arithmetic mode.
struct SymbolicConfig {
  PartialIsoType iso;
  Cell cell;
};

/// Per-task precomputation shared by the verifier.
class TaskContext {
 public:
  TaskContext(const ArtifactSystem* system, const HltlProperty* property,
              TaskId task, const VerifierOptions& options, const Hcd* hcd);

  const ArtifactSystem& system() const { return *system_; }
  const Task& task() const { return system_->task(task_); }
  TaskId task_id() const { return task_; }
  int nav_depth() const { return nav_depth_; }
  bool arithmetic() const { return basis_ != nullptr; }
  const PolyBasis* basis() const { return basis_; }
  size_t max_branches() const { return options_->max_branches; }
  const VerifierOptions& options() const { return *options_; }

  const std::vector<CondPtr>& eq_atoms() const { return eq_atoms_; }
  const std::set<int>& input_vars() const { return input_vars_; }
  /// Union of every relation's tuple variables (null-check/atom
  /// collection granularity).
  const std::set<int>& set_vars() const { return set_vars_; }
  /// Number of artifact relations S_T,1 … S_T,k of this task.
  int num_set_relations() const {
    return static_cast<int>(rel_vars_.size());
  }
  /// Tuple variables s̄_T,rel of one relation.
  const std::set<int>& rel_vars(int rel) const { return rel_vars_[rel]; }
  /// Basis polynomials over numeric input variables (preserved across
  /// internal transitions).
  const std::vector<int>& preserved_polys() const { return preserved_polys_; }

  /// Linear equalities implied by the equality component: numeric
  /// variables in one class are equal; const tags fix values. Used to
  /// couple the cell's satisfiability checks with the iso type.
  LinearSystem NumericEqualities(const PartialIsoType& iso) const;

  /// Two-valued-when-decided evaluation over both components.
  Truth EvalSym(const Condition& cond, const SymbolicConfig& s) const;

  /// Canonical TS-type of relation `rel`: projection of the iso type
  /// onto x̄_in ∪ s̄_T,rel (Section 4.1), normalized. The product
  /// interns it into a counter dimension id in relation `rel`'s
  /// dimension group.
  PartialIsoType TsType(const PartialIsoType& iso, int rel = 0) const;

  /// String form of TsType — printing/debug only; the hot paths intern
  /// TsType through the TypePool instead.
  std::string TsSignature(const PartialIsoType& iso, int rel = 0) const;

  /// Input-bound test for relation `rel` (Section 4.1): every non-null
  /// variable of s̄_T,rel is forced equal to an input-anchored element.
  bool TsInputBound(const PartialIsoType& iso, int rel = 0) const;

  /// Fresh task configuration at opening time: inputs constrained by
  /// `input` (already over this task's scope), all other ID variables
  /// null, numeric variables 0 — in arithmetic mode the numeric-zero
  /// initialization is carried by the enumerated initial cells.
  PartialIsoType OpeningIso(const PartialIsoType& input) const;

  // --- partial-order reduction (VerifierOptions::por) ---------------------
  /// Whether internal service `svc` is statically ample-eligible: every
  /// skeleton of the task's property nodes is X-free, no service
  /// proposition of those nodes names the service, and its footprint is
  /// insert-only (model/independence.h) — so firing it only grows the
  /// marking and it can anchor an ample set wherever its post-condition
  /// already holds (the dynamic half, checked at expansion time in
  /// task_vass.cc).
  bool PorServiceEligible(int svc) const {
    return por_service_ok_[static_cast<size_t>(svc)] != 0;
  }
  /// Whether `s` occurs as a kService proposition in any property node
  /// of this task — an ample stutter must not sit on an observed
  /// service letter, so states ENTERED by such a service expand fully.
  bool PorServiceIsProp(const ServiceRef& s) const;

 private:
  void CollectAtoms();
  void ComputePor();

  const ArtifactSystem* system_;
  const HltlProperty* property_;
  TaskId task_;
  const VerifierOptions* options_;
  const PolyBasis* basis_;  // null in no-arithmetic mode
  int nav_depth_ = 2;
  std::vector<CondPtr> eq_atoms_;
  std::set<int> input_vars_;
  std::set<int> set_vars_;
  std::vector<std::set<int>> rel_vars_;
  std::vector<int> preserved_polys_;
  std::vector<char> por_service_ok_;
  std::vector<ServiceRef> por_service_props_;
};

/// Set-update bookkeeping of one successor on ONE artifact relation.
/// The retrieved tuple's canonical TS-type (meaningful iff `retrieves`)
/// varies per successor; the inserted tuple's TS-type is the per-
/// relation projection of the shared PRE-state, so the product
/// recomputes and interns it once per (service, relation) application
/// (TaskContext::TsType) instead of carrying a copy here.
struct SetOpEffect {
  int relation = 0;
  bool inserts = false;
  bool insert_input_bound = false;
  bool retrieves = false;
  PartialIsoType retrieve_ts;
  bool retrieve_input_bound = false;
};

/// One successor of an internal service application.
struct InternalSuccessor {
  SymbolicConfig next;
  /// One entry per relation the service updates, in ascending relation
  /// index order; empty for services without set updates.
  std::vector<SetOpEffect> set_ops;
};

/// Enumerates the symbolic successors of `cur` under internal service
/// `svc` (whose pre-condition must already hold in `cur`). All atoms of
/// A_T are decided in each result; `truncated` is set if the branch
/// budget was exhausted.
std::vector<InternalSuccessor> EnumerateInternal(const TaskContext& ctx,
                                                 const SymbolicConfig& cur,
                                                 const InternalService& svc,
                                                 bool* truncated);

/// Enumerates the fully-decided opening configurations of a task given
/// a (partial) input type/cell — the τ_0 states of Definition 17.
std::vector<SymbolicConfig> EnumerateOpening(const TaskContext& ctx,
                                             const PartialIsoType& input_iso,
                                             const Cell& input_cell,
                                             bool* truncated);

/// The input type a child receives when opened from `parent_state`:
/// projection onto the passed variables, renamed into the child scope,
/// clipped to the child's navigation depth.
PartialIsoType ChildInputIso(const TaskContext& parent_ctx,
                             const TaskContext& child_ctx,
                             const SymbolicConfig& parent_state);

/// The child's input cell: signs of the child's basis polynomials over
/// its input variables, read off the parent's cell through the variable
/// renaming (the HCD guarantees the renamed polynomials are in the
/// parent's basis).
Cell ChildInputCell(const TaskContext& parent_ctx,
                    const TaskContext& child_ctx,
                    const SymbolicConfig& parent_state);

/// Applies a child's return to the parent state: null ID targets take
/// the child's returned values, non-null ID targets keep theirs,
/// numeric targets are overwritten; the child's output constraints on
/// shared variables are conjoined. Returns every fully-decided parent
/// successor (the overwritten numerics force re-enumeration of cell
/// signs in arithmetic mode).
std::vector<SymbolicConfig> ApplyChildReturn(
    const TaskContext& parent_ctx, const TaskContext& child_ctx,
    const SymbolicConfig& parent_state, const PartialIsoType& child_out_iso,
    const Cell& child_out_cell, bool* truncated);

}  // namespace has

#endif  // HAS_CORE_SUCCESSOR_H_
