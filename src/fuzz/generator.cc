#include "fuzz/generator.h"

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "hltl/hltl.h"
#include "model/artifact_system.h"
#include "model/validate.h"
#include "spec/parser.h"
#include "spec/printer.h"

namespace has {

namespace {

/// Deterministic draws from the engine's standardized raw output (the
/// std::uniform_* distributions are implementation-defined sequences;
/// mt19937_64's output is not, so seeds replay across toolchains).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform int in [lo, hi] (inclusive; lo <= hi).
  int Int(int lo, int hi) {
    return lo + static_cast<int>(engine_() %
                                 static_cast<uint64_t>(hi - lo + 1));
  }
  bool Chance(double p) {
    return static_cast<double>(engine_() >> 11) *
               (1.0 / 9007199254740992.0) <
           p;
  }
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(Int(0, static_cast<int>(v.size()) - 1))];
  }
  /// A random non-empty subset of `v`, in the original order.
  std::vector<int> Subset(const std::vector<int>& v, double keep) {
    std::vector<int> out;
    for (int x : v) {
      if (Chance(keep)) out.push_back(x);
    }
    if (out.empty() && !v.empty()) out.push_back(Pick(v));
    return out;
  }

 private:
  std::mt19937_64 engine_;
};

/// Variables available to a condition, split by sort. Conditions over a
/// restricted scope (the global pre over root inputs) pass the
/// restricted lists with the full VarScope untouched.
struct CondVars {
  std::vector<int> ids;
  std::vector<int> nums;
};

CondPtr RandomAtom(Rng& rng, const DatabaseSchema& schema,
                   const CondVars& vars, bool allow_arith, bool* used_arith) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    switch (rng.Int(0, 6)) {
      case 0:
        if (vars.ids.empty()) break;
        return Condition::IsNull(rng.Pick(vars.ids));
      case 1:
        if (vars.ids.empty()) break;
        return Condition::Not(Condition::IsNull(rng.Pick(vars.ids)));
      case 2: {
        if (vars.ids.size() < 2) break;
        int a = rng.Pick(vars.ids);
        int b = rng.Pick(vars.ids);
        if (a == b) break;
        return Condition::VarEq(a, b);
      }
      case 3:
        if (vars.nums.empty()) break;
        return Condition::Eq(Term::Var(rng.Pick(vars.nums)),
                             Term::Const(Rational(rng.Int(0, 4))));
      case 4: {
        if (vars.nums.size() < 2) break;
        int a = rng.Pick(vars.nums);
        int b = rng.Pick(vars.nums);
        if (a == b) break;
        return Condition::VarEq(a, b);
      }
      case 5: {
        if (!allow_arith || vars.nums.empty()) break;
        LinearExpr expr;
        int terms = rng.Int(1, vars.nums.size() >= 2 ? 2 : 1);
        std::vector<int> used;
        for (int i = 0; i < terms; ++i) {
          int v = rng.Pick(vars.nums);
          if (std::find(used.begin(), used.end(), v) != used.end()) continue;
          used.push_back(v);
          int coef = rng.Int(1, 3) * (rng.Chance(0.5) ? 1 : -1);
          expr.AddTerm(v, Rational(coef));
        }
        expr.AddConstant(Rational(rng.Int(-4, 4)));
        Relop op = rng.Chance(0.5) ? Relop::kLe
                                   : (rng.Chance(0.5) ? Relop::kLt
                                                      : Relop::kEq);
        *used_arith = true;
        return Condition::Arith(LinearConstraint{std::move(expr), op});
      }
      case 6: {
        if (vars.ids.empty() || schema.num_relations() == 0) break;
        // Any relation works: ID/FK attributes take ID variables,
        // numeric attributes need a numeric variable in scope.
        std::vector<int> candidates;
        for (RelationId r = 0; r < schema.num_relations(); ++r) {
          if (schema.relation(r).NumericAttrs().empty() ||
              !vars.nums.empty()) {
            candidates.push_back(r);
          }
        }
        if (candidates.empty()) break;
        const Relation& rel = schema.relation(rng.Pick(candidates));
        std::vector<int> args;
        for (int a = 0; a < rel.arity(); ++a) {
          args.push_back(rel.attr(a).kind == AttrKind::kNumeric
                             ? rng.Pick(vars.nums)
                             : rng.Pick(vars.ids));
        }
        return Condition::Rel(rel.id(), std::move(args));
      }
    }
  }
  return Condition::True();
}

CondPtr RandomCondition(Rng& rng, const DatabaseSchema& schema,
                        const CondVars& vars, const FuzzGenOptions& o,
                        bool* used_arith) {
  int atoms = rng.Int(1, std::max(1, o.max_atoms));
  CondPtr acc =
      RandomAtom(rng, schema, vars, o.allow_arithmetic, used_arith);
  for (int i = 1; i < atoms; ++i) {
    CondPtr atom =
        RandomAtom(rng, schema, vars, o.allow_arithmetic, used_arith);
    if (rng.Chance(0.2)) atom = Condition::Not(std::move(atom));
    acc = rng.Chance(0.5) ? Condition::And(std::move(acc), std::move(atom))
                          : Condition::Or(std::move(acc), std::move(atom));
  }
  return acc;
}

CondVars AllVars(const Task& t) {
  return CondVars{t.vars().IdVars(), t.vars().NumericVars()};
}

void GenSchema(Rng& rng, const FuzzGenOptions& o, DatabaseSchema* schema) {
  int n = rng.Int(1, std::max(1, o.max_db_relations));
  for (int i = 0; i < n; ++i) {
    RelationId r = schema->AddRelation(StrCat("R", i));
    int nums = rng.Int(0, 2);
    for (int a = 0; a < nums; ++a) {
      schema->relation(r).AddNumericAttribute(StrCat("a", a));
    }
    // Foreign keys point at earlier relations only, keeping the FK
    // graph acyclic (the cheapest class of Tables 1-2; cyclic schemas
    // are a future fuzzing axis).
    if (i > 0 && rng.Chance(0.4)) {
      schema->relation(r).AddForeignKey("fk", rng.Int(0, i - 1));
    }
  }
}

void GenTaskBody(Rng& rng, const FuzzGenOptions& o, ArtifactSystem* system,
                 TaskId id, bool* used_arith) {
  Task& t = system->task(id);
  int ids = rng.Int(1, std::max(1, o.max_id_vars));
  for (int v = 0; v < ids; ++v) t.vars().AddVar(StrCat("x", v), VarSort::kId);
  int nums = rng.Int(0, std::max(0, o.max_num_vars));
  for (int v = 0; v < nums; ++v) {
    t.vars().AddVar(StrCat("n", v), VarSort::kNumeric);
  }

  // Artifact relations: each over a distinct non-empty ID-var tuple.
  std::vector<int> id_vars = t.vars().IdVars();
  int sets = rng.Int(0, std::max(0, o.max_set_relations));
  for (int s = 0; s < sets; ++s) {
    std::vector<int> tuple = rng.Subset(id_vars, 0.6);
    t.AddSetRelation(s == 0 ? std::string(kDefaultSetName) : StrCat("P", s),
                     std::move(tuple));
  }

  if (t.is_root()) {
    // Root inputs receive the external valuation; the global pre may
    // only mention them.
    std::vector<int> all;
    for (int v = 0; v < t.vars().size(); ++v) all.push_back(v);
    for (int v : rng.Subset(all, 0.5)) t.AddInput(v, v);
    if (rng.Chance(0.4)) {
      CondVars inputs;
      for (int v : t.InputVars()) {
        (t.vars().var(v).sort == VarSort::kId ? inputs.ids : inputs.nums)
            .push_back(v);
      }
      system->SetGlobalPre(RandomCondition(rng, system->schema(), inputs, o,
                                           used_arith));
    }
  } else {
    Task& p = system->task(t.parent());
    // f_in: sort-preserving 1-1 wiring from distinct parent variables.
    std::vector<int> parent_ids = p.vars().IdVars();
    std::vector<int> parent_nums = p.vars().NumericVars();
    for (int v = 0; v < t.vars().size(); ++v) {
      std::vector<int>& pool =
          t.vars().var(v).sort == VarSort::kId ? parent_ids : parent_nums;
      if (pool.empty() || !rng.Chance(0.45)) continue;
      int slot = rng.Int(0, static_cast<int>(pool.size()) - 1);
      t.AddInput(v, pool[static_cast<size_t>(slot)]);
      pool.erase(pool.begin() + slot);
    }
    // f_out: distinct own sources to distinct parent targets outside
    // the parent's own inputs (restriction 3).
    std::vector<int> parent_inputs = p.InputVars();
    std::vector<char> own_used(static_cast<size_t>(t.vars().size()), 0);
    std::vector<char> parent_used(static_cast<size_t>(p.vars().size()), 0);
    for (int pv : parent_inputs) parent_used[static_cast<size_t>(pv)] = 1;
    int outputs = rng.Int(0, 2);
    for (int i = 0; i < outputs; ++i) {
      std::vector<std::pair<int, int>> pairs;
      for (int own = 0; own < t.vars().size(); ++own) {
        if (own_used[static_cast<size_t>(own)]) continue;
        for (int pv = 0; pv < p.vars().size(); ++pv) {
          if (parent_used[static_cast<size_t>(pv)]) continue;
          if (p.vars().var(pv).sort != t.vars().var(own).sort) continue;
          pairs.emplace_back(pv, own);
        }
      }
      if (pairs.empty()) break;
      auto [pv, own] = rng.Pick(pairs);
      t.AddOutput(pv, own);
      own_used[static_cast<size_t>(own)] = 1;
      parent_used[static_cast<size_t>(pv)] = 1;
    }
    t.SetOpeningPre(rng.Chance(0.75)
                        ? RandomCondition(rng, system->schema(), AllVars(p),
                                          o, used_arith)
                        : Condition::True());
    t.SetClosingPre(RandomCondition(rng, system->schema(), AllVars(t), o,
                                    used_arith));
  }

  int services = rng.Int(1, std::max(1, o.max_services));
  for (int s = 0; s < services; ++s) {
    InternalService svc;
    svc.name = StrCat("s", s);
    svc.pre = rng.Chance(0.15)
                  ? Condition::True()
                  : RandomCondition(rng, system->schema(), AllVars(t), o,
                                    used_arith);
    svc.post = rng.Chance(0.15)
                   ? Condition::True()
                   : RandomCondition(rng, system->schema(), AllVars(t), o,
                                     used_arith);
    for (int r = 0; r < t.num_set_relations(); ++r) {
      switch (rng.Int(0, 3)) {
        case 0:
          svc.MarkInsert(r);
          break;
        case 1:
          svc.MarkRetrieve(r);
          break;
        default:
          break;
      }
    }
    t.AddInternalService(std::move(svc));
  }
}

/// Builds one property node for `task` (appending child nodes first
/// encountered, like the parser) and returns its index.
int BuildPropertyNode(Rng& rng, const ArtifactSystem& system, TaskId task,
                      int depth, const FuzzGenOptions& o,
                      HltlProperty* property, bool* used_arith) {
  HltlNode placeholder;
  placeholder.task = task;
  placeholder.skeleton = LtlFormula::True();
  int index = property->AddNode(std::move(placeholder));

  const Task& t = system.task(task);
  std::vector<HltlProp> props;
  std::vector<LtlPtr> leaves;
  int n = rng.Int(1, std::max(1, o.max_props));
  for (int i = 0; i < n; ++i) {
    int kind = rng.Int(0, 9);
    if (kind <= 4 || t.children().empty()) {
      if (kind >= 3 && !t.services().empty()) {
        int s = rng.Int(0, static_cast<int>(t.services().size()) - 1);
        props.push_back(HltlProp::Service(ServiceRef::Internal(task, s)));
      } else {
        // 1-2 atoms keeps property conditions lighter than service
        // conditions (they multiply into every symbolic atom family).
        FuzzGenOptions small = o;
        small.max_atoms = 2;
        props.push_back(HltlProp::Cond(RandomCondition(
            rng, system.schema(), AllVars(t), small, used_arith)));
      }
    } else if (kind <= 7 || depth == 0) {
      TaskId child = rng.Pick(t.children());
      props.push_back(HltlProp::Service(rng.Chance(0.5)
                                            ? ServiceRef::Opening(child)
                                            : ServiceRef::Closing(child)));
    } else {
      TaskId child = rng.Pick(t.children());
      int node = BuildPropertyNode(rng, system, child, depth - 1, o,
                                   property, used_arith);
      props.push_back(HltlProp::Child(node));
    }
    leaves.push_back(
        LtlFormula::Prop(static_cast<int>(props.size()) - 1));
  }

  LtlPtr f = leaves[0];
  for (size_t i = 1; i < leaves.size(); ++i) {
    switch (rng.Int(0, 3)) {
      case 0:
        f = LtlFormula::And(std::move(f), leaves[i]);
        break;
      case 1:
        f = LtlFormula::Or(std::move(f), leaves[i]);
        break;
      case 2:
        f = LtlFormula::Until(std::move(f), leaves[i]);
        break;
      default:
        f = LtlFormula::Implies(std::move(f), leaves[i]);
        break;
    }
  }
  switch (rng.Int(0, 5)) {
    case 0:
    case 1:
      f = LtlFormula::Always(std::move(f));
      break;
    case 2:
      f = LtlFormula::Eventually(std::move(f));
      break;
    case 3:
      f = LtlFormula::Not(std::move(f));
      break;
    case 4:
      if (o.allow_next && rng.Chance(0.3)) {
        f = LtlFormula::Next(std::move(f));
      }
      break;
    default:
      break;
  }
  property->mutable_node(index).skeleton = std::move(f);
  property->mutable_node(index).props = std::move(props);
  return index;
}

}  // namespace

StatusOr<GeneratedSpec> GenerateSpec(uint64_t seed,
                                     const FuzzGenOptions& options) {
  Rng rng(seed);
  ArtifactSystem system;
  bool used_arith = false;

  GenSchema(rng, options, &system.schema());

  int tasks = options.allow_hierarchy
                  ? rng.Int(1, std::max(1, options.max_tasks))
                  : 1;
  for (int i = 0; i < tasks; ++i) {
    TaskId parent = i == 0 ? kNoTask : rng.Int(0, i - 1);
    system.AddTask(StrCat("T", i), parent);
  }
  for (TaskId t = 0; t < system.num_tasks(); ++t) {
    GenTaskBody(rng, options, &system, t, &used_arith);
  }

  std::vector<std::pair<std::string, HltlProperty>> properties;
  int num_props = rng.Int(1, std::max(1, options.max_properties));
  for (int i = 0; i < num_props; ++i) {
    HltlProperty property;
    BuildPropertyNode(rng, system, system.root(), /*depth=*/1, options,
                      &property, &used_arith);
    properties.emplace_back(StrCat("p", i), std::move(property));
  }

  // Render, re-parse, re-print: the second print is the canonical
  // fixpoint (the parser materializes one proposition per occurrence,
  // so a first print whose skeleton shares props converges after one
  // iteration). Any failure here is a generator or printer bug.
  std::string first = PrintSpecSource(system, properties);
  StatusOr<ParsedSpec> parsed = ParseSpec(first);
  if (!parsed.ok()) {
    return Status::Internal(StrCat("seed ", seed,
                                   ": generated spec does not parse: ",
                                   parsed.status().message(),
                                   "\n--- source ---\n", first));
  }
  Status valid = ValidateSystem(parsed->system, &parsed->locations);
  if (!valid.ok()) {
    return Status::Internal(StrCat("seed ", seed,
                                   ": generated spec does not validate: ",
                                   valid.message(), "\n--- source ---\n",
                                   first));
  }
  for (const auto& [name, property] : parsed->properties) {
    Status pv = property.Validate(parsed->system);
    if (!pv.ok()) {
      return Status::Internal(StrCat("seed ", seed, ": property ", name,
                                     " does not validate: ", pv.message(),
                                     "\n--- source ---\n", first));
    }
  }
  std::string second = PrintSpecSource(parsed->system, parsed->properties);
  StatusOr<ParsedSpec> reparsed = ParseSpec(second);
  if (!reparsed.ok()) {
    return Status::Internal(StrCat("seed ", seed,
                                   ": canonical spec does not re-parse: ",
                                   reparsed.status().message(),
                                   "\n--- source ---\n", second));
  }
  std::string third = PrintSpecSource(reparsed->system, reparsed->properties);
  if (third != second) {
    return Status::Internal(StrCat("seed ", seed,
                                   ": print/parse is not a fixpoint\n"
                                   "--- second ---\n",
                                   second, "--- third ---\n", third));
  }

  GeneratedSpec out;
  out.source = std::move(second);
  out.num_tasks = parsed->system.num_tasks();
  for (TaskId t = 0; t < parsed->system.num_tasks(); ++t) {
    out.num_services +=
        static_cast<int>(parsed->system.task(t).services().size());
  }
  out.num_properties = static_cast<int>(parsed->properties.size());
  out.uses_arithmetic = used_arith;
  return out;
}

}  // namespace has
