// Delta-debugging shrinker for `.has` specs. Given a spec and a
// predicate (for the fuzz harness: "the differential disagreement still
// reproduces"), repeatedly applies structural reductions — drop a
// property, a leaf task, a service, an artifact relation, an unused
// database relation, replace a property proposition or any condition
// atom with true/false — keeping a candidate only when the reduced
// spec still parses, validates, AND satisfies the predicate. Runs to a
// fixpoint: the result admits no further accepted reduction, so
// re-shrinking a minimal case is a no-op.
//
// Every candidate is materialized through print -> parse before the
// predicate runs, so an accepted step is always a committable `.has`
// artifact and index remaps (service, set-relation, task, DB-relation
// ids) are exercised against the real parser on every step.
#ifndef HAS_FUZZ_SHRINK_H_
#define HAS_FUZZ_SHRINK_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "spec/parser.h"

namespace has {

struct ShrinkOptions {
  /// Cap on accepted reductions (a runaway-loop backstop; real cases
  /// converge in far fewer steps).
  int max_accepted = 256;
};

struct ShrinkStats {
  int tried = 0;     ///< candidates materialized and tested
  int accepted = 0;  ///< candidates that kept the predicate
};

/// Must be deterministic; receives a parsed-and-validated candidate.
using SpecPredicate = std::function<bool(const ParsedSpec&)>;

/// Called after every accepted step with the new spec and its source
/// (test hook: asserts the invariants hold at every step, not just at
/// the end).
using ShrinkObserver =
    std::function<void(const ParsedSpec&, const std::string&)>;

/// Shrinks `source` while `still_failing` holds. The input must parse,
/// validate, and satisfy the predicate (error otherwise). Returns the
/// minimal source reached (a parse -> print fixpoint of its model).
StatusOr<std::string> ShrinkSpec(const std::string& source,
                                 const SpecPredicate& still_failing,
                                 const ShrinkOptions& options = {},
                                 ShrinkStats* stats = nullptr,
                                 const ShrinkObserver& on_accept = nullptr);

}  // namespace has

#endif  // HAS_FUZZ_SHRINK_H_
