// Three-way differential driver for one (system, property) pair: the
// symbolic verifier across a configuration matrix (POR on/off × slice
// on/off × 1/2/4 shards — every knob advertised verdict-invariant),
// the concrete simulator (every simulated tree must pass CheckRunTree),
// and the bounded checker.
//
// The two bounded-checker legs are SOFT by default, because both are
// approximations by construction:
//
//  - HOLDS + a finite tree satisfying the negation (kSuspectWitness).
//    The engine's run set contains returning, ⊥-blocked and infinite
//    runs only — a configuration from which no service is enabled and
//    the task cannot close contributes NO run (a system whose root
//    deadlocks immediately has an EMPTY run set, and every property
//    holds vacuously). The simulator, by contrast, emits finite
//    prefixes and the bounded checker evaluates them with finite-word
//    LTL — so a prefix that only extends to deadlock can "witness" the
//    negation of a vacuously-true property. The report carries a
//    vacuity probe (V(false): HOLDS iff the run set is empty) so the
//    obviously-vacuous cases explain themselves; the rest may be a
//    genuine bug or a deadlock-prefix artifact and need a human (or
//    DiffOptions::strict_witness to escalate).
//
//  - VIOLATED + no concrete witness of the negation (kMissingWitness).
//    The randomized bounded search is incomplete.
//
// Exact engine-bug detection with no run-set caveat lives in
// fuzz/metamorphic.h (verdict-algebra relations).
#ifndef HAS_FUZZ_DIFFERENTIAL_H_
#define HAS_FUZZ_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/verifier.h"

namespace has {

struct DiffOptions {
  /// Symbolic matrix: {por} × {slice} × shard_counts when varied,
  /// default-only otherwise.
  bool vary_por = true;
  bool vary_slice = true;
  std::vector<int> shard_counts = {1, 2, 4};
  /// Coverability budget per query — deliberately smaller than the
  /// verifier default so adversarial random specs time out into
  /// kInconclusive (skipped, counted) instead of stalling the run.
  size_t max_cov_nodes = 1 << 12;

  /// Concrete side: databases tried, simulation/search attempts per
  /// database, base seed, and instance size.
  int concrete_databases = 2;
  int concrete_attempts = 60;
  uint64_t concrete_seed = 1;
  int tuples_per_relation = 3;

  /// Escalate VIOLATED-without-concrete-witness from a soft finding to
  /// a disagreement (off by default: the bounded search is incomplete).
  bool require_witness = false;
  /// Escalate HOLDS-with-finite-witness from a soft finding to a
  /// disagreement (off by default: finite-prefix evaluation cannot
  /// refute a verdict quantified over the engine's run set — see the
  /// header comment).
  bool strict_witness = false;
};

struct DiffReport {
  enum class Kind {
    /// Every symbolic config returned the same definite verdict and the
    /// concrete side is consistent with it.
    kAgreed,
    /// Some config exhausted a budget; verdict comparison skipped.
    kInconclusive,
    /// Definite verdicts differ across symbolic configs.
    kSymbolicMismatch,
    /// A simulated tree failed CheckRunTree (always a genuine bug: the
    /// simulator and the run-legality checker implement the same
    /// operational semantics).
    kConcreteMismatch,
    /// VIOLATED but the bounded search produced no concrete witness
    /// (soft: the search is incomplete).
    kMissingWitness,
    /// HOLDS but a finite tree satisfies the negation (soft: may be a
    /// deadlock-prefix artifact of the run-set semantics; `detail`
    /// includes the vacuity probe).
    kSuspectWitness,
  };

  Kind kind = Kind::kAgreed;
  /// The agreed symbolic verdict (meaningful unless kInconclusive or
  /// kSymbolicMismatch).
  Verdict verdict = Verdict::kInconclusive;
  bool witness_found = false;
  /// Per-config verdict table on mismatches; failure text otherwise.
  std::string detail;
};

const char* DiffKindName(DiffReport::Kind kind);

/// Runs one property through the full matrix. The system and property
/// MUST be validated first — Verify aborts the process on invalid
/// input, so the harness validates before calling this.
DiffReport RunDifferential(const ArtifactSystem& system,
                           const HltlProperty& property,
                           const DiffOptions& options = {});

/// Whether the report is a finding the harness must shrink and commit
/// (mismatches always; missing witness only under require_witness;
/// suspect witness only under strict_witness).
bool IsDisagreement(const DiffReport& report, const DiffOptions& options);

}  // namespace has

#endif  // HAS_FUZZ_DIFFERENTIAL_H_
