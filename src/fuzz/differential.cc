#include "fuzz/differential.h"

#include <utility>

#include "common/strings.h"
#include "data/generator.h"
#include "fuzz/metamorphic.h"
#include "runs/bounded_checker.h"
#include "runs/run_tree.h"
#include "runs/simulator.h"

namespace has {

namespace {

struct ConfigRun {
  std::string label;
  Verdict verdict;
};

std::string VerdictTable(const std::vector<ConfigRun>& runs) {
  std::string out;
  for (const ConfigRun& r : runs) {
    out += StrCat(r.label, ": ", VerdictName(r.verdict), "\n");
  }
  return out;
}

}  // namespace

const char* DiffKindName(DiffReport::Kind kind) {
  switch (kind) {
    case DiffReport::Kind::kAgreed:
      return "agreed";
    case DiffReport::Kind::kInconclusive:
      return "inconclusive";
    case DiffReport::Kind::kSymbolicMismatch:
      return "symbolic-mismatch";
    case DiffReport::Kind::kConcreteMismatch:
      return "concrete-mismatch";
    case DiffReport::Kind::kMissingWitness:
      return "missing-witness";
    case DiffReport::Kind::kSuspectWitness:
      return "suspect-witness";
  }
  return "?";
}

DiffReport RunDifferential(const ArtifactSystem& system,
                           const HltlProperty& property,
                           const DiffOptions& options) {
  DiffReport report;

  // --- symbolic matrix ------------------------------------------------------
  std::vector<ConfigRun> runs;
  bool any_inconclusive = false;
  std::vector<bool> por_values = options.vary_por
                                     ? std::vector<bool>{true, false}
                                     : std::vector<bool>{true};
  std::vector<bool> slice_values = options.vary_slice
                                       ? std::vector<bool>{true, false}
                                       : std::vector<bool>{true};
  for (bool por : por_values) {
    for (bool slice : slice_values) {
      for (int shards : options.shard_counts) {
        VerifierOptions vo;
        vo.por = por;
        vo.slice = slice;
        vo.num_shards = shards;
        vo.max_cov_nodes = options.max_cov_nodes;
        VerifyResult result = Verify(system, property, vo);
        runs.push_back(ConfigRun{StrCat("por=", por ? 1 : 0, " slice=",
                                        slice ? 1 : 0, " shards=", shards),
                                 result.verdict});
        if (result.verdict == Verdict::kInconclusive) any_inconclusive = true;
      }
    }
  }
  if (any_inconclusive) {
    report.kind = DiffReport::Kind::kInconclusive;
    report.detail = VerdictTable(runs);
    return report;
  }
  for (const ConfigRun& r : runs) {
    if (r.verdict != runs.front().verdict) {
      report.kind = DiffReport::Kind::kSymbolicMismatch;
      report.detail = VerdictTable(runs);
      return report;
    }
  }
  report.verdict = runs.front().verdict;

  // --- concrete side --------------------------------------------------------
  HltlProperty negated = property.Negated();
  for (int i = 0; i < options.concrete_databases; ++i) {
    GeneratorOptions gen;
    gen.tuples_per_relation = options.tuples_per_relation;
    gen.seed = options.concrete_seed + static_cast<uint64_t>(i) * 977;
    DatabaseInstance db = GenerateInstance(system.schema(), gen);

    SimulatorOptions sim;
    sim.seed = gen.seed;

    // Simulator self-consistency: everything it produces must be a
    // legal tree of local runs (a third semantics checking the second).
    for (int attempt = 0; attempt < 4; ++attempt) {
      sim.seed = sim.seed * 6364136223846793005ULL + 1442695040888963407ULL;
      std::optional<RunTree> tree = SimulateTree(system, db, sim);
      if (!tree.has_value()) continue;
      Status legal = CheckRunTree(system, db, *tree);
      if (!legal.ok()) {
        report.kind = DiffReport::Kind::kConcreteMismatch;
        report.detail =
            StrCat("simulated tree fails CheckRunTree (db seed ", gen.seed,
                   "): ", legal.message());
        return report;
      }
    }

    std::optional<RunTree> witness = FindTreeSatisfying(
        system, db, negated, options.concrete_attempts, sim);
    if (witness.has_value()) {
      report.witness_found = true;
      if (report.verdict == Verdict::kHolds) {
        // A finite-word witness against a HOLDS verdict: soft. Probe
        // vacuity (V(false) = HOLDS iff the run set is empty) so the
        // report explains the common deadlock-prefix case itself.
        VerifierOptions vo;
        vo.max_cov_nodes = options.max_cov_nodes;
        Verdict vacuous =
            Verify(system, ConstantProperty(system, false), vo).verdict;
        report.kind = DiffReport::Kind::kSuspectWitness;
        report.detail = StrCat(
            "symbolic verdict HOLDS but a finite tree satisfies the "
            "negated property (db seed ",
            gen.seed, "); vacuity probe V(false)=", VerdictName(vacuous),
            vacuous == Verdict::kHolds
                ? " (empty run set: the verdict is vacuous and the "
                  "finite tree is a deadlocked prefix, not a run)"
                : " (runs exist: deadlock-prefix artifact or a real "
                  "bug — inspect the witness)");
        return report;
      }
      break;  // a VIOLATED verdict is confirmed; stop searching
    }
  }

  if (report.verdict == Verdict::kViolated && !report.witness_found) {
    report.kind = DiffReport::Kind::kMissingWitness;
    report.detail =
        StrCat("symbolic verdict VIOLATED but no concrete witness in ",
               options.concrete_databases, " databases x ",
               options.concrete_attempts, " attempts");
    return report;
  }

  report.kind = DiffReport::Kind::kAgreed;
  return report;
}

bool IsDisagreement(const DiffReport& report, const DiffOptions& options) {
  switch (report.kind) {
    case DiffReport::Kind::kSymbolicMismatch:
    case DiffReport::Kind::kConcreteMismatch:
      return true;
    case DiffReport::Kind::kMissingWitness:
      return options.require_witness;
    case DiffReport::Kind::kSuspectWitness:
      return options.strict_witness;
    case DiffReport::Kind::kAgreed:
    case DiffReport::Kind::kInconclusive:
      return false;
  }
  return false;
}

}  // namespace has
