// Exact metamorphic relations over symbolic verdicts. HLTL-FO verdicts
// quantify universally over the system's run set, so — for ANY run set,
// including the empty one — the following algebra must hold:
//
//   (R1) double negation   V(¬¬φ) = V(φ)
//   (R2) vacuity           V(false) = HOLDS  ⇒  V(φ) = HOLDS for all φ
//                          V(false) = VIOLATED ⇒ never both V(φ) and
//                          V(¬φ) HOLDS (a run satisfies one of them)
//   (R3) conjunction       V(φ∧ψ) = HOLDS  ⇔  V(φ) = V(ψ) = HOLDS
//   (R4) disjunction       V(φ) = HOLDS or V(ψ) = HOLDS ⇒ V(φ∨ψ) = HOLDS
//
// (R4 is one-directional: a disjunction can hold while both disjuncts
// are violated — by different runs.) These relations are independent of
// the run-set semantics and of every engine knob, so a violation is
// always a genuine engine bug — unlike concrete-witness findings, which
// the run-set conventions make soft (see fuzz/differential.h).
//
// The synthetic `true` and `false` properties take part in the pairing,
// which folds the identity laws (φ∧true ≡ φ, φ∧false ≡ false, ...) into
// R3/R4 for free.
#ifndef HAS_FUZZ_METAMORPHIC_H_
#define HAS_FUZZ_METAMORPHIC_H_

#include <string>
#include <utility>
#include <vector>

#include "core/verifier.h"

namespace has {

/// A combined property: the root skeletons joined by ∧ or ∨, the node
/// tables merged (child-formula and proposition indices remapped).
/// Both inputs must be validated against the same system.
HltlProperty CombineProperties(const HltlProperty& a, const HltlProperty& b,
                               bool conjunction);

/// The constant property [c]_root with no propositions.
HltlProperty ConstantProperty(const ArtifactSystem& system, bool value);

struct AlgebraFinding {
  std::string relation;  ///< "R1".."R4"
  std::string detail;    ///< verdicts involved, human-readable
};

struct AlgebraReport {
  std::vector<AlgebraFinding> findings;
  int relations_checked = 0;
  /// Relations skipped because some verdict was INCONCLUSIVE.
  int relations_skipped = 0;

  bool ok() const { return findings.empty(); }
};

/// Checks R1-R4 over all given properties (plus the synthetic true and
/// false properties). Verdict queries use `options` as-is; relations
/// involving an INCONCLUSIVE verdict are skipped, not failed.
AlgebraReport CheckPropertyAlgebra(
    const ArtifactSystem& system,
    const std::vector<std::pair<std::string, const HltlProperty*>>& properties,
    const VerifierOptions& options);

}  // namespace has

#endif  // HAS_FUZZ_METAMORPHIC_H_
