#include "fuzz/metamorphic.h"

#include <utility>

#include "common/strings.h"

namespace has {

namespace {

/// Rebuilds a skeleton with every proposition id shifted by `offset`.
LtlPtr ShiftProps(const LtlPtr& f, int offset) {
  if (offset == 0) return f;
  switch (f->kind()) {
    case LtlKind::kTrue:
    case LtlKind::kFalse:
      return f;
    case LtlKind::kProp:
      return LtlFormula::Prop(f->prop() + offset);
    case LtlKind::kNot:
      return LtlFormula::Not(ShiftProps(f->left(), offset));
    case LtlKind::kNext:
      return LtlFormula::Next(ShiftProps(f->left(), offset));
    case LtlKind::kAnd:
      return LtlFormula::And(ShiftProps(f->left(), offset),
                             ShiftProps(f->right(), offset));
    case LtlKind::kOr:
      return LtlFormula::Or(ShiftProps(f->left(), offset),
                            ShiftProps(f->right(), offset));
    case LtlKind::kUntil:
      return LtlFormula::Until(ShiftProps(f->left(), offset),
                               ShiftProps(f->right(), offset));
  }
  return f;
}

/// Copies `prop` remapping its child-node reference through `node_map`.
HltlProp RemapProp(const HltlProp& prop, const std::vector<int>& node_map) {
  HltlProp out = prop;
  if (out.kind == HltlProp::Kind::kChildFormula) {
    out.child_node = node_map[static_cast<size_t>(out.child_node)];
  }
  return out;
}

/// Appends the non-root nodes of `src` to `out` and returns the
/// old-index -> new-index map (entry 0 maps to 0: root merges into the
/// combined root).
std::vector<int> AppendNonRootNodes(const HltlProperty& src,
                                    HltlProperty* out) {
  std::vector<int> node_map(static_cast<size_t>(src.num_nodes()), 0);
  // Two passes: indices are assigned before prop references are
  // remapped, so forward references between non-root nodes stay valid.
  for (int i = 1; i < src.num_nodes(); ++i) {
    HltlNode copy = src.node(i);
    node_map[static_cast<size_t>(i)] = out->AddNode(std::move(copy));
  }
  for (int i = 1; i < src.num_nodes(); ++i) {
    HltlNode& node = out->mutable_node(node_map[static_cast<size_t>(i)]);
    for (HltlProp& p : node.props) p = RemapProp(p, node_map);
  }
  return node_map;
}

}  // namespace

HltlProperty CombineProperties(const HltlProperty& a, const HltlProperty& b,
                               bool conjunction) {
  HltlProperty out;
  // Reserve the combined root; patched below (mirrors the parser's
  // placeholder idiom — node 0 must be first).
  HltlNode root;
  root.task = a.node(a.root_node()).task;
  root.skeleton = LtlFormula::True();
  out.AddNode(root);

  std::vector<int> a_map = AppendNonRootNodes(a, &out);
  std::vector<int> b_map = AppendNonRootNodes(b, &out);

  HltlNode& combined = out.mutable_node(0);
  const HltlNode& a_root = a.node(a.root_node());
  const HltlNode& b_root = b.node(b.root_node());
  for (const HltlProp& p : a_root.props) {
    combined.props.push_back(RemapProp(p, a_map));
  }
  for (const HltlProp& p : b_root.props) {
    combined.props.push_back(RemapProp(p, b_map));
  }
  LtlPtr left = a_root.skeleton;
  LtlPtr right =
      ShiftProps(b_root.skeleton, static_cast<int>(a_root.props.size()));
  combined.skeleton = conjunction ? LtlFormula::And(left, right)
                                  : LtlFormula::Or(left, right);
  return out;
}

HltlProperty ConstantProperty(const ArtifactSystem& system, bool value) {
  HltlProperty out;
  HltlNode root;
  root.task = system.root();
  root.skeleton = value ? LtlFormula::True() : LtlFormula::False();
  out.AddNode(std::move(root));
  return out;
}

AlgebraReport CheckPropertyAlgebra(
    const ArtifactSystem& system,
    const std::vector<std::pair<std::string, const HltlProperty*>>& properties,
    const VerifierOptions& options) {
  AlgebraReport report;
  auto verdict_of = [&](const HltlProperty& p) {
    return Verify(system, p, options).verdict;
  };

  // The work list: named properties plus the two constants (their
  // pairings cover the ∧/∨ identity and annihilator laws).
  struct Entry {
    std::string name;
    const HltlProperty* property = nullptr;
    HltlProperty owned;  ///< backing storage for the constants
    Verdict verdict = Verdict::kInconclusive;
  };
  std::vector<Entry> entries;
  for (const auto& [name, p] : properties) {
    Entry e;
    e.name = name;
    e.property = p;
    entries.push_back(std::move(e));
  }
  for (bool value : {true, false}) {
    Entry e;
    e.name = value ? "<true>" : "<false>";
    e.owned = ConstantProperty(system, value);
    entries.push_back(std::move(e));
  }
  for (Entry& e : entries) {
    if (e.property == nullptr) e.property = &e.owned;
    e.verdict = verdict_of(*e.property);
  }
  Verdict v_false = entries.back().verdict;  // the <false> entry

  auto skip = [&](std::initializer_list<Verdict> vs) {
    for (Verdict v : vs) {
      if (v == Verdict::kInconclusive) {
        ++report.relations_skipped;
        return true;
      }
    }
    ++report.relations_checked;
    return false;
  };
  auto fail = [&](const char* relation, std::string detail) {
    report.findings.push_back(AlgebraFinding{relation, std::move(detail)});
  };

  // R1 + R2 per property.
  for (const Entry& e : entries) {
    HltlProperty negated = e.property->Negated();
    Verdict v_neg = verdict_of(negated);
    Verdict v_negneg = verdict_of(negated.Negated());
    if (!skip({e.verdict, v_negneg}) && v_negneg != e.verdict) {
      fail("R1", StrCat(e.name, ": V(phi)=", VerdictName(e.verdict),
                        " but V(!!phi)=", VerdictName(v_negneg)));
    }
    if (!skip({e.verdict, v_neg, v_false})) {
      if (v_false == Verdict::kHolds &&
          (e.verdict != Verdict::kHolds || v_neg != Verdict::kHolds)) {
        fail("R2", StrCat(e.name, ": V(false)=HOLDS (empty run set) but V(",
                          "phi)=", VerdictName(e.verdict),
                          " V(!phi)=", VerdictName(v_neg)));
      }
      if (v_false == Verdict::kViolated && e.verdict == Verdict::kHolds &&
          v_neg == Verdict::kHolds) {
        fail("R2", StrCat(e.name,
                          ": runs exist (V(false)=VIOLATED) yet both V(phi) "
                          "and V(!phi) are HOLDS"));
      }
    }
  }

  // R3 + R4 per unordered pair.
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const Entry& a = entries[i];
      const Entry& b = entries[j];
      HltlProperty conj = CombineProperties(*a.property, *b.property, true);
      Verdict v_and = verdict_of(conj);
      if (!skip({a.verdict, b.verdict, v_and})) {
        bool both_hold = a.verdict == Verdict::kHolds &&
                         b.verdict == Verdict::kHolds;
        if ((v_and == Verdict::kHolds) != both_hold) {
          fail("R3",
               StrCat(a.name, " & ", b.name, ": V=", VerdictName(a.verdict),
                      ",", VerdictName(b.verdict),
                      " but V(and)=", VerdictName(v_and)));
        }
      }
      HltlProperty disj = CombineProperties(*a.property, *b.property, false);
      Verdict v_or = verdict_of(disj);
      if (!skip({a.verdict, b.verdict, v_or})) {
        if ((a.verdict == Verdict::kHolds || b.verdict == Verdict::kHolds) &&
            v_or != Verdict::kHolds) {
          fail("R4",
               StrCat(a.name, " | ", b.name, ": V=", VerdictName(a.verdict),
                      ",", VerdictName(b.verdict),
                      " but V(or)=", VerdictName(v_or)));
        }
      }
    }
  }
  return report;
}

}  // namespace has
