// Seeded generation of random well-typed artifact systems with
// HLTL-FO properties, for the differential fuzzing harness
// (tools/has_fuzz). Specs are built model-first — hierarchy, schema,
// artifact relations, service insert/retrieve mixes, conditions inside
// the FM-solvable linear fragment, and property skeletons — then
// rendered through the parseable printer (spec/printer.h), re-parsed,
// and re-printed, so the returned source is the print ∘ parse fixpoint
// and every construction respects the validator (model/validate.h) by
// design: sort-preserving 1-1 input/output wiring, restriction-3
// disjointness, root closing false, global pre over root inputs only.
#ifndef HAS_FUZZ_GENERATOR_H_
#define HAS_FUZZ_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace has {

struct FuzzGenOptions {
  /// Tasks in the hierarchy (>= 1; parent chosen among earlier tasks).
  int max_tasks = 3;
  /// Database relations (>= 1); each has 0-2 numeric attributes and an
  /// optional acyclic foreign key to an earlier relation.
  int max_db_relations = 2;
  /// Per-task variable counts (at least one ID variable is always
  /// declared so artifact relations and relation atoms stay possible).
  int max_id_vars = 3;
  int max_num_vars = 2;
  /// Artifact relations per task (each over distinct ID variables).
  int max_set_relations = 2;
  /// Internal services per task (>= 1).
  int max_services = 3;
  /// Atoms per generated condition.
  int max_atoms = 3;
  /// Leaf propositions per property node.
  int max_props = 3;
  /// Properties per spec (>= 1).
  int max_properties = 2;
  /// Allow linear-arithmetic atoms (engages the cell machinery).
  bool allow_arithmetic = true;
  /// Allow more than one task.
  bool allow_hierarchy = true;
  /// Allow X in property skeletons (an X-bearing skeleton disables POR
  /// eligibility for that task, which is a legitimate configuration to
  /// fuzz but makes the POR differential trivial; kept rare).
  bool allow_next = true;
};

struct GeneratedSpec {
  /// Canonical parseable source (system block + properties): the
  /// fixpoint of print ∘ parse, verified internally.
  std::string source;
  int num_tasks = 0;
  int num_services = 0;
  int num_properties = 0;
  bool uses_arithmetic = false;
};

/// Deterministically generates one spec from `seed` (same seed + same
/// options = byte-identical source). The result parses, the system
/// validates, and every property validates against it; those checks
/// run internally and any failure returns an error carrying the
/// offending source — by construction that indicates a generator or
/// printer bug, which is exactly what the fuzz harness wants surfaced.
StatusOr<GeneratedSpec> GenerateSpec(uint64_t seed,
                                     const FuzzGenOptions& options = {});

}  // namespace has

#endif  // HAS_FUZZ_GENERATOR_H_
