#include "fuzz/shrink.h"

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "model/validate.h"
#include "spec/printer.h"

namespace has {

namespace {

/// The mutable form candidates are edited in; printed back to source
/// before any semantic check runs.
struct Model {
  ArtifactSystem system;
  std::vector<std::pair<std::string, HltlProperty>> properties;
};

Model ToModel(const ParsedSpec& spec) {
  return Model{spec.system, spec.properties};
}

/// Per-task copy filter for structural drops.
struct TaskFilter {
  int skip_service = -1;
  int skip_set = -1;
};

void CopyTaskBody(const Task& src, Task* dst, const TaskFilter& filter) {
  for (int v = 0; v < src.vars().size(); ++v) {
    dst->vars().AddVar(src.vars().var(v).name, src.vars().var(v).sort);
  }
  for (int r = 0; r < src.num_set_relations(); ++r) {
    if (r == filter.skip_set) continue;
    dst->AddSetRelation(src.set_relations()[static_cast<size_t>(r)].name,
                        src.set_relations()[static_cast<size_t>(r)].vars);
  }
  for (const auto& [own, parent] : src.fin()) dst->AddInput(own, parent);
  for (const auto& [parent, own] : src.fout()) dst->AddOutput(parent, own);
  for (size_t s = 0; s < src.services().size(); ++s) {
    if (static_cast<int>(s) == filter.skip_service) continue;
    InternalService svc = src.services()[s];
    if (filter.skip_set >= 0) {
      auto remap = [&filter](std::vector<int>* rels) {
        std::vector<int> out;
        for (int r : *rels) {
          if (r == filter.skip_set) continue;
          out.push_back(r > filter.skip_set ? r - 1 : r);
        }
        *rels = std::move(out);
      };
      remap(&svc.insert_rels);
      remap(&svc.retrieve_rels);
    }
    dst->AddInternalService(std::move(svc));
  }
  dst->SetOpeningPre(src.opening_pre());
  dst->SetClosingPre(src.closing_pre());
}

/// Clones the system applying `filter` to task `target` (every task
/// when target == kNoTask with a default filter — i.e. a plain copy).
ArtifactSystem CloneSystem(const ArtifactSystem& s, TaskId target,
                           const TaskFilter& filter) {
  ArtifactSystem out;
  out.schema() = s.schema();
  out.SetGlobalPre(s.global_pre());
  for (TaskId t = 0; t < s.num_tasks(); ++t) {
    const Task& ot = s.task(t);
    TaskId id = out.AddTask(ot.name(), ot.parent());
    CopyTaskBody(ot, &out.task(id), t == target ? filter : TaskFilter{});
  }
  return out;
}

std::optional<Model> DropProperty(const Model& m, size_t k) {
  if (m.properties.size() <= 1) return std::nullopt;
  Model out = m;
  out.properties.erase(out.properties.begin() +
                       static_cast<ptrdiff_t>(k));
  return out;
}

std::optional<Model> DropLeafTask(const Model& m, TaskId t) {
  const ArtifactSystem& s = m.system;
  if (t == s.root() || !s.task(t).children().empty()) return std::nullopt;
  for (const auto& [name, prop] : m.properties) {
    for (int n = 0; n < prop.num_nodes(); ++n) {
      if (prop.node(n).task == t) return std::nullopt;
      for (const HltlProp& p : prop.node(n).props) {
        if (p.kind == HltlProp::Kind::kService && p.service.task == t) {
          return std::nullopt;
        }
      }
    }
  }
  auto remap = [t](TaskId id) { return id > t ? id - 1 : id; };
  Model out;
  out.system.schema() = s.schema();
  out.system.SetGlobalPre(s.global_pre());
  for (TaskId o = 0; o < s.num_tasks(); ++o) {
    if (o == t) continue;
    const Task& ot = s.task(o);
    TaskId id = out.system.AddTask(
        ot.name(), ot.is_root() ? kNoTask : remap(ot.parent()));
    CopyTaskBody(ot, &out.system.task(id), TaskFilter{});
  }
  out.properties = m.properties;
  for (auto& [name, prop] : out.properties) {
    for (int n = 0; n < prop.num_nodes(); ++n) {
      HltlNode& node = prop.mutable_node(n);
      node.task = remap(node.task);
      for (HltlProp& p : node.props) {
        if (p.kind == HltlProp::Kind::kService) {
          p.service.task = remap(p.service.task);
        }
      }
    }
  }
  return out;
}

std::optional<Model> DropService(const Model& m, TaskId t, int s) {
  if (m.system.task(t).services().size() <= 1) return std::nullopt;
  Model out;
  out.system = CloneSystem(m.system, t, TaskFilter{s, -1});
  out.properties = m.properties;
  for (auto& [name, prop] : out.properties) {
    for (int n = 0; n < prop.num_nodes(); ++n) {
      for (HltlProp& p : prop.mutable_node(n).props) {
        if (p.kind != HltlProp::Kind::kService ||
            p.service.kind != ServiceRef::Kind::kInternal ||
            p.service.task != t) {
          continue;
        }
        if (p.service.index == s) return std::nullopt;
        if (p.service.index > s) --p.service.index;
      }
    }
  }
  return out;
}

std::optional<Model> DropSetRelation(const Model& m, TaskId t, int r) {
  Model out;
  out.system = CloneSystem(m.system, t, TaskFilter{-1, r});
  out.properties = m.properties;
  return out;
}

/// Rebuilds a condition with DB-relation ids above `dropped` shifted
/// down (caller guarantees `dropped` itself is unreferenced).
CondPtr RemapRelations(const CondPtr& c, RelationId dropped) {
  switch (c->kind()) {
    case CondKind::kRel:
      return Condition::Rel(
          c->relation() > dropped ? c->relation() - 1 : c->relation(),
          c->args());
    case CondKind::kNot:
      return Condition::Not(RemapRelations(c->child(0), dropped));
    case CondKind::kAnd:
      return Condition::And(RemapRelations(c->child(0), dropped),
                            RemapRelations(c->child(1), dropped));
    case CondKind::kOr:
      return Condition::Or(RemapRelations(c->child(0), dropped),
                           RemapRelations(c->child(1), dropped));
    default:
      return c;
  }
}

/// Applies `fn` to every condition slot of the model in a fixed order:
/// global pre, then per task (opening, closing, per-service pre/post),
/// then property condition props.
void ForEachCondSlot(Model* m, const std::function<CondPtr(CondPtr)>& fn) {
  m->system.SetGlobalPre(fn(m->system.global_pre()));
  for (TaskId t = 0; t < m->system.num_tasks(); ++t) {
    Task& task = m->system.task(t);
    task.SetOpeningPre(fn(task.opening_pre()));
    task.SetClosingPre(fn(task.closing_pre()));
    for (size_t s = 0; s < task.services().size(); ++s) {
      InternalService& svc = task.mutable_service(static_cast<int>(s));
      svc.pre = fn(svc.pre);
      svc.post = fn(svc.post);
    }
  }
  for (auto& [name, prop] : m->properties) {
    for (int n = 0; n < prop.num_nodes(); ++n) {
      for (HltlProp& p : prop.mutable_node(n).props) {
        if (p.kind == HltlProp::Kind::kCondition) {
          p.condition = fn(p.condition);
        }
      }
    }
  }
}

bool MentionsRelation(const CondPtr& c, RelationId r) {
  switch (c->kind()) {
    case CondKind::kRel:
      return c->relation() == r;
    case CondKind::kNot:
      return MentionsRelation(c->child(0), r);
    case CondKind::kAnd:
    case CondKind::kOr:
      return MentionsRelation(c->child(0), r) ||
             MentionsRelation(c->child(1), r);
    default:
      return false;
  }
}

std::optional<Model> DropDbRelation(const Model& m, RelationId r) {
  const DatabaseSchema& schema = m.system.schema();
  // Unreferenced only: no FK from another relation, no condition atom.
  for (RelationId o = 0; o < schema.num_relations(); ++o) {
    if (o == r) continue;
    for (const Attribute& a : schema.relation(o).attrs()) {
      if (a.kind == AttrKind::kForeign && a.references == r) {
        return std::nullopt;
      }
    }
  }
  bool referenced = false;
  Model probe = m;
  ForEachCondSlot(&probe, [&](CondPtr c) {
    if (MentionsRelation(c, r)) referenced = true;
    return c;
  });
  if (referenced) return std::nullopt;

  Model out;
  for (RelationId o = 0; o < schema.num_relations(); ++o) {
    if (o == r) continue;
    const Relation& rel = schema.relation(o);
    RelationId id = out.system.schema().AddRelation(rel.name());
    for (size_t a = 1; a < rel.attrs().size(); ++a) {
      const Attribute& attr = rel.attrs()[a];
      if (attr.kind == AttrKind::kNumeric) {
        out.system.schema().relation(id).AddNumericAttribute(attr.name);
      } else {
        out.system.schema().relation(id).AddForeignKey(
            attr.name,
            attr.references > r ? attr.references - 1 : attr.references);
      }
    }
  }
  out.system.SetGlobalPre(m.system.global_pre());
  for (TaskId t = 0; t < m.system.num_tasks(); ++t) {
    const Task& ot = m.system.task(t);
    TaskId id = out.system.AddTask(ot.name(), ot.parent());
    CopyTaskBody(ot, &out.system.task(id), TaskFilter{});
  }
  out.properties = m.properties;
  ForEachCondSlot(&out, [r](CondPtr c) { return RemapRelations(c, r); });
  return out;
}

int CountAtoms(const CondPtr& c) {
  if (c->IsAtom()) return 1;
  int n = 0;
  for (int i = 0; i < c->num_children(); ++i) n += CountAtoms(c->child(i));
  return n;
}

CondPtr ReplaceAtomAt(const CondPtr& c, int target, bool value,
                      int* counter) {
  if (c->IsAtom()) {
    if ((*counter)++ == target) {
      return value ? Condition::True() : Condition::False();
    }
    return c;
  }
  switch (c->kind()) {
    case CondKind::kNot:
      return Condition::Not(ReplaceAtomAt(c->child(0), target, value,
                                          counter));
    case CondKind::kAnd:
      return Condition::And(
          ReplaceAtomAt(c->child(0), target, value, counter),
          ReplaceAtomAt(c->child(1), target, value, counter));
    case CondKind::kOr:
      return Condition::Or(
          ReplaceAtomAt(c->child(0), target, value, counter),
          ReplaceAtomAt(c->child(1), target, value, counter));
    default:
      return c;
  }
}

/// Candidates that replace the `atom`-th atom of the `slot`-th
/// condition slot with true/false.
Model ReplaceSlotAtom(const Model& m, int slot, int atom, bool value) {
  Model out = m;
  int slot_counter = 0;
  ForEachCondSlot(&out, [&](CondPtr c) {
    if (slot_counter++ != slot) return c;
    int atom_counter = 0;
    return ReplaceAtomAt(c, atom, value, &atom_counter);
  });
  return out;
}

/// All structural + atom candidates of the current model, in a fixed
/// deterministic order (coarse structure first, atoms last).
std::vector<Model> EnumerateCandidates(const Model& m) {
  std::vector<Model> out;
  auto push = [&out](std::optional<Model> c) {
    if (c.has_value()) out.push_back(std::move(*c));
  };

  for (size_t k = 0; k < m.properties.size(); ++k) {
    push(DropProperty(m, k));
  }
  for (TaskId t = m.system.num_tasks() - 1; t > 0; --t) {
    push(DropLeafTask(m, t));
  }
  for (TaskId t = 0; t < m.system.num_tasks(); ++t) {
    for (size_t s = 0; s < m.system.task(t).services().size(); ++s) {
      push(DropService(m, t, static_cast<int>(s)));
    }
  }
  for (TaskId t = 0; t < m.system.num_tasks(); ++t) {
    for (int r = 0; r < m.system.task(t).num_set_relations(); ++r) {
      push(DropSetRelation(m, t, r));
    }
  }
  for (RelationId r = 0; r < m.system.schema().num_relations(); ++r) {
    push(DropDbRelation(m, r));
  }

  // Property propositions -> true / false (also detaches child-formula
  // nodes and service observations; orphaned nodes vanish at print).
  for (size_t k = 0; k < m.properties.size(); ++k) {
    const HltlProperty& prop = m.properties[k].second;
    for (int n = 0; n < prop.num_nodes(); ++n) {
      for (size_t p = 0; p < prop.node(n).props.size(); ++p) {
        const HltlProp& hp = prop.node(n).props[p];
        for (bool value : {true, false}) {
          if (hp.kind == HltlProp::Kind::kCondition &&
              hp.condition->kind() ==
                  (value ? CondKind::kTrue : CondKind::kFalse)) {
            continue;
          }
          Model cand = m;
          cand.properties[k].second.mutable_node(n).props[p] =
              HltlProp::Cond(value ? Condition::True()
                                   : Condition::False());
          out.push_back(std::move(cand));
        }
      }
    }
  }

  // Condition atoms -> true / false, slot by slot.
  {
    std::vector<int> atom_counts;
    Model probe = m;
    ForEachCondSlot(&probe, [&](CondPtr c) {
      atom_counts.push_back(CountAtoms(c));
      return c;
    });
    for (size_t slot = 0; slot < atom_counts.size(); ++slot) {
      for (int atom = 0; atom < atom_counts[slot]; ++atom) {
        for (bool value : {true, false}) {
          out.push_back(ReplaceSlotAtom(m, static_cast<int>(slot), atom,
                                        value));
        }
      }
    }
  }
  return out;
}

/// Parses + validates a candidate source; nullopt when it is not a
/// legal spec (the candidate is then discarded).
std::optional<ParsedSpec> CheckCandidate(const std::string& source) {
  StatusOr<ParsedSpec> parsed = ParseSpec(source);
  if (!parsed.ok()) return std::nullopt;
  if (!ValidateSystem(parsed->system, &parsed->locations).ok()) {
    return std::nullopt;
  }
  for (const auto& [name, property] : parsed->properties) {
    if (!property.Validate(parsed->system).ok()) return std::nullopt;
  }
  return std::move(*parsed);
}

}  // namespace

StatusOr<std::string> ShrinkSpec(const std::string& source,
                                 const SpecPredicate& still_failing,
                                 const ShrinkOptions& options,
                                 ShrinkStats* stats,
                                 const ShrinkObserver& on_accept) {
  StatusOr<ParsedSpec> parsed = ParseSpec(source);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        StrCat("shrink input does not parse: ", parsed.status().message()));
  }
  Status valid = ValidateSystem(parsed->system, &parsed->locations);
  if (!valid.ok()) {
    return Status::InvalidArgument(
        StrCat("shrink input does not validate: ", valid.message()));
  }
  for (const auto& [name, property] : parsed->properties) {
    Status pv = property.Validate(parsed->system);
    if (!pv.ok()) {
      return Status::InvalidArgument(StrCat("shrink input property ", name,
                                            " does not validate: ",
                                            pv.message()));
    }
  }
  if (!still_failing(*parsed)) {
    return Status::InvalidArgument(
        "shrink predicate does not hold on the input spec");
  }

  // Work on the canonical print of the input (identical model).
  Model current = ToModel(*parsed);
  std::string current_source =
      PrintSpecSource(current.system, current.properties);

  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;
  bool progress = true;
  while (progress && s.accepted < options.max_accepted) {
    progress = false;
    for (Model& candidate : EnumerateCandidates(current)) {
      ++s.tried;
      std::string cand_source =
          PrintSpecSource(candidate.system, candidate.properties);
      if (cand_source.size() >= current_source.size()) continue;
      std::optional<ParsedSpec> cand = CheckCandidate(cand_source);
      if (!cand.has_value()) continue;
      if (!still_failing(*cand)) continue;
      current = ToModel(*cand);
      current_source = cand_source;
      ++s.accepted;
      if (on_accept) on_accept(*cand, cand_source);
      progress = true;
      break;  // restart enumeration on the reduced spec
    }
  }
  return current_source;
}

}  // namespace has
