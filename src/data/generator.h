// Random database instance generation. Used by the concrete-run
// simulator and by tests to cross-validate the symbolic verifier on
// randomly populated databases that satisfy all key and inclusion
// dependencies by construction.
#ifndef HAS_DATA_GENERATOR_H_
#define HAS_DATA_GENERATOR_H_

#include <cstdint>
#include <random>

#include "data/instance.h"

namespace has {

struct GeneratorOptions {
  /// Tuples per relation.
  int tuples_per_relation = 4;
  /// Numeric attributes are drawn uniformly from integers in
  /// [numeric_min, numeric_max] (integers keep equalities exercised).
  int numeric_min = 0;
  int numeric_max = 8;
  uint64_t seed = 42;
};

/// Generates an instance with `tuples_per_relation` tuples in every
/// relation. All IDs are allocated first and foreign keys are then wired
/// to random existing IDs, so the result satisfies the dependencies for
/// any schema shape (including cyclic ones).
DatabaseInstance GenerateInstance(const DatabaseSchema& schema,
                                  const GeneratorOptions& options);

}  // namespace has

#endif  // HAS_DATA_GENERATOR_H_
