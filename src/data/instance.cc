#include "data/instance.h"

#include <set>

#include "common/strings.h"

namespace has {

DatabaseInstance::DatabaseInstance(const DatabaseSchema* schema)
    : schema_(schema),
      tuples_(schema->num_relations()),
      index_(schema->num_relations()),
      next_id_(schema->num_relations(), 1) {}

Status DatabaseInstance::Insert(RelationId r, Tuple tuple) {
  const Relation& rel = schema_->relation(r);
  if (static_cast<int>(tuple.size()) != rel.arity()) {
    return Status::InvalidArgument(
        StrCat("arity mismatch inserting into ", rel.name(), ": got ",
               tuple.size(), ", want ", rel.arity()));
  }
  for (int a = 0; a < rel.arity(); ++a) {
    const Attribute& attr = rel.attr(a);
    const Value& v = tuple[a];
    switch (attr.kind) {
      case AttrKind::kId:
        if (!v.is_id() || v.relation() != r) {
          return Status::InvalidArgument(
              StrCat("bad ID value for ", rel.name(), ": ", v.ToString()));
        }
        break;
      case AttrKind::kNumeric:
        if (!v.is_real()) {
          return Status::InvalidArgument(
              StrCat("attribute ", attr.name, " of ", rel.name(),
                     " must be numeric, got ", v.ToString()));
        }
        break;
      case AttrKind::kForeign:
        if (!v.is_id() || v.relation() != attr.references) {
          return Status::InvalidArgument(
              StrCat("foreign key ", attr.name, " of ", rel.name(),
                     " must reference relation ", attr.references, ", got ",
                     v.ToString()));
        }
        break;
    }
  }
  uint64_t id_bits = tuple[0].id();
  if (index_[r].count(id_bits) > 0) {
    return Status::InvalidArgument(
        StrCat("duplicate ID ", tuple[0].ToString(), " in ", rel.name()));
  }
  index_[r][id_bits] = tuples_[r].size();
  next_id_[r] = std::max(next_id_[r], id_bits + 1);
  tuples_[r].push_back(std::move(tuple));
  return Status::Ok();
}

StatusOr<Value> DatabaseInstance::InsertWithFreshId(RelationId r,
                                                    std::vector<Value> attrs) {
  Value id = Value::Id(r, next_id_[r]);
  Tuple tuple;
  tuple.reserve(attrs.size() + 1);
  tuple.push_back(id);
  for (Value& v : attrs) tuple.push_back(std::move(v));
  HAS_RETURN_IF_ERROR(Insert(r, std::move(tuple)));
  return id;
}

size_t DatabaseInstance::TotalTuples() const {
  size_t n = 0;
  for (const auto& ts : tuples_) n += ts.size();
  return n;
}

const Tuple* DatabaseInstance::Find(RelationId r, const Value& id) const {
  if (!id.is_id() || id.relation() != r) return nullptr;
  auto it = index_[r].find(id.id());
  if (it == index_[r].end()) return nullptr;
  return &tuples_[r][it->second];
}

std::optional<Value> DatabaseInstance::Attr(const Value& id, AttrId a) const {
  if (!id.is_id()) return std::nullopt;
  const Tuple* t = Find(id.relation(), id);
  if (t == nullptr || a < 0 || a >= static_cast<int>(t->size())) {
    return std::nullopt;
  }
  return (*t)[a];
}

std::optional<Value> DatabaseInstance::Navigate(
    const Value& id, const std::vector<AttrId>& path) const {
  Value cur = id;
  for (AttrId a : path) {
    std::optional<Value> next = Attr(cur, a);
    if (!next.has_value()) return std::nullopt;
    cur = *next;
  }
  return cur;
}

Status DatabaseInstance::CheckDependencies() const {
  for (RelationId r = 0; r < schema_->num_relations(); ++r) {
    const Relation& rel = schema_->relation(r);
    std::set<uint64_t> ids;
    for (const Tuple& t : tuples_[r]) {
      if (!ids.insert(t[0].id()).second) {
        return Status::FailedPrecondition(
            StrCat("key violation in ", rel.name(), " on id ",
                   t[0].ToString()));
      }
      for (AttrId a : rel.ForeignKeyAttrs()) {
        const Value& fk = t[a];
        if (Find(rel.attr(a).references, fk) == nullptr) {
          return Status::FailedPrecondition(
              StrCat("inclusion violation: ", rel.name(), ".",
                     rel.attr(a).name, " = ", fk.ToString(),
                     " has no referenced tuple"));
        }
      }
    }
  }
  return Status::Ok();
}

std::vector<Value> DatabaseInstance::ActiveDomain() const {
  std::set<Value> dom;
  for (RelationId r = 0; r < schema_->num_relations(); ++r) {
    for (const Tuple& t : tuples_[r]) {
      for (const Value& v : t) dom.insert(v);
    }
  }
  return std::vector<Value>(dom.begin(), dom.end());
}

std::string DatabaseInstance::ToString() const {
  std::string out;
  for (RelationId r = 0; r < schema_->num_relations(); ++r) {
    out += schema_->relation(r).name();
    out += ": {";
    std::vector<std::string> rows;
    for (const Tuple& t : tuples_[r]) {
      std::vector<std::string> cells;
      for (const Value& v : t) cells.push_back(v.ToString());
      rows.push_back(StrCat("(", StrJoin(cells, ", "), ")"));
    }
    out += StrJoin(rows, ", ");
    out += "}\n";
  }
  return out;
}

}  // namespace has
