// Concrete values for artifact variables and database attributes.
// Per Definition 1, ID domains are pairwise-disjoint countable sets (one
// per relation), disjoint from the numeric domain R; `null` is a special
// constant outside every domain. IDs are therefore tagged with their
// relation.
#ifndef HAS_DATA_VALUE_H_
#define HAS_DATA_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/hashing.h"
#include "schema/schema.h"

namespace has {

enum class ValueKind : uint8_t { kNull, kId, kReal };

/// A concrete value: null, a relation-tagged ID, or a real number.
/// Small value type; compared structurally.
class Value {
 public:
  Value() : kind_(ValueKind::kNull), relation_(kNoRelation), bits_(0) {}

  static Value Null() { return Value(); }
  static Value Id(RelationId relation, uint64_t id) {
    Value v;
    v.kind_ = ValueKind::kId;
    v.relation_ = relation;
    v.bits_ = id;
    return v;
  }
  static Value Real(double x) {
    Value v;
    v.kind_ = ValueKind::kReal;
    v.real_ = x;
    return v;
  }

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_id() const { return kind_ == ValueKind::kId; }
  bool is_real() const { return kind_ == ValueKind::kReal; }

  /// Relation of an ID value (kNoRelation for non-IDs).
  RelationId relation() const { return relation_; }
  /// Raw ID (only meaningful for is_id()).
  uint64_t id() const { return bits_; }
  /// Numeric payload (only meaningful for is_real()).
  double real() const { return real_; }

  bool operator==(const Value& o) const {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
      case ValueKind::kNull:
        return true;
      case ValueKind::kId:
        return relation_ == o.relation_ && bits_ == o.bits_;
      case ValueKind::kReal:
        return real_ == o.real_;
    }
    return false;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }
  bool operator<(const Value& o) const;

  std::string ToString() const;

  size_t Hash() const;

 private:
  ValueKind kind_;
  RelationId relation_;
  union {
    uint64_t bits_;
    double real_;
  };
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace has

#endif  // HAS_DATA_VALUE_H_
