#include "data/generator.h"

#include "common/status.h"

namespace has {

DatabaseInstance GenerateInstance(const DatabaseSchema& schema,
                                  const GeneratorOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> num_dist(options.numeric_min,
                                              options.numeric_max);
  const int n = options.tuples_per_relation;
  std::uniform_int_distribution<uint64_t> id_dist(1, static_cast<uint64_t>(n));

  DatabaseInstance db(&schema);
  // Every relation receives IDs 1..n, so foreign keys can be wired to
  // random existing IDs in one pass even on cyclic FK graphs.
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const Relation& rel = schema.relation(r);
    for (int i = 1; i <= n; ++i) {
      Tuple t;
      t.push_back(Value::Id(r, static_cast<uint64_t>(i)));
      for (int a = 1; a < rel.arity(); ++a) {
        const Attribute& attr = rel.attr(a);
        if (attr.kind == AttrKind::kNumeric) {
          t.push_back(Value::Real(static_cast<double>(num_dist(rng))));
        } else {
          t.push_back(Value::Id(attr.references, id_dist(rng)));
        }
      }
      Status s = db.Insert(r, std::move(t));
      HAS_CHECK_MSG(s.ok(), s.ToString());
    }
  }
  Status deps = db.CheckDependencies();
  HAS_CHECK_MSG(deps.ok(), deps.ToString());
  return db;
}

}  // namespace has
