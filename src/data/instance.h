// Finite database instances over a DatabaseSchema (Definition 1): each
// relation holds a finite set of tuples; key and inclusion dependencies
// are checkable; navigation by foreign keys is the primitive the
// symbolic representation abstracts.
#ifndef HAS_DATA_INSTANCE_H_
#define HAS_DATA_INSTANCE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/value.h"
#include "schema/schema.h"

namespace has {

/// A tuple of a relation: values[0] is the ID, the rest follow the
/// relation's attribute order.
using Tuple = std::vector<Value>;

class DatabaseInstance {
 public:
  explicit DatabaseInstance(const DatabaseSchema* schema);

  const DatabaseSchema& schema() const { return *schema_; }

  /// Inserts a tuple (values must match the relation's attribute kinds).
  /// Rejects duplicate IDs.
  Status Insert(RelationId r, Tuple tuple);

  /// Convenience: allocates the next unused id for r, fills attributes
  /// from `attrs` (excluding the ID), returns the new ID value.
  StatusOr<Value> InsertWithFreshId(RelationId r, std::vector<Value> attrs);

  const std::vector<Tuple>& tuples(RelationId r) const { return tuples_[r]; }
  size_t TotalTuples() const;

  /// Looks up the tuple of r with the given id value.
  const Tuple* Find(RelationId r, const Value& id) const;

  /// Value of attribute a of the tuple with the given id; nullopt if the
  /// tuple is absent.
  std::optional<Value> Attr(const Value& id, AttrId a) const;

  /// Follows a navigation path starting from an ID value: each element
  /// of `path` is an attribute of the current tuple's relation; all but
  /// possibly the last must be foreign keys. Returns nullopt if any hop
  /// dangles.
  std::optional<Value> Navigate(const Value& id,
                                const std::vector<AttrId>& path) const;

  /// Verifies the key dependency (unique IDs — enforced on insert, but
  /// re-checked) and all inclusion dependencies R[Fi] ⊆ R_Fi[ID].
  Status CheckDependencies() const;

  /// All values appearing in the instance (ids and reals).
  std::vector<Value> ActiveDomain() const;

  std::string ToString() const;

 private:
  const DatabaseSchema* schema_;
  std::vector<std::vector<Tuple>> tuples_;
  // Per relation: id bits -> index into tuples_[r].
  std::vector<std::unordered_map<uint64_t, size_t>> index_;
  std::vector<uint64_t> next_id_;
};

}  // namespace has

#endif  // HAS_DATA_INSTANCE_H_
