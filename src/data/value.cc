#include "data/value.h"

#include "common/strings.h"

namespace has {

bool Value::operator<(const Value& o) const {
  if (kind_ != o.kind_) return static_cast<int>(kind_) < static_cast<int>(o.kind_);
  switch (kind_) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kId:
      if (relation_ != o.relation_) return relation_ < o.relation_;
      return bits_ < o.bits_;
    case ValueKind::kReal:
      return real_ < o.real_;
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kId:
      return StrCat("#", relation_, ":", bits_);
    case ValueKind::kReal:
      return StrCat(real_);
  }
  return "?";
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(kind_);
  switch (kind_) {
    case ValueKind::kNull:
      break;
    case ValueKind::kId:
      HashMix(&seed, relation_);
      HashMix(&seed, bits_);
      break;
    case ValueKind::kReal:
      HashMix(&seed, real_);
      break;
  }
  return seed;
}

}  // namespace has
