#include "analysis/analyzer.h"

#include <algorithm>
#include <set>
#include <string>

#include "analysis/sat.h"
#include "common/strings.h"

namespace has {
namespace {

std::vector<VarSort> ScopeSorts(const VarScope& scope) {
  std::vector<VarSort> sorts(static_cast<size_t>(scope.size()));
  for (int v = 0; v < scope.size(); ++v) sorts[v] = scope.var(v).sort;
  return sorts;
}

void AddCondVars(const CondPtr& c, std::set<int>* out) {
  if (c == nullptr) return;
  std::vector<int> vs;
  c->CollectVars(&vs);
  out->insert(vs.begin(), vs.end());
}

/// The task state right after opening: every non-input ID variable is
/// null and every non-input numeric variable is 0 (run semantics); the
/// root additionally starts under the global pre-condition. Input
/// variables are left unconstrained — conservative, since the parent
/// (or the external instance, for the root) chooses them.
CondPtr InitCondition(const ArtifactSystem& system, TaskId t) {
  const Task& task = system.task(t);
  const std::vector<int> inputs = task.InputVars();
  std::vector<CondPtr> cs;
  for (int v = 0; v < task.vars().size(); ++v) {
    if (std::find(inputs.begin(), inputs.end(), v) != inputs.end()) continue;
    if (task.vars().var(v).sort == VarSort::kId) {
      cs.push_back(Condition::IsNull(v));
    } else {
      cs.push_back(
          Condition::Arith(LinearConstraint{LinearExpr::Var(v), Relop::kEq}));
    }
  }
  if (task.is_root()) cs.push_back(system.global_pre());
  return Condition::AndAll(cs);
}

SourceLoc ServiceLoc(const SpecLocations* locs, const Task& task,
                     const std::string& service) {
  return locs == nullptr ? SourceLoc{} : locs->Service(task.name(), service);
}

}  // namespace

AnalysisResult AnalyzeSystem(
    const ArtifactSystem& system,
    const std::vector<std::pair<std::string, const HltlProperty*>>& properties,
    const SpecLocations* locs) {
  AnalysisResult res;
  res.tasks.resize(static_cast<size_t>(system.num_tasks()));

  // Variables each task's property nodes condition on (union over all
  // given properties) — reads for the write-never-read check and roots
  // of the slicing cone.
  std::vector<std::set<int>> prop_vars(
      static_cast<size_t>(system.num_tasks()));
  for (const auto& [name, prop] : properties) {
    (void)name;
    for (int i = 0; i < prop->num_nodes(); ++i) {
      const HltlNode& node = prop->node(i);
      for (const HltlProp& p : node.props) {
        if (p.kind == HltlProp::Kind::kCondition) {
          AddCondVars(p.condition, &prop_vars[node.task]);
        }
      }
    }
  }

  // Whether each task is openable in its parent's enablement graph
  // (filled while analyzing the parent; pre-order guarantees the flag is
  // ready when the child is analyzed).
  std::vector<char> openable(static_cast<size_t>(system.num_tasks()), 0);
  openable[system.root()] = 1;

  for (TaskId t : system.PreOrder()) {
    const Task& task = system.task(t);
    TaskFacts& f = res.tasks[t];
    const int num_services = static_cast<int>(task.services().size());
    const int num_rels = task.num_set_relations();
    f.service_dead.assign(static_cast<size_t>(num_services), 0);
    f.service_unreachable.assign(static_cast<size_t>(num_services), 0);
    f.relation_inserted.assign(static_cast<size_t>(num_rels), 0);
    f.relation_retrieved.assign(static_cast<size_t>(num_rels), 0);
    f.var_read.assign(static_cast<size_t>(task.vars().size()), 0);
    f.task_open =
        openable[t] != 0 &&
        (task.is_root() || res.tasks[task.parent()].task_open);

    const std::vector<VarSort> sorts = ScopeSorts(task.vars());
    const std::vector<int> inputs = task.InputVars();
    auto is_input = [&](int v) {
      return std::find(inputs.begin(), inputs.end(), v) != inputs.end();
    };

    // --- intrinsically dead services: unsatisfiable conditions --------
    std::vector<std::string> dead_reason(static_cast<size_t>(num_services));
    for (int s = 0; s < num_services; ++s) {
      const InternalService& svc = task.service(s);
      if (!MaybeSatisfiable({svc.pre}, sorts)) {
        f.service_dead[s] = 1;
        dead_reason[s] = "pre-condition is unsatisfiable";
        continue;
      }
      if (!MaybeSatisfiable({svc.post}, sorts)) {
        f.service_dead[s] = 1;
        dead_reason[s] = "post-condition is unsatisfiable";
        continue;
      }
      // Joint check: pre on the current tuple, post on the next one.
      // Input variables are stable under internal services (shared
      // index); every other variable is re-decided, so the post reads a
      // fresh copy.
      std::vector<int> rename(static_cast<size_t>(task.vars().size()));
      std::vector<VarSort> joint_sorts = sorts;
      for (int v = 0; v < task.vars().size(); ++v) {
        if (is_input(v)) {
          rename[v] = v;
        } else {
          rename[v] = static_cast<int>(joint_sorts.size());
          joint_sorts.push_back(sorts[static_cast<size_t>(v)]);
        }
      }
      if (!MaybeSatisfiable({svc.pre, svc.post->MapVars(rename)},
                            joint_sorts)) {
        f.service_dead[s] = 1;
        dead_reason[s] = "pre- and post-conditions are jointly unsatisfiable";
      }
    }

    // --- reachability / relation-starvation fixpoint ------------------
    // Removing a starved service can disconnect the enablement graph or
    // starve further relations, so iterate to a fixpoint (monotone in
    // the dead set; at most num_services rounds).
    const CondPtr init = InitCondition(system, t);
    std::vector<char> reached(static_cast<size_t>(num_services), 0);
    std::vector<char> child_open(
        static_cast<size_t>(task.children().size()), 0);
    for (;;) {
      std::fill(reached.begin(), reached.end(), 0);
      std::fill(child_open.begin(), child_open.end(), 0);
      if (f.task_open) {
        // Enablement contexts: the opening state, the post-condition of
        // any service that already fired (same-state conjunction — a
        // sound single-step over-approximation), and the unconstrained
        // state after a child task returned.
        bool grew = true;
        while (grew) {
          grew = false;
          std::vector<CondPtr> contexts = {init};
          for (int s = 0; s < num_services; ++s) {
            if (reached[s] && !f.service_dead[s]) {
              contexts.push_back(task.service(s).post);
            }
          }
          for (size_t ci = 0; ci < task.children().size(); ++ci) {
            const Task& child = system.task(task.children()[ci]);
            if (child_open[ci] &&
                MaybeSatisfiable({child.closing_pre()},
                                 ScopeSorts(child.vars()))) {
              contexts.push_back(Condition::True());
            }
          }
          for (int s = 0; s < num_services; ++s) {
            if (reached[s] || f.service_dead[s]) continue;
            for (const CondPtr& c : contexts) {
              if (MaybeSatisfiable({c, task.service(s).pre}, sorts)) {
                reached[s] = 1;
                grew = true;
                break;
              }
            }
          }
          for (size_t ci = 0; ci < task.children().size(); ++ci) {
            if (child_open[ci]) continue;
            const Task& child = system.task(task.children()[ci]);
            for (const CondPtr& c : contexts) {
              if (MaybeSatisfiable({c, child.opening_pre()}, sorts)) {
                child_open[ci] = 1;
                grew = true;
                break;
              }
            }
          }
        }
      }
      std::fill(f.relation_inserted.begin(), f.relation_inserted.end(), 0);
      for (int s = 0; s < num_services; ++s) {
        if (f.service_dead[s] || !reached[s]) continue;
        for (int r : task.service(s).insert_rels) f.relation_inserted[r] = 1;
      }
      bool changed = false;
      for (int s = 0; s < num_services; ++s) {
        if (f.service_dead[s] || !reached[s]) continue;
        for (int r : task.service(s).retrieve_rels) {
          if (!f.relation_inserted[r]) {
            f.service_dead[s] = 1;
            dead_reason[s] =
                StrCat("retrieves from relation ", task.set_relations()[r].name,
                       ", which no live service inserts into");
            changed = true;
            break;
          }
        }
      }
      if (!changed) break;
    }
    for (size_t ci = 0; ci < task.children().size(); ++ci) {
      openable[task.children()[ci]] = child_open[ci];
    }
    for (int s = 0; s < num_services; ++s) {
      if (!f.service_dead[s]) f.service_unreachable[s] = reached[s] ? 0 : 1;
    }
    for (int s = 0; s < num_services; ++s) {
      if (!f.ServiceLive(s)) continue;
      for (int r : task.service(s).retrieve_rels) f.relation_retrieved[r] = 1;
    }

    // --- diagnostics: services ----------------------------------------
    for (int s = 0; s < num_services; ++s) {
      const std::string& name = task.service(s).name;
      if (f.service_dead[s]) {
        res.diagnostics.push_back(
            Diagnostic{DiagSeverity::kWarning, kDiagDeadService, task.name(),
                       ServiceLoc(locs, task, name),
                       StrCat("service ", name, " can never fire: ",
                              dead_reason[s])});
      } else if (f.service_unreachable[s]) {
        res.diagnostics.push_back(Diagnostic{
            DiagSeverity::kWarning, kDiagUnreachableService, task.name(),
            ServiceLoc(locs, task, name),
            f.task_open
                ? StrCat("service ", name,
                         " is never enabled from any reachable task state")
                : StrCat("service ", name,
                         " is never enabled (task never opens)")});
      }
    }

    // --- diagnostics: relations inserted but never read ---------------
    for (int r = 0; r < num_rels; ++r) {
      if (f.relation_inserted[r] && !f.relation_retrieved[r]) {
        res.diagnostics.push_back(Diagnostic{
            DiagSeverity::kWarning, kDiagUnreadRelation, task.name(),
            locs == nullptr
                ? SourceLoc{}
                : locs->Relation(task.name(), task.set_relations()[r].name),
            StrCat("relation ", task.set_relations()[r].name,
                   " is inserted into but never retrieved; its contents "
                   "cannot affect the property")});
      }
    }

    // --- diagnostics: write-never-read variables -----------------------
    // Read positions: pre-conditions of live services; input variables
    // in their post-conditions (an input keeps its value, so a post
    // mention reads it; any other post mention constrains the freshly
    // decided value — a write); the closing pre-condition; the opening
    // pre-conditions of children (over this scope); the global
    // pre-condition (root); property conditions of this task's nodes;
    // parent-side f_in variables of children; own-side f_out variables
    // (returned on close); and tuple variables of relations inserted by
    // live services (an insert reads the tuple at the pre-state).
    std::set<int> read;
    std::set<int> mentioned;
    for (int s = 0; s < num_services; ++s) {
      const InternalService& svc = task.service(s);
      AddCondVars(svc.pre, &mentioned);
      AddCondVars(svc.post, &mentioned);
      for (int r : svc.insert_rels) {
        mentioned.insert(task.set_relations()[r].vars.begin(),
                         task.set_relations()[r].vars.end());
      }
      for (int r : svc.retrieve_rels) {
        mentioned.insert(task.set_relations()[r].vars.begin(),
                         task.set_relations()[r].vars.end());
      }
      if (!f.ServiceLive(s)) continue;
      AddCondVars(svc.pre, &read);
      std::set<int> post_vars;
      AddCondVars(svc.post, &post_vars);
      for (int v : post_vars) {
        if (is_input(v)) read.insert(v);
      }
      for (int r : svc.insert_rels) {
        read.insert(task.set_relations()[r].vars.begin(),
                    task.set_relations()[r].vars.end());
      }
    }
    AddCondVars(task.closing_pre(), &read);
    AddCondVars(task.closing_pre(), &mentioned);
    if (task.is_root()) {
      AddCondVars(system.global_pre(), &read);
      AddCondVars(system.global_pre(), &mentioned);
    }
    for (TaskId c : task.children()) {
      const Task& child = system.task(c);
      AddCondVars(child.opening_pre(), &read);
      AddCondVars(child.opening_pre(), &mentioned);
      for (const auto& [own, parent_var] : child.fin()) {
        (void)own;
        read.insert(parent_var);
        mentioned.insert(parent_var);
      }
      for (const auto& [parent_var, own] : child.fout()) {
        (void)own;
        mentioned.insert(parent_var);
      }
    }
    for (const auto& [own, parent_var] : task.fin()) {
      (void)parent_var;
      mentioned.insert(own);
    }
    for (const auto& [parent_var, own] : task.fout()) {
      (void)parent_var;
      read.insert(own);
      mentioned.insert(own);
    }
    read.insert(prop_vars[t].begin(), prop_vars[t].end());
    mentioned.insert(prop_vars[t].begin(), prop_vars[t].end());
    for (int v = 0; v < task.vars().size(); ++v) {
      if (read.count(v) != 0) {
        f.var_read[v] = 1;
        continue;
      }
      const std::string& name = task.vars().var(v).name;
      res.diagnostics.push_back(Diagnostic{
          DiagSeverity::kWarning, kDiagWriteNeverRead, task.name(),
          locs == nullptr ? SourceLoc{} : locs->Var(task.name(), name),
          mentioned.count(v) != 0
              ? StrCat("variable ", name, " is written but never read")
              : StrCat("variable ", name, " is never used")});
    }
  }

  // --- diagnostics: vacuous property atoms -----------------------------
  for (const auto& [name, prop] : properties) {
    for (int i = 0; i < prop->num_nodes(); ++i) {
      const HltlNode& node = prop->node(i);
      const Task& task = system.task(node.task);
      const std::vector<VarSort> sorts = ScopeSorts(task.vars());
      for (const HltlProp& p : node.props) {
        if (p.kind != HltlProp::Kind::kCondition) continue;
        const char* verdict = nullptr;
        if (!MaybeSatisfiable({p.condition}, sorts)) {
          verdict = "always false";
        } else if (!MaybeSatisfiable({Condition::Not(p.condition)}, sorts)) {
          verdict = "always true";
        }
        if (verdict != nullptr) {
          res.diagnostics.push_back(Diagnostic{
              DiagSeverity::kWarning, kDiagVacuousAtom, task.name(),
              locs == nullptr ? SourceLoc{} : locs->Property(name),
              StrCat("property ", name, ": atom {",
                     p.condition->ToString(task.vars(), &system.schema()),
                     "} is ", verdict)});
        }
      }
    }
  }

  return res;
}

}  // namespace has
