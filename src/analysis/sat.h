// Conservative satisfiability for conjunctions of quantifier-free
// spec conditions — the decision oracle behind the dead-service and
// vacuous-atom diagnostics and the service-enablement reachability
// graph (analysis/analyzer.cc).
//
// The check is COMPLETE for UNSAT claims within its budget and
// conservative everywhere else: a `true` answer means "maybe
// satisfiable" (the analyzer then stays silent / keeps the service),
// while `false` is a proof of unsatisfiability over the HAS semantics —
// ID variables range over an infinite domain plus null, numeric
// variables over Q (never null), relation atoms over arbitrary
// key-consistent instances, arithmetic over Q via Fourier–Motzkin.
// Every gap (atom budget exceeded, negative relation atoms) errs toward
// `true`, so no diagnostic and no slice decision ever rests on an
// approximation.
#ifndef HAS_ANALYSIS_SAT_H_
#define HAS_ANALYSIS_SAT_H_

#include <vector>

#include "expr/condition.h"

namespace has {

/// Decides whether the conjunction of `conjuncts` may be satisfiable.
/// `sorts` gives the sort of every variable index the conditions may
/// mention (a task scope, possibly extended with renamed post-state
/// variables — see analyzer.cc's joint pre/post check). Enumerates
/// truth assignments to the distinct atoms (equality logic via
/// union-find, linear arithmetic via Fourier–Motzkin, positive relation
/// atoms contribute non-null arguments and the key dependency); returns
/// true ("unknown") outright when there are more than `max_atoms`
/// distinct atoms.
bool MaybeSatisfiable(const std::vector<CondPtr>& conjuncts,
                      const std::vector<VarSort>& sorts,
                      int max_atoms = 16);

}  // namespace has

#endif  // HAS_ANALYSIS_SAT_H_
