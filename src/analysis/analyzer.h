// Static spec analyzer (the pass between model validation and engine
// construction). Computes, per task, which internal services can ever
// fire (dead-service / unreachable-service detection through the
// conservative satisfiability oracle in analysis/sat.h), which artifact
// relations are ever usefully read, and which variables are ever read —
// emitting structured diagnostics for authoring errors — and exposes
// those facts to the property-directed slicer (analysis/slice.h).
//
// Every "never" claim below is backed by a proof: the oracle only
// answers UNSAT when the condition is unsatisfiable over the HAS
// semantics, and the enablement graph over-approximates reachability
// (it ignores marking constraints and path feasibility beyond single
// steps), so a service it cannot reach is truly unreachable. Gaps run
// the other way only — a spec may be flagged clean and still contain
// dead code.
#ifndef HAS_ANALYSIS_ANALYZER_H_
#define HAS_ANALYSIS_ANALYZER_H_

#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.h"
#include "hltl/hltl.h"
#include "model/artifact_system.h"

namespace has {

/// Static facts about one task, indexed like the task's own tables.
struct TaskFacts {
  /// Service can never fire: unsatisfiable pre/post (alone or jointly)
  /// or a retrieve from a relation no live service inserts into.
  std::vector<char> service_dead;
  /// Service is satisfiable but never enabled along any path of the
  /// service-enablement graph (or its task never opens).
  std::vector<char> service_unreachable;
  /// Relation is inserted into by a live service.
  std::vector<char> relation_inserted;
  /// Relation is retrieved from by a live service.
  std::vector<char> relation_retrieved;
  /// Variable appears in a read position of a live artifact (see
  /// analyzer.cc for the exact read-set definition).
  std::vector<char> var_read;
  /// The task can be opened at all (root: always; others: the parent's
  /// enablement graph reaches a state satisfying the opening
  /// pre-condition, and the parent itself can open).
  bool task_open = true;

  bool ServiceLive(int s) const {
    return !service_dead[s] && !service_unreachable[s];
  }
};

struct AnalysisResult {
  std::vector<TaskFacts> tasks;  ///< indexed by TaskId
  std::vector<Diagnostic> diagnostics;
};

/// Analyzes a validated system against zero or more named properties
/// (all properties of a parsed spec, or the single property being
/// verified). Property names only label vacuous-atom messages; the
/// relation-visibility and variable-read facts take the union over all
/// given properties. `locs` (optional) attaches source positions to the
/// emitted diagnostics.
AnalysisResult AnalyzeSystem(
    const ArtifactSystem& system,
    const std::vector<std::pair<std::string, const HltlProperty*>>& properties,
    const SpecLocations* locs = nullptr);

}  // namespace has

#endif  // HAS_ANALYSIS_ANALYZER_H_
