#include "analysis/slice.h"

#include <set>
#include <utility>

namespace has {
namespace {

void MarkCondVars(const CondPtr& c, std::vector<char>* keep) {
  if (c == nullptr) return;
  std::vector<int> vs;
  c->CollectVars(&vs);
  for (int v : vs) (*keep)[static_cast<size_t>(v)] = 1;
}

}  // namespace

SlicePlan BuildSlicePlan(const ArtifactSystem& system,
                         const HltlProperty& property,
                         const AnalysisResult& analysis) {
  SlicePlan plan;
  plan.tasks.resize(static_cast<size_t>(system.num_tasks()));

  // Internal services the property names stay even when statically
  // never-firing: their propositions must remain resolvable (and stay
  // identically false, exactly as in the unsliced system).
  std::vector<std::set<int>> prop_services(
      static_cast<size_t>(system.num_tasks()));
  for (int i = 0; i < property.num_nodes(); ++i) {
    for (const HltlProp& p : property.node(i).props) {
      if (p.kind == HltlProp::Kind::kService &&
          p.service.kind == ServiceRef::Kind::kInternal) {
        prop_services[p.service.task].insert(p.service.index);
      }
    }
  }

  for (TaskId t = 0; t < system.num_tasks(); ++t) {
    const Task& task = system.task(t);
    const TaskFacts& facts = analysis.tasks[t];
    SlicePlan::TaskPlan& tp = plan.tasks[t];
    const int num_services = static_cast<int>(task.services().size());
    const int num_rels = task.num_set_relations();

    tp.keep_service.assign(static_cast<size_t>(num_services), 0);
    for (int s = 0; s < num_services; ++s) {
      if (facts.ServiceLive(s) || prop_services[t].count(s) != 0) {
        tp.keep_service[s] = 1;
      } else {
        ++plan.dropped_services;
      }
    }

    // A relation matters iff some kept service retrieves from it —
    // either a live read of its contents, or the empty-counter guard
    // that keeps a starved-but-property-named service disabled. Inserts
    // alone never gate anything and are stripped below.
    tp.keep_relation.assign(static_cast<size_t>(num_rels), 0);
    for (int r = 0; r < num_rels; ++r) {
      for (int s = 0; s < num_services; ++s) {
        if (tp.keep_service[s] && task.service(s).RetrievesFrom(r)) {
          tp.keep_relation[r] = 1;
          break;
        }
      }
      if (!tp.keep_relation[r]) ++plan.dropped_relations;
    }
  }

  // Variable cone: everything mentioned by a kept artifact. Interface
  // pairs and opening/closing/global pre-conditions are always kept
  // (tasks are never dropped), so their variables are unconditional;
  // an opening pre-condition contributes to the PARENT's scope.
  for (TaskId t = 0; t < system.num_tasks(); ++t) {
    plan.tasks[t].keep_var.assign(
        static_cast<size_t>(system.task(t).vars().size()), 0);
  }
  for (TaskId t = 0; t < system.num_tasks(); ++t) {
    const Task& task = system.task(t);
    std::vector<char>& keep = plan.tasks[t].keep_var;
    for (const auto& [own, parent_var] : task.fin()) {
      keep[static_cast<size_t>(own)] = 1;
      if (!task.is_root()) {
        plan.tasks[task.parent()].keep_var[static_cast<size_t>(parent_var)] =
            1;
      }
    }
    for (const auto& [parent_var, own] : task.fout()) {
      keep[static_cast<size_t>(own)] = 1;
      plan.tasks[task.parent()].keep_var[static_cast<size_t>(parent_var)] = 1;
    }
    if (!task.is_root()) {
      MarkCondVars(task.opening_pre(), &plan.tasks[task.parent()].keep_var);
    }
    MarkCondVars(task.closing_pre(), &keep);
    if (task.is_root()) MarkCondVars(system.global_pre(), &keep);
    for (int s = 0; s < static_cast<int>(task.services().size()); ++s) {
      if (!plan.tasks[t].keep_service[s]) continue;
      MarkCondVars(task.service(s).pre, &keep);
      MarkCondVars(task.service(s).post, &keep);
    }
    for (int r = 0; r < task.num_set_relations(); ++r) {
      if (!plan.tasks[t].keep_relation[r]) continue;
      for (int v : task.set_relations()[r].vars) {
        keep[static_cast<size_t>(v)] = 1;
      }
    }
  }
  for (int i = 0; i < property.num_nodes(); ++i) {
    const HltlNode& node = property.node(i);
    for (const HltlProp& p : node.props) {
      if (p.kind == HltlProp::Kind::kCondition) {
        MarkCondVars(p.condition, &plan.tasks[node.task].keep_var);
      }
    }
  }
  for (TaskId t = 0; t < system.num_tasks(); ++t) {
    for (char k : plan.tasks[t].keep_var) {
      if (!k) ++plan.dropped_vars;
    }
  }
  return plan;
}

SlicedSpec ApplySlice(const ArtifactSystem& system,
                      const HltlProperty& property, const SlicePlan& plan) {
  SlicedSpec out;
  out.system.schema() = system.schema();

  std::vector<std::vector<int>> var_map(
      static_cast<size_t>(system.num_tasks()));
  std::vector<std::vector<int>> rel_map(
      static_cast<size_t>(system.num_tasks()));
  std::vector<std::vector<int>> svc_map(
      static_cast<size_t>(system.num_tasks()));

  // Tasks are stored in creation order with parents before children, so
  // a front-to-back walk preserves every TaskId and sees the parent's
  // variable map completed before any child needs it.
  for (TaskId t = 0; t < system.num_tasks(); ++t) {
    const Task& task = system.task(t);
    const SlicePlan::TaskPlan& tp = plan.tasks[t];
    TaskId nt = out.system.AddTask(task.name(), task.parent());
    Task& dst = out.system.task(nt);

    var_map[t].assign(static_cast<size_t>(task.vars().size()), -1);
    for (int v = 0; v < task.vars().size(); ++v) {
      if (tp.keep_var[v]) {
        var_map[t][v] =
            dst.vars().AddVar(task.vars().var(v).name, task.vars().var(v).sort);
      }
    }

    rel_map[t].assign(static_cast<size_t>(task.num_set_relations()), -1);
    for (int r = 0; r < task.num_set_relations(); ++r) {
      if (!tp.keep_relation[r]) continue;
      std::vector<int> tuple;
      for (int v : task.set_relations()[r].vars) {
        tuple.push_back(var_map[t][v]);
      }
      rel_map[t][r] =
          dst.AddSetRelation(task.set_relations()[r].name, std::move(tuple));
    }

    for (const auto& [own, parent_var] : task.fin()) {
      dst.AddInput(var_map[t][own], task.is_root()
                                        ? parent_var
                                        : var_map[task.parent()][parent_var]);
    }
    for (const auto& [parent_var, own] : task.fout()) {
      dst.AddOutput(var_map[task.parent()][parent_var], var_map[t][own]);
    }
    dst.SetOpeningPre(task.is_root()
                          ? task.opening_pre()
                          : task.opening_pre()->MapVars(var_map[task.parent()]));
    dst.SetClosingPre(task.closing_pre()->MapVars(var_map[t]));

    svc_map[t].assign(task.services().size(), -1);
    for (int s = 0; s < static_cast<int>(task.services().size()); ++s) {
      if (!tp.keep_service[s]) continue;
      const InternalService& svc = task.service(s);
      InternalService ns;
      ns.name = svc.name;
      ns.pre = svc.pre->MapVars(var_map[t]);
      ns.post = svc.post->MapVars(var_map[t]);
      for (int r : svc.insert_rels) {
        if (rel_map[t][r] >= 0) ns.insert_rels.push_back(rel_map[t][r]);
      }
      for (int r : svc.retrieve_rels) {
        // Retrieved relations are kept by construction (keep_relation
        // rule), so this never drops a gate.
        ns.retrieve_rels.push_back(rel_map[t][r]);
      }
      svc_map[t][s] = dst.AddInternalService(std::move(ns));
    }
  }
  out.system.SetGlobalPre(
      system.global_pre()->MapVars(var_map[system.root()]));

  for (int i = 0; i < property.num_nodes(); ++i) {
    const HltlNode& node = property.node(i);
    HltlNode n;
    n.task = node.task;
    n.skeleton = node.skeleton;
    for (const HltlProp& p : node.props) {
      switch (p.kind) {
        case HltlProp::Kind::kCondition:
          n.props.push_back(
              HltlProp::Cond(p.condition->MapVars(var_map[node.task])));
          break;
        case HltlProp::Kind::kService:
          n.props.push_back(
              p.service.kind == ServiceRef::Kind::kInternal
                  ? HltlProp::Service(ServiceRef::Internal(
                        p.service.task,
                        svc_map[p.service.task][p.service.index]))
                  : p);
          break;
        case HltlProp::Kind::kChildFormula:
          n.props.push_back(p);
          break;
      }
    }
    out.property.AddNode(std::move(n));
  }
  return out;
}

}  // namespace has
