// Property-directed cone-of-influence slicing (VerifierOptions::slice,
// default ON). Given the analyzer's liveness facts and the single
// property under verification, computes which services, artifact
// relations, and variables can influence the verdict, and rebuilds the
// system/property pair without the rest — fewer services to expand and
// smaller counter/ib-bit dimensions before the product VASS is built.
//
// Soundness (verdict preservation) rests on three observations, spelled
// out in docs/ARCHITECTURE.md:
//   1. A statically dead or unreachable service never fires in any run,
//      so removing it removes no run — unless the property names it,
//      in which case it is kept (its proposition stays identically
//      false either way).
//   2. Inserts impose no enabledness constraint; only retrieves consult
//      an artifact relation. A relation no kept service retrieves from
//      is therefore invisible: dropping it (and stripping its insert
//      ops) changes neither enabledness nor any observation.
//   3. A variable mentioned in no kept condition, tuple, or interface
//      pair is unconstrained and unobserved; runs of the sliced system
//      extend to runs of the original (choose arbitrary values) with
//      identical observations, and conversely project. Interface
//      variables (f_in / f_out, both sides) are always kept.
#ifndef HAS_ANALYSIS_SLICE_H_
#define HAS_ANALYSIS_SLICE_H_

#include <vector>

#include "analysis/analyzer.h"
#include "hltl/hltl.h"
#include "model/artifact_system.h"

namespace has {

struct SlicePlan {
  struct TaskPlan {
    std::vector<char> keep_service;
    std::vector<char> keep_relation;
    std::vector<char> keep_var;
  };
  std::vector<TaskPlan> tasks;  ///< indexed by TaskId
  int dropped_services = 0;
  int dropped_relations = 0;
  int dropped_vars = 0;

  bool IsNoOp() const {
    return dropped_services == 0 && dropped_relations == 0 &&
           dropped_vars == 0;
  }
};

/// Computes the keep-sets for verifying `property` against `system`,
/// using facts from an AnalyzeSystem run that included this property.
SlicePlan BuildSlicePlan(const ArtifactSystem& system,
                         const HltlProperty& property,
                         const AnalysisResult& analysis);

struct SlicedSpec {
  ArtifactSystem system;
  HltlProperty property;
};

/// Rebuilds the system and property according to `plan`. Task ids are
/// preserved; variable, relation, and service indices are compacted.
/// The caller re-validates the result (Verify does).
SlicedSpec ApplySlice(const ArtifactSystem& system,
                      const HltlProperty& property, const SlicePlan& plan);

}  // namespace has

#endif  // HAS_ANALYSIS_SLICE_H_
