// Structured diagnostics for the static spec analyzer (the linter half
// of src/analysis/). Each diagnostic carries a stable code so CI can
// match committed expectations (examples/specs/*.diag) and the
// spec-fuzzer roadmap item can assert analyzer-cleanliness; the codes
// are documented in docs/ARCHITECTURE.md ("Static spec analysis &
// slicing").
#ifndef HAS_ANALYSIS_DIAGNOSTICS_H_
#define HAS_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "model/source_loc.h"

namespace has {

enum class DiagSeverity : uint8_t {
  kWarning,  ///< suspicious but verifiable spec
  kError,    ///< the spec cannot mean what it says
};

const char* DiagSeverityName(DiagSeverity s);

/// Stable diagnostic codes (see docs/ARCHITECTURE.md for the table).
/// String constants instead of an enum so printers, expectations, and
/// tests match on the exact spelling.
inline constexpr char kDiagDeadService[] = "dead-service";
inline constexpr char kDiagUnreachableService[] = "unreachable-service";
inline constexpr char kDiagWriteNeverRead[] = "write-never-read";
inline constexpr char kDiagUnreadRelation[] = "unread-relation";
inline constexpr char kDiagVacuousAtom[] = "vacuous-atom";

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kWarning;
  const char* code = "";
  /// Owning task name; empty for system- or property-level findings.
  std::string task;
  SourceLoc loc;
  std::string message;
};

/// One rendered line: "[file:line:] severity: [code] task T: message".
std::string RenderDiagnostic(const Diagnostic& d, const SpecLocations* locs);

/// All diagnostics, one line each, in emission order.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              const SpecLocations* locs);

}  // namespace has

#endif  // HAS_ANALYSIS_DIAGNOSTICS_H_
