#include "analysis/sat.h"

#include <cstdint>
#include <map>
#include <utility>

#include "arith/fourier_motzkin.h"
#include "common/union_find.h"

namespace has {
namespace {

int AtomIndex(const Condition& a, const std::vector<const Condition*>& atoms) {
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (atoms[i]->Equals(a)) return static_cast<int>(i);
  }
  return -1;
}

/// Truth value of `c` under the atom assignment `mask` (bit i = truth of
/// atoms[i]).
bool EvalUnder(const Condition& c, const std::vector<const Condition*>& atoms,
               uint32_t mask) {
  switch (c.kind()) {
    case CondKind::kTrue:
      return true;
    case CondKind::kFalse:
      return false;
    case CondKind::kNot:
      return !EvalUnder(*c.child(0), atoms, mask);
    case CondKind::kAnd:
      for (int i = 0; i < c.num_children(); ++i) {
        if (!EvalUnder(*c.child(i), atoms, mask)) return false;
      }
      return true;
    case CondKind::kOr:
      for (int i = 0; i < c.num_children(); ++i) {
        if (EvalUnder(*c.child(i), atoms, mask)) return true;
      }
      return false;
    default:
      return (mask >> AtomIndex(c, atoms)) & 1u;
  }
}

bool IsNumericTerm(const Term& t, const std::vector<VarSort>& sorts) {
  switch (t.kind) {
    case Term::Kind::kConst:
      return true;
    case Term::Kind::kVar:
      return sorts[t.var] == VarSort::kNumeric;
    case Term::Kind::kNull:
      return false;
  }
  return false;
}

LinearExpr TermExpr(const Term& t) {
  return t.kind == Term::Kind::kConst ? LinearExpr::Constant(t.value)
                                      : LinearExpr::Var(t.var);
}

/// Theory consistency of one full truth assignment to the atoms.
/// Elements of the union-find: variables [0, nvars), null at nvars,
/// interned constants after that.
bool TheoryConsistent(const std::vector<const Condition*>& atoms,
                      uint32_t mask, const std::vector<VarSort>& sorts) {
  const int nvars = static_cast<int>(sorts.size());
  const int null_elem = nvars;
  UnionFind uf(static_cast<size_t>(nvars) + 1);
  std::vector<Rational> consts;
  auto intern_const = [&](const Rational& r) {
    for (size_t i = 0; i < consts.size(); ++i) {
      if (consts[i] == r) return null_elem + 1 + static_cast<int>(i);
    }
    consts.push_back(r);
    return uf.AddElement();
  };
  auto term_elem = [&](const Term& t) {
    switch (t.kind) {
      case Term::Kind::kVar:
        return t.var;
      case Term::Kind::kNull:
        return null_elem;
      case Term::Kind::kConst:
        return intern_const(t.value);
    }
    return null_elem;
  };

  std::vector<std::pair<int, int>> disequal;
  std::vector<const Condition*> pos_rels;
  LinearSystem system;
  std::vector<LinearExpr> arith_diseqs;

  for (size_t i = 0; i < atoms.size(); ++i) {
    const Condition& a = *atoms[i];
    const bool value = (mask >> i) & 1u;
    switch (a.kind()) {
      case CondKind::kEq: {
        if (value) {
          uf.Union(term_elem(a.lhs()), term_elem(a.rhs()));
        } else {
          disequal.emplace_back(term_elem(a.lhs()), term_elem(a.rhs()));
          if (IsNumericTerm(a.lhs(), sorts) && IsNumericTerm(a.rhs(), sorts)) {
            arith_diseqs.push_back(TermExpr(a.lhs()) - TermExpr(a.rhs()));
          }
        }
        break;
      }
      case CondKind::kRel: {
        // A positive atom forces all arguments non-null; a negative atom
        // constrains nothing we can use (the instance may simply lack the
        // tuple), so it is ignored — conservative toward SAT.
        if (value) {
          pos_rels.push_back(&a);
          for (int v : a.args()) {
            if (sorts[v] == VarSort::kId) disequal.emplace_back(v, null_elem);
          }
        }
        break;
      }
      case CondKind::kArith: {
        const LinearConstraint& lc = a.constraint();
        if (value) {
          system.Add(lc);
        } else {
          switch (lc.op) {
            case Relop::kLe:  // ¬(e ≤ 0) ⇔ -e < 0
              system.Add(-lc.expr, Relop::kLt);
              break;
            case Relop::kLt:  // ¬(e < 0) ⇔ -e ≤ 0
              system.Add(-lc.expr, Relop::kLe);
              break;
            case Relop::kEq:  // ¬(e = 0) ⇔ e ≠ 0
              arith_diseqs.push_back(lc.expr);
              break;
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Key-dependency closure: attribute 0 is the relation's key, so two
  // tuples of the same relation with equal keys are the same tuple —
  // merge the remaining argument columns. Fixpoint because merges can
  // enable further key equalities.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < pos_rels.size(); ++i) {
      for (size_t j = i + 1; j < pos_rels.size(); ++j) {
        const Condition& p = *pos_rels[i];
        const Condition& q = *pos_rels[j];
        if (p.relation() != q.relation()) continue;
        if (!uf.Same(p.args()[0], q.args()[0])) continue;
        for (size_t k = 1; k < p.args().size(); ++k) {
          if (!uf.Same(p.args()[k], q.args()[k])) {
            uf.Union(p.args()[k], q.args()[k]);
            changed = true;
          }
        }
      }
    }
  }

  for (const auto& [a, b] : disequal) {
    if (uf.Same(a, b)) return false;
  }

  // Per-class sanity plus equality constraints feeding the arithmetic
  // check: a class may hold at most one constant, never null together
  // with a constant or a numeric variable (numeric variables are never
  // null), and all numeric members of a class must be arithmetically
  // equal.
  std::map<int, std::vector<int>> classes;
  for (int e = 0; e < static_cast<int>(uf.size()); ++e) {
    classes[uf.Find(e)].push_back(e);
  }
  for (const auto& [root, members] : classes) {
    (void)root;
    bool has_null = false;
    const Rational* the_const = nullptr;
    std::vector<int> numeric_vars;
    for (int e : members) {
      if (e == null_elem) {
        has_null = true;
      } else if (e > null_elem) {
        const Rational& r = consts[e - null_elem - 1];
        if (the_const != nullptr && !(*the_const == r)) return false;
        the_const = &r;
      } else if (sorts[e] == VarSort::kNumeric) {
        numeric_vars.push_back(e);
      }
    }
    if (has_null && (the_const != nullptr || !numeric_vars.empty())) {
      return false;
    }
    if (the_const != nullptr) {
      for (int v : numeric_vars) {
        system.Add(LinearExpr::Var(v) - LinearExpr::Constant(*the_const),
                   Relop::kEq);
      }
    } else {
      for (size_t i = 1; i < numeric_vars.size(); ++i) {
        system.Add(
            LinearExpr::Var(numeric_vars[i]) - LinearExpr::Var(numeric_vars[0]),
            Relop::kEq);
      }
    }
  }

  return FourierMotzkin::IsSatisfiableWithDisequalities(system, arith_diseqs);
}

}  // namespace

bool MaybeSatisfiable(const std::vector<CondPtr>& conjuncts,
                      const std::vector<VarSort>& sorts, int max_atoms) {
  std::vector<const Condition*> atoms;
  for (const CondPtr& c : conjuncts) {
    if (c == nullptr) continue;
    std::vector<const Condition*> local;
    c->CollectAtoms(&local);
    for (const Condition* a : local) {
      if (AtomIndex(*a, atoms) < 0) atoms.push_back(a);
    }
  }
  if (static_cast<int>(atoms.size()) > max_atoms) return true;  // unknown

  const uint32_t limit = 1u << atoms.size();
  for (uint32_t mask = 0; mask < limit; ++mask) {
    bool holds = true;
    for (const CondPtr& c : conjuncts) {
      if (c != nullptr && !EvalUnder(*c, atoms, mask)) {
        holds = false;
        break;
      }
    }
    if (!holds) continue;
    if (TheoryConsistent(atoms, mask, sorts)) return true;
  }
  return false;
}

}  // namespace has
