#include "analysis/diagnostics.h"

#include "common/strings.h"

namespace has {

const char* DiagSeverityName(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "?";
}

std::string RenderDiagnostic(const Diagnostic& d, const SpecLocations* locs) {
  std::string out;
  if (locs != nullptr) {
    std::string where = locs->Render(d.loc);
    if (!where.empty()) out = StrCat(where, ": ");
  }
  out = StrCat(out, DiagSeverityName(d.severity), ": [", d.code, "] ");
  if (!d.task.empty()) out = StrCat(out, "task ", d.task, ": ");
  return StrCat(out, d.message);
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              const SpecLocations* locs) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out = StrCat(out, RenderDiagnostic(d, locs), "\n");
  }
  return out;
}

}  // namespace has
