#!/usr/bin/env python3
"""Counter-based perf-regression gate.

Compares the DETERMINISTIC exploration counters of a Google-Benchmark
JSON run against a committed baseline and fails on unexplained growth.
The gated counters (coverability nodes/edges, product states, interned
types, recorded cover-edges) are pure work counts: they are schedule-
and host-independent, so exceeding the baseline means the change
genuinely made the verifier explore more — unlike wall-clock, which
stays informational (the committed baselines come from a 1-vCPU
container; see ROADMAP.md). full_graph_builds must be exactly 0 in
every run: the pruned path's full-graph lasso fallback is retired
(lasso search traverses the pruned graph's cover-edges), and this
counter coming back nonzero is the regression the gate exists to
catch.

Usage:
  check_bench_counters.py BASELINE.json RUN.json [--tolerance PCT]

Exit code 1 iff a gated counter grew beyond the tolerance (default 0%)
or a baselined benchmark is missing from the run. Benchmarks present in
the run but not in the baseline are reported as needing a baseline
update, not failed.
"""

import argparse
import json
import sys

# Counters that measure work: growth is a regression. Counters absent
# from a benchmark's baseline row are skipped, so per-family counters
# (e.g. bench_marking's kernel-semantics counts) live here too.
GATED = [
    "cov_nodes",
    "cov_edges",
    "product_states",
    "pooled_types",
    "cover_edges",
    "counter_dims",
    # Marking payloads touched by domination probes (DominanceLeq
    # calls made by the bucketed dominance index): the dominance
    # kernel's work count. Shard-count-invariant (probes replay the
    # sequential decision order), so the sharded --exact gate doubles
    # as the probe-determinism check. NOTE: until the bucketed index
    # landed this counted entries EXAMINED (payload compares + summary
    # skips); the semantics change shipped with a baseline re-record.
    "antichain_probes",
    # Summary buckets examined by the bucketed dominance index — the
    # sublinear-probe work count. Deterministic and shard-count-
    # invariant like antichain_probes (the bucket layout replays the
    # sequential insertion/removal history).
    "antichain_bucket_probes",
    # Coverability-node markings stored under the sparse
    # (dimension, value)-pair representation. A pure function of the
    # (deterministic) node set and the per-marking density rule, so any
    # drift means the stored representation changed.
    "sparse_markings",
    # bench_marking kernel-semantics counts: the number of ≤ pairs and
    # of summary-filter survivors over a fixed-seed random corpus.
    # Gated with --exact in CI, so the scalar and SIMD kernel builds
    # must both reproduce them bit-for-bit.
    "leq_true",
    "summary_pass",
    # Successors the ample-prefix partial-order reduction never
    # generated. Deterministic and shard-count-invariant (the reduction
    # replays the sequential decision order in the sharded merge), so
    # any unexplained drift is a bug: growth fails outright, shrink
    # fails under --exact and otherwise surfaces as a note next to the
    # cov_nodes growth it usually causes. Absent from pre-POR baseline
    # rows (the *_por_off.json differential baselines), which the
    # counter-skip rule below handles.
    "ample_reduced_successors",
    # Property-directed slicing (VerifierOptions::slice): services and
    # dimensions (relations + variables) dropped before the product
    # VASS is built, plus the static analyzer's finding count. All
    # three are pure functions of the input spec — any drift means the
    # analyzer's liveness facts or the slicer's cone changed, which
    # must come with a deliberate baseline re-record. Absent from the
    # pre-slicer differential baselines (*_slice_off.json), which the
    # counter-skip rule below handles; sliced_* are zero by
    # construction in rows recorded with slicing off.
    "sliced_services",
    "sliced_dims",
    "diagnostics_emitted",
]
# Counters that must be EXACTLY ZERO in every run: lasso analysis runs
# on the pruned graph itself (via cover-edges), so a single full-graph
# rebuild means the fallback came back. Checked against the run alone —
# a stale baseline cannot grandfather a regression in.
EXPECT_ZERO = [
    "full_graph_builds",
]
# Deterministic but directionless: a drift is worth a look, not a fail
# (e.g. pruning MORE successors is usually good news).
INFORMATIONAL = [
    "pruned_successors",
    "deactivated_nodes",
    "antichain_peak",
    # Largest per-state bucket count of the bucketed dominance index:
    # tracks antichain shape, not work done (mirrors antichain_peak).
    "antichain_buckets_peak",
    # Probes resolved by the support-summary prefilter alone: more
    # skips is good news, so drift is surfaced, not gated.
    "antichain_skipped_by_summary",
    # Ample attempts that reverted to full expansion because a prefix
    # successor folded into an existing/dominated node (C3). The revert
    # is part of the deterministic replay, but the count tracks fold
    # timing rather than work done, so it is surfaced, not gated.
    "ample_full_expansions",
]


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        b["name"]: b
        for b in data.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("run")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="allowed growth in percent (counters are deterministic, "
        "so the default is exact)",
    )
    parser.add_argument(
        "--allow-missing-rows",
        action="store_true",
        help="tolerate baselined benchmarks absent from the run (for "
        "gating a --benchmark_filter subset, e.g. bench_sharded at "
        "1/2/4 shards against a baseline that also has the 8-shard "
        "rows)",
    )
    parser.add_argument(
        "--exact",
        action="store_true",
        help="fail on ANY drift of a gated counter, shrinks included "
        "(for determinism gates: the sharded rows must EQUAL the "
        "baseline, so a regression that explores fewer nodes at some "
        "shard count fails instead of reading as an improvement)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    run = load(args.run)
    if not baseline:
        # A format drift (e.g. aggregates-only output) must not turn
        # the gate into a silent no-op.
        print(f"FAIL: no iteration benchmarks in {args.baseline}",
              file=sys.stderr)
        return 1
    failures = []
    notes = []

    compared = 0
    for name, base in sorted(baseline.items()):
        cur = run.get(name)
        if cur is None:
            if args.allow_missing_rows:
                notes.append(f"{name}: not in the (filtered) run, skipped")
            else:
                failures.append(f"{name}: present in baseline but not in run")
            continue
        compared += 1
        for counter in GATED:
            if counter not in base:
                continue
            if counter not in cur:
                failures.append(f"{name}: counter {counter} disappeared")
                continue
            b, c = float(base[counter]), float(cur[counter])
            limit = b * (1.0 + args.tolerance / 100.0)
            if c > limit:
                failures.append(
                    f"{name}: {counter} grew {b:.0f} -> {c:.0f} "
                    f"(+{(c - b) / b * 100.0 if b else float('inf'):.1f}%)"
                )
            elif c < b:
                if args.exact:
                    failures.append(
                        f"{name}: {counter} drifted {b:.0f} -> {c:.0f} "
                        "(--exact: determinism gate, shrink is a "
                        "regression too)"
                    )
                else:
                    notes.append(
                        f"{name}: {counter} improved {b:.0f} -> {c:.0f} "
                        "(update the baseline to lock it in)"
                    )
        for counter in INFORMATIONAL:
            if counter in base and counter in cur:
                b, c = float(base[counter]), float(cur[counter])
                if b != c:
                    notes.append(
                        f"{name}: {counter} drifted {b:.0f} -> {c:.0f} "
                        "(informational)"
                    )
        # Wall clock: never gated, just surfaced.
        if "real_time" in base and "real_time" in cur:
            b, c = float(base["real_time"]), float(cur["real_time"])
            if b > 0:
                notes.append(
                    f"{name}: wall-clock {(c - b) / b:+.1%} vs baseline "
                    "(informational; hosts differ)"
                )

    # Zero-expected counters are checked against the RUN alone (every
    # benchmark, baselined or not): a stale baseline cannot grandfather
    # a revived fallback in. A benchmark that exports the counter in
    # the baseline but not in the run fails too — deleting the counter
    # must not silently disarm the tripwire.
    for name, cur in sorted(run.items()):
        for counter in EXPECT_ZERO:
            if counter not in cur:
                if name in baseline and counter in baseline[name]:
                    failures.append(
                        f"{name}: zero-expected counter {counter} "
                        "disappeared from the run"
                    )
                continue
            if float(cur[counter]) != 0.0:
                failures.append(
                    f"{name}: {counter} must be 0, got "
                    f"{float(cur[counter]):.0f} (the full-graph lasso "
                    "fallback is retired)"
                )

    for name in sorted(set(run) - set(baseline)):
        notes.append(f"{name}: no baseline yet (add it to the JSON)")

    if compared == 0:
        # A filter typo must not turn the gate into a silent no-op.
        failures.append("no baselined benchmark matched the run")

    for n in notes:
        print(f"note: {n}")
    if failures:
        print(f"\n{len(failures)} counter regression(s):", file=sys.stderr)
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {compared} benchmarks within counter baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
