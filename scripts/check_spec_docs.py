#!/usr/bin/env python3
"""Fail CI when a diagnostic code is missing from the docs.

The analyzer's diagnostic codes are declared as string constants in
src/analysis/diagnostics.h (``inline constexpr char kDiag...[] = "..."``).
Every one of them must appear in the diagnostic-code table of
docs/TOOLS.md — otherwise `has_analyze` can emit a code the reference
does not explain. Run from the repository root (the spec_docs_sync
ctest entry does); exits non-zero listing the undocumented codes.
"""

import re
import sys
from pathlib import Path

HEADER = Path("src/analysis/diagnostics.h")
DOC = Path("docs/TOOLS.md")

CODE_RE = re.compile(r'inline\s+constexpr\s+char\s+kDiag\w+\[\]\s*=\s*"([^"]+)"')


def main() -> int:
    for path in (HEADER, DOC):
        if not path.is_file():
            print(f"check_spec_docs: missing {path} (run from the repo root)",
                  file=sys.stderr)
            return 2

    codes = CODE_RE.findall(HEADER.read_text(encoding="utf-8"))
    if not codes:
        print(f"check_spec_docs: no kDiag* constants found in {HEADER}; "
              "the extraction regex is out of sync with the header",
              file=sys.stderr)
        return 2

    doc_text = DOC.read_text(encoding="utf-8")
    # A code counts as documented when it appears in backticks, the way
    # the table in docs/TOOLS.md renders every code.
    missing = [c for c in codes if f"`{c}`" not in doc_text]
    if missing:
        print(f"check_spec_docs: {len(missing)} diagnostic code(s) declared "
              f"in {HEADER} but absent from {DOC}:", file=sys.stderr)
        for code in missing:
            print(f"  {code}", file=sys.stderr)
        print("Document each code in the diagnostic-code table of "
              f"{DOC} (with an example) and re-run.", file=sys.stderr)
        return 1

    print(f"check_spec_docs: all {len(codes)} diagnostic codes documented "
          f"in {DOC}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
