// Appendix C.3 / Theorems 56-58: growth of the navigation-set bound
// h(T) per schema class. For fixed acyclic schemas h(T) is polynomial
// in the variable count; for linearly-cyclic it is exponential in the
// hierarchy depth; for cyclic it is a tower (saturates immediately).
#include <benchmark/benchmark.h>

#include "core/nav.h"
#include "schema/fk_graph.h"
#include "workloads.h"

namespace {

void BM_NavigationDepth(benchmark::State& state, has::SchemaClass cls) {
  const int depth = static_cast<int>(state.range(0));
  has::bench::Workload w =
      has::bench::MakeWorkload(cls, /*size=*/3, depth, false, false);
  std::vector<uint64_t> depths;
  for (auto _ : state) {
    depths = has::PaperNavigationDepths(w.system);
    benchmark::DoNotOptimize(depths);
  }
  state.counters["h_root"] = static_cast<double>(depths[0]);
  state.counters["saturated"] =
      depths[0] >= has::kSaturated ? 1.0 : 0.0;
}

void BM_Nav_Acyclic(benchmark::State& s) {
  BM_NavigationDepth(s, has::SchemaClass::kAcyclic);
}
void BM_Nav_LinearlyCyclic(benchmark::State& s) {
  BM_NavigationDepth(s, has::SchemaClass::kLinearlyCyclic);
}
void BM_Nav_Cyclic(benchmark::State& s) {
  BM_NavigationDepth(s, has::SchemaClass::kCyclic);
}

void BM_PathCounting(benchmark::State& state) {
  // F(n) growth on the cyclic schema: exponential in n.
  has::DatabaseSchema schema =
      has::bench::CyclicSchema(static_cast<int>(state.range(0)));
  has::FkGraph fk(schema);
  uint64_t f = 0;
  for (auto _ : state) {
    f = fk.MaxPaths(12);
    benchmark::DoNotOptimize(f);
  }
  state.counters["F(12)"] = static_cast<double>(f);
}

}  // namespace

BENCHMARK(BM_Nav_Acyclic)->DenseRange(1, 4);
BENCHMARK(BM_Nav_LinearlyCyclic)->DenseRange(1, 4);
BENCHMARK(BM_Nav_Cyclic)->DenseRange(1, 3);
BENCHMARK(BM_PathCounting)->DenseRange(2, 6);

BENCHMARK_MAIN();
