// Scalable HAS families regenerating the rows of the paper's Tables 1
// and 2: one family per schema class ({acyclic, linearly-cyclic,
// cyclic}) × {without, with artifact relations} × {without, with
// arithmetic}, parameterized by a size knob and hierarchy depth. The
// benchmark harness verifies a canonical safety property on each family
// member and reports the verifier's work (product states, coverability
// nodes, counter dimensions) — the measurable proxy for the paper's
// space bounds.
#ifndef HAS_BENCH_WORKLOADS_H_
#define HAS_BENCH_WORKLOADS_H_

#include "hltl/hltl.h"
#include "model/artifact_system.h"

namespace has {
namespace bench {

struct Workload {
  ArtifactSystem system;
  HltlProperty property;
  std::string name;
};

/// Schema builders per class. `size` scales the number of relations.
DatabaseSchema AcyclicSchema(int size);
DatabaseSchema LinearlyCyclicSchema(int size);
DatabaseSchema CyclicSchema(int size);

/// A depth-`depth` chain of tasks over the given schema; every task has
/// `width` extra ID variables navigating the schema, and optionally an
/// artifact relation and/or a linear-arithmetic guard. The property is
/// a hierarchical safety formula spanning all levels.
Workload MakeWorkload(SchemaClass schema_class, int size, int depth,
                      bool with_sets, bool with_arith);

/// Deeper-hierarchy family (beyond the Tables 1–2 rows): a chain of
/// `depth` (≥ 3 is the interesting regime) tasks over an acyclic
/// schema, with TWO relation-bound work services and an artifact
/// relation per level — the per-level branching widens the product and
/// every level of the recursion triggers child R_T queries, which is
/// what stresses the sharded explorer's oracle path.
Workload MakeDeepHierarchy(int depth, int size);

/// Adversarial cyclic-schema family: every relation sits on two dense
/// foreign-key cycles and tasks run work services over TWO distinct
/// relations plus an artifact relation, so navigation-closed iso types
/// blow up combinatorially — the worst case for the interning and
/// frontier-partitioning layers.
Workload MakeAdversarialCyclic(int size, int depth);

/// Multi-variable-set family (ROADMAP "wider artifact relations"):
/// every task's artifact relation S_T ranges over a TUPLE of
/// `set_width` distinct ID variables (the model's s̄_T), each bound to
/// a different relation by its own work service. Wider tuples mean
/// wider TS-isomorphism types — more counter dimensions per product —
/// and more set-insert/retrieve interleavings, which is what stresses
/// the coverability layer's antichain pruning and counter machinery.
/// (Width is one axis; the NUMBER of relations is the other — see
/// MakeMultiRelation.)
Workload MakeMultiSet(int size, int depth, int set_width);

/// Multi-relation family: every task declares `num_rels` artifact
/// relations A0 … A{k-1} (the model's S_T,1 … S_T,k), each over its own
/// ID variable with its own bind/store/load services, plus — from two
/// relations up — a `rotate` service retrieving from A0 and inserting
/// into A1 in ONE delta. Each relation contributes its own counter-
/// dimension group to every product VASS, so this family scales the
/// number of independent counter groups (where MakeMultiSet scales the
/// width of a single group).
Workload MakeMultiRelation(int size, int depth, int num_rels);

/// Sliceable multi-relation family (the cone-of-influence-slicing
/// showcase): MakeMultiRelation plus, per task, an insert-only audit
/// relation nothing ever retrieves, two never-mentioned variables, and
/// a statically dead service — all invisible to the property, so the
/// slicer (VerifierOptions::slice) strips them before the product VASS
/// is built. Slice-on rows must show strictly fewer counter_dims and
/// cov_nodes than their slice-off siblings at identical verdicts
/// (bench_slice and its CI counter gate).
Workload MakeSlicedMultiRelation(int size, int depth, int num_rels);

/// Commuting-services family (the partial-order-reduction showcase):
/// every task declares `width` artifact relations, each with ONE
/// insert-only store service over its own ID variable — pairwise
/// disjoint footprints, so all stores commute and every one is
/// statically ample-eligible (insert-only, unobserved by the property).
/// Without reduction the per-state fan-out grows with `width`; with
/// VerifierOptions::por the explorer follows a single store per state
/// until the inserts saturate, collapsing the interleaving lattice to
/// one diagonal. The retrieve-free design is deliberate: it isolates
/// the reduction from the antichain-pruning effects retrieves trigger.
Workload MakeCommutingServices(int width, int depth);

}  // namespace bench
}  // namespace has

#endif  // HAS_BENCH_WORKLOADS_H_
