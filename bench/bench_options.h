// Shared VerifierOptions construction for the counter-gated benchmark
// binaries. Every bench that feeds scripts/check_bench_counters.py MUST
// build its options through ApplyCommonOptions so a new verifier toggle
// lands in every bench row and in the CI gate at the same time — the
// bench_multirel/bench_pruning pair once drifted apart on exactly such
// a toggle, and the gate silently compared rows recorded under
// different configurations.
//
// The HAS_BENCH_POR environment variable ("0" forces partial-order
// reduction off) exists for the CI differential job: a POR-off run of
// the same binaries must reproduce the pre-POR baselines
// (bench/baselines/*_por_off.json) counter for counter.
// HAS_BENCH_SLICE works the same way for the property-directed slicer:
// "0" forces VerifierOptions::slice off so the slice-off run must
// reproduce the pre-slicer baselines (bench/baselines/*_slice_off.json).
#ifndef HAS_BENCH_BENCH_OPTIONS_H_
#define HAS_BENCH_BENCH_OPTIONS_H_

#include <cstdlib>
#include <cstring>

#include "core/verifier.h"

namespace has {
namespace bench {

/// The toggles a bench row may vary; everything else stays at the
/// VerifierOptions default so rows are comparable across binaries.
struct BenchToggles {
  int num_shards = 1;
  bool prune_coverability = true;
  bool por = true;
  bool slice = true;
};

inline VerifierOptions ApplyCommonOptions(const BenchToggles& toggles = {}) {
  VerifierOptions options;
  options.num_shards = toggles.num_shards;
  options.prune_coverability = toggles.prune_coverability;
  options.por = toggles.por;
  options.slice = toggles.slice;
  const char* env = std::getenv("HAS_BENCH_POR");
  if (env != nullptr && std::strcmp(env, "0") == 0) {
    options.por = false;
  }
  env = std::getenv("HAS_BENCH_SLICE");
  if (env != nullptr && std::strcmp(env, "0") == 0) {
    options.slice = false;
  }
  return options;
}

}  // namespace bench
}  // namespace has

#endif  // HAS_BENCH_BENCH_OPTIONS_H_
