// Antichain-pruning benchmark: end-to-end verification with
// VerifierOptions::prune_coverability off (arg 0) vs. on (arg 1, the
// default) per workload family, reporting the DETERMINISTIC
// exploration counters — coverability nodes/edges, dropped successors,
// deactivated nodes, antichain peak, recorded cover-edges, full-graph
// fallback count (pinned at 0 since the cover-edge lasso path landed),
// product states and interned types. The counters are
// schedule- and host-independent (identical at every shard count), so
// bench/baselines/bench_pruning.json doubles as a perf-regression
// oracle: scripts/check_bench_counters.py fails CI on unexplained
// counter growth while wall-clock stays informational (the recording
// host has 1 vCPU — see ROADMAP).
#include <benchmark/benchmark.h>

#include "bench_options.h"
#include "core/verifier.h"
#include "workloads.h"

namespace {

using has::bench::ApplyCommonOptions;
using has::bench::BenchToggles;
using has::bench::MakeAdversarialCyclic;
using has::bench::MakeDeepHierarchy;
using has::bench::MakeMultiSet;
using has::bench::MakeWorkload;
using has::bench::Workload;

void RunVerification(benchmark::State& state, const Workload& w) {
  const bool prune = state.range(0) != 0;
  has::RtStats stats;
  size_t states = 0;
  for (auto _ : state) {
    BenchToggles toggles;
    toggles.prune_coverability = prune;
    has::VerifierOptions options = ApplyCommonOptions(toggles);
    has::VerifyResult result = has::Verify(w.system, w.property, options);
    benchmark::DoNotOptimize(result.verdict);
    stats = result.stats;
    states += result.stats.cov_nodes + result.stats.product_states;
  }
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["prune"] = prune ? 1 : 0;
  // Deterministic per-verification counters (identical every
  // iteration and on every host — the regression-gate payload).
  state.counters["cov_nodes"] = static_cast<double>(stats.cov_nodes);
  state.counters["cov_edges"] = static_cast<double>(stats.cov_edges);
  state.counters["product_states"] =
      static_cast<double>(stats.product_states);
  state.counters["pooled_types"] = static_cast<double>(stats.pooled_types);
  state.counters["pruned_successors"] =
      static_cast<double>(stats.pruned_successors);
  state.counters["deactivated_nodes"] =
      static_cast<double>(stats.deactivated_nodes);
  state.counters["antichain_peak"] =
      static_cast<double>(stats.antichain_peak);
  state.counters["cover_edges"] = static_cast<double>(stats.cover_edges);
  state.counters["antichain_probes"] =
      static_cast<double>(stats.antichain_probes);
  state.counters["antichain_skipped_by_summary"] =
      static_cast<double>(stats.antichain_skipped_by_summary);
  state.counters["antichain_bucket_probes"] =
      static_cast<double>(stats.antichain_bucket_probes);
  state.counters["antichain_buckets_peak"] =
      static_cast<double>(stats.antichain_buckets_peak);
  state.counters["sparse_markings"] =
      static_cast<double>(stats.sparse_markings);
  state.counters["ample_reduced_successors"] =
      static_cast<double>(stats.ample_reduced_successors);
  state.counters["ample_full_expansions"] =
      static_cast<double>(stats.ample_full_expansions);
  // Always 0 since lasso analysis runs on the pruned graph itself;
  // scripts/check_bench_counters.py fails the gate if it ever revives.
  state.counters["full_graph_builds"] =
      static_cast<double>(stats.full_graph_builds);
  state.counters["sliced_services"] =
      static_cast<double>(stats.sliced_services);
  state.counters["sliced_dims"] = static_cast<double>(stats.sliced_dims);
  state.counters["diagnostics_emitted"] =
      static_cast<double>(stats.diagnostics_emitted);
}

const Workload& Table1Workload() {
  static auto* w = new Workload(MakeWorkload(
      has::SchemaClass::kAcyclic, /*size=*/3, /*depth=*/2,
      /*with_sets=*/true, /*with_arith=*/false));
  return *w;
}
const Workload& Table1CyclicWorkload() {
  static auto* w = new Workload(MakeWorkload(
      has::SchemaClass::kCyclic, /*size=*/3, /*depth=*/2,
      /*with_sets=*/true, /*with_arith=*/false));
  return *w;
}
const Workload& DeepWorkload() {
  static auto* w = new Workload(MakeDeepHierarchy(/*depth=*/4, /*size=*/3));
  return *w;
}
const Workload& AdversarialWorkload() {
  static auto* w =
      new Workload(MakeAdversarialCyclic(/*size=*/4, /*depth=*/2));
  return *w;
}
const Workload& MultiSetWorkload() {
  static auto* w = new Workload(MakeMultiSet(/*size=*/3, /*depth=*/2,
                                             /*set_width=*/2));
  return *w;
}

void BM_Pruning_Table1(benchmark::State& s) {
  RunVerification(s, Table1Workload());
}
void BM_Pruning_Table1Cyclic(benchmark::State& s) {
  RunVerification(s, Table1CyclicWorkload());
}
void BM_Pruning_Deep(benchmark::State& s) {
  RunVerification(s, DeepWorkload());
}
void BM_Pruning_AdversarialCyclic(benchmark::State& s) {
  RunVerification(s, AdversarialWorkload());
}
void BM_Pruning_MultiSet(benchmark::State& s) {
  RunVerification(s, MultiSetWorkload());
}

}  // namespace

BENCHMARK(BM_Pruning_Table1)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Pruning_Table1Cyclic)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Pruning_Deep)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Pruning_AdversarialCyclic)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Pruning_MultiSet)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
