#include "workloads.h"

#include <algorithm>

#include "common/strings.h"

namespace has {
namespace bench {

DatabaseSchema AcyclicSchema(int size) {
  // A star/snowflake chain: R0 -> R1 -> ... -> R_{size-1}.
  DatabaseSchema schema;
  for (int i = 0; i < size; ++i) {
    schema.AddRelation(StrCat("R", i));
  }
  for (int i = 0; i + 1 < size; ++i) {
    schema.relation(i).AddForeignKey("next", i + 1);
  }
  schema.relation(size - 1).AddNumericAttribute("val");
  return schema;
}

DatabaseSchema LinearlyCyclicSchema(int size) {
  // One simple cycle R0 -> R1 -> ... -> R_{size-1} -> R0 (each relation
  // on exactly one cycle), plus a numeric attribute.
  DatabaseSchema schema;
  for (int i = 0; i < size; ++i) {
    schema.AddRelation(StrCat("R", i));
  }
  for (int i = 0; i < size; ++i) {
    schema.relation(i).AddForeignKey("next", (i + 1) % size);
  }
  schema.relation(0).AddNumericAttribute("val");
  return schema;
}

DatabaseSchema CyclicSchema(int size) {
  // Dense cycles: every relation references two others.
  DatabaseSchema schema;
  for (int i = 0; i < size; ++i) {
    schema.AddRelation(StrCat("R", i));
  }
  for (int i = 0; i < size; ++i) {
    schema.relation(i).AddForeignKey("a", (i + 1) % size);
    schema.relation(i).AddForeignKey("b", (i + 2) % size);
  }
  schema.relation(0).AddNumericAttribute("val");
  return schema;
}

namespace {

/// Shared chain builder for the post-Tables families: a depth-`depth`
/// task chain over `schema` where every task runs one relation-bound
/// work service PER entry of `service_rels` (the per-level branching
/// factor), an artifact relation over `set_width` ID variables when
/// `with_sets`, and the same child-input/output plumbing and
/// hierarchical property as the Tables 1–2 families. Work service si
/// anchors set variable min(si, set_width-1) in its relation atom, so
/// every component of the artifact tuple is relation-bound by some
/// service.
Workload ChainWorkload(DatabaseSchema schema, std::string name, int depth,
                       const std::vector<RelationId>& service_rels,
                       bool with_sets, int set_width = 1) {
  Workload w;
  w.system.schema() = std::move(schema);
  w.name = std::move(name);

  TaskId prev = kNoTask;
  for (int level = 0; level < depth; ++level) {
    TaskId t = w.system.AddTask(StrCat("T", level), prev);
    Task& task = w.system.task(t);
    int x = task.vars().AddVar("x", VarSort::kId);
    int amount = task.vars().AddVar("amount", VarSort::kNumeric);
    // The artifact tuple s̄_T: x plus set_width-1 further ID variables.
    std::vector<int> set_tuple{x};
    for (int k = 1; k < set_width; ++k) {
      set_tuple.push_back(task.vars().AddVar(StrCat("s", k), VarSort::kId));
    }
    if (level > 0) {
      task.AddInput(x, /*parent x=*/0);
      task.AddOutput(/*parent amount=*/1, amount);
      task.SetOpeningPre(Condition::Not(Condition::IsNull(0)));
      LinearExpr close_e = LinearExpr::Var(amount);
      close_e.AddConstant(Rational(-1));
      task.SetClosingPre(
          Condition::Arith(LinearConstraint{close_e, Relop::kEq}));
    }
    for (size_t si = 0; si < service_rels.size(); ++si) {
      RelationId rel = service_rels[si];
      InternalService svc;
      svc.name = StrCat("work", si);
      svc.pre = Condition::True();
      std::vector<int> args{
          set_tuple[std::min(si, set_tuple.size() - 1)]};
      const Relation& r = w.system.schema().relation(rel);
      for (int a = 1; a < r.arity(); ++a) {
        if (r.attr(a).kind == AttrKind::kNumeric) {
          args.push_back(task.vars().AddVar(StrCat("n", si, "_", a),
                                            VarSort::kNumeric));
        } else {
          args.push_back(task.vars().AddVar(StrCat("f", si, "_", a),
                                            VarSort::kId));
        }
      }
      LinearExpr post_e = LinearExpr::Var(amount);
      post_e.AddConstant(Rational(-1));
      svc.post = Condition::And(
          Condition::Rel(rel, args),
          Condition::Arith(LinearConstraint{post_e, Relop::kEq}));
      task.AddInternalService(std::move(svc));
    }
    if (with_sets) {
      auto all_non_null = [&set_tuple]() {
        CondPtr cond = Condition::Not(Condition::IsNull(set_tuple[0]));
        for (size_t k = 1; k < set_tuple.size(); ++k) {
          cond = Condition::And(
              std::move(cond),
              Condition::Not(Condition::IsNull(set_tuple[k])));
        }
        return cond;
      };
      task.DeclareSet(set_tuple);
      InternalService store;
      store.name = "store";
      store.pre = all_non_null();
      store.post = Condition::True();
      store.MarkInsert();
      task.AddInternalService(std::move(store));
      InternalService load;
      load.name = "load";
      load.pre = Condition::True();
      load.post = all_non_null();
      load.MarkRetrieve();
      task.AddInternalService(std::move(load));
    }
    prev = t;
  }

  for (int level = 0; level < depth; ++level) {
    HltlNode node;
    node.task = level;
    if (level < depth - 1) {
      node.props.push_back(HltlProp::Child(level + 1));
    } else {
      LinearExpr e = LinearExpr::Var(1);  // amount
      e.AddConstant(Rational(-1));
      node.props.push_back(HltlProp::Cond(
          Condition::Arith(LinearConstraint{std::move(e), Relop::kEq})));
    }
    LtlPtr body = LtlFormula::Eventually(LtlFormula::Prop(0));
    if (level == 0) {
      body = LtlFormula::Always(LtlFormula::Not(LtlFormula::Prop(0)));
    }
    node.skeleton = std::move(body);
    w.property.AddNode(std::move(node));
  }
  return w;
}

}  // namespace

Workload MakeDeepHierarchy(int depth, int size) {
  if (size < 2) size = 2;
  std::vector<RelationId> rels{0, 1};
  return ChainWorkload(AcyclicSchema(size),
                       StrCat("deep/h", depth, "/n", size), depth, rels,
                       /*with_sets=*/true);
}

Workload MakeAdversarialCyclic(int size, int depth) {
  if (size < 3) size = 3;
  std::vector<RelationId> rels{0, 1};
  return ChainWorkload(CyclicSchema(size),
                       StrCat("adversarial-cyclic/n", size, "/h", depth),
                       depth, rels,
                       /*with_sets=*/true);
}

Workload MakeMultiSet(int size, int depth, int set_width) {
  if (set_width < 2) set_width = 2;
  // One relation per set variable so each tuple component navigates a
  // different part of the schema.
  if (size < set_width) size = set_width;
  std::vector<RelationId> rels;
  for (int k = 0; k < set_width; ++k) rels.push_back(k);
  return ChainWorkload(AcyclicSchema(size),
                       StrCat("multiset/w", set_width, "/n", size, "/h",
                              depth),
                       depth, rels,
                       /*with_sets=*/true, set_width);
}

Workload MakeMultiRelation(int size, int depth, int num_rels) {
  if (num_rels < 1) num_rels = 1;
  if (size < num_rels) size = num_rels;
  Workload w;
  w.system.schema() = AcyclicSchema(size);
  w.name = StrCat("multirel/k", num_rels, "/n", size, "/h", depth);

  TaskId prev = kNoTask;
  for (int level = 0; level < depth; ++level) {
    TaskId t = w.system.AddTask(StrCat("T", level), prev);
    Task& task = w.system.task(t);
    int x = task.vars().AddVar("x", VarSort::kId);
    int amount = task.vars().AddVar("amount", VarSort::kNumeric);
    if (level > 0) {
      task.AddInput(x, /*parent x=*/0);
      task.AddOutput(/*parent amount=*/1, amount);
      task.SetOpeningPre(Condition::Not(Condition::IsNull(0)));
      LinearExpr close_e = LinearExpr::Var(amount);
      close_e.AddConstant(Rational(-1));
      task.SetClosingPre(
          Condition::Arith(LinearConstraint{close_e, Relop::kEq}));
    }
    // The per-level work service drives the amount flag the hierarchy
    // property watches.
    {
      InternalService work;
      work.name = "work";
      work.pre = Condition::True();
      LinearExpr post_e = LinearExpr::Var(amount);
      post_e.AddConstant(Rational(-1));
      work.post = Condition::And(
          Condition::Rel(0, {x, task.vars().AddVar("f0", VarSort::kId)}),
          Condition::Arith(LinearConstraint{post_e, Relop::kEq}));
      task.AddInternalService(std::move(work));
    }
    // One artifact relation A{j} per j, each over its own ID variable
    // anchored in its own schema relation, with its own insert and
    // retrieve service.
    std::vector<int> svars;
    for (int j = 0; j < num_rels; ++j) {
      int sj = task.vars().AddVar(StrCat("s", j), VarSort::kId);
      svars.push_back(sj);
      int rel = task.AddSetRelation(StrCat("A", j), {sj});
      // The tuples are deliberately NOT schema-anchored: the per-
      // relation TS-type projections are then structurally identical
      // across relations and normalize to the SAME pooled TypeId —
      // exercising the (relation, TypeId) dimension keying that keeps
      // the relations' counter groups apart.
      InternalService store;
      store.name = StrCat("store", j);
      store.pre = Condition::Not(Condition::IsNull(sj));
      store.post = Condition::True();
      store.MarkInsert(rel);
      task.AddInternalService(std::move(store));
      InternalService load;
      load.name = StrCat("load", j);
      load.pre = Condition::True();
      load.post = Condition::Not(Condition::IsNull(sj));
      load.MarkRetrieve(rel);
      task.AddInternalService(std::move(load));
    }
    // Cross-relation delta: ONE service moving a tuple from A0 to A1
    // (-A0(s̄_A0) and +A1(s̄_A1) in the same δ) — the path single-
    // relation workloads can never exercise.
    if (num_rels >= 2) {
      InternalService rotate;
      rotate.name = "rotate";
      rotate.pre = Condition::Not(Condition::IsNull(svars[1]));
      rotate.post = Condition::Not(Condition::IsNull(svars[0]));
      rotate.MarkRetrieve(0);
      rotate.MarkInsert(1);
      task.AddInternalService(std::move(rotate));
    }
    prev = t;
  }

  for (int level = 0; level < depth; ++level) {
    HltlNode node;
    node.task = level;
    if (level < depth - 1) {
      node.props.push_back(HltlProp::Child(level + 1));
    } else {
      LinearExpr e = LinearExpr::Var(1);  // amount
      e.AddConstant(Rational(-1));
      node.props.push_back(HltlProp::Cond(
          Condition::Arith(LinearConstraint{std::move(e), Relop::kEq})));
    }
    LtlPtr body = LtlFormula::Eventually(LtlFormula::Prop(0));
    if (level == 0) {
      body = LtlFormula::Always(LtlFormula::Not(LtlFormula::Prop(0)));
    }
    node.skeleton = std::move(body);
    w.property.AddNode(std::move(node));
  }
  return w;
}

Workload MakeSlicedMultiRelation(int size, int depth, int num_rels) {
  Workload w = MakeMultiRelation(size, depth, num_rels);
  w.name = StrCat("sliced_", w.name);
  for (TaskId t = 0; t < w.system.num_tasks(); ++t) {
    Task& task = w.system.task(t);
    // Insert-only audit trail nothing ever retrieves: its tuple
    // variable appears in no condition, so relation AND variable are
    // invisible to the property and both get sliced. The logging
    // service itself stays (it is live) with the insert stripped.
    int audit_var = task.vars().AddVar("audit_s", VarSort::kId);
    int audit_rel = task.AddSetRelation("Audit", {audit_var});
    {
      InternalService log;
      log.name = "audit_log";
      log.pre = Condition::True();
      log.post = Condition::True();
      log.MarkInsert(audit_rel);
      task.AddInternalService(std::move(log));
    }
    // Never-mentioned variables and a statically dead service: pure
    // slice fodder the slice-off rows pay dimensions and successor
    // work for.
    task.vars().AddVar("junk_id", VarSort::kId);
    task.vars().AddVar("junk_num", VarSort::kNumeric);
    {
      InternalService dead;
      dead.name = "dead";
      LinearExpr lt = LinearExpr::Var(1);  // amount < 0
      LinearExpr gt = -LinearExpr::Var(1);  // amount > 0
      dead.pre = Condition::And(
          Condition::Arith(LinearConstraint{std::move(lt), Relop::kLt}),
          Condition::Arith(LinearConstraint{std::move(gt), Relop::kLt}));
      dead.post = Condition::True();
      task.AddInternalService(std::move(dead));
    }
  }
  return w;
}

Workload MakeCommutingServices(int width, int depth) {
  if (width < 1) width = 1;
  if (depth < 1) depth = 1;
  Workload w;
  w.system.schema() = AcyclicSchema(std::max(width, 2));
  w.name = StrCat("commuting/w", width, "/h", depth);

  TaskId prev = kNoTask;
  for (int level = 0; level < depth; ++level) {
    TaskId t = w.system.AddTask(StrCat("T", level), prev);
    Task& task = w.system.task(t);
    int x = task.vars().AddVar("x", VarSort::kId);
    int amount = task.vars().AddVar("amount", VarSort::kNumeric);
    if (level > 0) {
      task.AddInput(x, /*parent x=*/0);
      task.AddOutput(/*parent amount=*/1, amount);
      task.SetOpeningPre(Condition::Not(Condition::IsNull(0)));
      LinearExpr close_e = LinearExpr::Var(amount);
      close_e.AddConstant(Rational(-1));
      task.SetClosingPre(
          Condition::Arith(LinearConstraint{close_e, Relop::kEq}));
    }
    // The work service drives the amount flag the property watches; it
    // inserts nothing, so it is never ample and keeps every state's
    // expansion honest.
    {
      InternalService work;
      work.name = "work";
      work.pre = Condition::True();
      LinearExpr post_e = LinearExpr::Var(amount);
      post_e.AddConstant(Rational(-1));
      work.post = Condition::And(
          Condition::Rel(0, {x, task.vars().AddVar("f0", VarSort::kId)}),
          Condition::Arith(LinearConstraint{post_e, Relop::kEq}));
      task.AddInternalService(std::move(work));
    }
    // `width` insert-only stores over pairwise-disjoint relations and
    // variables: every pair commutes, and each store's post-condition
    // (True) holds everywhere, so each is a valid ample choice at any
    // state where it is enabled.
    for (int j = 0; j < width; ++j) {
      int sj = task.vars().AddVar(StrCat("s", j), VarSort::kId);
      int rel = task.AddSetRelation(StrCat("A", j), {sj});
      InternalService store;
      store.name = StrCat("store", j);
      store.pre = Condition::Not(Condition::IsNull(sj));
      store.post = Condition::True();
      store.MarkInsert(rel);
      task.AddInternalService(std::move(store));
    }
    prev = t;
  }

  for (int level = 0; level < depth; ++level) {
    HltlNode node;
    node.task = level;
    if (level < depth - 1) {
      node.props.push_back(HltlProp::Child(level + 1));
    } else {
      LinearExpr e = LinearExpr::Var(1);  // amount
      e.AddConstant(Rational(-1));
      node.props.push_back(HltlProp::Cond(
          Condition::Arith(LinearConstraint{std::move(e), Relop::kEq})));
    }
    LtlPtr body = LtlFormula::Eventually(LtlFormula::Prop(0));
    if (level == 0) {
      body = LtlFormula::Always(LtlFormula::Not(LtlFormula::Prop(0)));
    }
    node.skeleton = std::move(body);
    w.property.AddNode(std::move(node));
  }
  return w;
}

Workload MakeWorkload(SchemaClass schema_class, int size, int depth,
                      bool with_sets, bool with_arith) {
  Workload w;
  switch (schema_class) {
    case SchemaClass::kAcyclic:
      w.system.schema() = AcyclicSchema(size);
      break;
    case SchemaClass::kLinearlyCyclic:
      w.system.schema() = LinearlyCyclicSchema(size);
      break;
    case SchemaClass::kCyclic:
      w.system.schema() = CyclicSchema(size);
      break;
  }
  w.name = StrCat(SchemaClassName(schema_class), "/n", size, "/h", depth,
                  with_sets ? "/sets" : "", with_arith ? "/arith" : "");

  // A chain of tasks T0 (root) ⊃ T1 ⊃ ... ⊃ T_{depth-1}. Each task owns
  // an ID variable x navigated through R0 and a numeric amount; child
  // tasks receive x and report a numeric flag back.
  TaskId prev = kNoTask;
  for (int level = 0; level < depth; ++level) {
    TaskId t = w.system.AddTask(StrCat("T", level), prev);
    Task& task = w.system.task(t);
    int x = task.vars().AddVar("x", VarSort::kId);
    int amount = task.vars().AddVar("amount", VarSort::kNumeric);
    if (level > 0) {
      task.AddInput(x, /*parent x=*/0);
      task.AddOutput(/*parent amount=*/1, amount);
      task.SetOpeningPre(Condition::Not(Condition::IsNull(0)));
      CondPtr close_cond;
      if (with_arith) {
        // amount >= 1, i.e. 1 - amount <= 0.
        LinearExpr e = LinearExpr::Constant(Rational(1));
        e.AddTerm(amount, Rational(-1));
        close_cond = Condition::Arith(LinearConstraint{e, Relop::kLe});
      } else {
        LinearExpr e = LinearExpr::Var(amount);
        e.AddConstant(Rational(-1));
        close_cond = Condition::Arith(LinearConstraint{e, Relop::kEq});
      }
      task.SetClosingPre(close_cond);
    }
    // Work service: bind x to a tuple of R0 and update amount.
    {
      InternalService svc;
      svc.name = "work";
      svc.pre = Condition::True();
      std::vector<int> args{x};
      const Relation& r0 = w.system.schema().relation(0);
      // Extra variables for the relation atom's non-ID attributes.
      for (int a = 1; a < r0.arity(); ++a) {
        if (r0.attr(a).kind == AttrKind::kNumeric) {
          args.push_back(task.vars().AddVar(StrCat("n", a),
                                            VarSort::kNumeric));
        } else {
          args.push_back(task.vars().AddVar(StrCat("f", a), VarSort::kId));
        }
      }
      CondPtr post = Condition::Rel(0, args);
      if (with_arith) {
        LinearExpr e = LinearExpr::Constant(Rational(1));
        e.AddTerm(amount, Rational(-1));
        post = Condition::And(
            post, Condition::Arith(LinearConstraint{e, Relop::kLe}));
      } else {
        LinearExpr e = LinearExpr::Var(amount);
        e.AddConstant(Rational(-1));
        post = Condition::And(
            post, Condition::Arith(LinearConstraint{e, Relop::kEq}));
      }
      svc.post = std::move(post);
      task.AddInternalService(std::move(svc));
    }
    if (with_sets) {
      task.DeclareSet({x});
      InternalService store;
      store.name = "store";
      store.pre = Condition::Not(Condition::IsNull(x));
      store.post = Condition::True();
      store.MarkInsert();
      task.AddInternalService(std::move(store));
      InternalService load;
      load.name = "load";
      load.pre = Condition::True();
      load.post = Condition::Not(Condition::IsNull(x));
      load.MarkRetrieve();
      task.AddInternalService(std::move(load));
    }
    prev = t;
  }

  // Property: a nested [·]@T chain of depth `depth` exercising the
  // hierarchical machinery. Node `level` is over task `level` and
  // (below the root) claims "eventually the child's subrun / the amount
  // flag". Nodes are added root-first so node indices equal task ids.
  auto amount_atom = [&]() {
    LinearExpr e = LinearExpr::Var(1);  // amount
    e.AddConstant(Rational(-1));
    return HltlProp::Cond(Condition::Arith(LinearConstraint{
        std::move(e), with_arith ? Relop::kLe : Relop::kEq}));
  };
  for (int level = 0; level < depth; ++level) {
    HltlNode node;
    node.task = level;
    if (level < depth - 1) {
      node.props.push_back(HltlProp::Child(level + 1));
    } else {
      node.props.push_back(amount_atom());
    }
    LtlPtr body = LtlFormula::Eventually(LtlFormula::Prop(0));
    if (level == 0) {
      // Root claim: the chain of child obligations never discharges.
      // Its negation (what the verifier searches for) forces the
      // exploration to recurse through every level of the hierarchy.
      body = LtlFormula::Always(LtlFormula::Not(LtlFormula::Prop(0)));
    }
    node.skeleton = std::move(body);
    w.property.AddNode(std::move(node));
  }
  return w;
}

}  // namespace bench
}  // namespace has
