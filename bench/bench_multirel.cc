// Multi-relation benchmark: end-to-end verification of the
// MakeMultiRelation family as a function of the number of artifact
// relations per task (S_T,1 … S_T,k at k = 1/2/3), reporting the
// DETERMINISTIC exploration counters — coverability nodes/edges,
// product states, interned types, recorded cover-edges, full-graph
// fallback count (pinned at 0) — that feed the CI counter gate
// (scripts/check_bench_counters.py against
// bench/baselines/bench_multirel.json). Each relation owns its own
// counter-dimension group in every product VASS, so k scales the
// number of independent counter groups; wall-clock stays
// informational (1-vCPU recording host — see ROADMAP).
#include <benchmark/benchmark.h>

#include "bench_options.h"
#include "core/verifier.h"
#include "workloads.h"

namespace {

using has::bench::ApplyCommonOptions;
using has::bench::MakeMultiRelation;
using has::bench::Workload;

void RunVerification(benchmark::State& state, const Workload& w) {
  has::RtStats stats;
  size_t states = 0;
  for (auto _ : state) {
    has::VerifierOptions options = ApplyCommonOptions();
    has::VerifyResult result = has::Verify(w.system, w.property, options);
    benchmark::DoNotOptimize(result.verdict);
    stats = result.stats;
    states += result.stats.cov_nodes + result.stats.product_states;
  }
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  // Deterministic per-verification counters (identical every iteration
  // and on every host — the regression-gate payload).
  state.counters["cov_nodes"] = static_cast<double>(stats.cov_nodes);
  state.counters["cov_edges"] = static_cast<double>(stats.cov_edges);
  state.counters["product_states"] =
      static_cast<double>(stats.product_states);
  state.counters["pooled_types"] = static_cast<double>(stats.pooled_types);
  state.counters["counter_dims"] = static_cast<double>(stats.counter_dims);
  state.counters["cover_edges"] = static_cast<double>(stats.cover_edges);
  state.counters["antichain_probes"] =
      static_cast<double>(stats.antichain_probes);
  state.counters["antichain_skipped_by_summary"] =
      static_cast<double>(stats.antichain_skipped_by_summary);
  state.counters["antichain_bucket_probes"] =
      static_cast<double>(stats.antichain_bucket_probes);
  state.counters["antichain_buckets_peak"] =
      static_cast<double>(stats.antichain_buckets_peak);
  state.counters["sparse_markings"] =
      static_cast<double>(stats.sparse_markings);
  state.counters["ample_reduced_successors"] =
      static_cast<double>(stats.ample_reduced_successors);
  state.counters["ample_full_expansions"] =
      static_cast<double>(stats.ample_full_expansions);
  state.counters["full_graph_builds"] =
      static_cast<double>(stats.full_graph_builds);
}

void BM_MultiRelation(benchmark::State& s) {
  static auto* workloads = new std::vector<Workload>{
      MakeMultiRelation(/*size=*/3, /*depth=*/2, /*num_rels=*/1),
      MakeMultiRelation(/*size=*/3, /*depth=*/2, /*num_rels=*/2),
      MakeMultiRelation(/*size=*/3, /*depth=*/2, /*num_rels=*/3),
  };
  const auto& w = (*workloads)[static_cast<size_t>(s.range(0)) - 1];
  s.counters["num_rels"] = static_cast<double>(s.range(0));
  RunVerification(s, w);
}

}  // namespace

BENCHMARK(BM_MultiRelation)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
