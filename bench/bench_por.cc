// Partial-order-reduction benchmark: end-to-end verification with
// VerifierOptions::por off (arg0 = 0) vs. on (arg0 = 1, the default) on
// the commuting-services family (width = per-task count of independent
// insert-only stores — the reduction's best case) and on the
// MakeMultiRelation k = 3 row the ROADMAP flagged for its coverability
// blow-up. Reported counters are the DETERMINISTIC exploration payload
// the CI gate checks (scripts/check_bench_counters.py against
// bench/baselines/bench_por.json): the POR-on rows must show
// ample_reduced_successors > 0 and strictly fewer cov-nodes than their
// POR-off siblings, and both rows of a pair must reach the same
// verdict. Wall-clock stays informational (1-vCPU recording host).
#include <benchmark/benchmark.h>

#include "bench_options.h"
#include "core/verifier.h"
#include "workloads.h"

namespace {

using has::bench::ApplyCommonOptions;
using has::bench::BenchToggles;
using has::bench::MakeCommutingServices;
using has::bench::MakeMultiRelation;
using has::bench::Workload;

void RunVerification(benchmark::State& state, const Workload& w) {
  const bool por = state.range(0) != 0;
  has::RtStats stats;
  size_t states = 0;
  for (auto _ : state) {
    BenchToggles toggles;
    toggles.por = por;
    // Slicing strips the never-retrieved relations whose insert-only
    // store footprints make the commuting family ample-eligible, so the
    // reduction would (correctly) never fire on the sliced system. The
    // POR rows therefore run slice-off; the slicer has its own bench
    // (bench_slice) and gate.
    toggles.slice = false;
    has::VerifierOptions options = ApplyCommonOptions(toggles);
    has::VerifyResult result = has::Verify(w.system, w.property, options);
    benchmark::DoNotOptimize(result.verdict);
    stats = result.stats;
    states += result.stats.cov_nodes + result.stats.product_states;
  }
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["por"] = por ? 1 : 0;
  // Deterministic per-verification counters (identical every iteration
  // and on every host — the regression-gate payload).
  state.counters["cov_nodes"] = static_cast<double>(stats.cov_nodes);
  state.counters["cov_edges"] = static_cast<double>(stats.cov_edges);
  state.counters["product_states"] =
      static_cast<double>(stats.product_states);
  state.counters["pooled_types"] = static_cast<double>(stats.pooled_types);
  state.counters["cover_edges"] = static_cast<double>(stats.cover_edges);
  state.counters["antichain_probes"] =
      static_cast<double>(stats.antichain_probes);
  state.counters["antichain_skipped_by_summary"] =
      static_cast<double>(stats.antichain_skipped_by_summary);
  state.counters["antichain_bucket_probes"] =
      static_cast<double>(stats.antichain_bucket_probes);
  state.counters["antichain_buckets_peak"] =
      static_cast<double>(stats.antichain_buckets_peak);
  state.counters["sparse_markings"] =
      static_cast<double>(stats.sparse_markings);
  state.counters["ample_reduced_successors"] =
      static_cast<double>(stats.ample_reduced_successors);
  state.counters["ample_full_expansions"] =
      static_cast<double>(stats.ample_full_expansions);
  state.counters["full_graph_builds"] =
      static_cast<double>(stats.full_graph_builds);
  state.counters["sliced_services"] =
      static_cast<double>(stats.sliced_services);
  state.counters["sliced_dims"] = static_cast<double>(stats.sliced_dims);
  state.counters["diagnostics_emitted"] =
      static_cast<double>(stats.diagnostics_emitted);
}

const Workload& CommutingWorkload(int width) {
  static auto* workloads = new std::vector<Workload>{
      MakeCommutingServices(/*width=*/2, /*depth=*/2),
      MakeCommutingServices(/*width=*/3, /*depth=*/2),
      MakeCommutingServices(/*width=*/4, /*depth=*/2),
  };
  return (*workloads)[static_cast<size_t>(width - 2)];
}
const Workload& MultiRelWorkload() {
  static auto* w =
      new Workload(MakeMultiRelation(/*size=*/3, /*depth=*/2, /*num_rels=*/3));
  return *w;
}

// range(0) = por, range(1) = width.
void BM_Por_Commuting(benchmark::State& s) {
  s.counters["width"] = static_cast<double>(s.range(1));
  RunVerification(s, CommutingWorkload(static_cast<int>(s.range(1))));
}
void BM_Por_MultiRelation(benchmark::State& s) {
  RunVerification(s, MultiRelWorkload());
}

}  // namespace

BENCHMARK(BM_Por_Commuting)
    ->Args({0, 2})->Args({1, 2})
    ->Args({0, 3})->Args({1, 3})
    ->Args({0, 4})->Args({1, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Por_MultiRelation)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
