// Table 2: space complexity WITH arithmetic. Same families as Table 1
// with linear-arithmetic guards switched on; additionally reports the
// size of the Hierarchical Cell Decomposition — the paper's driver of
// the extra exponential.
#include <benchmark/benchmark.h>

#include "core/verifier.h"
#include "workloads.h"

namespace {

void RunCell(benchmark::State& state, has::SchemaClass schema_class,
             bool with_sets) {
  const int size = static_cast<int>(state.range(0));
  has::bench::Workload w = has::bench::MakeWorkload(
      schema_class, size, /*depth=*/2, with_sets, /*with_arith=*/true);
  has::VerifierOptions options;
  options.max_nav_depth = 2;
  has::VerifyResult result;
  for (auto _ : state) {
    result = has::Verify(w.system, w.property, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["N"] = w.system.SizeMeasure();
  state.counters["product_states"] =
      static_cast<double>(result.stats.product_states);
  state.counters["cov_nodes"] = static_cast<double>(result.stats.cov_nodes);
  state.counters["hcd_polys"] = static_cast<double>(result.hcd_polys);
  state.SetLabel(has::VerdictName(result.verdict));
}

void BM_Acyclic_Arith(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kAcyclic, false);
}
void BM_Acyclic_Sets_Arith(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kAcyclic, true);
}
void BM_LinearlyCyclic_Arith(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kLinearlyCyclic, false);
}
void BM_LinearlyCyclic_Sets_Arith(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kLinearlyCyclic, true);
}
void BM_Cyclic_Arith(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kCyclic, false);
}
void BM_Cyclic_Sets_Arith(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kCyclic, true);
}

}  // namespace

BENCHMARK(BM_Acyclic_Arith)->DenseRange(2, 4);
BENCHMARK(BM_Acyclic_Sets_Arith)->DenseRange(2, 4);
BENCHMARK(BM_LinearlyCyclic_Arith)->DenseRange(2, 4);
BENCHMARK(BM_LinearlyCyclic_Sets_Arith)->DenseRange(2, 4);
BENCHMARK(BM_Cyclic_Arith)->DenseRange(3, 4);
BENCHMARK(BM_Cyclic_Sets_Arith)->DenseRange(3, 4);

BENCHMARK_MAIN();
