// Interning microbenchmark: the hash-consed TypePool against the old
// Signature()+std::map<std::string,…> memoization path, on streams of
// partial isomorphism types produced by the symbolic successor relation
// over the Table 1 (no arithmetic) and Table 2 (arithmetic) workload
// families. Reported counters:
//   states_per_sec — interned types per second (the acceptance metric),
//   peak_memo      — distinct canonical types at the end of one pass.
// A recorded baseline lives in bench/baselines/bench_interning.json.
#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "core/successor.h"
#include "core/type_pool.h"
#include "workloads.h"

namespace {

using has::PartialIsoType;
using has::SymbolicConfig;

/// A raw (un-deduplicated) stream of normalized iso types, produced by
/// breadth-first successor enumeration over every task of the workload.
/// Duplicates are deliberately kept: the stream replays the mixture of
/// memo hits and misses the verifier's hot path sees.
std::vector<PartialIsoType> BuildCorpus(const has::bench::Workload& w,
                                        size_t target) {
  std::vector<PartialIsoType> corpus;
  has::VerifierOptions options;
  options.max_nav_depth = 2;
  for (has::TaskId t = 0;
       t < w.system.num_tasks() && corpus.size() < target; ++t) {
    has::TaskContext ctx(&w.system, nullptr, t, options, nullptr);
    const has::Task& task = w.system.task(t);
    PartialIsoType empty(&w.system.schema(), &task.vars(), ctx.nav_depth());
    bool truncated = false;
    std::vector<SymbolicConfig> frontier =
        has::EnumerateOpening(ctx, empty, has::Cell(), &truncated);
    for (int round = 0; round < 2 && corpus.size() < target; ++round) {
      std::vector<SymbolicConfig> next_frontier;
      for (const SymbolicConfig& config : frontier) {
        if (corpus.size() >= target) break;
        corpus.push_back(config.iso);
        for (size_t i = 0; i < task.services().size(); ++i) {
          const has::InternalService& svc =
              task.service(static_cast<int>(i));
          if (ctx.EvalSym(*svc.pre, config) != has::Truth::kTrue) continue;
          std::vector<has::InternalSuccessor> succs =
              has::EnumerateInternal(ctx, config, svc, &truncated);
          for (has::InternalSuccessor& s : succs) {
            if (corpus.size() >= target) break;
            corpus.push_back(s.next.iso);
            next_frontier.push_back(std::move(s.next));
          }
        }
      }
      frontier = std::move(next_frontier);
    }
  }
  return corpus;
}

const std::vector<PartialIsoType>& Corpus(bool with_arith) {
  static auto* table1 = new std::vector<PartialIsoType>(BuildCorpus(
      has::bench::MakeWorkload(has::SchemaClass::kAcyclic, /*size=*/3,
                               /*depth=*/2, /*with_sets=*/true,
                               /*with_arith=*/false),
      4000));
  static auto* table2 = new std::vector<PartialIsoType>(BuildCorpus(
      has::bench::MakeWorkload(has::SchemaClass::kAcyclic, /*size=*/3,
                               /*depth=*/2, /*with_sets=*/true,
                               /*with_arith=*/true),
      4000));
  return with_arith ? *table2 : *table1;
}

/// The pre-refactor memoization: serialize the canonical form into a
/// string and look it up in a red-black tree.
void BM_Interning_StringMap(benchmark::State& state, bool with_arith) {
  const std::vector<PartialIsoType>& corpus = Corpus(with_arith);
  size_t peak = 0;
  for (auto _ : state) {
    std::map<std::string, int> index;
    std::vector<PartialIsoType> pool;
    for (const PartialIsoType& t : corpus) {
      std::string sig = t.Signature();
      auto it = index.find(sig);
      if (it == index.end()) {
        index.emplace(std::move(sig), static_cast<int>(pool.size()));
        pool.push_back(t);
      }
      benchmark::DoNotOptimize(it);
    }
    peak = index.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus.size()));
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(corpus.size()),
      benchmark::Counter::kIsRate);
  state.counters["peak_memo"] = static_cast<double>(peak);
}

/// The hash-consed TypePool path.
void BM_Interning_TypePool(benchmark::State& state, bool with_arith) {
  const std::vector<PartialIsoType>& corpus = Corpus(with_arith);
  size_t peak = 0;
  for (auto _ : state) {
    has::TypePool pool;
    for (const PartialIsoType& t : corpus) {
      has::TypeId id = pool.InternNormalized(t);
      benchmark::DoNotOptimize(id);
    }
    peak = pool.num_types();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus.size()));
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(corpus.size()),
      benchmark::Counter::kIsRate);
  state.counters["peak_memo"] = static_cast<double>(peak);
}

void BM_Table1_StringMap(benchmark::State& s) {
  BM_Interning_StringMap(s, false);
}
void BM_Table1_TypePool(benchmark::State& s) {
  BM_Interning_TypePool(s, false);
}
void BM_Table2_StringMap(benchmark::State& s) {
  BM_Interning_StringMap(s, true);
}
void BM_Table2_TypePool(benchmark::State& s) {
  BM_Interning_TypePool(s, true);
}

}  // namespace

BENCHMARK(BM_Table1_StringMap);
BENCHMARK(BM_Table1_TypePool);
BENCHMARK(BM_Table2_StringMap);
BENCHMARK(BM_Table2_TypePool);

BENCHMARK_MAIN();
