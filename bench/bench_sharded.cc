// Sharded-exploration benchmark: end-to-end verification throughput
// (coverability nodes + product states per second) as a function of
// VerifierOptions::num_shards (1/2/4/8) on the Table 1/Table 2 workload
// families and on the two post-Tables families (deep hierarchy,
// adversarial cyclic schema). The sharded explorer is deterministic and
// node-identical to the sequential one, so every row of one family does
// exactly the same symbolic work — the ratio between shard counts is a
// pure parallel-efficiency measurement. Recorded baselines live in
// bench/baselines/bench_sharded.json (per-shard-count rows; note the
// recording host's core count — speedups need real cores).
#include <benchmark/benchmark.h>

#include "bench_options.h"
#include "core/verifier.h"
#include "workloads.h"

namespace {

using has::bench::ApplyCommonOptions;
using has::bench::BenchToggles;
using has::bench::MakeAdversarialCyclic;
using has::bench::MakeDeepHierarchy;
using has::bench::MakeWorkload;
using has::bench::Workload;

void RunVerification(benchmark::State& state, const Workload& w) {
  const int num_shards = static_cast<int>(state.range(0));
  size_t states = 0;
  bool violated = false;
  has::RtStats stats;
  for (auto _ : state) {
    BenchToggles toggles;
    toggles.num_shards = num_shards;
    has::VerifierOptions options = ApplyCommonOptions(toggles);
    has::VerifyResult result = has::Verify(w.system, w.property, options);
    violated = result.verdict == has::Verdict::kViolated;
    benchmark::DoNotOptimize(violated);
    stats = result.stats;
    states += result.stats.cov_nodes + result.stats.product_states;
  }
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["shards"] = static_cast<double>(num_shards);
  // Deterministic exploration counters: the sharded build is node-
  // identical to the sequential one, so these must agree ACROSS shard
  // counts as well as across hosts — scripts/check_bench_counters.py
  // gates them per row, which catches sharded-determinism regressions
  // in the Release CI job (not just in tests).
  state.counters["cov_nodes"] = static_cast<double>(stats.cov_nodes);
  state.counters["cov_edges"] = static_cast<double>(stats.cov_edges);
  state.counters["product_states"] =
      static_cast<double>(stats.product_states);
  state.counters["pooled_types"] = static_cast<double>(stats.pooled_types);
  state.counters["cover_edges"] = static_cast<double>(stats.cover_edges);
  // Antichain probes happen only in the serial replay of the
  // sequential decision order, so the probe counters are shard-count-
  // invariant too — the --exact gate on these rows is what proves it
  // in CI.
  state.counters["antichain_probes"] =
      static_cast<double>(stats.antichain_probes);
  state.counters["antichain_skipped_by_summary"] =
      static_cast<double>(stats.antichain_skipped_by_summary);
  state.counters["antichain_bucket_probes"] =
      static_cast<double>(stats.antichain_bucket_probes);
  state.counters["antichain_buckets_peak"] =
      static_cast<double>(stats.antichain_buckets_peak);
  state.counters["sparse_markings"] =
      static_cast<double>(stats.sparse_markings);
  // The ample-prefix replay runs in the same serial walk, so the
  // POR counters share that shard-count invariance.
  state.counters["ample_reduced_successors"] =
      static_cast<double>(stats.ample_reduced_successors);
  state.counters["ample_full_expansions"] =
      static_cast<double>(stats.ample_full_expansions);
  state.counters["full_graph_builds"] =
      static_cast<double>(stats.full_graph_builds);
  state.counters["sliced_services"] =
      static_cast<double>(stats.sliced_services);
  state.counters["sliced_dims"] = static_cast<double>(stats.sliced_dims);
  state.counters["diagnostics_emitted"] =
      static_cast<double>(stats.diagnostics_emitted);
}

const Workload& Table1Workload() {
  static auto* w = new Workload(MakeWorkload(
      has::SchemaClass::kAcyclic, /*size=*/3, /*depth=*/2,
      /*with_sets=*/true, /*with_arith=*/false));
  return *w;
}
const Workload& Table2Workload() {
  static auto* w = new Workload(MakeWorkload(
      has::SchemaClass::kAcyclic, /*size=*/3, /*depth=*/2,
      /*with_sets=*/true, /*with_arith=*/true));
  return *w;
}
const Workload& DeepWorkload() {
  static auto* w = new Workload(MakeDeepHierarchy(/*depth=*/4, /*size=*/3));
  return *w;
}
const Workload& AdversarialWorkload() {
  static auto* w =
      new Workload(MakeAdversarialCyclic(/*size=*/4, /*depth=*/2));
  return *w;
}

void BM_Sharded_Table1(benchmark::State& s) {
  RunVerification(s, Table1Workload());
}
void BM_Sharded_Table2(benchmark::State& s) {
  RunVerification(s, Table2Workload());
}
void BM_Sharded_Deep(benchmark::State& s) { RunVerification(s, DeepWorkload()); }
void BM_Sharded_AdversarialCyclic(benchmark::State& s) {
  RunVerification(s, AdversarialWorkload());
}

}  // namespace

BENCHMARK(BM_Sharded_Table1)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Sharded_Table2)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Sharded_Deep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Sharded_AdversarialCyclic)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
