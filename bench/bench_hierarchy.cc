// Hierarchy-depth ablation (the h parameter of Tables 1 and 2): the
// paper's bounds are towers/exponents in the depth of the task tree;
// this bench sweeps depth at fixed schema size and reports the
// verifier's work growth.
#include <benchmark/benchmark.h>

#include "core/verifier.h"
#include "workloads.h"

namespace {

void BM_Depth(benchmark::State& state, bool with_sets) {
  const int depth = static_cast<int>(state.range(0));
  has::bench::Workload w = has::bench::MakeWorkload(
      has::SchemaClass::kAcyclic, /*size=*/2, depth, with_sets,
      /*with_arith=*/false);
  has::VerifierOptions options;
  options.max_nav_depth = 2;
  has::VerifyResult result;
  for (auto _ : state) {
    result = has::Verify(w.system, w.property, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["rt_queries"] = static_cast<double>(result.stats.queries);
  state.counters["product_states"] =
      static_cast<double>(result.stats.product_states);
  state.SetLabel(has::VerdictName(result.verdict));
}

void BM_Depth_NoSets(benchmark::State& s) { BM_Depth(s, false); }
void BM_Depth_Sets(benchmark::State& s) { BM_Depth(s, true); }

}  // namespace

BENCHMARK(BM_Depth_NoSets)->DenseRange(1, 4);
BENCHMARK(BM_Depth_Sets)->DenseRange(1, 3);

BENCHMARK_MAIN();
