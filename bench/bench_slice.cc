// Cone-of-influence-slicing benchmark: end-to-end verification with
// VerifierOptions::slice off (arg0 = 0) vs. on (arg0 = 1, the default)
// on the MakeSlicedMultiRelation family — MakeMultiRelation carrying an
// insert-only audit relation, never-mentioned variables, and a dead
// service per task, all invisible to the property. Reported counters
// are the DETERMINISTIC exploration payload the CI gate checks
// (scripts/check_bench_counters.py against
// bench/baselines/bench_slice.json): the slice-on rows must show
// sliced_services/sliced_dims > 0 and strictly fewer counter_dims and
// cov_nodes than their slice-off siblings, and both rows of a pair must
// reach the same verdict. Wall-clock stays informational (1-vCPU
// recording host).
#include <benchmark/benchmark.h>

#include "bench_options.h"
#include "core/verifier.h"
#include "workloads.h"

namespace {

using has::bench::ApplyCommonOptions;
using has::bench::BenchToggles;
using has::bench::MakeSlicedMultiRelation;
using has::bench::Workload;

void RunVerification(benchmark::State& state, const Workload& w) {
  const bool slice = state.range(0) != 0;
  has::RtStats stats;
  size_t states = 0;
  for (auto _ : state) {
    BenchToggles toggles;
    toggles.slice = slice;
    has::VerifierOptions options = ApplyCommonOptions(toggles);
    has::VerifyResult result = has::Verify(w.system, w.property, options);
    benchmark::DoNotOptimize(result.verdict);
    stats = result.stats;
    states += result.stats.cov_nodes + result.stats.product_states;
  }
  state.counters["states_per_sec"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["slice"] = slice ? 1 : 0;
  // Deterministic per-verification counters (identical every iteration
  // and on every host — the regression-gate payload).
  state.counters["cov_nodes"] = static_cast<double>(stats.cov_nodes);
  state.counters["cov_edges"] = static_cast<double>(stats.cov_edges);
  state.counters["product_states"] =
      static_cast<double>(stats.product_states);
  state.counters["pooled_types"] = static_cast<double>(stats.pooled_types);
  state.counters["counter_dims"] = static_cast<double>(stats.counter_dims);
  state.counters["cover_edges"] = static_cast<double>(stats.cover_edges);
  state.counters["antichain_probes"] =
      static_cast<double>(stats.antichain_probes);
  state.counters["antichain_skipped_by_summary"] =
      static_cast<double>(stats.antichain_skipped_by_summary);
  state.counters["antichain_bucket_probes"] =
      static_cast<double>(stats.antichain_bucket_probes);
  state.counters["antichain_buckets_peak"] =
      static_cast<double>(stats.antichain_buckets_peak);
  state.counters["sparse_markings"] =
      static_cast<double>(stats.sparse_markings);
  state.counters["ample_reduced_successors"] =
      static_cast<double>(stats.ample_reduced_successors);
  state.counters["ample_full_expansions"] =
      static_cast<double>(stats.ample_full_expansions);
  state.counters["full_graph_builds"] =
      static_cast<double>(stats.full_graph_builds);
  state.counters["sliced_services"] =
      static_cast<double>(stats.sliced_services);
  state.counters["sliced_dims"] = static_cast<double>(stats.sliced_dims);
  state.counters["diagnostics_emitted"] =
      static_cast<double>(stats.diagnostics_emitted);
}

const Workload& SlicedWorkload(int num_rels) {
  static auto* workloads = new std::vector<Workload>{
      MakeSlicedMultiRelation(/*size=*/3, /*depth=*/2, /*num_rels=*/1),
      MakeSlicedMultiRelation(/*size=*/3, /*depth=*/2, /*num_rels=*/2),
  };
  return (*workloads)[static_cast<size_t>(num_rels - 1)];
}

// range(0) = slice, range(1) = num_rels.
void BM_Slice_MultiRelation(benchmark::State& s) {
  s.counters["num_rels"] = static_cast<double>(s.range(1));
  RunVerification(s, SlicedWorkload(static_cast<int>(s.range(1))));
}

}  // namespace

BENCHMARK(BM_Slice_MultiRelation)
    ->Args({0, 1})->Args({1, 1})
    ->Args({0, 2})->Args({1, 2})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
