// Table 1: space complexity of verification WITHOUT arithmetic, per
// schema class × artifact-relation usage. The measured proxies for the
// paper's space bounds are the verifier's explored product states,
// coverability nodes and counter dimensions; the expected shape per row
// is the paper's: acyclic < linearly-cyclic < cyclic growth in the spec
// size N, and a further jump when artifact relations are on.
#include <benchmark/benchmark.h>

#include "core/verifier.h"
#include "workloads.h"

namespace {

void RunCell(benchmark::State& state, has::SchemaClass schema_class,
             bool with_sets) {
  const int size = static_cast<int>(state.range(0));
  has::bench::Workload w = has::bench::MakeWorkload(
      schema_class, size, /*depth=*/2, with_sets, /*with_arith=*/false);
  has::VerifierOptions options;
  options.max_nav_depth = 2;
  has::VerifyResult result;
  for (auto _ : state) {
    result = has::Verify(w.system, w.property, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["N"] = w.system.SizeMeasure();
  state.counters["product_states"] =
      static_cast<double>(result.stats.product_states);
  state.counters["cov_nodes"] = static_cast<double>(result.stats.cov_nodes);
  state.counters["counter_dims"] =
      static_cast<double>(result.stats.counter_dims);
  state.SetLabel(has::VerdictName(result.verdict));
}

void BM_Acyclic_NoSets(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kAcyclic, false);
}
void BM_Acyclic_Sets(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kAcyclic, true);
}
void BM_LinearlyCyclic_NoSets(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kLinearlyCyclic, false);
}
void BM_LinearlyCyclic_Sets(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kLinearlyCyclic, true);
}
void BM_Cyclic_NoSets(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kCyclic, false);
}
void BM_Cyclic_Sets(benchmark::State& s) {
  RunCell(s, has::SchemaClass::kCyclic, true);
}

}  // namespace

BENCHMARK(BM_Acyclic_NoSets)->DenseRange(2, 5);
BENCHMARK(BM_Acyclic_Sets)->DenseRange(2, 5);
BENCHMARK(BM_LinearlyCyclic_NoSets)->DenseRange(2, 5);
BENCHMARK(BM_LinearlyCyclic_Sets)->DenseRange(2, 5);
BENCHMARK(BM_Cyclic_NoSets)->DenseRange(3, 5);
BENCHMARK(BM_Cyclic_Sets)->DenseRange(3, 5);

BENCHMARK_MAIN();
