// Dominance-kernel microbenchmark: all-pairs DominanceLeq over a
// fixed-seed corpus of canonical markings, at dims 8/32/128 and dense
// vs sparse support, with and without the per-dimension-group support-
// summary prefilter (src/vass/marking.h). Two deterministic kernel-
// semantics counters feed the CI gate (scripts/check_bench_counters.py
// against bench/baselines/bench_marking.json, run with --exact):
//   - leq_true: number of ≤ pairs in the corpus. Identical between the
//     filtered and unfiltered rows (the summary filter is sound) and
//     between the scalar and SIMD kernel builds (CI runs the gate in
//     both, so a lane bug in either path fails the gate, not just the
//     unit test).
//   - summary_pass: pairs surviving the prefilter — pins the filter's
//     selectivity on the corpus.
// Wall-clock (pairs_per_sec) stays informational as everywhere else.
//
// The corpus generator uses raw mt19937 draws (the engine is fully
// specified by the standard) instead of std distributions (which are
// implementation-defined), so the counters reproduce across standard
// libraries.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "vass/marking.h"

namespace {

using has::DominanceLeq;
using has::kOmega;
using has::MarkingArena;
using has::MarkingView;
using has::SummaryMayDominate;
using has::SupportSummary;

constexpr size_t kCorpusSize = 128;

struct Corpus {
  MarkingArena arena;
  std::vector<MarkingView> views;
  std::vector<uint64_t> summaries;
};

Corpus MakeCorpus(int dims, bool dense, bool auto_repr = false) {
  Corpus c;
  std::mt19937 rng(0x5eed0000u + static_cast<unsigned>(dims) * 2u +
                   (dense ? 1u : 0u));
  // Percent thresholds; small value range keeps ≤ pairs frequent
  // enough that the kernel's early exit and full-length paths both get
  // exercised.
  const uint32_t pct_nonzero = dense ? 90 : 25;
  const uint32_t pct_omega = dense ? 10 : 5;
  std::vector<int64_t> m;
  for (size_t i = 0; i < kCorpusSize; ++i) {
    m.assign(static_cast<size_t>(dims), 0);
    for (int d = 0; d < dims; ++d) {
      if (rng() % 100 >= pct_nonzero) continue;
      m[static_cast<size_t>(d)] =
          rng() % 100 < pct_omega ? kOmega
                                  : static_cast<int64_t>(1 + rng() % 3);
    }
    while (!m.empty() && m.back() == 0) m.pop_back();  // canonical form
    c.views.push_back(auto_repr ? c.arena.AddAuto(m.data(), m.size())
                                : c.arena.Add(m));
    c.summaries.push_back(SupportSummary(c.views.back()));
  }
  return c;
}

void BM_Dominance(benchmark::State& state) {
  const Corpus c = MakeCorpus(static_cast<int>(state.range(0)),
                              state.range(1) != 0);
  size_t leq_true = 0;
  size_t pairs = 0;
  for (auto _ : state) {
    size_t count = 0;
    for (size_t i = 0; i < kCorpusSize; ++i) {
      for (size_t j = 0; j < kCorpusSize; ++j) {
        count += DominanceLeq(c.views[i], c.views[j]) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(count);
    leq_true = count;
    pairs += kCorpusSize * kCorpusSize;
  }
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs), benchmark::Counter::kIsRate);
  state.counters["leq_true"] = static_cast<double>(leq_true);
}

void BM_DominanceSummaryFiltered(benchmark::State& state) {
  const Corpus c = MakeCorpus(static_cast<int>(state.range(0)),
                              state.range(1) != 0);
  size_t leq_true = 0;
  size_t summary_pass = 0;
  size_t pairs = 0;
  for (auto _ : state) {
    size_t count = 0;
    size_t pass = 0;
    for (size_t i = 0; i < kCorpusSize; ++i) {
      const uint64_t si = c.summaries[i];
      for (size_t j = 0; j < kCorpusSize; ++j) {
        if (!SummaryMayDominate(si, c.summaries[j])) continue;
        ++pass;
        count += DominanceLeq(c.views[i], c.views[j]) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(count);
    leq_true = count;
    summary_pass = pass;
    pairs += kCorpusSize * kCorpusSize;
  }
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs), benchmark::Counter::kIsRate);
  // Must EQUAL the unfiltered row's leq_true: the prefilter only skips
  // pairs that cannot be ≤. The --exact gate holds both rows to it.
  state.counters["leq_true"] = static_cast<double>(leq_true);
  state.counters["summary_pass"] = static_cast<double>(summary_pass);
}

// Same corpus VALUES as BM_Dominance, but stored via MarkingArena::
// AddAuto, so markings below the density threshold land in the sparse
// (dimension, value)-pair representation and the all-pairs loop drives
// the sparse-sparse / sparse-dense / dense-sparse DominanceLeq paths.
// leq_true is gated and must EQUAL the matching BM_Dominance row (the
// representation cannot change the order); sparse_markings pins how
// many of the 128 markings the selection rule turned sparse — the
// product workloads are all narrower than the sparse threshold, so
// this row is where the sparse path gets nonzero CI coverage.
void BM_DominanceAutoRepr(benchmark::State& state) {
  const Corpus c = MakeCorpus(static_cast<int>(state.range(0)),
                              state.range(1) != 0, /*auto_repr=*/true);
  size_t leq_true = 0;
  size_t pairs = 0;
  for (auto _ : state) {
    size_t count = 0;
    for (size_t i = 0; i < kCorpusSize; ++i) {
      for (size_t j = 0; j < kCorpusSize; ++j) {
        count += DominanceLeq(c.views[i], c.views[j]) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(count);
    leq_true = count;
    pairs += kCorpusSize * kCorpusSize;
  }
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs), benchmark::Counter::kIsRate);
  state.counters["leq_true"] = static_cast<double>(leq_true);
  state.counters["sparse_markings"] =
      static_cast<double>(c.arena.sparse_markings());
}

}  // namespace

// Args: {dims, dense}. dims 8/32/128 brackets the products seen in the
// bench families (narrow Table-1 products up to multi-relation k=3);
// 128 also exceeds the 32-dim group wrap, so summaries saturate.
BENCHMARK(BM_Dominance)
    ->Args({8, 0})->Args({8, 1})
    ->Args({32, 0})->Args({32, 1})
    ->Args({128, 0})->Args({128, 1})
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(BM_DominanceSummaryFiltered)
    ->Args({8, 0})->Args({8, 1})
    ->Args({32, 0})->Args({32, 1})
    ->Args({128, 0})->Args({128, 1})
    ->Unit(benchmark::kMicrosecond)->UseRealTime();
// Sparse-support rows only: the dense corpus never crosses the AddAuto
// density threshold, so its auto rows would just repeat BM_Dominance.
BENCHMARK(BM_DominanceAutoRepr)
    ->Args({8, 0})
    ->Args({32, 0})
    ->Args({128, 0})
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

BENCHMARK_MAIN();
