// Figure 1 / Appendix A: end-to-end verification of the travel-booking
// example (mini variant) — the discount-cancellation policy must be
// found VIOLATED, and the sanity property must HOLD.
#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

#include "core/verifier.h"
#include "spec/parser.h"

namespace {

std::string LoadSpecText() {
  for (const char* path : {"specs/travel_mini.has",
                           "examples/specs/travel_mini.has",
                           "../examples/specs/travel_mini.has"}) {
    std::ifstream in(path);
    if (in) {
      std::ostringstream out;
      out << in.rdbuf();
      return out.str();
    }
  }
  return "";
}

void BM_TravelMini(benchmark::State& state, const std::string& property) {
  std::string text = LoadSpecText();
  if (text.empty()) {
    state.SkipWithError("travel_mini.has not found");
    return;
  }
  auto parsed = has::ParseSpec(text);
  if (!parsed.ok()) {
    state.SkipWithError(parsed.status().ToString().c_str());
    return;
  }
  const has::HltlProperty* prop = parsed->FindProperty(property);
  if (prop == nullptr) {
    state.SkipWithError("property not found");
    return;
  }
  has::VerifierOptions options;
  options.max_nav_depth = 2;
  has::VerifyResult result;
  for (auto _ : state) {
    result = has::Verify(parsed->system, *prop, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(has::VerdictName(result.verdict));
  state.counters["product_states"] =
      static_cast<double>(result.stats.product_states);
}

void BM_Travel_DiscountPolicy(benchmark::State& s) {
  BM_TravelMini(s, "discount_policy");
}
void BM_Travel_CancelCloses(benchmark::State& s) {
  BM_TravelMini(s, "cancel_closes_cancelled");
}

}  // namespace

BENCHMARK(BM_Travel_DiscountPolicy);
BENCHMARK(BM_Travel_CancelCloses);

BENCHMARK_MAIN();
