// Section 4.2 substrate: Karp-Miller coverability and repeated
// reachability scaling in the counter dimension — the artifact-relation
// counter systems are exactly such VASS. The paper's bound is
// exponential space in the dimension (Rackoff/Habermehl).
#include <benchmark/benchmark.h>

#include "vass/karp_miller.h"
#include "vass/repeated.h"

namespace {

/// d independent producer/consumer counters plus a gate state.
has::ExplicitVass MakeCounters(int d) {
  has::ExplicitVass v(2);
  for (int i = 0; i < d; ++i) {
    v.AddAction(0, {{i, +1}}, 0);
    v.AddAction(0, {{i, -1}}, 1);
    v.AddAction(1, {{i, -1}}, 0);
  }
  return v;
}

void BM_Coverability(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  has::ExplicitVass v = MakeCounters(d);
  size_t nodes = 0;
  for (auto _ : state) {
    has::KarpMiller km(&v, {});
    km.Build({0});
    nodes = km.num_nodes();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["cov_nodes"] = static_cast<double>(nodes);
}

void BM_RepeatedReachability(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  has::ExplicitVass v = MakeCounters(d);
  has::KarpMiller km(&v, {});
  km.Build({0});
  bool found = false;
  for (auto _ : state) {
    auto lasso = has::FindAcceptingLasso(
        km, [](int s) { return s == 1; });
    found = lasso.has_value();
    benchmark::DoNotOptimize(found);
  }
  state.counters["lasso"] = found ? 1.0 : 0.0;
}

}  // namespace

BENCHMARK(BM_Coverability)->DenseRange(1, 6);
BENCHMARK(BM_RepeatedReachability)->DenseRange(1, 6);

BENCHMARK_MAIN();
