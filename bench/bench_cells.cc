// Appendix D.2 (Theorem 62): the number of non-empty cells of an
// arrangement of s linear polynomials over k variables is (s·d)^O(k) —
// exponential in k, polynomial in s. The bench counts satisfiable sign
// conditions by exhaustive Fourier-Motzkin-pruned enumeration.
#include <benchmark/benchmark.h>

#include "arith/cell.h"

namespace {

has::PolyBasis MakeBasis(int polys, int vars) {
  has::PolyBasis basis;
  for (int p = 0; p < polys; ++p) {
    has::LinearExpr e;
    // Spread hyperplanes: x_{p mod vars} - x_{(p+1) mod vars} - p.
    e.AddTerm(p % vars, has::Rational(1));
    if (vars > 1) e.AddTerm((p + 1) % vars, has::Rational(-1));
    e.AddConstant(has::Rational(-p));
    basis.Add(e);
  }
  return basis;
}

void BM_CellCount_Polys(benchmark::State& state) {
  has::PolyBasis basis = MakeBasis(static_cast<int>(state.range(0)), 3);
  int64_t cells = 0;
  for (auto _ : state) {
    cells = has::CountNonEmptyCells(basis);
    benchmark::DoNotOptimize(cells);
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["polys"] = static_cast<double>(basis.size());
}

void BM_CellCount_Vars(benchmark::State& state) {
  has::PolyBasis basis = MakeBasis(5, static_cast<int>(state.range(0)));
  int64_t cells = 0;
  for (auto _ : state) {
    cells = has::CountNonEmptyCells(basis);
    benchmark::DoNotOptimize(cells);
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["vars"] = static_cast<double>(state.range(0));
}

void BM_Projection(benchmark::State& state) {
  // Fourier-Motzkin projection cost on chains of inequalities.
  const int n = static_cast<int>(state.range(0));
  has::LinearSystem system;
  for (int i = 0; i + 1 < n; ++i) {
    has::LinearExpr e;
    e.AddTerm(i, has::Rational(1));
    e.AddTerm(i + 1, has::Rational(-1));
    system.Add(e, has::Relop::kLe);  // x_i <= x_{i+1}
  }
  for (auto _ : state) {
    has::LinearSystem projected =
        has::FourierMotzkin::Project(system, {0, n - 1});
    benchmark::DoNotOptimize(projected);
  }
}

}  // namespace

BENCHMARK(BM_CellCount_Polys)->DenseRange(2, 7);
BENCHMARK(BM_CellCount_Vars)->DenseRange(1, 4);
BENCHMARK(BM_Projection)->RangeMultiplier(2)->Range(4, 32);

BENCHMARK_MAIN();
