#include <gtest/gtest.h>

#include "vass/karp_miller.h"
#include "vass/repeated.h"

namespace has {
namespace {

TEST(MarkingTest, ApplyAndCompare) {
  std::vector<int64_t> m{2, 0};
  std::vector<int64_t> out;
  EXPECT_TRUE(marking::Apply(m, {{0, -2}, {1, 3}}, &out));
  EXPECT_EQ(marking::Get(out, 0), 0);
  EXPECT_EQ(marking::Get(out, 1), 3);
  EXPECT_FALSE(marking::Apply(m, {{1, -1}}, &out));
  EXPECT_TRUE(marking::LessEq({1, 2}, {1, kOmega}));
  EXPECT_FALSE(marking::LessEq({1, kOmega}, {1, 5}));
  EXPECT_TRUE(marking::Equal({1, 0}, {1}));
}

TEST(KarpMillerTest, AcceleratesUnboundedCounter) {
  ExplicitVass v(1);
  v.AddAction(0, {{0, +1}}, 0);
  KarpMiller km(&v, {});
  km.Build({0});
  // (0, 0) and (0, ω): two nodes.
  EXPECT_EQ(km.num_nodes(), 2);
  bool has_omega = false;
  for (int n = 0; n < km.num_nodes(); ++n) {
    for (int64_t x : km.node_marking(n)) has_omega |= x == kOmega;
  }
  EXPECT_TRUE(has_omega);
}

TEST(KarpMillerTest, ReachabilityRequiresTokens) {
  // 0 --(c-1)--> 1 is reachable only after an increment.
  ExplicitVass v(3);
  v.AddAction(0, {{0, +1}}, 1);
  v.AddAction(1, {{0, -1}}, 2);
  KarpMiller km(&v, {});
  km.Build({0});
  EXPECT_NE(km.FindNode([](int s) { return s == 2; }), -1);

  // Without the increment, state 2 is unreachable.
  ExplicitVass w(3);
  w.AddAction(0, {}, 1);
  w.AddAction(1, {{0, -1}}, 2);
  KarpMiller km2(&w, {});
  km2.Build({0});
  EXPECT_EQ(km2.FindNode([](int s) { return s == 2; }), -1);
}

TEST(KarpMillerTest, PathLabelsReconstructRuns) {
  ExplicitVass v(3);
  int64_t a = v.AddAction(0, {{0, +1}}, 1);
  int64_t b = v.AddAction(1, {{0, -1}}, 2);
  KarpMiller km(&v, {});
  km.Build({0});
  int node = km.FindNode([](int s) { return s == 2; });
  ASSERT_NE(node, -1);
  EXPECT_EQ(km.PathLabels(node), (std::vector<int64_t>{a, b}));
}

TEST(RepeatedTest, SimpleLoop) {
  ExplicitVass v(2);
  v.AddAction(0, {}, 1);
  v.AddAction(1, {}, 1);  // self loop at accepting state
  KarpMiller km(&v, {});
  km.Build({0});
  auto lasso = FindAcceptingLasso(km, [](int s) { return s == 1; });
  ASSERT_TRUE(lasso.has_value());
  EXPECT_EQ(lasso->loop_labels.size(), 1u);
}

TEST(RepeatedTest, CounterGatedLoopNeedsProduction) {
  // Loop at state 1 consumes a token per lap; only finitely many laps
  // without replenishment: NOT repeatedly reachable.
  ExplicitVass v(2);
  v.AddAction(0, {{0, +1}}, 0);  // pump
  v.AddAction(0, {}, 1);
  v.AddAction(1, {{0, -1}}, 1);  // lossy self loop
  KarpMiller km(&v, {});
  km.Build({0});
  // The pump makes dimension 0 ω, and the self-loop has net effect -1
  // on an ω dimension: no non-negative closed walk through state 1
  // exists... except the walk that leaves back to 0 and repumps — but 0
  // and 1 are in the same SCC only if an edge 1->0 exists. It does not,
  // so the only cycles at 1 are the -1 self-loop: no lasso.
  auto lasso = FindAcceptingLasso(km, [](int s) { return s == 1; });
  EXPECT_FALSE(lasso.has_value());
}

TEST(RepeatedTest, ReplenishedLoopFound) {
  // Same but with a back edge that repumps: lasso exists.
  ExplicitVass v(2);
  v.AddAction(0, {{0, +1}}, 0);
  v.AddAction(0, {}, 1);
  v.AddAction(1, {{0, -1}}, 1);
  v.AddAction(1, {{0, +2}}, 0);  // back to the pump with interest
  KarpMiller km(&v, {});
  km.Build({0});
  auto lasso = FindAcceptingLasso(km, [](int s) { return s == 1; });
  EXPECT_TRUE(lasso.has_value());
}

TEST(RepeatedTest, ZeroNetEffectLoopFound) {
  // Produce one, consume one per lap: net 0 on an ω dim → valid lasso.
  ExplicitVass v(2);
  v.AddAction(0, {{0, +1}}, 0);
  v.AddAction(0, {{0, -1}}, 1);
  v.AddAction(1, {{0, +1}}, 0);
  KarpMiller km(&v, {});
  km.Build({0});
  auto lasso = FindAcceptingLasso(km, [](int s) { return s == 1; });
  EXPECT_TRUE(lasso.has_value());
}

class CounterSweep : public ::testing::TestWithParam<int> {};

TEST_P(CounterSweep, TokenBankConservation) {
  // Property: with d counters each needing a deposit before the final
  // withdrawal, the target is reachable iff every counter was pumped.
  const int d = GetParam();
  ExplicitVass v(d + 2);
  for (int i = 0; i < d; ++i) {
    v.AddAction(i, {{i, +1}}, i + 1);  // must pump counter i to advance
  }
  Delta withdraw;
  for (int i = 0; i < d; ++i) withdraw.emplace_back(i, -1);
  v.AddAction(d, withdraw, d + 1);
  KarpMiller km(&v, {});
  km.Build({0});
  EXPECT_NE(km.FindNode([&](int s) { return s == d + 1; }), -1);
  // Skipping one pump breaks it: start from state 1 (counter 0 never
  // pumped).
  KarpMiller km2(&v, {});
  km2.Build({1});
  EXPECT_EQ(km2.FindNode([&](int s) { return s == d + 1; }), -1);
}

INSTANTIATE_TEST_SUITE_P(Dims, CounterSweep, ::testing::Range(1, 6));

}  // namespace
}  // namespace has
