#include <gtest/gtest.h>

#include <random>

#include "ltl/buchi.h"

namespace has {
namespace {

using W = std::vector<std::vector<bool>>;

TEST(BuchiTest, EventuallyAcceptsLassos) {
  BuchiAutomaton b = BuildBuchi(LtlFormula::Eventually(LtlFormula::Prop(0)),
                                1);
  EXPECT_TRUE(b.AcceptsLasso({{true}}, {{false}}));
  EXPECT_TRUE(b.AcceptsLasso({{false}, {false}}, {{true}}));
  EXPECT_FALSE(b.AcceptsLasso({{false}}, {{false}}));
}

TEST(BuchiTest, AlwaysAcceptsOnlyConstantTrue) {
  BuchiAutomaton b =
      BuildBuchi(LtlFormula::Always(LtlFormula::Prop(0)), 1);
  EXPECT_TRUE(b.AcceptsLasso({}, {{true}}));
  EXPECT_FALSE(b.AcceptsLasso({{true}}, {{true}, {false}}));
}

TEST(BuchiTest, GFRequiresRecurrence) {
  BuchiAutomaton b = BuildBuchi(
      LtlFormula::Always(LtlFormula::Eventually(LtlFormula::Prop(0))), 1);
  EXPECT_TRUE(b.AcceptsLasso({}, {{false}, {true}}));
  EXPECT_FALSE(b.AcceptsLasso({{true}}, {{false}}));
}

TEST(BuchiTest, FiniteAcceptance) {
  BuchiAutomaton b = BuildBuchi(LtlFormula::Eventually(LtlFormula::Prop(0)),
                                1);
  EXPECT_TRUE(b.AcceptsFinite({{false}, {true}}));
  EXPECT_FALSE(b.AcceptsFinite({{false}, {false}}));
  // X at the last position is false under the strong-next semantics.
  BuchiAutomaton bx =
      BuildBuchi(LtlFormula::Next(LtlFormula::Prop(0)), 1);
  EXPECT_FALSE(bx.AcceptsFinite({{true}}));
  EXPECT_TRUE(bx.AcceptsFinite({{false}, {true}}));
}

class BuchiRandomCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(BuchiRandomCrossCheck, AgreesWithDirectEvaluation) {
  // Random small formulas on random lassos and finite words: the
  // automaton must agree with the direct semantics evaluators.
  std::mt19937 rng(GetParam());
  auto random_formula = [&](auto&& self, int depth) -> LtlPtr {
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 6);
    switch (pick(rng)) {
      case 0:
        return LtlFormula::Prop(0);
      case 1:
        return LtlFormula::Prop(1);
      case 2:
        return LtlFormula::Not(self(self, depth - 1));
      case 3:
        return LtlFormula::And(self(self, depth - 1), self(self, depth - 1));
      case 4:
        return LtlFormula::Next(self(self, depth - 1));
      case 5:
        return LtlFormula::Until(self(self, depth - 1),
                                 self(self, depth - 1));
      default:
        return LtlFormula::Or(self(self, depth - 1), self(self, depth - 1));
    }
  };
  std::uniform_int_distribution<int> coin(0, 1);
  for (int round = 0; round < 25; ++round) {
    LtlPtr f = random_formula(random_formula, 2);
    BuchiAutomaton b = BuildBuchi(f, 2);
    // Finite word.
    W word;
    std::uniform_int_distribution<int> len(1, 4);
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      word.push_back({coin(rng) == 1, coin(rng) == 1});
    }
    EXPECT_EQ(b.AcceptsFinite(word), f->EvalFinite(word))
        << f->ToString() << " on finite word, round " << round;
    // Lasso.
    W prefix = word;
    W loop;
    int m = len(rng);
    for (int i = 0; i < m; ++i) {
      loop.push_back({coin(rng) == 1, coin(rng) == 1});
    }
    EXPECT_EQ(b.AcceptsLasso(prefix, loop), f->EvalLasso(prefix, loop))
        << f->ToString() << " on lasso, round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuchiRandomCrossCheck,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace has
