// Soundness and determinism of the ample-set partial-order reduction
// (VerifierOptions::por): verdicts must be IDENTICAL with the reduction
// on and off — on every committed workload family (lasso/kViolated
// verdicts included) and on the parsed example specs — the reduced
// graph must never be larger than the full one, and the POR-on
// exploration itself must stay shard-count-deterministic at 1/2/4
// shards, counterexamples and query counts included. Plus unit coverage of the
// static independence analysis (model/independence.h) the reduction's
// eligibility test is built on.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/verifier.h"
#include "model/independence.h"
#include "spec/parser.h"
#include "workloads.h"

namespace has {
namespace {

/// POR on vs. off must agree on everything user-visible; POR on must
/// additionally be deterministic across shard counts (the ample choice
/// is a pure function of the product state, replayed identically by the
/// sharded merge). Returns the POR-off verdict so callers can pin the
/// expected outcome.
Verdict ExpectPorEquivalence(const ArtifactSystem& system,
                             const HltlProperty& property,
                             const std::string& what,
                             VerifierOptions base = {}) {
  base.por = false;
  VerifyResult reference = Verify(system, property, base);
  EXPECT_EQ(reference.stats.ample_reduced_successors, 0u) << what;
  EXPECT_EQ(reference.stats.ample_full_expansions, 0u) << what;
  VerifyResult por_seq;
  for (int shards : {1, 2, 4}) {
    VerifierOptions options = base;
    options.por = true;
    options.num_shards = shards;
    VerifyResult por = Verify(system, property, options);
    EXPECT_EQ(por.verdict, reference.verdict) << what << " shards=" << shards;
    // NOTE: the counterexample itself may legitimately differ from the
    // POR-off one (the reduced graph keeps a witness, not THE witness),
    // and so may the child-query count — stutter targets can carry
    // input-bound bits the POR-off opening states lack, so some opens
    // key new oracle queries. Both must however be identical across
    // shard counts, checked below.
    EXPECT_LE(por.stats.cov_nodes, reference.stats.cov_nodes)
        << what << " shards=" << shards;
    EXPECT_EQ(por.stats.full_graph_builds, 0u) << what << " shards=" << shards;
    if (shards == 1) {
      por_seq = por;
      continue;
    }
    // Shard-count determinism of the REDUCED build, counterexample and
    // counters included: the merge's rank-order replay must reproduce
    // the sequential ample decisions edge for edge.
    EXPECT_EQ(por.counterexample, por_seq.counterexample)
        << what << " shards=" << shards;
    EXPECT_EQ(por.stats.queries, por_seq.stats.queries) << what;
    EXPECT_EQ(por.stats.cov_nodes, por_seq.stats.cov_nodes) << what;
    EXPECT_EQ(por.stats.cov_edges, por_seq.stats.cov_edges) << what;
    EXPECT_EQ(por.stats.product_states, por_seq.stats.product_states) << what;
    EXPECT_EQ(por.stats.counter_dims, por_seq.stats.counter_dims) << what;
    EXPECT_EQ(por.stats.cover_edges, por_seq.stats.cover_edges) << what;
    EXPECT_EQ(por.stats.ample_reduced_successors,
              por_seq.stats.ample_reduced_successors)
        << what;
    EXPECT_EQ(por.stats.ample_full_expansions,
              por_seq.stats.ample_full_expansions)
        << what;
  }
  return reference.verdict;
}

TEST(PorEquivalenceTest, Table1Workloads) {
  for (SchemaClass sc : {SchemaClass::kAcyclic, SchemaClass::kCyclic}) {
    bench::Workload w = bench::MakeWorkload(sc, /*size=*/3, /*depth=*/2,
                                            /*with_sets=*/true,
                                            /*with_arith=*/false);
    // kViolated here: the POR-on runs must reproduce the full build's
    // accepting lasso over cover-edges, not just safe verdicts.
    EXPECT_EQ(ExpectPorEquivalence(w.system, w.property, w.name),
              Verdict::kViolated)
        << w.name;
  }
}

TEST(PorEquivalenceTest, DeepHierarchy) {
  bench::Workload w = bench::MakeDeepHierarchy(/*depth=*/4, /*size=*/3);
  ExpectPorEquivalence(w.system, w.property, w.name);
}

TEST(PorEquivalenceTest, AdversarialCyclic) {
  bench::Workload w = bench::MakeAdversarialCyclic(/*size=*/4, /*depth=*/2);
  ExpectPorEquivalence(w.system, w.property, w.name);
}

TEST(PorEquivalenceTest, MultiVariableSet) {
  bench::Workload w = bench::MakeMultiSet(/*size=*/3, /*depth=*/2,
                                          /*set_width=*/2);
  ExpectPorEquivalence(w.system, w.property, w.name);
}

TEST(PorEquivalenceTest, MultiRelation) {
  // k = 2 keeps Debug/TSan runtimes sane; the k = 3 blow-up row is
  // exercised by bench_por and its CI counter gate.
  bench::Workload w = bench::MakeMultiRelation(/*size=*/3, /*depth=*/2,
                                               /*num_rels=*/2);
  ExpectPorEquivalence(w.system, w.property, w.name);
}

TEST(PorEquivalenceTest, CommutingServicesReduces) {
  bench::Workload w = bench::MakeCommutingServices(/*width=*/3, /*depth=*/2);
  VerifierOptions base;
  base.slice = false;
  ExpectPorEquivalence(w.system, w.property, w.name, base);
  // The family exists to show the reduction actually bites: all stores
  // are pairwise-independent and ample-eligible, so POR must both skip
  // successors and shrink the graph. Slicing is held off here — the
  // stores insert into never-retrieved relations, so the slicer strips
  // exactly the insert ops whose insert-only footprints make the
  // stores ample-eligible, and POR would (correctly) never fire.
  VerifierOptions off;
  off.por = false;
  off.slice = false;
  VerifyResult full = Verify(w.system, w.property, off);
  VerifierOptions on;
  on.slice = false;
  VerifyResult reduced = Verify(w.system, w.property, on);
  EXPECT_GT(reduced.stats.ample_reduced_successors, 0u);
  EXPECT_LT(reduced.stats.cov_nodes, full.stats.cov_nodes);
  EXPECT_LT(reduced.stats.cov_edges, full.stats.cov_edges);
}

std::string LoadSpec(const std::string& name) {
  for (const std::string& prefix :
       {std::string("examples/specs/"), std::string("../examples/specs/"),
        std::string("../../examples/specs/")}) {
    std::ifstream in(prefix + name);
    if (in) {
      std::ostringstream out;
      out << in.rdbuf();
      return out.str();
    }
  }
  return "";
}

TEST(PorEquivalenceTest, TravelMiniSpec) {
  std::string text = LoadSpec("travel_mini.has");
  ASSERT_FALSE(text.empty()) << "travel_mini.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* policy = parsed->FindProperty("discount_policy");
  ASSERT_NE(policy, nullptr);
  VerifierOptions base;
  base.max_nav_depth = 2;
  ExpectPorEquivalence(parsed->system, *policy, "travel_mini/discount", base);
}

TEST(PorEquivalenceTest, MultiRelationSpec) {
  // A parsed spec with retrieve services and a service-observing
  // property: most services are POR-ineligible here, so this guards
  // the "reduction must not fire where it is unsound" side.
  std::string text = LoadSpec("multirel.has");
  ASSERT_FALSE(text.empty()) << "multirel.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* p = parsed->FindProperty("orders_drain");
  ASSERT_NE(p, nullptr);
  ExpectPorEquivalence(parsed->system, *p, "multirel-spec/orders_drain");
}

// --- static independence analysis ------------------------------------

TEST(TaskIndependenceTest, MultiRelationFootprints) {
  bench::Workload w = bench::MakeMultiRelation(/*size=*/3, /*depth=*/2,
                                               /*num_rels=*/2);
  const Task& task = w.system.task(w.system.root());
  TaskIndependence indep = TaskIndependence::Analyze(task);
  ASSERT_EQ(indep.num_services(), static_cast<int>(task.services().size()));
  // Service layout: work, store0, load0, store1, load1, rotate.
  int work = -1, store0 = -1, load0 = -1, store1 = -1, rotate = -1;
  for (size_t i = 0; i < task.services().size(); ++i) {
    const std::string& n = task.service(static_cast<int>(i)).name;
    if (n == "work") work = static_cast<int>(i);
    if (n == "store0") store0 = static_cast<int>(i);
    if (n == "load0") load0 = static_cast<int>(i);
    if (n == "store1") store1 = static_cast<int>(i);
    if (n == "rotate") rotate = static_cast<int>(i);
  }
  ASSERT_GE(work, 0);
  ASSERT_GE(store0, 0);
  ASSERT_GE(load0, 0);
  ASSERT_GE(store1, 0);
  ASSERT_GE(rotate, 0);

  EXPECT_TRUE(indep.footprint(store0).insert_only());
  EXPECT_TRUE(indep.footprint(store1).insert_only());
  EXPECT_FALSE(indep.footprint(load0).insert_only());   // retrieves
  EXPECT_FALSE(indep.footprint(work).insert_only());    // no set ops
  EXPECT_FALSE(indep.footprint(rotate).insert_only());  // mixed delta

  // Disjoint relations AND disjoint non-input variables.
  EXPECT_TRUE(indep.Commutes(store0, store1));
  EXPECT_TRUE(indep.Commutes(store1, store0));  // symmetric
  // Same relation (A0) and same variable (s0).
  EXPECT_FALSE(indep.Commutes(store0, load0));
  // rotate touches both relations.
  EXPECT_FALSE(indep.Commutes(rotate, store0));
  EXPECT_FALSE(indep.Commutes(rotate, store1));
  // A service never commutes with itself (same footprint).
  EXPECT_FALSE(indep.Commutes(store0, store0));
}

TEST(TaskIndependenceTest, CommutingFamilyIsPairwiseIndependent) {
  bench::Workload w = bench::MakeCommutingServices(/*width=*/3, /*depth=*/1);
  const Task& task = w.system.task(w.system.root());
  TaskIndependence indep = TaskIndependence::Analyze(task);
  std::vector<int> stores;
  for (size_t i = 0; i < task.services().size(); ++i) {
    if (task.service(static_cast<int>(i)).name.rfind("store", 0) == 0) {
      stores.push_back(static_cast<int>(i));
    }
  }
  ASSERT_EQ(stores.size(), 3u);
  for (int a : stores) {
    EXPECT_TRUE(indep.footprint(a).insert_only());
    for (int b : stores) {
      EXPECT_EQ(indep.Commutes(a, b), a != b);
    }
  }
}

TEST(TaskIndependenceTest, SharedInputReadsStillCommute) {
  // Two insert-only services whose pre/post both read the same INPUT
  // variable: input-bound reads are never written inside a segment, so
  // they must not break commutation.
  Task task("T", 0, kNoTask);
  int x = task.vars().AddVar("x", VarSort::kId);
  int a = task.vars().AddVar("a", VarSort::kId);
  int b = task.vars().AddVar("b", VarSort::kId);
  task.AddInput(x, 0);
  int ra = task.AddSetRelation("A", {a});
  int rb = task.AddSetRelation("B", {b});
  InternalService sa;
  sa.name = "sa";
  sa.pre = Condition::Not(Condition::IsNull(x));
  sa.post = Condition::Not(Condition::IsNull(a));
  sa.MarkInsert(ra);
  task.AddInternalService(std::move(sa));
  InternalService sb;
  sb.name = "sb";
  sb.pre = Condition::Not(Condition::IsNull(x));
  sb.post = Condition::Not(Condition::IsNull(b));
  sb.MarkInsert(rb);
  task.AddInternalService(std::move(sb));

  TaskIndependence indep = TaskIndependence::Analyze(task);
  EXPECT_TRUE(indep.Commutes(0, 1));
  EXPECT_EQ(indep.footprint(0).input_reads.count(x), 1u);
  EXPECT_EQ(indep.footprint(0).noninput_vars.count(x), 0u);
  // Sharing a NON-input variable does break commutation: flip b's
  // service to also read a.
  Task task2("T2", 0, kNoTask);
  int a2 = task2.vars().AddVar("a", VarSort::kId);
  int ra2 = task2.AddSetRelation("A", {a2});
  int rb2 = task2.AddSetRelation("B", {task2.vars().AddVar("b", VarSort::kId)});
  InternalService s1;
  s1.name = "s1";
  s1.pre = Condition::True();
  s1.post = Condition::Not(Condition::IsNull(a2));
  s1.MarkInsert(ra2);
  task2.AddInternalService(std::move(s1));
  InternalService s2;
  s2.name = "s2";
  s2.pre = Condition::Not(Condition::IsNull(a2));  // reads a too
  s2.post = Condition::True();
  s2.MarkInsert(rb2);
  task2.AddInternalService(std::move(s2));
  TaskIndependence indep2 = TaskIndependence::Analyze(task2);
  EXPECT_FALSE(indep2.Commutes(0, 1));
}

}  // namespace
}  // namespace has
