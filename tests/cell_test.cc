#include <gtest/gtest.h>

#include "arith/cell.h"
#include "arith/hcd.h"

namespace has {
namespace {

LinearExpr Expr(std::vector<std::pair<int, int>> terms, int constant) {
  LinearExpr e;
  for (auto [v, c] : terms) e.AddTerm(v, Rational(c));
  e.AddConstant(Rational(constant));
  return e;
}

TEST(PolyBasisTest, DeduplicatesUpToScaling) {
  PolyBasis basis;
  int a = basis.Add(Expr({{0, 1}, {1, -1}}, 0));      // x - y
  int b = basis.Add(Expr({{0, 2}, {1, -2}}, 0));      // 2x - 2y
  int c = basis.Add(Expr({{0, -1}, {1, 1}}, 0));      // y - x
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);  // same hyperplane direction after canonicalization
  EXPECT_EQ(basis.size(), 1);
  bool negated = false;
  EXPECT_EQ(basis.Find(Expr({{0, -3}, {1, 3}}, 0), &negated), a);
  EXPECT_TRUE(negated);
}

TEST(CellTest, OneLineThreeCells) {
  PolyBasis basis;
  basis.Add(Expr({{0, 1}}, 0));  // x
  EXPECT_EQ(CountNonEmptyCells(basis), 3);  // x<0, x=0, x>0
}

TEST(CellTest, TwoParallelLinesFiveCells) {
  PolyBasis basis;
  basis.Add(Expr({{0, 1}}, 0));    // x
  basis.Add(Expr({{0, 1}}, -1));   // x - 1
  // cells: x<0 | x=0 | 0<x<1 | x=1 | x>1  (combinations like x<0 ∧ x=1
  // are pruned as empty)
  EXPECT_EQ(CountNonEmptyCells(basis), 5);
}

TEST(CellTest, TwoCrossingLinesNineCells) {
  PolyBasis basis;
  basis.Add(Expr({{0, 1}}, 0));  // x
  basis.Add(Expr({{1, 1}}, 0));  // y
  EXPECT_EQ(CountNonEmptyCells(basis), 9);
}

TEST(CellTest, RefinementAndRestriction) {
  PolyBasis basis;
  int p = basis.Add(Expr({{0, 1}}, 0));
  int q = basis.Add(Expr({{1, 1}}, 0));
  Cell full(2);
  full.set_sign(p, kSignPos);
  full.set_sign(q, kSignNeg);
  Cell partial(2);
  partial.set_sign(p, kSignPos);
  EXPECT_TRUE(full.RefinesOn(partial, {p, q}));
  EXPECT_FALSE(partial.RefinesOn(full, {p, q}));
  Cell restricted = full.RestrictTo({p});
  EXPECT_EQ(restricted.sign(q), kSignAny);
  EXPECT_EQ(restricted.sign(p), kSignPos);
}

TEST(CellTest, NonEmptinessWithExtraSystem) {
  PolyBasis basis;
  int p = basis.Add(Expr({{0, 1}}, 0));  // x
  Cell cell(1);
  cell.set_sign(p, kSignPos);  // x > 0
  LinearSystem extra;
  extra.Add(Expr({{0, 1}}, 1), Relop::kLe);  // x <= -1
  EXPECT_TRUE(cell.IsNonEmpty(basis));
  EXPECT_FALSE(cell.IsNonEmptyWith(basis, extra));
}

TEST(HcdTest, ArrangementProjectionCoversCombination) {
  // Child polys: x - z and z - y (z local). Projection must contain the
  // combination x - y.
  std::vector<LinearExpr> polys = {Expr({{0, 1}, {2, -1}}, 0),
                                   Expr({{2, 1}, {1, -1}}, 0)};
  std::vector<LinearExpr> projected = ProjectArrangement(polys, 2);
  ASSERT_EQ(projected.size(), 1u);
  PolyBasis check;
  check.Add(projected[0]);
  bool negated = false;
  EXPECT_NE(check.Find(Expr({{0, 1}, {1, -1}}, 0), &negated), -1);
}

TEST(HcdTest, BuildPropagatesChildPolys) {
  // Node 1 (child) constrains its local variable 0 against shared
  // variable 1; shared maps to parent variable 0.
  std::vector<HcdNode> nodes(2);
  nodes[0].children = {1};
  nodes[0].child_var_to_parent = {{{1, 0}}};
  nodes[1].own_polys = {Expr({{0, 1}, {1, -1}}, 0),   // local - shared
                        Expr({{0, 1}}, -5)};          // local - 5
  Hcd hcd = Hcd::Build(nodes, 0);
  // Eliminating the child-local variable combines the two into
  // shared - 5, renamed to parent var 0.
  bool negated = false;
  EXPECT_NE(hcd.basis(0).Find(Expr({{0, 1}}, -5), &negated), -1);
  EXPECT_GE(hcd.TotalPolys(), 3);
}

class CellCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(CellCountSweep, MatchesArrangementFormulaInOneDim) {
  // n distinct points on a line make 2n + 1 cells.
  const int n = GetParam();
  PolyBasis basis;
  for (int i = 0; i < n; ++i) basis.Add(Expr({{0, 1}}, -i));
  EXPECT_EQ(CountNonEmptyCells(basis), 2 * n + 1);
}

INSTANTIATE_TEST_SUITE_P(Lines, CellCountSweep, ::testing::Range(1, 6));

}  // namespace
}  // namespace has
