// Differential tests for the summary-bucketed dominance index
// (vass/dominance_index.h) against a retained FLAT reference scan: the
// index must return the identical minimum-id dominator and remove the
// identical victim set as a linear walk over the same antichain, on
// randomized explorer-like insert/probe/absorb sequences mixing ω
// lanes (wild-bucket routing), widths past the 32-dimension group wrap
// (inexact summaries), sparse pair-payload markings (AddAuto), and
// tie-rank cases with several simultaneous dominators. A second part
// pins the end-to-end guarantee the index must preserve: verdict and
// every exploration counter of the MakeMultiRelation k=3 family are
// identical at 1/2/4 shards with the index on.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "core/verifier.h"
#include "vass/dominance_index.h"
#include "vass/marking.h"
#include "workloads.h"

namespace has {
namespace {

/// Flat reference antichain: the pre-index representation, scanned
/// linearly with the scalar-reference order (marking::LessEq on the
/// owned vectors, independent of the packed kernels under test).
struct FlatEntry {
  int node;
  std::vector<int64_t> values;  // owned canonical marking
  MarkingView view;
};

int ReferenceDominatorOf(const std::vector<FlatEntry>& flat,
                         const std::vector<int64_t>& m) {
  int best = -1;
  for (const FlatEntry& e : flat) {
    if (marking::LessEq(m, e.values) && (best < 0 || e.node < best)) {
      best = e.node;
    }
  }
  return best;
}

std::set<int> ReferenceCoveredBy(const std::vector<FlatEntry>& flat,
                                 const std::vector<int64_t>& m) {
  std::set<int> victims;
  for (const FlatEntry& e : flat) {
    if (marking::LessEq(e.values, m)) victims.insert(e.node);
  }
  return victims;
}

std::vector<int64_t> Canonical(std::vector<int64_t> m) {
  while (!m.empty() && m.back() == 0) m.pop_back();
  return m;
}

/// Random canonical marking. `max_dims` up to 40 crosses the 32-dim
/// group wrap (inexact summaries, no ω-cover fast accept); a high zero
/// probability at large widths makes AddAuto pick the sparse pair
/// representation for a healthy fraction of the corpus.
std::vector<int64_t> RandomMarking(std::mt19937* rng, int max_dims) {
  std::vector<int64_t> m(static_cast<size_t>((*rng)() % (max_dims + 1)), 0);
  for (auto& v : m) {
    const uint32_t r = (*rng)() % 12;
    if (r < 6) continue;             // 0 with p = 0.5
    if (r >= 10) {
      v = kOmega;                    // ω with p = 1/6 → wild entries
    } else {
      v = static_cast<int64_t>(r - 5);  // 1..4 crosses both magnitude bits
    }
  }
  return Canonical(std::move(m));
}

void RunExplorerLikeSequence(int max_dims, uint32_t seed) {
  std::mt19937 rng(seed);
  MarkingArena arena;
  DominanceIndex index;
  std::vector<FlatEntry> flat;
  int next_node = 0;
  size_t fast_accepts_possible = 0;
  for (int step = 0; step < 3000; ++step) {
    const std::vector<int64_t> m = RandomMarking(&rng, max_dims);
    const MarkingView probe(m);

    DominanceIndex::Stats stats;
    const int got = index.DominatorOf(probe, &stats);
    const int expected = ReferenceDominatorOf(flat, m);
    ASSERT_EQ(got, expected)
        << "step " << step << " marking " << marking::ToString(m);
    if (expected >= 0) {
      // Accounting identity: every examined entry was either resolved
      // by a summary test or payload-compared (rank-cutoff entries are
      // simply not examined).
      EXPECT_GT(stats.bucket_probes + stats.payload_probes + stats.skipped,
                0u);
      continue;  // the explorer folds into the dominator; no insert
    }

    std::set<int> victims;
    DominanceIndex::Stats absorb_stats;
    index.RemoveCoveredBy(probe, &absorb_stats,
                          [&victims](int node) { victims.insert(node); });
    EXPECT_EQ(victims, ReferenceCoveredBy(flat, m))
        << "step " << step << " marking " << marking::ToString(m);
    std::vector<FlatEntry> kept;
    for (FlatEntry& e : flat) {
      if (!victims.count(e.node)) kept.push_back(std::move(e));
    }
    flat = std::move(kept);

    // Store through AddAuto so sparse pair payloads enter the index;
    // the flat reference keeps the owned vector.
    const MarkingView stored = arena.AddAuto(m.data(), m.size());
    index.Insert(next_node, stored);
    flat.push_back(FlatEntry{next_node, m, stored});
    ++next_node;
    ASSERT_EQ(index.size(), flat.size()) << "step " << step;
    if (m.size() <= 32) ++fast_accepts_possible;
  }
  // The sequence actually exercised the interesting paths.
  EXPECT_GT(index.num_buckets(), 1u);
  EXPECT_GT(fast_accepts_possible, 0u);
  if (max_dims >= static_cast<int>(MarkingArena::kSparseMinWidth)) {
    EXPECT_GT(arena.sparse_markings(), 0u);
  }
}

TEST(DominanceIndexTest, MatchesFlatReferenceNarrow) {
  // Widths <= 6 mirror the real product VASSes: exact summaries, the
  // ω-cover fast accept live on every bucket, no sparse payloads.
  RunExplorerLikeSequence(/*max_dims=*/6, /*seed=*/20260808u);
}

TEST(DominanceIndexTest, MatchesFlatReferenceWideWithSparsePayloads) {
  // Widths up to 40: group wrap disables the fast accept for part of
  // the corpus (exact and inexact entries share buckets), and AddAuto
  // stores the sparse half of the corpus as pair payloads.
  RunExplorerLikeSequence(/*max_dims=*/40, /*seed=*/0xd0117e5u);
}

TEST(DominanceIndexTest, TieRankPicksMinimumNodeAcrossBuckets) {
  // Three dominators of {1, 1} living in THREE different buckets
  // (different magnitude words and one wild entry): the minimum id
  // must win regardless of bucket enumeration order.
  MarkingArena arena;
  DominanceIndex index;
  const std::vector<int64_t> small{1, 1};
  const std::vector<int64_t> medium{2, 2};
  const std::vector<int64_t> omegas{kOmega, kOmega};
  const std::vector<int64_t> disjoint{0, 0, 5};
  index.Insert(3, arena.Add(medium));
  index.Insert(5, arena.Add(omegas));   // wild bucket
  index.Insert(7, arena.Add(small));    // equality also dominates
  index.Insert(9, arena.Add(disjoint)); // never a dominator of {1,1}
  DominanceIndex::Stats stats;
  EXPECT_EQ(index.DominatorOf(MarkingView(small), &stats), 3);
  // A probe only the wild entry covers.
  const std::vector<int64_t> tall{100, 100};
  EXPECT_EQ(index.DominatorOf(MarkingView(tall), &stats), 5);
  // Absorbing {ω, ω, ω} covers every entry including the wild one.
  const std::vector<int64_t> top{kOmega, kOmega, kOmega};
  std::set<int> victims;
  index.RemoveCoveredBy(MarkingView(top), &stats,
                        [&victims](int node) { victims.insert(node); });
  EXPECT_EQ(victims, (std::set<int>{3, 5, 7, 9}));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.num_buckets(), 0u);
}

TEST(DominanceIndexTest, MultiRelationK3IdenticalAcrossShardCounts) {
  // End-to-end: the bucketed index replays the sequential probe
  // decisions inside the sharded merge, so EVERY exploration counter —
  // including the new index counters — must be identical at 1/2/4
  // shards on the k=3 family the acceptance numbers are pinned on.
  bench::Workload w = bench::MakeMultiRelation(/*size=*/3, /*depth=*/2,
                                               /*num_rels=*/3);
  VerifyResult reference = Verify(w.system, w.property, {});
  for (int shards : {2, 4}) {
    VerifierOptions options;
    options.num_shards = shards;
    VerifyResult sharded = Verify(w.system, w.property, options);
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(sharded.verdict, reference.verdict);
    EXPECT_EQ(sharded.counterexample, reference.counterexample);
    EXPECT_EQ(sharded.stats.cov_nodes, reference.stats.cov_nodes);
    EXPECT_EQ(sharded.stats.cov_edges, reference.stats.cov_edges);
    EXPECT_EQ(sharded.stats.cover_edges, reference.stats.cover_edges);
    EXPECT_EQ(sharded.stats.pruned_successors,
              reference.stats.pruned_successors);
    EXPECT_EQ(sharded.stats.deactivated_nodes,
              reference.stats.deactivated_nodes);
    EXPECT_EQ(sharded.stats.antichain_peak, reference.stats.antichain_peak);
    EXPECT_EQ(sharded.stats.antichain_probes,
              reference.stats.antichain_probes);
    EXPECT_EQ(sharded.stats.antichain_bucket_probes,
              reference.stats.antichain_bucket_probes);
    EXPECT_EQ(sharded.stats.antichain_skipped_by_summary,
              reference.stats.antichain_skipped_by_summary);
    EXPECT_EQ(sharded.stats.antichain_buckets_peak,
              reference.stats.antichain_buckets_peak);
    EXPECT_EQ(sharded.stats.sparse_markings,
              reference.stats.sparse_markings);
    EXPECT_EQ(sharded.stats.ample_reduced_successors,
              reference.stats.ample_reduced_successors);
  }
}

}  // namespace
}  // namespace has
