#include <gtest/gtest.h>

#include "builders.h"
#include "data/generator.h"
#include "runs/bounded_checker.h"
#include "runs/global_run.h"
#include "runs/simulator.h"

namespace has {
namespace {

class SimulatorSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorSweep, SimulatedTreesAreValid) {
  // Property-style check: every simulated tree passes the Definition
  // 8/9/10 validator, on both example systems and several databases.
  for (bool with_set : {false, true}) {
    ArtifactSystem system = with_set ? testing::FlatSystem(true)
                                     : testing::ParentChildSystem();
    GeneratorOptions gen;
    gen.seed = static_cast<uint64_t>(GetParam());
    gen.tuples_per_relation = 3;
    DatabaseInstance db = GenerateInstance(system.schema(), gen);
    SimulatorOptions sim;
    sim.seed = static_cast<uint64_t>(GetParam()) * 31 + 7;
    std::optional<RunTree> tree = SimulateTree(system, db, sim);
    ASSERT_TRUE(tree.has_value());
    Status ok = CheckRunTree(system, db, *tree);
    EXPECT_TRUE(ok.ok()) << ok.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorSweep, ::testing::Range(1, 11));

TEST(GlobalRunTest, LinearizationsAreLegal) {
  ArtifactSystem system = testing::ParentChildSystem();
  GeneratorOptions gen;
  DatabaseInstance db = GenerateInstance(system.schema(), gen);
  SimulatorOptions sim;
  std::optional<RunTree> tree = SimulateTree(system, db, sim);
  ASSERT_TRUE(tree.has_value());
  for (uint64_t seed = 0; seed < 5; ++seed) {
    std::vector<GlobalEvent> events = RandomLinearization(*tree, seed);
    Status ok = CheckLinearization(*tree, events);
    EXPECT_TRUE(ok.ok()) << ok.ToString();
  }
}

TEST(GlobalRunTest, BadOrderRejected) {
  ArtifactSystem system = testing::ParentChildSystem();
  GeneratorOptions gen;
  DatabaseInstance db = GenerateInstance(system.schema(), gen);
  std::optional<RunTree> tree = SimulateTree(system, db, {});
  ASSERT_TRUE(tree.has_value());
  std::vector<GlobalEvent> events = RandomLinearization(*tree, 1);
  ASSERT_GE(events.size(), 2u);
  std::swap(events.front(), events.back());
  EXPECT_FALSE(CheckLinearization(*tree, events).ok());
}

TEST(BoundedCheckerTest, HltlInterleavingInvariance) {
  // Evaluating the property on the tree (not a linearization) makes the
  // verdict independent of the interleaving by construction; check the
  // evaluator is deterministic across simulations of the same seed.
  ArtifactSystem system = testing::ParentChildSystem();
  GeneratorOptions gen;
  DatabaseInstance db = GenerateInstance(system.schema(), gen);
  HltlProperty property = testing::AlwaysProperty(
      0, Condition::Or(Condition::IsNull(0),
                       Condition::Not(Condition::IsNull(0))));
  SimulatorOptions sim;
  std::optional<RunTree> tree = SimulateTree(system, db, sim);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(EvalHltlOnTree(system, db, property, *tree));
}

TEST(BoundedCheckerTest, FindsConcreteViolation) {
  // The negation of "x stays null" is satisfied by some simulated tree.
  ArtifactSystem system = testing::FlatSystem(false);
  GeneratorOptions gen;
  DatabaseInstance db = GenerateInstance(system.schema(), gen);
  HltlProperty never_picked =
      testing::AlwaysProperty(0, Condition::IsNull(0));
  HltlProperty negated = never_picked.Negated();
  std::optional<RunTree> witness =
      FindTreeSatisfying(system, db, negated, 50);
  EXPECT_TRUE(witness.has_value());
}

}  // namespace
}  // namespace has
