#include <random>

#include <gtest/gtest.h>

#include "arith/bigint.h"
#include "arith/fourier_motzkin.h"
#include "arith/rational.h"

namespace has {
namespace {

TEST(BigIntTest, Arithmetic) {
  BigInt a(1000000007);
  BigInt b(998244353);
  EXPECT_EQ((a + b).ToString(), "1998244360");
  EXPECT_EQ((a - b).ToString(), "1755654");
  EXPECT_EQ((b - a).ToString(), "-1755654");
  EXPECT_EQ((a * b).ToString(), "998244359987710471");
  EXPECT_EQ((a * b / b).ToString(), a.ToString());
  EXPECT_EQ((a % b), a - b * (a / b));
}

TEST(BigIntTest, LargeMultiplication) {
  BigInt a = BigInt::FromString("123456789012345678901234567890");
  BigInt b = BigInt::FromString("987654321098765432109876543210");
  EXPECT_EQ((a * b).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ(a * b / a, b);
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt(100), BigInt(99));
  EXPECT_EQ(BigInt(0), BigInt(0) * BigInt(-7));
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(-18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
}

TEST(BigIntTest, FitsInt64) {
  int64_t out = 0;
  EXPECT_TRUE(BigInt(-42).FitsInt64(&out));
  EXPECT_EQ(out, -42);
  BigInt huge = BigInt::FromString("99999999999999999999999999");
  EXPECT_FALSE(huge.FitsInt64(&out));
}

TEST(RationalTest, NormalizedArithmetic) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half - half).ToString(), "0");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_LT(third, half);
  EXPECT_EQ(Rational(BigInt(2), BigInt(-4)).ToString(), "-1/2");
}

TEST(RationalTest, FromDoubleExact) {
  Rational r = Rational::FromDouble(0.5);
  EXPECT_EQ(r, Rational(BigInt(1), BigInt(2)));
  EXPECT_EQ(Rational::FromDouble(3.0), Rational(3));
}

LinearExpr Expr(std::vector<std::pair<int, int>> terms, int constant) {
  LinearExpr e;
  for (auto [v, c] : terms) e.AddTerm(v, Rational(c));
  e.AddConstant(Rational(constant));
  return e;
}

TEST(FourierMotzkinTest, SatisfiableBox) {
  LinearSystem s;
  s.Add(Expr({{0, -1}}, 0), Relop::kLe);      // -x <= 0
  s.Add(Expr({{0, 1}}, -10), Relop::kLe);     // x <= 10
  s.Add(Expr({{1, 1}, {0, -1}}, 0), Relop::kEq);  // y = x
  EXPECT_TRUE(FourierMotzkin::IsSatisfiable(s));
}

TEST(FourierMotzkinTest, UnsatisfiableStrict) {
  LinearSystem s;
  s.Add(Expr({{0, 1}}, 0), Relop::kLt);   // x < 0
  s.Add(Expr({{0, -1}}, 0), Relop::kLt);  // x > 0
  EXPECT_FALSE(FourierMotzkin::IsSatisfiable(s));
}

TEST(FourierMotzkinTest, EqualityChainContradiction) {
  LinearSystem s;
  s.Add(Expr({{0, 1}, {1, -1}}, 0), Relop::kEq);  // x = y
  s.Add(Expr({{1, 1}, {2, -1}}, 0), Relop::kEq);  // y = z
  s.Add(Expr({{0, 1}, {2, -1}}, -1), Relop::kEq); // x = z + 1
  EXPECT_FALSE(FourierMotzkin::IsSatisfiable(s));
}

TEST(FourierMotzkinTest, ProjectionKeepsImpliedBound) {
  // x <= y, y <= z  projected onto {x, z} must imply x <= z.
  LinearSystem s;
  s.Add(Expr({{0, 1}, {1, -1}}, 0), Relop::kLe);
  s.Add(Expr({{1, 1}, {2, -1}}, 0), Relop::kLe);
  LinearSystem p = FourierMotzkin::Project(s, {0, 2});
  EXPECT_TRUE(FourierMotzkin::Entails(
      p, LinearConstraint{Expr({{0, 1}, {2, -1}}, 0), Relop::kLe}));
  // But nothing stronger.
  EXPECT_FALSE(FourierMotzkin::Entails(
      p, LinearConstraint{Expr({{0, 1}, {2, -1}}, 0), Relop::kLt}));
}

TEST(FourierMotzkinTest, EntailsEquality) {
  LinearSystem s;
  s.Add(Expr({{0, 1}}, -3), Relop::kLe);   // x <= 3
  s.Add(Expr({{0, -1}}, 3), Relop::kLe);   // x >= 3
  EXPECT_TRUE(FourierMotzkin::Entails(
      s, LinearConstraint{Expr({{0, 1}}, -3), Relop::kEq}));
}

TEST(FourierMotzkinTest, Disequalities) {
  // 0 <= x <= 1 with x != 0 and x != 1 is satisfiable over Q...
  LinearSystem s;
  s.Add(Expr({{0, -1}}, 0), Relop::kLe);
  s.Add(Expr({{0, 1}}, -1), Relop::kLe);
  EXPECT_TRUE(FourierMotzkin::IsSatisfiableWithDisequalities(
      s, {Expr({{0, 1}}, 0), Expr({{0, 1}}, -1)}));
  // ... but x = 0 forced plus x != 0 is not.
  LinearSystem t;
  t.Add(Expr({{0, 1}}, 0), Relop::kEq);
  EXPECT_FALSE(FourierMotzkin::IsSatisfiableWithDisequalities(
      t, {Expr({{0, 1}}, 0)}));
}

class FmRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(FmRandomSweep, ProjectionSoundOnRandomSystems) {
  // Property: if the original system is satisfiable, the projection is
  // satisfiable; if the projection is unsat, so is the original.
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> coef(-3, 3);
  for (int round = 0; round < 20; ++round) {
    LinearSystem s;
    for (int c = 0; c < 5; ++c) {
      LinearExpr e;
      for (int v = 0; v < 4; ++v) e.AddTerm(v, Rational(coef(rng)));
      e.AddConstant(Rational(coef(rng)));
      s.Add(std::move(e), round % 2 == 0 ? Relop::kLe : Relop::kLt);
    }
    bool sat = FourierMotzkin::IsSatisfiable(s);
    LinearSystem p = FourierMotzkin::Project(s, {0, 1});
    bool proj_sat = FourierMotzkin::IsSatisfiable(p);
    EXPECT_EQ(sat, proj_sat);  // ∃-projection preserves satisfiability
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmRandomSweep, ::testing::Range(1, 6));

}  // namespace
}  // namespace has
