#include <gtest/gtest.h>

#include "core/iso_type.h"

namespace has {
namespace {

struct Fixture {
  DatabaseSchema schema;
  VarScope scope;
  RelationId r2, r;
  int x, y, n;

  Fixture() {
    r2 = schema.AddRelation("R2");
    r = schema.AddRelation("R");
    schema.relation(r).AddForeignKey("fk", r2);
    schema.relation(r).AddNumericAttribute("val");
    x = scope.AddVar("x", VarSort::kId);
    y = scope.AddVar("y", VarSort::kId);
    n = scope.AddVar("n", VarSort::kNumeric);
  }

  PartialIsoType Fresh() { return PartialIsoType(&schema, &scope, 3); }
};

TEST(IsoTypeTest, EqualityAndDisequality) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  int ex = t.VarElement(f.x);
  int ey = t.VarElement(f.y);
  EXPECT_TRUE(t.AssertEq(ex, ey));
  EXPECT_TRUE(t.Same(ex, ey));
  EXPECT_FALSE(t.AssertNeq(ex, ey));  // contradiction
}

TEST(IsoTypeTest, NullTagPropagates) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  int ex = t.VarElement(f.x);
  ASSERT_TRUE(t.AssertEq(ex, t.NullElement()));
  EXPECT_TRUE(t.IsNullTagged(ex));
  // A null variable cannot be anchored.
  EXPECT_FALSE(t.AssertAnchor(ex, f.r));
}

TEST(IsoTypeTest, AnchorConflicts) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  int ex = t.VarElement(f.x);
  ASSERT_TRUE(t.AssertAnchor(ex, f.r));
  EXPECT_FALSE(t.AssertAnchor(ex, f.r2));
  // Anchored variables can't be null.
  EXPECT_FALSE(t.AssertEq(ex, t.NullElement()));
}

TEST(IsoTypeTest, ConstTags) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  int en = t.VarElement(f.n);
  ASSERT_TRUE(t.AssertEq(en, t.ConstElement(Rational(5))));
  EXPECT_EQ(*t.ConstOf(en), Rational(5));
  EXPECT_FALSE(t.AssertEq(en, t.ConstElement(Rational(6))));
}

TEST(IsoTypeTest, CongruenceClosure) {
  // x ~ y and both anchored at R forces x.fk ~ y.fk (the key
  // dependency of Definition 15).
  Fixture f;
  PartialIsoType t = f.Fresh();
  int ex = t.VarElement(f.x);
  int ey = t.VarElement(f.y);
  ASSERT_TRUE(t.AssertAnchor(ex, f.r));
  ASSERT_TRUE(t.AssertAnchor(ey, f.r));
  int cx = t.NavChild(ex, 1);  // x.fk
  int cy = t.NavChild(ey, 1);  // y.fk
  ASSERT_NE(cx, -1);
  ASSERT_NE(cy, -1);
  EXPECT_FALSE(t.Same(cx, cy));
  ASSERT_TRUE(t.AssertEq(ex, ey));
  EXPECT_TRUE(t.Same(cx, cy));  // congruence fired
}

TEST(IsoTypeTest, CongruenceDetectsContradiction) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  int ex = t.VarElement(f.x);
  int ey = t.VarElement(f.y);
  ASSERT_TRUE(t.AssertAnchor(ex, f.r));
  ASSERT_TRUE(t.AssertAnchor(ey, f.r));
  int cx = t.NavChild(ex, 1);
  int cy = t.NavChild(ey, 1);
  ASSERT_TRUE(t.AssertNeq(cx, cy));  // children differ
  EXPECT_FALSE(t.AssertEq(ex, ey));  // so parents can't be equal
}

TEST(IsoTypeTest, DecideRelAtom) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  CondPtr atom = Condition::Rel(f.r, {f.x, f.y, f.n});
  ASSERT_TRUE(t.DecideAtom(*atom, true));
  EXPECT_EQ(t.EvalAtom(*atom), Truth::kTrue);
  // Negative atom on the same pattern now contradicts.
  PartialIsoType t2 = f.Fresh();
  ASSERT_TRUE(t2.DecideAtom(*atom, false));
  EXPECT_FALSE(t2.DecideAtom(*atom, true));
}

TEST(IsoTypeTest, EvalUnknownWhenUndecided) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  CondPtr eq = Condition::VarEq(f.x, f.y);
  EXPECT_EQ(t.EvalAtom(*eq), Truth::kUnknown);
  ASSERT_TRUE(t.DecideAtom(*eq, false));
  EXPECT_EQ(t.EvalAtom(*eq), Truth::kFalse);
}

TEST(IsoTypeTest, SignatureCanonicalAcrossOrder) {
  Fixture f;
  PartialIsoType a = f.Fresh();
  PartialIsoType b = f.Fresh();
  // Same constraints in different creation orders.
  ASSERT_TRUE(a.AssertEq(a.VarElement(f.x), a.VarElement(f.y)));
  ASSERT_TRUE(a.AssertEq(a.VarElement(f.n), a.ConstElement(Rational(2))));
  ASSERT_TRUE(b.AssertEq(b.VarElement(f.n), b.ConstElement(Rational(2))));
  ASSERT_TRUE(b.AssertEq(b.VarElement(f.y), b.VarElement(f.x)));
  a.Normalize();
  b.Normalize();
  EXPECT_EQ(a.Signature(), b.Signature());
}

TEST(IsoTypeTest, ProjectionForgetsOtherVars) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  ASSERT_TRUE(t.DecideAtom(*Condition::VarEq(f.x, f.y), true));
  ASSERT_TRUE(t.DecideAtom(*Condition::IsNull(f.y), false));
  PartialIsoType p = t.Project({f.x}, 3);
  // y is gone; x's class survives.
  EXPECT_EQ(p.LookupVar(f.y), -1);
  EXPECT_NE(p.LookupVar(f.x), -1);
}

TEST(IsoTypeTest, RenameMovesConstraints) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  ASSERT_TRUE(t.DecideAtom(*Condition::IsNull(f.x), true));
  VarScope other;
  int z = other.AddVar("z", VarSort::kId);
  PartialIsoType r = t.Rename({{f.x, z}}, &other);
  EXPECT_TRUE(r.VarIsNull(z));
}

TEST(IsoTypeTest, MergeDetectsConflicts) {
  Fixture f;
  PartialIsoType a = f.Fresh();
  PartialIsoType b = f.Fresh();
  ASSERT_TRUE(a.DecideAtom(*Condition::IsNull(f.x), true));
  ASSERT_TRUE(b.DecideAtom(*Condition::IsNull(f.x), false));
  EXPECT_FALSE(a.MergeFrom(b));
}

TEST(IsoTypeTest, ForgetVarDropsConstraints) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  ASSERT_TRUE(t.DecideAtom(*Condition::IsNull(f.x), true));
  t.ForgetVar(f.x);
  EXPECT_EQ(t.EvalAtom(*Condition::IsNull(f.x)), Truth::kUnknown);
}

TEST(IsoTypeTest, NormalizeDropsUnconstrainedNav) {
  Fixture f;
  PartialIsoType t = f.Fresh();
  int ex = t.VarElement(f.x);
  ASSERT_TRUE(t.AssertAnchor(ex, f.r));
  t.NavChild(ex, 1);  // singleton nav child, no info
  int before = t.num_elements();
  t.Normalize();
  EXPECT_LT(t.num_elements(), before);
}

}  // namespace
}  // namespace has
