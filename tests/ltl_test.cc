#include <gtest/gtest.h>

#include "ltl/formula.h"

namespace has {
namespace {

using W = std::vector<std::vector<bool>>;

TEST(LtlTest, FiniteSemanticsBasics) {
  LtlPtr p = LtlFormula::Prop(0);
  // word: p, !p, p
  W word = {{true}, {false}, {true}};
  EXPECT_TRUE(p->EvalFinite(word));
  EXPECT_TRUE(LtlFormula::Next(LtlFormula::Not(p))->EvalFinite(word));
  EXPECT_TRUE(LtlFormula::Eventually(p)->EvalFinite(word, 1));
  EXPECT_FALSE(LtlFormula::Always(p)->EvalFinite(word));
  EXPECT_TRUE(LtlFormula::Always(p)->EvalFinite({{true}, {true}}));
}

TEST(LtlTest, StrongNextAtLastPosition) {
  LtlPtr p = LtlFormula::Prop(0);
  W word = {{true}};
  // X p is false at the last position (no successor).
  EXPECT_FALSE(LtlFormula::Next(p)->EvalFinite(word));
  // But !X p holds.
  EXPECT_TRUE(LtlFormula::Not(LtlFormula::Next(p))->EvalFinite(word));
}

TEST(LtlTest, UntilOnFiniteWords) {
  LtlPtr p = LtlFormula::Prop(0);
  LtlPtr q = LtlFormula::Prop(1);
  LtlPtr u = LtlFormula::Until(p, q);
  EXPECT_TRUE(u->EvalFinite({{true, false}, {true, false}, {false, true}}));
  // q never holds: until fails even though p always holds.
  EXPECT_FALSE(u->EvalFinite({{true, false}, {true, false}}));
  // immediate q.
  EXPECT_TRUE(u->EvalFinite({{false, true}}));
}

TEST(LtlTest, LassoSemantics) {
  LtlPtr p = LtlFormula::Prop(0);
  // prefix: !p; loop: p !p — G F p holds, F G p fails.
  W prefix = {{false}};
  W loop = {{true}, {false}};
  LtlPtr gfp = LtlFormula::Always(LtlFormula::Eventually(p));
  EXPECT_TRUE(gfp->EvalLasso(prefix, loop));
  LtlPtr fgp = LtlFormula::Eventually(LtlFormula::Always(p));
  EXPECT_FALSE(fgp->EvalLasso(prefix, loop));
  // On the constant loop p^ω both hold.
  EXPECT_TRUE(gfp->EvalLasso({}, {{true}}));
  EXPECT_TRUE(fgp->EvalLasso({}, {{true}}));
}

TEST(LtlTest, LassoUntil) {
  LtlPtr p = LtlFormula::Prop(0);
  LtlPtr q = LtlFormula::Prop(1);
  // p until q where q appears in the second loop iteration unrolling.
  W prefix = {{true, false}};
  W loop = {{true, false}, {false, true}};
  EXPECT_TRUE(LtlFormula::Until(p, q)->EvalLasso(prefix, loop));
  // p fails before q ever holds.
  W loop2 = {{false, false}, {false, true}};
  EXPECT_FALSE(LtlFormula::Until(p, q)->EvalLasso(prefix, loop2));
}

TEST(LtlTest, ToStringReadable) {
  LtlPtr f = LtlFormula::Until(LtlFormula::Prop(0),
                               LtlFormula::Not(LtlFormula::Prop(1)));
  EXPECT_EQ(f->ToString(), "(p0 U !p1)");
  EXPECT_EQ(f->MaxProp(), 1);
}

}  // namespace
}  // namespace has
