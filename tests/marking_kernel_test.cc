// Differential tests for the packed marking kernels (vass/marking.h):
// the std::vector overloads in namespace marking are the scalar
// REFERENCE semantics (0-padded, per-dimension ω branches); the
// MarkingView kernels (DominanceLeq, operator==, ApplyView) are the
// packed reimplementations the explorer actually runs — SIMD when the
// build enables it, the portable unrolled loop otherwise (CI builds
// and runs this binary once more with -DHAS_FORCE_SCALAR_DOMINANCE=ON
// so both selections are exercised). Every property here quantifies
// over a fixed-seed random corpus plus hand-picked ω edge cases.
#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "vass/marking.h"

namespace has {
namespace {

std::vector<int64_t> Canonical(std::vector<int64_t> m) {
  while (!m.empty() && m.back() == 0) m.pop_back();
  return m;
}

// Random canonical marking mixing zeros, small values and ω. Raw
// mt19937 draws (standard-specified) keep the corpus identical across
// standard libraries.
std::vector<int64_t> RandomMarking(std::mt19937* rng, int max_dims) {
  std::vector<int64_t> m(static_cast<size_t>((*rng)() % (max_dims + 1)), 0);
  for (auto& v : m) {
    const uint32_t r = (*rng)() % 10;
    if (r < 4) continue;            // 0 with p = 0.4
    v = r == 9 ? kOmega : static_cast<int64_t>(r - 3);  // ω with p = 0.1
  }
  return Canonical(std::move(m));
}

Delta RandomDelta(std::mt19937* rng, int max_dims) {
  Delta delta(static_cast<size_t>((*rng)() % 4));
  for (auto& [d, change] : delta) {
    d = static_cast<int>((*rng)() % static_cast<uint32_t>(max_dims));
    change = static_cast<int64_t>((*rng)() % 7) - 3;  // -3..+3
  }
  return delta;
}

TEST(MarkingKernelTest, DominanceMatchesScalarReferenceOnRandomPairs) {
  std::mt19937 rng(20260808u);
  for (int trial = 0; trial < 20000; ++trial) {
    const int max_dims = 1 + trial % 40;  // cross the 32-dim group wrap
    std::vector<int64_t> a = RandomMarking(&rng, max_dims);
    std::vector<int64_t> b = RandomMarking(&rng, max_dims);
    const bool expected = marking::LessEq(a, b);
    EXPECT_EQ(DominanceLeq(MarkingView(a), MarkingView(b)), expected)
        << marking::ToString(a) << " vs " << marking::ToString(b);
    EXPECT_EQ(MarkingView(a) == MarkingView(b), marking::Equal(a, b));
  }
}

TEST(MarkingKernelTest, DominanceOmegaEdgeCases) {
  const std::vector<int64_t> empty;
  const std::vector<int64_t> ones{1, 1, 1, 1, 1};
  const std::vector<int64_t> omegas{kOmega, kOmega, kOmega, kOmega, kOmega};
  std::vector<int64_t> omega_then_finite{kOmega, 1};
  // ω ≤ ω, finite ≤ ω, ω ≰ finite.
  EXPECT_TRUE(DominanceLeq(MarkingView(omegas), MarkingView(omegas)));
  EXPECT_TRUE(DominanceLeq(MarkingView(ones), MarkingView(omegas)));
  EXPECT_FALSE(DominanceLeq(MarkingView(omegas), MarkingView(ones)));
  EXPECT_TRUE(DominanceLeq(MarkingView(empty), MarkingView(omegas)));
  EXPECT_FALSE(DominanceLeq(MarkingView(omega_then_finite),
                            MarkingView(ones)));
  // Failure in the FIRST lane group vs the scalar tail: widths 5 and 9
  // with the offending dimension first resp. last (width 9 exercises
  // the 4-lane body + tail split at every kernel selection).
  for (size_t width : {5u, 9u}) {
    for (size_t bad : {size_t{0}, width - 1}) {
      std::vector<int64_t> a(width, 1), b(width, 1);
      a[bad] = 2;
      EXPECT_FALSE(DominanceLeq(MarkingView(a), MarkingView(b)))
          << "width " << width << " bad dim " << bad;
      b[bad] = kOmega;  // ω in b absorbs the excess
      EXPECT_TRUE(DominanceLeq(MarkingView(a), MarkingView(b)));
    }
  }
  // Canonical-width mismatch: wider a can never be ≤ shorter b (a's
  // last dimension is nonzero against b's implicit 0 there).
  std::vector<int64_t> wide{0, 0, 0, 0, 0, 1};
  EXPECT_FALSE(DominanceLeq(MarkingView(wide), MarkingView(ones)));
  EXPECT_TRUE(DominanceLeq(MarkingView(empty), MarkingView(empty)));
}

TEST(MarkingKernelTest, ApplyViewMatchesScalarReference) {
  std::mt19937 rng(0xabcdef1u);
  std::vector<int64_t> ref_out;
  std::vector<int64_t> view_out;
  for (int trial = 0; trial < 20000; ++trial) {
    const int max_dims = 1 + trial % 12;
    std::vector<int64_t> m = RandomMarking(&rng, max_dims);
    Delta delta = RandomDelta(&rng, max_dims + 2);
    const bool ref_enabled = marking::Apply(m, delta, &ref_out);
    const bool view_enabled = marking::ApplyView(MarkingView(m), delta,
                                                 &view_out);
    ASSERT_EQ(view_enabled, ref_enabled)
        << marking::ToString(m) << " + delta[" << delta.size() << "]";
    if (ref_enabled) {
      ASSERT_EQ(view_out, ref_out) << marking::ToString(m);
      // Canonical form is preserved.
      ASSERT_TRUE(view_out.empty() || view_out.back() != 0);
    }
  }
}

TEST(MarkingKernelTest, ApplyViewOmegaAbsorbsAndRepeatedDimsRunInOrder) {
  std::vector<int64_t> out;
  // ω absorbs a negative delta (never disables, never leaves ω).
  std::vector<int64_t> m{kOmega, 1};
  EXPECT_TRUE(marking::ApplyView(MarkingView(m), {{0, -5}}, &out));
  EXPECT_EQ(out, (std::vector<int64_t>{kOmega, 1}));
  // Repeated dimensions apply in order: 0 -1 is disabled even when a
  // later entry restores it...
  std::vector<int64_t> zero_one{0, 1};
  EXPECT_FALSE(
      marking::ApplyView(MarkingView(zero_one), {{0, -1}, {0, 2}}, &out));
  // ...while +1 then -1 stays enabled and nets to the canonical trim.
  EXPECT_TRUE(
      marking::ApplyView(MarkingView(zero_one), {{1, 1}, {1, -2}}, &out));
  EXPECT_TRUE(out.empty());
  // Writing past the current width grows it.
  EXPECT_TRUE(marking::ApplyView(MarkingView(zero_one), {{3, 2}}, &out));
  EXPECT_EQ(out, (std::vector<int64_t>{0, 1, 0, 2}));
}

TEST(MarkingKernelTest, SummaryFilterIsSoundOnRandomPairs) {
  std::mt19937 rng(0x51a7e5u);
  size_t skipped = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const int max_dims = 1 + trial % 40;
    std::vector<int64_t> a = RandomMarking(&rng, max_dims);
    std::vector<int64_t> b = RandomMarking(&rng, max_dims);
    const MarkingView va(a), vb(b);
    if (!SummaryMayDominate(SupportSummary(va), SupportSummary(vb))) {
      // A summary miss must imply non-dominance — the explorer skips
      // the payload compare entirely on this verdict.
      EXPECT_FALSE(marking::LessEq(a, b))
          << marking::ToString(a) << " vs " << marking::ToString(b);
      ++skipped;
    }
  }
  // The filter actually fires on this corpus (guards against a summary
  // that degenerates to "always maybe").
  EXPECT_GT(skipped, 1000u);
}

/// Builds the sparse pair payload of a canonical marking (empty when
/// the marking has no nonzero dimension — the empty marking is always
/// dense).
std::vector<int64_t> PairsOf(const std::vector<int64_t>& m) {
  std::vector<int64_t> pairs;
  for (size_t d = 0; d < m.size(); ++d) {
    if (m[d] == 0) continue;
    pairs.push_back(static_cast<int64_t>(d));
    pairs.push_back(m[d]);
  }
  return pairs;
}

TEST(MarkingKernelTest, SparseKernelsMatchScalarReferenceOnRandomPairs) {
  // Every representation combination of every random pair must agree
  // with the scalar reference: dense-dense runs the SIMD/unrolled
  // kernel, the three mixed/sparse combinations run the pair-merge
  // kernels in marking.cc. FORCED sparse views (not AddAuto) so narrow
  // and dense-support markings exercise the sparse paths too.
  std::mt19937 rng(0x59a25eu);
  size_t sparse_pairs_tested = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const int max_dims = 1 + trial % 40;
    const std::vector<int64_t> a = RandomMarking(&rng, max_dims);
    const std::vector<int64_t> b = RandomMarking(&rng, max_dims);
    const std::vector<int64_t> pa = PairsOf(a);
    const std::vector<int64_t> pb = PairsOf(b);
    std::vector<MarkingView> va{MarkingView(a)};
    std::vector<MarkingView> vb{MarkingView(b)};
    if (!pa.empty()) va.push_back(MarkingView::Sparse(pa.data(),
                                                      pa.size() / 2));
    if (!pb.empty()) vb.push_back(MarkingView::Sparse(pb.data(),
                                                      pb.size() / 2));
    const bool leq = marking::LessEq(a, b);
    const bool geq = marking::LessEq(b, a);
    const bool eq = marking::Equal(a, b);
    for (const MarkingView& x : va) {
      ASSERT_EQ(x.size(), a.size());
      for (const MarkingView& y : vb) {
        sparse_pairs_tested += x.sparse() || y.sparse();
        EXPECT_EQ(DominanceLeq(x, y), leq)
            << marking::ToString(a) << " vs " << marking::ToString(b)
            << " sparse " << x.sparse() << "/" << y.sparse();
        EXPECT_EQ(DominanceLeq(y, x), geq)
            << marking::ToString(a) << " vs " << marking::ToString(b);
        EXPECT_EQ(x == y, eq)
            << marking::ToString(a) << " vs " << marking::ToString(b)
            << " sparse " << x.sparse() << "/" << y.sparse();
      }
    }
    if (!pa.empty()) {
      const MarkingView sv = va.back();
      // The logical accessors see through the representation.
      EXPECT_EQ(sv.num_pairs(), pa.size() / 2);
      for (size_t d = 0; d < a.size(); ++d) {
        ASSERT_EQ(sv[d], a[d]) << marking::ToString(a) << " dim " << d;
      }
      size_t d = 0;
      for (int64_t v : sv) {
        ASSERT_EQ(v, a[d]) << marking::ToString(a) << " iter dim " << d;
        ++d;
      }
      EXPECT_EQ(d, a.size());
      // Summaries are representation-independent (the bucketed index
      // mixes representations inside one bucket).
      EXPECT_EQ(SupportSummary(sv), SupportSummary(MarkingView(a)));
      EXPECT_EQ(ExtendedSummary(sv), ExtendedSummary(MarkingView(a)));
      // ApplyView from a sparse source matches the scalar reference.
      Delta delta = RandomDelta(&rng, max_dims + 2);
      std::vector<int64_t> ref_out;
      std::vector<int64_t> view_out;
      const bool ref_enabled = marking::Apply(a, delta, &ref_out);
      ASSERT_EQ(marking::ApplyView(sv, delta, &view_out), ref_enabled)
          << marking::ToString(a);
      if (ref_enabled) {
        ASSERT_EQ(view_out, ref_out) << marking::ToString(a);
      }
    }
  }
  EXPECT_GT(sparse_pairs_tested, 10000u);
}

TEST(MarkingKernelTest, AddAutoSelectionRuleIsDensityThreshold) {
  MarkingArena arena;
  // Below the width floor: always dense, however sparse the support.
  std::vector<int64_t> narrow{0, 0, 0, 0, 0, 0, 1};
  EXPECT_FALSE(arena.AddAuto(narrow.data(), narrow.size()).sparse());
  // Width 8, 3 nonzeros: 6 pair values < 8 dense values → sparse.
  std::vector<int64_t> wide_sparse{1, 0, 0, kOmega, 0, 0, 0, 2};
  MarkingView sv = arena.AddAuto(wide_sparse.data(), wide_sparse.size());
  EXPECT_TRUE(sv.sparse());
  EXPECT_EQ(sv.num_pairs(), 3u);
  EXPECT_EQ(sv.size(), 8u);
  EXPECT_TRUE(sv == MarkingView(wide_sparse));
  // Width 8, 4 nonzeros: 8 pair values == 8 dense values → dense (ties
  // keep the SIMD-friendly layout).
  std::vector<int64_t> wide_half{1, 0, 1, 0, 1, 0, 0, 1};
  EXPECT_FALSE(arena.AddAuto(wide_half.data(), wide_half.size()).sparse());
  EXPECT_EQ(arena.sparse_markings(), 1u);
  // The stored payload is the pair list, not the dense width.
  EXPECT_EQ(arena.total_values(), narrow.size() + 6 + wide_half.size());
}

TEST(MarkingKernelTest, ArenaViewsAreStableAndStructurallyEqual) {
  MarkingArena arena;
  std::mt19937 rng(7u);
  std::vector<std::vector<int64_t>> originals;
  std::vector<MarkingView> views;
  // Enough values to force several chunk rollovers, plus one marking
  // larger than a whole chunk (the oversized-splice path).
  for (int i = 0; i < 5000; ++i) {
    originals.push_back(RandomMarking(&rng, 16));
    views.push_back(arena.Add(originals.back()));
  }
  std::vector<int64_t> huge(size_t{1} << 14, 1);
  originals.push_back(huge);
  views.push_back(arena.Add(huge));
  originals.push_back(RandomMarking(&rng, 16));
  views.push_back(arena.Add(originals.back()));
  for (size_t i = 0; i < views.size(); ++i) {
    ASSERT_TRUE(views[i] == MarkingView(originals[i])) << i;
  }
}

}  // namespace
}  // namespace has
