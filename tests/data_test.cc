#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/instance.h"

namespace has {
namespace {

DatabaseSchema TwoRelationSchema() {
  DatabaseSchema s;
  RelationId b = s.AddRelation("B");
  RelationId a = s.AddRelation("A");
  s.relation(b).AddNumericAttribute("v");
  s.relation(a).AddForeignKey("to_b", b);
  return s;
}

TEST(ValueTest, Basics) {
  EXPECT_TRUE(Value::Null().is_null());
  Value id = Value::Id(1, 7);
  EXPECT_TRUE(id.is_id());
  EXPECT_EQ(id.relation(), 1);
  EXPECT_EQ(id.id(), 7u);
  EXPECT_NE(id, Value::Id(0, 7));  // relation-tagged domains disjoint
  EXPECT_EQ(Value::Real(2.5).real(), 2.5);
  EXPECT_NE(Value::Real(2.5), Value::Null());
}

TEST(InstanceTest, InsertAndFind) {
  DatabaseSchema s = TwoRelationSchema();
  DatabaseInstance db(&s);
  ASSERT_TRUE(db.Insert(0, {Value::Id(0, 1), Value::Real(3)}).ok());
  ASSERT_TRUE(db.Insert(1, {Value::Id(1, 1), Value::Id(0, 1)}).ok());
  EXPECT_EQ(db.TotalTuples(), 2u);
  EXPECT_NE(db.Find(0, Value::Id(0, 1)), nullptr);
  EXPECT_EQ(db.Find(0, Value::Id(0, 9)), nullptr);
  EXPECT_TRUE(db.CheckDependencies().ok());
}

TEST(InstanceTest, RejectsBadTyping) {
  DatabaseSchema s = TwoRelationSchema();
  DatabaseInstance db(&s);
  // numeric attribute must be real
  EXPECT_FALSE(db.Insert(0, {Value::Id(0, 1), Value::Id(0, 2)}).ok());
  // FK must reference the right relation
  EXPECT_FALSE(db.Insert(1, {Value::Id(1, 1), Value::Id(1, 1)}).ok());
  // duplicate key
  ASSERT_TRUE(db.Insert(0, {Value::Id(0, 1), Value::Real(0)}).ok());
  EXPECT_FALSE(db.Insert(0, {Value::Id(0, 1), Value::Real(1)}).ok());
}

TEST(InstanceTest, DanglingForeignKeyDetected) {
  DatabaseSchema s = TwoRelationSchema();
  DatabaseInstance db(&s);
  ASSERT_TRUE(db.Insert(1, {Value::Id(1, 1), Value::Id(0, 42)}).ok());
  EXPECT_FALSE(db.CheckDependencies().ok());
}

TEST(InstanceTest, Navigation) {
  DatabaseSchema s = TwoRelationSchema();
  DatabaseInstance db(&s);
  ASSERT_TRUE(db.Insert(0, {Value::Id(0, 5), Value::Real(9)}).ok());
  ASSERT_TRUE(db.Insert(1, {Value::Id(1, 1), Value::Id(0, 5)}).ok());
  // A(1).to_b.v == 9
  std::optional<Value> v = db.Navigate(Value::Id(1, 1), {1, 1});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->real(), 9);
  EXPECT_FALSE(db.Navigate(Value::Id(1, 2), {1}).has_value());
}

TEST(InstanceTest, FreshIdInsertion) {
  DatabaseSchema s = TwoRelationSchema();
  DatabaseInstance db(&s);
  auto id1 = db.InsertWithFreshId(0, {Value::Real(1)});
  auto id2 = db.InsertWithFreshId(0, {Value::Real(2)});
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
}

TEST(GeneratorTest, SatisfiesDependenciesOnCyclicSchema) {
  DatabaseSchema s;
  RelationId a = s.AddRelation("A");
  RelationId b = s.AddRelation("B");
  s.relation(a).AddForeignKey("to_b", b);
  s.relation(b).AddForeignKey("to_a", a);
  s.relation(a).AddNumericAttribute("v");
  GeneratorOptions options;
  options.tuples_per_relation = 5;
  DatabaseInstance db = GenerateInstance(s, options);
  EXPECT_EQ(db.TotalTuples(), 10u);
  EXPECT_TRUE(db.CheckDependencies().ok());
}

TEST(GeneratorTest, Deterministic) {
  DatabaseSchema s = TwoRelationSchema();
  GeneratorOptions options;
  options.seed = 123;
  DatabaseInstance a = GenerateInstance(s, options);
  DatabaseInstance b = GenerateInstance(s, options);
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace has
