#include <gtest/gtest.h>

#include "builders.h"
#include "core/successor.h"

namespace has {
namespace {

TEST(TaskContextTest, CollectsAtomsAndNullChecks) {
  ArtifactSystem system = testing::ParentChildSystem();
  VerifierOptions options;
  TaskContext parent(&system, nullptr, 0, options, nullptr);
  // pick's atoms + child's opening pre + null checks for passed var.
  EXPECT_GE(parent.eq_atoms().size(), 2u);
  TaskContext child(&system, nullptr, 1, options, nullptr);
  EXPECT_FALSE(child.input_vars().empty());
}

TEST(EnumerateOpeningTest, InitializesNonInputs) {
  ArtifactSystem system = testing::ParentChildSystem();
  VerifierOptions options;
  TaskContext child(&system, nullptr, 1, options, nullptr);
  // Input: cx is non-null (from an anchored parent x).
  PartialIsoType input(&system.schema(), &system.task(1).vars(),
                       options.max_nav_depth);
  ASSERT_TRUE(input.DecideAtom(*Condition::IsNull(0), false));
  bool truncated = false;
  std::vector<SymbolicConfig> opens =
      EnumerateOpening(child, input, Cell(), &truncated);
  EXPECT_FALSE(truncated);
  ASSERT_FALSE(opens.empty());
  for (const SymbolicConfig& s : opens) {
    EXPECT_FALSE(s.iso.VarIsNull(0) && true) << "input must stay non-null";
    // flag (numeric, non-input) starts at 0.
    int e = s.iso.LookupVar(1);
    ASSERT_NE(e, -1);
    EXPECT_EQ(*s.iso.ConstOf(e), Rational(0));
  }
}

TEST(EnumerateInternalTest, PostConditionEnforced) {
  ArtifactSystem system = testing::FlatSystem(false);
  VerifierOptions options;
  TaskContext ctx(&system, nullptr, 0, options, nullptr);
  PartialIsoType start(&system.schema(), &system.task(0).vars(),
                       options.max_nav_depth);
  ASSERT_TRUE(start.DecideAtom(*Condition::IsNull(0), true));
  ASSERT_TRUE(start.DecideAtom(*Condition::IsNull(1), true));
  SymbolicConfig cur{start, Cell()};
  bool truncated = false;
  // pick: post R(x, y): every successor anchors x at R and relates y.
  std::vector<InternalSuccessor> succs =
      EnumerateInternal(ctx, cur, system.task(0).service(0), &truncated);
  ASSERT_FALSE(succs.empty());
  CondPtr atom = Condition::Rel(1, {0, 1});
  for (const InternalSuccessor& s : succs) {
    EXPECT_EQ(s.next.iso.EvalAtom(*atom), Truth::kTrue);
    EXPECT_TRUE(s.set_ops.empty());
  }
}

TEST(EnumerateInternalTest, SetUpdatesProduceSignatures) {
  ArtifactSystem system = testing::FlatSystem(true);
  VerifierOptions options;
  TaskContext ctx(&system, nullptr, 0, options, nullptr);
  PartialIsoType start(&system.schema(), &system.task(0).vars(),
                       options.max_nav_depth);
  ASSERT_TRUE(start.DecideAtom(*Condition::IsNull(0), true));
  ASSERT_TRUE(start.DecideAtom(*Condition::IsNull(1), true));
  SymbolicConfig cur{start, Cell()};
  bool truncated = false;
  std::vector<InternalSuccessor> succs =
      EnumerateInternal(ctx, cur, system.task(0).service(0), &truncated);
  ASSERT_FALSE(succs.empty());
  for (const InternalSuccessor& s : succs) {
    ASSERT_EQ(s.set_ops.size(), 1u);
    EXPECT_EQ(s.set_ops[0].relation, 0);
    EXPECT_TRUE(s.set_ops[0].inserts);
    EXPECT_FALSE(s.set_ops[0].retrieves);
  }
  // The inserted tuple's TS-type is the canonical projection of the
  // shared pre-state (Signature retained as the debug/printing path).
  EXPECT_FALSE(ctx.TsSignature(cur.iso).empty());
}

TEST(ChildInterfaceTest, InputProjectionAndRename) {
  ArtifactSystem system = testing::ParentChildSystem();
  VerifierOptions options;
  TaskContext parent(&system, nullptr, 0, options, nullptr);
  TaskContext child(&system, nullptr, 1, options, nullptr);
  PartialIsoType piso(&system.schema(), &system.task(0).vars(),
                      options.max_nav_depth);
  ASSERT_TRUE(piso.DecideAtom(*Condition::IsNull(0), false));
  SymbolicConfig pstate{piso, Cell()};
  PartialIsoType input = ChildInputIso(parent, child, pstate);
  // Child's cx (var 0 in child scope) inherits non-nullness.
  EXPECT_EQ(input.EvalAtom(*Condition::IsNull(0)), Truth::kFalse);
}

TEST(ChildInterfaceTest, ReturnOverwritesNumericTarget) {
  ArtifactSystem system = testing::ParentChildSystem();
  VerifierOptions options;
  TaskContext parent(&system, nullptr, 0, options, nullptr);
  TaskContext child(&system, nullptr, 1, options, nullptr);
  // Parent state: got == 0.
  PartialIsoType piso(&system.schema(), &system.task(0).vars(),
                      options.max_nav_depth);
  ASSERT_TRUE(piso.AssertEq(piso.VarElement(1),
                            piso.ConstElement(Rational(0))));
  SymbolicConfig pstate{piso, Cell()};
  // Child output: flag == 1.
  PartialIsoType out(&system.schema(), &system.task(1).vars(),
                     options.max_nav_depth);
  ASSERT_TRUE(out.AssertEq(out.VarElement(1), out.ConstElement(Rational(1))));
  bool truncated = false;
  std::vector<SymbolicConfig> nexts =
      ApplyChildReturn(parent, child, pstate, out, Cell(), &truncated);
  ASSERT_FALSE(nexts.empty());
  for (const SymbolicConfig& s : nexts) {
    int e = s.iso.LookupVar(1);
    ASSERT_NE(e, -1);
    EXPECT_EQ(*s.iso.ConstOf(e), Rational(1));  // got overwritten to 1
  }
}

}  // namespace
}  // namespace has
