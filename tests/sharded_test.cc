// Determinism of the sharded Karp–Miller explorer: for num_shards ∈
// {2, 4} the coverability graph must equal the single-shard graph NODE
// FOR NODE (numbering, states, markings, spanning-tree parents, edges,
// labels), and end-to-end verification must produce identical verdicts,
// counterexamples and exploration statistics — on raw VASS systems, on
// the travel spec, and on the Table 1 workload family.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "builders.h"
#include "core/rt_relation.h"
#include "core/verifier.h"
#include "spec/parser.h"
#include "vass/karp_miller.h"
#include "workloads.h"

namespace has {
namespace {

/// Node-for-node graph equality (EXPECTs with context on divergence).
void ExpectSameGraph(const KarpMiller& a, const KarpMiller& b,
                     const std::string& what) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << what;
  ASSERT_EQ(a.truncated(), b.truncated()) << what;
  for (int n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.node_state(n), b.node_state(n)) << what << " node " << n;
    EXPECT_EQ(a.node_marking(n), b.node_marking(n)) << what << " node " << n;
    EXPECT_EQ(a.node_parent(n), b.node_parent(n)) << what << " node " << n;
    const auto& ea = a.edges(n);
    const auto& eb = b.edges(n);
    ASSERT_EQ(ea.size(), eb.size()) << what << " node " << n;
    for (size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].target, eb[i].target)
          << what << " node " << n << " edge " << i;
      EXPECT_EQ(ea[i].label, eb[i].label)
          << what << " node " << n << " edge " << i;
      EXPECT_EQ(ea[i].delta, eb[i].delta)
          << what << " node " << n << " edge " << i;
      EXPECT_EQ(ea[i].cover, eb[i].cover)
          << what << " node " << n << " edge " << i;
    }
  }
}

/// A VASS with pumping, gating and enough width to spread over shards.
ExplicitVass WideVass(int width) {
  ExplicitVass v(2 * width + 2);
  for (int i = 0; i < width; ++i) {
    v.AddAction(0, {{i, +1}}, 1 + i);            // fan out, pump counter i
    v.AddAction(1 + i, {{i, +1}}, 1 + i);        // keep pumping (→ ω)
    v.AddAction(1 + i, {{i, -1}}, 1 + width + i); // spend
    v.AddAction(1 + width + i, {}, 0);            // back to the hub
  }
  Delta all_spend;
  for (int i = 0; i < width; ++i) all_spend.emplace_back(i, -1);
  v.AddAction(0, all_spend, 2 * width + 1);      // gated target
  return v;
}

TEST(ShardedKarpMillerTest, ExplicitVassNodeForNodeEquality) {
  for (int width : {1, 3, 5}) {
    ExplicitVass v1 = WideVass(width);
    KarpMiller seq(&v1, {});
    seq.Build({0});
    for (int shards : {2, 4}) {
      ExplicitVass v2 = WideVass(width);
      KarpMillerOptions options;
      options.num_shards = shards;
      KarpMiller par(&v2, options);
      par.Build({0});
      ExpectSameGraph(seq, par,
                      "width=" + std::to_string(width) + " shards=" +
                          std::to_string(shards));
      EXPECT_EQ(seq.TotalEdges(), par.TotalEdges());
      EXPECT_EQ(seq.PathLabels(seq.num_nodes() - 1),
                par.PathLabels(par.num_nodes() - 1));
    }
  }
}

TEST(ShardedKarpMillerTest, TinySuccCacheStaysDeterministic) {
  // A pathological cache bound forces eviction and recomputation; the
  // graph must not change shape.
  ExplicitVass v1 = WideVass(4);
  KarpMiller seq(&v1, {});
  seq.Build({0});
  ExplicitVass v2 = WideVass(4);
  KarpMillerOptions options;
  options.num_shards = 2;
  options.succ_cache_capacity = 2;
  KarpMiller par(&v2, options);
  par.Build({0});
  ExpectSameGraph(seq, par, "tiny cache");
  EXPECT_GT(par.succ_cache_misses(), 0u);
}

void ExpectSameVerification(const ArtifactSystem& system,
                            const HltlProperty& property,
                            const std::string& what,
                            VerifierOptions base = {},
                            bool compare_cache_stats = true) {
  VerifyResult reference = Verify(system, property, base);
  for (int shards : {2, 4}) {
    VerifierOptions options = base;
    options.num_shards = shards;
    VerifyResult sharded = Verify(system, property, options);
    EXPECT_EQ(sharded.verdict, reference.verdict) << what;
    EXPECT_EQ(sharded.counterexample, reference.counterexample) << what;
    EXPECT_EQ(sharded.stats.queries, reference.stats.queries) << what;
    EXPECT_EQ(sharded.stats.cov_nodes, reference.stats.cov_nodes) << what;
    EXPECT_EQ(sharded.stats.cov_edges, reference.stats.cov_edges) << what;
    EXPECT_EQ(sharded.stats.product_states, reference.stats.product_states)
        << what;
    EXPECT_EQ(sharded.stats.counter_dims, reference.stats.counter_dims)
        << what;
    if (compare_cache_stats) {
      EXPECT_EQ(sharded.stats.succ_cache_hits,
                reference.stats.succ_cache_hits)
          << what;
      EXPECT_EQ(sharded.stats.succ_cache_misses,
                reference.stats.succ_cache_misses)
          << what;
    }
  }
}

TEST(ShardedVerifierTest, BuilderSystemsIdenticalAcrossShardCounts) {
  ExpectSameVerification(
      testing::FlatSystem(true),
      testing::AlwaysProperty(0, Condition::IsNull(0)), "flat/sets");
  {
    ArtifactSystem system = testing::ParentChildSystem();
    LinearExpr e = LinearExpr::Var(1);
    HltlProperty property = testing::AlwaysProperty(
        0, Condition::Arith(LinearConstraint{e, Relop::kEq}));
    ExpectSameVerification(system, property, "parent-child");
  }
}

TEST(ShardedVerifierTest, Table1WorkloadIdenticalAcrossShardCounts) {
  for (SchemaClass sc : {SchemaClass::kAcyclic, SchemaClass::kCyclic}) {
    bench::Workload w = bench::MakeWorkload(sc, /*size=*/3, /*depth=*/2,
                                            /*with_sets=*/true,
                                            /*with_arith=*/false);
    ExpectSameVerification(w.system, w.property, w.name);
  }
}

TEST(ShardedVerifierTest, MultiRelationIdenticalAcrossShardCounts) {
  // Two artifact relations per task: each relation's counter-dimension
  // group must come out in the same (discovery) order at every shard
  // count for the graphs to match.
  bench::Workload w = bench::MakeMultiRelation(/*size=*/3, /*depth=*/2,
                                               /*num_rels=*/2);
  ExpectSameVerification(w.system, w.property, w.name);
}

TEST(ShardedVerifierTest, MultiRelationSpecIdenticalAcrossShardCounts) {
  // The same guarantee on a PARSED multi-relation spec (named set
  // blocks, cross-relation delta in `finish`).
  constexpr char spec[] = R"(
system {
  relation R { }
  task Main {
    ids: x, y;
    set Pending (x);
    set Done (x, y);
    service bind { pre: x == null; post: R(x) && R(y); }
    service enqueue { pre: x != null; post: true; insert into Pending; }
    service finish {
      pre: y != null;
      post: x != null && y != null;
      retrieve from Pending;
      insert into Done;
    }
  }
}
property drains { G ! svc(finish) }
)";
  auto parsed = ParseSpec(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* p = parsed->FindProperty("drains");
  ASSERT_NE(p, nullptr);
  ExpectSameVerification(parsed->system, *p, "multirel-spec/drains");
}

TEST(ShardedVerifierTest, EvictingSuccCacheKeepsVerdictsIdentical) {
  // A cache bound that actually evicts forces successor recomputation;
  // interned transition records keep labels (and hence the graph and
  // the counterexample) identical. Hit/miss counters legitimately
  // differ across shard counts once eviction kicks in.
  bench::Workload w = bench::MakeWorkload(SchemaClass::kAcyclic, 3, 2,
                                          /*with_sets=*/true,
                                          /*with_arith=*/false);
  VerifierOptions base;
  base.succ_cache_capacity = 3;
  ExpectSameVerification(w.system, w.property, "tiny-cache", base,
                         /*compare_cache_stats=*/false);
}

TEST(ShardedVerifierTest, TaskVassGraphsNodeForNode) {
  // Compare the per-entry coverability graphs of two engines (1 vs 4
  // shards) on the Table 1 acyclic family — the strongest form of the
  // determinism guarantee, at the product level.
  bench::Workload w = bench::MakeWorkload(SchemaClass::kAcyclic, 3, 2,
                                          /*with_sets=*/true,
                                          /*with_arith=*/false);
  HltlProperty negated = w.property.Negated();
  VerifierOptions seq_options;
  RtEngine seq_engine(&w.system, &negated, seq_options, nullptr);
  seq_engine.CheckRoot();
  VerifierOptions par_options;
  par_options.num_shards = 4;
  RtEngine par_engine(&w.system, &negated, par_options, nullptr);
  par_engine.CheckRoot();

  const Task& root_task = w.system.task(w.system.root());
  PartialIsoType empty_input(&w.system.schema(), &root_task.vars(),
                             seq_engine.context(w.system.root()).nav_depth());
  Cell empty_cell;
  int compared = 0;
  for (Assignment beta = 0; beta < 8; ++beta) {
    RtQueryKey seq_key = seq_engine.EntryKey(w.system.root(), empty_input,
                                             empty_cell, beta);
    RtQueryKey par_key = par_engine.EntryKey(w.system.root(), empty_input,
                                             empty_cell, beta);
    const RtEngine::Entry* seq_entry = seq_engine.FindEntry(seq_key);
    const RtEngine::Entry* par_entry = par_engine.FindEntry(par_key);
    ASSERT_EQ(seq_entry == nullptr, par_entry == nullptr) << "beta " << beta;
    if (seq_entry == nullptr) continue;
    ExpectSameGraph(*seq_entry->graph, *par_entry->graph,
                    "root beta=" + std::to_string(beta));
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

std::string LoadSpec(const std::string& name) {
  for (const std::string& prefix :
       {std::string("examples/specs/"), std::string("../examples/specs/"),
        std::string("../../examples/specs/")}) {
    std::ifstream in(prefix + name);
    if (in) {
      std::ostringstream out;
      out << in.rdbuf();
      return out.str();
    }
  }
  return "";
}

TEST(ShardedVerifierTest, TravelMiniIdenticalAcrossShardCounts) {
  std::string text = LoadSpec("travel_mini.has");
  ASSERT_FALSE(text.empty()) << "travel_mini.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* policy = parsed->FindProperty("discount_policy");
  ASSERT_NE(policy, nullptr);
  VerifierOptions base;
  base.max_nav_depth = 2;
  ExpectSameVerification(parsed->system, *policy, "travel_mini/discount",
                         base);
}

}  // namespace
}  // namespace has
