// Static spec analyzer and property-directed slicer (src/analysis/):
// unit coverage of the conservative satisfiability oracle, directed
// tests for every diagnostic code (dead services via infeasible
// arithmetic, unreachable chains, retrieve starvation, write-never-read,
// vacuous atoms), slice keep-set tests (including the variable that
// feeds the property only transitively through a retrieve), and the
// slice-on/off differential: verdicts must be IDENTICAL with slicing on
// and off — on every committed workload family and on the parsed
// example specs — with the slice-on exploration shard-count
// deterministic at 1/2/4 shards, counterexamples and counters included
// (mirroring tests/por_test.cc's POR gate).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/sat.h"
#include "analysis/slice.h"
#include "builders.h"
#include "core/verifier.h"
#include "spec/parser.h"
#include "spec/printer.h"
#include "workloads.h"

namespace has {
namespace {

// --- helpers ----------------------------------------------------------

/// v - c `op` 0, e.g. Cmp(n, Relop::kLt, 0) is n < 0.
CondPtr Cmp(int v, Relop op, int c) {
  LinearExpr e = LinearExpr::Var(v);
  e.AddConstant(Rational(-c));
  return Condition::Arith(LinearConstraint{std::move(e), op});
}

/// v > c as c - v < 0.
CondPtr Gt(int v, int c) {
  LinearExpr e = -LinearExpr::Var(v);
  e.AddConstant(Rational(c));
  return Condition::Arith(LinearConstraint{std::move(e), Relop::kLt});
}

int CountCode(const std::vector<Diagnostic>& diags, const char* code) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (std::string(d.code) == code) ++n;
  }
  return n;
}

bool HasDiag(const std::vector<Diagnostic>& diags, const char* code,
             const std::string& substr) {
  for (const Diagnostic& d : diags) {
    if (std::string(d.code) == code &&
        d.message.find(substr) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string LoadSpec(const std::string& name) {
  for (const std::string& prefix :
       {std::string("examples/specs/"), std::string("../examples/specs/"),
        std::string("../../examples/specs/")}) {
    std::ifstream in(prefix + name);
    if (in) {
      std::ostringstream out;
      out << in.rdbuf();
      return out.str();
    }
  }
  return "";
}

/// Slicing on vs. off must agree on the verdict; the slice-on run must
/// additionally be deterministic across shard counts (the plan is a
/// pure function of the input spec, so the sliced exploration inherits
/// the sharded explorer's determinism guarantee). Returns the slice-off
/// verdict so callers can pin the expected outcome.
Verdict ExpectSliceEquivalence(const ArtifactSystem& system,
                               const HltlProperty& property,
                               const std::string& what,
                               VerifierOptions base = {}) {
  base.slice = false;
  VerifyResult reference = Verify(system, property, base);
  // With slicing off the slice counters must stay zero; the analyzer
  // still runs (diagnostics are unconditional).
  EXPECT_EQ(reference.stats.sliced_services, 0u) << what;
  EXPECT_EQ(reference.stats.sliced_dims, 0u) << what;
  VerifyResult seq;
  for (int shards : {1, 2, 4}) {
    VerifierOptions options = base;
    options.slice = true;
    options.num_shards = shards;
    VerifyResult on = Verify(system, property, options);
    EXPECT_EQ(on.verdict, reference.verdict) << what << " shards=" << shards;
    EXPECT_EQ(on.stats.diagnostics_emitted,
              reference.stats.diagnostics_emitted)
        << what << " shards=" << shards;
    if (shards == 1) {
      seq = on;
      continue;
    }
    // Shard-count determinism of the SLICED build, counterexample and
    // counters included.
    EXPECT_EQ(on.counterexample, seq.counterexample)
        << what << " shards=" << shards;
    EXPECT_EQ(on.stats.queries, seq.stats.queries) << what;
    EXPECT_EQ(on.stats.cov_nodes, seq.stats.cov_nodes) << what;
    EXPECT_EQ(on.stats.cov_edges, seq.stats.cov_edges) << what;
    EXPECT_EQ(on.stats.product_states, seq.stats.product_states) << what;
    EXPECT_EQ(on.stats.counter_dims, seq.stats.counter_dims) << what;
    EXPECT_EQ(on.stats.sliced_services, seq.stats.sliced_services) << what;
    EXPECT_EQ(on.stats.sliced_dims, seq.stats.sliced_dims) << what;
  }
  return reference.verdict;
}

// --- satisfiability oracle --------------------------------------------

TEST(SatOracleTest, InfeasibleArithmetic) {
  std::vector<VarSort> sorts = {VarSort::kNumeric};
  EXPECT_FALSE(MaybeSatisfiable({Cmp(0, Relop::kLt, 0), Gt(0, 0)}, sorts));
  EXPECT_TRUE(MaybeSatisfiable({Gt(0, 0), Cmp(0, Relop::kLt, 5)}, sorts));
  // Conjunction folded into one condition behaves the same.
  EXPECT_FALSE(MaybeSatisfiable(
      {Condition::And(Cmp(0, Relop::kLt, 0), Gt(0, 0))}, sorts));
}

TEST(SatOracleTest, EqualityNullAndRelationAtoms) {
  std::vector<VarSort> sorts = {VarSort::kId, VarSort::kId};
  CondPtr null0 = Condition::IsNull(0);
  EXPECT_FALSE(MaybeSatisfiable({null0, Condition::Not(null0)}, sorts));
  // A positive relation atom forces its ID arguments non-null.
  EXPECT_FALSE(
      MaybeSatisfiable({Condition::Rel(0, {0}), Condition::IsNull(0)}, sorts));
  EXPECT_TRUE(
      MaybeSatisfiable({Condition::Rel(0, {0}), Condition::IsNull(1)}, sorts));
}

TEST(SatOracleTest, AtomBudgetErrsTowardSat) {
  // The same UNSAT pair must come back "maybe satisfiable" when the
  // distinct-atom budget is exceeded: no diagnostic ever rests on an
  // approximation.
  std::vector<VarSort> sorts = {VarSort::kNumeric};
  std::vector<CondPtr> unsat = {Cmp(0, Relop::kLt, 0), Gt(0, 0)};
  EXPECT_FALSE(MaybeSatisfiable(unsat, sorts));
  EXPECT_TRUE(MaybeSatisfiable(unsat, sorts, /*max_atoms=*/1));
}

// --- dead / unreachable services --------------------------------------

TEST(AnalyzerTest, DeadServiceViaInfeasibleArithmetic) {
  ArtifactSystem system;
  TaskId root = system.AddTask("T", kNoTask);
  Task& t = system.task(root);
  int n = t.vars().AddVar("n", VarSort::kNumeric);
  {
    InternalService dead;
    dead.name = "dead";
    dead.pre = Condition::And(Cmp(n, Relop::kLt, 0), Gt(n, 0));
    dead.post = Condition::True();
    t.AddInternalService(std::move(dead));
  }
  {
    InternalService ok;
    ok.name = "ok";
    ok.pre = Condition::True();
    ok.post = Gt(n, 0);
    t.AddInternalService(std::move(ok));
  }
  AnalysisResult r = AnalyzeSystem(system, {});
  EXPECT_TRUE(r.tasks[root].service_dead[0]);
  EXPECT_FALSE(r.tasks[root].service_dead[1]);
  EXPECT_TRUE(r.tasks[root].ServiceLive(1));
  EXPECT_TRUE(
      HasDiag(r.diagnostics, kDiagDeadService, "pre-condition is unsatisfiable"));
}

TEST(AnalyzerTest, JointPrePostDeadOnlyForInputVariables) {
  // pre x == null ∧ post x != null is dead for an INPUT variable (it is
  // identity across the transition) but fine for a writable one.
  ArtifactSystem system;
  TaskId root = system.AddTask("T", kNoTask);
  Task& t = system.task(root);
  int a = t.vars().AddVar("a", VarSort::kId);
  int x = t.vars().AddVar("x", VarSort::kId);
  t.AddInput(a, 0);
  {
    InternalService dead;
    dead.name = "dead_joint";
    dead.pre = Condition::IsNull(a);
    dead.post = Condition::Not(Condition::IsNull(a));
    t.AddInternalService(std::move(dead));
  }
  {
    InternalService flip;
    flip.name = "flip";
    flip.pre = Condition::IsNull(x);
    flip.post = Condition::Not(Condition::IsNull(x));
    t.AddInternalService(std::move(flip));
  }
  AnalysisResult r = AnalyzeSystem(system, {});
  EXPECT_TRUE(r.tasks[root].service_dead[0]);
  EXPECT_FALSE(r.tasks[root].service_dead[1]);
  EXPECT_TRUE(HasDiag(r.diagnostics, kDiagDeadService,
                      "jointly unsatisfiable"));
}

TEST(AnalyzerTest, UnreachableServiceChain) {
  // Numeric variables start at 0 and no live post ever makes n == 5, so
  // step1 is unreachable — and step2, enabled only through step1's
  // post, transitively so.
  ArtifactSystem system;
  TaskId root = system.AddTask("T", kNoTask);
  Task& t = system.task(root);
  int n = t.vars().AddVar("n", VarSort::kNumeric);
  {
    InternalService work;
    work.name = "work";
    work.pre = Condition::True();
    work.post = Cmp(n, Relop::kEq, 1);
    t.AddInternalService(std::move(work));
  }
  {
    InternalService step1;
    step1.name = "step1";
    step1.pre = Cmp(n, Relop::kEq, 5);
    step1.post = Cmp(n, Relop::kEq, 6);
    t.AddInternalService(std::move(step1));
  }
  {
    InternalService step2;
    step2.name = "step2";
    step2.pre = Cmp(n, Relop::kEq, 6);
    step2.post = Condition::True();
    t.AddInternalService(std::move(step2));
  }
  AnalysisResult r = AnalyzeSystem(system, {});
  EXPECT_FALSE(r.tasks[root].service_unreachable[0]);
  EXPECT_TRUE(r.tasks[root].service_unreachable[1]);
  EXPECT_TRUE(r.tasks[root].service_unreachable[2]);
  EXPECT_EQ(CountCode(r.diagnostics, kDiagUnreachableService), 2);
}

TEST(AnalyzerTest, UnconstrainedPostKeepsServicesReachable) {
  // A live service with post `true` constrains nothing, so every
  // satisfiable pre-condition is considered enabled after it: the
  // n == 5 guard must NOT be flagged (the enablement graph must stay an
  // over-approximation of reachability).
  ArtifactSystem system;
  TaskId root = system.AddTask("T", kNoTask);
  Task& t = system.task(root);
  int n = t.vars().AddVar("n", VarSort::kNumeric);
  {
    InternalService churn;
    churn.name = "churn";
    churn.pre = Condition::True();
    churn.post = Condition::True();
    t.AddInternalService(std::move(churn));
  }
  {
    InternalService guarded;
    guarded.name = "guarded";
    guarded.pre = Cmp(n, Relop::kEq, 5);
    guarded.post = Condition::True();
    t.AddInternalService(std::move(guarded));
  }
  AnalysisResult r = AnalyzeSystem(system, {});
  EXPECT_FALSE(r.tasks[root].service_unreachable[1]);
  EXPECT_EQ(CountCode(r.diagnostics, kDiagUnreachableService), 0);
}

TEST(AnalyzerTest, RetrieveStarvationNeedsLiveInserter) {
  // A retrieve from a relation nobody inserts into can never fire; a
  // DEAD inserter does not help; a live one does.
  auto build = [](bool with_inserter, bool inserter_dead) {
    ArtifactSystem system;
    TaskId root = system.AddTask("T", kNoTask);
    Task& t = system.task(root);
    int s = t.vars().AddVar("s", VarSort::kId);
    int rel = t.AddSetRelation("A", {s});
    if (with_inserter) {
      InternalService store;
      store.name = "store";
      store.pre = inserter_dead
                      ? Condition::And(Condition::IsNull(s),
                                       Condition::Not(Condition::IsNull(s)))
                      : Condition::True();
      store.post = Condition::True();
      store.MarkInsert(rel);
      t.AddInternalService(std::move(store));
    }
    InternalService load;
    load.name = "load";
    load.pre = Condition::True();
    load.post = Condition::True();
    load.MarkRetrieve(rel);
    t.AddInternalService(std::move(load));
    return system;
  };
  {
    ArtifactSystem sys = build(false, false);
    AnalysisResult r = AnalyzeSystem(sys, {});
    EXPECT_TRUE(r.tasks[0].service_dead[0]);
    EXPECT_TRUE(HasDiag(r.diagnostics, kDiagDeadService,
                        "no live service inserts"));
  }
  {
    ArtifactSystem sys = build(true, true);
    AnalysisResult r = AnalyzeSystem(sys, {});
    EXPECT_TRUE(r.tasks[0].service_dead[0]);  // store: unsat pre
    EXPECT_TRUE(r.tasks[0].service_dead[1]);  // load: starved anyway
  }
  {
    ArtifactSystem sys = build(true, false);
    AnalysisResult r = AnalyzeSystem(sys, {});
    EXPECT_TRUE(r.tasks[0].ServiceLive(0));
    EXPECT_TRUE(r.tasks[0].ServiceLive(1));
    EXPECT_EQ(CountCode(r.diagnostics, kDiagDeadService), 0);
  }
}

// --- variable reads and vacuous atoms ---------------------------------

TEST(AnalyzerTest, WriteNeverReadDistinguishesNeverUsed) {
  ArtifactSystem system;
  TaskId root = system.AddTask("T", kNoTask);
  Task& t = system.task(root);
  int n = t.vars().AddVar("n", VarSort::kNumeric);
  int w = t.vars().AddVar("w", VarSort::kNumeric);
  int ghost = t.vars().AddVar("ghost", VarSort::kId);
  (void)ghost;
  {
    InternalService work;
    work.name = "work";
    work.pre = Gt(n, -1);  // reads n
    work.post = Condition::And(Cmp(n, Relop::kEq, 1), Cmp(w, Relop::kEq, 2));
    t.AddInternalService(std::move(work));
  }
  AnalysisResult r = AnalyzeSystem(system, {});
  EXPECT_TRUE(r.tasks[root].var_read[n]);
  EXPECT_FALSE(r.tasks[root].var_read[w]);
  EXPECT_TRUE(HasDiag(r.diagnostics, kDiagWriteNeverRead,
                      "variable w is written but never read"));
  EXPECT_TRUE(HasDiag(r.diagnostics, kDiagWriteNeverRead,
                      "variable ghost is never used"));
}

TEST(AnalyzerTest, VacuousAtomsBothDirections) {
  ArtifactSystem system;
  TaskId root = system.AddTask("T", kNoTask);
  Task& t = system.task(root);
  int n = t.vars().AddVar("n", VarSort::kNumeric);
  {
    InternalService work;
    work.name = "work";
    work.pre = Gt(n, -1);
    work.post = Cmp(n, Relop::kEq, 1);
    t.AddInternalService(std::move(work));
  }
  HltlProperty property;
  HltlNode node;
  node.task = root;
  // Prop 0 always false, prop 1 always true, prop 2 contingent.
  node.props.push_back(HltlProp::Cond(
      Condition::And(Cmp(n, Relop::kLt, 0), Gt(n, 0))));
  node.props.push_back(HltlProp::Cond(
      Condition::Or(Cmp(n, Relop::kLe, 3), Gt(n, 2))));
  node.props.push_back(HltlProp::Cond(Gt(n, 0)));
  node.skeleton = LtlFormula::Always(LtlFormula::Or(
      LtlFormula::Or(LtlFormula::Prop(0), LtlFormula::Prop(1)),
      LtlFormula::Prop(2)));
  property.AddNode(std::move(node));
  AnalysisResult r = AnalyzeSystem(system, {{"p", &property}});
  EXPECT_EQ(CountCode(r.diagnostics, kDiagVacuousAtom), 2);
  EXPECT_TRUE(HasDiag(r.diagnostics, kDiagVacuousAtom, "always false"));
  EXPECT_TRUE(HasDiag(r.diagnostics, kDiagVacuousAtom, "always true"));
}

// --- lint_demo spec: every code, with locations ------------------------

TEST(AnalyzerTest, LintDemoExercisesEveryCodeWithLocations) {
  std::string text = LoadSpec("lint_demo.has");
  ASSERT_FALSE(text.empty()) << "lint_demo.has not found";
  auto parsed = ParseSpec(text, "examples/specs/lint_demo.has");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::vector<std::pair<std::string, const HltlProperty*>> props;
  for (const auto& [name, prop] : parsed->properties) {
    props.emplace_back(name, &prop);
  }
  AnalysisResult r = AnalyzeSystem(parsed->system, props, &parsed->locations);
  EXPECT_EQ(CountCode(r.diagnostics, kDiagDeadService), 3);
  EXPECT_EQ(CountCode(r.diagnostics, kDiagUnreachableService), 2);
  EXPECT_EQ(CountCode(r.diagnostics, kDiagUnreadRelation), 1);
  EXPECT_EQ(CountCode(r.diagnostics, kDiagWriteNeverRead), 2);
  EXPECT_EQ(CountCode(r.diagnostics, kDiagVacuousAtom), 2);
  EXPECT_EQ(r.diagnostics.size(), 10u);
  // Source locations render end-to-end: file:line of the declaration.
  std::string rendered = RenderDiagnostics(r.diagnostics, &parsed->locations);
  EXPECT_NE(rendered.find("examples/specs/lint_demo.has:23: warning: "
                          "[dead-service] task LintDemo: service dead_pre"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("lint_demo.has:12: warning: [unread-relation]"),
            std::string::npos)
      << rendered;
}

TEST(AnalyzerTest, PrintParseAnalyzeRoundTrip) {
  // PrintSystemSource must reconstruct a system the analyzer judges
  // identically — name-for-name, message-for-message (locations aside).
  std::string text = LoadSpec("lint_demo.has");
  ASSERT_FALSE(text.empty()) << "lint_demo.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::vector<std::pair<std::string, const HltlProperty*>> props;
  for (const auto& [name, prop] : parsed->properties) {
    props.emplace_back(name, &prop);
  }
  AnalysisResult first = AnalyzeSystem(parsed->system, props);

  std::string printed = PrintSystemSource(parsed->system);
  auto reparsed = ParseSpec(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  // Declaration order (and hence every index) is print-stable, so the
  // ORIGINAL properties remain well-formed against the reparsed system.
  AnalysisResult second = AnalyzeSystem(reparsed->system, props);
  EXPECT_EQ(RenderDiagnostics(first.diagnostics, nullptr),
            RenderDiagnostics(second.diagnostics, nullptr));
}

// --- slicing: keep-sets ------------------------------------------------

TEST(SliceTest, KeepsTupleVariableFeedingPropertyThroughRetrieve) {
  // The property observes only service `load`; `s` appears in NO
  // condition anywhere — it feeds the property exclusively as the tuple
  // variable of the relation load retrieves from, and must be kept.
  // `junk` is mentioned nowhere and must be dropped.
  ArtifactSystem system;
  TaskId root = system.AddTask("T", kNoTask);
  Task& t = system.task(root);
  int s = t.vars().AddVar("s", VarSort::kId);
  int junk = t.vars().AddVar("junk", VarSort::kId);
  int rel = t.AddSetRelation("A", {s});
  {
    InternalService store;
    store.name = "store";
    store.pre = Condition::True();
    store.post = Condition::True();
    store.MarkInsert(rel);
    t.AddInternalService(std::move(store));
  }
  int load_idx;
  {
    InternalService load;
    load.name = "load";
    load.pre = Condition::True();
    load.post = Condition::True();
    load.MarkRetrieve(rel);
    load_idx = static_cast<int>(t.services().size());
    t.AddInternalService(std::move(load));
  }
  HltlProperty property;
  HltlNode node;
  node.task = root;
  node.props.push_back(
      HltlProp::Service(ServiceRef::Internal(root, load_idx)));
  node.skeleton = LtlFormula::Always(LtlFormula::Not(LtlFormula::Prop(0)));
  property.AddNode(std::move(node));

  AnalysisResult analysis = AnalyzeSystem(system, {{"p", &property}});
  SlicePlan plan = BuildSlicePlan(system, property, analysis);
  EXPECT_EQ(plan.tasks[root].keep_var[s], 1);
  EXPECT_EQ(plan.tasks[root].keep_var[junk], 0);
  EXPECT_EQ(plan.tasks[root].keep_relation[0], 1);
  EXPECT_EQ(plan.dropped_vars, 1);
  EXPECT_EQ(plan.dropped_relations, 0);
  EXPECT_EQ(plan.dropped_services, 0);
  EXPECT_EQ(ExpectSliceEquivalence(system, property, "transitive-keep"),
            Verdict::kViolated);
}

TEST(SliceTest, MultirelSpecPlanDropsOnlyInvisibleRelations) {
  std::string text = LoadSpec("multirel.has");
  ASSERT_FALSE(text.empty()) << "multirel.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* p = parsed->FindProperty("orders_drain");
  ASSERT_NE(p, nullptr);
  AnalysisResult analysis = AnalyzeSystem(parsed->system, {{"orders_drain", p}});
  SlicePlan plan = BuildSlicePlan(parsed->system, *p, analysis);
  // Done (root) and Audit's S are inserted into but never retrieved and
  // invisible to the property; everything else must survive.
  EXPECT_EQ(plan.dropped_relations, 2);
  EXPECT_EQ(plan.dropped_services, 0);
  EXPECT_EQ(plan.dropped_vars, 0);
}

TEST(SliceTest, LintDemoCountersAndReducedDims) {
  std::string text = LoadSpec("lint_demo.has");
  ASSERT_FALSE(text.empty()) << "lint_demo.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* p = parsed->FindProperty("demo");
  ASSERT_NE(p, nullptr);
  VerifierOptions off;
  off.slice = false;
  VerifyResult ref = Verify(parsed->system, *p, off);
  EXPECT_EQ(ref.stats.sliced_services, 0u);
  EXPECT_EQ(ref.stats.sliced_dims, 0u);
  EXPECT_EQ(ref.stats.diagnostics_emitted, 10u);
  EXPECT_EQ(ref.diagnostics.size(), 10u);

  VerifyResult on = Verify(parsed->system, *p);
  EXPECT_EQ(on.verdict, ref.verdict);
  // 5 dead/unreachable services; Vault + Stash + ghost = 3 dims.
  EXPECT_EQ(on.stats.sliced_services, 5u);
  EXPECT_EQ(on.stats.sliced_dims, 3u);
  EXPECT_EQ(on.stats.diagnostics_emitted, 10u);
  // Dropping both artifact relations must shrink the product VASS.
  EXPECT_LT(on.stats.counter_dims, ref.stats.counter_dims);
  EXPECT_LE(on.stats.cov_nodes, ref.stats.cov_nodes);
}

// --- slice-on/off differential over every family and spec --------------

TEST(SliceEquivalenceTest, Table1Workloads) {
  for (SchemaClass sc : {SchemaClass::kAcyclic, SchemaClass::kCyclic}) {
    bench::Workload w = bench::MakeWorkload(sc, /*size=*/3, /*depth=*/2,
                                            /*with_sets=*/true,
                                            /*with_arith=*/false);
    // kViolated: the sliced runs must reproduce the accepting lasso.
    EXPECT_EQ(ExpectSliceEquivalence(w.system, w.property, w.name),
              Verdict::kViolated)
        << w.name;
  }
}

TEST(SliceEquivalenceTest, ArithmeticWorkload) {
  bench::Workload w = bench::MakeWorkload(SchemaClass::kAcyclic, /*size=*/2,
                                          /*depth=*/2, /*with_sets=*/true,
                                          /*with_arith=*/true);
  ExpectSliceEquivalence(w.system, w.property, w.name);
}

TEST(SliceEquivalenceTest, DeepHierarchy) {
  bench::Workload w = bench::MakeDeepHierarchy(/*depth=*/4, /*size=*/3);
  ExpectSliceEquivalence(w.system, w.property, w.name);
}

TEST(SliceEquivalenceTest, AdversarialCyclic) {
  bench::Workload w = bench::MakeAdversarialCyclic(/*size=*/4, /*depth=*/2);
  ExpectSliceEquivalence(w.system, w.property, w.name);
}

TEST(SliceEquivalenceTest, MultiVariableSet) {
  bench::Workload w = bench::MakeMultiSet(/*size=*/3, /*depth=*/2,
                                          /*set_width=*/2);
  ExpectSliceEquivalence(w.system, w.property, w.name);
}

TEST(SliceEquivalenceTest, MultiRelation) {
  bench::Workload w = bench::MakeMultiRelation(/*size=*/3, /*depth=*/2,
                                               /*num_rels=*/2);
  ExpectSliceEquivalence(w.system, w.property, w.name);
}

TEST(SliceEquivalenceTest, SlicedMultiRelationReduces) {
  // The family built to show slicing bites: per task an insert-only
  // audit relation, two never-mentioned variables, and a dead service.
  // Same verdict, strictly smaller product. k = 1 keeps Debug/TSan
  // runtimes sane (the slice-off side pays for every audit dimension);
  // the k = 2 rows are exercised by bench_slice and its CI counter
  // gate.
  bench::Workload w = bench::MakeSlicedMultiRelation(/*size=*/3, /*depth=*/2,
                                                     /*num_rels=*/1);
  ExpectSliceEquivalence(w.system, w.property, w.name);
  VerifierOptions off;
  off.slice = false;
  VerifyResult full = Verify(w.system, w.property, off);
  VerifyResult sliced = Verify(w.system, w.property);
  EXPECT_EQ(sliced.verdict, full.verdict);
  // One dead service, one audit relation, three variables per task.
  EXPECT_EQ(sliced.stats.sliced_services, 2u);
  EXPECT_EQ(sliced.stats.sliced_dims, 8u);
  EXPECT_GT(sliced.stats.diagnostics_emitted, 0u);
  EXPECT_LT(sliced.stats.counter_dims, full.stats.counter_dims);
  EXPECT_LT(sliced.stats.cov_nodes, full.stats.cov_nodes);
}

TEST(SliceEquivalenceTest, CommutingServices) {
  // The one family the slicer rewrites heavily: every store inserts
  // into a never-retrieved relation, so slicing strips all relations.
  // The verdict must survive that; POR is left at its default on both
  // sides (it correctly never fires on the sliced system).
  bench::Workload w = bench::MakeCommutingServices(/*width=*/3, /*depth=*/2);
  ExpectSliceEquivalence(w.system, w.property, w.name);
}

TEST(SliceEquivalenceTest, TravelMiniSpec) {
  std::string text = LoadSpec("travel_mini.has");
  ASSERT_FALSE(text.empty()) << "travel_mini.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* policy = parsed->FindProperty("discount_policy");
  ASSERT_NE(policy, nullptr);
  VerifierOptions base;
  base.max_nav_depth = 2;
  ExpectSliceEquivalence(parsed->system, *policy, "travel_mini/discount",
                         base);
}

TEST(SliceEquivalenceTest, MultiRelationSpec) {
  std::string text = LoadSpec("multirel.has");
  ASSERT_FALSE(text.empty()) << "multirel.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* p = parsed->FindProperty("orders_drain");
  ASSERT_NE(p, nullptr);
  ExpectSliceEquivalence(parsed->system, *p, "multirel-spec/orders_drain");
}

TEST(SliceEquivalenceTest, LintDemoSpec) {
  // The heaviest slice of any committed spec (5 services, 2 relations,
  // 1 variable dropped) must still be verdict-preserving.
  std::string text = LoadSpec("lint_demo.has");
  ASSERT_FALSE(text.empty()) << "lint_demo.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const HltlProperty* p = parsed->FindProperty("demo");
  ASSERT_NE(p, nullptr);
  ExpectSliceEquivalence(parsed->system, *p, "lint_demo/demo");
}

// --- strict mode -------------------------------------------------------

#if GTEST_HAS_DEATH_TEST
TEST(AnalyzerDeathTest, StrictAnalysisAbortsOnFindings) {
  ArtifactSystem system;
  TaskId root = system.AddTask("T", kNoTask);
  Task& t = system.task(root);
  int n = t.vars().AddVar("n", VarSort::kNumeric);
  int w = t.vars().AddVar("w", VarSort::kNumeric);
  {
    InternalService work;
    work.name = "work";
    work.pre = Gt(n, -1);
    work.post = Cmp(w, Relop::kEq, 2);
    t.AddInternalService(std::move(work));
  }
  HltlProperty property = testing::AlwaysProperty(root, Gt(n, -1));
  VerifierOptions strict;
  strict.strict_analysis = true;
  EXPECT_DEATH(Verify(system, property, strict), "strict_analysis");
}
#endif

}  // namespace
}  // namespace has
