// Verification with arithmetic (Section 5): cells over the linear
// fragment integrated with the equality component.
#include <gtest/gtest.h>

#include "builders.h"
#include "core/verifier.h"

namespace has {
namespace {

/// A one-task system whose service increments constraints: the balance
/// can be set positive, and a property about signs is decided by cells.
ArtifactSystem BalanceSystem() {
  ArtifactSystem system;
  system.schema().AddRelation("R");
  TaskId root = system.AddTask("Main", kNoTask);
  Task& t = system.task(root);
  int balance = t.vars().AddVar("balance", VarSort::kNumeric);
  int credit = t.vars().AddVar("credit", VarSort::kNumeric);
  {
    InternalService deposit;
    deposit.name = "deposit";
    deposit.pre = Condition::True();
    // post: balance > credit && credit >= 0
    LinearExpr diff = LinearExpr::Var(credit);
    diff.AddTerm(balance, Rational(-1));  // credit - balance < 0
    LinearExpr nonneg = LinearExpr::Var(credit) * Rational(-1);
    deposit.post = Condition::And(
        Condition::Arith(LinearConstraint{diff, Relop::kLt}),
        Condition::Arith(LinearConstraint{nonneg, Relop::kLe}));
    t.AddInternalService(std::move(deposit));
  }
  return system;
}

TEST(ArithVerifierTest, SignInvariantHolds) {
  // After any step, balance > credit ∧ credit >= 0 implies balance > 0;
  // claim G(deposit -> balance > 0): holds (cells must chain the
  // inequalities).
  ArtifactSystem system = BalanceSystem();
  HltlProperty property;
  HltlNode node;
  node.task = 0;
  node.props.push_back(HltlProp::Service(ServiceRef::Internal(0, 0)));
  LinearExpr pos = LinearExpr::Var(0) * Rational(-1);  // -balance < 0
  node.props.push_back(
      HltlProp::Cond(Condition::Arith(LinearConstraint{pos, Relop::kLt})));
  node.skeleton = LtlFormula::Always(
      LtlFormula::Implies(LtlFormula::Prop(0), LtlFormula::Prop(1)));
  property.AddNode(std::move(node));
  VerifyResult result = Verify(system, property);
  EXPECT_TRUE(result.used_arithmetic);
  EXPECT_EQ(result.verdict, Verdict::kHolds);
}

TEST(ArithVerifierTest, ReachableSignStateFound) {
  // Claiming the balance never exceeds the credit is violated by
  // deposit.
  ArtifactSystem system = BalanceSystem();
  LinearExpr le = LinearExpr::Var(0);
  le.AddTerm(1, Rational(-1));  // balance - credit <= 0
  HltlProperty property = testing::AlwaysProperty(
      0, Condition::Arith(LinearConstraint{le, Relop::kLe}));
  VerifyResult result = Verify(system, property);
  EXPECT_EQ(result.verdict, Verdict::kViolated);
}

TEST(ArithVerifierTest, InitialZeroRespected) {
  // Numeric variables start at 0: claiming balance != 0 initially...
  // i.e. G(balance == 0) should be violated only after a step; the
  // stronger "balance >= 0 at all times" is FALSIFIABLE? deposit only
  // requires balance > credit >= 0 → balance > 0. So G(balance >= 0)
  // holds.
  ArtifactSystem system = BalanceSystem();
  LinearExpr nonneg = LinearExpr::Var(0) * Rational(-1);  // -balance <= 0
  HltlProperty property = testing::AlwaysProperty(
      0, Condition::Arith(LinearConstraint{nonneg, Relop::kLe}));
  VerifyResult result = Verify(system, property);
  EXPECT_EQ(result.verdict, Verdict::kHolds);
}

TEST(ArithVerifierTest, HcdBuiltForHierarchy) {
  ArtifactSystem system = testing::ParentChildSystem();
  LinearExpr e = LinearExpr::Var(1);
  e.AddConstant(Rational(-1));
  HltlProperty property = testing::AlwaysProperty(
      0, Condition::Not(Condition::Arith(LinearConstraint{e, Relop::kLe})));
  Hcd hcd = BuildSystemHcd(system, property);
  EXPECT_EQ(hcd.num_nodes(), 2);
  EXPECT_GT(hcd.TotalPolys(), 0);
}

}  // namespace
}  // namespace has
