#include <gtest/gtest.h>

#include "common/status.h"
#include "common/strings.h"
#include "common/union_find.h"

namespace has {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad things");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad things"), std::string::npos);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, StrCatAndJoin) {
  EXPECT_EQ(StrCat("a", 1, "b"), "a1b");
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, SplitAndStrip) {
  EXPECT_EQ(StrSplit("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumClasses(), 5);
  uf.Union(0, 1);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_FALSE(uf.Same(1, 2));
  EXPECT_EQ(uf.NumClasses(), 3);
  uf.Union(1, 4);
  EXPECT_TRUE(uf.Same(0, 3));
}

TEST(UnionFindTest, CanonicalLabelsStable) {
  UnionFind a(4), b(4);
  a.Union(0, 2);
  b.Union(2, 0);  // same partition, different merge order
  EXPECT_EQ(a.CanonicalLabels(), b.CanonicalLabels());
}

TEST(UnionFindTest, AddElement) {
  UnionFind uf;
  int x = uf.AddElement();
  int y = uf.AddElement();
  EXPECT_FALSE(uf.Same(x, y));
  uf.Union(x, y);
  EXPECT_TRUE(uf.Same(x, y));
}

}  // namespace
}  // namespace has
