// End-to-end verification of the travel-booking example (Appendix A):
// the mini variant's discount-cancellation policy must be VIOLATED (the
// bug the paper describes) and the sanity property must HOLD. The full
// spec must parse and validate.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/verifier.h"
#include "model/validate.h"
#include "spec/parser.h"

namespace has {
namespace {

std::string Load(const std::string& name) {
  for (const std::string& prefix :
       {std::string("examples/specs/"), std::string("../examples/specs/"),
        std::string("../../examples/specs/")}) {
    std::ifstream in(prefix + name);
    if (in) {
      std::ostringstream out;
      out << in.rdbuf();
      return out.str();
    }
  }
  return "";
}

TEST(TravelTest, FullSpecParsesAndValidates) {
  std::string text = Load("travel.has");
  ASSERT_FALSE(text.empty()) << "travel.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateSystem(parsed->system).ok());
  EXPECT_EQ(parsed->system.num_tasks(), 6);
  EXPECT_EQ(parsed->system.Depth(), 3);
  const HltlProperty* p = parsed->FindProperty("discount_policy");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->Validate(parsed->system).ok());
  EXPECT_TRUE(SystemUsesArithmetic(parsed->system, *p));
}

TEST(TravelTest, MiniDiscountPolicyViolated) {
  std::string text = Load("travel_mini.has");
  ASSERT_FALSE(text.empty()) << "travel_mini.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(ValidateSystem(parsed->system).ok());
  const HltlProperty* p = parsed->FindProperty("discount_policy");
  ASSERT_NE(p, nullptr);
  VerifierOptions options;
  options.max_nav_depth = 2;
  VerifyResult result = Verify(parsed->system, *p, options);
  EXPECT_EQ(result.verdict, Verdict::kViolated);
  EXPECT_NE(result.counterexample.find("CancelFlight"), std::string::npos);
}

TEST(TravelTest, MiniSanityPropertyHolds) {
  std::string text = Load("travel_mini.has");
  ASSERT_FALSE(text.empty());
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok());
  const HltlProperty* p = parsed->FindProperty("cancel_closes_cancelled");
  ASSERT_NE(p, nullptr);
  VerifierOptions options;
  options.max_nav_depth = 2;
  VerifyResult result = Verify(parsed->system, *p, options);
  EXPECT_EQ(result.verdict, Verdict::kHolds);
}

}  // namespace
}  // namespace has
