// Antichain subsumption pruning (KarpMillerOptions::prune_coverability
// / VerifierOptions::prune_coverability).
//
// Correctness bar (ISSUE 3): verifier verdicts must be IDENTICAL with
// pruning on vs. off — across the Table-1 workloads, the travel specs,
// the deep-hierarchy / adversarial-cyclic families and the
// multi-variable-set family, at 1, 2 and 4 shards. On top of that the
// pruned build itself must keep the sharded determinism guarantee
// (node-for-node equality and equal pruning counters at every shard
// count), preserve exactly the reachable VASS states, and actually
// prune (strictly fewer nodes on subsumption-heavy systems).
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "builders.h"
#include "core/verifier.h"
#include "spec/parser.h"
#include "vass/karp_miller.h"
#include "workloads.h"

namespace has {
namespace {

/// A VASS with heavy subsumption: the hub keeps re-entering pump states
/// with ever-larger counters, so most successors are dominated by an
/// earlier (accelerated) node.
ExplicitVass PumpVass(int width) {
  ExplicitVass v(2 * width + 2);
  for (int i = 0; i < width; ++i) {
    v.AddAction(0, {{i, +1}}, 1 + i);             // fan out, pump counter i
    v.AddAction(1 + i, {{i, +1}}, 1 + i);         // keep pumping (→ ω)
    v.AddAction(1 + i, {{i, -1}}, 1 + width + i); // spend
    v.AddAction(1 + width + i, {}, 0);            // back to the hub
  }
  Delta all_spend;
  for (int i = 0; i < width; ++i) all_spend.emplace_back(i, -1);
  v.AddAction(0, all_spend, 2 * width + 1);       // gated target
  return v;
}

/// A VASS whose distinct markings are genuinely COMPARABLE (no exact
/// duplicates), so domination does work plain dedup cannot. Left wing:
/// three openings into one chain with markings (3) > (2) > (1), the
/// generous one first — the dominated two are dropped before interning
/// and their whole chains never exist. Right wing: the poor opening
/// first, so the rich newcomer must DEACTIVATE it, cutting its
/// not-yet-built chain.
ExplicitVass SubsumptionVass(int len) {
  // States: 0 = root; 1..len = left chain; len+1..2*len = right chain.
  ExplicitVass v(2 * len + 1);
  v.AddAction(0, {{0, +3}}, 1);
  v.AddAction(0, {{0, +2}}, 1);
  v.AddAction(0, {{0, +1}}, 1);
  for (int i = 1; i < len; ++i) v.AddAction(i, {}, i + 1);
  v.AddAction(0, {{1, +1}}, len + 1);
  v.AddAction(0, {{1, +2}}, len + 1);
  for (int i = len + 1; i < 2 * len; ++i) v.AddAction(i, {}, i + 1);
  return v;
}

std::set<int> StatesOf(const KarpMiller& g) {
  std::set<int> states;
  for (int n = 0; n < g.num_nodes(); ++n) states.insert(g.node_state(n));
  return states;
}

TEST(PrunedKarpMillerTest, PreservesReachableStates) {
  for (bool subsumption : {false, true}) {
    ExplicitVass v1 = subsumption ? SubsumptionVass(4) : PumpVass(3);
    KarpMiller full(&v1, {});
    full.Build({0});
    ExplicitVass v2 = subsumption ? SubsumptionVass(4) : PumpVass(3);
    KarpMillerOptions options;
    options.prune_coverability = true;
    KarpMiller pruned(&v2, options);
    pruned.Build({0});
    // State reachability is exactly preserved, and pruning never grows
    // the graph.
    EXPECT_EQ(StatesOf(full), StatesOf(pruned)) << subsumption;
    EXPECT_LE(pruned.num_nodes(), full.num_nodes()) << subsumption;
    EXPECT_GT(pruned.pruned_successors(), 0u) << subsumption;
    EXPECT_FALSE(pruned.truncated());
  }
}

TEST(PrunedKarpMillerTest, DominationPrunesAndDeactivates) {
  const int len = 5;
  ExplicitVass v1 = SubsumptionVass(len);
  KarpMiller full(&v1, {});
  full.Build({0});
  ExplicitVass v2 = SubsumptionVass(len);
  KarpMillerOptions options;
  options.prune_coverability = true;
  KarpMiller pruned(&v2, options);
  pruned.Build({0});

  // Full: root + three left chains + two right chains = 1 + 5*len.
  EXPECT_EQ(full.num_nodes(), 1 + 5 * len);
  // Pruned: root + one left chain + the retired right opening + one
  // right chain — the dominated chains were never built.
  EXPECT_EQ(pruned.num_nodes(), 2 * len + 2);
  // The two dominated left openings were dropped before interning...
  EXPECT_EQ(pruned.pruned_successors(), 2u);
  // ...and the poor right opening was retired by the rich newcomer.
  EXPECT_EQ(pruned.deactivated_nodes(), 1u);
  // Each prune point left a cover-edge: two drops plus one retirement.
  EXPECT_EQ(pruned.cover_edges(), 3u);
  EXPECT_GE(full.num_nodes(), 2 * pruned.num_nodes());
}

TEST(PrunedKarpMillerTest, NodesFormAnAntichainPerState) {
  // No node's marking may be ≤ any EARLIER node's marking of the same
  // VASS state — the invariant behind both termination and the
  // coverage argument (every dropped candidate sits below some
  // retained, eventually-expanded node).
  ExplicitVass v = PumpVass(3);
  KarpMillerOptions options;
  options.prune_coverability = true;
  KarpMiller g(&v, options);
  g.Build({0});
  for (int j = 0; j < g.num_nodes(); ++j) {
    for (int i = 0; i < j; ++i) {
      if (g.node_state(i) != g.node_state(j)) continue;
      EXPECT_FALSE(marking::LessEq(g.node_marking(j), g.node_marking(i)))
          << "node " << j << " dominated by earlier node " << i;
    }
  }
}

TEST(PrunedKarpMillerTest, RealEdgesFormAForestCoverEdgesCloseWalks) {
  // Every surviving successor creates a NEW node, so the pruned
  // graph's REAL edges are exactly its spanning forest; the closed-
  // walk structure lasso analysis needs lives in the cover-edges
  // recorded at the prune points (one per dropped successor, one per
  // retired node).
  ExplicitVass v = PumpVass(3);
  KarpMillerOptions options;
  options.prune_coverability = true;
  KarpMiller g(&v, options);
  g.Build({0});
  size_t roots = 0, real = 0, cover = 0;
  for (int n = 0; n < g.num_nodes(); ++n) {
    if (g.node_parent(n) == -1) ++roots;
    for (const KarpMiller::Edge& e : g.edges(n)) {
      if (e.cover) {
        ++cover;
        // Drop cover-edges keep the dropped transition's label; retire
        // cover-edges are label-less with an empty delta.
        if (e.label < 0) EXPECT_TRUE(e.delta.empty());
      } else {
        ++real;
        // A real pruned edge always points at a strictly newer node.
        EXPECT_GT(e.target, n);
      }
    }
  }
  EXPECT_EQ(real, static_cast<size_t>(g.num_nodes()) - roots);
  EXPECT_EQ(cover, g.cover_edges());
  EXPECT_EQ(cover, g.pruned_successors() + g.deactivated_nodes());
  EXPECT_EQ(g.TotalEdges(), real + cover);
  EXPECT_GT(cover, 0u);
}

TEST(PrunedKarpMillerTest, ShardedPrunedBuildIsNodeIdentical) {
  for (int variant = 0; variant < 3; ++variant) {
    auto make = [&]() {
      return variant == 0 ? PumpVass(2)
             : variant == 1 ? PumpVass(4)
                            : SubsumptionVass(5);
    };
    ExplicitVass v1 = make();
    KarpMillerOptions seq_options;
    seq_options.prune_coverability = true;
    KarpMiller seq(&v1, seq_options);
    seq.Build({0});
    for (int shards : {2, 4}) {
      ExplicitVass v2 = make();
      KarpMillerOptions options;
      options.prune_coverability = true;
      options.num_shards = shards;
      KarpMiller par(&v2, options);
      par.Build({0});
      const std::string what =
          "variant=" + std::to_string(variant) + " shards=" +
          std::to_string(shards);
      ASSERT_EQ(seq.num_nodes(), par.num_nodes()) << what;
      for (int n = 0; n < seq.num_nodes(); ++n) {
        EXPECT_EQ(seq.node_state(n), par.node_state(n)) << what << " " << n;
        EXPECT_EQ(seq.node_marking(n), par.node_marking(n))
            << what << " " << n;
        EXPECT_EQ(seq.node_parent(n), par.node_parent(n)) << what << " " << n;
        ASSERT_EQ(seq.edges(n).size(), par.edges(n).size()) << what << " " << n;
        for (size_t i = 0; i < seq.edges(n).size(); ++i) {
          EXPECT_EQ(seq.edges(n)[i].target, par.edges(n)[i].target)
              << what << " " << n << " edge " << i;
          EXPECT_EQ(seq.edges(n)[i].label, par.edges(n)[i].label)
              << what << " " << n << " edge " << i;
          EXPECT_EQ(seq.edges(n)[i].cover, par.edges(n)[i].cover)
              << what << " " << n << " edge " << i;
        }
        EXPECT_EQ(seq.node_deactivated(n), par.node_deactivated(n))
            << what << " " << n;
      }
      // Pruning counters are part of the determinism contract —
      // cover-edges included (same targets, same interleaved order).
      EXPECT_EQ(seq.pruned_successors(), par.pruned_successors()) << what;
      EXPECT_EQ(seq.deactivated_nodes(), par.deactivated_nodes()) << what;
      EXPECT_EQ(seq.antichain_peak(), par.antichain_peak()) << what;
      EXPECT_EQ(seq.cover_edges(), par.cover_edges()) << what;
    }
  }
}

/// Cross-validation core: verdict equality pruned vs. unpruned at every
/// shard count, plus stat-level determinism of the pruned runs across
/// shard counts.
void ExpectPruningEquivalence(const ArtifactSystem& system,
                              const HltlProperty& property,
                              const std::string& what,
                              VerifierOptions base = {}) {
  base.prune_coverability = false;
  VerifyResult reference = Verify(system, property, base);
  VerifyResult pruned_seq;
  for (int shards : {1, 2, 4}) {
    VerifierOptions options = base;
    options.num_shards = shards;
    options.prune_coverability = true;
    VerifyResult pruned = Verify(system, property, options);
    EXPECT_EQ(pruned.verdict, reference.verdict)
        << what << " shards=" << shards;
    // Lasso analysis runs on the pruned graph itself (cover-edges);
    // the full-graph fallback is gone for good.
    EXPECT_EQ(pruned.stats.full_graph_builds, 0u)
        << what << " shards=" << shards;
    // Without fallback rebuilds, pruning never explores more nodes
    // than the full build.
    EXPECT_LE(pruned.stats.cov_nodes, reference.stats.cov_nodes)
        << what << " shards=" << shards;
    if (shards == 1) {
      pruned_seq = pruned;
      continue;
    }
    // Determinism of the pruned build across shard counts: identical
    // exploration statistics, counterexamples included.
    EXPECT_EQ(pruned.counterexample, pruned_seq.counterexample)
        << what << " shards=" << shards;
    EXPECT_EQ(pruned.stats.queries, pruned_seq.stats.queries) << what;
    EXPECT_EQ(pruned.stats.cov_nodes, pruned_seq.stats.cov_nodes) << what;
    EXPECT_EQ(pruned.stats.cov_edges, pruned_seq.stats.cov_edges) << what;
    EXPECT_EQ(pruned.stats.product_states, pruned_seq.stats.product_states)
        << what;
    EXPECT_EQ(pruned.stats.pruned_successors,
              pruned_seq.stats.pruned_successors)
        << what;
    EXPECT_EQ(pruned.stats.deactivated_nodes,
              pruned_seq.stats.deactivated_nodes)
        << what;
    EXPECT_EQ(pruned.stats.antichain_peak, pruned_seq.stats.antichain_peak)
        << what;
    EXPECT_EQ(pruned.stats.cover_edges, pruned_seq.stats.cover_edges)
        << what;
  }
}

TEST(PruningCrossValidation, BuilderSystems) {
  ExpectPruningEquivalence(testing::FlatSystem(true),
                           testing::AlwaysProperty(0, Condition::IsNull(0)),
                           "flat/sets");
  {
    ArtifactSystem system = testing::ParentChildSystem();
    LinearExpr e = LinearExpr::Var(1);
    HltlProperty property = testing::AlwaysProperty(
        0, Condition::Arith(LinearConstraint{e, Relop::kEq}));
    ExpectPruningEquivalence(system, property, "parent-child");
  }
}

TEST(PruningCrossValidation, Table1Workloads) {
  for (SchemaClass sc : {SchemaClass::kAcyclic, SchemaClass::kCyclic}) {
    bench::Workload w = bench::MakeWorkload(sc, /*size=*/3, /*depth=*/2,
                                            /*with_sets=*/true,
                                            /*with_arith=*/false);
    ExpectPruningEquivalence(w.system, w.property, w.name);
  }
}

TEST(PruningCrossValidation, DeepHierarchy) {
  bench::Workload w = bench::MakeDeepHierarchy(/*depth=*/3, /*size=*/3);
  ExpectPruningEquivalence(w.system, w.property, w.name);
}

TEST(PruningCrossValidation, AdversarialCyclic) {
  bench::Workload w = bench::MakeAdversarialCyclic(/*size=*/3, /*depth=*/2);
  ExpectPruningEquivalence(w.system, w.property, w.name);
}

TEST(PruningCrossValidation, MultiVariableSet) {
  bench::Workload w = bench::MakeMultiSet(/*size=*/3, /*depth=*/2,
                                          /*set_width=*/2);
  ExpectPruningEquivalence(w.system, w.property, w.name);
}

TEST(PruningCrossValidation, MultiRelation) {
  // Two artifact relations per task (each its own counter-dimension
  // group), including the cross-relation rotate delta.
  bench::Workload w = bench::MakeMultiRelation(/*size=*/3, /*depth=*/2,
                                               /*num_rels=*/2);
  ExpectPruningEquivalence(w.system, w.property, w.name);
}

std::string LoadSpec(const std::string& name) {
  for (const std::string& prefix :
       {std::string("examples/specs/"), std::string("../examples/specs/"),
        std::string("../../examples/specs/")}) {
    std::ifstream in(prefix + name);
    if (in) {
      std::ostringstream out;
      out << in.rdbuf();
      return out.str();
    }
  }
  return "";
}

TEST(PruningCrossValidation, TravelMini) {
  std::string text = LoadSpec("travel_mini.has");
  ASSERT_FALSE(text.empty()) << "travel_mini.has not found";
  auto parsed = ParseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  VerifierOptions base;
  base.max_nav_depth = 2;
  for (const char* prop : {"discount_policy", "cancel_closes_cancelled"}) {
    const HltlProperty* p = parsed->FindProperty(prop);
    ASSERT_NE(p, nullptr) << prop;
    ExpectPruningEquivalence(parsed->system, *p,
                             std::string("travel_mini/") + prop, base);
  }
}

}  // namespace
}  // namespace has
